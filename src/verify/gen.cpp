#include "verify/gen.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace bac::verify {

namespace {

/// Exactly representable cost ladder so golden numbers and oracle sums
/// never depend on transcendental libm behaviour.
constexpr Cost kDyadicCosts[] = {0.5, 1.0, 2.0, 4.0, 8.0};

std::string shape_name(int shape) {
  switch (shape) {
    case 0: return "singleton";
    case 1: return "uniform";
    case 2: return "skewed";
    default: return "singleblock";
  }
}

}  // namespace

GeneratedInstance random_instance(std::uint64_t seed,
                                  const GenOptions& options) {
  const std::uint64_t fuzz_seed = seed;
  Xoshiro256pp rng(seed ^ 0x626163667a7aULL);  // "bacfzz"
  const int max_pages = options.tiny ? 16 : options.max_pages;
  const long long max_T = options.tiny ? 96 : options.max_T;

  // --- universe size: skew toward tiny so exact oracles apply often.
  int n;
  if (rng.bernoulli(0.45))
    n = 1 + static_cast<int>(rng.below(10));  // tiny tier: exact OPT / LP
  else
    n = 2 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
            std::max(1, max_pages - 1))));

  // --- block shape.
  const int shape = static_cast<int>(rng.below(4));
  std::vector<BlockId> page_to_block(static_cast<std::size_t>(n));
  int m = 0;          // number of blocks
  int block_size = 1; // contiguous uniform size, when applicable
  bool contiguous_uniform = false;
  switch (shape) {
    case 0:  // singleton blocks: classic (weighted) paging
      block_size = 1;
      m = n;
      contiguous_uniform = true;
      break;
    case 1:  // contiguous uniform blocks of a random size
      block_size = 1 + static_cast<int>(
          rng.below(static_cast<std::uint64_t>(std::min(8, n))));
      m = (n + block_size - 1) / block_size;
      contiguous_uniform = true;
      break;
    case 2: {  // skewed: random page -> block assignment, random m
      m = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      // Guarantee every block non-empty-ish by seeding one page per block
      // when possible; the rest land Zipf-ish on low block ids.
      for (int p = 0; p < n; ++p) {
        if (p < m) {
          page_to_block[static_cast<std::size_t>(p)] = p;
        } else {
          const auto r = rng.below(static_cast<std::uint64_t>(m));
          const auto s = rng.below(static_cast<std::uint64_t>(m));
          page_to_block[static_cast<std::size_t>(p)] =
              static_cast<BlockId>(std::min(r, s));  // skew to low ids
        }
      }
      break;
    }
    default:  // one block holding the whole universe
      m = 1;
      for (auto& b : page_to_block) b = 0;
      break;
  }

  // --- costs: unit, exact dyadic weighted, or log-uniform.
  std::vector<Cost> costs(static_cast<std::size_t>(m), 1.0);
  std::string cost_kind = "unit";
  const int cost_pick = static_cast<int>(rng.below(10));
  if (cost_pick >= 7) {
    cost_kind = "dyadic";
    for (auto& c : costs) c = kDyadicCosts[rng.below(5)];
  } else if (cost_pick >= 5) {
    cost_kind = "loguniform";
    costs = log_uniform_costs(m, 16.0, rng.substream(1));
  }

  // Skewed and single-block shapes carry an explicit assignment; the
  // contiguous shapes rebuild it from (n, block_size).
  BlockMap blocks =
      contiguous_uniform
          ? BlockMap::contiguous_weighted(n, block_size, std::move(costs))
          : BlockMap(std::move(page_to_block), std::move(costs));
  const int beta = blocks.beta();

  // --- cache size: k = beta edge, k > n edge, or random in [beta, n].
  int k;
  const int k_pick = static_cast<int>(rng.below(10));
  if (k_pick < 3 || beta >= n) {
    k = beta;  // tightest feasible cache
  } else if (k_pick < 4) {
    k = n + 1 + static_cast<int>(rng.below(4));  // cache exceeds universe
  } else {
    k = beta + static_cast<int>(rng.below(
            static_cast<std::uint64_t>(n - beta) + 1));
  }

  // --- horizon: T = 0 and T < k edges kept deliberately common.
  long long T;
  const int t_pick = static_cast<int>(rng.below(20));
  if (t_pick == 0) {
    T = 0;
  } else if (t_pick <= 3) {
    T = rng.below(static_cast<std::uint64_t>(k) + 1);  // T <= k
  } else {
    T = 1 + static_cast<long long>(
            rng.below(static_cast<std::uint64_t>(max_T)));
  }

  // --- request stream.
  const std::uint64_t trace_seed = splitmix64(seed += 0x9e3779b97f4a7c15ULL);
  const int kind = static_cast<int>(rng.below(5));
  std::vector<PageId> requests;
  std::string trace_kind;
  double alpha = 0, stay = 0;
  long long phase_len = 0;
  int ws_size = 0;
  switch (kind) {
    case 0:
      trace_kind = "uniform";
      requests = uniform_trace(n, static_cast<Time>(T),
                               Xoshiro256pp(trace_seed));
      break;
    case 1: {
      trace_kind = "zipf";
      alpha = 0.3 * static_cast<double>(rng.below(5));  // 0, .3, .6, .9, 1.2
      requests = zipf_trace(n, static_cast<Time>(T), alpha,
                            Xoshiro256pp(trace_seed));
      break;
    }
    case 2:
      trace_kind = "scan";
      requests = scan_trace(n, static_cast<Time>(T));
      break;
    case 3: {
      trace_kind = "phased";
      phase_len = 1 + static_cast<long long>(rng.below(
          static_cast<std::uint64_t>(std::max<long long>(1, T / 2)) + 1));
      ws_size = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      requests = phased_trace(n, static_cast<Time>(T),
                              static_cast<Time>(phase_len), ws_size,
                              Xoshiro256pp(trace_seed));
      break;
    }
    default: {
      trace_kind = "blocklocal";
      stay = 0.5 + 0.1 * static_cast<double>(rng.below(5));
      alpha = 0.3 * static_cast<double>(rng.below(4));
      requests = block_local_trace(blocks, static_cast<Time>(T), stay, alpha,
                                   Xoshiro256pp(trace_seed));
      break;
    }
  }

  GeneratedInstance out;
  out.inst = Instance{std::move(blocks), std::move(requests), k};
  out.inst.validate();

  out.descriptor = "n=" + std::to_string(n) + " m=" + std::to_string(m) +
                   " beta=" + std::to_string(beta) +
                   " k=" + std::to_string(k) + " T=" + std::to_string(T) +
                   " shape=" + shape_name(shape) + " costs=" + cost_kind +
                   " trace=" + trace_kind +
                   (trace_kind == "zipf" || trace_kind == "blocklocal"
                        ? " alpha=" + std::to_string(alpha)
                        : "") +
                   " seed=" + std::to_string(fuzz_seed);

  // Streaming twin: only contiguous block maps (SyntheticSource builds its
  // own contiguous header) with all-equal costs mirror a synthetic stream.
  const bool unit_costs = cost_kind == "unit";
  if (contiguous_uniform && unit_costs) {
    const int bs = block_size;
    switch (kind) {
      case 0:
        out.streaming_twin = [n, bs, k, T, trace_seed] {
          return std::unique_ptr<RequestSource>(
              SyntheticSource::uniform(n, bs, k, T, trace_seed));
        };
        break;
      case 1:
        out.streaming_twin = [n, bs, k, T, alpha, trace_seed] {
          return std::unique_ptr<RequestSource>(
              SyntheticSource::zipf(n, bs, k, T, alpha, trace_seed));
        };
        break;
      case 2:
        out.streaming_twin = [n, bs, k, T] {
          return std::unique_ptr<RequestSource>(
              SyntheticSource::scan(n, bs, k, T));
        };
        break;
      case 3:
        out.streaming_twin = [n, bs, k, T, phase_len, ws_size, trace_seed] {
          return std::unique_ptr<RequestSource>(SyntheticSource::phased(
              n, bs, k, T, phase_len, ws_size, trace_seed));
        };
        break;
      default:
        out.streaming_twin = [n, bs, k, T, stay, alpha, trace_seed] {
          return std::unique_ptr<RequestSource>(SyntheticSource::block_local(
              n, bs, k, T, stay, alpha, trace_seed));
        };
        break;
    }
  }
  return out;
}

}  // namespace bac::verify
