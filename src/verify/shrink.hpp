// Greedy instance shrinking for fuzz failures.
//
// Given a failing instance and a predicate that re-checks the failure,
// repeatedly apply the trace mutators (halve the horizon, drop whole
// blocks, shrink k) and keep every mutation under which the violation
// persists, until no move makes progress. The result is the small
// instance that lands in the repro artifact.
#pragma once

#include <functional>

#include "core/instance.hpp"

namespace bac::verify {

/// True when the candidate instance still exhibits the failure. The
/// predicate must be safe to call on any valid instance (the shrinker
/// only offers candidates that pass Instance::validate()).
using FailurePredicate = std::function<bool(const Instance&)>;

struct ShrinkOutcome {
  Instance inst;      ///< smallest failing instance found
  int rounds = 0;     ///< mutations adopted
  bool changed = false;
};

/// Greedily shrink `start` (which must satisfy `still_fails`). Bounded by
/// `max_rounds` adopted mutations; each candidate costs one predicate
/// evaluation.
ShrinkOutcome shrink_instance(const Instance& start,
                              const FailurePredicate& still_fails,
                              int max_rounds = 200);

}  // namespace bac::verify
