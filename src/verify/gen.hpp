// Randomized instance generation for differential fuzz-verification.
//
// Every fuzz seed maps deterministically to one block-aware caching
// instance: a block structure (singleton / uniform / skewed / single-block
// shapes), per-block costs (unit, exact-dyadic weighted, or log-uniform),
// a cache size (including the k = beta and k > n edges), and a request
// stream drawn from the full generator line-up (uniform, zipf, scan,
// phased, block-local) — plus deliberately thin edges such as T < k and
// T = 0 that one-at-a-time tests historically missed (the phased_trace
// division by zero survived three PRs).
//
// When the generated shape has a streaming twin (contiguous blocks and a
// SyntheticSource-backed trace kind), the GeneratedInstance carries a
// factory reproducing the exact same stream, which the
// streaming≡materialized oracle replays against the materialized run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/instance.hpp"
#include "core/request_source.hpp"

namespace bac::verify {

struct GenOptions {
  int max_pages = 48;
  long long max_T = 320;
  /// Smoke tier for CI: tiny universes so 500 seeds finish in seconds.
  bool tiny = false;
};

struct GeneratedInstance {
  Instance inst;
  std::string descriptor;  ///< human-readable recipe, lands in repro artifacts
  /// Reproduces the request stream as a streaming source (same generator,
  /// same seed, bit-for-bit); null when the shape has no streaming twin
  /// (non-contiguous blocks, weighted costs, or a twinless trace kind).
  std::function<std::unique_ptr<RequestSource>()> streaming_twin;
};

/// Deterministic: the same (seed, options) always yields the same instance.
GeneratedInstance random_instance(std::uint64_t seed,
                                  const GenOptions& options = {});

}  // namespace bac::verify
