// The invariant battery of the differential fuzz-verification subsystem.
//
// The paper's layers sandwich each other — lower bounds <= OPT <=
// feasible algorithms (Sections 3-5) — and the implementation adds
// equalities of its own (streaming == materialized replay, capture ==
// replay, serial == parallel Monte-Carlo, 1 == N server threads). Each
// oracle family checks one of those relations on an arbitrary instance
// and reports every violation it can find; the fuzz driver feeds the
// families randomized instances and shrinks whatever fails.
//
// Families (names are the CLI / FuzzConfig identifiers):
//   cost_sandwich    lb <= OPT_evict <= every feasible policy's eviction
//                    cost (and OPT_fetch <= fetch cost); det-online within
//                    its proven k ratio, dual objectives certified below
//                    OPT; fractional cost above its own dual. Exact OPT /
//                    LP solvers cap feasibility via OracleOptions.
//   cost_model       Section 2 accounting identities on every run:
//                    batched <= classic <= beta x batched per side,
//                    fetched - evicted == final occupancy, misses <=
//                    fetched pages, block events <= page moves, cost
//                    bracketed by event counts x {min,max} block cost.
//   streaming        simulate() over the materialized instance equals
//                    simulate() over the streaming twin, field by field.
//   schedule_replay  record_schedule capture replays through
//                    replay_schedule() to the same final state, and to
//                    identical costs when no transient was netted out.
//   policy_equivalence
//                    every flat-index classical policy (LRU, FIFO, LFU,
//                    Belady, GreedyDual, BlockLRU±prefetch) replays to
//                    bit-identical costs, counters, and per-step schedule
//                    sets against its frozen std::set reference twin
//                    (verify/reference_policies.hpp) — the golden-corpus
//                    semantics, checked on arbitrary fuzzed instances.
//   mc_equivalence   simulate_mc parallel (clone-sharded) == forced-serial
//                    replay, bit for bit.
//   concurrency      ConcurrentCache + serve_partitioned at 1 thread ==
//                    N threads, bit-identical block-aware cost.
//
// A policy throwing (infeasibility detected by the simulator's audit,
// or any other exception) is itself reported as a violation — that is
// how an injected off-by-one eviction bug surfaces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "verify/gen.hpp"

namespace bac::verify {

struct Violation {
  std::string family;  ///< oracle family that fired
  std::string detail;  ///< what failed, with the numbers involved
};

/// Factory for the policies a family exercises; empty => the full zoo.
/// Tests inject deliberately buggy policies through this.
using PolicySetFactory =
    std::function<std::vector<std::unique_ptr<OnlinePolicy>>()>;

struct OracleOptions {
  std::uint64_t seed = 1;
  /// cost_sandwich feasibility caps (exact OPT is exponential, the LP is
  /// a dense simplex); instances beyond the caps skip the family.
  int sandwich_max_pages = 10;
  long long sandwich_max_T = 36;
  int mc_trials = 3;   ///< trials for mc_equivalence
  int threads = 4;     ///< client threads for the concurrency family
  /// Cap on how many (cloneable) policies the expensive thread-spawning
  /// families run per instance.
  int max_concurrency_policies = 3;
  PolicySetFactory policies;  ///< null => make_policy_zoo(All)
};

/// The family identifiers, in canonical order.
std::vector<std::string> oracle_family_names();

/// Run one family over the instance; throws std::invalid_argument for an
/// unknown family name.
std::vector<Violation> check_family(const std::string& family,
                                    const GeneratedInstance& gi,
                                    const OracleOptions& options);

/// Run `families` (empty = all) and concatenate the violations.
std::vector<Violation> check_instance(const GeneratedInstance& gi,
                                      const std::vector<std::string>& families,
                                      const OracleOptions& options);

}  // namespace bac::verify
