// Frozen std::set-based reference implementations of the deterministic
// classical policies, for the policy_equivalence oracle family.
//
// The production policies in algs/policies/ keep their eviction orders
// in the flat primitives from core/eviction_index.hpp (intrusive lists,
// lazy heaps). These twins keep the original
// std::set<std::pair<Key, id>> bookkeeping, verbatim from the code the
// rewrite replaced — deliberately boring, allocation-heavy, and obviously
// ordered. The oracle replays every fuzzed instance through both and
// demands bit-identical costs, counters, and (order-normalized) captured
// schedules, so any tie-breaking drift in the fast indexes diffs red
// against the textbook structure instead of surviving silently.
//
// Do not "optimize" these: their entire value is staying a frozen
// specification.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "core/policy.hpp"

namespace bac::verify {

/// (registry spec, frozen reference twin) for every deterministic policy
/// rewritten onto the flat eviction indexes: the classical set (lru,
/// fifo, lfu, belady, greedy_dual, block_lru, block_lru_prefetch) plus
/// the modern zoo (s3fifo — default and one off-default knob spec —
/// sieve, arc, block_s3fifo, block_sieve). Specs resolve through
/// make_policy, so the parameterized-spec grammar is fuzzed too.
std::vector<std::pair<std::string, std::unique_ptr<OnlinePolicy>>>
reference_policy_twins();

/// Replay `inst` through both policies (record_schedule on, seed
/// forwarded) and describe every divergence: any cost/counter field that
/// differs, a different final cache, or any step whose eviction/fetch
/// sets differ (compared as sorted sets — capture order within a step is
/// unspecified). Empty result == the runs are equivalent. `label` prefixes
/// the messages. A policy throwing is itself reported as a divergence.
std::vector<std::string> diff_policy_runs(const Instance& inst,
                                          OnlinePolicy& a, OnlinePolicy& b,
                                          std::uint64_t seed,
                                          const std::string& label);

}  // namespace bac::verify
