// The differential fuzz driver: generate -> check -> shrink -> reproduce.
//
// Each seed deterministically generates one randomized instance
// (verify/gen.hpp), runs the selected oracle families over it
// (verify/oracles.hpp), and — on any violation — greedily shrinks the
// instance while the violation persists (verify/shrink.hpp), then emits a
// self-contained repro artifact: the shrunken instance as a `.bact` trace
// plus a JSON descriptor carrying the seed, family, violation detail, and
// the exact CLI line that replays it (`bacfuzz --replay <file>`).
//
// tools/bacfuzz is a thin CLI over run_fuzz(); tests drive it directly,
// including with deliberately injected buggy policies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "verify/oracles.hpp"

namespace bac::verify {

struct FuzzConfig {
  std::uint64_t base_seed = 1;
  int seeds = 100;
  /// CI smoke tier: tiny instances and tight solver caps so hundreds of
  /// seeds finish within a bounded minute.
  bool smoke = false;
  std::vector<std::string> families;  ///< empty = all oracle families
  std::string artifact_dir;           ///< "" = do not write repro artifacts
  int max_failures = 1;               ///< stop fuzzing after this many
  OracleOptions oracle;               ///< caps + optional policy injection
  GenOptions gen;                     ///< instance size envelope
  /// Optional observability hooks (nullptr = disabled): a campaign span
  /// with progress events every 100 seeds and one `violation` event per
  /// failure, plus fuzz_seeds_total / fuzz_family_checks_total /
  /// fuzz_violations_total counters.
  obs::MetricRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
};

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::string family;
  std::string detail;       ///< first violation's message
  std::string descriptor;   ///< generator recipe of the original instance
  Instance shrunk;          ///< smallest instance still failing
  int shrink_rounds = 0;
  std::string bact_path;    ///< repro artifacts ("" when not written)
  std::string json_path;
};

struct FuzzReport {
  int seeds_run = 0;
  long long family_checks = 0;  ///< (seed, family) pairs evaluated
  std::vector<FuzzFailure> failures;
};

/// Run the campaign. Violations are collected (up to max_failures), never
/// thrown; infrastructure errors (unwritable artifact dir) throw.
FuzzReport run_fuzz(const FuzzConfig& config);

/// Re-check a previously saved repro instance against the families
/// (empty = all). Used by `bacfuzz --replay`.
std::vector<Violation> replay_instance(const Instance& inst,
                                       const std::vector<std::string>& families,
                                       const OracleOptions& options);

}  // namespace bac::verify
