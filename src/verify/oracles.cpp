#include "verify/oracles.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "algs/det_online.hpp"
#include "algs/fractional.hpp"
#include "algs/lower_bounds.hpp"
#include "algs/opt.hpp"
#include "algs/zoo.hpp"
#include "core/schedule.hpp"
#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "server/concurrent_cache.hpp"
#include "server/dispatch.hpp"
#include "verify/reference_policies.hpp"

namespace bac::verify {

namespace {

/// Relative-absolute slack for comparisons that are equalities or <= in
/// real arithmetic but accumulate FP error along different association
/// orders.
bool leq(double a, double b) {
  return a <= b + 1e-9 * (1.0 + std::abs(a) + std::abs(b));
}

std::string fmt(double x) {
  std::ostringstream os;
  os.precision(17);
  os << x;
  return os.str();
}

std::vector<std::unique_ptr<OnlinePolicy>> policy_set(
    const OracleOptions& options) {
  return options.policies ? options.policies() : make_policy_zoo();
}

void report(std::vector<Violation>& out, const std::string& family,
            std::string detail) {
  out.push_back({family, std::move(detail)});
}

/// simulate() with every policy exception converted into a violation.
/// Returns false (and reports) when the run failed.
bool run_or_report(const Instance& inst, OnlinePolicy& policy,
                   const SimOptions& sim_options, const std::string& family,
                   std::vector<Violation>& out, RunResult& result) {
  try {
    result = simulate(inst, policy, sim_options);
    return true;
  } catch (const std::exception& e) {
    report(out, family, "policy " + policy.name() + " failed: " + e.what());
    return false;
  }
}

// --- cost_model -------------------------------------------------------------

std::vector<Violation> check_cost_model(const GeneratedInstance& gi,
                                        const OracleOptions& options) {
  std::vector<Violation> out;
  const Instance& inst = gi.inst;
  const double beta = inst.blocks.beta();
  for (const auto& policy : policy_set(options)) {
    SimOptions sim;
    sim.seed = options.seed;
    RunResult r;
    if (!run_or_report(inst, *policy, sim, "cost_model", out, r)) continue;
    const std::string who = policy->name() + ": ";
    if (r.violations != 0)
      report(out, "cost_model", who + "feasibility repairs > 0");
    if (!leq(r.eviction_cost, r.classic_eviction_cost))
      report(out, "cost_model",
             who + "batched eviction " + fmt(r.eviction_cost) +
                 " > classic " + fmt(r.classic_eviction_cost));
    if (!leq(r.fetch_cost, r.classic_fetch_cost))
      report(out, "cost_model",
             who + "batched fetch " + fmt(r.fetch_cost) + " > classic " +
                 fmt(r.classic_fetch_cost));
    if (!leq(r.classic_eviction_cost, beta * r.eviction_cost))
      report(out, "cost_model",
             who + "classic eviction " + fmt(r.classic_eviction_cost) +
                 " > beta x batched " + fmt(beta * r.eviction_cost));
    if (!leq(r.classic_fetch_cost, beta * r.fetch_cost))
      report(out, "cost_model",
             who + "classic fetch " + fmt(r.classic_fetch_cost) +
                 " > beta x batched " + fmt(beta * r.fetch_cost));
    if (r.fetched_pages - r.evicted_pages != r.cached_pages)
      report(out, "cost_model",
             who + "fetched " + std::to_string(r.fetched_pages) +
                 " - evicted " + std::to_string(r.evicted_pages) +
                 " != cached " + std::to_string(r.cached_pages));
    if (r.misses > r.fetched_pages)
      report(out, "cost_model",
             who + "misses " + std::to_string(r.misses) +
                 " > fetched pages " + std::to_string(r.fetched_pages));
    if (r.requests != inst.horizon())
      report(out, "cost_model",
             who + "served " + std::to_string(r.requests) + " != horizon " +
                 std::to_string(inst.horizon()));
    if (r.evict_block_events > r.evicted_pages ||
        r.fetch_block_events > r.fetched_pages)
      report(out, "cost_model", who + "block events exceed page moves");
    if (!leq(r.eviction_cost,
             static_cast<double>(r.evict_block_events) *
                 inst.blocks.max_cost()) ||
        !leq(static_cast<double>(r.evict_block_events) *
                 inst.blocks.min_cost(),
             r.eviction_cost))
      report(out, "cost_model",
             who + "eviction cost outside [events x c_min, events x c_max]");
    if (!leq(r.fetch_cost,
             static_cast<double>(r.fetch_block_events) *
                 inst.blocks.max_cost()) ||
        !leq(static_cast<double>(r.fetch_block_events) *
                 inst.blocks.min_cost(),
             r.fetch_cost))
      report(out, "cost_model",
             who + "fetch cost outside [events x c_min, events x c_max]");
    if (r.cached_pages > inst.k)
      report(out, "cost_model", who + "final occupancy exceeds k");
  }
  return out;
}

// --- cost_sandwich ----------------------------------------------------------

std::vector<Violation> check_cost_sandwich(const GeneratedInstance& gi,
                                           const OracleOptions& options) {
  std::vector<Violation> out;
  const Instance& inst = gi.inst;
  if (inst.n_pages() > options.sandwich_max_pages ||
      inst.horizon() > options.sandwich_max_T || inst.horizon() == 0)
    return out;

  OptResult opt_evict, opt_fetch;
  try {
    opt_evict = exact_opt_eviction(inst);
    opt_fetch = exact_opt_fetching(inst);
  } catch (const std::exception& e) {
    report(out, "cost_sandwich", std::string("exact OPT failed: ") + e.what());
    return out;
  }
  if (!opt_evict.exact || !opt_fetch.exact) return out;  // state cap hit

  // Lower-bound stack: LP (when sized for the dense simplex) <= OPT.
  // exact_cutoff_pages = 0 skips the redundant exact solve inside.
  try {
    const EvictionLowerBound lb = eviction_lower_bound(inst, 0);
    if (lb.source != EvictionLowerBound::Source::None &&
        !leq(lb.value, opt_evict.cost))
      report(out, "cost_sandwich",
             "lower bound " + fmt(lb.value) + " > OPT_evict " +
                 fmt(opt_evict.cost));
  } catch (const std::exception&) {
    // Simplex non-convergence is a capacity issue, not a violation.
  }

  // Every feasible policy run upper-bounds OPT in both models.
  for (const auto& policy : policy_set(options)) {
    SimOptions sim;
    sim.seed = options.seed;
    RunResult r;
    if (!run_or_report(inst, *policy, sim, "cost_sandwich", out, r)) continue;
    const std::string who = policy->name() + ": ";
    if (!leq(opt_evict.cost, r.eviction_cost))
      report(out, "cost_sandwich",
             who + "eviction cost " + fmt(r.eviction_cost) +
                 " beat OPT_evict " + fmt(opt_evict.cost));
    if (!leq(opt_fetch.cost, r.fetch_cost))
      report(out, "cost_sandwich",
             who + "fetch cost " + fmt(r.fetch_cost) + " beat OPT_fetch " +
                 fmt(opt_fetch.cost));
  }

  // Algorithm 1: dual certified below OPT, primal within k x dual
  // (Theorem 3.3), run within k x OPT.
  {
    DetOnlineBlockAware det;
    RunResult r;
    SimOptions sim;
    sim.seed = options.seed;
    if (run_or_report(inst, det, sim, "cost_sandwich", out, r)) {
      const double k = inst.k;
      if (!leq(det.dual_objective(), opt_evict.cost))
        report(out, "cost_sandwich",
               "det-online dual " + fmt(det.dual_objective()) +
                   " > OPT_evict " + fmt(opt_evict.cost));
      if (det.dual_objective() > 0) {
        if (!leq(det.primal_cost(), k * det.dual_objective()))
          report(out, "cost_sandwich",
                 "det-online primal " + fmt(det.primal_cost()) +
                     " > k x dual " + fmt(k * det.dual_objective()));
      } else if (det.primal_cost() != 0.0) {
        report(out, "cost_sandwich",
               "det-online paid " + fmt(det.primal_cost()) +
                   " with zero dual");
      }
      if (!leq(r.eviction_cost, k * opt_evict.cost))
        report(out, "cost_sandwich",
               "det-online eviction cost " + fmt(r.eviction_cost) +
                   " > k x OPT " + fmt(k * opt_evict.cost) +
                   " (Theorem 3.3)");
      if (det.max_load_ratio() > 1.0 + 1e-9)
        report(out, "cost_sandwich",
               "det-online dual load ratio " + fmt(det.max_load_ratio()) +
                   " > 1 (dual infeasible)");
    }
  }

  // Algorithm 2: fractional cost above its own (feasible) dual, dual below
  // OPT.
  try {
    FractionalBlockAware frac(inst.blocks, inst.k);
    for (Time t = 1; t <= inst.horizon(); ++t)
      frac.step(t, inst.request_at(t));
    if (!leq(frac.dual_objective(), frac.fractional_cost()))
      report(out, "cost_sandwich",
             "fractional cost " + fmt(frac.fractional_cost()) +
                 " below its dual " + fmt(frac.dual_objective()));
    if (!leq(frac.dual_objective(), opt_evict.cost))
      report(out, "cost_sandwich",
             "fractional dual " + fmt(frac.dual_objective()) +
                 " > OPT_evict " + fmt(opt_evict.cost));
  } catch (const std::exception& e) {
    report(out, "cost_sandwich",
           std::string("fractional algorithm failed: ") + e.what());
  }
  return out;
}

// --- streaming --------------------------------------------------------------

std::vector<Violation> check_streaming(const GeneratedInstance& gi,
                                       const OracleOptions& options) {
  std::vector<Violation> out;
  if (!gi.streaming_twin) return out;
  const Instance& inst = gi.inst;
  for (const auto& policy : policy_set(options)) {
    if (policy->requires_future()) continue;  // streams carry no future
    SimOptions sim;
    sim.seed = options.seed;
    RunResult mat;
    if (!run_or_report(inst, *policy, sim, "streaming", out, mat)) continue;
    RunResult str;
    try {
      const auto source = gi.streaming_twin();
      str = simulate(*source, *policy, sim);
    } catch (const std::exception& e) {
      report(out, "streaming",
             "policy " + policy->name() + " failed on stream: " + e.what());
      continue;
    }
    const std::string who = policy->name() + ": ";
    if (str.eviction_cost != mat.eviction_cost ||
        str.fetch_cost != mat.fetch_cost ||
        str.classic_eviction_cost != mat.classic_eviction_cost ||
        str.classic_fetch_cost != mat.classic_fetch_cost)
      report(out, "streaming",
             who + "costs diverge: stream (" + fmt(str.eviction_cost) + ", " +
                 fmt(str.fetch_cost) + ") vs materialized (" +
                 fmt(mat.eviction_cost) + ", " + fmt(mat.fetch_cost) + ")");
    if (str.requests != mat.requests || str.misses != mat.misses ||
        str.cached_pages != mat.cached_pages ||
        str.evicted_pages != mat.evicted_pages ||
        str.fetched_pages != mat.fetched_pages ||
        str.evict_block_events != mat.evict_block_events ||
        str.fetch_block_events != mat.fetch_block_events)
      report(out, "streaming", who + "counters diverge between stream and "
                                     "materialized replay");
  }
  return out;
}

// --- schedule_replay --------------------------------------------------------

std::vector<Violation> check_schedule_replay(const GeneratedInstance& gi,
                                             const OracleOptions& options) {
  std::vector<Violation> out;
  const Instance& inst = gi.inst;
  for (const auto& policy : policy_set(options)) {
    SimOptions sim;
    sim.seed = options.seed;
    sim.record_schedule = true;
    RunResult live;
    if (!run_or_report(inst, *policy, sim, "schedule_replay", out, live))
      continue;
    const ReplayResult replay = replay_schedule(inst, live.schedule);
    const std::string who = policy->name() + ": ";
    if (!replay.feasible) {
      report(out, "schedule_replay",
             who + "captured schedule replays infeasible: " +
                 replay.infeasibility);
      continue;
    }
    if (replay.final_cache != live.final_cache)
      report(out, "schedule_replay",
             who + "replay final cache state diverges from live run");
    if (live.capture_cancellations == 0) {
      if (replay.eviction_cost != live.eviction_cost ||
          replay.fetch_cost != live.fetch_cost ||
          replay.classic_eviction_cost != live.classic_eviction_cost ||
          replay.classic_fetch_cost != live.classic_fetch_cost ||
          replay.evicted_pages != live.evicted_pages ||
          replay.fetched_pages != live.fetched_pages ||
          replay.evict_block_events != live.evict_block_events ||
          replay.fetch_block_events != live.fetch_block_events)
        report(out, "schedule_replay",
               who + "replay accounting diverges from live run (evict " +
                   fmt(replay.eviction_cost) + " vs " +
                   fmt(live.eviction_cost) + ", fetch " +
                   fmt(replay.fetch_cost) + " vs " + fmt(live.fetch_cost) +
                   ")");
    } else {
      // Transients were netted out of the capture: the replay may only be
      // cheaper than the live run, never dearer.
      if (!leq(replay.eviction_cost, live.eviction_cost) ||
          !leq(replay.fetch_cost, live.fetch_cost))
        report(out, "schedule_replay",
               who + "netted replay costs more than the live run");
    }
  }
  return out;
}

// --- policy_equivalence -----------------------------------------------------

std::vector<Violation> check_policy_equivalence(const GeneratedInstance& gi,
                                                const OracleOptions& options) {
  std::vector<Violation> out;
  for (auto& [name, ref] : reference_policy_twins()) {
    std::unique_ptr<OnlinePolicy> prod;
    try {
      prod = make_policy(name);
    } catch (const std::exception& e) {
      report(out, "policy_equivalence",
             "registry lookup for '" + name + "' failed: " + e.what());
      continue;
    }
    for (const std::string& msg :
         diff_policy_runs(gi.inst, *prod, *ref, options.seed, name))
      report(out, "policy_equivalence", msg);
  }
  return out;
}

// --- mc_equivalence ---------------------------------------------------------

/// Forwards everything but clone(), forcing simulate_mc down its serial
/// fallback path.
class NonCloneable final : public OnlinePolicy {
 public:
  explicit NonCloneable(OnlinePolicy& inner) : inner_(&inner) {}
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  void reset(const Instance& inst) override { inner_->reset(inst); }
  void seed(std::uint64_t s) override { inner_->seed(s); }
  void on_request(Time t, PageId p, CacheOps& cache) override {
    inner_->on_request(t, p, cache);
  }
  [[nodiscard]] bool randomized() const override {
    return inner_->randomized();
  }
  [[nodiscard]] bool requires_future() const override {
    return inner_->requires_future();
  }
  // clone() stays the base nullptr.

 private:
  OnlinePolicy* inner_;
};

std::vector<Violation> check_mc_equivalence(const GeneratedInstance& gi,
                                            const OracleOptions& options) {
  std::vector<Violation> out;
  const Instance& inst = gi.inst;
  int used = 0;
  for (const auto& policy : policy_set(options)) {
    if (!policy->randomized() || policy->requires_future()) continue;
    if (used++ >= options.max_concurrency_policies) break;
    try {
      const MonteCarloResult parallel =
          simulate_mc(inst, *policy, options.mc_trials, options.seed);
      NonCloneable serial_policy(*policy);
      const MonteCarloResult serial =
          simulate_mc(inst, serial_policy, options.mc_trials, options.seed);
      if (parallel.mean_eviction_cost != serial.mean_eviction_cost ||
          parallel.mean_fetch_cost != serial.mean_fetch_cost ||
          parallel.stddev_eviction_cost != serial.stddev_eviction_cost ||
          parallel.stddev_fetch_cost != serial.stddev_fetch_cost ||
          parallel.mean_total_cost != serial.mean_total_cost ||
          parallel.stddev_total_cost != serial.stddev_total_cost ||
          parallel.total_requests != serial.total_requests)
        report(out, "mc_equivalence",
               policy->name() + ": parallel trials diverge from serial (" +
                   fmt(parallel.mean_total_cost) + " vs " +
                   fmt(serial.mean_total_cost) + ")");
    } catch (const std::exception& e) {
      report(out, "mc_equivalence",
             "policy " + policy->name() + " failed: " + e.what());
    }
  }
  return out;
}

// --- concurrency ------------------------------------------------------------

std::vector<Violation> check_concurrency(const GeneratedInstance& gi,
                                         const OracleOptions& options) {
  std::vector<Violation> out;
  const Instance& inst = gi.inst;
  if (inst.requests.empty()) return out;
  int used = 0;
  for (const auto& policy : policy_set(options)) {
    if (policy->requires_future() || !policy->clone()) continue;
    if (used++ >= options.max_concurrency_policies) break;
    try {
      const int shards = server::ConcurrentCache::max_shards(inst);
      server::ConcurrentCache one(inst, *policy, shards, options.seed);
      server::serve_partitioned(one, inst.requests, 1);
      server::ConcurrentCache many(inst, *policy, shards, options.seed);
      server::serve_partitioned(many, inst.requests, options.threads);
      const server::ServerStats a = one.stats();
      const server::ServerStats b = many.stats();
      if (a.total_cost() != b.total_cost() ||
          a.eviction_cost != b.eviction_cost ||
          a.fetch_cost != b.fetch_cost || a.hits != b.hits ||
          a.misses != b.misses || a.evicted_pages != b.evicted_pages ||
          a.fetched_pages != b.fetched_pages ||
          a.cached_pages != b.cached_pages)
        report(out, "concurrency",
               policy->name() + ": 1-thread cost " + fmt(a.total_cost()) +
                   " != " + std::to_string(options.threads) +
                   "-thread cost " + fmt(b.total_cost()));
      // The bacobs determinism contract: every exported event counter —
      // not just the stats fields above — must be bit-identical across
      // thread counts. snapshot() is name-sorted, so a pairwise walk
      // compares the full counter sections.
      obs::MetricRegistry reg_one, reg_many;
      one.export_metrics(reg_one);
      many.export_metrics(reg_many);
      const obs::MetricsSnapshot snap_one = reg_one.snapshot();
      const obs::MetricsSnapshot snap_many = reg_many.snapshot();
      if (snap_one.counters != snap_many.counters) {
        std::string diff = "exported counter sets differ";
        for (std::size_t c = 0;
             c < snap_one.counters.size() && c < snap_many.counters.size();
             ++c)
          if (snap_one.counters[c] != snap_many.counters[c]) {
            diff = snap_one.counters[c].first + ": 1-thread " +
                   std::to_string(snap_one.counters[c].second) + " != " +
                   std::to_string(options.threads) + "-thread " +
                   std::to_string(snap_many.counters[c].second);
            break;
          }
        report(out, "concurrency",
               policy->name() + ": metrics counters not thread-count "
               "invariant (" + diff + ")");
      }
    } catch (const std::exception& e) {
      report(out, "concurrency",
             "policy " + policy->name() + " failed: " + e.what());
    }
  }
  return out;
}

using FamilyFn = std::vector<Violation> (*)(const GeneratedInstance&,
                                            const OracleOptions&);
struct Family {
  const char* name;
  FamilyFn run;
};

constexpr Family kFamilies[] = {
    {"cost_sandwich", check_cost_sandwich},
    {"cost_model", check_cost_model},
    {"streaming", check_streaming},
    {"schedule_replay", check_schedule_replay},
    {"policy_equivalence", check_policy_equivalence},
    {"mc_equivalence", check_mc_equivalence},
    {"concurrency", check_concurrency},
};

}  // namespace

std::vector<std::string> oracle_family_names() {
  std::vector<std::string> names;
  for (const Family& f : kFamilies) names.emplace_back(f.name);
  return names;
}

std::vector<Violation> check_family(const std::string& family,
                                    const GeneratedInstance& gi,
                                    const OracleOptions& options) {
  for (const Family& f : kFamilies)
    if (family == f.name) return f.run(gi, options);
  throw std::invalid_argument("check_family: unknown oracle family '" +
                              family + "'");
}

std::vector<Violation> check_instance(const GeneratedInstance& gi,
                                      const std::vector<std::string>& families,
                                      const OracleOptions& options) {
  std::vector<Violation> out;
  if (families.empty()) {
    for (const Family& f : kFamilies) {
      auto v = f.run(gi, options);
      out.insert(out.end(), std::make_move_iterator(v.begin()),
                 std::make_move_iterator(v.end()));
    }
    return out;
  }
  for (const std::string& name : families) {
    auto v = check_family(name, gi, options);
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return out;
}

}  // namespace bac::verify
