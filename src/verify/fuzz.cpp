#include "verify/fuzz.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "trace/bact.hpp"
#include "util/json.hpp"
#include "verify/shrink.hpp"

namespace bac::verify {

namespace {

/// Smoke-tier solver caps: 500 seeds must clear CI in well under a minute.
OracleOptions smoke_caps(OracleOptions options) {
  options.sandwich_max_pages = 8;
  options.sandwich_max_T = 24;
  options.mc_trials = 3;
  return options;
}

void write_artifacts(FuzzFailure& failure, const std::string& dir,
                     bool smoke) {
  namespace fs = std::filesystem;
  fs::create_directories(dir);
  const std::string stem = "repro_seed" + std::to_string(failure.seed) + "_" +
                           failure.family;
  failure.bact_path = (fs::path(dir) / (stem + ".bact")).string();
  failure.json_path = (fs::path(dir) / (stem + ".json")).string();
  save_bact(failure.shrunk, failure.bact_path);

  std::ofstream os(failure.json_path);
  if (!os)
    throw std::runtime_error("bacfuzz: cannot write artifact " +
                             failure.json_path);
  os << "{\n  \"seed\": " << failure.seed << ",\n  \"family\": ";
  write_json_string(os, failure.family);
  os << ",\n  \"detail\": ";
  write_json_string(os, failure.detail);
  os << ",\n  \"descriptor\": ";
  write_json_string(os, failure.descriptor);
  os << ",\n  \"shrink_rounds\": " << failure.shrink_rounds
     << ",\n  \"n\": " << failure.shrunk.n_pages()
     << ",\n  \"m\": " << failure.shrunk.blocks.n_blocks()
     << ",\n  \"beta\": " << failure.shrunk.blocks.beta()
     << ",\n  \"k\": " << failure.shrunk.k
     << ",\n  \"T\": " << failure.shrunk.horizon() << ",\n  \"bact\": ";
  write_json_string(os, failure.bact_path);
  os << ",\n  \"repro\": ";
  // The streaming family compares against the generator's streaming twin,
  // which only regenerating from the seed (under the same size tier) can
  // rebuild — a --replay of the saved .bact has no twin and would
  // vacuously pass. Every line carries --seed <S> so the replay's oracle
  // seed (policy seeding, MC trial derivation) matches the failing run.
  write_json_string(
      os, failure.family == "streaming"
              ? "bacfuzz --seeds 1 --seed " + std::to_string(failure.seed) +
                    " --families streaming" + (smoke ? " --smoke" : "")
              : "bacfuzz --replay " + failure.bact_path + " --families " +
                    failure.family + " --seed " +
                    std::to_string(failure.seed));
  os << "\n}\n";
  if (!os.flush())
    throw std::runtime_error("bacfuzz: short write to " + failure.json_path);
}

}  // namespace

std::vector<Violation> replay_instance(const Instance& inst,
                                       const std::vector<std::string>& families,
                                       const OracleOptions& options) {
  GeneratedInstance gi;
  gi.inst = inst;
  gi.descriptor = "replayed instance";
  return check_instance(gi, families, options);
}

FuzzReport run_fuzz(const FuzzConfig& config) {
  FuzzReport report;
  const std::vector<std::string> families =
      config.families.empty() ? oracle_family_names() : config.families;
  const OracleOptions base_oracle =
      config.smoke ? smoke_caps(config.oracle) : config.oracle;
  GenOptions gen = config.gen;
  gen.tiny = gen.tiny || config.smoke;

  obs::Span campaign(config.trace, "fuzz");
  for (int i = 0; i < config.seeds; ++i) {
    if (static_cast<int>(report.failures.size()) >= config.max_failures)
      break;
    if (config.trace && i > 0 && i % 100 == 0) {
      obs::TraceEvent e;
      e.type = "progress";
      e.name = "fuzz";
      e.num("seeds_run", report.seeds_run)
          .num("family_checks", static_cast<double>(report.family_checks))
          .num("violations", static_cast<double>(report.failures.size()));
      config.trace->emit(e);
    }
    const std::uint64_t seed = config.base_seed + static_cast<std::uint64_t>(i);
    const GeneratedInstance gi = random_instance(seed, gen);
    ++report.seeds_run;

    OracleOptions oracle = base_oracle;
    oracle.seed = seed;
    for (const std::string& family : families) {
      ++report.family_checks;
      const std::vector<Violation> violations =
          check_family(family, gi, oracle);
      if (violations.empty()) continue;

      FuzzFailure failure;
      failure.seed = seed;
      failure.family = family;
      failure.detail = violations.front().detail;
      failure.descriptor = gi.descriptor;

      // Shrink while the family still reports any violation. The
      // streaming family compares against the generator twin, which a
      // mutated instance no longer has — its failures ship unshrunk.
      if (family == "streaming") {
        failure.shrunk = gi.inst;
      } else {
        const FailurePredicate still_fails = [&](const Instance& cand) {
          GeneratedInstance shrunk_gi;
          shrunk_gi.inst = cand;
          return !check_family(family, shrunk_gi, oracle).empty();
        };
        ShrinkOutcome outcome = shrink_instance(gi.inst, still_fails);
        failure.shrunk = std::move(outcome.inst);
        failure.shrink_rounds = outcome.rounds;
      }

      if (!config.artifact_dir.empty())
        write_artifacts(failure, config.artifact_dir, config.smoke);
      if (config.trace) {
        obs::TraceEvent e;
        e.type = "violation";
        e.name = family;
        e.num("seed", static_cast<double>(seed))
            .num("shrink_rounds", failure.shrink_rounds)
            .str("detail", failure.detail);
        config.trace->emit(e);
      }
      report.failures.push_back(std::move(failure));
      if (static_cast<int>(report.failures.size()) >= config.max_failures)
        break;
    }
  }

  if (config.metrics) {
    config.metrics->counter("fuzz_seeds_total")
        .inc(static_cast<std::uint64_t>(report.seeds_run));
    config.metrics->counter("fuzz_family_checks_total")
        .inc(static_cast<std::uint64_t>(report.family_checks));
    config.metrics->counter("fuzz_violations_total")
        .inc(report.failures.size());
  }
  campaign.num("seeds_run", report.seeds_run);
  campaign.num("family_checks", static_cast<double>(report.family_checks));
  campaign.num("violations", static_cast<double>(report.failures.size()));
  campaign.end();
  return report;
}

}  // namespace bac::verify
