// Golden corpus: pinned exact costs for every deterministic policy.
//
// `write_golden_corpus` generates a small set of instances (committed as
// .bact files) and one `.expected` sidecar per instance listing, for each
// deterministic registry policy, the exact run costs printed with %.17g
// (round-trippable doubles). `check_golden_corpus` replays the corpus and
// compares bit-for-bit, so any refactor that changes a single double in
// any policy/cost-model/simulator path diffs red against pinned numbers.
//
// Costs in the corpus are exact dyadic values (1, 0.5, 2, ...) so the
// pinned sums never depend on platform libm; the traces themselves are
// pinned inside the .bact files, so generator changes don't invalidate
// the corpus either. Regenerate deliberately with `bacfuzz --golden <dir>`
// when a cost change is intended, and review the diff.
#pragma once

#include <string>
#include <vector>

namespace bac::verify {

/// Write the corpus (golden_XX.bact + golden_XX.expected) into `dir`
/// (created if missing). Returns the number of instances written.
int write_golden_corpus(const std::string& dir);

/// Replay every golden_XX.expected under `dir`; returns one human-readable
/// message per mismatch (empty = corpus reproduces exactly). Throws on a
/// missing/unreadable corpus.
std::vector<std::string> check_golden_corpus(const std::string& dir);

}  // namespace bac::verify
