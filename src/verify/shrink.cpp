#include "verify/shrink.hpp"

#include <optional>
#include <stdexcept>

#include "trace/mutators.hpp"

namespace bac::verify {

namespace {

/// Apply one mutation; nullopt when the mutator rejects it (invalid
/// candidate) or the failure disappears under it.
std::optional<Instance> try_adopt(const FailurePredicate& still_fails,
                                  const std::function<Instance()>& mutate) {
  try {
    Instance cand = mutate();
    if (still_fails(cand)) return cand;
  } catch (const std::invalid_argument&) {
    // Mutation not applicable to this instance shape.
  }
  return std::nullopt;
}

}  // namespace

ShrinkOutcome shrink_instance(const Instance& start,
                              const FailurePredicate& still_fails,
                              int max_rounds) {
  ShrinkOutcome out{start, 0, false};
  bool progress = true;
  while (progress && out.rounds < max_rounds) {
    progress = false;
    const Instance& cur = out.inst;

    // 1. Halve the horizon, then peel single trailing requests.
    if (cur.horizon() > 0) {
      if (auto cand = try_adopt(still_fails, [&] {
            return keep_prefix(cur, cur.horizon() / 2);
          })) {
        out.inst = std::move(*cand);
        ++out.rounds;
        progress = out.changed = true;
        continue;
      }
      if (auto cand = try_adopt(still_fails, [&] {
            return keep_prefix(cur, cur.horizon() - 1);
          })) {
        out.inst = std::move(*cand);
        ++out.rounds;
        progress = out.changed = true;
        continue;
      }
    }

    // 2. Drop blocks, highest id first (renumbering shifts later ids).
    {
      bool dropped = false;
      for (BlockId b = cur.blocks.n_blocks() - 1; b >= 0 && !dropped; --b) {
        if (auto cand = try_adopt(still_fails,
                                  [&] { return drop_block(cur, b); })) {
          out.inst = std::move(*cand);
          ++out.rounds;
          progress = out.changed = dropped = true;
        }
      }
      if (dropped) continue;
    }

    // 3. Shrink the cache: halve toward beta, then single steps.
    if (cur.k > cur.blocks.beta()) {
      const int beta = cur.blocks.beta();
      const int half = beta + (cur.k - beta) / 2;
      if (half < cur.k) {
        if (auto cand = try_adopt(still_fails,
                                  [&] { return with_k(cur, half); })) {
          out.inst = std::move(*cand);
          ++out.rounds;
          progress = out.changed = true;
          continue;
        }
      }
      if (auto cand = try_adopt(still_fails,
                                [&] { return with_k(cur, cur.k - 1); })) {
        out.inst = std::move(*cand);
        ++out.rounds;
        progress = out.changed = true;
        continue;
      }
    }
  }
  return out;
}

}  // namespace bac::verify
