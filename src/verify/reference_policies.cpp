#include "verify/reference_policies.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "core/simulator.hpp"

namespace bac::verify {

namespace {

// --- the frozen std::set policies ------------------------------------------
// Each class is the pre-flat-index implementation from algs/classical/,
// kept verbatim (modulo the Ref name) as the equivalence specification.

class RefLruPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefLRU"; }
  void reset(const Instance& inst) override {
    last_used_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
    by_recency_.clear();
  }
  void on_request(Time t, PageId p, CacheOps& cache) override {
    if (cache.contains(p)) {
      by_recency_.erase({last_used_[static_cast<std::size_t>(p)], p});
    } else {
      if (cache.size() >= cache.capacity()) {
        const auto victim = *by_recency_.begin();
        by_recency_.erase(by_recency_.begin());
        cache.evict(victim.second);
      }
      cache.fetch(p);
    }
    last_used_[static_cast<std::size_t>(p)] = t;
    by_recency_.insert({t, p});
  }

 private:
  std::vector<Time> last_used_;
  std::set<std::pair<Time, PageId>> by_recency_;
};

class RefFifoPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefFIFO"; }
  void reset(const Instance& inst) override {
    arrival_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
    by_arrival_.clear();
  }
  void on_request(Time t, PageId p, CacheOps& cache) override {
    if (cache.contains(p)) return;
    if (cache.size() >= cache.capacity()) {
      const auto victim = *by_arrival_.begin();
      by_arrival_.erase(by_arrival_.begin());
      cache.evict(victim.second);
    }
    cache.fetch(p);
    arrival_[static_cast<std::size_t>(p)] = t;
    by_arrival_.insert({t, p});
  }

 private:
  std::vector<Time> arrival_;
  std::set<std::pair<Time, PageId>> by_arrival_;
};

class RefLfuPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefLFU"; }
  void reset(const Instance& inst) override {
    freq_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
    by_freq_.clear();
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    auto& f = freq_[static_cast<std::size_t>(p)];
    if (cache.contains(p)) {
      by_freq_.erase({f, p});
      ++f;
      by_freq_.insert({f, p});
      return;
    }
    if (cache.size() >= cache.capacity()) {
      const auto victim = *by_freq_.begin();
      by_freq_.erase(by_freq_.begin());
      cache.evict(victim.second);
    }
    cache.fetch(p);
    ++f;
    by_freq_.insert({f, p});
  }

 private:
  std::vector<long long> freq_;
  std::set<std::pair<long long, PageId>> by_freq_;
};

class RefBeladyPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefBelady"; }
  [[nodiscard]] bool requires_future() const override { return true; }
  void reset(const Instance& inst) override {
    const auto n = static_cast<std::size_t>(inst.n_pages());
    occurrences_.assign(n, {});
    cursor_.assign(n, 0);
    by_next_.clear();
    for (Time t = 1; t <= inst.horizon(); ++t)
      occurrences_[static_cast<std::size_t>(inst.request_at(t))].push_back(t);
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    const bool hit = cache.contains(p);
    if (hit) by_next_.erase({next_use(p), p});
    ++cursor_[static_cast<std::size_t>(p)];
    if (!hit) {
      if (cache.size() >= cache.capacity()) {
        const auto victim = *by_next_.rbegin();  // farthest next use
        by_next_.erase(std::prev(by_next_.end()));
        cache.evict(victim.second);
      }
      cache.fetch(p);
    }
    by_next_.insert({next_use(p), p});
  }

 private:
  [[nodiscard]] Time next_use(PageId p) const {
    const auto& occ = occurrences_[static_cast<std::size_t>(p)];
    const std::size_t c = cursor_[static_cast<std::size_t>(p)];
    return c < occ.size() ? occ[c] : static_cast<Time>(1) << 30;
  }

  std::vector<std::vector<Time>> occurrences_;
  std::vector<std::size_t> cursor_;
  std::set<std::pair<Time, PageId>> by_next_;
};

class RefGreedyDualPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefGreedyDual"; }
  void reset(const Instance& inst) override {
    blocks_ = &inst.blocks;
    offset_ = 0;
    credit_.assign(static_cast<std::size_t>(inst.n_pages()), 0.0);
    by_credit_.clear();
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    const double cost = blocks_->cost(blocks_->block_of(p));
    if (cache.contains(p)) {
      by_credit_.erase({credit_[static_cast<std::size_t>(p)], p});
      credit_[static_cast<std::size_t>(p)] = offset_ + cost;
      by_credit_.insert({credit_[static_cast<std::size_t>(p)], p});
      return;
    }
    if (cache.size() >= cache.capacity()) {
      const auto victim = *by_credit_.begin();
      by_credit_.erase(by_credit_.begin());
      offset_ = victim.first;
      cache.evict(victim.second);
    }
    cache.fetch(p);
    credit_[static_cast<std::size_t>(p)] = offset_ + cost;
    by_credit_.insert({credit_[static_cast<std::size_t>(p)], p});
  }

 private:
  const BlockMap* blocks_ = nullptr;
  double offset_ = 0;
  std::vector<double> credit_;
  std::set<std::pair<double, PageId>> by_credit_;
};

class RefBlockLruPolicy final : public OnlinePolicy {
 public:
  explicit RefBlockLruPolicy(bool prefetch) : prefetch_(prefetch) {}
  [[nodiscard]] std::string name() const override {
    return prefetch_ ? "RefBlockLRU+Prefetch" : "RefBlockLRU";
  }
  void reset(const Instance& inst) override {
    const auto m = static_cast<std::size_t>(inst.blocks.n_blocks());
    block_used_.assign(m, 0);
    by_recency_.clear();
    cached_count_.assign(m, 0);
  }
  void on_request(Time t, PageId p, CacheOps& cache) override {
    const BlockId b = cache.blocks().block_of(p);
    touch(b, t);
    if (!cache.contains(p)) {
      int fetched = 0;
      if (prefetch_) {
        for (PageId q : cache.blocks().pages_in(b)) {
          if (!cache.contains(q)) {
            cache.fetch(q);
            ++fetched;
          }
        }
      } else {
        cache.fetch(p);
        fetched = 1;
      }
      cached_count_[static_cast<std::size_t>(b)] += fetched;
      while (cache.size() > cache.capacity()) {
        auto it = by_recency_.begin();
        const BlockId victim = it->second;
        by_recency_.erase(it);
        const int evicted = cache.flush_block(victim);
        note_evicted(victim, evicted);
        if (cache.size() > cache.capacity() &&
            cached_count_[static_cast<std::size_t>(b)] > 0 &&
            by_recency_.empty()) {
          const int shed = cache.flush_block(b, p);
          note_evicted(b, shed);
        }
      }
    }
    by_recency_.insert({t, b});
  }

 private:
  void touch(BlockId b, Time t) {
    if (cached_count_[static_cast<std::size_t>(b)] > 0)
      by_recency_.erase({block_used_[static_cast<std::size_t>(b)], b});
    block_used_[static_cast<std::size_t>(b)] = t;
  }
  void note_evicted(BlockId b, int n_evicted) {
    cached_count_[static_cast<std::size_t>(b)] -= n_evicted;
  }

  bool prefetch_;
  std::vector<Time> block_used_;
  std::set<std::pair<Time, BlockId>> by_recency_;
  std::vector<int> cached_count_;
};

// --- run comparison ---------------------------------------------------------

std::string fmt17(double x) {
  std::ostringstream os;
  os.precision(17);
  os << x;
  return os.str();
}

std::vector<PageId> sorted(std::vector<PageId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

std::vector<std::pair<std::string, std::unique_ptr<OnlinePolicy>>>
reference_policy_twins() {
  std::vector<std::pair<std::string, std::unique_ptr<OnlinePolicy>>> twins;
  twins.emplace_back("lru", std::make_unique<RefLruPolicy>());
  twins.emplace_back("fifo", std::make_unique<RefFifoPolicy>());
  twins.emplace_back("lfu", std::make_unique<RefLfuPolicy>());
  twins.emplace_back("belady", std::make_unique<RefBeladyPolicy>());
  twins.emplace_back("greedy_dual", std::make_unique<RefGreedyDualPolicy>());
  twins.emplace_back("block_lru",
                     std::make_unique<RefBlockLruPolicy>(false));
  twins.emplace_back("block_lru_prefetch",
                     std::make_unique<RefBlockLruPolicy>(true));
  return twins;
}

std::vector<std::string> diff_policy_runs(const Instance& inst,
                                          OnlinePolicy& a, OnlinePolicy& b,
                                          std::uint64_t seed,
                                          const std::string& label) {
  std::vector<std::string> out;
  SimOptions sim;
  sim.seed = seed;
  sim.record_schedule = true;
  sim.record_sketch = false;
  RunResult ra, rb;
  try {
    ra = simulate(inst, a, sim);
  } catch (const std::exception& e) {
    out.push_back(label + ": " + a.name() + " failed: " + e.what());
    return out;
  }
  try {
    rb = simulate(inst, b, sim);
  } catch (const std::exception& e) {
    out.push_back(label + ": " + b.name() + " failed: " + e.what());
    return out;
  }

  const auto diff_cost = [&](const char* what, double x, double y) {
    if (x != y)
      out.push_back(label + ": " + what + " " + fmt17(x) + " != " + fmt17(y));
  };
  const auto diff_count = [&](const char* what, long long x, long long y) {
    if (x != y)
      out.push_back(label + ": " + what + " " + std::to_string(x) +
                    " != " + std::to_string(y));
  };
  diff_cost("eviction cost", ra.eviction_cost, rb.eviction_cost);
  diff_cost("fetch cost", ra.fetch_cost, rb.fetch_cost);
  diff_cost("classic eviction cost", ra.classic_eviction_cost,
            rb.classic_eviction_cost);
  diff_cost("classic fetch cost", ra.classic_fetch_cost,
            rb.classic_fetch_cost);
  diff_count("evict block events", ra.evict_block_events,
             rb.evict_block_events);
  diff_count("fetch block events", ra.fetch_block_events,
             rb.fetch_block_events);
  diff_count("evicted pages", ra.evicted_pages, rb.evicted_pages);
  diff_count("fetched pages", ra.fetched_pages, rb.fetched_pages);
  diff_count("misses", ra.misses, rb.misses);
  diff_count("requests", ra.requests, rb.requests);
  diff_count("cached pages", ra.cached_pages, rb.cached_pages);
  if (ra.final_cache != rb.final_cache)
    out.push_back(label + ": final cache contents diverge");

  if (ra.schedule.steps.size() != rb.schedule.steps.size()) {
    out.push_back(label + ": schedule lengths diverge (" +
                  std::to_string(ra.schedule.steps.size()) + " vs " +
                  std::to_string(rb.schedule.steps.size()) + ")");
    return out;
  }
  for (std::size_t i = 0; i < ra.schedule.steps.size(); ++i) {
    const auto& sa = ra.schedule.steps[i];
    const auto& sb = rb.schedule.steps[i];
    // Capture order within one step is unspecified (see
    // CacheOps::set_capture); compare the step's sets.
    if (sorted(sa.evictions) != sorted(sb.evictions) ||
        sorted(sa.fetches) != sorted(sb.fetches)) {
      out.push_back(label + ": schedules diverge at t=" +
                    std::to_string(i + 1) + " (" +
                    std::to_string(sa.evictions.size()) + "ev/" +
                    std::to_string(sa.fetches.size()) + "fe vs " +
                    std::to_string(sb.evictions.size()) + "ev/" +
                    std::to_string(sb.fetches.size()) + "fe)");
      break;  // one step pinpointed is enough to shrink on
    }
  }
  return out;
}

}  // namespace bac::verify
