#include "verify/reference_policies.hpp"

#include <algorithm>
#include <deque>
#include <list>
#include <set>
#include <sstream>

#include "core/simulator.hpp"

namespace bac::verify {

namespace {

// --- the frozen std::set policies ------------------------------------------
// Each class is the pre-flat-index implementation from algs/policies/,
// kept verbatim (modulo the Ref name) as the equivalence specification.

class RefLruPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefLRU"; }
  void reset(const Instance& inst) override {
    last_used_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
    by_recency_.clear();
  }
  void on_request(Time t, PageId p, CacheOps& cache) override {
    if (cache.contains(p)) {
      by_recency_.erase({last_used_[static_cast<std::size_t>(p)], p});
    } else {
      if (cache.size() >= cache.capacity()) {
        const auto victim = *by_recency_.begin();
        by_recency_.erase(by_recency_.begin());
        cache.evict(victim.second);
      }
      cache.fetch(p);
    }
    last_used_[static_cast<std::size_t>(p)] = t;
    by_recency_.insert({t, p});
  }

 private:
  std::vector<Time> last_used_;
  std::set<std::pair<Time, PageId>> by_recency_;
};

class RefFifoPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefFIFO"; }
  void reset(const Instance& inst) override {
    arrival_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
    by_arrival_.clear();
  }
  void on_request(Time t, PageId p, CacheOps& cache) override {
    if (cache.contains(p)) return;
    if (cache.size() >= cache.capacity()) {
      const auto victim = *by_arrival_.begin();
      by_arrival_.erase(by_arrival_.begin());
      cache.evict(victim.second);
    }
    cache.fetch(p);
    arrival_[static_cast<std::size_t>(p)] = t;
    by_arrival_.insert({t, p});
  }

 private:
  std::vector<Time> arrival_;
  std::set<std::pair<Time, PageId>> by_arrival_;
};

class RefLfuPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefLFU"; }
  void reset(const Instance& inst) override {
    freq_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
    by_freq_.clear();
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    auto& f = freq_[static_cast<std::size_t>(p)];
    if (cache.contains(p)) {
      by_freq_.erase({f, p});
      ++f;
      by_freq_.insert({f, p});
      return;
    }
    if (cache.size() >= cache.capacity()) {
      const auto victim = *by_freq_.begin();
      by_freq_.erase(by_freq_.begin());
      cache.evict(victim.second);
    }
    cache.fetch(p);
    ++f;
    by_freq_.insert({f, p});
  }

 private:
  std::vector<long long> freq_;
  std::set<std::pair<long long, PageId>> by_freq_;
};

class RefBeladyPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefBelady"; }
  [[nodiscard]] bool requires_future() const override { return true; }
  void reset(const Instance& inst) override {
    const auto n = static_cast<std::size_t>(inst.n_pages());
    occurrences_.assign(n, {});
    cursor_.assign(n, 0);
    by_next_.clear();
    for (Time t = 1; t <= inst.horizon(); ++t)
      occurrences_[static_cast<std::size_t>(inst.request_at(t))].push_back(t);
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    const bool hit = cache.contains(p);
    if (hit) by_next_.erase({next_use(p), p});
    ++cursor_[static_cast<std::size_t>(p)];
    if (!hit) {
      if (cache.size() >= cache.capacity()) {
        const auto victim = *by_next_.rbegin();  // farthest next use
        by_next_.erase(std::prev(by_next_.end()));
        cache.evict(victim.second);
      }
      cache.fetch(p);
    }
    by_next_.insert({next_use(p), p});
  }

 private:
  [[nodiscard]] Time next_use(PageId p) const {
    const auto& occ = occurrences_[static_cast<std::size_t>(p)];
    const std::size_t c = cursor_[static_cast<std::size_t>(p)];
    return c < occ.size() ? occ[c] : static_cast<Time>(1) << 30;
  }

  std::vector<std::vector<Time>> occurrences_;
  std::vector<std::size_t> cursor_;
  std::set<std::pair<Time, PageId>> by_next_;
};

class RefGreedyDualPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefGreedyDual"; }
  void reset(const Instance& inst) override {
    blocks_ = &inst.blocks;
    offset_ = 0;
    credit_.assign(static_cast<std::size_t>(inst.n_pages()), 0.0);
    by_credit_.clear();
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    const double cost = blocks_->cost(blocks_->block_of(p));
    if (cache.contains(p)) {
      by_credit_.erase({credit_[static_cast<std::size_t>(p)], p});
      credit_[static_cast<std::size_t>(p)] = offset_ + cost;
      by_credit_.insert({credit_[static_cast<std::size_t>(p)], p});
      return;
    }
    if (cache.size() >= cache.capacity()) {
      const auto victim = *by_credit_.begin();
      by_credit_.erase(by_credit_.begin());
      offset_ = victim.first;
      cache.evict(victim.second);
    }
    cache.fetch(p);
    credit_[static_cast<std::size_t>(p)] = offset_ + cost;
    by_credit_.insert({credit_[static_cast<std::size_t>(p)], p});
  }

 private:
  const BlockMap* blocks_ = nullptr;
  double offset_ = 0;
  std::vector<double> credit_;
  std::set<std::pair<double, PageId>> by_credit_;
};

class RefBlockLruPolicy final : public OnlinePolicy {
 public:
  explicit RefBlockLruPolicy(bool prefetch) : prefetch_(prefetch) {}
  [[nodiscard]] std::string name() const override {
    return prefetch_ ? "RefBlockLRU+Prefetch" : "RefBlockLRU";
  }
  void reset(const Instance& inst) override {
    const auto m = static_cast<std::size_t>(inst.blocks.n_blocks());
    block_used_.assign(m, 0);
    by_recency_.clear();
    cached_count_.assign(m, 0);
  }
  void on_request(Time t, PageId p, CacheOps& cache) override {
    const BlockId b = cache.blocks().block_of(p);
    touch(b, t);
    if (!cache.contains(p)) {
      int fetched = 0;
      if (prefetch_) {
        for (PageId q : cache.blocks().pages_in(b)) {
          if (!cache.contains(q)) {
            cache.fetch(q);
            ++fetched;
          }
        }
      } else {
        cache.fetch(p);
        fetched = 1;
      }
      cached_count_[static_cast<std::size_t>(b)] += fetched;
      while (cache.size() > cache.capacity()) {
        auto it = by_recency_.begin();
        const BlockId victim = it->second;
        by_recency_.erase(it);
        const int evicted = cache.flush_block(victim);
        note_evicted(victim, evicted);
        if (cache.size() > cache.capacity() &&
            cached_count_[static_cast<std::size_t>(b)] > 0 &&
            by_recency_.empty()) {
          const int shed = cache.flush_block(b, p);
          note_evicted(b, shed);
        }
      }
    }
    by_recency_.insert({t, b});
  }

 private:
  void touch(BlockId b, Time t) {
    if (cached_count_[static_cast<std::size_t>(b)] > 0)
      by_recency_.erase({block_used_[static_cast<std::size_t>(b)], b});
    block_used_[static_cast<std::size_t>(b)] = t;
  }
  void note_evicted(BlockId b, int n_evicted) {
    cached_count_[static_cast<std::size_t>(b)] -= n_evicted;
  }

  bool prefetch_;
  std::vector<Time> block_used_;
  std::set<std::pair<Time, BlockId>> by_recency_;
  std::vector<int> cached_count_;
};

// --- the frozen modern-policy twins -----------------------------------------
// Boring std::deque/std::list mirrors of the S3-FIFO/SIEVE/ARC semantics
// in algs/policies/modern.hpp. Same decisions, textbook containers.

/// The GhostTable contract in deque form: remembers the most recent
/// `capacity` inserted ids, dropping the oldest when full.
class RefGhost {
 public:
  void reset(int n, int capacity) {
    in_.assign(static_cast<std::size_t>(n), 0);
    order_.clear();
    capacity_ = capacity;
  }
  [[nodiscard]] bool contains(std::int32_t id) const {
    return in_[static_cast<std::size_t>(id)] != 0;
  }
  [[nodiscard]] int size() const { return static_cast<int>(order_.size()); }
  void insert(std::int32_t id) {
    if (contains(id)) {
      order_.erase(std::find(order_.begin(), order_.end(), id));
    } else if (capacity_ <= 0) {
      return;
    } else if (static_cast<int>(order_.size()) >= capacity_) {
      in_[static_cast<std::size_t>(order_.front())] = 0;
      order_.pop_front();
    }
    order_.push_back(id);
    in_[static_cast<std::size_t>(id)] = 1;
  }
  void erase(std::int32_t id) {
    if (!contains(id)) return;
    order_.erase(std::find(order_.begin(), order_.end(), id));
    in_[static_cast<std::size_t>(id)] = 0;
  }
  void pop_front() {
    if (order_.empty()) return;
    in_[static_cast<std::size_t>(order_.front())] = 0;
    order_.pop_front();
  }

 private:
  std::vector<char> in_;
  std::deque<std::int32_t> order_;
  int capacity_ = 0;
};

class RefS3FifoPolicy final : public OnlinePolicy {
 public:
  explicit RefS3FifoPolicy(double small_frac) : small_frac_(small_frac) {}
  [[nodiscard]] std::string name() const override { return "RefS3FIFO"; }
  void reset(const Instance& inst) override {
    const auto n = static_cast<std::size_t>(inst.n_pages());
    small_target_ = std::max(
        1, static_cast<int>(small_frac_ * static_cast<double>(inst.k)));
    small_.clear();
    main_.clear();
    ghost_.reset(inst.n_pages(), inst.k);
    freq_.assign(n, 0);
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    auto& f = freq_[static_cast<std::size_t>(p)];
    if (cache.contains(p)) {
      f = std::min(f + 1, 3);
      return;
    }
    while (cache.size() >= cache.capacity()) evict_one(cache);
    if (ghost_.contains(p)) {
      ghost_.erase(p);
      main_.push_back(p);
    } else {
      small_.push_back(p);
    }
    f = 0;
    cache.fetch(p);
  }

 private:
  void evict_one(CacheOps& cache) {
    for (;;) {
      bool use_small =
          static_cast<int>(small_.size()) >= small_target_ || main_.empty();
      if (use_small && small_.empty()) use_small = false;
      if (use_small) {
        const PageId h = small_.front();
        auto& f = freq_[static_cast<std::size_t>(h)];
        small_.pop_front();
        if (f > 1) {
          main_.push_back(h);
          f = 0;
          continue;
        }
        ghost_.insert(h);
        cache.evict(h);
        return;
      }
      const PageId h = main_.front();
      auto& f = freq_[static_cast<std::size_t>(h)];
      main_.pop_front();
      if (f > 0) {
        --f;
        main_.push_back(h);
        continue;
      }
      cache.evict(h);
      return;
    }
  }

  double small_frac_;
  int small_target_ = 1;
  std::deque<PageId> small_;
  std::deque<PageId> main_;
  RefGhost ghost_;
  std::vector<int> freq_;
};

class RefSievePolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefSIEVE"; }
  void reset(const Instance& inst) override {
    order_.clear();
    visited_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
    hand_ = order_.end();
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    if (cache.contains(p)) {
      visited_[static_cast<std::size_t>(p)] = 1;
      return;
    }
    if (cache.size() >= cache.capacity()) {
      auto it = hand_ == order_.end() ? order_.begin() : hand_;
      while (visited_[static_cast<std::size_t>(*it)] != 0) {
        visited_[static_cast<std::size_t>(*it)] = 0;
        ++it;
        if (it == order_.end()) it = order_.begin();
      }
      const PageId victim = *it;
      hand_ = order_.erase(it);  // may be end(): resume from the oldest
      cache.evict(victim);
    }
    order_.push_back(p);
    visited_[static_cast<std::size_t>(p)] = 0;
    cache.fetch(p);
  }

 private:
  std::list<PageId> order_;  // front = oldest
  std::vector<char> visited_;
  std::list<PageId>::iterator hand_ = order_.end();
};

class RefArcPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefARC"; }
  void reset(const Instance& inst) override {
    c_ = inst.k;
    p_ = 0;
    t1_.clear();
    t2_.clear();
    in_t1_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
    in_t2_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
    b1_.reset(inst.n_pages(), c_);
    b2_.reset(inst.n_pages(), 2 * c_);
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    const auto i = static_cast<std::size_t>(p);
    if (in_t1_[i] != 0 || in_t2_[i] != 0) {  // Case I
      if (in_t1_[i] != 0) {
        t1_.erase(std::find(t1_.begin(), t1_.end(), p));
        in_t1_[i] = 0;
      } else {
        t2_.erase(std::find(t2_.begin(), t2_.end(), p));
      }
      t2_.push_back(p);
      in_t2_[i] = 1;
      return;
    }
    if (b1_.contains(p)) {  // Case II
      const int delta = std::max(1, b2_size() / b1_size());
      p_ = std::min(c_, p_ + delta);
      b1_.erase(p);
      replace(false, cache);
      t2_.push_back(p);
      in_t2_[i] = 1;
      cache.fetch(p);
      return;
    }
    if (b2_.contains(p)) {  // Case III
      const int delta = std::max(1, b1_size() / b2_size());
      p_ = std::max(0, p_ - delta);
      b2_.erase(p);
      replace(true, cache);
      t2_.push_back(p);
      in_t2_[i] = 1;
      cache.fetch(p);
      return;
    }
    // Case IV
    const int t1 = static_cast<int>(t1_.size());
    const int l1 = t1 + b1_size();
    const int l2 = static_cast<int>(t2_.size()) + b2_size();
    if (l1 == c_) {
      if (t1 < c_) {
        b1_.pop_front();
        replace(false, cache);
      } else {
        const PageId victim = t1_.front();
        t1_.pop_front();
        in_t1_[static_cast<std::size_t>(victim)] = 0;
        cache.evict(victim);
      }
    } else if (l1 < c_ && l1 + l2 >= c_) {
      if (l1 + l2 >= 2 * c_) b2_.pop_front();
      replace(false, cache);
    }
    t1_.push_back(p);
    in_t1_[i] = 1;
    cache.fetch(p);
  }

 private:
  [[nodiscard]] int b1_size() const { return b1_.size(); }
  [[nodiscard]] int b2_size() const { return b2_.size(); }
  void replace(bool requested_in_b2, CacheOps& cache) {
    const int t1 = static_cast<int>(t1_.size());
    const bool from_t1 =
        t1 >= 1 && (t1 > p_ || (requested_in_b2 && t1 == p_));
    if (from_t1 || t2_.empty()) {
      if (t1_.empty()) return;
      const PageId victim = t1_.front();
      t1_.pop_front();
      in_t1_[static_cast<std::size_t>(victim)] = 0;
      b1_.insert(victim);
      cache.evict(victim);
    } else {
      const PageId victim = t2_.front();
      t2_.pop_front();
      in_t2_[static_cast<std::size_t>(victim)] = 0;
      b2_.insert(victim);
      cache.evict(victim);
    }
  }

  int c_ = 0;
  int p_ = 0;
  std::list<PageId> t1_;  // front = LRU
  std::list<PageId> t2_;
  std::vector<char> in_t1_;
  std::vector<char> in_t2_;
  RefGhost b1_;
  RefGhost b2_;
};

class RefBlockS3FifoPolicy final : public OnlinePolicy {
 public:
  explicit RefBlockS3FifoPolicy(double small_frac)
      : small_frac_(small_frac) {}
  [[nodiscard]] std::string name() const override { return "RefBlockS3FIFO"; }
  void reset(const Instance& inst) override {
    const auto m = static_cast<std::size_t>(inst.blocks.n_blocks());
    const int block_slots =
        std::max(1, inst.k / std::max(1, inst.blocks.beta()));
    small_target_ = std::max(
        1, static_cast<int>(small_frac_ * static_cast<double>(block_slots)));
    small_.clear();
    main_.clear();
    ghost_.reset(inst.blocks.n_blocks(), block_slots);
    freq_.assign(m, 0);
    cached_count_.assign(m, 0);
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    const BlockId b = cache.blocks().block_of(p);
    auto& f = freq_[static_cast<std::size_t>(b)];
    if (cache.contains(p)) {
      f = std::min(f + 1, 3);
      return;
    }
    bool to_main;  // segment the detached block re-enters
    const auto in_small = std::find(small_.begin(), small_.end(), b);
    if (in_small != small_.end()) {
      small_.erase(in_small);
      to_main = false;
      f = std::min(f + 1, 3);
    } else {
      const auto in_main = std::find(main_.begin(), main_.end(), b);
      if (in_main != main_.end()) {
        main_.erase(in_main);
        to_main = true;
        f = std::min(f + 1, 3);
      } else if (ghost_.contains(b)) {
        ghost_.erase(b);
        to_main = true;
        f = 0;
      } else {
        to_main = false;
        f = 0;
      }
    }
    cache.fetch(p);
    cached_count_[static_cast<std::size_t>(b)] += 1;
    while (cache.size() > cache.capacity()) {
      if (small_.empty() && main_.empty()) {
        cached_count_[static_cast<std::size_t>(b)] -=
            cache.flush_block(b, p);
        break;
      }
      evict_one_block(cache);
    }
    if (to_main) main_.push_back(b);
    else small_.push_back(b);
  }

 private:
  void evict_one_block(CacheOps& cache) {
    for (;;) {
      bool use_small =
          static_cast<int>(small_.size()) >= small_target_ || main_.empty();
      if (use_small && small_.empty()) use_small = false;
      BlockId h;
      if (use_small) {
        h = small_.front();
        auto& f = freq_[static_cast<std::size_t>(h)];
        small_.pop_front();
        if (f > 1) {
          main_.push_back(h);
          f = 0;
          continue;
        }
        ghost_.insert(h);
      } else {
        h = main_.front();
        auto& f = freq_[static_cast<std::size_t>(h)];
        main_.pop_front();
        if (f > 0) {
          --f;
          main_.push_back(h);
          continue;
        }
      }
      cached_count_[static_cast<std::size_t>(h)] -= cache.flush_block(h);
      return;
    }
  }

  double small_frac_;
  int small_target_ = 1;
  std::deque<BlockId> small_;
  std::deque<BlockId> main_;
  RefGhost ghost_;
  std::vector<int> freq_;
  std::vector<int> cached_count_;
};

class RefBlockSievePolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "RefBlockSIEVE"; }
  void reset(const Instance& inst) override {
    const auto m = static_cast<std::size_t>(inst.blocks.n_blocks());
    order_.clear();
    visited_.assign(m, 0);
    resident_.assign(m, 0);
    cached_count_.assign(m, 0);
    hand_ = order_.end();
  }
  void on_request(Time /*t*/, PageId p, CacheOps& cache) override {
    const BlockId b = cache.blocks().block_of(p);
    const auto bi = static_cast<std::size_t>(b);
    if (cache.contains(p)) {
      visited_[bi] = 1;
      return;
    }
    if (resident_[bi] == 0) {
      order_.push_back(b);
      resident_[bi] = 1;
      visited_[bi] = 0;
    } else {
      visited_[bi] = 1;
    }
    cache.fetch(p);
    cached_count_[bi] += 1;
    while (cache.size() > cache.capacity()) {
      if (order_.size() == 1) {
        cached_count_[bi] -= cache.flush_block(b, p);
        break;
      }
      auto it = hand_ == order_.end() ? order_.begin() : hand_;
      while (*it == b || visited_[static_cast<std::size_t>(*it)] != 0) {
        if (*it != b) visited_[static_cast<std::size_t>(*it)] = 0;
        ++it;
        if (it == order_.end()) it = order_.begin();
      }
      const BlockId victim = *it;
      hand_ = order_.erase(it);
      resident_[static_cast<std::size_t>(victim)] = 0;
      cached_count_[static_cast<std::size_t>(victim)] -=
          cache.flush_block(victim);
    }
  }

 private:
  std::list<BlockId> order_;  // front = oldest
  std::vector<char> visited_;
  std::vector<char> resident_;
  std::vector<int> cached_count_;
  std::list<BlockId>::iterator hand_ = order_.end();
};

// --- run comparison ---------------------------------------------------------

std::string fmt17(double x) {
  std::ostringstream os;
  os.precision(17);
  os << x;
  return os.str();
}

std::vector<PageId> sorted(std::vector<PageId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

std::vector<std::pair<std::string, std::unique_ptr<OnlinePolicy>>>
reference_policy_twins() {
  std::vector<std::pair<std::string, std::unique_ptr<OnlinePolicy>>> twins;
  twins.emplace_back("lru", std::make_unique<RefLruPolicy>());
  twins.emplace_back("fifo", std::make_unique<RefFifoPolicy>());
  twins.emplace_back("lfu", std::make_unique<RefLfuPolicy>());
  twins.emplace_back("belady", std::make_unique<RefBeladyPolicy>());
  twins.emplace_back("greedy_dual", std::make_unique<RefGreedyDualPolicy>());
  twins.emplace_back("block_lru",
                     std::make_unique<RefBlockLruPolicy>(false));
  twins.emplace_back("block_lru_prefetch",
                     std::make_unique<RefBlockLruPolicy>(true));
  // The modern zoo, at the registry defaults plus one off-default knob so
  // the parameterized-spec path is fuzzed too (0.25 is "s3fifo@0.25").
  twins.emplace_back("s3fifo", std::make_unique<RefS3FifoPolicy>(0.1));
  twins.emplace_back("s3fifo@0.25", std::make_unique<RefS3FifoPolicy>(0.25));
  twins.emplace_back("sieve", std::make_unique<RefSievePolicy>());
  twins.emplace_back("arc", std::make_unique<RefArcPolicy>());
  twins.emplace_back("block_s3fifo",
                     std::make_unique<RefBlockS3FifoPolicy>(0.1));
  twins.emplace_back("block_sieve",
                     std::make_unique<RefBlockSievePolicy>());
  return twins;
}

std::vector<std::string> diff_policy_runs(const Instance& inst,
                                          OnlinePolicy& a, OnlinePolicy& b,
                                          std::uint64_t seed,
                                          const std::string& label) {
  std::vector<std::string> out;
  SimOptions sim;
  sim.seed = seed;
  sim.record_schedule = true;
  sim.record_sketch = false;
  RunResult ra, rb;
  try {
    ra = simulate(inst, a, sim);
  } catch (const std::exception& e) {
    out.push_back(label + ": " + a.name() + " failed: " + e.what());
    return out;
  }
  try {
    rb = simulate(inst, b, sim);
  } catch (const std::exception& e) {
    out.push_back(label + ": " + b.name() + " failed: " + e.what());
    return out;
  }

  const auto diff_cost = [&](const char* what, double x, double y) {
    if (x != y)
      out.push_back(label + ": " + what + " " + fmt17(x) + " != " + fmt17(y));
  };
  const auto diff_count = [&](const char* what, long long x, long long y) {
    if (x != y)
      out.push_back(label + ": " + what + " " + std::to_string(x) +
                    " != " + std::to_string(y));
  };
  diff_cost("eviction cost", ra.eviction_cost, rb.eviction_cost);
  diff_cost("fetch cost", ra.fetch_cost, rb.fetch_cost);
  diff_cost("classic eviction cost", ra.classic_eviction_cost,
            rb.classic_eviction_cost);
  diff_cost("classic fetch cost", ra.classic_fetch_cost,
            rb.classic_fetch_cost);
  diff_count("evict block events", ra.evict_block_events,
             rb.evict_block_events);
  diff_count("fetch block events", ra.fetch_block_events,
             rb.fetch_block_events);
  diff_count("evicted pages", ra.evicted_pages, rb.evicted_pages);
  diff_count("fetched pages", ra.fetched_pages, rb.fetched_pages);
  diff_count("misses", ra.misses, rb.misses);
  diff_count("requests", ra.requests, rb.requests);
  diff_count("cached pages", ra.cached_pages, rb.cached_pages);
  if (ra.final_cache != rb.final_cache)
    out.push_back(label + ": final cache contents diverge");

  if (ra.schedule.steps.size() != rb.schedule.steps.size()) {
    out.push_back(label + ": schedule lengths diverge (" +
                  std::to_string(ra.schedule.steps.size()) + " vs " +
                  std::to_string(rb.schedule.steps.size()) + ")");
    return out;
  }
  for (std::size_t i = 0; i < ra.schedule.steps.size(); ++i) {
    const auto& sa = ra.schedule.steps[i];
    const auto& sb = rb.schedule.steps[i];
    // Capture order within one step is unspecified (see
    // CacheOps::set_capture); compare the step's sets.
    if (sorted(sa.evictions) != sorted(sb.evictions) ||
        sorted(sa.fetches) != sorted(sb.fetches)) {
      out.push_back(label + ": schedules diverge at t=" +
                    std::to_string(i + 1) + " (" +
                    std::to_string(sa.evictions.size()) + "ev/" +
                    std::to_string(sa.fetches.size()) + "fe vs " +
                    std::to_string(sb.evictions.size()) + "ev/" +
                    std::to_string(sb.fetches.size()) + "fe)");
      break;  // one step pinpointed is enough to shrink on
    }
  }
  return out;
}

}  // namespace bac::verify
