#include "verify/golden.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "algs/zoo.hpp"
#include "core/simulator.hpp"
#include "trace/bact.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace bac::verify {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kGoldenSimSeed = 1;

/// Exact-dyadic weighted costs cycling a fixed ladder.
std::vector<Cost> dyadic_costs(int m) {
  static constexpr Cost ladder[] = {1.0, 2.0, 0.5, 4.0, 1.0, 0.25};
  std::vector<Cost> out(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) out[static_cast<std::size_t>(i)] = ladder[i % 6];
  return out;
}

/// The corpus instances: every trace kind, unit and weighted costs,
/// singleton / uniform / skewed block shapes, k = beta and roomy-k edges.
std::vector<Instance> corpus_instances() {
  std::vector<Instance> out;
  // 0: classic paging (singleton blocks), zipf.
  out.push_back(make_instance(24, 1, 6, zipf_trace(24, 300, 0.9,
                                                   Xoshiro256pp(11))));
  // 1: uniform blocks of 4, scan (the LRU nemesis).
  out.push_back(make_instance(32, 4, 8, scan_trace(32, 256)));
  // 2: weighted blocks, phased working sets.
  out.push_back(make_weighted_instance(
      30, 5, 10, phased_trace(30, 300, 40, 12, Xoshiro256pp(13)),
      dyadic_costs(6)));
  // 3: block-local process over uniform blocks, k = beta edge.
  {
    const BlockMap blocks = BlockMap::contiguous(24, 6);
    auto req = block_local_trace(blocks, 240, 0.75, 0.9, Xoshiro256pp(17));
    out.push_back(Instance{blocks, std::move(req), 6});
  }
  // 4: skewed hand-built block map (sizes 1/2/3/6), weighted, uniform trace.
  {
    std::vector<BlockId> assign{0, 1, 1, 2, 2, 2, 3, 3, 3, 3, 3, 3};
    out.push_back(Instance{BlockMap(std::move(assign), dyadic_costs(4)),
                           uniform_trace(12, 200, Xoshiro256pp(19)), 7});
  }
  // 5: single block = whole universe (flushes are all-or-nothing).
  {
    std::vector<BlockId> assign(8, 0);
    out.push_back(Instance{BlockMap(std::move(assign), {2.0}),
                           zipf_trace(8, 120, 0.6, Xoshiro256pp(23)), 8});
  }
  // 6: T < k cold-start edge.
  out.push_back(make_instance(40, 4, 20, zipf_trace(40, 12, 1.1,
                                                    Xoshiro256pp(29))));
  // 7: larger mixed run for meatier numbers.
  out.push_back(make_weighted_instance(
      64, 8, 16, zipf_trace(64, 400, 1.0, Xoshiro256pp(31)),
      dyadic_costs(8)));
  for (const Instance& inst : out) inst.validate();
  return out;
}

std::vector<std::string> deterministic_policy_names() {
  std::vector<std::string> out;
  for (const std::string& name : policy_names())
    if (!make_policy(name)->randomized()) out.push_back(name);
  return out;
}

std::string format_double(double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

}  // namespace

int write_golden_corpus(const std::string& dir) {
  fs::create_directories(dir);
  const std::vector<Instance> instances = corpus_instances();
  const std::vector<std::string> policies = deterministic_policy_names();
  int index = 0;
  for (const Instance& inst : instances) {
    char stem[32];
    std::snprintf(stem, sizeof stem, "golden_%02d", index);
    const std::string bact = (fs::path(dir) / (std::string(stem) + ".bact")).string();
    const std::string expected =
        (fs::path(dir) / (std::string(stem) + ".expected")).string();
    save_bact(inst, bact);

    std::ofstream os(expected);
    if (!os)
      throw std::runtime_error("golden: cannot write " + expected);
    os << "# golden corpus v1: policy evict fetch classic_evict classic_fetch"
          " misses\n";
    os << "instance " << stem << ".bact\n";
    for (const std::string& name : policies) {
      auto policy = make_policy(name);
      SimOptions options;
      options.seed = kGoldenSimSeed;
      const RunResult r = simulate(inst, *policy, options);
      os << "policy " << name << ' ' << format_double(r.eviction_cost) << ' '
         << format_double(r.fetch_cost) << ' '
         << format_double(r.classic_eviction_cost) << ' '
         << format_double(r.classic_fetch_cost) << ' ' << r.misses << '\n';
    }
    if (!os.flush())
      throw std::runtime_error("golden: short write to " + expected);
    ++index;
  }
  return index;
}

std::vector<std::string> check_golden_corpus(const std::string& dir) {
  std::vector<std::string> mismatches;
  std::vector<fs::path> expected_files;
  if (!fs::is_directory(dir))
    throw std::runtime_error("golden: no corpus directory " + dir);
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".expected")
      expected_files.push_back(entry.path());
  std::sort(expected_files.begin(), expected_files.end());
  if (expected_files.empty())
    throw std::runtime_error("golden: empty corpus in " + dir);

  const std::vector<std::string> current = deterministic_policy_names();
  for (const fs::path& path : expected_files) {
    std::ifstream is(path);
    if (!is)
      throw std::runtime_error("golden: cannot read " + path.string());
    std::string line;
    Instance inst;
    bool have_instance = false;
    int lineno = 0;
    std::vector<std::string> listed;
    while (std::getline(is, line)) {
      ++lineno;
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "instance") {
        std::string bact;
        ls >> bact;
        inst = load_bact((path.parent_path() / bact).string());
        have_instance = true;
        continue;
      }
      if (tag != "policy") {
        mismatches.push_back(path.filename().string() + ":" +
                             std::to_string(lineno) + ": unknown tag '" +
                             tag + "'");
        continue;
      }
      if (!have_instance) {
        mismatches.push_back(path.filename().string() +
                             ": policy line before instance line");
        break;
      }
      std::string name, evict_s, fetch_s, cevict_s, cfetch_s;
      long long misses = -1;
      ls >> name >> evict_s >> fetch_s >> cevict_s >> cfetch_s >> misses;
      listed.push_back(name);
      if (!ls) {
        mismatches.push_back(path.filename().string() + ":" +
                             std::to_string(lineno) + ": malformed line");
        continue;
      }
      RunResult r;
      try {
        auto policy = make_policy(name);
        if (policy->randomized()) {
          mismatches.push_back(name + " is randomized now; regenerate the "
                                      "corpus (bacfuzz --golden)");
          continue;
        }
        SimOptions options;
        options.seed = kGoldenSimSeed;
        r = simulate(inst, *policy, options);
      } catch (const std::exception& e) {
        mismatches.push_back(path.filename().string() + ": policy " + name +
                             " failed: " + e.what());
        continue;
      }
      const double evict = std::strtod(evict_s.c_str(), nullptr);
      const double fetch = std::strtod(fetch_s.c_str(), nullptr);
      const double cevict = std::strtod(cevict_s.c_str(), nullptr);
      const double cfetch = std::strtod(cfetch_s.c_str(), nullptr);
      if (r.eviction_cost != evict || r.fetch_cost != fetch ||
          r.classic_eviction_cost != cevict ||
          r.classic_fetch_cost != cfetch || r.misses != misses)
        mismatches.push_back(
            path.filename().string() + ": " + name + " diverged: got (" +
            format_double(r.eviction_cost) + ", " +
            format_double(r.fetch_cost) + ", " +
            format_double(r.classic_eviction_cost) + ", " +
            format_double(r.classic_fetch_cost) + ", " +
            std::to_string(r.misses) + ") expected (" + evict_s + ", " +
            fetch_s + ", " + cevict_s + ", " + cfetch_s + ", " +
            std::to_string(misses) + ")");
    }
    // The pinned-number safety net must cover the *current* deterministic
    // registry: a policy added after the corpus was generated (or a
    // truncated .expected) would otherwise silently escape pinning.
    for (const std::string& name : current)
      if (std::find(listed.begin(), listed.end(), name) == listed.end())
        mismatches.push_back(path.filename().string() +
                             ": deterministic policy '" + name +
                             "' is not pinned; regenerate the corpus "
                             "(bacfuzz --golden)");
  }
  return mismatches;
}

}  // namespace bac::verify
