// The paper's tight constructions, as executable instance builders.
//
//  - Claim 2.1 instances: optimal fetching and eviction costs differ by a
//    factor beta, in either direction. Builders also return the *intended*
//    optimal schedule from the proof so benches can score it exactly.
//  - Appendix A.2 instance: the naive LP (A.1) has integrality gap
//    Omega(beta) (two blocks, k = 2*beta - 1).
//  - The classic (k+1)-page cyclic nemesis.
//  - A BGM21 Theorem 4.3-style adaptive adversary for (h, k) block-aware
//    caching with fetching costs: always request a page missing from the
//    online policy's cache, preferring blocks with many missing pages so an
//    offline h-page cache can batch its fetches.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/policy.hpp"
#include "core/schedule.hpp"
#include "util/rng.hpp"

namespace bac {

struct BuiltAdversarial {
  Instance instance;
  /// The optimal policy from the Claim 2.1 proof, replayable via evaluate().
  Schedule intended_schedule;
};

/// Claim 2.1, direction "OPT_fetch ~ beta * OPT_evict is impossible;
/// here OPT_evict is ~beta times OPT_fetch... " — concretely this instance
/// has eviction cost ~beta^2 and fetching cost ~beta for the intended
/// schedule: 2*beta^2 pages in 2*beta blocks of size beta, k = beta^2.
/// After a warm-up requesting all P pages, round i = 1..beta requests the
/// first (beta - i) pages of each P-block and all pages of the first i
/// Q-blocks, `repeats` times. The intended schedule evicts one page from
/// each P-block per round (beta block-eviction events) and fetches one
/// whole Q-block per round (one block-fetch event).
BuiltAdversarial claim21_fetch_cheap(int beta, int repeats);

/// Claim 2.1, complementary direction: fetching cost ~beta^2, eviction
/// cost ~beta. Round i requests the last i pages of each P-block and all
/// pages of the last (beta - i) Q-blocks; the intended schedule fetches one
/// page per P-block per round and evicts one whole Q-block per round.
BuiltAdversarial claim21_evict_cheap(int beta, int repeats);

/// Appendix A.2 integrality-gap instance: n = 2*beta pages in two blocks,
/// k = 2*beta - 1; each of `rounds` rounds requests all of B1 then all of
/// B2. Integer OPT pays >= 1 per round in either model; the fractional LP
/// pays 2/beta per round.
Instance gap_instance(int beta, int rounds);

/// Classic paging nemesis: cyclic requests over k+1 pages grouped into
/// blocks of `block_size`.
Instance cyclic_nemesis(int k, int block_size, Time T);

/// Adaptive adversary for (h, k) fetching-cost lower bounds (BGM21 Thm 4.3
/// shape). Simulates `policy` with cache size k over a universe of
/// n = k + (block_size - 1) * (h - 1) + 1 pages in blocks of `block_size`;
/// at each step requests a page absent from the policy's cache, chosen from
/// the block with the most absent pages (ties toward lower ids, so the
/// sequence is deterministic for deterministic policies).
struct AdversaryResult {
  Instance instance;      ///< the generated request sequence
  Cost online_fetch = 0;  ///< the policy's batched fetching cost
  Cost online_evict = 0;  ///< the policy's batched eviction cost
};
AdversaryResult run_adaptive_adversary(OnlinePolicy& policy, int k,
                                       int block_size, int h, Time T,
                                       std::uint64_t seed = 1);

/// The deterministic lower bound of BGM21 Theorem 4.3 for reference:
/// (k + (B-1)(h-1)) / (k - h + 1), valid for h <= k - B + 1.
double bgm21_lower_bound(int k, int block_size, int h);

}  // namespace bac
