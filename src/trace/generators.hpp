// Synthetic workload generators.
//
// Block-aware caching instances need both a request process and a block
// structure; generators here produce the request streams the paper's
// motivating scenarios describe (CDN chunks, storage-pool blocks, scans,
// phased working sets) plus the standard Zipf/uniform mixes used across
// the benchmark suite. All randomness is explicit (Xoshiro256pp by value)
// so traces are reproducible from seeds.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "util/rng.hpp"

namespace bac {

/// Requests drawn uniformly from [0, n_pages).
std::vector<PageId> uniform_trace(int n_pages, Time T, Xoshiro256pp rng);

/// Zipf(alpha) over pages 0..n-1 (page 0 most popular). alpha = 0 is
/// uniform; alpha around 0.8..1.2 matches CDN / storage popularity skews.
std::vector<PageId> zipf_trace(int n_pages, Time T, double alpha,
                               Xoshiro256pp rng);

/// Cyclic sequential scan 0,1,...,n-1,0,1,... — the classic LRU nemesis
/// when n > k and an easy win for any block-batching policy.
std::vector<PageId> scan_trace(int n_pages, Time T);

/// Phased working sets: the trace runs in phases of `phase_len` steps; each
/// phase draws uniformly from a random working set of `ws_size` pages
/// (clamped to n_pages). Throws std::invalid_argument when phase_len or
/// ws_size is non-positive.
std::vector<PageId> phased_trace(int n_pages, Time T, Time phase_len,
                                 int ws_size, Xoshiro256pp rng);

/// Block-local process: with probability `stay` the next request stays in
/// the current block (uniform page within it), otherwise a new block is
/// drawn Zipf(alpha)-distributed. Models spatial locality over chunks.
std::vector<PageId> block_local_trace(const BlockMap& blocks, Time T,
                                      double stay, double alpha,
                                      Xoshiro256pp rng);

/// Block costs log-uniform in [1, aspect_ratio].
std::vector<Cost> log_uniform_costs(int n_blocks, double aspect_ratio,
                                    Xoshiro256pp rng);

/// Bundle a contiguous block structure with a request vector.
Instance make_instance(int n_pages, int block_size, int k,
                       std::vector<PageId> requests);

/// Same with per-block costs.
Instance make_weighted_instance(int n_pages, int block_size, int k,
                                std::vector<PageId> requests,
                                std::vector<Cost> block_costs);

}  // namespace bac
