#include "trace/trace_io.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace bac {

void save_instance(const Instance& inst, std::ostream& os) {
  // 17 significant digits round-trips doubles exactly (block costs).
  const auto old_precision = os.precision(17);
  os << "blockcache-instance v1\n";
  os << "n " << inst.n_pages() << " k " << inst.k << "\n";
  os << "blocks " << inst.blocks.n_blocks() << "\n";
  for (BlockId b = 0; b < inst.blocks.n_blocks(); ++b) {
    os << "block " << b << " " << inst.blocks.cost(b);
    for (PageId p : inst.blocks.pages_in(b)) os << " " << p;
    os << "\n";
  }
  os << "requests " << inst.horizon() << "\n";
  for (std::size_t i = 0; i < inst.requests.size(); ++i) {
    os << inst.requests[i];
    os << (((i + 1) % 32 == 0) ? '\n' : ' ');
  }
  os << "\n";
  os.precision(old_precision);
}

void save_instance(const Instance& inst, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_instance: cannot open " + path);
  save_instance(inst, out);
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("load_instance: " + what);
}

/// Next non-comment token, or empty at end of input.
std::string try_token(std::istream& is) {
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') {
      std::string line;
      std::getline(is, line);
      continue;
    }
    return tok;
  }
  return {};
}

std::string next_token(std::istream& is, const char* what) {
  std::string tok = try_token(is);
  if (tok.empty())
    fail(std::string("truncated input: expected ") + what +
         ", got end of file");
  return tok;
}

long long parse_int(const std::string& tok, const char* what) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size())
    fail(std::string("expected an integer for ") + what + ", got '" + tok +
         "'");
  return v;
}

long long next_int(std::istream& is, const char* what) {
  return parse_int(next_token(is, what), what);
}

double next_double(std::istream& is, const char* what) {
  const std::string tok = next_token(is, what);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(tok.c_str(), &end);
  if (errno != 0 || end != tok.c_str() + tok.size())
    fail(std::string("expected a number for ") + what + ", got '" + tok +
         "'");
  return v;
}

void expect(std::istream& is, const std::string& want) {
  const std::string got = next_token(is, want.c_str());
  if (got != want)
    fail("expected '" + want + "', got '" + got +
         (want == "blockcache-instance"
              ? "' (missing or wrong format header)"
              : "'"));
}

/// Parse everything through `requests <T>`; leaves the stream at the
/// first request token. Returns the header instance (empty requests).
Instance read_text_header(std::istream& is, long long& T) {
  expect(is, "blockcache-instance");
  expect(is, "v1");
  expect(is, "n");
  const long long n = next_int(is, "n_pages");
  expect(is, "k");
  const long long k = next_int(is, "k");
  expect(is, "blocks");
  const long long n_blocks = next_int(is, "block count");
  if (n <= 0) fail("n_pages must be positive, got " + std::to_string(n));
  if (k <= 0) fail("k must be positive, got " + std::to_string(k));
  if (n_blocks <= 0)
    fail("block count must be positive, got " + std::to_string(n_blocks));

  std::vector<BlockId> page_to_block(static_cast<std::size_t>(n), -1);
  std::vector<Cost> costs(static_cast<std::size_t>(n_blocks), 1.0);
  for (long long i = 0; i < n_blocks; ++i) {
    expect(is, "block");
    const long long b = next_int(is, "block id");
    if (b < 0 || b >= n_blocks)
      fail("block id " + std::to_string(b) + " outside [0, " +
           std::to_string(n_blocks) + ")");
    costs[static_cast<std::size_t>(b)] = next_double(is, "block cost");
    if (!(costs[static_cast<std::size_t>(b)] > 0))
      fail("block " + std::to_string(b) + " has non-positive cost");
    // Pages until the next keyword ("block" or "requests").
    for (;;) {
      std::string tok = try_token(is);
      if (tok.empty())
        fail("truncated input inside block " + std::to_string(b) +
             " (no 'requests' section)");
      if (tok == "block" || tok == "requests") {
        for (auto it = tok.rbegin(); it != tok.rend(); ++it)
          is.putback(*it);
        break;
      }
      const long long p = parse_int(tok, "page id");
      if (p < 0 || p >= n)
        fail("page id " + std::to_string(p) + " outside [0, " +
             std::to_string(n) + ") in block " + std::to_string(b));
      auto& assigned = page_to_block[static_cast<std::size_t>(p)];
      if (assigned >= 0 && assigned != b)
        fail("page " + std::to_string(p) + " assigned to blocks " +
             std::to_string(assigned) + " and " + std::to_string(b));
      assigned = static_cast<BlockId>(b);
    }
  }
  for (long long p = 0; p < n; ++p)
    if (page_to_block[static_cast<std::size_t>(p)] < 0)
      fail("page " + std::to_string(p) + " not assigned to any block");

  expect(is, "requests");
  T = next_int(is, "request count");
  if (T < 0) fail("negative request count " + std::to_string(T));

  Instance header{BlockMap(std::move(page_to_block), std::move(costs)),
                  {},
                  static_cast<int>(k)};
  header.validate();
  return header;
}

PageId read_request(std::istream& is, long long index, long long T, int n) {
  const std::string tok = try_token(is);
  if (tok.empty())
    fail("truncated request section: got " + std::to_string(index) +
         " of " + std::to_string(T) + " requests");
  const long long p = parse_int(tok, "request page id");
  if (p < 0 || p >= n)
    fail("request " + std::to_string(index + 1) + " addresses page " +
         std::to_string(p) + " outside [0, " + std::to_string(n) + ")");
  return static_cast<PageId>(p);
}

Instance open_text_header(std::ifstream& in, const std::string& path,
                          long long& T) {
  if (!in) throw std::runtime_error("load_instance: cannot open " + path);
  return read_text_header(in, T);
}

}  // namespace

Instance load_instance(std::istream& is) {
  long long T = 0;
  Instance inst = read_text_header(is, T);
  inst.requests.reserve(static_cast<std::size_t>(T));
  for (long long i = 0; i < T; ++i)
    inst.requests.push_back(read_request(is, i, T, inst.n_pages()));
  inst.validate();
  return inst;
}

Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_instance: cannot open " + path);
  return load_instance(in);
}

TextTraceSource::TextTraceSource(const std::string& path)
    : path_(path), in_(path), header_(open_text_header(in_, path, T_)) {
  first_request_ = in_.tellg();
}

bool TextTraceSource::next(PageId& p) {
  if (yielded_ >= T_) return false;
  p = read_request(in_, yielded_, T_, header_.n_pages());
  ++yielded_;
  return true;
}

void TextTraceSource::rewind() {
  in_.clear();
  in_.seekg(first_request_);
  if (!in_)
    throw std::runtime_error("load_instance: rewind failed on " + path_);
  yielded_ = 0;
}

}  // namespace bac
