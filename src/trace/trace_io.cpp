#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace bac {

void save_instance(const Instance& inst, std::ostream& os) {
  os << "blockcache-instance v1\n";
  os << "n " << inst.n_pages() << " k " << inst.k << "\n";
  os << "blocks " << inst.blocks.n_blocks() << "\n";
  for (BlockId b = 0; b < inst.blocks.n_blocks(); ++b) {
    os << "block " << b << " " << inst.blocks.cost(b);
    for (PageId p : inst.blocks.pages_in(b)) os << " " << p;
    os << "\n";
  }
  os << "requests " << inst.horizon() << "\n";
  for (std::size_t i = 0; i < inst.requests.size(); ++i) {
    os << inst.requests[i];
    os << (((i + 1) % 32 == 0) ? '\n' : ' ');
  }
  os << "\n";
}

void save_instance(const Instance& inst, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_instance: cannot open " + path);
  save_instance(inst, out);
}

namespace {
std::string next_token(std::istream& is) {
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') {
      std::string line;
      std::getline(is, line);
      continue;
    }
    return tok;
  }
  throw std::runtime_error("load_instance: unexpected end of input");
}

long long next_int(std::istream& is) { return std::stoll(next_token(is)); }
double next_double(std::istream& is) { return std::stod(next_token(is)); }

void expect(std::istream& is, const std::string& want) {
  const std::string got = next_token(is);
  if (got != want)
    throw std::runtime_error("load_instance: expected '" + want + "', got '" +
                             got + "'");
}
}  // namespace

Instance load_instance(std::istream& is) {
  expect(is, "blockcache-instance");
  expect(is, "v1");
  expect(is, "n");
  const int n = static_cast<int>(next_int(is));
  expect(is, "k");
  const int k = static_cast<int>(next_int(is));
  expect(is, "blocks");
  const int n_blocks = static_cast<int>(next_int(is));

  std::vector<BlockId> page_to_block(static_cast<std::size_t>(n), -1);
  std::vector<Cost> costs(static_cast<std::size_t>(n_blocks), 1.0);
  for (int i = 0; i < n_blocks; ++i) {
    expect(is, "block");
    const auto b = static_cast<BlockId>(next_int(is));
    if (b < 0 || b >= n_blocks)
      throw std::runtime_error("load_instance: bad block id");
    costs[static_cast<std::size_t>(b)] = next_double(is);
    // Pages until the next keyword; we rely on counting: pages are read
    // until the declared universe is exhausted for this block — instead,
    // read tokens and stop at "block"/"requests" via peeking is clumsy, so
    // the format requires page counts to be derivable: read until the next
    // token is non-numeric. Keep it simple: read tokens; put back via
    // buffer.
    std::string tok;
    while (is >> tok) {
      if (tok == "block" || tok == "requests") {
        // push back
        for (auto it = tok.rbegin(); it != tok.rend(); ++it) is.putback(*it);
        break;
      }
      const auto p = static_cast<PageId>(std::stoll(tok));
      if (p < 0 || p >= n) throw std::runtime_error("load_instance: bad page");
      page_to_block[static_cast<std::size_t>(p)] = b;
    }
  }
  for (BlockId b : page_to_block)
    if (b < 0) throw std::runtime_error("load_instance: unassigned page");

  expect(is, "requests");
  const auto T = static_cast<std::size_t>(next_int(is));
  std::vector<PageId> req(T);
  for (auto& p : req) p = static_cast<PageId>(next_int(is));

  Instance inst{BlockMap(std::move(page_to_block), std::move(costs)),
                std::move(req), k};
  inst.validate();
  return inst;
}

Instance load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_instance: cannot open " + path);
  return load_instance(in);
}

}  // namespace bac
