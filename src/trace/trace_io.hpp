// Plain-text serialization of instances, so experiments can be archived
// and replayed outside the benchmark binaries.
//
// Format (line-oriented, '#' comments allowed):
//   blockcache-instance v1
//   n <n_pages> k <k>
//   blocks <n_blocks>
//   block <id> <cost> <page> <page> ...      (one line per block)
//   requests <T>
//   <page> <page> ...                        (whitespace separated)
//
// Malformed input (missing/wrong header, non-numeric tokens, out-of-range
// ids, truncation) throws std::runtime_error with a message naming the
// offending element. TextTraceSource streams the request section without
// materializing it; load_instance materializes the whole file.
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>

#include "core/instance.hpp"
#include "core/request_source.hpp"

namespace bac {

void save_instance(const Instance& inst, std::ostream& os);
void save_instance(const Instance& inst, const std::string& path);

Instance load_instance(std::istream& is);
Instance load_instance(const std::string& path);

/// Streaming source over a v1 text trace file: the header (block
/// structure, k, request count) is parsed eagerly; requests are decoded
/// token by token, so memory stays independent of the trace length.
class TextTraceSource final : public RequestSource {
 public:
  explicit TextTraceSource(const std::string& path);

  [[nodiscard]] const Instance& context() const override { return header_; }
  [[nodiscard]] long long horizon_hint() const override { return T_; }
  bool next(PageId& p) override;
  /// Batched decode: one virtual call per 512 requests instead of one
  /// per request (the class is final, so the inner next() devirtualizes).
  int next_batch(PageId* out, int cap) override {
    int i = 0;
    while (i < cap && next(out[i])) ++i;
    return i;
  }
  void rewind() override;

 private:
  std::string path_;
  std::ifstream in_;
  long long T_ = 0;           ///< written by header_'s initializer; keep first
  Instance header_;           ///< blocks + k, empty requests
  std::streampos first_request_;
  long long yielded_ = 0;
};

}  // namespace bac
