// Plain-text serialization of instances, so experiments can be archived
// and replayed outside the benchmark binaries.
//
// Format (line-oriented, '#' comments allowed):
//   blockcache-instance v1
//   n <n_pages> k <k>
//   blocks <n_blocks>
//   block <id> <cost> <page> <page> ...      (one line per block)
//   requests <T>
//   <page> <page> ...                        (whitespace separated)
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"

namespace bac {

void save_instance(const Instance& inst, std::ostream& os);
void save_instance(const Instance& inst, const std::string& path);

Instance load_instance(std::istream& is);
Instance load_instance(const std::string& path);

}  // namespace bac
