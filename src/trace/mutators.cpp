#include "trace/mutators.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace bac {

Instance keep_prefix(const Instance& inst, Time T) {
  if (T < 0) throw std::invalid_argument("keep_prefix: negative horizon");
  Instance out{inst.blocks, {}, inst.k};
  const auto keep = std::min<std::size_t>(static_cast<std::size_t>(T),
                                          inst.requests.size());
  out.requests.assign(inst.requests.begin(),
                      inst.requests.begin() + static_cast<std::ptrdiff_t>(keep));
  out.validate();
  return out;
}

Instance drop_block(const Instance& inst, BlockId b) {
  const int m = inst.blocks.n_blocks();
  if (b < 0 || b >= m)
    throw std::invalid_argument("drop_block: block " + std::to_string(b) +
                                " out of range");
  if (m == 1)
    throw std::invalid_argument("drop_block: cannot drop the only block");

  // Renumber surviving pages in id order and surviving blocks likewise.
  const int n = inst.blocks.n_pages();
  std::vector<PageId> new_page(static_cast<std::size_t>(n), -1);
  std::vector<BlockId> page_to_block;
  page_to_block.reserve(static_cast<std::size_t>(n));
  std::vector<Cost> costs;
  costs.reserve(static_cast<std::size_t>(m) - 1);
  for (BlockId ob = 0; ob < m; ++ob) {
    if (ob == b) continue;
    costs.push_back(inst.blocks.cost(ob));
  }
  PageId next = 0;
  for (PageId p = 0; p < n; ++p) {
    const BlockId ob = inst.blocks.block_of(p);
    if (ob == b) continue;
    new_page[static_cast<std::size_t>(p)] = next++;
    page_to_block.push_back(ob < b ? ob : ob - 1);
  }

  Instance out{BlockMap(std::move(page_to_block), std::move(costs)),
               {},
               inst.k};
  out.requests.reserve(inst.requests.size());
  for (PageId p : inst.requests) {
    const PageId np = new_page[static_cast<std::size_t>(p)];
    if (np >= 0) out.requests.push_back(np);
  }
  out.validate();
  return out;
}

Instance with_k(const Instance& inst, int k) {
  Instance out{inst.blocks, inst.requests, k};
  out.validate();
  return out;
}

}  // namespace bac
