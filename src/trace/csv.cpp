#include "trace/csv.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string_view>

namespace bac {

namespace {

/// One parsed data row. The key is a view into the caller's line buffer:
/// parsing allocates nothing, which matters in pass 2 where every
/// request re-parses a line.
struct RowView {
  std::string_view key;
  double size = 1.0;
};

/// Numeric-field validation plus (optionally) the parsed value. Keeps
/// strtod semantics exactly — `scratch` is a reused buffer that only
/// exists because strtod needs NUL termination a view cannot provide.
bool numeric(std::string_view field, std::string& scratch,
             double* out = nullptr) {
  // Space-padded fields ("1, 4096") are common in hand-written and
  // tool-exported CSVs; strtod accepted the leading whitespace, so the
  // validation must keep doing so.
  std::size_t lo = 0, hi = field.size();
  while (lo < hi && (field[lo] == ' ' || field[lo] == '\t')) ++lo;
  while (hi > lo && (field[hi - 1] == ' ' || field[hi - 1] == '\t')) --hi;
  if (lo == hi) return false;
  const std::string_view s = field.substr(lo, hi - lo);
  // Plain decimal/scientific only. strtod also accepts "inf", "nan", and
  // hex floats ("0x1p3"); none of those is a sane timestamp or object
  // size, and letting them through turns one corrupt row into a silently
  // skewed instance. The charset gate rejects them before parsing; the
  // isfinite check catches overflow ("1e999" parses to +inf with ERANGE).
  for (const char c : s) {
    const bool ok = (c >= '0' && c <= '9') || c == '+' || c == '-' ||
                    c == '.' || c == 'e' || c == 'E';
    if (!ok) return false;
  }
  scratch.assign(s.data(), s.size());
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(scratch.c_str(), &end);
  if (errno != 0 || end != scratch.c_str() + scratch.size() ||
      !std::isfinite(v))
    return false;
  if (out != nullptr) *out = v;
  return true;
}

/// Parse one line, keeping only the columns that matter as views into
/// `line`. Non-data rows (headers, comments, ragged lines — i.e.
/// anything whose timestamp column is not numeric) return false and are
/// skipped. In strict mode, rows that *are* data rows but carry a
/// malformed size field throw with the 1-based line number instead of
/// silently coercing the size to 1.0.
bool parse_row(std::string_view line, const CsvOptions& opt, RowView& row,
               long long line_no, std::string& scratch) {
  std::string_view time_field, key_field, size_field;
  bool have_time = false, have_key = false, have_size = false;
  std::size_t start = 0;
  for (int idx = 0;; ++idx) {
    const std::size_t pos = line.find(opt.delimiter, start);
    const bool last = pos == std::string_view::npos;
    std::string_view field =
        line.substr(start, (last ? line.size() : pos) - start);
    // CRLF normalization: a Windows line ending would otherwise glue
    // '\r' onto the last field (rejecting it as numeric or corrupting
    // the key).
    if (last && !field.empty() && field.back() == '\r')
      field.remove_suffix(1);
    if (idx == opt.time_col) {
      time_field = field;
      have_time = true;
    }
    if (idx == opt.key_col) {
      key_field = field;
      have_key = true;
    }
    if (opt.size_col >= 0 && idx == opt.size_col) {
      size_field = field;
      have_size = true;
    }
    if (last) break;
    start = pos + 1;
  }
  // Only timestamp and key are required; the size column is optional
  // (two-column timestamp,key traces are valid, size defaults to 1).
  if (!have_time || !have_key) return false;
  if (!numeric(time_field, scratch)) return false;
  row.key = key_field;
  if (row.key.empty()) {
    if (opt.strict)
      throw std::runtime_error("csv: empty key field at line " +
                               std::to_string(line_no));
    return false;
  }
  row.size = 1.0;
  if (have_size) {
    if (!numeric(size_field, scratch, &row.size)) {
      row.size = 1.0;
      if (opt.strict)
        throw std::runtime_error("csv: malformed size field '" +
                                 std::string(size_field) + "' at line " +
                                 std::to_string(line_no));
    }
  }
  return true;
}

bool parse_unsigned(std::string_view s, std::string& scratch,
                    std::uint64_t& out) {
  if (s.empty()) return false;
  scratch.assign(s.data(), s.size());
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(scratch.c_str(), &end, 10);
  if (errno != 0 || end != scratch.c_str() + scratch.size()) return false;
  out = v;
  return true;
}

void check_options(const CsvOptions& opt) {
  if (opt.block_pages <= 0)
    throw std::invalid_argument("csv: block_pages must be positive");
  if (opt.k <= 0)
    throw std::invalid_argument("csv: options.k (cache size) must be set");
  if (opt.time_col < 0 || opt.key_col < 0)
    throw std::invalid_argument("csv: negative column index");
}

}  // namespace

CsvMapping build_csv_mapping(const std::string& path,
                             const CsvOptions& options) {
  check_options(options);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv: cannot open " + path);

  // First-appearance page ids; per-page key value and size statistics.
  FlatMap<std::string, PageId> key_to_page;
  std::vector<std::uint64_t> key_values;  // numeric value per page
  std::vector<double> size_sum;
  std::vector<long long> size_count;
  bool all_numeric = true;
  long long rows = 0;

  std::string line;
  std::string scratch;
  RowView row;
  long long line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!parse_row(line, options, row, line_no, scratch)) continue;
    ++rows;
    // Heterogeneous upsert: one hash per row, and the key is only copied
    // into an owning std::string the first time it appears.
    const auto [page, inserted] = key_to_page.try_emplace(
        row.key, static_cast<PageId>(key_to_page.size()));
    if (inserted) {
      std::uint64_t v = 0;
      if (all_numeric && parse_unsigned(row.key, scratch, v)) {
        key_values.push_back(v);
      } else {
        all_numeric = false;
      }
      size_sum.push_back(0.0);
      size_count.push_back(0);
    }
    const auto p = static_cast<std::size_t>(*page);
    size_sum[p] += row.size;
    ++size_count[p];
  }
  if (in.bad()) throw std::runtime_error("csv: read error on " + path);
  if (rows == 0)
    throw std::runtime_error("csv: no data rows in " + path +
                             " (expected timestamp" +
                             std::string(1, options.delimiter) + "key" +
                             std::string(1, options.delimiter) + "size)");

  const auto n = static_cast<int>(key_to_page.size());
  std::vector<BlockId> page_to_block(static_cast<std::size_t>(n));
  int n_blocks;
  if (all_numeric) {
    // Extent grouping: keys in the same aligned span share a block.
    const auto span = static_cast<std::uint64_t>(options.block_pages);
    std::map<std::uint64_t, BlockId> extent_ids;  // ordered for determinism
    for (const std::uint64_t v : key_values) extent_ids[v / span] = 0;
    BlockId next = 0;
    for (auto& [extent, id] : extent_ids) id = next++;
    for (std::size_t p = 0; p < key_values.size(); ++p)
      page_to_block[p] = extent_ids[key_values[p] / span];
    n_blocks = static_cast<int>(extent_ids.size());
  } else {
    // Arrival grouping: consecutive first-seen keys share a block.
    for (int p = 0; p < n; ++p)
      page_to_block[static_cast<std::size_t>(p)] = p / options.block_pages;
    n_blocks = (n + options.block_pages - 1) / options.block_pages;
  }

  std::vector<Cost> costs(static_cast<std::size_t>(n_blocks), 1.0);
  if (options.cost_from_size) {
    std::vector<double> block_sum(static_cast<std::size_t>(n_blocks), 0.0);
    std::vector<long long> block_cnt(static_cast<std::size_t>(n_blocks), 0);
    for (int p = 0; p < n; ++p) {
      const auto b = static_cast<std::size_t>(
          page_to_block[static_cast<std::size_t>(p)]);
      block_sum[b] += size_sum[static_cast<std::size_t>(p)];
      block_cnt[b] += size_count[static_cast<std::size_t>(p)];
    }
    for (std::size_t b = 0; b < costs.size(); ++b)
      if (block_cnt[b] > 0)
        costs[b] = std::max(
            1.0, block_sum[b] / static_cast<double>(block_cnt[b]) /
                     options.page_bytes);
  }

  CsvMapping mapping{BlockMap(std::move(page_to_block), std::move(costs)),
                     options.k, std::move(key_to_page), rows, all_numeric};
  // The inferred structure must itself be a valid instance (beta <= k).
  mapping.header().validate();
  return mapping;
}

CsvSource::CsvSource(const std::string& path,
                     std::shared_ptr<const CsvMapping> map,
                     CsvOptions options)
    : path_(path),
      map_(std::move(map)),
      options_(options),
      in_(path),
      header_(map_->header()) {
  if (!in_) throw std::runtime_error("csv: cannot open " + path);
}

bool CsvSource::read_row(std::string& line, std::string_view& key) {
  RowView row;
  while (std::getline(in_, line)) {
    ++line_no_;
    if (!parse_row(line, options_, row, line_no_, scratch_)) continue;
    key = row.key;
    return true;
  }
  if (in_.bad()) throw std::runtime_error("csv: read error on " + path_);
  return false;
}

PageId CsvSource::translate(std::uint64_t hash, std::string_view key) const {
  const PageId* p = map_->key_to_page.find_hashed(hash, key);
  if (p == nullptr)
    throw std::runtime_error("csv: key '" + std::string(key) + "' in " +
                             path_ +
                             " absent from the mapping (file changed "
                             "between passes?)");
  return *p;
}

bool CsvSource::next(PageId& p) {
  std::string_view key;
  if (!read_row(lines_[0], key)) return false;
  p = translate(map_->key_to_page.hash(key), key);
  return true;
}

int CsvSource::next_batch(PageId* out, int cap) {
  // baclint: hot-path — the per-request decode loop must stay allocation-free
  //
  // Software-pipelined: parse row r+1 and prefetch its probe group while
  // row r's lookup resolves, hiding the interner's cache miss behind the
  // next line's parse. Two alternating line buffers keep the pending
  // key's view alive while getline overwrites the other buffer.
  int produced = 0;
  std::string_view pending_key;
  std::uint64_t pending_hash = 0;
  bool has_pending = false;
  int buf = 0;
  while (produced + (has_pending ? 1 : 0) < cap) {
    std::string_view key;
    if (!read_row(lines_[buf], key)) break;
    const std::uint64_t h = map_->key_to_page.hash(key);
    map_->key_to_page.prefetch(h);
    if (has_pending) out[produced++] = translate(pending_hash, pending_key);
    pending_key = key;
    pending_hash = h;
    has_pending = true;
    buf ^= 1;
  }
  if (has_pending && produced < cap)
    out[produced++] = translate(pending_hash, pending_key);
  return produced;
}

void CsvSource::rewind() {
  in_.clear();
  in_.seekg(0);
  line_no_ = 0;
  if (!in_) throw std::runtime_error("csv: rewind failed on " + path_);
}

Instance load_csv_trace(const std::string& path, const CsvOptions& options) {
  auto map = std::make_shared<const CsvMapping>(
      build_csv_mapping(path, options));
  CsvSource src(path, map, options);
  Instance inst = src.context();
  inst.requests.reserve(static_cast<std::size_t>(map->rows));
  PageId p;
  while (src.next(p)) inst.requests.push_back(p);
  inst.validate();
  return inst;
}

}  // namespace bac
