#include "trace/csv.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <map>
#include <stdexcept>

namespace bac {

namespace {

/// Split `line` on the delimiter into at most the columns we care about.
/// Returns false (skip row) when the timestamp column is not numeric —
/// that covers headers, comments, and ragged lines in one rule.
struct Row {
  std::string key;
  double size = 1.0;
};

bool numeric(const std::string& field) {
  // Space-padded fields ("1, 4096") are common in hand-written and
  // tool-exported CSVs; strtod accepted the leading whitespace, so the
  // validation must keep doing so.
  std::size_t lo = 0, hi = field.size();
  while (lo < hi && (field[lo] == ' ' || field[lo] == '\t')) ++lo;
  while (hi > lo && (field[hi - 1] == ' ' || field[hi - 1] == '\t')) --hi;
  if (lo == hi) return false;
  const std::string s = field.substr(lo, hi - lo);
  // Plain decimal/scientific only. strtod also accepts "inf", "nan", and
  // hex floats ("0x1p3"); none of those is a sane timestamp or object
  // size, and letting them through turns one corrupt row into a silently
  // skewed instance. The charset gate rejects them before parsing; the
  // isfinite check catches overflow ("1e999" parses to +inf with ERANGE).
  for (const char c : s) {
    const bool ok = (c >= '0' && c <= '9') || c == '+' || c == '-' ||
                    c == '.' || c == 'e' || c == 'E';
    if (!ok) return false;
  }
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  return errno == 0 && end == s.c_str() + s.size() && std::isfinite(v);
}

/// Parse one line. Non-data rows (headers, comments, ragged lines — i.e.
/// anything whose timestamp column is not numeric) return false and are
/// skipped. In strict mode, rows that *are* data rows but carry a
/// malformed size field throw with the 1-based line number instead of
/// silently coercing the size to 1.0.
bool parse_row(const std::string& line, const CsvOptions& opt, Row& row,
               long long line_no) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t pos = line.find(opt.delimiter, start);
    const std::size_t end = pos == std::string::npos ? line.size() : pos;
    fields.emplace_back(line.substr(start, end - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  // CRLF normalization: a Windows line ending would otherwise glue '\r'
  // onto the last field (rejecting it as numeric or corrupting the key).
  if (!fields.empty() && !fields.back().empty() && fields.back().back() == '\r')
    fields.back().pop_back();
  // Only timestamp and key are required; the size column is optional
  // (two-column timestamp,key traces are valid, size defaults to 1).
  const auto need =
      static_cast<std::size_t>(std::max(opt.time_col, opt.key_col));
  if (fields.size() <= need) return false;
  if (!numeric(fields[static_cast<std::size_t>(opt.time_col)])) return false;
  row.key = fields[static_cast<std::size_t>(opt.key_col)];
  if (row.key.empty()) {
    if (opt.strict)
      throw std::runtime_error("csv: empty key field at line " +
                               std::to_string(line_no));
    return false;
  }
  row.size = 1.0;
  if (opt.size_col >= 0 &&
      static_cast<std::size_t>(opt.size_col) < fields.size()) {
    const std::string& s = fields[static_cast<std::size_t>(opt.size_col)];
    if (numeric(s)) {
      row.size = std::strtod(s.c_str(), nullptr);
    } else if (opt.strict) {
      throw std::runtime_error("csv: malformed size field '" + s +
                               "' at line " + std::to_string(line_no));
    }
  }
  return true;
}

bool parse_unsigned(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

void check_options(const CsvOptions& opt) {
  if (opt.block_pages <= 0)
    throw std::invalid_argument("csv: block_pages must be positive");
  if (opt.k <= 0)
    throw std::invalid_argument("csv: options.k (cache size) must be set");
  if (opt.time_col < 0 || opt.key_col < 0)
    throw std::invalid_argument("csv: negative column index");
}

}  // namespace

CsvMapping build_csv_mapping(const std::string& path,
                             const CsvOptions& options) {
  check_options(options);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv: cannot open " + path);

  // First-appearance page ids; per-page key value and size statistics.
  std::unordered_map<std::string, PageId> key_to_page;
  std::vector<std::uint64_t> key_values;  // numeric value per page
  std::vector<double> size_sum;
  std::vector<long long> size_count;
  bool all_numeric = true;
  long long rows = 0;

  std::string line;
  Row row;
  long long line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!parse_row(line, options, row, line_no)) continue;
    ++rows;
    const auto [it, inserted] =
        key_to_page.try_emplace(row.key,
                                static_cast<PageId>(key_to_page.size()));
    if (inserted) {
      std::uint64_t v = 0;
      if (all_numeric && parse_unsigned(row.key, v)) {
        key_values.push_back(v);
      } else {
        all_numeric = false;
      }
      size_sum.push_back(0.0);
      size_count.push_back(0);
    }
    const auto p = static_cast<std::size_t>(it->second);
    size_sum[p] += row.size;
    ++size_count[p];
  }
  if (in.bad()) throw std::runtime_error("csv: read error on " + path);
  if (rows == 0)
    throw std::runtime_error("csv: no data rows in " + path +
                             " (expected timestamp" +
                             std::string(1, options.delimiter) + "key" +
                             std::string(1, options.delimiter) + "size)");

  const auto n = static_cast<int>(key_to_page.size());
  std::vector<BlockId> page_to_block(static_cast<std::size_t>(n));
  int n_blocks;
  if (all_numeric) {
    // Extent grouping: keys in the same aligned span share a block.
    const auto span = static_cast<std::uint64_t>(options.block_pages);
    std::map<std::uint64_t, BlockId> extent_ids;  // ordered for determinism
    for (const std::uint64_t v : key_values) extent_ids[v / span] = 0;
    BlockId next = 0;
    for (auto& [extent, id] : extent_ids) id = next++;
    for (std::size_t p = 0; p < key_values.size(); ++p)
      page_to_block[p] = extent_ids[key_values[p] / span];
    n_blocks = static_cast<int>(extent_ids.size());
  } else {
    // Arrival grouping: consecutive first-seen keys share a block.
    for (int p = 0; p < n; ++p)
      page_to_block[static_cast<std::size_t>(p)] = p / options.block_pages;
    n_blocks = (n + options.block_pages - 1) / options.block_pages;
  }

  std::vector<Cost> costs(static_cast<std::size_t>(n_blocks), 1.0);
  if (options.cost_from_size) {
    std::vector<double> block_sum(static_cast<std::size_t>(n_blocks), 0.0);
    std::vector<long long> block_cnt(static_cast<std::size_t>(n_blocks), 0);
    for (int p = 0; p < n; ++p) {
      const auto b = static_cast<std::size_t>(
          page_to_block[static_cast<std::size_t>(p)]);
      block_sum[b] += size_sum[static_cast<std::size_t>(p)];
      block_cnt[b] += size_count[static_cast<std::size_t>(p)];
    }
    for (std::size_t b = 0; b < costs.size(); ++b)
      if (block_cnt[b] > 0)
        costs[b] = std::max(
            1.0, block_sum[b] / static_cast<double>(block_cnt[b]) /
                     options.page_bytes);
  }

  CsvMapping mapping{BlockMap(std::move(page_to_block), std::move(costs)),
                     options.k, std::move(key_to_page), rows, all_numeric};
  // The inferred structure must itself be a valid instance (beta <= k).
  mapping.header().validate();
  return mapping;
}

CsvSource::CsvSource(const std::string& path,
                     std::shared_ptr<const CsvMapping> map,
                     CsvOptions options)
    : path_(path),
      map_(std::move(map)),
      options_(options),
      in_(path),
      header_(map_->header()) {
  if (!in_) throw std::runtime_error("csv: cannot open " + path);
}

bool CsvSource::next(PageId& p) {
  Row row;
  while (std::getline(in_, line_)) {
    ++line_no_;
    if (!parse_row(line_, options_, row, line_no_)) continue;
    const auto it = map_->key_to_page.find(row.key);
    if (it == map_->key_to_page.end())
      throw std::runtime_error("csv: key '" + row.key + "' in " + path_ +
                               " absent from the mapping (file changed "
                               "between passes?)");
    p = it->second;
    return true;
  }
  if (in_.bad()) throw std::runtime_error("csv: read error on " + path_);
  return false;
}

void CsvSource::rewind() {
  in_.clear();
  in_.seekg(0);
  line_no_ = 0;
  if (!in_) throw std::runtime_error("csv: rewind failed on " + path_);
}

Instance load_csv_trace(const std::string& path, const CsvOptions& options) {
  auto map = std::make_shared<const CsvMapping>(
      build_csv_mapping(path, options));
  CsvSource src(path, map, options);
  Instance inst = src.context();
  inst.requests.reserve(static_cast<std::size_t>(map->rows));
  PageId p;
  while (src.next(p)) inst.requests.push_back(p);
  inst.validate();
  return inst;
}

}  // namespace bac
