// Workload characterization: LRU stack (reuse) distances, hit-rate curves
// and block-locality metrics.
//
// Reuse distances are computed with the classic Fenwick-tree sweep
// (O(T log T)): the distance of a request is the number of *distinct*
// pages touched since the previous request to the same page; the fraction
// of requests with distance < k is exactly the hit rate of an LRU cache of
// size k, so `hit_rate(k)` gives the full LRU miss curve in one pass.
// Block-level variants run the same analysis on block ids, quantifying how
// much batching opportunity a trace offers — the key workload property for
// block-aware caching.
#pragma once

#include <vector>

#include "core/instance.hpp"

namespace bac {

struct TraceStats {
  Time requests = 0;
  int distinct_pages = 0;
  int distinct_blocks = 0;
  double block_switch_rate = 0;  ///< fraction of steps changing blocks

  /// Sorted finite page-level reuse distances (first accesses excluded).
  std::vector<int> page_reuse_distances;
  /// Sorted finite block-level reuse distances.
  std::vector<int> block_reuse_distances;

  /// LRU hit rate for a cache of `k` pages (from the distance profile).
  [[nodiscard]] double lru_hit_rate(int k) const;
  /// Block-LRU hit rate for a cache of `blocks` whole blocks.
  [[nodiscard]] double block_lru_hit_rate(int blocks) const;
  /// Quantile of the page reuse-distance distribution (q in [0,1]).
  [[nodiscard]] double reuse_quantile(double q) const;
};

TraceStats analyze_trace(const Instance& inst);

}  // namespace bac
