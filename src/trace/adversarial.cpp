#include "trace/adversarial.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/cache_set.hpp"
#include "core/cost_meter.hpp"

namespace bac {

namespace {

/// Page layout shared by the Claim 2.1 builders: 2*beta^2 pages, P-blocks
/// are 0..beta-1, Q-blocks are beta..2*beta-1, block j holds pages
/// j*beta .. j*beta+beta-1 (contiguous), all costs 1.
PageId p_page(int beta, int block, int index) { return static_cast<PageId>(block * beta + index); }
PageId q_page(int beta, int block, int index) {
  return static_cast<PageId>((beta + block) * beta + index);
}

}  // namespace

BuiltAdversarial claim21_fetch_cheap(int beta, int repeats) {
  if (beta < 2) throw std::invalid_argument("claim21: beta >= 2 required");
  if (repeats < 1) throw std::invalid_argument("claim21: repeats >= 1");
  const int n = 2 * beta * beta;
  const int k = beta * beta;

  std::vector<PageId> req;
  Schedule sched;
  auto step = [&](PageId p) {
    req.push_back(p);
    sched.steps.emplace_back();
  };

  // Warm-up: request all P pages; intended schedule fetches each P block
  // in its entirety at the block's first request.
  for (int j = 0; j < beta; ++j) {
    for (int l = 0; l < beta; ++l) {
      step(p_page(beta, j, l));
      if (l == 0)
        for (int l2 = 0; l2 < beta; ++l2)
          sched.steps.back().fetches.push_back(p_page(beta, j, l2));
    }
  }

  // Rounds i = 1..beta. At the first request of round i the intended
  // schedule evicts page index (beta - i) of each P-block and fetches
  // Q-block i-1 in its entirety.
  for (int i = 1; i <= beta; ++i) {
    for (int rep = 0; rep < repeats; ++rep) {
      bool first_of_round = (rep == 0);
      for (int j = 0; j < beta; ++j) {
        for (int l = 0; l < beta - i; ++l) {
          step(p_page(beta, j, l));
          if (first_of_round) {
            for (int j2 = 0; j2 < beta; ++j2)
              sched.steps.back().evictions.push_back(
                  p_page(beta, j2, beta - i));
            for (int l2 = 0; l2 < beta; ++l2)
              sched.steps.back().fetches.push_back(q_page(beta, i - 1, l2));
            first_of_round = false;
          }
        }
      }
      for (int j = 0; j < i; ++j) {
        for (int l = 0; l < beta; ++l) {
          step(q_page(beta, j, l));
          if (first_of_round) {  // round i == beta has no P requests
            for (int j2 = 0; j2 < beta; ++j2)
              sched.steps.back().evictions.push_back(
                  p_page(beta, j2, beta - i));
            for (int l2 = 0; l2 < beta; ++l2)
              sched.steps.back().fetches.push_back(q_page(beta, i - 1, l2));
            first_of_round = false;
          }
        }
      }
    }
  }

  Instance inst{BlockMap::contiguous(n, beta), std::move(req), k};
  inst.validate();
  return {std::move(inst), std::move(sched)};
}

BuiltAdversarial claim21_evict_cheap(int beta, int repeats) {
  if (beta < 2) throw std::invalid_argument("claim21: beta >= 2 required");
  if (repeats < 1) throw std::invalid_argument("claim21: repeats >= 1");
  const int n = 2 * beta * beta;
  const int k = beta * beta;

  std::vector<PageId> req;
  Schedule sched;
  auto step = [&](PageId p) {
    req.push_back(p);
    sched.steps.emplace_back();
  };

  // Round i = 1..beta requests the last i pages of each P-block and all of
  // Q-blocks i..beta-1. Intended schedule: in round 1 fetch lazily (P pages
  // singly, Q blocks in their entirety at first touch); entering round
  // i >= 2, fetch page index (beta - i) of each P-block and evict Q-block
  // i-1 in its entirety.
  for (int i = 1; i <= beta; ++i) {
    for (int rep = 0; rep < repeats; ++rep) {
      bool first_of_round = (rep == 0 && i >= 2);
      for (int j = 0; j < beta; ++j) {
        for (int l = beta - i; l < beta; ++l) {
          step(p_page(beta, j, l));
          if (i == 1 && rep == 0) {
            // lazy single-page fetch on first touch
            sched.steps.back().fetches.push_back(p_page(beta, j, l));
          } else if (first_of_round) {
            for (int j2 = 0; j2 < beta; ++j2)
              sched.steps.back().fetches.push_back(
                  p_page(beta, j2, beta - i));
            for (int l2 = 0; l2 < beta; ++l2)
              sched.steps.back().evictions.push_back(q_page(beta, i - 1, l2));
            first_of_round = false;
          }
        }
      }
      for (int j = i; j < beta; ++j) {
        for (int l = 0; l < beta; ++l) {
          step(q_page(beta, j, l));
          if (i == 1 && rep == 0 && l == 0) {
            for (int l2 = 0; l2 < beta; ++l2)
              sched.steps.back().fetches.push_back(q_page(beta, j, l2));
          }
        }
      }
    }
  }

  Instance inst{BlockMap::contiguous(n, beta), std::move(req), k};
  inst.validate();
  return {std::move(inst), std::move(sched)};
}

Instance gap_instance(int beta, int rounds) {
  if (beta < 2) throw std::invalid_argument("gap_instance: beta >= 2");
  const int n = 2 * beta;
  const int k = 2 * beta - 1;
  std::vector<PageId> req;
  req.reserve(static_cast<std::size_t>(rounds) * static_cast<std::size_t>(n));
  for (int r = 0; r < rounds; ++r)
    for (PageId p = 0; p < n; ++p) req.push_back(p);
  Instance inst{BlockMap::contiguous(n, beta), std::move(req), k};
  inst.validate();
  return inst;
}

Instance cyclic_nemesis(int k, int block_size, Time T) {
  const int n = k + 1;
  std::vector<PageId> req(static_cast<std::size_t>(T));
  for (Time t = 0; t < T; ++t)
    req[static_cast<std::size_t>(t)] = static_cast<PageId>(t % n);
  Instance inst{BlockMap::contiguous(n, block_size), std::move(req), k};
  inst.validate();
  return inst;
}

AdversaryResult run_adaptive_adversary(OnlinePolicy& policy, int k,
                                       int block_size, int h, Time T,
                                       std::uint64_t seed) {
  if (h < 1 || h > k) throw std::invalid_argument("adversary: need 1<=h<=k");
  const int n = k + (block_size - 1) * (h - 1) + 1;
  BlockMap blocks = BlockMap::contiguous(n, block_size);

  // Drive the policy step by step; the request stream is chosen online.
  Instance shell{blocks, {}, k};
  CacheSet cache(n);
  CostMeter meter(blocks);
  CacheOps ops(blocks, cache, meter, k);
  policy.reset(shell);
  policy.seed(seed);

  std::vector<PageId> req;
  req.reserve(static_cast<std::size_t>(T));
  for (Time t = 1; t <= T; ++t) {
    // Pick the block with the most absent pages; request its first absent
    // page. The policy's cache has at most k < n pages, so one exists.
    int best_absent = -1;
    PageId choice = -1;
    for (BlockId b = 0; b < blocks.n_blocks(); ++b) {
      int absent = 0;
      PageId first_absent = -1;
      for (PageId p : blocks.pages_in(b)) {
        if (!cache.contains(p)) {
          ++absent;
          if (first_absent < 0) first_absent = p;
        }
      }
      if (absent > best_absent) {
        best_absent = absent;
        choice = first_absent;
      }
    }
    req.push_back(choice);
    meter.begin_step(t);
    policy.on_request(t, choice, ops);
    if (!cache.contains(choice))
      throw std::runtime_error("adversary: policy failed to cache request");
    if (cache.size() > k)
      throw std::runtime_error("adversary: policy exceeded capacity");
  }

  AdversaryResult out{Instance{std::move(blocks), std::move(req), k},
                      meter.fetch_cost(), meter.eviction_cost()};
  out.instance.validate();
  return out;
}

double bgm21_lower_bound(int k, int block_size, int h) {
  return (static_cast<double>(k) +
          static_cast<double>(block_size - 1) * static_cast<double>(h - 1)) /
         static_cast<double>(k - h + 1);
}

}  // namespace bac
