// CSV key-trace adapter for lsc/MSR-style `timestamp,key,size` traces.
//
// Real storage and CDN traces identify objects by opaque keys, not dense
// page ids, and carry no block structure. The adapter makes them
// block-aware-cache instances in two passes:
//
//   pass 1 (build_csv_mapping): scan the file, assign each distinct key a
//     dense page id in first-appearance order, and infer a block
//     structure by key grouping:
//       - when every key parses as an unsigned integer (MSR offsets,
//         LBAs), pages whose keys fall in the same aligned span of
//         `block_pages` consecutive values share a block — extent-style
//         grouping, so spatially adjacent addresses batch together;
//       - otherwise consecutive first-seen keys are grouped
//         `block_pages` at a time (arrival-locality grouping).
//     Block costs are uniform (1.0), or proportional to the block's mean
//     observed object size when `cost_from_size` is set.
//
//   pass 2 (CsvSource): re-stream the file, translating keys through the
//     mapping. Memory is O(#distinct keys) — independent of trace length.
//
// Row format: delimiter-separated, `timestamp,key,size` by default
// (column indices configurable). Rows whose timestamp column does not
// parse as a number are skipped (headers, comments); the size column is
// optional.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.hpp"
#include "core/request_source.hpp"
#include "util/flat_hash.hpp"

namespace bac {

struct CsvOptions {
  char delimiter = ',';
  int time_col = 0;
  int key_col = 1;
  int size_col = 2;        ///< -1: no size column
  int block_pages = 8;     ///< pages grouped per block (span for numeric keys)
  int k = 0;               ///< cache size of the produced instances; must be set
  bool cost_from_size = false;  ///< block cost = mean object size / page size
  double page_bytes = 4096.0;   ///< size unit when cost_from_size
  /// When true, data rows with a malformed size field or an empty key
  /// raise std::runtime_error naming the 1-based line number, instead of
  /// silently coercing the size to 1.0 / skipping the row. Rows whose
  /// timestamp column is non-numeric are still skipped (headers,
  /// comments). Timestamps and sizes must be finite plain decimals in
  /// either mode: inf/nan/hex-float forms are rejected.
  bool strict = false;
};

/// The key -> page translation plus the inferred block structure. The
/// interner is an open-addressing FlatMap probed with string_views, so
/// pass 2 translates each row with one hash and no temporary strings.
struct CsvMapping {
  BlockMap blocks;
  int k = 0;
  FlatMap<std::string, PageId> key_to_page;
  long long rows = 0;      ///< data rows seen in pass 1
  bool numeric_keys = false;

  [[nodiscard]] Instance header() const { return Instance{blocks, {}, k}; }
};

/// Pass 1. Throws std::runtime_error on unreadable files or traces with
/// no data rows, std::invalid_argument on bad options.
CsvMapping build_csv_mapping(const std::string& path,
                             const CsvOptions& options);

/// Pass 2: streaming source. Multiple sources can share one mapping
/// (read-only) across threads.
class CsvSource final : public RequestSource {
 public:
  CsvSource(const std::string& path, std::shared_ptr<const CsvMapping> map,
            CsvOptions options);

  [[nodiscard]] const Instance& context() const override { return header_; }
  [[nodiscard]] long long horizon_hint() const override {
    return map_->rows;
  }
  bool next(PageId& p) override;
  /// Batched decode: one virtual call per 512 requests instead of one
  /// per request, software-pipelined — row r+1 is parsed and its probe
  /// group prefetched while row r's page id resolves (see csv.cpp).
  int next_batch(PageId* out, int cap) override;
  void rewind() override;

 private:
  /// Read the next data row into `line`; `key` views into it.
  bool read_row(std::string& line, std::string_view& key);
  PageId translate(std::uint64_t hash, std::string_view key) const;

  std::string path_;
  std::shared_ptr<const CsvMapping> map_;
  CsvOptions options_;
  std::ifstream in_;
  Instance header_;
  /// Two line buffers so the pipelined batch loop can parse row r+1
  /// while row r's key (a view into the other buffer) is still live.
  std::string lines_[2];
  std::string scratch_;    ///< reused NUL-terminated copy for strtod
  long long line_no_ = 0;  ///< 1-based, for strict-mode diagnostics
};

/// Convenience: pass 1 + full materialization (small traces / tests).
Instance load_csv_trace(const std::string& path, const CsvOptions& options);

}  // namespace bac
