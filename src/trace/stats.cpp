#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>

namespace bac {

namespace {

/// Fenwick tree over time positions for the stack-distance sweep.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}
  void add(std::size_t i, int delta) {
    for (++i; i < tree_.size(); i += i & (~i + 1)) tree_[i] += delta;
  }
  [[nodiscard]] int prefix(std::size_t i) const {  // sum of [0, i]
    int s = 0;
    for (++i; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<int> tree_;
};

/// Distances between successive occurrences of each symbol, measured in
/// distinct intervening symbols. `symbols[i]` in [0, universe).
std::vector<int> stack_distances(const std::vector<int>& symbols,
                                 int universe) {
  std::vector<int> out;
  if (symbols.empty()) return out;
  Fenwick active(symbols.size());
  std::vector<std::ptrdiff_t> last(static_cast<std::size_t>(universe), -1);
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const auto s = static_cast<std::size_t>(symbols[i]);
    const std::ptrdiff_t prev = last[s];
    if (prev >= 0) {
      // Distinct symbols accessed strictly between prev and i.
      const int upto_i = active.prefix(i - 1);
      const int upto_prev = active.prefix(static_cast<std::size_t>(prev));
      out.push_back(upto_i - upto_prev);
      active.add(static_cast<std::size_t>(prev), -1);
    }
    active.add(i, +1);
    last[s] = static_cast<std::ptrdiff_t>(i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double hit_rate_from(const std::vector<int>& sorted_distances,
                     Time total_requests, int capacity) {
  if (total_requests == 0) return 0;
  const auto hits = std::lower_bound(sorted_distances.begin(),
                                     sorted_distances.end(), capacity) -
                    sorted_distances.begin();
  return static_cast<double>(hits) / static_cast<double>(total_requests);
}

}  // namespace

double TraceStats::lru_hit_rate(int k) const {
  return hit_rate_from(page_reuse_distances, requests, k);
}

double TraceStats::block_lru_hit_rate(int blocks) const {
  return hit_rate_from(block_reuse_distances, requests, blocks);
}

double TraceStats::reuse_quantile(double q) const {
  if (page_reuse_distances.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(page_reuse_distances.size() - 1));
  return page_reuse_distances[idx];
}

TraceStats analyze_trace(const Instance& inst) {
  TraceStats stats;
  stats.requests = inst.horizon();

  std::vector<int> pages, block_ids;
  pages.reserve(inst.requests.size());
  block_ids.reserve(inst.requests.size());
  std::vector<char> seen_page(static_cast<std::size_t>(inst.n_pages()), 0);
  std::vector<char> seen_block(
      static_cast<std::size_t>(inst.blocks.n_blocks()), 0);
  int switches = 0;
  BlockId prev_block = -1;
  for (PageId p : inst.requests) {
    const BlockId b = inst.blocks.block_of(p);
    pages.push_back(p);
    block_ids.push_back(b);
    if (!seen_page[static_cast<std::size_t>(p)]) {
      seen_page[static_cast<std::size_t>(p)] = 1;
      ++stats.distinct_pages;
    }
    if (!seen_block[static_cast<std::size_t>(b)]) {
      seen_block[static_cast<std::size_t>(b)] = 1;
      ++stats.distinct_blocks;
    }
    if (prev_block >= 0 && b != prev_block) ++switches;
    prev_block = b;
  }
  if (inst.horizon() > 1)
    stats.block_switch_rate =
        static_cast<double>(switches) / static_cast<double>(inst.horizon() - 1);

  stats.page_reuse_distances = stack_distances(pages, inst.n_pages());
  stats.block_reuse_distances =
      stack_distances(block_ids, inst.blocks.n_blocks());
  return stats;
}

}  // namespace bac
