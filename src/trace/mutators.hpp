// Structure-preserving instance mutators.
//
// These are the moves the verify subsystem's shrinker applies to a failing
// fuzz instance — each one produces a strictly smaller, still-valid
// Instance whose failure (if it persists) is easier to stare at. They are
// also useful on their own for carving test cases out of big traces.
//
// Every mutator returns a fresh Instance (inputs are never modified) and
// validates its output; a mutation that cannot produce a valid instance
// (e.g. dropping the only block) throws std::invalid_argument.
#pragma once

#include "core/instance.hpp"

namespace bac {

/// The first `T` requests of `inst` (T >= horizon returns a plain copy).
/// The block structure is shared, not copied.
Instance keep_prefix(const Instance& inst, Time T);

/// Remove block `b` entirely: its pages disappear, remaining pages and
/// blocks are renumbered contiguously (order preserved), and requests to
/// removed pages are dropped. k is kept as-is (beta can only shrink, so
/// the result stays valid). Throws when `b` is out of range or the last
/// remaining block.
Instance drop_block(const Instance& inst, BlockId b);

/// Same instance under cache size `k` (throws via validate() when
/// k < beta or k <= 0). The block structure is shared.
Instance with_k(const Instance& inst, int k);

}  // namespace bac
