#include "trace/bact.hpp"

#include <bit>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace bac {

namespace {

constexpr char kMagic[6] = {'B', 'A', 'C', 'T', '1', '\n'};

void put_varint(std::ostream& os, std::uint64_t v) {
  char buf[10];
  int n = 0;
  do {
    char byte = static_cast<char>(v & 0x7f);
    v >>= 7;
    if (v != 0) byte = static_cast<char>(byte | 0x80);
    buf[n++] = byte;
  } while (v != 0);
  os.write(buf, n);
}

std::uint64_t get_varint(std::istream& is, const char* what) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof())
      throw std::runtime_error(std::string("bact: truncated ") + what);
    // The 10th byte (shift 63) may only carry the top bit of a 64-bit
    // value; anything in bits 1-6 would be shifted out of the word and
    // silently decode to a wrong (smaller) value instead of an error.
    if (shift == 63 && (c & 0x7e) != 0)
      throw std::runtime_error(std::string("bact: varint overflow in ") +
                               what);
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return v;
    shift += 7;
    if (shift >= 64)
      throw std::runtime_error(std::string("bact: varint overflow in ") +
                               what);
  }
}

void put_double(std::ostream& os, double x) {
  const auto bits = std::bit_cast<std::uint64_t>(x);
  char buf[8];
  for (int i = 0; i < 8; ++i)
    buf[i] = static_cast<char>((bits >> (8 * i)) & 0xff);
  os.write(buf, 8);
}

double get_double(std::istream& is, const char* what) {
  char buf[8];
  if (!is.read(buf, 8))
    throw std::runtime_error(std::string("bact: truncated ") + what);
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i]))
            << (8 * i);
  return std::bit_cast<double>(bits);
}

void write_header(std::ostream& os, const BlockMap& blocks, int k,
                  long long declared_T) {
  os.write(kMagic, sizeof kMagic);
  put_varint(os, static_cast<std::uint64_t>(blocks.n_pages()));
  put_varint(os, static_cast<std::uint64_t>(k));
  put_varint(os, static_cast<std::uint64_t>(blocks.n_blocks()));
  for (BlockId b = 0; b < blocks.n_blocks(); ++b)
    put_double(os, blocks.cost(b));
  for (PageId p = 0; p < blocks.n_pages(); ++p)
    put_varint(os, static_cast<std::uint64_t>(blocks.block_of(p)));
  put_varint(os, static_cast<std::uint64_t>(declared_T));
}

/// Parses the fixed-size header; leaves the stream at the first request.
Instance read_header(std::istream& is, long long& declared_T) {
  char magic[sizeof kMagic];
  if (!is.read(magic, sizeof magic) ||
      std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("bact: missing BACT1 magic (not a .bact file?)");
  const auto n = static_cast<long long>(get_varint(is, "n_pages"));
  const auto k = static_cast<long long>(get_varint(is, "k"));
  const auto m = static_cast<long long>(get_varint(is, "n_blocks"));
  constexpr long long kMax = 1ll << 31;
  if (n <= 0 || n >= kMax || k <= 0 || k >= kMax || m <= 0 || m >= kMax)
    throw std::runtime_error("bact: implausible header sizes");
  std::vector<Cost> costs(static_cast<std::size_t>(m));
  for (auto& c : costs) {
    c = get_double(is, "block cost");
    if (!(c > 0))
      throw std::runtime_error("bact: non-positive block cost");
  }
  std::vector<BlockId> page_to_block(static_cast<std::size_t>(n));
  for (auto& b : page_to_block) {
    const auto v = get_varint(is, "page map");
    if (v >= static_cast<std::uint64_t>(m))
      throw std::runtime_error("bact: page mapped to out-of-range block");
    b = static_cast<BlockId>(v);
  }
  declared_T = static_cast<long long>(get_varint(is, "declared_T"));
  Instance header{BlockMap(std::move(page_to_block), std::move(costs)),
                  {},
                  static_cast<int>(k)};
  header.validate();
  return header;
}

Instance open_bact_header(std::ifstream& in, const std::string& path,
                          long long& declared_T) {
  if (!in) throw std::runtime_error("bact: cannot open " + path);
  return read_header(in, declared_T);
}

}  // namespace

BactWriter::BactWriter(std::ostream& os, const BlockMap& blocks, int k,
                       long long declared_T)
    : os_(&os), n_pages_(blocks.n_pages()), declared_T_(declared_T) {
  write_header(os, blocks, k, declared_T);
}

void BactWriter::add(PageId p) {
  if (finished_) throw std::logic_error("BactWriter: add after finish");
  if (p < 0 || p >= n_pages_)
    throw std::out_of_range("BactWriter: page out of range");
  put_varint(*os_, static_cast<std::uint64_t>(p) + 1);
  ++written_;
}

void BactWriter::finish() {
  if (finished_) return;
  finished_ = true;
  put_varint(*os_, 0);
  if (declared_T_ > 0 && written_ != declared_T_)
    throw std::logic_error("BactWriter: wrote " + std::to_string(written_) +
                           " requests, declared " +
                           std::to_string(declared_T_));
  if (!os_->flush())
    throw std::runtime_error("BactWriter: short write");
}

BactWriter::~BactWriter() {
  try {
    finish();
  } catch (...) {
    // Destructors must not throw; call finish() directly to observe errors.
  }
}

void save_bact(const Instance& inst, std::ostream& os) {
  BactWriter writer(os, inst.blocks, inst.k,
                    static_cast<long long>(inst.requests.size()));
  for (PageId p : inst.requests) writer.add(p);
  writer.finish();
}

void save_bact(const Instance& inst, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_bact: cannot open " + path);
  save_bact(inst, out);
}

Instance load_bact(const std::string& path) {
  BactSource src(path);
  Instance inst = src.context();  // blocks + k
  const long long hint = src.horizon_hint();
  if (hint > 0) inst.requests.reserve(static_cast<std::size_t>(hint));
  PageId p;
  while (src.next(p)) inst.requests.push_back(p);
  inst.validate();
  return inst;
}

BactSource::BactSource(const std::string& path)
    : path_(path),
      in_(path, std::ios::binary),
      header_(open_bact_header(in_, path, declared_T_)),
      buf_(64 * 1024) {
  first_request_ = in_.tellg();
}

int BactSource::read_byte() {
  if (buf_pos_ == buf_len_) {
    in_.read(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_len_ = static_cast<std::size_t>(in_.gcount());
    buf_pos_ = 0;
    if (buf_len_ == 0) return -1;
  }
  return static_cast<unsigned char>(buf_[buf_pos_++]);
}

bool BactSource::decode_request(PageId& p) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int c = read_byte();
    if (c < 0) throw std::runtime_error("bact: truncated request");
    // Mirror of get_varint's 10th-byte guard: bits 1-6 of the shift-63
    // byte would be discarded by the shift, turning an over-range varint
    // into a silently wrong page id.
    if (shift == 63 && (c & 0x7e) != 0)
      throw std::runtime_error("bact: varint overflow in request");
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64)
      throw std::runtime_error("bact: varint overflow in request");
  }
  if (v == 0) {
    done_ = true;
    if (declared_T_ > 0 && yielded_ != declared_T_)
      throw std::runtime_error(
          "bact: " + path_ + " declared " + std::to_string(declared_T_) +
          " requests but contains " + std::to_string(yielded_));
    return false;
  }
  if (v > static_cast<std::uint64_t>(header_.n_pages()))
    throw std::runtime_error("bact: request to out-of-range page in " +
                             path_);
  p = static_cast<PageId>(v - 1);
  ++yielded_;
  return true;
}

bool BactSource::next(PageId& p) {
  if (done_) return false;
  return decode_request(p);
}

int BactSource::next_batch(PageId* out, int cap) {
  if (done_) return 0;
  int i = 0;
  while (i < cap && decode_request(out[i])) ++i;
  return i;
}

void BactSource::rewind() {
  in_.clear();
  in_.seekg(first_request_);
  if (!in_)
    throw std::runtime_error("bact: rewind failed on " + path_);
  yielded_ = 0;
  done_ = false;
  buf_pos_ = buf_len_ = 0;
}

}  // namespace bac
