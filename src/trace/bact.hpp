// The .bact compact binary trace format, and its streaming reader/writer.
//
// Layout (all integers LEB128 varints, little-endian byte order):
//
//   magic      6 bytes        "BACT1\n"
//   n_pages    varint
//   k          varint
//   n_blocks   varint
//   costs      n_blocks x 8 bytes   IEEE-754 double bit patterns (LE)
//   page_map   n_pages  x varint    block id of each page
//   declared_T varint               request count, 0 when unknown upfront
//   requests   varint per request   page id + 1 (so 0 is free)
//   sentinel   varint 0             end-of-stream marker
//
// Requests are terminated by the sentinel rather than counted, so a
// BactWriter can stream a trace of unknown length (e.g. converting a CSV
// feed) with one pass and O(1) memory; declared_T is an optional hint the
// reader uses for reserve() sizing and cross-checks when present. A
// 10M-request trace replays through BactSource with peak memory
// proportional to the page universe, never the trace length.
#pragma once

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/request_source.hpp"

namespace bac {

/// Streaming writer: header at construction, then requests one at a time.
class BactWriter {
 public:
  /// `declared_T` = 0 when the request count is unknown upfront.
  BactWriter(std::ostream& os, const BlockMap& blocks, int k,
             long long declared_T = 0);

  void add(PageId p);
  /// Write the end-of-stream sentinel; further add() calls throw. Called
  /// by the destructor if not invoked explicitly (errors swallowed there —
  /// call finish() to observe them).
  void finish();
  ~BactWriter();

  BactWriter(const BactWriter&) = delete;
  BactWriter& operator=(const BactWriter&) = delete;

  [[nodiscard]] long long written() const noexcept { return written_; }

 private:
  std::ostream* os_;
  int n_pages_;
  long long declared_T_;
  long long written_ = 0;
  bool finished_ = false;
};

/// Serialize a whole instance (declared_T filled in).
void save_bact(const Instance& inst, std::ostream& os);
void save_bact(const Instance& inst, const std::string& path);

/// Materialize a .bact file into an Instance (small traces / tests).
Instance load_bact(const std::string& path);

/// Streaming source over a .bact file; O(1) request memory. The request
/// section is decoded from a private 64 KiB read buffer (istream::get
/// costs a sentry per byte; refilling via read() costs one per 64 KiB),
/// so next_batch() is a tight varint loop. rewind() seeks back to the
/// first request and drops the buffer.
class BactSource final : public RequestSource {
 public:
  explicit BactSource(const std::string& path);

  [[nodiscard]] const Instance& context() const override { return header_; }
  [[nodiscard]] long long horizon_hint() const override {
    return declared_T_ > 0 ? declared_T_ : -1;
  }
  bool next(PageId& p) override;
  int next_batch(PageId* out, int cap) override;
  void rewind() override;

 private:
  /// Next raw byte of the request section, or -1 at end of file.
  int read_byte();
  /// Decode one request varint; true into `p`, false at the sentinel.
  bool decode_request(PageId& p);

  std::string path_;
  std::ifstream in_;
  long long declared_T_ = 0;  ///< written by header_'s initializer; keep first
  Instance header_;           ///< blocks + k, empty requests
  std::streampos first_request_;
  long long yielded_ = 0;
  bool done_ = false;
  std::vector<char> buf_;     ///< read-ahead over the request section
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
};

}  // namespace bac
