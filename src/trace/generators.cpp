#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bac {

std::vector<PageId> uniform_trace(int n_pages, Time T, Xoshiro256pp rng) {
  if (n_pages <= 0) throw std::invalid_argument("uniform_trace: n_pages");
  std::vector<PageId> out(static_cast<std::size_t>(T));
  for (auto& p : out)
    p = static_cast<PageId>(rng.below(static_cast<std::uint64_t>(n_pages)));
  return out;
}

std::vector<PageId> zipf_trace(int n_pages, Time T, double alpha,
                               Xoshiro256pp rng) {
  if (n_pages <= 0) throw std::invalid_argument("zipf_trace: n_pages");
  // Inverse-CDF over the precomputed normalized cumulative weights.
  std::vector<double> cum(static_cast<std::size_t>(n_pages));
  double total = 0;
  for (int i = 0; i < n_pages; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cum[static_cast<std::size_t>(i)] = total;
  }
  std::vector<PageId> out(static_cast<std::size_t>(T));
  for (auto& p : out) {
    const double u = rng.uniform() * total;
    const auto it = std::lower_bound(cum.begin(), cum.end(), u);
    p = static_cast<PageId>(it - cum.begin());
    if (p >= n_pages) p = n_pages - 1;
  }
  return out;
}

std::vector<PageId> scan_trace(int n_pages, Time T) {
  std::vector<PageId> out(static_cast<std::size_t>(T));
  for (Time t = 0; t < T; ++t)
    out[static_cast<std::size_t>(t)] = static_cast<PageId>(t % n_pages);
  return out;
}

std::vector<PageId> phased_trace(int n_pages, Time T, Time phase_len,
                                 int ws_size, Xoshiro256pp rng) {
  // Regression guards: phase_len <= 0 used to hit t % phase_len (integer
  // division by zero, UB) and ws_size <= 0 indexed an empty working set.
  if (n_pages <= 0) throw std::invalid_argument("phased_trace: n_pages");
  if (phase_len <= 0)
    throw std::invalid_argument("phased_trace: phase_len must be positive");
  if (ws_size <= 0)
    throw std::invalid_argument("phased_trace: ws_size must be positive");
  if (ws_size > n_pages) ws_size = n_pages;
  std::vector<PageId> universe(static_cast<std::size_t>(n_pages));
  for (int i = 0; i < n_pages; ++i) universe[static_cast<std::size_t>(i)] = i;

  std::vector<PageId> out;
  out.reserve(static_cast<std::size_t>(T));
  std::vector<PageId> ws;
  for (Time t = 0; t < T; ++t) {
    if (t % phase_len == 0) {
      // Draw a fresh working set (partial Fisher-Yates).
      for (int i = 0; i < ws_size; ++i) {
        const auto j = static_cast<std::size_t>(
            rng.range(i, n_pages - 1));
        std::swap(universe[static_cast<std::size_t>(i)], universe[j]);
      }
      ws.assign(universe.begin(), universe.begin() + ws_size);
    }
    out.push_back(ws[static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(ws_size)))]);
  }
  return out;
}

std::vector<PageId> block_local_trace(const BlockMap& blocks, Time T,
                                      double stay, double alpha,
                                      Xoshiro256pp rng) {
  const int n_blocks = blocks.n_blocks();
  std::vector<double> cum(static_cast<std::size_t>(n_blocks));
  double total = 0;
  for (int i = 0; i < n_blocks; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cum[static_cast<std::size_t>(i)] = total;
  }
  auto draw_block = [&]() -> BlockId {
    const double u = rng.uniform() * total;
    const auto it = std::lower_bound(cum.begin(), cum.end(), u);
    return static_cast<BlockId>(std::min<std::ptrdiff_t>(
        it - cum.begin(), n_blocks - 1));
  };

  std::vector<PageId> out;
  out.reserve(static_cast<std::size_t>(T));
  BlockId current = draw_block();
  for (Time t = 0; t < T; ++t) {
    if (!rng.bernoulli(stay)) current = draw_block();
    const auto pages = blocks.pages_in(current);
    out.push_back(pages[static_cast<std::size_t>(
        rng.below(pages.size()))]);
  }
  return out;
}

std::vector<Cost> log_uniform_costs(int n_blocks, double aspect_ratio,
                                    Xoshiro256pp rng) {
  if (aspect_ratio < 1.0)
    throw std::invalid_argument("log_uniform_costs: aspect_ratio < 1");
  std::vector<Cost> out(static_cast<std::size_t>(n_blocks));
  const double log_delta = std::log(aspect_ratio);
  for (auto& c : out) c = std::exp(rng.uniform() * log_delta);
  return out;
}

Instance make_instance(int n_pages, int block_size, int k,
                       std::vector<PageId> requests) {
  Instance inst{BlockMap::contiguous(n_pages, block_size), std::move(requests),
                k};
  inst.validate();
  return inst;
}

Instance make_weighted_instance(int n_pages, int block_size, int k,
                                std::vector<PageId> requests,
                                std::vector<Cost> block_costs) {
  Instance inst{
      BlockMap::contiguous_weighted(n_pages, block_size, std::move(block_costs)),
      std::move(requests), k};
  inst.validate();
  return inst;
}

}  // namespace bac
