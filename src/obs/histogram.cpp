#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bac::obs {

namespace {
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
}  // namespace

int Histogram::bucket_of(double v) noexcept {
  if (!(v > 0.0)) return 0;  // zero, negatives (NaN is filtered in add_n)
  if (std::isinf(v)) return kBucketCount - 1;
  int exp = 0;
  const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  const int octave = exp - 1;            // v in [2^octave, 2^(octave+1))
  if (octave < kMinExp2) return 0;
  if (octave > kMaxExp2) return kBucketCount - 1;
  int sub = static_cast<int>((m - 0.5) * (2 * kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  return 1 + (octave - kMinExp2) * kSubBuckets + sub;
}

double Histogram::bucket_lower(int b) noexcept {
  if (b <= 0) return 0.0;
  if (b >= kBucketCount - 1) return std::ldexp(1.0, kMaxExp2 + 1);
  const int i = b - 1;
  const int octave = kMinExp2 + i / kSubBuckets;
  const int sub = i % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double Histogram::bucket_upper(int b) noexcept {
  if (b < 0) return 0.0;
  if (b >= kBucketCount - 1) return std::numeric_limits<double>::infinity();
  return bucket_lower(b + 1);
}

void Histogram::add_n(double v, std::uint64_t n) noexcept {
  if (n == 0 || std::isnan(v)) return;
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
  counts_[static_cast<std::size_t>(bucket_of(v))] += n;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += n;
  sum_ += v * static_cast<double>(n);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
  for (std::size_t b = 0; b < other.counts_.size(); ++b)
    counts_[b] += other.counts_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::min() const noexcept { return count_ ? min_ : kNaN; }

double Histogram::max() const noexcept { return count_ ? max_ : kNaN; }

double Histogram::mean() const noexcept {
  return count_ ? sum_ / static_cast<double>(count_) : kNaN;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return kNaN;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_));
  if (rank >= count_) rank = count_ - 1;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cum += counts_[b];
    if (cum > rank) {
      const int bi = static_cast<int>(b);
      const double lo = bucket_lower(bi);
      const double hi = bucket_upper(bi);
      const double mid = std::isinf(hi) ? lo : lo + (hi - lo) * 0.5;
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;  // unreachable when counts are consistent
}

std::uint64_t Histogram::bucket_count(int b) const noexcept {
  if (b < 0 || b >= static_cast<int>(counts_.size())) return 0;
  return counts_[static_cast<std::size_t>(b)];
}

bool Histogram::same_counts(const Histogram& other) const noexcept {
  if (count_ != other.count_) return false;
  for (int b = 0; b < kBucketCount; ++b)
    if (bucket_count(b) != other.bucket_count(b)) return false;
  return true;
}

}  // namespace bac::obs
