// MetricRegistry: named Counter / Gauge / Histogram slots with a
// deterministic (name-sorted) snapshot, plus JSON and Prometheus-style
// text exporters.
//
// Usage contract, tuned for the repo's determinism discipline:
//   - Counter / Gauge are relaxed atomics — safe to bump from any thread
//     with no lock; the handles returned by counter()/gauge() are stable
//     for the registry's lifetime, so hot paths resolve the name once.
//   - Histogram slots are folded into via merge_histogram(): workers
//     accumulate into a cheap *local* obs::Histogram (no lock, no atomics)
//     and merge it in at a phase boundary. Merges are associative and
//     commutative (histogram.hpp), so bucket counts in a snapshot are
//     independent of worker scheduling; only the float `sum` may wobble
//     in its last bits with merge order.
//   - snapshot() orders every section by name, so exporters emit
//     byte-stable output given identical counter values.
//
// Determinism contract (see DESIGN.md appendix): counters must count
// *events* (requests, misses, cells, files), never time. Wall-clock
// belongs in gauges (`*_ms` names) or latency histograms, which the CI
// invariance check deliberately ignores.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "util/thread_annotations.hpp"

namespace bac::obs {

/// Monotone event counter (relaxed atomic; cheap from any thread).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-writer-wins numeric gauge (relaxed atomic double).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time copy of a registry, every section name-sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram>> histograms;
};

class MetricRegistry {
 public:
  /// Find-or-create; the returned reference is stable until destruction.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Fold a locally accumulated histogram into the named slot (creating
  /// it empty on first use). Associative/commutative, so concurrent
  /// workers may merge in any completion order.
  void merge_histogram(const std::string& name, const Histogram& h);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable Mutex mutex_;
  // std::map: node-stable references and name-sorted iteration for free.
  std::map<std::string, Counter> counters_ GUARDED_BY(mutex_);
  std::map<std::string, Gauge> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, Histogram> histograms_ GUARDED_BY(mutex_);
};

/// Metrics JSON document (`bacobs-metrics-v1` schema): tool name, the
/// fixed bucket layout, then `counters` / `gauges` / `histograms`
/// objects. Histograms carry count/sum/min/max/mean, p50/p90/p99/p999,
/// and a sparse `buckets` array of [index, count] pairs. Empty-histogram
/// summaries serialize as null (NaN -> null, the repo-wide convention).
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap,
                        const std::string& tool);

/// Prometheus text exposition (for the future bacserve scrape endpoint):
/// counters/gauges as single samples, histograms as cumulative
/// `_bucket{le="..."}` series plus `_sum` / `_count`. Metric names get
/// `prefix` prepended.
void write_prometheus_text(std::ostream& os, const MetricsSnapshot& snap,
                           const std::string& prefix = "bac_");

/// Write a snapshot to `path`: Prometheus text when the extension is
/// `.prom`, the JSON document otherwise. Throws std::runtime_error when
/// the file cannot be opened.
void write_metrics_file(const std::string& path, const MetricsSnapshot& snap,
                        const std::string& tool);

}  // namespace bac::obs
