// Mergeable log-bucketed histogram (HDR-style) for the observability layer.
//
// The bucket layout is FIXED at compile time: one underflow bucket for
// values in [0, 2^kMinExp2) (and all non-positive values), kSubBuckets
// linearly spaced sub-buckets per power-of-two octave across
// [2^kMinExp2, 2^(kMaxExp2+1)), and one overflow bucket above that. With
// 16 sub-buckets per octave the relative resolution is <= 1/16 of the
// value. Because every histogram shares the same layout, merge() is a
// plain vector add of bucket counts — associative and commutative — so
// per-shard / per-thread histograms can be folded at snapshot time in any
// order and the bucket counts (and hence quantile estimates) come out
// identical. min/max/count merge exactly; sum is a float add, so its last
// bits may depend on merge order (never checksum it).
//
// NaN observations are ignored; +inf lands in the overflow bucket.
// Quantiles report the midpoint of the bucket containing the requested
// order statistic, clamped to the observed [min, max] — deterministic
// given identical samples, and within one bucket width of the exact
// sorted-sample answer. All summary accessors return NaN when empty,
// matching the StreamingStats::min/max convention.
#pragma once

#include <cstdint>
#include <vector>

namespace bac::obs {

class Histogram {
 public:
  static constexpr int kMinExp2 = -32;
  static constexpr int kMaxExp2 = 63;
  static constexpr int kSubBuckets = 16;
  static constexpr int kOctaves = kMaxExp2 - kMinExp2 + 1;
  /// underflow + kOctaves * kSubBuckets log-linear buckets + overflow.
  static constexpr int kBucketCount = 1 + kOctaves * kSubBuckets + 1;

  void add(double v) noexcept { add_n(v, 1); }
  /// Record `n` observations of value `v` (NaN is ignored).
  void add_n(double v, std::uint64_t n) noexcept;
  /// Fold `other` in: bucket-wise count add, exact min/max/count merge.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Sum of observations (float accumulation — merge-order sensitive).
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept;   ///< exact; NaN when empty
  [[nodiscard]] double max() const noexcept;   ///< exact; NaN when empty
  [[nodiscard]] double mean() const noexcept;  ///< NaN when empty
  /// Bucket-midpoint estimate of the q-quantile (order statistic at
  /// 0-based rank floor(q*count), clamped); NaN when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Count in bucket `b` (0 when never allocated or out of range).
  [[nodiscard]] std::uint64_t bucket_count(int b) const noexcept;
  /// Visit (bucket_index, count) for every non-empty bucket in index order.
  template <class Fn>
  void for_each_nonzero(Fn&& fn) const {
    for (int b = 0; b < static_cast<int>(counts_.size()); ++b)
      if (counts_[static_cast<std::size_t>(b)] != 0)
        fn(b, counts_[static_cast<std::size_t>(b)]);
  }

  /// Bucket index a value lands in (pure function of the fixed layout).
  [[nodiscard]] static int bucket_of(double v) noexcept;
  /// Inclusive lower bound of bucket `b` (0 for the underflow bucket).
  [[nodiscard]] static double bucket_lower(int b) noexcept;
  /// Exclusive upper bound of bucket `b` (+inf for the overflow bucket).
  [[nodiscard]] static double bucket_upper(int b) noexcept;

  /// True when the two histograms hold identical bucket counts (sum is
  /// deliberately excluded: it is merge-order sensitive).
  [[nodiscard]] bool same_counts(const Histogram& other) const noexcept;

 private:
  std::vector<std::uint64_t> counts_;  ///< lazily sized to kBucketCount
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;  ///< valid only when count_ > 0
  double max_ = 0.0;
};

}  // namespace bac::obs
