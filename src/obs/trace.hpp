// Structured JSONL tracing: a thread-safe TraceWriter plus RAII
// Span/PhaseTimer scopes, behind a near-zero-cost disabled path.
//
// Every call site holds an `obs::TraceWriter*` that is nullptr when
// tracing is off; the disabled path is a single pointer test (Span's
// constructor does not even copy its name). When enabled, each event is
// one JSON object per line:
//
//   {"ts_ms": <ms since writer creation>, "seq": <total order>,
//    "ev": "<type>", "name": "<who>", ...numeric/string fields...}
//
// Event types emitted by the wired layers: span_begin/span_end,
// phase_begin/phase_end (simulate runs), progress (mid-phase counters),
// cell_begin/cell_end (sweep cells), and free-form `event`. Spans attach
// their counters to the *end* event along with dur_ms.
//
// Determinism contract: ts_ms/dur_ms are steady-clock wall time — trace
// files are observability artifacts and are never checksummed or diffed
// byte-for-byte; everything that must be thread-count invariant lives in
// metrics counters instead (see metrics.hpp).
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace bac::obs {

/// One trace event, built up before emission. `num` keeps insertion
/// order; writers serialize fields exactly as added.
struct TraceEvent {
  std::string type;
  std::string name;
  std::vector<std::pair<std::string, double>> nums;
  std::vector<std::pair<std::string, std::string>> strs;

  TraceEvent& num(std::string_view key, double v) {
    nums.emplace_back(std::string(key), v);
    return *this;
  }
  TraceEvent& str(std::string_view key, std::string_view v) {
    strs.emplace_back(std::string(key), std::string(v));
    return *this;
  }
};

/// Appends JSONL events to a file; safe to share across threads (one
/// internal mutex serializes writes and the seq counter).
class TraceWriter {
 public:
  /// Throws std::runtime_error when `path` cannot be opened.
  explicit TraceWriter(const std::string& path);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Emit one event (ts_ms and seq are stamped here).
  void emit(const TraceEvent& e);
  /// Convenience for field-free events.
  void emit(std::string_view type, std::string_view name);

  /// Milliseconds since the writer was created (steady clock).
  [[nodiscard]] double elapsed_ms() const { return clock_.millis(); }
  void flush();

 private:
  Stopwatch clock_;
  mutable Mutex mutex_;
  std::ofstream os_ GUARDED_BY(mutex_);
  std::uint64_t seq_ GUARDED_BY(mutex_) = 0;
};

/// RAII scope: emits `<kind>_begin` at construction and `<kind>_end`
/// (with dur_ms plus any attached fields) at end()/destruction. With a
/// null writer every method is a pointer test and nothing else.
class Span {
 public:
  Span(TraceWriter* writer, std::string_view name)
      : Span(writer, name, "span") {}
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a counter/field to the end event (boundary counters).
  void num(std::string_view key, double v) {
    if (writer_) end_.num(key, v);
  }
  void str(std::string_view key, std::string_view v) {
    if (writer_) end_.str(key, v);
  }
  /// Emit the end event now (idempotent; the destructor is then a no-op).
  void end();

 protected:
  Span(TraceWriter* writer, std::string_view name, std::string_view kind);

 private:
  TraceWriter* writer_;
  double t0_ms_ = 0.0;
  TraceEvent end_;  ///< populated only when writer_ != nullptr
};

/// A Span that reads as a phase: phase_begin / phase_end event types.
class PhaseTimer : public Span {
 public:
  PhaseTimer(TraceWriter* writer, std::string_view name)
      : Span(writer, name, "phase") {}
};

}  // namespace bac::obs
