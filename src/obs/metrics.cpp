#include "obs/metrics.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/json.hpp"

namespace bac::obs {

Counter& MetricRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  return counters_[name];
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  return gauges_[name];
}

void MetricRegistry::merge_histogram(const std::string& name,
                                     const Histogram& h) {
  MutexLock lock(mutex_);
  histograms_[name].merge(h);
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c.value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g.value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) snap.histograms.emplace_back(name, h);
  return snap;
}

namespace {

void write_histogram_json(std::ostream& os, const Histogram& h) {
  os << "{\"count\": " << h.count() << ", \"sum\": ";
  write_json_number(os, h.sum());
  os << ", \"min\": ";
  write_json_number(os, h.min());
  os << ", \"max\": ";
  write_json_number(os, h.max());
  os << ", \"mean\": ";
  write_json_number(os, h.mean());
  for (const auto& [key, q] : {std::pair<const char*, double>{"p50", 0.50},
                               {"p90", 0.90},
                               {"p99", 0.99},
                               {"p999", 0.999}}) {
    os << ", \"" << key << "\": ";
    write_json_number(os, h.quantile(q));
  }
  os << ", \"buckets\": [";
  bool first = true;
  h.for_each_nonzero([&](int b, std::uint64_t n) {
    if (!first) os << ", ";
    first = false;
    os << "[" << b << ", " << n << "]";
  });
  os << "]}";
}

}  // namespace

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap,
                        const std::string& tool) {
  os.precision(17);
  os << "{\n  \"schema\": \"bacobs-metrics-v1\",\n  \"tool\": ";
  write_json_string(os, tool);
  os << ",\n  \"bucket_layout\": {\"min_exp2\": " << Histogram::kMinExp2
     << ", \"max_exp2\": " << Histogram::kMaxExp2
     << ", \"sub_buckets\": " << Histogram::kSubBuckets << "},\n";
  os << "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) os << ", ";
    os << "\n    ";
    write_json_string(os, snap.counters[i].first);
    os << ": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "},\n" : "\n  },\n");
  os << "  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) os << ", ";
    os << "\n    ";
    write_json_string(os, snap.gauges[i].first);
    os << ": ";
    write_json_number(os, snap.gauges[i].second);
  }
  os << (snap.gauges.empty() ? "},\n" : "\n  },\n");
  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i) os << ", ";
    os << "\n    ";
    write_json_string(os, snap.histograms[i].first);
    os << ": ";
    write_histogram_json(os, snap.histograms[i].second);
  }
  os << (snap.histograms.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
}

void write_prometheus_text(std::ostream& os, const MetricsSnapshot& snap,
                           const std::string& prefix) {
  os.precision(17);
  for (const auto& [name, v] : snap.counters) {
    os << "# TYPE " << prefix << name << " counter\n";
    os << prefix << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    os << "# TYPE " << prefix << name << " gauge\n";
    os << prefix << name << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    os << "# TYPE " << prefix << name << " histogram\n";
    std::uint64_t cum = 0;
    h.for_each_nonzero([&](int b, std::uint64_t n) {
      cum += n;
      // The overflow bucket's upper bound is +inf; the canonical le="+Inf"
      // series emitted below already covers it.
      if (b == Histogram::kBucketCount - 1) return;
      os << prefix << name << "_bucket{le=\"" << Histogram::bucket_upper(b)
         << "\"} " << cum << "\n";
    });
    os << prefix << name << "_bucket{le=\"+Inf\"} " << h.count() << "\n";
    os << prefix << name << "_sum " << (h.empty() ? 0.0 : h.sum()) << "\n";
    os << prefix << name << "_count " << h.count() << "\n";
  }
}

void write_metrics_file(const std::string& path, const MetricsSnapshot& snap,
                        const std::string& tool) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open metrics file: " + path);
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0)
    write_prometheus_text(os, snap);
  else
    write_metrics_json(os, snap, tool);
}

}  // namespace bac::obs
