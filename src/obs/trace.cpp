#include "obs/trace.hpp"

#include <stdexcept>

#include "util/json.hpp"

namespace bac::obs {

TraceWriter::TraceWriter(const std::string& path) : os_(path) {
  MutexLock lock(mutex_);
  if (!os_) throw std::runtime_error("cannot open trace file: " + path);
  os_.precision(17);
}

void TraceWriter::emit(const TraceEvent& e) {
  const double ts = clock_.millis();
  MutexLock lock(mutex_);
  os_ << "{\"ts_ms\": " << ts << ", \"seq\": " << seq_++ << ", \"ev\": ";
  write_json_string(os_, e.type);
  os_ << ", \"name\": ";
  write_json_string(os_, e.name);
  for (const auto& [key, v] : e.nums) {
    os_ << ", ";
    write_json_string(os_, key);
    os_ << ": ";
    write_json_number(os_, v);
  }
  for (const auto& [key, v] : e.strs) {
    os_ << ", ";
    write_json_string(os_, key);
    os_ << ": ";
    write_json_string(os_, v);
  }
  os_ << "}\n";
}

void TraceWriter::emit(std::string_view type, std::string_view name) {
  TraceEvent e;
  e.type = std::string(type);
  e.name = std::string(name);
  emit(e);
}

void TraceWriter::flush() {
  MutexLock lock(mutex_);
  os_.flush();
}

Span::Span(TraceWriter* writer, std::string_view name, std::string_view kind)
    : writer_(writer) {
  if (!writer_) return;
  t0_ms_ = writer_->elapsed_ms();
  TraceEvent begin;
  begin.type = std::string(kind) + "_begin";
  begin.name = std::string(name);
  writer_->emit(begin);
  end_.type = std::string(kind) + "_end";
  end_.name = begin.name;
}

void Span::end() {
  if (!writer_) return;
  TraceEvent e = std::move(end_);
  // dur_ms leads the field list so readers find it without scanning.
  e.nums.insert(e.nums.begin(), {"dur_ms", writer_->elapsed_ms() - t0_ms_});
  TraceWriter* w = writer_;
  writer_ = nullptr;
  w->emit(e);
}

}  // namespace bac::obs
