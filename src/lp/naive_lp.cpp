#include "lp/naive_lp.hpp"

#include <stdexcept>
#include <string>

namespace bac {

namespace {

/// Variable index bookkeeping: x_p^t exists for t = 1..T except when fixed
/// to zero (the requested page), x_p^0 is the constant 1.
struct VarIndex {
  explicit VarIndex(const Instance& inst)
      : n(inst.n_pages()),
        T(inst.horizon()),
        x_idx(static_cast<std::size_t>(T + 1) * static_cast<std::size_t>(n),
              kConstZero),
        phi_idx(static_cast<std::size_t>(T + 1) *
                    static_cast<std::size_t>(inst.blocks.n_blocks()),
                kConstZero) {}

  static constexpr int kConstZero = -1;
  static constexpr int kConstOne = -2;

  int n;
  Time T;
  std::vector<int> x_idx;
  std::vector<int> phi_idx;

  [[nodiscard]] std::size_t xpos(Time t, PageId p) const {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(n) +
           static_cast<std::size_t>(p);
  }
  [[nodiscard]] std::size_t phipos(Time t, BlockId b, int n_blocks) const {
    return static_cast<std::size_t>(t) * static_cast<std::size_t>(n_blocks) +
           static_cast<std::size_t>(b);
  }
};

}  // namespace

LpProblem build_naive_lp(const Instance& inst, CostModel model) {
  inst.validate();
  LpProblem lp;
  const int n = inst.n_pages();
  const int n_blocks = inst.blocks.n_blocks();
  const Time T = inst.horizon();
  VarIndex vars(inst);

  // x_p^0 = 1 for all p.
  for (PageId p = 0; p < n; ++p) vars.x_idx[vars.xpos(0, p)] = VarIndex::kConstOne;

  // Create x variables (objective 0), fixing the requested page to 0.
  for (Time t = 1; t <= T; ++t) {
    const PageId requested = inst.request_at(t);
    for (PageId p = 0; p < n; ++p) {
      if (p == requested) continue;  // fixed to 0
      vars.x_idx[vars.xpos(t, p)] =
          lp.add_var(0.0, "x_t" + std::to_string(t) + "_p" + std::to_string(p));
    }
  }
  // Create phi variables with cost coefficients.
  for (Time t = 1; t <= T; ++t)
    for (BlockId b = 0; b < n_blocks; ++b)
      vars.phi_idx[vars.phipos(t, b, n_blocks)] =
          lp.add_var(inst.blocks.cost(b),
                     "phi_t" + std::to_string(t) + "_b" + std::to_string(b));

  const double sigma = (model == CostModel::Eviction) ? 1.0 : -1.0;

  for (Time t = 1; t <= T; ++t) {
    // phi_B^t >= sigma * (x_p^t - x_p^{t-1})
    //   <=>  phi_B^t - sigma*x_p^t + sigma*x_p^{t-1} >= 0.
    for (BlockId b = 0; b < n_blocks; ++b) {
      const int phi = vars.phi_idx[vars.phipos(t, b, n_blocks)];
      for (PageId p : inst.blocks.pages_in(b)) {
        std::vector<std::pair<int, double>> terms;
        double rhs = 0;
        terms.emplace_back(phi, 1.0);
        const int xt = vars.x_idx[vars.xpos(t, p)];
        const int xprev = vars.x_idx[vars.xpos(t - 1, p)];
        if (xt >= 0) terms.emplace_back(xt, -sigma);
        // xt fixed to 0 contributes nothing.
        if (xprev >= 0) terms.emplace_back(xprev, sigma);
        else if (xprev == VarIndex::kConstOne) rhs -= sigma;  // move to rhs
        lp.add_constraint(std::move(terms), Relation::GreaterEq, rhs);
      }
    }

    // sum_p x_p^t >= n - k.
    {
      std::vector<std::pair<int, double>> terms;
      double rhs = static_cast<double>(n - inst.k);
      for (PageId p = 0; p < n; ++p) {
        const int xt = vars.x_idx[vars.xpos(t, p)];
        if (xt >= 0) terms.emplace_back(xt, 1.0);
        // requested page contributes 0
      }
      if (rhs > 0) lp.add_constraint(std::move(terms), Relation::GreaterEq, rhs);
    }

    // x <= 1.
    for (PageId p = 0; p < n; ++p) {
      const int xt = vars.x_idx[vars.xpos(t, p)];
      if (xt >= 0) lp.add_upper_bound(xt, 1.0);
    }
  }
  return lp;
}

NaiveLpResult solve_naive_lp(const Instance& inst, CostModel model,
                             const SimplexOptions& options) {
  const LpProblem lp = build_naive_lp(inst, model);
  const LpSolution sol = solve_simplex(lp, options);

  NaiveLpResult out;
  out.status = sol.status;
  out.objective = sol.objective;
  out.pivots = sol.pivots;
  if (sol.status != LpStatus::Optimal) return out;

  const int n = inst.n_pages();
  const int n_blocks = inst.blocks.n_blocks();
  const Time T = inst.horizon();
  out.x.assign(static_cast<std::size_t>(T + 1),
               std::vector<double>(static_cast<std::size_t>(n), 0.0));
  out.phi.assign(static_cast<std::size_t>(T + 1),
                 std::vector<double>(static_cast<std::size_t>(n_blocks), 0.0));
  for (PageId p = 0; p < n; ++p) out.x[0][static_cast<std::size_t>(p)] = 1.0;

  // Re-derive the variable layout to unpack (same construction order).
  int cursor = 0;
  for (Time t = 1; t <= T; ++t) {
    const PageId requested = inst.request_at(t);
    for (PageId p = 0; p < n; ++p) {
      if (p == requested) continue;
      out.x[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)] =
          sol.x[static_cast<std::size_t>(cursor++)];
    }
  }
  for (Time t = 1; t <= T; ++t)
    for (BlockId b = 0; b < n_blocks; ++b)
      out.phi[static_cast<std::size_t>(t)][static_cast<std::size_t>(b)] =
          sol.x[static_cast<std::size_t>(cursor++)];
  return out;
}

}  // namespace bac
