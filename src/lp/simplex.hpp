// Dense two-phase primal simplex.
//
// A small, self-contained LP solver sufficient for the instances this
// library solves exactly: the naive relaxation (A.1) on integrality-gap
// instances, LP lower bounds on OPT for small traces, and the fractional
// inputs of the Section 4.1 bicriteria rounding experiments. Minimization
// form; constraints may be <=, =, >=; variables are non-negative (impose
// upper bounds by adding rows — the builders do this).
//
// Pivoting: Dantzig's rule with a Bland fallback after a long degenerate
// stall, which guarantees termination. Dense tableau, O(m*n) per pivot —
// fine for the few-thousand-row models used here.
#pragma once

#include <string>
#include <vector>

namespace bac {

enum class Relation { LessEq, Equal, GreaterEq };

enum class LpStatus { Optimal, Infeasible, Unbounded, IterationLimit };

class LpProblem {
 public:
  /// Add a variable with objective coefficient `obj`; returns its index.
  int add_var(double obj, std::string name = "");

  /// Add constraint sum_j coeff_j * x_{idx_j} (rel) rhs.
  void add_constraint(std::vector<std::pair<int, double>> terms, Relation rel,
                      double rhs);

  /// Convenience: x_i <= ub as a row.
  void add_upper_bound(int var, double ub) {
    add_constraint({{var, 1.0}}, Relation::LessEq, ub);
  }

  [[nodiscard]] int n_vars() const noexcept {
    return static_cast<int>(obj_.size());
  }
  [[nodiscard]] int n_constraints() const noexcept {
    return static_cast<int>(rows_.size());
  }

  struct Row {
    std::vector<std::pair<int, double>> terms;
    Relation rel;
    double rhs;
  };

  [[nodiscard]] const std::vector<double>& objective() const noexcept {
    return obj_;
  }
  [[nodiscard]] const std::vector<Row>& rows() const noexcept { return rows_; }
  [[nodiscard]] const std::string& var_name(int i) const {
    return names_[static_cast<std::size_t>(i)];
  }

 private:
  std::vector<double> obj_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

struct LpSolution {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0;
  std::vector<double> x;
  long long pivots = 0;
};

struct SimplexOptions {
  long long max_pivots = 2'000'000;
  double tolerance = 1e-9;
};

LpSolution solve_simplex(const LpProblem& problem,
                         const SimplexOptions& options = {});

}  // namespace bac
