#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bac {

int LpProblem::add_var(double obj, std::string name) {
  obj_.push_back(obj);
  if (name.empty()) {
    // Spelled as insert() rather than "x" + to_string(): GCC 12's -O3
    // inliner flags the operator+ form with a bogus -Wrestrict (PR105329).
    name = std::to_string(obj_.size() - 1);
    name.insert(name.begin(), 'x');
  }
  names_.push_back(std::move(name));
  return static_cast<int>(obj_.size()) - 1;
}

void LpProblem::add_constraint(std::vector<std::pair<int, double>> terms,
                               Relation rel, double rhs) {
  for (const auto& [idx, coeff] : terms) {
    (void)coeff;
    if (idx < 0 || idx >= n_vars())
      throw std::invalid_argument("LpProblem: bad variable index");
  }
  rows_.push_back(Row{std::move(terms), rel, rhs});
}

namespace {

/// Dense tableau with explicit basis; standard textbook two-phase method.
class Tableau {
 public:
  Tableau(const LpProblem& problem, double tol) : tol_(tol) {
    const int m = problem.n_constraints();
    n_struct_ = problem.n_vars();

    // Count auxiliary columns.
    int n_slack = 0, n_art = 0;
    for (const auto& row : problem.rows()) {
      const bool flip = row.rhs < 0;
      Relation rel = row.rel;
      if (flip) {
        if (rel == Relation::LessEq) rel = Relation::GreaterEq;
        else if (rel == Relation::GreaterEq) rel = Relation::LessEq;
      }
      if (rel != Relation::Equal) ++n_slack;
      if (rel != Relation::LessEq) ++n_art;
    }
    n_total_ = n_struct_ + n_slack + n_art;
    art_begin_ = n_struct_ + n_slack;

    a_.assign(static_cast<std::size_t>(m) * (n_total_ + 1), 0.0);
    basis_.assign(static_cast<std::size_t>(m), -1);

    int slack_cursor = n_struct_;
    int art_cursor = art_begin_;
    for (int i = 0; i < m; ++i) {
      const auto& row = problem.rows()[static_cast<std::size_t>(i)];
      const bool flip = row.rhs < 0;
      const double sign = flip ? -1.0 : 1.0;
      Relation rel = row.rel;
      if (flip) {
        if (rel == Relation::LessEq) rel = Relation::GreaterEq;
        else if (rel == Relation::GreaterEq) rel = Relation::LessEq;
      }
      for (const auto& [idx, coeff] : row.terms) at(i, idx) += sign * coeff;
      rhs(i) = sign * row.rhs;

      if (rel == Relation::LessEq) {
        at(i, slack_cursor) = 1.0;
        basis_[static_cast<std::size_t>(i)] = slack_cursor++;
      } else if (rel == Relation::GreaterEq) {
        at(i, slack_cursor++) = -1.0;
        at(i, art_cursor) = 1.0;
        basis_[static_cast<std::size_t>(i)] = art_cursor++;
      } else {
        at(i, art_cursor) = 1.0;
        basis_[static_cast<std::size_t>(i)] = art_cursor++;
      }
    }
    m_ = m;
  }

  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] int n_total() const noexcept { return n_total_; }
  [[nodiscard]] int art_begin() const noexcept { return art_begin_; }
  [[nodiscard]] int n_struct() const noexcept { return n_struct_; }

  double& at(int i, int j) {
    return a_[static_cast<std::size_t>(i) * (n_total_ + 1) +
              static_cast<std::size_t>(j)];
  }
  [[nodiscard]] double at(int i, int j) const {
    return a_[static_cast<std::size_t>(i) * (n_total_ + 1) +
              static_cast<std::size_t>(j)];
  }
  double& rhs(int i) { return at(i, n_total_); }
  [[nodiscard]] double rhs(int i) const { return at(i, n_total_); }
  [[nodiscard]] int basis(int i) const {
    return basis_[static_cast<std::size_t>(i)];
  }

  /// Price out: reduced costs for objective `c` (size n_total, zeros ok).
  void compute_reduced(const std::vector<double>& c, std::vector<double>& red,
                       double& obj_val) const {
    // y = c_B B^{-1} is implicit: tableau rows are already B^{-1} A.
    red = c;
    obj_val = 0;
    for (int i = 0; i < m_; ++i) {
      const int bi = basis(i);
      const double cb = c[static_cast<std::size_t>(bi)];
      if (cb == 0.0) continue;
      obj_val += cb * rhs(i);
      for (int j = 0; j <= n_total_; ++j) {
        if (j == n_total_) continue;
        red[static_cast<std::size_t>(j)] -= cb * at(i, j);
      }
    }
  }

  void pivot(int row, int col) {
    const double piv = at(row, col);
    const double inv = 1.0 / piv;
    for (int j = 0; j <= n_total_; ++j) at(row, j) *= inv;
    at(row, col) = 1.0;
    for (int i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double factor = at(i, col);
      if (factor == 0.0) continue;
      for (int j = 0; j <= n_total_; ++j) at(i, j) -= factor * at(row, j);
      at(i, col) = 0.0;
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  /// Run simplex for objective c (minimize). `allowed(j)` filters entering
  /// columns. Returns status.
  LpStatus optimize(const std::vector<double>& c, long long& pivot_budget,
                    long long& pivots_used, bool forbid_artificials) {
    std::vector<double> red;
    long long stall = 0;
    double last_obj = std::numeric_limits<double>::infinity();

    while (pivot_budget > 0) {
      double obj_val = 0;
      compute_reduced(c, red, obj_val);

      // Entering column: Dantzig, Bland under stall.
      const bool use_bland = stall > 2 * (m_ + n_total_);
      int enter = -1;
      double best = -tol_;
      for (int j = 0; j < n_total_; ++j) {
        if (forbid_artificials && j >= art_begin_) continue;
        const double rc = red[static_cast<std::size_t>(j)];
        if (rc < -tol_) {
          if (use_bland) {
            enter = j;
            break;
          }
          if (rc < best) {
            best = rc;
            enter = j;
          }
        }
      }
      if (enter < 0) return LpStatus::Optimal;

      // Ratio test (Bland ties by smallest basis index).
      int leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        const double aij = at(i, enter);
        if (aij > tol_) {
          const double ratio = rhs(i) / aij;
          if (ratio < best_ratio - tol_ ||
              (ratio < best_ratio + tol_ &&
               (leave == -1 || basis(i) < basis(leave)))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave < 0) return LpStatus::Unbounded;

      pivot(leave, enter);
      --pivot_budget;
      ++pivots_used;
      if (obj_val >= last_obj - tol_) ++stall;
      else stall = 0;
      last_obj = obj_val;
    }
    return LpStatus::IterationLimit;
  }

  /// Try to pivot artificial variables out of the basis (after phase 1).
  void expel_artificials() {
    for (int i = 0; i < m_; ++i) {
      if (basis(i) < art_begin_) continue;
      int col = -1;
      for (int j = 0; j < art_begin_; ++j) {
        if (std::abs(at(i, j)) > tol_) {
          col = j;
          break;
        }
      }
      if (col >= 0) pivot(i, col);
      // Otherwise the row is redundant (all-zero over real columns); its
      // artificial stays basic at value 0, which is harmless since phase 2
      // forbids artificials from entering and the rhs is ~0.
    }
  }

 private:
  double tol_;
  int m_ = 0, n_struct_ = 0, n_total_ = 0, art_begin_ = 0;
  std::vector<double> a_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution solve_simplex(const LpProblem& problem,
                         const SimplexOptions& options) {
  LpSolution solution;
  Tableau tab(problem, options.tolerance);
  long long budget = options.max_pivots;

  // Phase 1: minimize the sum of artificial variables.
  const bool has_artificials = tab.art_begin() < tab.n_total();
  if (has_artificials) {
    std::vector<double> c1(static_cast<std::size_t>(tab.n_total()), 0.0);
    for (int j = tab.art_begin(); j < tab.n_total(); ++j)
      c1[static_cast<std::size_t>(j)] = 1.0;
    const LpStatus st = tab.optimize(c1, budget, solution.pivots, false);
    if (st == LpStatus::IterationLimit) {
      solution.status = st;
      return solution;
    }
    double art_sum = 0;
    for (int i = 0; i < tab.m(); ++i)
      if (tab.basis(i) >= tab.art_begin()) art_sum += tab.rhs(i);
    if (art_sum > 1e-6) {
      solution.status = LpStatus::Infeasible;
      return solution;
    }
    tab.expel_artificials();
  }

  // Phase 2: the real objective (zero on aux columns).
  std::vector<double> c2(static_cast<std::size_t>(tab.n_total()), 0.0);
  for (int j = 0; j < problem.n_vars(); ++j)
    c2[static_cast<std::size_t>(j)] =
        problem.objective()[static_cast<std::size_t>(j)];
  const LpStatus st = tab.optimize(c2, budget, solution.pivots, true);
  solution.status = st;
  if (st != LpStatus::Optimal) return solution;

  solution.x.assign(static_cast<std::size_t>(problem.n_vars()), 0.0);
  double obj = 0;
  for (int i = 0; i < tab.m(); ++i) {
    const int b = tab.basis(i);
    if (b < problem.n_vars())
      solution.x[static_cast<std::size_t>(b)] = tab.rhs(i);
  }
  for (int j = 0; j < problem.n_vars(); ++j)
    obj += problem.objective()[static_cast<std::size_t>(j)] *
           solution.x[static_cast<std::size_t>(j)];
  solution.objective = obj;
  return solution;
}

}  // namespace bac
