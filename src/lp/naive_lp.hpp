// Builder/solver for the paper's naive LP relaxation (Appendix A.1 / (A.1)).
//
// Variables: x_p^t = fraction of page p missing from cache at time t,
// phi_B^t = fractional extent block B is evicted (sigma = +1) or fetched
// (sigma = -1) at time t. The LP is a valid relaxation of block-aware
// caching in the corresponding cost model, so its value lower-bounds OPT —
// but it has an Omega(beta) integrality gap (Theorem A.1), which
// bench_integrality_gap reproduces with this exact code path.
//
// Conventions: t = 1..T; x_p^0 == 1 (the cache starts empty). The requested
// page's variable x_{p_t}^t is fixed to 0 at build time. phi upper bounds
// are omitted — they are slack at any optimum since x in [0,1].
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "lp/simplex.hpp"

namespace bac {

enum class CostModel { Eviction, Fetching };

struct NaiveLpResult {
  LpStatus status = LpStatus::IterationLimit;
  double objective = 0;
  long long pivots = 0;
  /// x[t][p] for t = 0..T (x[0][p] == 1).
  std::vector<std::vector<double>> x;
  /// phi[t][b] for t = 0..T (phi[0] unused, all zeros).
  std::vector<std::vector<double>> phi;
};

/// Build LP (A.1) for `model` on `inst`.
LpProblem build_naive_lp(const Instance& inst, CostModel model);

/// Build, solve and unpack. Instances should be small (the tableau is
/// dense): roughly T * n <= 20'000.
NaiveLpResult solve_naive_lp(const Instance& inst, CostModel model,
                             const SimplexOptions& options = {});

}  // namespace bac
