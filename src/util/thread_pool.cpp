#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

namespace bac {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  MutexLock lock(join_mutex_);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  n_workers_.store(threads, std::memory_order_release);
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  // Serializes concurrent shutdowns: the second caller blocks here until
  // the first has joined every worker, so the post-condition "no worker
  // is running" holds for all callers (it used to hold only for the one
  // that won the stop_ race).
  MutexLock join_lock(join_mutex_);
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  n_workers_.store(0, std::memory_order_release);
}

bool ThreadPool::stopped() const {
  MutexLock lock(mutex_);
  return stop_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Explicit wait loop (not the predicate overload): the condition
      // reads stop_/queue_, which the analysis can only check when the
      // read is lexically under the lock in this function.
      while (!stop_ && queue_.empty()) lock.wait(cv_);
      if (queue_.empty()) return;  // stop_ && empty
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  return true;
}

void ThreadPool::parallel_for_indexed(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // After shutdown size() is 0, so without this check the loop would run
  // entirely (and silently) on the calling thread; surface the misuse
  // with the same error submit() raises.
  if (stopped())
    throw std::runtime_error("ThreadPool: parallel_for_indexed after shutdown");
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  Mutex error_mutex;

  auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const std::size_t n_tasks = std::min(count, size());
  std::vector<std::future<void>> futs;
  futs.reserve(n_tasks);
  for (std::size_t t = 0; t < n_tasks; ++t) futs.push_back(submit(body));
  // Join the work from this thread, then drain queued tasks while waiting:
  // if every worker is itself blocked in a nested parallel_for_indexed,
  // progress still comes from the waiters running the queue.
  body();
  for (auto& f : futs) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!try_run_one())
        f.wait_for(std::chrono::milliseconds(1));
    }
    f.get();
  }
  if (first_error) std::rethrow_exception(first_error);
}

namespace {
std::atomic<std::size_t> g_global_pool_threads{0};
}  // namespace

ThreadPool& global_pool() {
  static ThreadPool pool(g_global_pool_threads.load());
  return pool;
}

void configure_global_pool(std::size_t threads) {
  g_global_pool_threads.store(threads);
}

}  // namespace bac
