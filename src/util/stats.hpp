// Streaming statistics (Welford) and small summary helpers used by the
// benchmark harness to aggregate Monte-Carlo trials.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace bac {

/// Single-pass mean/variance accumulator (numerically stable Welford).
class StreamingStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Smallest observation; NaN before the first add() (a default of 0.0
  /// would read as a real observation, e.g. a fake 0.0 minimum latency).
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Largest observation; NaN before the first add().
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  /// Half-width of an approximate 95% confidence interval for the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  void merge(const StreamingStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Online quantile estimator with O(1) memory: the P^2 algorithm of Jain
/// and Chlamtac (CACM 1985). Tracks one quantile with five markers; exact
/// until five observations have arrived, then a parabolic approximation.
/// The streaming simulator uses a handful of these to summarize per-step
/// cost distributions over traces too long to materialize.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x) noexcept;
  /// Current estimate (exact for < 5 observations; NaN before any, the
  /// StreamingStats::min/max convention — JSON emitters turn it null).
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  double q_;
  std::size_t count_ = 0;
  double heights_[5];   // marker heights
  double pos_[5];       // marker positions (1-based)
  double desired_[5];   // desired positions
  double inc_[5];       // desired-position increments
};

/// Quantile of a sample (linear interpolation); makes its own sorted copy.
[[nodiscard]] double quantile(std::vector<double> xs, double q);

/// Least-squares slope of y against x; used to check O(log k) style growth.
[[nodiscard]] double regression_slope(const std::vector<double>& x,
                                      const std::vector<double>& y);

/// Format `x` with `digits` significant fraction digits.
[[nodiscard]] std::string fmt_double(double x, int digits = 3);

}  // namespace bac
