// Deterministic, fast pseudo-random number generation for simulations.
//
// Two generators are provided:
//   - SplitMix64: used for seeding and cheap stateless streams.
//   - Xoshiro256pp: the workhorse generator (xoshiro256++ by Blackman and
//     Vigna), satisfying std::uniform_random_bit_generator so it composes
//     with <random> distributions.
//
// All simulation randomness in this library flows through these types so
// that every experiment is reproducible from a single root seed. Parallel
// sweeps derive independent streams via `substream`, which hashes
// (seed, index) through SplitMix64 — statistically independent streams
// without communication between workers.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace bac {

/// Stateless 64-bit mix used for seeding; Sebastiano Vigna's splitmix64.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Small state, excellent statistical quality,
/// and deterministic cross-platform behaviour (unlike std::mt19937 whose
/// distributions vary by standard library).
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) using the top 53 bits.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire rejection).
  /// Throws std::invalid_argument for bound == 0 (the interval is empty, so
  /// no return value would satisfy the contract).
  constexpr std::uint64_t below(std::uint64_t bound) {
    if (bound == 0)
      throw std::invalid_argument("Xoshiro256pp::below: bound must be > 0");
    if (bound == 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Throws std::invalid_argument
  /// when hi < lo (the unsigned width hi - lo + 1 would wrap to a huge
  /// bound and silently return garbage).
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    if (hi < lo)
      throw std::invalid_argument("Xoshiro256pp::range: hi < lo");
    // Width in unsigned arithmetic so extreme spans cannot overflow; the
    // full [INT64_MIN, INT64_MAX] span (width 2^64) needs no rejection.
    const std::uint64_t width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    const std::uint64_t offset =
        width == std::numeric_limits<std::uint64_t>::max() ? (*this)()
                                                           : below(width + 1);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + offset);
  }

  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent generator for parallel substream `index`.
  [[nodiscard]] constexpr Xoshiro256pp substream(std::uint64_t index) const noexcept {
    std::uint64_t sm = state_[0] ^ (0x9e3779b97f4a7c15ULL * (index + 1));
    return Xoshiro256pp(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int s) noexcept {
    return (x << s) | (x >> (64 - s));
  }
  std::uint64_t state_[4]{};
};

}  // namespace bac
