// Open-addressing flat hash table for the simulation hot paths.
//
// FlatMap<K, V> / FlatSet<K> are SwissTable-style tables: a contiguous
// control-byte array probed a group (8 bytes) at a time via SWAR bit
// tricks, with the key/value slots in a parallel flat array. Compared to
// std::unordered_map, a lookup touches one control group plus the matching
// slot instead of a bucket head plus a chain of heap nodes — the pointer
// chase that dominates CSV key interning and exact-OPT layer DP profiles.
//
// Layout and probing:
//   - ctrl_[i] is kEmpty (0x80), kDeleted (0xFE), or the low 7 bits of the
//     key's hash (h2, high bit clear). Capacity is a power of two >= 16,
//     so groups of 8 control bytes tile the table exactly.
//   - A probe starts at group h1(hash) mod n_groups and walks a triangular
//     sequence (g += 1, 2, 3, ...), which visits every group when the
//     group count is a power of two. Within a group, candidate slots are
//     found by matching h2 against all 8 control bytes at once:
//         match(g, b) = haszero(g ^ (b * 0x0101..)),
//         haszero(v)  = (v - 0x0101..) & ~v & 0x8080..
//     haszero is the exact per-byte zero test (the &~v term kills the
//     borrow-chain false positives of the cheaper variant), so matching is
//     precise: full bytes never alias kEmpty/kDeleted (high bit differs).
//   - A probe stops at the first group containing an empty byte: a key
//     displaced past that group could never have been inserted.
//
// Growth and deletion:
//   - Max load factor 7/8 over occupied (full + deleted) slots, so every
//     table keeps >= capacity/8 genuinely empty bytes and probes always
//     terminate. Erase writes a tombstone (kDeleted); inserts reuse the
//     first tombstone on their probe path, so erase/re-insert churn does
//     not consume the empty reserve.
//   - Rehash is tombstone-free: when occupancy hits the limit, entries are
//     re-placed into a fresh table (2x capacity if genuinely full, same
//     capacity if mostly tombstones) and tombstones are dropped.
//
// Allocation contract (the PR-5 reset-reuse discipline): reserve(n) sizes
// the table so n insertions rehash nothing; reset() clears in O(capacity)
// control-byte writes and keeps both arrays, so a table cycled through
// reset()/refill at steady-state size performs zero heap allocations.
//
// Heterogeneous lookup: with the default hasher, string-keyed tables
// accept std::string_view lookups and try_emplace constructs std::string
// only on actual insertion. hash()/prefetch()/find_hashed() split a probe
// so batched loops can software-pipeline: hash and prefetch key i+1's
// control group while key i's lookup resolves.
//
// Invalidation: rehash invalidates pointers and iterators. erase() and
// reset() never move slots, so pointers to *other* entries survive them.
// Iteration order is an implementation detail but deterministic: the same
// sequence of operations on the same keys yields the same order.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iterator>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace bac {

/// Default hasher: splitmix64-finished, so consecutive integer keys (page
/// ids, DP masks) spread over the whole 64-bit range — open addressing is
/// unforgiving of the identity hash std::hash uses for integers.
template <typename K, typename Enable = void>
struct FlatHash;

template <typename K>
struct FlatHash<K, std::enable_if_t<std::is_integral_v<K> || std::is_enum_v<K>>> {
  std::uint64_t operator()(K key) const noexcept {
    std::uint64_t state = static_cast<std::uint64_t>(key);
    return splitmix64(state);
  }
};

/// Transparent string hasher: FNV-1a over the bytes, splitmix64 finish.
/// Hashing through string_view means a map keyed by std::string can be
/// probed with an unowned view — no temporary std::string on lookups.
struct FlatStringHash {
  using is_transparent = void;
  std::uint64_t operator()(std::string_view s) const noexcept {
    std::uint64_t h = 14695981039346656037ULL;
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    return splitmix64(h);
  }
};

template <>
struct FlatHash<std::string> : FlatStringHash {};
template <>
struct FlatHash<std::string_view> : FlatStringHash {};

/// Open-addressing hash map. See the file comment for layout, growth, and
/// invalidation rules. Keys must be movable; lookups may use any type the
/// hasher and equality functor accept (string_view for string keys).
template <typename K, typename V, typename Hash = FlatHash<K>,
          typename Eq = std::equal_to<>>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  FlatMap() = default;

  /// Size so that `n` entries fit without rehashing (load factor 7/8).
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap - cap / 8 < n) cap *= 2;
    if (cap > capacity()) rehash_to(cap);
  }

  [[nodiscard]] std::size_t size() const noexcept { return full_; }
  [[nodiscard]] bool empty() const noexcept { return full_ == 0; }
  /// Slot count (power of two, or 0 before the first insertion).
  [[nodiscard]] std::size_t capacity() const noexcept { return ctrl_.size(); }

  /// Drop all entries but keep the arrays: O(capacity) control writes,
  /// zero allocation. Slot payloads are not destroyed until overwritten
  /// by a later insert (they are reused storage, exactly like the flat
  /// eviction indexes).
  void reset() noexcept {
    if (!ctrl_.empty()) std::memset(ctrl_.data(), kEmpty, ctrl_.size());
    full_ = 0;
    deleted_ = 0;
  }
  void clear() noexcept { reset(); }

  /// Hash a lookup key once; feed the result to prefetch()/find_hashed()
  /// to software-pipeline batched probes.
  template <typename Q>
  [[nodiscard]] std::uint64_t hash(const Q& key) const noexcept {
    return Hash{}(key);
  }

  /// Hint the CPU to pull the probe group for `h` into cache. Safe (and a
  /// no-op) on an empty table.
  void prefetch(std::uint64_t h) const noexcept {
    if (ctrl_.empty()) return;
    const std::size_t g = (h >> 7) & (ctrl_.size() / kGroup - 1);
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(ctrl_.data() + g * kGroup);
    __builtin_prefetch(slots_.data() + g * kGroup);
#endif
  }

  template <typename Q>
  [[nodiscard]] V* find(const Q& key) noexcept {
    return find_hashed(hash(key), key);
  }
  template <typename Q>
  [[nodiscard]] const V* find(const Q& key) const noexcept {
    return const_cast<FlatMap*>(this)->find_hashed(hash(key), key);
  }

  /// find() with the hash precomputed by hash() — the second half of a
  /// pipelined probe. Returns nullptr when absent.
  template <typename Q>
  [[nodiscard]] V* find_hashed(std::uint64_t h, const Q& key) noexcept {
    const std::size_t i = find_slot(h, key);
    return i == npos ? nullptr : &slots_[i].second;
  }
  template <typename Q>
  [[nodiscard]] const V* find_hashed(std::uint64_t h,
                                     const Q& key) const noexcept {
    const std::size_t i = find_slot(h, key);
    return i == npos ? nullptr : &slots_[i].second;
  }

  template <typename Q>
  [[nodiscard]] std::size_t count(const Q& key) const noexcept {
    return find(key) != nullptr ? 1 : 0;
  }
  template <typename Q>
  [[nodiscard]] bool contains(const Q& key) const noexcept {
    return find(key) != nullptr;
  }

  template <typename Q>
  [[nodiscard]] V& at(const Q& key) {
    V* v = find(key);
    if (v == nullptr) throw std::out_of_range("FlatMap::at: key not found");
    return *v;
  }
  template <typename Q>
  [[nodiscard]] const V& at(const Q& key) const {
    const V* v = find(key);
    if (v == nullptr) throw std::out_of_range("FlatMap::at: key not found");
    return *v;
  }

  /// Insert (key, V(args...)) if absent; one probe either way. Returns
  /// {slot value pointer, inserted}. The key is only converted to K (e.g.
  /// string_view -> std::string) when an insertion actually happens.
  template <typename Q, typename... Args>
  std::pair<V*, bool> try_emplace(Q&& key, Args&&... args) {
    const std::uint64_t h = hash(key);
    return try_emplace_hashed(h, std::forward<Q>(key),
                              std::forward<Args>(args)...);
  }

  /// try_emplace() with the hash precomputed by hash().
  template <typename Q, typename... Args>
  std::pair<V*, bool> try_emplace_hashed(std::uint64_t h, Q&& key,
                                         Args&&... args) {
    if (ctrl_.empty()) rehash_to(kMinCapacity);
    Probe p = probe_for_insert(h, key);
    if (p.found) return {&slots_[p.index].second, false};
    if (ctrl_[p.index] == kEmpty && growth_left() == 0) {
      rehash_to(full_ >= capacity() / 2 ? capacity() * 2 : capacity());
      p = probe_for_insert(h, key);
    }
    if (ctrl_[p.index] == kDeleted) --deleted_;
    ctrl_[p.index] = h2(h);
    slots_[p.index].first = K(std::forward<Q>(key));
    slots_[p.index].second = V(std::forward<Args>(args)...);
    ++full_;
    return {&slots_[p.index].second, true};
  }

  template <typename Q>
  V& operator[](Q&& key) {
    return *try_emplace(std::forward<Q>(key)).first;
  }

  template <typename Q, typename U>
  std::pair<V*, bool> insert_or_assign(Q&& key, U&& value) {
    auto r = try_emplace(std::forward<Q>(key), std::forward<U>(value));
    if (!r.second) *r.first = std::forward<U>(value);
    return r;
  }

  /// Tombstone the entry; no slot moves, so pointers to other entries
  /// stay valid. Returns whether the key was present.
  template <typename Q>
  bool erase(const Q& key) noexcept {
    const std::size_t i = find_slot(hash(key), key);
    if (i == npos) return false;
    ctrl_[i] = kDeleted;
    --full_;
    ++deleted_;
    return true;
  }

  void swap(FlatMap& other) noexcept {
    ctrl_.swap(other.ctrl_);
    slots_.swap(other.slots_);
    std::swap(full_, other.full_);
    std::swap(deleted_, other.deleted_);
  }

  template <bool Const>
  class Iter {
   public:
    using table_type = std::conditional_t<Const, const FlatMap, FlatMap>;
    using iterator_category = std::forward_iterator_tag;
    using value_type = FlatMap::value_type;
    using difference_type = std::ptrdiff_t;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    Iter(table_type* t, std::size_t i) : t_(t), i_(i) { skip(); }
    reference operator*() const { return t_->slots_[i_]; }
    auto* operator->() const { return &t_->slots_[i_]; }
    Iter& operator++() {
      ++i_;
      skip();
      return *this;
    }
    bool operator==(const Iter& o) const { return i_ == o.i_; }
    bool operator!=(const Iter& o) const { return i_ != o.i_; }

   private:
    void skip() {
      while (i_ < t_->ctrl_.size() && (t_->ctrl_[i_] & 0x80u) != 0) ++i_;
    }
    table_type* t_;
    std::size_t i_;
  };
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() noexcept { return {this, 0}; }
  iterator end() noexcept { return {this, ctrl_.size()}; }
  const_iterator begin() const noexcept { return {this, 0}; }
  const_iterator end() const noexcept { return {this, ctrl_.size()}; }

 private:
  static constexpr std::size_t kGroup = 8;
  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::uint8_t kEmpty = 0x80;
  static constexpr std::uint8_t kDeleted = 0xFE;
  static constexpr std::uint64_t kLsb = 0x0101010101010101ULL;
  static constexpr std::uint64_t kMsb = 0x8080808080808080ULL;

  static std::uint8_t h2(std::uint64_t h) noexcept {
    return static_cast<std::uint8_t>(h & 0x7F);
  }

  [[nodiscard]] std::uint64_t load_group(std::size_t g) const noexcept {
    std::uint64_t word;
    std::memcpy(&word, ctrl_.data() + g * kGroup, sizeof(word));
    return word;
  }

  /// Bitmask with 0x80 set in every byte of `group` equal to `b`
  /// (exact: the &~x term suppresses borrow-chain false positives).
  static std::uint64_t match_byte(std::uint64_t group,
                                  std::uint8_t b) noexcept {
    const std::uint64_t x = group ^ (kLsb * b);
    return (x - kLsb) & ~x & kMsb;
  }

  /// Byte index (little-endian byte order) of a match bit.
  static std::size_t match_index(std::uint64_t mask) noexcept {
    return static_cast<std::size_t>(std::countr_zero(mask)) / 8;
  }

  [[nodiscard]] std::size_t growth_left() const noexcept {
    return capacity() - capacity() / 8 - full_ - deleted_;
  }

  /// Index of the live slot holding `key`, or npos.
  template <typename Q>
  [[nodiscard]] std::size_t find_slot(std::uint64_t h,
                                      const Q& key) const noexcept {
    if (ctrl_.empty()) return npos;
    const std::size_t gmask = ctrl_.size() / kGroup - 1;
    const std::uint8_t h2v = h2(h);
    std::size_t g = (h >> 7) & gmask;
    for (std::size_t step = 0;;) {
      const std::uint64_t group = load_group(g);
      for (std::uint64_t m = match_byte(group, h2v); m != 0; m &= m - 1) {
        const std::size_t i = g * kGroup + match_index(m);
        if (Eq{}(slots_[i].first, key)) return i;
      }
      if (match_byte(group, kEmpty) != 0) return npos;
      g = (g + ++step) & gmask;
    }
  }

  /// Index of an existing entry (found == true) or, in one probe, the
  /// slot a new entry should occupy (the first tombstone on the probe
  /// path, else the first empty byte of the terminating group).
  struct Probe {
    std::size_t index;
    bool found;
  };
  template <typename Q>
  [[nodiscard]] Probe probe_for_insert(std::uint64_t h,
                                       const Q& key) const noexcept {
    const std::size_t gmask = ctrl_.size() / kGroup - 1;
    const std::uint8_t h2v = h2(h);
    std::size_t g = (h >> 7) & gmask;
    std::size_t first_deleted = npos;
    for (std::size_t step = 0;;) {
      const std::uint64_t group = load_group(g);
      for (std::uint64_t m = match_byte(group, h2v); m != 0; m &= m - 1) {
        const std::size_t i = g * kGroup + match_index(m);
        if (Eq{}(slots_[i].first, key)) return {i, true};
      }
      if (first_deleted == npos) {
        const std::uint64_t del = match_byte(group, kDeleted);
        if (del != 0) first_deleted = g * kGroup + match_index(del);
      }
      const std::uint64_t empty = match_byte(group, kEmpty);
      if (empty != 0) {
        return {first_deleted != npos ? first_deleted
                                      : g * kGroup + match_index(empty),
                false};
      }
      g = (g + ++step) & gmask;
    }
  }

  /// Re-place every live entry into a table of `new_cap` slots, dropping
  /// tombstones. new_cap == capacity() purges tombstones in place-ish
  /// (fresh arrays, then swap) after erase-heavy churn.
  void rehash_to(std::size_t new_cap) {
    std::vector<std::uint8_t> old_ctrl(new_cap, kEmpty);
    std::vector<value_type> old_slots(new_cap);
    old_ctrl.swap(ctrl_);
    old_slots.swap(slots_);
    const std::size_t gmask = ctrl_.size() / kGroup - 1;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if ((old_ctrl[i] & 0x80u) != 0) continue;
      const std::uint64_t h = hash(old_slots[i].first);
      const std::uint8_t h2v = h2(h);
      std::size_t g = (h >> 7) & gmask;
      for (std::size_t step = 0;;) {
        const std::uint64_t empty = match_byte(load_group(g), kEmpty);
        if (empty != 0) {
          const std::size_t j = g * kGroup + match_index(empty);
          ctrl_[j] = h2v;
          slots_[j] = std::move(old_slots[i]);
          break;
        }
        g = (g + ++step) & gmask;
      }
    }
    deleted_ = 0;
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<value_type> slots_;
  std::size_t full_ = 0;
  std::size_t deleted_ = 0;
};

/// Open-addressing hash set: FlatMap's probing with key-only slots. The
/// iterator yields const keys (mutating a live key would corrupt probing).
template <typename K, typename Hash = FlatHash<K>, typename Eq = std::equal_to<>>
class FlatSet {
 private:
  struct Empty {};

 public:
  void reserve(std::size_t n) { map_.reserve(n); }
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return map_.capacity();
  }
  void reset() noexcept { map_.reset(); }
  void clear() noexcept { map_.reset(); }

  template <typename Q>
  [[nodiscard]] bool contains(const Q& key) const noexcept {
    return map_.contains(key);
  }
  template <typename Q>
  [[nodiscard]] std::size_t count(const Q& key) const noexcept {
    return map_.count(key);
  }
  /// Returns whether the key was newly inserted.
  template <typename Q>
  bool insert(Q&& key) {
    return map_.try_emplace(std::forward<Q>(key)).second;
  }
  template <typename Q>
  bool erase(const Q& key) noexcept {
    return map_.erase(key);
  }
  void swap(FlatSet& other) noexcept { map_.swap(other.map_); }

  class const_iterator {
   public:
    using inner = typename FlatMap<K, Empty, Hash, Eq>::const_iterator;
    explicit const_iterator(inner it) : it_(it) {}
    const K& operator*() const { return it_->first; }
    const K* operator->() const { return &it_->first; }
    const_iterator& operator++() {
      ++it_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return it_ == o.it_; }
    bool operator!=(const const_iterator& o) const { return it_ != o.it_; }

   private:
    inner it_;
  };
  const_iterator begin() const noexcept { return const_iterator{map_.begin()}; }
  const_iterator end() const noexcept { return const_iterator{map_.end()}; }

 private:
  FlatMap<K, Empty, Hash, Eq> map_;
};

}  // namespace bac
