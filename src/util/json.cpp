#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace bac {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_number(std::ostream& os, double x) {
  if (std::isfinite(x)) os << x;
  else os << "null";
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::Number ? v->number : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::String ? v->str
                                                 : std::move(fallback);
}

namespace {

/// Recursive-descent parser over the whole document string. Errors carry
/// the byte offset so a malformed baseline file names where it broke.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.kind = JsonValue::Kind::String;
        v.str = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::Bool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind = JsonValue::Kind::Null;
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::string key = parse_string_at();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string_at() {
    if (peek() != '"') fail("expected string");
    return parse_string();
  }

  std::string parse_string() {
    // pos_ sits on the opening quote.
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Our emitters only escape control chars; decode the BMP point
          // as UTF-8 so round-trips stay lossless.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    skip_ws();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double x = std::strtod(start, &end);
    if (end == start) fail("expected a value");
    if (!std::isfinite(x)) fail("non-finite number");
    pos_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = x;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

JsonValue load_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw std::runtime_error("json: read error on " + path);
  return parse_json(buf.str());
}

}  // namespace bac
