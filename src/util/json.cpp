#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace bac {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_number(std::ostream& os, double x) {
  if (std::isfinite(x)) os << x;
  else os << "null";
}

}  // namespace bac
