// Aligned ASCII tables + CSV output for the benchmark harness.
//
// Benchmarks regenerate paper-style result tables; this tiny reporting layer
// prints them aligned on stdout and can mirror them to CSV files so results
// can be post-processed (e.g. plotted) without re-running.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace bac {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Begin a new row; values are appended with `add`.
  Table& row();
  Table& add(std::string value);
  Table& add(double value, int digits = 3);
  Table& add(long long value);
  Table& add(int value) { return add(static_cast<long long>(value)); }
  Table& add(std::size_t value) { return add(static_cast<long long>(value)); }

  /// Convenience: add a full row at once.
  Table& add_row(std::initializer_list<std::string> values);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Print with aligned columns, a header rule, and an optional title.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Write RFC-4180-ish CSV (quotes only when necessary).
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bac
