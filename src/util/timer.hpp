// Minimal steady-clock stopwatch: the ONE sanctioned way to read a
// monotonic clock in src/ (the baclint `raw-chrono-timing` rule forbids
// direct std::chrono::*_clock::now() calls everywhere else, so timing
// stays greppable and mockable at a single call site). Used for coarse
// phase timing in benches and for the obs layer's spans and per-request
// latency samples.
#pragma once

#include <chrono>

namespace bac {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace bac
