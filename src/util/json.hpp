// Minimal JSON emission helpers shared by the bench harness and the
// bacsim sweep driver, so every tool writes byte-compatible records.
#pragma once

#include <iosfwd>
#include <string>

namespace bac {

/// Emit `s` as a JSON string literal (quotes, escapes, control chars).
void write_json_string(std::ostream& os, const std::string& s);

/// Emit a double; values JSON cannot represent (inf/nan) become null.
void write_json_number(std::ostream& os, double x);

}  // namespace bac
