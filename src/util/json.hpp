// Minimal JSON emission helpers shared by the bench harness and the
// bacsim sweep driver, so every tool writes byte-compatible records —
// plus a small read-side parser so tools can load the records back
// (e.g. `bench_perf --compare` against a committed baseline).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace bac {

/// Emit `s` as a JSON string literal (quotes, escapes, control chars).
void write_json_string(std::ostream& os, const std::string& s);

/// Emit a double; values JSON cannot represent (inf/nan) become null.
void write_json_number(std::ostream& os, double x);

/// One parsed JSON value. Numbers are doubles (the emitters above write
/// nothing wider); object members keep file order.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            ///< Kind::Array
  std::vector<std::pair<std::string, JsonValue>> members;  ///< Kind::Object

  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// find() + number extraction; `fallback` when absent or non-numeric.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  /// find() + string extraction; `fallback` when absent or non-string.
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;
};

/// Parse a complete JSON document; throws std::runtime_error (with the
/// byte offset) on malformed input or trailing garbage.
JsonValue parse_json(const std::string& text);

/// Read and parse a JSON file; throws std::runtime_error on I/O errors.
JsonValue load_json_file(const std::string& path);

}  // namespace bac
