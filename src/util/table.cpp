#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/stats.hpp"

namespace bac {

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::add(double value, int digits) {
  return add(fmt_double(value, digits));
}

Table& Table::add(long long value) { return add(std::to_string(value)); }

Table& Table::add_row(std::initializer_list<std::string> values) {
  rows_.emplace_back(values);
  return *this;
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << "  " << v;
      for (std::size_t pad = v.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  ";
  for (std::size_t i = 2; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& r : rows_) print_row(r);
  os.flush();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Table::write_csv: cannot open " + path);
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(cells[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace bac
