// Clang Thread Safety Analysis annotations and an annotated mutex wrapper.
//
// The sharded data-plane's correctness contract (bit-identical cost at
// every thread count, see src/server/) rests on lock discipline that the
// TSan preset can only probe on executed interleavings. These macros let
// Clang prove the discipline at compile time: every mutex-guarded member
// is declared GUARDED_BY its mutex, and the `clang-tsa` CMake preset
// builds the whole tree with -Werror=thread-safety, so an unlocked access
// is a build break — before any test or fuzz seed runs.
//
// Conventions (see DESIGN.md "Static analysis"):
//   - All mutexes in src/ are bac::Mutex, never raw std::mutex (enforced
//     by the baclint `raw-mutex` rule); locking is via the RAII MutexLock.
//   - Data members touched under a lock carry GUARDED_BY(mutex_).
//   - Private member functions that assume the lock is held carry
//     REQUIRES(mutex_) instead of re-locking.
//
// On non-Clang compilers (GCC in the default presets) every macro
// expands to nothing and Mutex/MutexLock compile down to plain
// std::mutex / std::unique_lock — zero overhead either way.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define BAC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BAC_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define CAPABILITY(x) BAC_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY BAC_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) BAC_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) BAC_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) BAC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) BAC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  BAC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  BAC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) BAC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  BAC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) BAC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  BAC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  BAC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) BAC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define RETURN_CAPABILITY(x) BAC_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  BAC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bac {

/// std::mutex with the `mutex` capability, so members can be declared
/// GUARDED_BY it and Clang verifies every access happens under a lock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { m_.lock(); }
  void unlock() RELEASE() { m_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// RAII lock over a Mutex, visible to the analysis as a scoped
/// capability. Wraps std::unique_lock so condition variables can wait on
/// it: wait() atomically releases and reacquires, and the capability is
/// held on both sides of the call — exactly how the analysis models it.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ACQUIRE(m) : lock_(m.m_) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Block on `cv` until notified. Guarded members may be read in the
  /// wait loop's condition — the lock is held whenever control is in the
  /// caller. (Predicate overloads are deliberately absent: a predicate
  /// lambda is analyzed as a separate function that cannot see the
  /// caller's capability, so wait in an explicit `while (!cond)` loop.)
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace bac
