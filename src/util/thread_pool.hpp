// Fixed-size thread pool with a deterministic parallel_for_indexed helper.
//
// Benchmarks run parameter sweeps and Monte-Carlo trials in parallel. Each
// task receives its index so callers can derive an independent RNG
// substream per index — results are bit-identical regardless of the number
// of worker threads or scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

namespace bac {

class ThreadPool {
 public:
  /// `threads == 0` means hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Stop accepting work, drain already-queued tasks, and join the
  /// workers. Idempotent; the destructor calls it. After shutdown,
  /// submit() and parallel_for_indexed() throw instead of enqueueing
  /// tasks no worker will ever run (whose futures would block forever).
  void shutdown();

  /// True once shutdown() has begun (no further submissions accepted).
  [[nodiscard]] bool stopped() const;

  /// Enqueue a task; the future resolves with its result (or exception).
  /// Throws std::runtime_error after shutdown().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stop_)
        throw std::runtime_error(
            "ThreadPool: submit after shutdown (the task would never run "
            "and its future would block forever)");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, count) across the pool; rethrows the first
  /// task exception after all tasks finish. The calling thread joins the
  /// work and drains queued tasks while it waits, so nesting (a pool task
  /// that itself calls parallel_for_indexed — e.g. a sweep cell running a
  /// parallel Monte-Carlo) cannot deadlock the pool. Throws
  /// std::runtime_error after shutdown() (it will not silently fall back
  /// to serial execution on a dead pool).
  void parallel_for_indexed(std::size_t count,
                            const std::function<void(std::size_t)>& fn);

  /// Run one queued task on the calling thread if any is pending.
  bool try_run_one();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide pool for benchmark sweeps.
ThreadPool& global_pool();

/// Set the size the global pool is built with (0 = hardware concurrency).
/// Must be called before the first global_pool() use; later calls have no
/// effect because the pool is already running.
void configure_global_pool(std::size_t threads);

}  // namespace bac
