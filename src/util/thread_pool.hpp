// Fixed-size thread pool with a deterministic parallel_for_indexed helper.
//
// Benchmarks run parameter sweeps and Monte-Carlo trials in parallel. Each
// task receives its index so callers can derive an independent RNG
// substream per index — results are bit-identical regardless of the number
// of worker threads or scheduling order.
//
// Lock discipline (machine-checked by the clang-tsa preset):
//   - mutex_ guards the task queue and the stop flag; workers and
//     submitters take it for O(1) critical sections only.
//   - join_mutex_ guards the worker vector and serializes shutdown():
//     concurrent callers all block until the workers are actually joined,
//     so "shutdown returned" always means "no worker is running".
//   - join_mutex_ is acquired before mutex_ (only shutdown holds both);
//     no code path holding mutex_ ever takes join_mutex_.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace bac {

class ThreadPool {
 public:
  /// `threads == 0` means hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count: the construction size until shutdown() completes, 0
  /// afterwards. Lock-free (an atomic published by shutdown), so it is
  /// safe to call from pool tasks while another thread shuts down.
  [[nodiscard]] std::size_t size() const noexcept {
    return n_workers_.load(std::memory_order_acquire);
  }

  /// Stop accepting work, drain already-queued tasks, and join the
  /// workers. Idempotent; the destructor calls it. Concurrent callers
  /// serialize on the join: every call returns only once the workers are
  /// joined (a second caller used to return while the first was still
  /// joining, letting it destroy the pool under a live join). After
  /// shutdown, submit() and parallel_for_indexed() throw instead of
  /// enqueueing tasks no worker will ever run (whose futures would block
  /// forever).
  void shutdown();

  /// True once shutdown() has begun (no further submissions accepted).
  [[nodiscard]] bool stopped() const;

  /// Enqueue a task; the future resolves with its result (or exception).
  /// Throws std::runtime_error after shutdown().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stop_)
        throw std::runtime_error(
            "ThreadPool: submit after shutdown (the task would never run "
            "and its future would block forever)");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, count) across the pool; rethrows the first
  /// task exception after all tasks finish. The calling thread joins the
  /// work and drains queued tasks while it waits, so nesting (a pool task
  /// that itself calls parallel_for_indexed — e.g. a sweep cell running a
  /// parallel Monte-Carlo) cannot deadlock the pool. Throws
  /// std::runtime_error after shutdown() (it will not silently fall back
  /// to serial execution on a dead pool).
  void parallel_for_indexed(std::size_t count,
                            const std::function<void(std::size_t)>& fn);

  /// Run one queued task on the calling thread if any is pending.
  bool try_run_one();

 private:
  void worker_loop();

  mutable Mutex join_mutex_ ACQUIRED_BEFORE(mutex_);
  std::vector<std::thread> workers_ GUARDED_BY(join_mutex_);
  std::atomic<std::size_t> n_workers_{0};  ///< mirrors workers_.size()
  mutable Mutex mutex_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  std::condition_variable cv_;
};

/// Process-wide pool for benchmark sweeps.
ThreadPool& global_pool();

/// Set the size the global pool is built with (0 = hardware concurrency).
/// Must be called before the first global_pool() use; later calls have no
/// effect because the pool is already running.
void configure_global_pool(std::size_t threads);

}  // namespace bac
