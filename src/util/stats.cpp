#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace bac {

void StreamingStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

double StreamingStats::ci95_halfwidth() const noexcept {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double regression_slope(const std::vector<double>& x,
                        const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den == 0.0 ? 0.0 : num / den;
}

std::string fmt_double(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
  return buf;
}

}  // namespace bac
