#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace bac {

void StreamingStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

double StreamingStats::ci95_halfwidth() const noexcept {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  // Both empty-side guards matter for min/max: an empty accumulator's
  // min_/max_ fields are unset (the accessors report NaN), so they must
  // never participate in the std::min/std::max below.
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {
  for (int i = 0; i < 5; ++i) {
    heights_[i] = 0.0;
    pos_[i] = static_cast<double>(i + 1);
  }
  desired_[0] = 1.0;
  desired_[1] = 1.0 + 2.0 * q_;
  desired_[2] = 1.0 + 4.0 * q_;
  desired_[3] = 3.0 + 2.0 * q_;
  desired_[4] = 5.0;
  inc_[0] = 0.0;
  inc_[1] = q_ / 2.0;
  inc_[2] = q_;
  inc_[3] = (1.0 + q_) / 2.0;
  inc_[4] = 1.0;
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  // Find the cell containing x and clamp the extreme markers.
  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) ++cell;
  }
  for (int i = cell + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += inc_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    const double below = pos_[i] - pos_[i - 1];
    const double above = pos_[i + 1] - pos_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P^2) height prediction.
      const double np = pos_[i] + s;
      double h = heights_[i] +
                 s / (pos_[i + 1] - pos_[i - 1]) *
                     ((below + s) * (heights_[i + 1] - heights_[i]) / above +
                      (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (h <= heights_[i - 1] || h >= heights_[i + 1]) {
        // Parabola left the bracket; fall back to linear.
        h = heights_[i] + s * (heights_[i + (s > 0 ? 1 : -1)] - heights_[i]) /
                              (pos_[i + (s > 0 ? 1 : -1)] - pos_[i]);
      }
      heights_[i] = h;
      pos_[i] = np;
    }
  }
}

double P2Quantile::value() const noexcept {
  // NaN before any observation, matching StreamingStats::min/max — a 0.0
  // would read as a real estimate (e.g. a fake 0-latency p99).
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (count_ < 5) {
    double tmp[5];
    std::copy(heights_, heights_ + count_, tmp);
    std::sort(tmp, tmp + count_);
    const double pos = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = pos - static_cast<double>(lo);
    return tmp[lo] * (1.0 - frac) + tmp[hi] * frac;
  }
  return heights_[2];
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double regression_slope(const std::vector<double>& x,
                        const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den == 0.0 ? 0.0 : num / den;
}

std::string fmt_double(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
  return buf;
}

}  // namespace bac
