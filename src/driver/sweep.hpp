// Policy x workload x k sweep grids over streaming request sources.
//
// This is the engine behind tools/bacsim: the grid is expanded into
// cells, cells are sharded across the global thread pool, and every
// completed cell is handed to a sink as one structured record (the
// bench_main record schema: workload, n/m/k/beta, cost, wall time, plus
// numeric extras), so drivers can stream results out as they arrive
// instead of holding the sweep in memory.
//
// Workload specs:
//   zipf[alpha]   e.g. "zipf0.9" (default alpha 0.9)   - synthetic stream
//   uniform | scan | blocklocal | phased               - synthetic streams
//   path.bact                                          - binary trace
//   path.csv                                           - key trace (mapping
//                                                        built once, shared)
//   any other path                                     - v1 text trace
// Synthetic workloads use --n/--beta/--T; file workloads carry their own
// block structure and the sweep's k overrides the file's. All sources
// stream: peak memory is independent of trace length.
//
// Randomized policies (policy->randomized()) run `trials` Monte-Carlo
// replays through simulate_mc — themselves parallel over the same pool —
// and report mean costs with stddev; deterministic policies run once.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/request_source.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bac::driver {

struct SweepConfig {
  std::vector<std::string> policies;   ///< registry names (algs/zoo.hpp)
  std::vector<std::string> workloads;  ///< specs as above
  std::vector<int> ks;
  int n = 4096;            ///< pages, synthetic workloads
  int beta = 8;            ///< block size, synthetic workloads
  long long T = 200000;    ///< requests, synthetic workloads
  std::uint64_t seed = 1;
  int trials = 1;          ///< Monte-Carlo trials for randomized policies
  bool mrc = false;        ///< attach the LRU miss-ratio curve at the ks
  int csv_block_pages = 8; ///< block inference granularity for .csv
  /// Optional observability hooks (nullptr = disabled). The sweep emits a
  /// `sweep` span plus cell_begin/cell_end events as cells complete (so a
  /// 50M-request grid is watchable mid-flight), forwards `metrics` into
  /// every cell's simulate() so sim_* event counters aggregate across the
  /// grid, and counts cells under `sweep_cells_total`. Counter totals are
  /// sums of deterministic per-cell counts, hence independent of the pool
  /// size; only wall-clock fields vary.
  obs::MetricRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
};

struct SweepRecord {
  std::string policy;          ///< registry name
  std::string policy_display;  ///< OnlinePolicy::name()
  std::string workload;        ///< spec string
  int n = 0;
  int m = 0;
  int k = 0;
  int beta = 0;
  long long requests = 0;      ///< requests processed (x trials for MC)
  long long misses = 0;        ///< single-run cells only
  int trials = 1;
  double cost = 0;             ///< eviction + fetch (mean over trials)
  double eviction_cost = 0;
  double fetch_cost = 0;
  double stddev_cost = 0;      ///< 0 for deterministic cells
  double wall_ms = 0;
  double rps = 0;              ///< requests per second for this cell
  double step_cost_p50 = 0;    ///< per-step total cost percentiles
  double step_cost_p90 = 0;
  double step_cost_p99 = 0;
  double step_cost_max = 0;
  std::vector<std::pair<int, double>> miss_curve;  ///< when config.mrc
};

struct SweepTotals {
  long long cells = 0;
  long long requests = 0;  ///< total requests processed across the sweep
  double wall_ms = 0;      ///< sweep wall clock
  double rps = 0;          ///< aggregate throughput
};

/// Called once per completed cell, from pool workers (serialize inside if
/// needed; bacsim's JSON writer takes a mutex).
using RecordSink = std::function<void(const SweepRecord&)>;

/// Build a streaming source for one (workload, k) cell. CSV mappings are
/// built on first use per path and shared (read-only) across cells.
std::unique_ptr<RequestSource> make_workload_source(
    const std::string& spec, const SweepConfig& config, int k);

/// The CSV mapping cache behind make_workload_source holds at most this
/// many (path, options) mappings, LRU-evicted — bounded so a long-lived
/// process sweeping many trace files cannot grow it forever.
inline constexpr int kCsvMappingCacheCapacity = 8;

/// Current number of cached CSV mappings (introspection for tests).
int csv_mapping_cache_size();

/// Drop every cached CSV mapping (mappings still referenced by running
/// cells stay alive through their shared_ptr).
void csv_mapping_cache_clear();

/// Expand and run the grid; throws on the first cell error (unknown
/// policy/workload, malformed trace, infeasible k < beta, ...).
SweepTotals run_sweep(const SweepConfig& config, const RecordSink& sink);

}  // namespace bac::driver
