#include "driver/sweep.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "algs/zoo.hpp"
#include "core/simulator.hpp"
#include "trace/bact.hpp"
#include "trace/csv.hpp"
#include "trace/trace_io.hpp"
#include "util/flat_hash.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace bac::driver {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// File specs are paths (contain '/') or carry a trace extension; this
/// keeps synthetic names like "zipf0.9" synthetic while "zipf_day1.bact"
/// routes to the trace reader.
bool is_file_spec(const std::string& spec) {
  return spec.find('/') != std::string::npos || ends_with(spec, ".bact") ||
         ends_with(spec, ".csv") || ends_with(spec, ".txt") ||
         ends_with(spec, ".trace");
}

/// "zipf0.9" -> 0.9; "zipf" -> 0.9; anything else unparsable throws.
double zipf_alpha(const std::string& spec) {
  if (spec == "zipf") return 0.9;
  const std::string digits = spec.substr(4);
  char* end = nullptr;
  errno = 0;
  const double alpha = std::strtod(digits.c_str(), &end);
  if (errno != 0 || end != digits.c_str() + digits.size() || alpha < 0)
    throw std::invalid_argument("sweep: bad zipf spec '" + spec + "'");
  return alpha;
}

/// Presents an inner streaming source under a different cache size, so
/// one trace file sweeps across k without rewriting its header. The
/// header's BlockMap shares the inner source's structure (BlockMap copies
/// are O(1) handle bumps), so a file-trace k-sweep costs no per-cell
/// page-map memory.
class KOverride final : public RequestSource {
 public:
  KOverride(std::unique_ptr<RequestSource> inner, int k)
      : inner_(std::move(inner)),
        header_{inner_->context().blocks, {}, k} {
    header_.validate();  // beta <= k must still hold under the override
  }

  [[nodiscard]] const Instance& context() const override { return header_; }
  [[nodiscard]] long long horizon_hint() const override {
    return inner_->horizon_hint();
  }
  bool next(PageId& p) override { return inner_->next(p); }
  /// Forward batches whole: the inner source's pipelined batch decode
  /// (CsvSource, BactSource) would be bypassed by the base class's
  /// one-at-a-time default.
  int next_batch(PageId* out, int cap) override {
    return inner_->next_batch(out, cap);
  }
  void rewind() override { inner_->rewind(); }

 private:
  std::unique_ptr<RequestSource> inner_;
  Instance header_;
};

/// Zipf is only well-defined over a spec beginning with "zipf"; keep the
/// dispatch table in one place for specs and error messages.
std::unique_ptr<RequestSource> make_synthetic(const std::string& spec,
                                              const SweepConfig& c, int k) {
  const int n = c.n;
  const int beta = c.beta;
  const long long T = c.T;
  if (spec.rfind("zipf", 0) == 0)
    return SyntheticSource::zipf(n, beta, k, T, zipf_alpha(spec), c.seed);
  if (spec == "uniform")
    return SyntheticSource::uniform(n, beta, k, T, c.seed);
  if (spec == "scan") return SyntheticSource::scan(n, beta, k, T);
  if (spec == "blocklocal")
    return SyntheticSource::block_local(n, beta, k, T, 0.75, 0.9, c.seed);
  if (spec == "phased")
    return SyntheticSource::phased(n, beta, k, T, std::max<long long>(1, T / 10),
                                   k + beta, c.seed);
  throw std::invalid_argument(
      "sweep: unknown workload '" + spec +
      "' (expected zipf[a], uniform, scan, blocklocal, phased, or a "
      ".bact/.csv/text trace path)");
}

/// Process-wide CSV mapping cache: pass 1 runs once per (file, inference
/// options) pair, then every cell shares the read-only mapping. The key
/// includes every option that shapes the mapping, so sweeps with
/// different block inference never reuse a stale structure.
///
/// Bounded: a sweep grid reuses at most a handful of distinct trace
/// files, but a long-lived process sweeping many files used to grow
/// forever. The cache holds the kCsvMappingCacheCapacity most recently
/// used mappings (LRU over a FlatMap: hit or miss is decided by a
/// single try_emplace probe — one hash of the key either way — and the
/// coldest entry beyond capacity is evicted by a linear scan, fine at
/// single-digit capacity); shared_ptr keeps evicted mappings alive for
/// cells still running on them.
struct CsvMappingSlot {
  std::shared_ptr<const CsvMapping> mapping;
  std::uint64_t last_used = 0;
};

Mutex g_csv_cache_mutex;
FlatMap<std::string, CsvMappingSlot> g_csv_cache GUARDED_BY(g_csv_cache_mutex);
std::uint64_t g_csv_cache_clock GUARDED_BY(g_csv_cache_mutex) = 0;

std::shared_ptr<const CsvMapping> csv_mapping_for(const std::string& path,
                                                  const SweepConfig& c,
                                                  int k) {
  const std::string key =
      path + "\x1f" + std::to_string(c.csv_block_pages);
  MutexLock lock(g_csv_cache_mutex);
  // One probe decides hit vs miss; on a miss the slot is filled in
  // place. build_csv_mapping can throw (unreadable file), so the
  // placeholder is erased on the way out — a failed pass 1 must not
  // cache a null mapping.
  const auto [slot, inserted] = g_csv_cache.try_emplace(key);
  if (!inserted) {
    slot->last_used = ++g_csv_cache_clock;
    return slot->mapping;
  }
  try {
    CsvOptions options;
    options.block_pages = c.csv_block_pages;
    options.k = k;
    slot->mapping =
        std::make_shared<const CsvMapping>(build_csv_mapping(path, options));
  } catch (...) {
    g_csv_cache.erase(key);
    throw;
  }
  slot->last_used = ++g_csv_cache_clock;
  std::shared_ptr<const CsvMapping> mapping = slot->mapping;
  if (g_csv_cache.size() >
      static_cast<std::size_t>(kCsvMappingCacheCapacity)) {
    // Evict the coldest entry (never the one just inserted — it holds
    // the newest clock). erase() only tombstones, so no slot moves.
    const std::string* coldest = nullptr;
    std::uint64_t coldest_used = std::numeric_limits<std::uint64_t>::max();
    for (const auto& [cached_key, cached] : g_csv_cache) {
      if (cached.last_used < coldest_used) {
        coldest_used = cached.last_used;
        coldest = &cached_key;
      }
    }
    if (coldest != nullptr) {
      const std::string victim = *coldest;
      g_csv_cache.erase(victim);
    }
  }
  return mapping;
}

}  // namespace

int csv_mapping_cache_size() {
  MutexLock lock(g_csv_cache_mutex);
  return static_cast<int>(g_csv_cache.size());
}

void csv_mapping_cache_clear() {
  MutexLock lock(g_csv_cache_mutex);
  g_csv_cache.clear();
}

std::unique_ptr<RequestSource> make_workload_source(
    const std::string& spec, const SweepConfig& config, int k) {
  if (!is_file_spec(spec)) return make_synthetic(spec, config, k);
  std::unique_ptr<RequestSource> inner;
  if (ends_with(spec, ".bact")) {
    inner = std::make_unique<BactSource>(spec);
  } else if (ends_with(spec, ".csv")) {
    CsvOptions options;
    options.block_pages = config.csv_block_pages;
    options.k = k;
    inner = std::make_unique<CsvSource>(
        spec, csv_mapping_for(spec, config, k), options);
  } else {
    inner = std::make_unique<TextTraceSource>(spec);
  }
  return std::make_unique<KOverride>(std::move(inner), k);
}

SweepTotals run_sweep(const SweepConfig& config, const RecordSink& sink) {
  if (config.policies.empty())
    throw std::invalid_argument("sweep: no policies selected");
  if (config.workloads.empty())
    throw std::invalid_argument("sweep: no workloads selected");
  if (config.ks.empty())
    throw std::invalid_argument("sweep: no cache sizes selected");

  // Resolve policy names upfront so typos fail before any work runs.
  for (const std::string& name : config.policies) (void)make_policy(name);

  struct Cell {
    std::string policy;
    std::string workload;
    int k;
  };
  std::vector<Cell> cells;
  cells.reserve(config.policies.size() * config.workloads.size() *
                config.ks.size());
  for (const std::string& w : config.workloads)
    for (const std::string& p : config.policies)
      for (const int k : config.ks) cells.push_back({p, w, k});

  Mutex totals_mutex;
  SweepTotals totals;
  totals.cells = static_cast<long long>(cells.size());

  Stopwatch sweep_clock;
  obs::Span sweep_span(config.trace, "sweep");
  global_pool().parallel_for_indexed(cells.size(), [&](std::size_t i) {
    const Cell& cell = cells[i];
    auto policy = make_policy(cell.policy);
    const bool monte_carlo = policy->randomized() && config.trials > 1;

    SweepRecord record;
    record.policy = cell.policy;
    record.policy_display = policy->name();
    record.workload = cell.workload;
    record.k = cell.k;
    record.trials = monte_carlo ? config.trials : 1;

    const std::string cell_name =
        config.trace == nullptr
            ? std::string()
            : cell.policy + "/" + cell.workload + "/k" + std::to_string(cell.k);
    if (config.trace != nullptr) config.trace->emit("cell_begin", cell_name);

    Stopwatch cell_clock;
    if (monte_carlo) {
      auto source = make_workload_source(cell.workload, config, cell.k);
      const Instance& ctx = source->context();
      record.n = ctx.n_pages();
      record.m = ctx.blocks.n_blocks();
      record.beta = ctx.blocks.beta();
      const MonteCarloResult mc = simulate_mc(
          [&] { return make_workload_source(cell.workload, config, cell.k); },
          [&] { return make_policy(cell.policy); }, config.trials,
          config.seed);
      record.eviction_cost = mc.mean_eviction_cost;
      record.fetch_cost = mc.mean_fetch_cost;
      record.cost = mc.mean_total_cost;
      record.stddev_cost = mc.stddev_total_cost;
      record.requests = mc.total_requests;
    } else {
      auto source = make_workload_source(cell.workload, config, cell.k);
      const Instance& ctx = source->context();
      record.n = ctx.n_pages();
      record.m = ctx.blocks.n_blocks();
      record.beta = ctx.blocks.beta();
      SimOptions options;
      options.seed = config.seed;
      if (config.mrc) options.mrc_ks = config.ks;
      // Cells fold event counters into the shared registry; per-cell
      // phase spans stay off (cell_begin/cell_end already bracket the
      // cell, and nested per-cell phases would swamp a big grid's trace).
      options.metrics = config.metrics;
      const RunResult r = simulate(*source, *policy, options);
      record.requests = r.requests;
      record.misses = r.misses;
      record.eviction_cost = r.eviction_cost;
      record.fetch_cost = r.fetch_cost;
      record.cost = r.eviction_cost + r.fetch_cost;
      record.step_cost_p50 = r.step_cost_p50;
      record.step_cost_p90 = r.step_cost_p90;
      record.step_cost_p99 = r.step_cost_p99;
      record.step_cost_max = r.step_cost_max;
      record.miss_curve = r.miss_curve;
    }
    record.wall_ms = cell_clock.millis();
    record.rps = record.wall_ms > 0
                     ? static_cast<double>(record.requests) /
                           (record.wall_ms / 1000.0)
                     : 0.0;
    {
      MutexLock lock(totals_mutex);
      totals.requests += record.requests;
    }
    if (config.metrics != nullptr) {
      config.metrics->counter("sweep_cells_total").inc();
      config.metrics->counter("sweep_requests_total")
          .inc(static_cast<std::uint64_t>(record.requests));
    }
    if (config.trace != nullptr) {
      obs::TraceEvent e;
      e.type = "cell_end";
      e.name = cell_name;
      e.num("dur_ms", record.wall_ms)
          .num("requests", static_cast<double>(record.requests))
          .num("cost", record.cost)
          .num("rps", record.rps);
      config.trace->emit(e);
    }
    if (sink) sink(record);
  });

  totals.wall_ms = sweep_clock.millis();
  totals.rps = totals.wall_ms > 0 ? static_cast<double>(totals.requests) /
                                        (totals.wall_ms / 1000.0)
                                  : 0.0;
  if (config.metrics != nullptr)
    config.metrics->gauge("sweep_wall_ms").set(totals.wall_ms);
  sweep_span.num("cells", static_cast<double>(totals.cells));
  sweep_span.num("requests", static_cast<double>(totals.requests));
  sweep_span.end();
  return totals;
}

}  // namespace bac::driver
