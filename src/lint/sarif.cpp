#include "lint/sarif.hpp"

#include <map>
#include <ostream>
#include <string>

#include "util/json.hpp"

namespace bac::lint {

namespace {

std::string clean_uri(const std::string& path) {
  if (path.rfind("./", 0) == 0) return path.substr(2);
  return path;
}

void write_rule_object(std::ostream& os, const std::string& name,
                       const std::string& summary, const std::string& hint) {
  os << "        {\"id\": ";
  write_json_string(os, name);
  os << ", \"shortDescription\": {\"text\": ";
  write_json_string(os, summary);
  os << "}, \"help\": {\"text\": ";
  write_json_string(os, hint);
  os << "}}";
}

}  // namespace

void write_sarif_report(std::ostream& os, const std::vector<Rule>& rules,
                        const std::vector<Pass>& passes,
                        const std::vector<Finding>& findings) {
  // ruleIndex = position in the combined rules-then-passes driver list.
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < rules.size(); ++i) index[rules[i].name] = i;
  for (std::size_t i = 0; i < passes.size(); ++i)
    index[passes[i].name] = rules.size() + i;

  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\"driver\": {\n"
     << "        \"name\": \"baclint\",\n"
     << "        \"informationUri\": "
        "\"https://github.com/block-aware-caching/bac\",\n"
     << "        \"rules\": [\n";
  const std::size_t total = rules.size() + passes.size();
  std::size_t emitted = 0;
  for (const Rule& r : rules) {
    write_rule_object(os, r.name, r.summary, r.hint);
    os << (++emitted < total ? ",\n" : "\n");
  }
  for (const Pass& p : passes) {
    write_rule_object(os, p.name, p.summary, p.hint);
    os << (++emitted < total ? ",\n" : "\n");
  }
  os << "      ]}},\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "        {\"ruleId\": ";
    write_json_string(os, f.rule);
    auto it = index.find(f.rule);
    if (it != index.end()) os << ", \"ruleIndex\": " << it->second;
    os << ", \"level\": \"" << (f.allowed ? "note" : "error") << "\"";
    os << ", \"message\": {\"text\": ";
    std::string msg = f.text;
    if (!f.hint.empty()) msg += " — " + f.hint;
    write_json_string(os, msg);
    os << "}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": ";
    write_json_string(os, clean_uri(f.path));
    os << "}, \"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1)
       << "}}}]";
    if (f.allowed) {
      os << ", \"suppressions\": [{\"kind\": \"inSource\", "
            "\"justification\": ";
      write_json_string(os, f.allow_reason);
      os << "}]";
    }
    os << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "      ]\n    }\n  ]\n}\n";
}

}  // namespace bac::lint
