// baclint: a declarative, repo-specific invariant linter.
//
// The generic static analyzers (clang-tidy, TSA, the sanitizers) cannot
// know this repo's contracts: all simulation randomness flows through
// util/rng.hpp so runs are reproducible from one root seed; all mutexes
// are the annotated bac::Mutex so the clang-tsa preset can prove lock
// discipline; hot-path policy/eviction code stays off node-allocating
// hash maps (ROADMAP item 6); cost values are never compared with raw
// float equality outside the bit-exactness-by-contract verify layer; and
// golden/bench serialization keeps round-trip `%.17g` precision. baclint
// enforces exactly those — cheap enough to run as a `lint`-labeled ctest
// on every build.
//
// v2 layers the engine in two tiers sharing one reporting pipeline:
//   - Rules (this header): one ECMAScript regex per invariant, applied
//     line-by-line over a comment-free view of the file. Since v2 that
//     view is produced by the real tokenizer (lint/token.hpp), so raw
//     strings and multi-line comments strip correctly; `lint_lines`
//     keeps its v1 signature as a compatibility shim.
//   - Passes (lint/passes.hpp): scope-aware cross-line analyses over
//     the token stream and brace-scope tree (lint/model.hpp) —
//     lock-discipline, determinism hazards, hot-path allocation, and
//     the include-layering DAG.
//
// The engine is a library so tests/test_baclint.cpp can drive each rule
// and pass against fixtures without spawning the CLI; tools/baclint.cpp
// is a thin front-end over it.
//
// Three suppression levels, most specific first:
//   1. inline: `baclint: allow(<rule-or-pass>)` in a comment on the line,
//   2. allowlist: an AllowEntry (rule, path suffix, line substring),
//   3. rule/pass scope: include/exclude path substrings.
// Suppressed findings are still reported (allowed=true) so the JSON and
// SARIF reports show what is being waived and why.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace bac::lint {

/// One lint rule: a named invariant, its detection regex, and its scope.
struct Rule {
  std::string name;     ///< kebab-case id, e.g. "raw-mutex"
  std::string summary;  ///< one-line statement of the invariant
  std::string pattern;  ///< ECMAScript regex, applied per stripped line
  /// Path substrings the rule applies to; empty = every scanned file.
  std::vector<std::string> include;
  /// Path substrings exempt from the rule (takes precedence).
  std::vector<std::string> exclude;
  std::string hint;  ///< fix-style suggestion appended to diagnostics
};

/// A known-intentional site, waived with a recorded reason.
struct AllowEntry {
  std::string rule;           ///< rule or pass name the entry waives
  std::string path_suffix;    ///< file path must end with this
  std::string line_contains;  ///< line must contain this; "" = whole file
  std::string reason;         ///< why the site is exempt (kept in reports)
};

/// One finding (regex hit or pass diagnostic), suppression resolved.
struct Finding {
  std::string rule;  ///< rule or pass name
  std::string path;
  long long line = 0;  ///< 1-based
  std::string text;    ///< the offending source line, whitespace-trimmed
  std::string hint;
  bool allowed = false;
  std::string allow_reason;  ///< set when allowed
};

/// The repo's active rule table (>= 8 rules; see DESIGN.md "Static
/// analysis" for the invariant behind each and how to add one).
const std::vector<Rule>& default_rules();

/// Known-intentional sites in src/, each with a reason.
const std::vector<AllowEntry>& default_allowlist();

/// Known-intentional sites in the tools/, bench/, and tests/ trees —
/// kept separate from default_allowlist() so `--check src` stays a
/// self-contained gate. Every entry carries a reason.
const std::vector<AllowEntry>& nonsrc_allowlist();

/// Substring-based path gating shared by rules and passes: any exclude
/// substring rejects; empty include accepts; otherwise any include
/// substring accepts.
bool path_selected(const std::string& path,
                   const std::vector<std::string>& include,
                   const std::vector<std::string>& exclude);

/// Resolve suppression for a finding: inline `baclint: allow(<name>)`
/// on the raw source line first, then the allowlist.
void apply_suppressions(Finding& f, const std::string& raw_line,
                        const std::vector<AllowEntry>& allowlist);

/// Leading/trailing whitespace removed (finding text normalization).
std::string trim_line(const std::string& s);

/// Read a source file into lines (CR stripped). Throws
/// std::runtime_error when unreadable.
std::vector<std::string> read_source_lines(const std::string& path);

/// Lint pre-split lines as if read from `path` (the testable core; no
/// filesystem access). Comments are removed through the tokenizer, so
/// multi-line constructs strip correctly; string literals stay visible
/// to format rules. Throws std::invalid_argument on a malformed rule
/// regex.
std::vector<Finding> lint_lines(const std::string& path,
                                const std::vector<std::string>& lines,
                                const std::vector<Rule>& rules,
                                const std::vector<AllowEntry>& allowlist);

/// Read and lint one file. Throws std::runtime_error when unreadable.
std::vector<Finding> lint_file(const std::string& path,
                               const std::vector<Rule>& rules,
                               const std::vector<AllowEntry>& allowlist);

/// Recursively collect .hpp/.cpp/.h/.cc files under `root`, sorted so
/// scans are deterministic. The lint fixture corpus (any directory named
/// `lint_fixtures`) is skipped: fixtures exist to violate rules. A
/// single regular file is returned as-is. Throws std::runtime_error when
/// `root` does not exist.
std::vector<std::string> list_source_files(const std::string& root);

/// Number of findings that are NOT allowed (the CLI's exit criterion).
int count_violations(const std::vector<Finding>& findings);

/// Machine-readable report (rule table, findings, counts) in the bench
/// JSON house style; `files_scanned` is informational.
void write_json_report(std::ostream& os, const std::vector<Rule>& rules,
                       const std::vector<Finding>& findings,
                       long long files_scanned);

}  // namespace bac::lint
