// Cross-line analysis passes for baclint v2.
//
// A Pass is the scope-aware sibling of a Rule: it runs over FileModels
// (token stream + scope tree + harvested declarations) instead of
// stripped lines, and it may correlate facts across files — the
// lock-discipline pass reads GUARDED_BY annotations out of headers and
// checks accesses in every .cpp of the corpus against them.
//
// Findings flow into the same reporting pipeline as rule findings: the
// same Finding struct, the same three suppression levels (inline
// `baclint: allow(<pass>)`, allowlist entries with mandatory reasons,
// per-pass include/exclude path gating), the same JSON/SARIF writers.
#pragma once

#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "lint/model.hpp"

namespace bac::lint {

/// Metadata for one analysis pass (the scope-aware analogue of Rule).
struct Pass {
  std::string name;     ///< kebab-case id; doubles as the fixture dir name
  std::string summary;  ///< one-line contract, for reports and --list-rules
  std::string hint;     ///< remediation advice attached to findings
  std::vector<std::string> include;  ///< path substrings; empty = everywhere
  std::vector<std::string> exclude;  ///< path substrings; exclusion wins
};

/// The four v2 passes: lock-discipline, nondet-iteration, hot-path-alloc,
/// layering. Order is stable; CI pins the count.
const std::vector<Pass>& default_passes();

/// One layer of the declared architecture DAG: `name` may include only
/// headers from layers in `deps` (and its own layer, and extensionless
/// local headers). Checked by the layering pass; documented in DESIGN.md.
struct Layer {
  std::string name;
  std::vector<std::string> deps;
};

/// The declared include-layering DAG:
/// util → {lint,obs} → core → {trace,lp,server} → submodular → algs →
/// driver → verify → {tools,bench,tests}.
const std::vector<Layer>& layering_graph();

/// Map a repo-relative path to its layer name ("" when unlayered).
std::string layer_of_path(const std::string& path);

/// Run `passes` over the corpus. Lock annotations are harvested from
/// every model (headers included) before any file is checked, so
/// cross-file GUARDED_BY/REQUIRES facts are visible everywhere.
/// Suppressions are resolved exactly as for rules.
std::vector<Finding> run_passes(const std::vector<FileModel>& corpus,
                                const std::vector<Pass>& passes,
                                const std::vector<AllowEntry>& allowlist);

/// Full v2 JSON report: the rule table, the pass table, and findings
/// from both, in the bench JSON house style. The rules-only overload in
/// lint.hpp stays for v1 compatibility.
void write_json_report(std::ostream& os, const std::vector<Rule>& rules,
                       const std::vector<Pass>& passes,
                       const std::vector<Finding>& findings,
                       long long files_scanned);

}  // namespace bac::lint
