#include "lint/passes.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <string_view>

#include "util/json.hpp"

namespace bac::lint {

namespace {

// The linter's home turf never gets passed through the passes either:
// src/lint/ and the baclint test spell violating constructs on purpose,
// and the fixture corpus exists to violate rules.
const std::vector<std::string> kPassExclude = {"lint/", "lint_fixtures/",
                                               "test_baclint.cpp"};

const std::vector<Pass>& pass_table() {
  static const std::vector<Pass> passes = {
      {"lock-discipline",
       "every access to a GUARDED_BY member must hold its mutex — a "
       "MutexLock for it on the scope chain, or a REQUIRES annotation on "
       "the enclosing function; this is the portable TSA-lite that runs "
       "on the GCC lanes where clang -Wthread-safety is unavailable",
       "wrap the access in `MutexLock lock(<mutex>);` or annotate the "
       "function with REQUIRES(<mutex>)",
       {},
       kPassExclude},
      {"nondet-iteration",
       "iterating an unordered container into a stream/JSON writer or a "
       "+= accumulator makes output depend on hash order, and ordered "
       "containers keyed by pointer iterate in address order — both "
       "break the bit-identical metrics/golden contracts",
       "collect entries into a vector and sort by a stable key, or key "
       "the container by a value type (std::map over ids)",
       {},
       kPassExclude},
      {"hot-path-alloc",
       "scopes tagged `// baclint: hot-path` must stay allocation-free: "
       "no new/make_unique/make_shared and no node-allocating container "
       "declarations or insert/emplace/operator[] calls",
       "use the reset-reused flat primitives (bac::FlatMap/FlatSet in "
       "util/flat_hash.hpp, core/eviction_index.hpp) or hoist the "
       "allocation out of the request path",
       {},
       kPassExclude},
      {"layering",
       "#include edges must follow the declared architecture DAG "
       "(util -> lint/obs -> core -> trace/lp/server -> submodular -> "
       "algs -> driver -> verify -> tools/bench/tests); an upward or "
       "sideways include couples layers the build keeps separate",
       "depend downward only: move the shared declaration into a lower "
       "layer instead of including across",
       {},
       kPassExclude},
  };
  return passes;
}

const std::vector<Layer>& layer_table() {
  static const std::vector<Layer> layers = {
      {"util", {}},
      {"lint", {"util"}},
      {"obs", {"util"}},
      {"core", {"util", "obs"}},
      {"trace", {"util", "obs", "core"}},
      {"lp", {"util", "obs", "core"}},
      {"server", {"util", "obs", "core"}},
      {"submodular", {"util", "obs", "core", "lp"}},
      {"algs", {"util", "obs", "core", "lp", "submodular"}},
      {"driver", {"util", "obs", "core", "trace", "lp", "submodular", "algs"}},
      {"verify",
       {"util", "obs", "core", "trace", "lp", "submodular", "algs", "server"}},
      {"tools",
       {"util", "lint", "obs", "core", "trace", "lp", "server", "submodular",
        "algs", "driver", "verify"}},
      {"bench",
       {"util", "lint", "obs", "core", "trace", "lp", "server", "submodular",
        "algs", "driver", "verify"}},
      {"tests",
       {"util", "lint", "obs", "core", "trace", "lp", "server", "submodular",
        "algs", "driver", "verify"}},
  };
  return layers;
}

const Layer* find_layer(const std::string& name) {
  for (const Layer& l : layer_table()) {
    if (l.name == name) return &l;
  }
  return nullptr;
}

bool is_code(const Token& t) { return t.kind != Tok::Comment && !t.preproc; }

void emit(std::vector<Finding>& out, const FileModel& m, const Pass& p,
          int line, const std::vector<AllowEntry>& allowlist) {
  Finding f;
  f.rule = p.name;
  f.path = m.path;
  f.line = line;
  if (line >= 1 && static_cast<std::size_t>(line) <= m.lines.size()) {
    f.text = trim_line(m.lines[static_cast<std::size_t>(line - 1)]);
  }
  f.hint = p.hint;
  const std::string raw =
      (line >= 1 && static_cast<std::size_t>(line) <= m.lines.size())
          ? m.lines[static_cast<std::size_t>(line - 1)]
          : std::string();
  apply_suppressions(f, raw, allowlist);
  out.push_back(std::move(f));
}

/// Code-token index list for one model (shared by several passes).
std::vector<std::size_t> code_list(const FileModel& m) {
  std::vector<std::size_t> cl;
  cl.reserve(m.tokens.size());
  for (std::size_t i = 0; i < m.tokens.size(); ++i) {
    if (is_code(m.tokens[i])) cl.push_back(i);
  }
  return cl;
}

// ---------------------------------------------------------------------
// Pass 1: lock-discipline.
//
// Harvest GUARDED_BY members and REQUIRES functions from the whole
// corpus (annotations live in headers, accesses in .cpp files), then
// check every identifier access: the enclosing function must either
// carry a matching REQUIRES (declaration or definition site) or have a
// MutexLock for the right mutex on the scope chain strictly before the
// access. Constructors/destructors are exempt (exclusive access by
// construction — the same rule clang TSA applies), and lambdas are a
// conservative boundary: accesses inside them are not checked.
// ---------------------------------------------------------------------
void run_lock_discipline(const std::vector<FileModel>& corpus, const Pass& p,
                         const std::vector<AllowEntry>& allowlist,
                         std::vector<Finding>& out) {
  std::map<std::string, std::vector<const GuardedVar*>> guards;
  std::set<std::pair<std::string, std::string>> requires_any;  // (record, fn)
  std::map<std::pair<std::string, std::string>, std::set<std::string>> requires_mx;
  for (const FileModel& m : corpus) {
    for (const GuardedVar& g : m.guarded) guards[g.name].push_back(&g);
    for (const RequiresFn& r : m.requires_fns) {
      auto key = std::make_pair(r.record, r.name);
      requires_any.insert(key);
      for (const std::string& mx : r.mutexes) requires_mx[key].insert(mx);
    }
  }
  if (guards.empty()) return;

  for (const FileModel& m : corpus) {
    if (!path_selected(m.path, p.include, p.exclude)) continue;
    std::map<int, std::vector<const LockSite*>> locks_by_scope;
    for (const LockSite& l : m.locks) locks_by_scope[l.scope].push_back(&l);

    const std::vector<std::size_t> cl = code_list(m);
    std::set<std::pair<int, std::string>> reported;
    for (std::size_t ci = 0; ci < cl.size(); ++ci) {
      const std::size_t ti = cl[ci];
      const Token& t = m.tokens[ti];
      if (t.kind != Tok::Ident) continue;
      auto git = guards.find(t.text);
      if (git == guards.end()) continue;
      // Skip the annotated declaration itself.
      if (ci + 1 < cl.size()) {
        const Token& nx = m.tokens[cl[ci + 1]];
        if (nx.kind == Tok::Ident &&
            (nx.text == "GUARDED_BY" || nx.text == "PT_GUARDED_BY"))
          continue;
      }
      const int sc = m.scope_of_tok[ti];
      const int fn = enclosing_function(m, sc);
      if (fn < 0) continue;  // declarations, default initializers
      const Scope& F = m.scopes[static_cast<std::size_t>(fn)];
      if (F.kind == Scope::Kind::Lambda) continue;  // boundary: no claim
      if (F.ctor_dtor) continue;

      const GuardedVar* g = nullptr;
      for (const GuardedVar* cand : git->second) {
        if (!cand->record.empty()) {
          if (cand->record == F.record) {
            g = cand;
            break;
          }
        } else if (cand->path == m.path && F.record.empty()) {
          g = cand;  // file-scope variable, free function in the same file
          break;
        }
      }
      if (!g) continue;

      const auto key = std::make_pair(F.record, F.name);
      auto rit = requires_mx.find(key);
      if (rit != requires_mx.end() && rit->second.count(g->mutex)) continue;
      if (requires_any.count(key) && rit == requires_mx.end()) continue;

      bool held = false;
      for (int s = sc; s >= 0 && !held; s = m.scopes[static_cast<std::size_t>(s)].parent) {
        auto lit = locks_by_scope.find(s);
        if (lit != locks_by_scope.end()) {
          for (const LockSite* l : lit->second) {
            if (l->tok < ti && l->mutex == g->mutex) {
              held = true;
              break;
            }
          }
        }
        if (s == fn) break;
      }
      if (held) continue;
      if (reported.insert({t.line, t.text}).second) {
        emit(out, m, p, t.line, allowlist);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Pass 2: nondet-iteration.
//
// Two shapes: (a) a range-for over an unordered container whose body
// writes to a stream (`<<`), calls a formatting function, or runs a
// `+=` accumulation — iteration order leaks into output or a float sum;
// (b) an ordered map/set keyed by a pointer type — deterministic within
// a run but ordered by allocation address, so output differs run to run.
// ---------------------------------------------------------------------
void run_nondet_iteration(const FileModel& m, const Pass& p,
                          const std::vector<AllowEntry>& allowlist,
                          std::vector<Finding>& out) {
  std::set<std::string> unordered_vars;
  for (const ContainerVar& v : m.node_containers) {
    if (v.unordered) unordered_vars.insert(v.name);
    if (!v.unordered && v.pointer_key) emit(out, m, p, v.line, allowlist);
  }

  const std::vector<std::size_t> cl = code_list(m);
  auto tok = [&](std::size_t j) -> const Token& { return m.tokens[cl[j]]; };
  const std::size_t n = cl.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (!(tok(i).kind == Tok::Ident && tok(i).text == "for")) continue;
    if (!(tok(i + 1).kind == Tok::Punct && tok(i + 1).text == "(")) continue;
    // Find the matching ')' and a single ':' at paren depth 1.
    int depth = 0;
    std::size_t colon = 0, close = 0;
    for (std::size_t j = i + 1; j < n && j < i + 256; ++j) {
      const Token& t = tok(j);
      if (t.kind != Tok::Punct) continue;
      if (t.text == "(") ++depth;
      if (t.text == ")" && --depth == 0) {
        close = j;
        break;
      }
      if (t.text == ":" && depth == 1 && colon == 0) colon = j;
    }
    if (close == 0 || colon == 0) continue;  // classic for, or unparsable
    bool over_unordered = false;
    for (std::size_t j = colon + 1; j < close; ++j) {
      const Token& t = tok(j);
      if (t.kind != Tok::Ident) continue;
      if (unordered_vars.count(t.text) ||
          t.text.rfind("unordered_", 0) == 0) {
        over_unordered = true;
        break;
      }
    }
    if (!over_unordered) continue;
    // Body: the following brace scope, or the statement up to ';'.
    std::size_t body_begin = close + 1, body_end = body_begin;
    if (body_begin < n && tok(body_begin).kind == Tok::Punct &&
        tok(body_begin).text == "{") {
      const std::size_t open_ti = cl[body_begin];
      for (const Scope& s : m.scopes) {
        if (s.open_tok == open_ti) {
          // Convert the closing token index back into a code position.
          std::size_t j = body_begin;
          while (j < n && cl[j] < s.close_tok) ++j;
          body_end = j;
          break;
        }
      }
    } else {
      std::size_t j = body_begin;
      while (j < n && !(tok(j).kind == Tok::Punct && tok(j).text == ";")) ++j;
      body_end = j;
    }
    bool hazard = false;
    for (std::size_t j = body_begin; j + 1 <= body_end && j < n; ++j) {
      const Token& t = tok(j);
      if (t.kind == Tok::Punct && j + 1 < n) {
        const Token& u = tok(j + 1);
        if (t.text == "<" && u.kind == Tok::Punct && u.text == "<" &&
            u.line == t.line && u.col == t.col + 1) {
          hazard = true;  // operator<<
          break;
        }
        if (t.text == "+" && u.kind == Tok::Punct && u.text == "=" &&
            u.line == t.line && u.col == t.col + 1) {
          hazard = true;  // accumulation
          break;
        }
      }
      if (t.kind == Tok::Ident &&
          (t.text == "printf" || t.text == "fprintf" || t.text == "snprintf" ||
           t.text == "sprintf" || t.text == "write_json_string" ||
           t.text == "write_json_number" || t.text == "append")) {
        hazard = true;
        break;
      }
    }
    if (hazard) emit(out, m, p, tok(i).line, allowlist);
  }
}

// ---------------------------------------------------------------------
// Pass 3: hot-path-alloc.
//
// A `// baclint: hot-path` comment tags its innermost enclosing scope;
// nested scopes inherit. Inside, the pass bans operator new,
// make_unique/make_shared, declarations of node-based containers, and
// node-allocating member calls (insert/emplace/try_emplace/
// emplace_hint/operator[]) on harvested node-container variables.
// Purely lexical: callees are not followed — the dynamic complement is
// the reset-reuse allocation test in tests/test_policy_contracts.
// ---------------------------------------------------------------------
void run_hot_path_alloc(const FileModel& m, const Pass& p,
                        const std::vector<AllowEntry>& allowlist,
                        std::vector<Finding>& out) {
  bool any_hot = false;
  for (const Scope& s : m.scopes) {
    if (s.hot_path) {
      any_hot = true;
      break;
    }
  }
  if (!any_hot) return;

  std::set<std::string> node_vars;
  for (const ContainerVar& v : m.node_containers) node_vars.insert(v.name);

  const std::vector<std::size_t> cl = code_list(m);
  auto tok = [&](std::size_t j) -> const Token& { return m.tokens[cl[j]]; };
  std::set<int> reported;
  auto report = [&](int line) {
    if (reported.insert(line).second) emit(out, m, p, line, allowlist);
  };

  for (const ContainerVar& v : m.node_containers) {
    if (in_hot_path(m, v.scope)) report(v.line);
  }
  for (std::size_t i = 0; i < cl.size(); ++i) {
    const Token& t = tok(i);
    if (t.kind != Tok::Ident) continue;
    if (!in_hot_path(m, m.scope_of_tok[cl[i]])) continue;
    if (t.text == "new" || t.text == "make_unique" || t.text == "make_shared") {
      report(t.line);
      continue;
    }
    if (node_vars.count(t.text) && i + 1 < cl.size()) {
      const Token& nx = tok(i + 1);
      if (nx.kind == Tok::Punct && nx.text == "[") {
        report(t.line);
        continue;
      }
      if (nx.kind == Tok::Punct && (nx.text == "." || nx.text == "->") &&
          i + 2 < cl.size() && tok(i + 2).kind == Tok::Ident) {
        const std::string& op = tok(i + 2).text;
        if (op == "insert" || op == "emplace" || op == "try_emplace" ||
            op == "emplace_hint" || op == "insert_or_assign" || op == "merge") {
          report(t.line);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Pass 4: layering.
// ---------------------------------------------------------------------
void run_layering(const FileModel& m, const Pass& p,
                  const std::vector<AllowEntry>& allowlist,
                  std::vector<Finding>& out) {
  const std::string layer = layer_of_path(m.path);
  if (layer.empty()) return;
  const Layer* l = find_layer(layer);
  if (!l) return;
  for (const IncludeDirective& inc : m.includes) {
    const std::size_t slash = inc.target.find('/');
    if (slash == std::string::npos) continue;  // local header
    const std::string first = inc.target.substr(0, slash);
    if (first == layer) continue;
    if (!find_layer(first)) continue;  // not a layer prefix (e.g. vendored)
    bool ok = false;
    for (const std::string& d : l->deps) {
      if (d == first) {
        ok = true;
        break;
      }
    }
    if (!ok) emit(out, m, p, inc.line, allowlist);
  }
}

}  // namespace

const std::vector<Pass>& default_passes() { return pass_table(); }
const std::vector<Layer>& layering_graph() { return layer_table(); }

std::string layer_of_path(const std::string& path) {
  // src/<layer>/... wins; otherwise the tools/bench/tests trees.
  const std::size_t s = path.rfind("src/");
  if (s != std::string::npos) {
    const std::size_t from = s + 4;
    const std::size_t slash = path.find('/', from);
    if (slash != std::string::npos) {
      const std::string layer = path.substr(from, slash - from);
      if (find_layer(layer)) return layer;
    }
  }
  for (const char* tree : {"tools/", "bench/", "tests/"}) {
    if (path.find(tree) != std::string::npos) {
      std::string t(tree);
      t.pop_back();
      return t;
    }
  }
  return std::string();
}

std::vector<Finding> run_passes(const std::vector<FileModel>& corpus,
                                const std::vector<Pass>& passes,
                                const std::vector<AllowEntry>& allowlist) {
  std::vector<Finding> out;
  for (const Pass& p : passes) {
    if (p.name == "lock-discipline") {
      run_lock_discipline(corpus, p, allowlist, out);
      continue;
    }
    for (const FileModel& m : corpus) {
      if (!path_selected(m.path, p.include, p.exclude)) continue;
      if (p.name == "nondet-iteration") run_nondet_iteration(m, p, allowlist, out);
      if (p.name == "hot-path-alloc") run_hot_path_alloc(m, p, allowlist, out);
      if (p.name == "layering") run_layering(m, p, allowlist, out);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return out;
}

void write_json_report(std::ostream& os, const std::vector<Rule>& rules,
                       const std::vector<Pass>& passes,
                       const std::vector<Finding>& findings,
                       long long files_scanned) {
  os << "{\n  \"bench\": \"baclint\",\n  \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "    {\"name\": ";
    write_json_string(os, rules[i].name);
    os << ", \"summary\": ";
    write_json_string(os, rules[i].summary);
    os << ", \"hint\": ";
    write_json_string(os, rules[i].hint);
    os << "}" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"passes\": [\n";
  for (std::size_t i = 0; i < passes.size(); ++i) {
    os << "    {\"name\": ";
    write_json_string(os, passes[i].name);
    os << ", \"summary\": ";
    write_json_string(os, passes[i].summary);
    os << ", \"hint\": ";
    write_json_string(os, passes[i].hint);
    os << "}" << (i + 1 < passes.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"files_scanned\": " << files_scanned
     << ",\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "    {\"rule\": ";
    write_json_string(os, f.rule);
    os << ", \"path\": ";
    write_json_string(os, f.path);
    os << ", \"line\": " << f.line << ", \"text\": ";
    write_json_string(os, f.text);
    os << ", \"allowed\": " << (f.allowed ? "true" : "false");
    if (f.allowed) {
      os << ", \"reason\": ";
      write_json_string(os, f.allow_reason);
    }
    os << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  const int violations = count_violations(findings);
  os << "  ],\n  \"aggregate\": {\"rules\": " << rules.size()
     << ", \"passes\": " << passes.size()
     << ", \"findings\": " << findings.size()
     << ", \"violations\": " << violations << ", \"allowed\": "
     << (static_cast<long long>(findings.size()) - violations) << "}\n}\n";
}

}  // namespace bac::lint
