#include "lint/model.hpp"

#include <array>
#include <string_view>

namespace bac::lint {

namespace {

bool is_code(const Token& t) { return t.kind != Tok::Comment && !t.preproc; }

bool is_annotation_macro(std::string_view s) {
  static constexpr std::array<std::string_view, 14> kMacros = {
      "CAPABILITY",       "SCOPED_CAPABILITY", "GUARDED_BY",
      "PT_GUARDED_BY",    "ACQUIRED_BEFORE",   "ACQUIRED_AFTER",
      "REQUIRES",         "REQUIRES_SHARED",   "ACQUIRE",
      "ACQUIRE_SHARED",   "RELEASE",           "RELEASE_SHARED",
      "TRY_ACQUIRE",      "EXCLUDES",
  };
  for (auto m : kMacros) {
    if (s == m) return true;
  }
  return false;
}

bool is_control_keyword(std::string_view s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" || s == "catch";
}

bool is_trailing_modifier(std::string_view s) {
  return s == "const" || s == "noexcept" || s == "override" || s == "final" ||
         s == "mutable" || s == "volatile" || s == "try";
}

struct Classification {
  Scope::Kind kind = Scope::Kind::Block;
  std::string name;
  std::string record;
  bool dtor = false;
};

/// Walks the code-token list backwards from position `k` to find the
/// matching `(` for the `)` at `k`. Returns -1 when unmatched nearby.
int match_paren_back(const std::vector<Token>& toks,
                     const std::vector<std::size_t>& cl, int k) {
  int depth = 0;
  for (int j = k, steps = 0; j >= 0 && steps < 512; --j, ++steps) {
    const Token& t = toks[cl[static_cast<std::size_t>(j)]];
    if (t.kind != Tok::Punct) continue;
    if (t.text == ")") ++depth;
    if (t.text == "(") {
      --depth;
      if (depth == 0) return j;
    }
  }
  return -1;
}

/// Classify the scope opened by a `{` whose preceding code token sits at
/// position `start` in the code list. Uncertainty degrades to Block.
Classification classify_open_brace(const std::vector<Token>& toks,
                                   const std::vector<std::size_t>& cl, int start) {
  auto tok = [&](int j) -> const Token& {
    return toks[cl[static_cast<std::size_t>(j)]];
  };

  // Phase 1: skip trailing modifiers / annotation groups / member-init
  // lists until the decisive token appears.
  int k = start;
  int steps = 0;
  while (k >= 0 && steps++ < 512) {
    const Token& t = tok(k);
    if (t.kind == Tok::Ident) {
      const std::string& s = t.text;
      if (is_trailing_modifier(s)) {
        --k;
        continue;
      }
      if (s == "do" || s == "else") return {};
      break;  // bare identifier: namespace / record / brace-init — phase 2
    }
    if (t.kind == Tok::Punct) {
      const std::string& s = t.text;
      if (s == "," || s == ":") {
        // Member-init-list separator (or a label; phase 2 rejects those).
        --k;
        continue;
      }
      if (s == "]") return {Scope::Kind::Lambda, "<lambda>", "", false};
      if (s == ")") {
        int j = match_paren_back(toks, cl, k);
        if (j <= 0) return {};
        int h = j - 1;
        const Token& th = tok(h);
        if (th.kind == Tok::Punct && th.text == "]") {
          return {Scope::Kind::Lambda, "<lambda>", "", false};
        }
        if (th.kind != Tok::Ident) return {};
        const std::string& nm = th.text;
        if (is_control_keyword(nm)) return {};
        if (is_annotation_macro(nm)) {
          k = h - 1;  // skip the macro group, keep scanning left
          continue;
        }
        // Qualified-name walk: `[~] [Qual ::]* name ( ... )`.
        bool dtor = false;
        std::string record;
        int g = h - 1;
        if (g >= 0 && tok(g).kind == Tok::Punct && tok(g).text == "~") {
          dtor = true;
          --g;
        }
        while (g >= 1 && tok(g).kind == Tok::Punct && tok(g).text == "::" &&
               tok(g - 1).kind == Tok::Ident) {
          if (record.empty()) record = tok(g - 1).text;  // innermost qualifier
          g -= 2;
        }
        if (g >= 0) {
          const Token& tp = tok(g);
          if (tp.kind == Tok::Punct && (tp.text == "," || tp.text == ":")) {
            // `name(args)` was a member-init-list item; resume left of it.
            k = g;
            continue;
          }
        }
        return {Scope::Kind::Function, nm, record, dtor};
      }
      return {};  // '=', ';', '<', '>', '&', '*', '(', '{', '}', '->', ...
    }
    return {};  // number / string before '{'
  }
  if (k < 0) return {};

  // Phase 2: `{` preceded by a bare identifier — look left for a
  // namespace/class keyword within the current declaration.
  const std::string head = tok(k).text;
  if (head == "namespace") return {Scope::Kind::Namespace, "", "", false};
  if (head == "class" || head == "struct" || head == "union" || head == "enum") {
    return {Scope::Kind::Record, "", "", false};  // anonymous
  }
  for (int g = k, back = 0; g >= 0 && back++ < 64; --g) {
    const Token& t = tok(g);
    if (t.kind == Tok::Ident) {
      const std::string& s = t.text;
      if (s == "namespace") return {Scope::Kind::Namespace, head, "", false};
      if (s == "class" || s == "struct" || s == "union" || s == "enum") {
        // Name = first plain identifier after the keyword, skipping
        // annotation-macro groups (e.g. `class CAPABILITY("mutex") Mutex`)
        // and `final`.
        for (int f = g + 1; f <= k; ++f) {
          const Token& tf = tok(f);
          if (tf.kind != Tok::Ident) continue;
          if (tf.text == "final" || tf.text == "class" || tf.text == "struct") continue;
          if (is_annotation_macro(tf.text) && f + 1 <= k &&
              tok(f + 1).kind == Tok::Punct && tok(f + 1).text == "(") {
            int depth = 0;
            int f2 = f + 1;
            for (; f2 <= k; ++f2) {
              if (tok(f2).kind != Tok::Punct) continue;
              if (tok(f2).text == "(") ++depth;
              if (tok(f2).text == ")" && --depth == 0) break;
            }
            f = f2;
            continue;
          }
          return {Scope::Kind::Record, tf.text, "", false};
        }
        return {Scope::Kind::Record, "", "", false};
      }
      if (s == "do" || s == "else" || s == "try" || s == "return") return {};
      continue;
    }
    if (t.kind == Tok::Punct) {
      const std::string& s = t.text;
      if (s == ";" || s == "}" || s == "{" || s == ")" || s == "(" || s == "=" ||
          s == "[") {
        return {};  // boundary without a keyword: brace-init or statement
      }
      continue;  // "::", ":", ",", "<", ">", "&", "*" — base lists, templates
    }
    continue;  // numbers/strings inside template args
  }
  return {};
}

}  // namespace

int enclosing_function(const FileModel& m, int scope) {
  for (int s = scope; s >= 0; s = m.scopes[static_cast<std::size_t>(s)].parent) {
    Scope::Kind k = m.scopes[static_cast<std::size_t>(s)].kind;
    if (k == Scope::Kind::Function || k == Scope::Kind::Lambda) return s;
  }
  return -1;
}

bool in_hot_path(const FileModel& m, int scope) {
  for (int s = scope; s >= 0; s = m.scopes[static_cast<std::size_t>(s)].parent) {
    if (m.scopes[static_cast<std::size_t>(s)].hot_path) return true;
  }
  return false;
}

FileModel build_file_model(std::string path, std::vector<std::string> lines) {
  FileModel m;
  m.path = std::move(path);
  m.lines = std::move(lines);
  m.tokens = tokenize(m.lines);
  m.stripped = stripped_lines(m.lines, m.tokens);
  m.scope_of_tok.assign(m.tokens.size(), 0);

  Scope file;
  file.kind = Scope::Kind::File;
  file.parent = -1;
  file.open_tok = 0;
  file.close_tok = m.tokens.size();
  file.open_line = 1;
  file.close_line = static_cast<int>(m.lines.size());
  m.scopes.push_back(file);

  std::vector<int> stack = {0};
  std::vector<std::size_t> code;  // indices of code tokens seen so far
  code.reserve(m.tokens.size());

  for (std::size_t i = 0; i < m.tokens.size(); ++i) {
    const Token& t = m.tokens[i];
    if (!is_code(t)) {
      m.scope_of_tok[i] = stack.back();
      continue;
    }
    if (t.kind == Tok::Punct && t.text == "{") {
      Classification c =
          classify_open_brace(m.tokens, code, static_cast<int>(code.size()) - 1);
      Scope s;
      s.kind = c.kind;
      s.name = c.name;
      s.record = c.record;
      s.parent = stack.back();
      s.open_tok = i;
      s.close_tok = m.tokens.size();
      s.open_line = t.line;
      s.close_line = static_cast<int>(m.lines.size());
      if (s.kind == Scope::Kind::Function) {
        if (s.record.empty()) {
          // In-class definition: the owning record is the enclosing one.
          for (int p = s.parent; p >= 0;
               p = m.scopes[static_cast<std::size_t>(p)].parent) {
            const Scope& ps = m.scopes[static_cast<std::size_t>(p)];
            if (ps.kind == Scope::Kind::Record) {
              s.record = ps.name;
              break;
            }
            if (ps.kind == Scope::Kind::Function || ps.kind == Scope::Kind::Lambda) {
              break;  // local struct boundary not crossed
            }
          }
        }
        s.ctor_dtor = c.dtor || (!s.record.empty() && s.name == s.record);
      }
      int idx = static_cast<int>(m.scopes.size());
      m.scopes.push_back(s);
      stack.push_back(idx);
      m.scope_of_tok[i] = idx;  // the brace belongs to the scope it opens
    } else if (t.kind == Tok::Punct && t.text == "}") {
      m.scope_of_tok[i] = stack.back();
      if (stack.size() > 1) {
        Scope& s = m.scopes[static_cast<std::size_t>(stack.back())];
        s.close_tok = i;
        s.close_line = t.line;
        stack.pop_back();
      }
    } else {
      m.scope_of_tok[i] = stack.back();
    }
    code.push_back(i);
  }

  // --- hot-path tags: a comment anywhere inside a scope marks it ---
  for (std::size_t i = 0; i < m.tokens.size(); ++i) {
    const Token& t = m.tokens[i];
    if (t.kind == Tok::Comment &&
        t.text.find("baclint: hot-path") != std::string::npos) {
      m.scopes[static_cast<std::size_t>(m.scope_of_tok[i])].hot_path = true;
    }
  }

  // --- declaration harvest over code tokens ---
  std::vector<std::size_t> cl;
  cl.reserve(m.tokens.size());
  for (std::size_t i = 0; i < m.tokens.size(); ++i) {
    if (is_code(m.tokens[i])) cl.push_back(i);
  }
  auto tok = [&](int j) -> const Token& {
    return m.tokens[cl[static_cast<std::size_t>(j)]];
  };
  auto enclosing_record_name = [&](std::size_t ti) -> std::string {
    for (int s = m.scope_of_tok[ti]; s >= 0;
         s = m.scopes[static_cast<std::size_t>(s)].parent) {
      if (m.scopes[static_cast<std::size_t>(s)].kind == Scope::Kind::Record) {
        return m.scopes[static_cast<std::size_t>(s)].name;
      }
    }
    return std::string();
  };
  // Collect comma-separated argument tails inside `(...)` starting at
  // code position `open` (must point at '('); returns the last
  // identifier of each argument. Returns the code position after ')'.
  auto collect_macro_args = [&](int open, std::vector<std::string>& out) -> int {
    int depth = 0;
    std::string last_ident;
    int j = open;
    for (int steps = 0; j < static_cast<int>(cl.size()) && steps < 256;
         ++j, ++steps) {
      const Token& t = tok(j);
      if (t.kind == Tok::Punct) {
        if (t.text == "(") {
          ++depth;
          continue;
        }
        if (t.text == ")") {
          --depth;
          if (depth == 0) {
            if (!last_ident.empty()) out.push_back(last_ident);
            return j + 1;
          }
          continue;
        }
        if (t.text == "," && depth == 1) {
          if (!last_ident.empty()) out.push_back(last_ident);
          last_ident.clear();
          continue;
        }
      }
      if (t.kind == Tok::Ident && depth >= 1) last_ident = t.text;
    }
    return j;
  };

  static constexpr std::array<std::string_view, 8> kNodeContainers = {
      "map", "set", "multimap", "multiset",
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};

  const int n = static_cast<int>(cl.size());
  for (int p = 0; p < n; ++p) {
    const Token& t = tok(p);
    if (t.kind != Tok::Ident) continue;
    const std::string& s = t.text;

    if ((s == "GUARDED_BY" || s == "PT_GUARDED_BY") && p > 0 && p + 1 < n &&
        tok(p + 1).kind == Tok::Punct && tok(p + 1).text == "(") {
      const Token& prev = tok(p - 1);
      if (prev.kind == Tok::Ident) {
        std::vector<std::string> args;
        collect_macro_args(p + 1, args);
        if (!args.empty()) {
          GuardedVar g;
          g.record = enclosing_record_name(cl[static_cast<std::size_t>(p)]);
          g.name = prev.text;
          g.mutex = args.back();
          g.path = m.path;
          g.line = prev.line;
          m.guarded.push_back(std::move(g));
        }
      }
      continue;
    }

    if ((s == "REQUIRES" || s == "REQUIRES_SHARED") && p > 0 && p + 1 < n &&
        tok(p + 1).kind == Tok::Punct && tok(p + 1).text == "(") {
      // `fn(...) REQUIRES(m)`: walk back over the parameter list.
      if (tok(p - 1).kind == Tok::Punct && tok(p - 1).text == ")") {
        int open = match_paren_back(m.tokens, cl, p - 1);
        if (open > 0 && tok(open - 1).kind == Tok::Ident) {
          RequiresFn r;
          r.name = tok(open - 1).text;
          int g = open - 2;
          if (g >= 0 && tok(g).kind == Tok::Punct && tok(g).text == "~") --g;
          if (g >= 1 && tok(g).kind == Tok::Punct && tok(g).text == "::" &&
              tok(g - 1).kind == Tok::Ident) {
            r.record = tok(g - 1).text;
          } else {
            r.record = enclosing_record_name(cl[static_cast<std::size_t>(p)]);
          }
          collect_macro_args(p + 1, r.mutexes);
          if (!r.mutexes.empty()) m.requires_fns.push_back(std::move(r));
        }
      }
      continue;
    }

    if (s == "MutexLock" && p + 2 < n && tok(p + 1).kind == Tok::Ident &&
        tok(p + 2).kind == Tok::Punct && tok(p + 2).text == "(") {
      std::vector<std::string> args;
      collect_macro_args(p + 2, args);
      if (!args.empty()) {
        LockSite l;
        l.scope = m.scope_of_tok[cl[static_cast<std::size_t>(p)]];
        l.tok = cl[static_cast<std::size_t>(p)];
        l.mutex = args.back();
        l.line = t.line;
        m.locks.push_back(std::move(l));
      }
      continue;
    }

    // std::map / std::unordered_map / ... declarations.
    bool is_node = false;
    bool unordered = false;
    for (auto c : kNodeContainers) {
      if (s == c) {
        is_node = true;
        unordered = s.rfind("unordered_", 0) == 0;
        break;
      }
    }
    if (is_node && p >= 2 && tok(p - 1).kind == Tok::Punct &&
        tok(p - 1).text == "::" && tok(p - 2).kind == Tok::Ident &&
        tok(p - 2).text == "std" && p + 1 < n && tok(p + 1).kind == Tok::Punct &&
        tok(p + 1).text == "<") {
      int depth = 0;
      int close = -1;
      bool ptr_key = false;
      bool in_first_arg = true;
      std::string last_in_first;
      for (int j = p + 1, steps = 0; j < n && steps < 256; ++j, ++steps) {
        const Token& tj = tok(j);
        if (tj.kind != Tok::Punct) continue;
        if (tj.text == "<") ++depth;
        if (tj.text == ">") {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (tj.text == "," && depth == 1 && in_first_arg) {
          in_first_arg = false;
          ptr_key = last_in_first == "*";
        }
        if (in_first_arg && depth >= 1) last_in_first = tj.text;
      }
      if (close > 0) {
        if (in_first_arg) ptr_key = last_in_first == "*";  // std::set<T*>
        int j = close + 1;
        while (j < n && tok(j).kind == Tok::Punct &&
               (tok(j).text == "&" || tok(j).text == "*")) {
          ++j;
        }
        if (j < n && tok(j).kind == Tok::Ident) {
          ContainerVar v;
          v.name = tok(j).text;
          v.unordered = unordered;
          v.pointer_key = ptr_key;
          v.line = tok(j).line;
          v.scope = m.scope_of_tok[cl[static_cast<std::size_t>(j)]];
          m.node_containers.push_back(std::move(v));
        }
      }
      continue;
    }

    if (s == "include" && t.preproc) continue;  // handled below over all tokens
  }

  // --- #include extraction (preproc tokens, quoted form only) ---
  for (std::size_t i = 0; i + 2 < m.tokens.size(); ++i) {
    const Token& a = m.tokens[i];
    if (!(a.preproc && a.kind == Tok::Punct && a.text == "#")) continue;
    const Token& b = m.tokens[i + 1];
    const Token& c = m.tokens[i + 2];
    if (b.kind == Tok::Ident && b.text == "include" && c.kind == Tok::Str &&
        c.text.size() >= 2) {
      IncludeDirective inc;
      inc.target = c.text.substr(1, c.text.size() - 2);
      inc.line = a.line;
      m.includes.push_back(std::move(inc));
    }
  }

  return m;
}

}  // namespace bac::lint
