// C++ tokenizer for the baclint v2 semantic engine.
//
// The v1 linter stripped comments with a per-line state machine that
// could not know about raw string literals or comment continuations, so
// `R"(...)"` spanning lines turned into phantom comment openers and a
// line comment ending in a backslash leaked its continuation into "live
// code". This tokenizer replaces that model: it lexes the whole file at
// once into a flat token stream that the scope tree (model.hpp), the
// cross-line passes (passes.hpp), and the v1 rule shim (lint.hpp) all
// share.
//
// Guarantees (see DESIGN.md "static analysis" appendix):
//   - comments are single tokens: `//` to end of logical line (backslash
//     continuations included), `/* */` across any number of lines;
//   - string literals are single tokens, including raw strings
//     `R"delim(...)delim"` with arbitrary delimiters across lines, and
//     prefixed literals (u8, u, U, L, and their R combinations);
//   - char literals honour escapes; digit separators (`1'000`) do not
//     open char literals;
//   - tokens on a preprocessor directive line (first token `#`, plus
//     backslash continuations) carry `preproc = true`, so structural
//     consumers can skip macro bodies while `#include` extraction still
//     sees them;
//   - every token records its 1-based start line and 0-based column,
//     plus the end position, so findings point at real source.
//
// The lexer never fails: malformed input (unterminated literals or
// comments) closes the token at end of file and keeps going — a linter
// must degrade, not crash, on code the compiler would reject.
#pragma once

#include <string>
#include <vector>

namespace bac::lint {

enum class Tok {
  Ident,    ///< identifiers and keywords (no keyword table; passes match text)
  Number,   ///< numeric literals, including hex/float/digit-separators
  Str,      ///< ordinary (possibly prefixed) string literal, quotes included
  RawStr,   ///< raw string literal `R"d(...)d"`, full text included
  CharLit,  ///< character literal, quotes included
  Punct,    ///< punctuation; single char except the combined `::` and `->`
  Comment,  ///< `//...` (with continuations) or `/*...*/`, markers included
};

struct Token {
  Tok kind = Tok::Punct;
  std::string text;      ///< exact source text of the token
  int line = 0;          ///< 1-based line of the first character
  int col = 0;           ///< 0-based column of the first character
  int end_line = 0;      ///< 1-based line of the last character
  int end_col = 0;       ///< 0-based column one past the last character
  bool preproc = false;  ///< token belongs to a preprocessor directive line
};

/// Lex `lines` (one entry per source line, no trailing newlines) into a
/// token stream. Whitespace is dropped; everything else, comments
/// included, appears exactly once in source order.
std::vector<Token> tokenize(const std::vector<std::string>& lines);

/// The v1 per-line view rebuilt from the token stream: comments removed
/// (line comments truncate the line, block comments are blanked with
/// spaces so columns keep their meaning), string/char literals and all
/// code kept verbatim. This is what the regex rule table scans — same
/// contract as v1, minus the raw-string and continuation mis-strips.
std::vector<std::string> stripped_lines(const std::vector<std::string>& lines,
                                        const std::vector<Token>& tokens);

}  // namespace bac::lint
