// Scope tree and declaration harvest for baclint v2.
//
// A FileModel is the unit the cross-line passes (passes.hpp) operate
// on: the raw lines, the token stream, a brace-scope tree with
// namespace/record/function classification, and a handful of harvested
// declaration facts (GUARDED_BY members, REQUIRES functions, MutexLock
// sites, #include targets, node-based container variables).
//
// The model is deliberately *lightweight*: no types, no overload
// resolution, no templates — just enough structure that a pass can ask
// "which function encloses this token, and is a lock for mutex M held
// on the scope chain between them?". Where classification is uncertain
// the builder degrades to Kind::Block, which every pass treats as
// "no claim"; a linter heuristic must fail toward silence, not noise.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/token.hpp"

namespace bac::lint {

struct Scope {
  enum class Kind {
    File,       ///< the implicit root
    Namespace,  ///< `namespace X {` (anonymous: name "")
    Record,     ///< class/struct/union/enum body
    Function,   ///< free or member function body (incl. ctor/dtor)
    Lambda,     ///< lambda body — a lock-inheritance boundary
    Block,      ///< anything else: control flow, bare braces, fallback
  };
  Kind kind = Kind::Block;
  std::string name;     ///< Namespace/Record name; Function unqualified name
  std::string record;   ///< Function only: owning record ("" when free)
  bool ctor_dtor = false;
  bool hot_path = false;  ///< tagged `// baclint: hot-path` (not inherited;
                          ///< passes walk ancestors)
  int parent = -1;
  std::size_t open_tok = 0;   ///< token index of `{` (File: 0)
  std::size_t close_tok = 0;  ///< token index of `}` (or tokens.size())
  int open_line = 0;
  int close_line = 0;
};

/// `member GUARDED_BY(mutex)` harvested from a record or file scope.
struct GuardedVar {
  std::string record;  ///< enclosing record name; "" = file/namespace scope
  std::string name;    ///< member/variable identifier
  std::string mutex;   ///< last identifier inside the annotation parens
  std::string path;    ///< file the annotation lives in
  int line = 0;
};

/// `fn(...) REQUIRES(m1, m2)` harvested from a declaration or definition.
struct RequiresFn {
  std::string record;  ///< enclosing record or `X::fn` qualifier; "" = free
  std::string name;
  std::vector<std::string> mutexes;
};

/// `MutexLock guard(expr);` — the lock-discipline pass treats the
/// declaring scope as holding `mutex` from this token onward.
struct LockSite {
  int scope = -1;
  std::size_t tok = 0;  ///< token index of the MutexLock identifier
  std::string mutex;    ///< last identifier of the lock expression
  int line = 0;
};

struct IncludeDirective {
  std::string target;  ///< path between the quotes (quoted form only)
  int line = 0;
};

/// A variable/member declared as a std:: node-based container.
struct ContainerVar {
  std::string name;
  bool unordered = false;  ///< unordered_map/set/multimap/multiset
  bool pointer_key = false;  ///< first template argument ends in `*`
  int line = 0;
  int scope = -1;  ///< scope the declaration lives in
};

struct FileModel {
  std::string path;
  std::vector<std::string> lines;
  std::vector<std::string> stripped;  ///< comment-free view for regex rules
  std::vector<Token> tokens;
  std::vector<Scope> scopes;          ///< [0] is the File scope
  std::vector<int> scope_of_tok;      ///< innermost scope per token index
  std::vector<GuardedVar> guarded;
  std::vector<RequiresFn> requires_fns;
  std::vector<LockSite> locks;
  std::vector<IncludeDirective> includes;
  std::vector<ContainerVar> node_containers;
};

/// Tokenize, build the scope tree, and harvest declarations.
FileModel build_file_model(std::string path, std::vector<std::string> lines);

/// Innermost enclosing scope of kind Function or Lambda, or -1.
int enclosing_function(const FileModel& m, int scope);

/// True when `scope` or any ancestor carries the hot-path tag.
bool in_hot_path(const FileModel& m, int scope);

}  // namespace bac::lint
