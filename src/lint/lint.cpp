#include "lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <stdexcept>

#include "lint/token.hpp"
#include "util/json.hpp"

namespace bac::lint {

namespace {

// ---------------------------------------------------------------------
// Rule table. Every rule excludes the linter's own home turf: src/lint/
// spells the banned tokens inside its pattern strings, the fixture
// corpus exists to violate rules, and tests/test_baclint.cpp embeds
// fixture text in string literals (which format rules keep visible).
// ---------------------------------------------------------------------

const std::vector<std::string> kLintHome = {"lint/", "lint_fixtures/",
                                            "test_baclint.cpp"};

/// Home-turf exclusion plus extra sanctioned locations.
std::vector<std::string> lint_home_plus(std::initializer_list<const char*> extra) {
  std::vector<std::string> out(extra.begin(), extra.end());
  out.insert(out.end(), kLintHome.begin(), kLintHome.end());
  return out;
}

// Shared exclusion for simulator-determinism rules: util/rng.hpp is the
// one sanctioned home for raw generator machinery.
const std::vector<std::string> kRngHome = lint_home_plus({"util/rng.hpp"});

const std::vector<Rule>& rule_table() {
  static const std::vector<Rule> rules = {
      {"no-c-rand",
       "libc rand()/srand() is banned: global hidden state breaks "
       "seed-reproducibility and thread determinism",
       R"(\b(?:srand|rand)\s*\()",
       {},
       kRngHome,
       "draw from a seeded bac::Xoshiro256pp (util/rng.hpp) instead"},
      {"no-random-device",
       "std::random_device is banned: nondeterministic entropy makes "
       "runs unreproducible from the root seed",
       R"(std::random_device)",
       {},
       kRngHome,
       "derive seeds from the experiment's root seed via splitmix64 "
       "(util/rng.hpp)"},
      {"no-std-engine",
       "std <random> engines are banned outside util/rng.hpp: their "
       "streams are not substream-splittable and mt19937 distributions "
       "vary across standard libraries",
       R"(std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|ranlux(?:24|48)(?:_base)?|knuth_b))",
       {},
       kRngHome,
       "use bac::Xoshiro256pp / splitmix64 from util/rng.hpp"},
      {"no-wallclock-seed",
       "wall-clock time as a seed or input is banned: system_clock and "
       "time(...) make results depend on when the run started",
       R"(std::chrono::system_clock|\btime\s*\(\s*(?:NULL|nullptr|0)\s*\))",
       {},
       kLintHome,
       "seed from the experiment's root seed; for intervals use the "
       "steady-clock Stopwatch (util/timer.hpp)"},
      {"raw-mutex",
       "raw std::mutex (and friends) are banned: locks must be the "
       "annotated bac::Mutex so the clang-tsa preset can prove the "
       "locking discipline at compile time",
       R"(std::(?:recursive_mutex|timed_mutex|recursive_timed_mutex|shared_mutex|mutex)\b)",
       {},
       lint_home_plus({"util/thread_annotations.hpp"}),
       "use bac::Mutex + MutexLock (util/thread_annotations.hpp) and "
       "GUARDED_BY on the members it protects"},
      {"hot-path-unordered-map",
       "std::unordered_* in hot-path policy/eviction/server code is "
       "banned: node-allocating hash maps are the ROADMAP item 6 "
       "migration target, not something to add more of",
       R"(std::unordered_(?:map|set|multimap|multiset)\b)",
       {"algs/policies/", "core/", "server/"},
       kLintHome,
       "use bac::FlatMap/FlatSet (util/flat_hash.hpp), the flat "
       "primitives in core/eviction_index.hpp, a plain vector keyed by "
       "dense page id, or keep the map out of the hot path"},
      {"float-equality",
       "float equality on cost values is banned outside src/verify/ "
       "(where bit-exact comparison is the differential contract): "
       "accumulated costs compare reliably only with an epsilon",
       R"((?:\w|->|\.)*[Cc]osts?(?:\(\))?\s*[!=]=|[!=]=\s*[-+(\s]*(?:\w|->|\.)*[Cc]osts?\b|[!=]=\s*[-+]?\d+\.\d*\b|\b\d+\.\d*\s*[!=]=)",
       {},
       lint_home_plus({"verify/"}),
       "compare with std::abs(a - b) <= eps, or document the exact-zero "
       "guard with an allowlist entry"},
      {"serialization-precision",
       "float formats below %.17g in golden/bench serialization are "
       "banned: %.17g is the shortest precision that round-trips an IEEE "
       "double, anything less corrupts checksum comparisons",
       R"(%(?!\.17g)[-+ #0-9.]*[efgEFG]\b)",
       {"verify/", "util/json", "driver/"},
       kLintHome,
       "serialize doubles with %.17g (or write_json_number, which does)"},
      {"no-volatile",
       "volatile is banned: it is not a synchronization primitive and "
       "hides real races from TSan and the thread-safety analysis",
       R"(\bvolatile\b)",
       {},
       kLintHome,
       "use std::atomic with explicit memory ordering, or a bac::Mutex"},
      {"no-endl",
       "std::endl is banned in library code: it forces a flush per line "
       "and turns bulk serialization into one syscall per record",
       R"(std::endl\b)",
       {},
       kLintHome,
       "write '\\n' and flush once at the end (or rely on the stream "
       "destructor)"},
      {"raw-chrono-timing",
       "direct std::chrono clock reads are banned: scattered now() calls "
       "bypass the observability layer and invite wall-clock values into "
       "checksummed outputs",
       R"(std::chrono::(?:steady_clock|high_resolution_clock)::now\s*\()",
       {},
       lint_home_plus({"util/timer.hpp"}),
       "time intervals with bac::Stopwatch (util/timer.hpp) or an obs "
       "Span/PhaseTimer (obs/trace.hpp)"},
  };
  return rules;
}

const std::vector<AllowEntry>& allow_table() {
  static const std::vector<AllowEntry> allows = {
      {"float-equality", "util/stats.cpp", "den == 0.0",
       "exact-zero guard before dividing; any nonzero denominator is "
       "usable"},
      {"float-equality", "lp/simplex.cpp", "cb == 0.0",
       "simplex skips exactly-zero basis coefficients; an epsilon here "
       "would skip live pivots"},
      {"float-equality", "lp/simplex.cpp", "factor == 0.0",
       "row elimination skips exactly-zero factors; correctness, not a "
       "tolerance question"},
  };
  return allows;
}

const std::vector<AllowEntry>& nonsrc_allow_table() {
  static const std::vector<AllowEntry> allows = {
      {"float-equality", "tools/bacload.cpp", "total_cost() != runs.front()",
       "--check-equivalence asserts the bit-exact batched-cost contract "
       "across thread counts; an epsilon would mask real drift"},
      {"float-equality", "bench/bench_main.cpp", "r.cost == base->cost",
       "replicate-consistency column compares checksummed costs that are "
       "bit-identical by the determinism contract"},
      {"float-equality", "tests/test_request_source.cpp", "_cost == b.",
       "streaming-vs-materialized equivalence is bit-exact by contract; "
       "the test must fail on any drift"},
      {"float-equality", "tests/test_trace_formats.cpp", "_cost == b.",
       "format round-trip equivalence is bit-exact by contract; the test "
       "must fail on any drift"},
  };
  return allows;
}

std::string trim(const std::string& s) {
  std::size_t lo = s.find_first_not_of(" \t");
  if (lo == std::string::npos) return "";
  std::size_t hi = s.find_last_not_of(" \t");
  return s.substr(lo, hi - lo + 1);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

const std::vector<Rule>& default_rules() { return rule_table(); }
const std::vector<AllowEntry>& default_allowlist() { return allow_table(); }
const std::vector<AllowEntry>& nonsrc_allowlist() { return nonsrc_allow_table(); }

std::string trim_line(const std::string& s) { return trim(s); }

bool path_selected(const std::string& path,
                   const std::vector<std::string>& include,
                   const std::vector<std::string>& exclude) {
  for (const std::string& ex : exclude)
    if (path.find(ex) != std::string::npos) return false;
  if (include.empty()) return true;
  for (const std::string& inc : include)
    if (path.find(inc) != std::string::npos) return true;
  return false;
}

void apply_suppressions(Finding& f, const std::string& raw_line,
                        const std::vector<AllowEntry>& allowlist) {
  if (raw_line.find("baclint: allow(" + f.rule + ")") != std::string::npos) {
    f.allowed = true;
    f.allow_reason = "inline suppression";
    return;
  }
  for (const AllowEntry& a : allowlist) {
    if (a.rule != f.rule) continue;
    if (!ends_with(f.path, a.path_suffix)) continue;
    if (!a.line_contains.empty() &&
        raw_line.find(a.line_contains) == std::string::npos)
      continue;
    f.allowed = true;
    f.allow_reason = a.reason;
    return;
  }
}

std::vector<Finding> lint_lines(const std::string& path,
                                const std::vector<std::string>& lines,
                                const std::vector<Rule>& rules,
                                const std::vector<AllowEntry>& allowlist) {
  struct Active {
    const Rule* rule;
    std::regex re;
  };
  std::vector<Active> active;
  for (const Rule& rule : rules) {
    if (!path_selected(path, rule.include, rule.exclude)) continue;
    try {
      active.push_back({&rule, std::regex(rule.pattern)});
    } catch (const std::regex_error& e) {
      throw std::invalid_argument("baclint: rule '" + rule.name +
                                  "' has a malformed pattern: " + e.what());
    }
  }
  std::vector<Finding> findings;
  if (active.empty()) return findings;

  // v2: the comment-free view comes from the tokenizer, so raw strings
  // and multi-line comments strip correctly (the v1 per-line state
  // machine got both wrong). String literals stay visible by design.
  const std::vector<Token> tokens = tokenize(lines);
  const std::vector<std::string> stripped = stripped_lines(lines, tokens);

  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const Active& a : active) {
      if (!std::regex_search(stripped[i], a.re)) continue;
      Finding f;
      f.rule = a.rule->name;
      f.path = path;
      f.line = static_cast<long long>(i) + 1;
      f.text = trim(lines[i]);
      f.hint = a.rule->hint;
      apply_suppressions(f, lines[i], allowlist);
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

std::vector<std::string> read_source_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("baclint: cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  if (in.bad()) throw std::runtime_error("baclint: read error on " + path);
  return lines;
}

std::vector<Finding> lint_file(const std::string& path,
                               const std::vector<Rule>& rules,
                               const std::vector<AllowEntry>& allowlist) {
  return lint_lines(path, read_source_lines(path), rules, allowlist);
}

std::vector<std::string> list_source_files(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path base(root);
  if (!fs::exists(base))
    throw std::runtime_error("baclint: no such path: " + root);
  std::vector<std::string> files;
  if (fs::is_regular_file(base)) {
    files.push_back(base.generic_string());
    return files;
  }
  for (const auto& entry : fs::recursive_directory_iterator(base)) {
    if (!entry.is_regular_file()) continue;
    const std::string p = entry.path().generic_string();
    // The fixture corpus exists to violate rules; never scan it.
    if (p.find("lint_fixtures/") != std::string::npos) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
      files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  return files;
}

int count_violations(const std::vector<Finding>& findings) {
  int n = 0;
  for (const Finding& f : findings)
    if (!f.allowed) ++n;
  return n;
}

void write_json_report(std::ostream& os, const std::vector<Rule>& rules,
                       const std::vector<Finding>& findings,
                       long long files_scanned) {
  os << "{\n  \"bench\": \"baclint\",\n  \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "    {\"name\": ";
    write_json_string(os, rules[i].name);
    os << ", \"summary\": ";
    write_json_string(os, rules[i].summary);
    os << ", \"hint\": ";
    write_json_string(os, rules[i].hint);
    os << "}" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"files_scanned\": " << files_scanned
     << ",\n  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "    {\"rule\": ";
    write_json_string(os, f.rule);
    os << ", \"path\": ";
    write_json_string(os, f.path);
    os << ", \"line\": " << f.line << ", \"text\": ";
    write_json_string(os, f.text);
    os << ", \"allowed\": " << (f.allowed ? "true" : "false");
    if (f.allowed) {
      os << ", \"reason\": ";
      write_json_string(os, f.allow_reason);
    }
    os << "}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  const int violations = count_violations(findings);
  os << "  ],\n  \"aggregate\": {\"rules\": " << rules.size()
     << ", \"findings\": " << findings.size()
     << ", \"violations\": " << violations << ", \"allowed\": "
     << (static_cast<long long>(findings.size()) - violations) << "}\n}\n";
}

}  // namespace bac::lint
