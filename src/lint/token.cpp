#include "lint/token.hpp"

#include <algorithm>
#include <cctype>

namespace bac::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// True when `s`, with trailing horizontal whitespace removed, ends in a
/// backslash — i.e. the logical line continues on the next physical one.
bool ends_with_continuation(const std::string& s) {
  std::size_t n = s.size();
  while (n > 0 && (s[n - 1] == ' ' || s[n - 1] == '\t' || s[n - 1] == '\r')) --n;
  return n > 0 && s[n - 1] == '\\';
}

/// Cursor over the line array. Column `size()` is the virtual newline;
/// only skip_whitespace() and lex_line_comment() move across lines, so
/// the directive-continuation check always sees the line being left.
class Lexer {
 public:
  explicit Lexer(const std::vector<std::string>& lines) : lines_(lines) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skip_whitespace();
      if (at_end()) break;
      Token t = next_token();
      // A `#` that is the first token on its physical line opens a
      // directive; the directive covers every token up to the first
      // line break not preceded by a continuation backslash.
      if (t.kind == Tok::Punct && t.text == "#" && first_on_line(t)) {
        in_directive_ = true;
      }
      if (in_directive_) {
        t.preproc = true;
        // A trailing line comment swallows the rest of the logical
        // line, continuation backslashes included, so it always closes
        // the directive.
        if (t.kind == Tok::Comment && t.text.rfind("//", 0) == 0) {
          in_directive_ = false;
        }
      }
      out.push_back(std::move(t));
    }
    return out;
  }

 private:
  bool at_end() const { return li_ >= lines_.size(); }
  const std::string& line() const { return lines_[li_]; }
  char cur() const { return ci_ < line().size() ? line()[ci_] : '\n'; }
  char peek(std::size_t k = 1) const {
    return ci_ + k < line().size() ? line()[ci_ + k] : '\n';
  }

  /// One character forward; at the virtual newline, steps to the next
  /// line instead (used only by multi-line token lexers).
  void advance() {
    if (at_end()) return;
    if (ci_ < line().size()) {
      ++ci_;
      return;
    }
    ++li_;
    ci_ = 0;
  }

  void skip_whitespace() {
    while (!at_end()) {
      if (ci_ >= line().size()) {
        if (in_directive_ && !ends_with_continuation(line())) in_directive_ = false;
        ++li_;
        ci_ = 0;
        continue;
      }
      char c = cur();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        ++ci_;
      } else {
        break;
      }
    }
  }

  bool first_on_line(const Token& t) const {
    const std::string& l = lines_[static_cast<std::size_t>(t.line - 1)];
    for (int i = 0; i < t.col; ++i) {
      char c = l[static_cast<std::size_t>(i)];
      if (c != ' ' && c != '\t') return false;
    }
    return true;
  }

  Token begin(Tok kind) const {
    Token t;
    t.kind = kind;
    t.line = static_cast<int>(li_) + 1;
    t.col = static_cast<int>(ci_);
    return t;
  }

  /// Stamp the end position from the current cursor (one past the last
  /// consumed character, on the line it lives on).
  void finish(Token& t, std::string text) {
    t.text = std::move(text);
    if (at_end()) {
      t.end_line = static_cast<int>(lines_.size());
      t.end_col = lines_.empty() ? 0 : static_cast<int>(lines_.back().size());
    } else {
      t.end_line = static_cast<int>(li_) + 1;
      t.end_col = static_cast<int>(ci_);
    }
  }

  Token next_token() {
    char c = cur();
    if (c == '/' && peek() == '/') return lex_line_comment();
    if (c == '/' && peek() == '*') return lex_block_comment();
    if (is_ident_start(c)) return lex_ident_or_prefixed_literal();
    if (c == '"') return lex_string(begin(Tok::Str), std::string());
    if (c == '\'') return lex_char(begin(Tok::CharLit), std::string());
    if (is_digit(c) || (c == '.' && is_digit(peek()))) return lex_number();
    return lex_punct();
  }

  Token lex_line_comment() {
    Token t = begin(Tok::Comment);
    std::string text = line().substr(ci_);
    t.end_line = static_cast<int>(li_) + 1;
    t.end_col = static_cast<int>(line().size());
    bool cont = ends_with_continuation(line());
    ++li_;
    ci_ = 0;
    while (cont && !at_end()) {
      text.push_back('\n');
      text.append(line());
      t.end_line = static_cast<int>(li_) + 1;
      t.end_col = static_cast<int>(line().size());
      cont = ends_with_continuation(line());
      ++li_;
      ci_ = 0;
    }
    t.text = std::move(text);
    return t;
  }

  Token lex_block_comment() {
    Token t = begin(Tok::Comment);
    std::string text = "/*";
    advance();
    advance();
    while (!at_end()) {
      if (ci_ < line().size() && cur() == '*' && peek() == '/') {
        text += "*/";
        advance();
        advance();
        finish(t, std::move(text));
        return t;
      }
      text.push_back(cur());  // '\n' at the virtual newline
      advance();
    }
    finish(t, std::move(text));  // unterminated: close at EOF
    return t;
  }

  Token lex_ident_or_prefixed_literal() {
    Token t = begin(Tok::Ident);
    std::string text;
    while (!at_end() && ci_ < line().size() && is_ident_char(cur())) {
      text.push_back(cur());
      ++ci_;
    }
    if (!at_end() && ci_ < line().size()) {
      char nxt = cur();
      bool raw = text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
                 text == "LR";
      bool enc = text == "u8" || text == "u" || text == "U" || text == "L";
      if (nxt == '"' && raw) return lex_raw_string(t, std::move(text));
      if (nxt == '"' && enc) return lex_string(t, std::move(text));
      if (nxt == '\'' && enc) return lex_char(t, std::move(text));
    }
    finish(t, std::move(text));
    return t;
  }

  Token lex_string(Token t, std::string prefix) {
    t.kind = Tok::Str;
    std::string text = std::move(prefix);
    text.push_back('"');
    ++ci_;  // opening quote
    while (ci_ < line().size()) {
      char c = cur();
      if (c == '\\' && ci_ + 1 < line().size()) {
        text.push_back(c);
        ++ci_;
        text.push_back(cur());
        ++ci_;
        continue;
      }
      text.push_back(c);
      ++ci_;
      if (c == '"') break;
    }
    // An unterminated ordinary string closes at end of line (the
    // compiler would reject it; the linter keeps scanning).
    finish(t, std::move(text));
    return t;
  }

  Token lex_char(Token t, std::string prefix) {
    t.kind = Tok::CharLit;
    std::string text = std::move(prefix);
    text.push_back('\'');
    ++ci_;
    while (ci_ < line().size()) {
      char c = cur();
      if (c == '\\' && ci_ + 1 < line().size()) {
        text.push_back(c);
        ++ci_;
        text.push_back(cur());
        ++ci_;
        continue;
      }
      text.push_back(c);
      ++ci_;
      if (c == '\'') break;
    }
    finish(t, std::move(text));
    return t;
  }

  Token lex_raw_string(Token t, std::string prefix) {
    t.kind = Tok::RawStr;
    std::string text = std::move(prefix);
    text.push_back('"');
    ++ci_;  // opening quote
    std::string delim;
    while (ci_ < line().size() && cur() != '(') {
      delim.push_back(cur());
      text.push_back(cur());
      ++ci_;
    }
    if (ci_ < line().size()) {
      text.push_back('(');
      ++ci_;
    }
    const std::string closer = ")" + delim + "\"";
    std::string window;
    while (!at_end()) {
      char c = cur();  // '\n' at the virtual newline
      text.push_back(c);
      window.push_back(c);
      if (window.size() > closer.size()) window.erase(window.begin());
      advance();
      if (window == closer) break;
    }
    finish(t, std::move(text));
    return t;
  }

  Token lex_number() {
    Token t = begin(Tok::Number);
    std::string text;
    while (ci_ < line().size()) {
      char c = cur();
      if (is_ident_char(c) || c == '.' || c == '\'') {
        // A quote continues the number only as a digit separator
        // (`1'000`); otherwise it opens a char literal.
        if (c == '\'' && !is_ident_char(peek())) break;
        text.push_back(c);
        ++ci_;
        continue;
      }
      if ((c == '+' || c == '-') && !text.empty()) {
        char p = text.back();
        if (p == 'e' || p == 'E' || p == 'p' || p == 'P') {
          text.push_back(c);
          ++ci_;
          continue;
        }
      }
      break;
    }
    finish(t, std::move(text));
    return t;
  }

  Token lex_punct() {
    Token t = begin(Tok::Punct);
    char c = cur();
    std::string text(1, c);
    ++ci_;
    if (ci_ < line().size()) {
      if ((c == ':' && cur() == ':') || (c == '-' && cur() == '>')) {
        text.push_back(cur());
        ++ci_;
      }
    }
    finish(t, std::move(text));
    return t;
  }

  const std::vector<std::string>& lines_;
  std::size_t li_ = 0;
  std::size_t ci_ = 0;
  bool in_directive_ = false;
};

}  // namespace

std::vector<Token> tokenize(const std::vector<std::string>& lines) {
  return Lexer(lines).run();
}

std::vector<std::string> stripped_lines(const std::vector<std::string>& lines,
                                        const std::vector<Token>& tokens) {
  std::vector<std::string> out = lines;
  for (const Token& t : tokens) {
    if (t.kind != Tok::Comment) continue;
    std::size_t first = static_cast<std::size_t>(t.line - 1);
    std::size_t last = static_cast<std::size_t>(t.end_line - 1);
    if (first >= out.size()) continue;
    if (last >= out.size()) last = out.size() - 1;
    if (t.text.rfind("//", 0) == 0) {
      // Line comment: truncate at the marker; continuation lines vanish.
      out[first].resize(std::min(out[first].size(), static_cast<std::size_t>(t.col)));
      for (std::size_t l = first + 1; l <= last; ++l) out[l].clear();
    } else {
      // Block comment: blank the covered span, keeping columns stable.
      for (std::size_t l = first; l <= last; ++l) {
        std::size_t from = (l == first) ? static_cast<std::size_t>(t.col) : 0;
        std::size_t to = (l == last)
                             ? std::min(out[l].size(), static_cast<std::size_t>(t.end_col))
                             : out[l].size();
        for (std::size_t i = from; i < to; ++i) out[l][i] = ' ';
      }
    }
  }
  return out;
}

}  // namespace bac::lint
