// SARIF 2.1.0 emission for baclint.
//
// SARIF (Static Analysis Results Interchange Format) is the schema
// GitHub code scanning ingests: uploading the report annotates the PR
// diff with each finding inline. baclint emits one `run` whose driver
// lists every rule and pass (rules first, in table order — ruleIndex is
// an index into that combined list), one `result` per finding, and a
// `suppressions` entry on findings waived by the allowlist or an inline
// `baclint: allow(...)` so code scanning shows them as suppressed
// instead of open.
#pragma once

#include <iosfwd>
#include <vector>

#include "lint/lint.hpp"
#include "lint/passes.hpp"

namespace bac::lint {

/// Write the findings as a SARIF 2.1.0 document. Paths are emitted as
/// given (CI scans with repo-relative roots, which is what code
/// scanning expects); a leading "./" is dropped.
void write_sarif_report(std::ostream& os, const std::vector<Rule>& rules,
                        const std::vector<Pass>& passes,
                        const std::vector<Finding>& findings);

}  // namespace bac::lint
