// Single-pass LRU miss-ratio-vs-k curve (Mattson stack distances).
//
// Feeding every request of a trace yields, in one pass and O(n_pages)
// memory, the stack-distance histogram from which the LRU miss ratio at
// *every* cache size k follows: a request hits a size-k LRU cache iff its
// stack position (1 + #distinct pages touched since its previous access)
// is at most k. Distances are counted with a Fenwick tree over access
// positions; positions are periodically compacted so memory stays bounded
// by the page universe, never by the trace length — this is what lets the
// streaming simulator emit miss-ratio curves for traces that are never
// materialized. (trace/stats.hpp offers an offline variant over a whole
// Instance; this accumulator is its streaming counterpart.)
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace bac {

class MissRatioCurve {
 public:
  explicit MissRatioCurve(int n_pages);

  /// Record the next request of the stream.
  void add(PageId p);

  [[nodiscard]] long long requests() const noexcept { return total_; }
  /// Requests to never-before-seen pages (infinite stack distance).
  [[nodiscard]] long long compulsory_misses() const noexcept {
    return compulsory_;
  }
  /// LRU miss ratio for a cache of k pages (1.0 before any request).
  [[nodiscard]] double miss_ratio(int k) const;
  /// Stack-position histogram: hist[d] = #requests at stack position d+1.
  [[nodiscard]] const std::vector<long long>& histogram() const noexcept {
    return hist_;
  }

 private:
  int n_pages_;
  std::vector<std::int64_t> last_pos_;   // per page: current position, -1 unseen
  std::vector<int> fenwick_;             // 1 at each page's position
  std::int64_t next_pos_ = 0;
  int seen_ = 0;                         // distinct pages observed
  std::size_t capacity_;                 // fenwick slots before compaction
  std::vector<long long> hist_;          // stack positions 1..n (0-indexed)
  long long total_ = 0;
  long long compulsory_ = 0;

  void fenwick_add(std::int64_t pos, int delta);
  [[nodiscard]] int fenwick_suffix(std::int64_t pos) const;  // sum > pos
  void compact();
};

}  // namespace bac
