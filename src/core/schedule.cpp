#include "core/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace bac {

ReplayResult replay_schedule(const Instance& inst, const Schedule& sched) {
  inst.validate();
  ReplayResult out;
  if (sched.horizon() != inst.horizon()) {
    out.feasible = false;
    out.infeasibility = "schedule horizon mismatch";
    return out;
  }

  CacheSet cache(inst.n_pages());
  CostMeter meter(inst.blocks);
  const Time T = inst.horizon();
  for (Time t = 1; t <= T; ++t) {
    meter.begin_step(t);
    const auto& step = sched.steps[static_cast<std::size_t>(t - 1)];
    for (PageId p : step.evictions)
      if (cache.erase(p)) meter.on_evict(p);
    for (PageId p : step.fetches)
      if (cache.insert(p)) meter.on_fetch(p);

    const PageId req = inst.request_at(t);
    if (!cache.contains(req)) {
      out.feasible = false;
      if (out.infeasibility.empty())
        out.infeasibility =
            "requested page absent at t=" + std::to_string(t);
    }
    if (cache.size() > inst.k) {
      out.feasible = false;
      if (out.infeasibility.empty())
        out.infeasibility = "capacity exceeded at t=" + std::to_string(t);
    }
  }
  out.eviction_cost = meter.eviction_cost();
  out.fetch_cost = meter.fetch_cost();
  out.classic_eviction_cost = meter.classic_eviction_cost();
  out.classic_fetch_cost = meter.classic_fetch_cost();
  out.evict_block_events = meter.evict_block_events();
  out.fetch_block_events = meter.fetch_block_events();
  out.evicted_pages = meter.evicted_pages();
  out.fetched_pages = meter.fetched_pages();
  out.final_cache = cache.pages();
  std::sort(out.final_cache.begin(), out.final_cache.end());
  return out;
}

ScheduleCost evaluate(const Instance& inst, const Schedule& sched) {
  const ReplayResult r = replay_schedule(inst, sched);
  ScheduleCost out;
  out.eviction_cost = r.eviction_cost;
  out.fetch_cost = r.fetch_cost;
  out.feasible = r.feasible;
  out.infeasibility = r.infeasibility;
  return out;
}

void SchedulePolicy::reset(const Instance& inst) {
  if (sched_.horizon() != inst.horizon())
    throw std::invalid_argument("SchedulePolicy: horizon mismatch");
}

void SchedulePolicy::on_request(Time t, PageId /*p*/, CacheOps& cache) {
  const auto& step = sched_.steps[static_cast<std::size_t>(t - 1)];
  for (PageId q : step.evictions) cache.evict(q);
  for (PageId q : step.fetches) cache.fetch(q);
}

}  // namespace bac
