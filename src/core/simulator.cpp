#include "core/simulator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/mrc.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace bac {

namespace {

/// Requests consumed from the source per inner-loop iteration: large
/// enough to amortize the virtual next_batch() call and keep the decode
/// and serve loops tight, small enough to stay in L1 (2 KiB).
constexpr int kSimBatch = 512;

/// Requests between `progress` trace events (checked once per batch, so
/// tracing costs one pointer test per 512 requests when disabled).
constexpr long long kTraceProgressStride = 1 << 20;

}  // namespace

RunResult simulate(RequestSource& source, OnlinePolicy& policy,
                   const SimOptions& options) {
  const Instance& ctx = source.context();
  ctx.validate();
  if (policy.requires_future() && !source.materialized())
    throw std::invalid_argument(
        "simulate: offline policy " + policy.name() +
        " needs a materialized instance, not a streaming source");

  CacheSet cache(ctx.n_pages());
  CostMeter meter(ctx.blocks);
  CacheOps ops(ctx.blocks, cache, meter, ctx.k);

  policy.reset(ctx);
  policy.seed(options.seed);

  RunResult result;
  const long long hint = source.horizon_hint();
  if (options.record_steps && hint > 0) {
    result.step_eviction_cost.reserve(static_cast<std::size_t>(hint));
    result.step_fetch_cost.reserve(static_cast<std::size_t>(hint));
  }
  if (options.record_schedule && hint > 0)
    result.schedule.steps.reserve(static_cast<std::size_t>(hint));

  obs::Histogram step_hist;
  const std::string obs_label =
      options.trace == nullptr
          ? std::string()
          : options.trace_label.empty() ? policy.name() : options.trace_label;
  obs::PhaseTimer phase(options.trace, obs_label);
  long long next_progress = kTraceProgressStride;
  std::unique_ptr<MissRatioCurve> mrc;
  if (!options.mrc_ks.empty())
    mrc = std::make_unique<MissRatioCurve>(ctx.n_pages());

  // Materialized sources were validated above; raw streams can still yield
  // garbage, so bound-check their pages as they arrive.
  const bool check_pages = !source.materialized();
  const PageId n_pages = ctx.n_pages();
  const int k = ctx.k;
  constexpr Time kMaxTime = std::numeric_limits<Time>::max();
  Cost prev_evict = 0, prev_fetch = 0;
  Time t = 0;

  // Feasibility audit + repair, shared by both lanes (cold path for any
  // correct policy). The repair runs in ONE backward pass over the
  // member list: CacheSet::erase swap-removes (only indices >= i are
  // disturbed), so scanning from the back visits each page exactly once —
  // the old forward rescan-per-eviction was quadratic in the overflow.
  const auto audit = [&](PageId p) {
    if (!cache.contains(p)) {
      if (options.throw_on_violation)
        throw std::runtime_error("simulate: policy " + policy.name() +
                                 " left requested page uncached at t=" +
                                 std::to_string(t));
      ++result.violations;
      ops.fetch(p);
    }
    if (cache.size() > k) {
      if (options.throw_on_violation)
        throw std::runtime_error("simulate: policy " + policy.name() +
                                 " exceeded capacity at t=" + std::to_string(t));
      ++result.violations;
      const auto& pages = cache.pages();
      for (std::size_t i = pages.size(); cache.size() > k && i-- > 0;) {
        const PageId q = pages[i];
        if (q != p) ops.evict(q);
      }
    }
  };

  const auto check_page = [&](PageId p) {
    // Time is 32-bit throughout the policy layer; refuse to wrap rather
    // than hand policies negative timestamps.
    if (t == kMaxTime)
      throw std::runtime_error(
          "simulate: trace exceeds 2^31-1 requests (Time is 32-bit)");
    if (check_pages && (p < 0 || p >= n_pages))
      throw std::runtime_error(
          "simulate: source yielded page " + std::to_string(p) +
          " outside [0, " + std::to_string(n_pages) + ") at t=" +
          std::to_string(t + 1));
  };

  // The stream is consumed in batches; per-request work is split into two
  // lanes so the common configuration (costs only — every Monte-Carlo
  // trial and throughput bench) pays for none of the recording branches.
  const bool fast_lane = !options.record_steps && !options.record_schedule &&
                         !options.record_sketch && mrc == nullptr;
  PageId batch[kSimBatch];
  for (;;) {
    const int m = source.next_batch(batch, kSimBatch);
    if (m <= 0) break;
    if (fast_lane) {
      for (int i = 0; i < m; ++i) {
        const PageId p = batch[i];
        check_page(p);
        ++t;
        meter.begin_step(t);
        if (!cache.contains(p)) ++result.misses;
        policy.on_request(t, p, ops);
        audit(p);
      }
    } else {
      for (int i = 0; i < m; ++i) {
        const PageId p = batch[i];
        check_page(p);
        ++t;
        meter.begin_step(t);
        if (options.record_schedule) {
          result.schedule.steps.emplace_back();
          auto& step = result.schedule.steps.back();
          ops.set_capture(&step.evictions, &step.fetches);
        }
        if (!cache.contains(p)) ++result.misses;
        if (mrc) mrc->add(p);
        policy.on_request(t, p, ops);
        audit(p);

        if (options.record_steps) {
          result.step_eviction_cost.push_back(meter.eviction_cost() -
                                              prev_evict);
          result.step_fetch_cost.push_back(meter.fetch_cost() - prev_fetch);
        }
        if (options.record_sketch) {
          const Cost step_cost = (meter.eviction_cost() - prev_evict) +
                                 (meter.fetch_cost() - prev_fetch);
          step_hist.add(static_cast<double>(step_cost));
          if (step_cost > result.step_cost_max)
            result.step_cost_max = step_cost;
        }
        prev_evict = meter.eviction_cost();
        prev_fetch = meter.fetch_cost();
      }
    }
    if (options.trace != nullptr && t >= next_progress) {
      obs::TraceEvent e;
      e.type = "progress";
      e.name = obs_label;
      e.num("t", static_cast<double>(t))
          .num("misses", static_cast<double>(result.misses))
          .num("eviction_cost", static_cast<double>(meter.eviction_cost()))
          .num("fetch_cost", static_cast<double>(meter.fetch_cost()));
      options.trace->emit(e);
      while (next_progress <= t) next_progress += kTraceProgressStride;
    }
  }

  result.requests = t;
  result.cached_pages = cache.size();
  if (options.record_schedule) {
    result.final_cache = cache.pages();
    std::sort(result.final_cache.begin(), result.final_cache.end());
    result.capture_cancellations = ops.capture_cancellations();
  }
  if (mrc)
    for (const int k : options.mrc_ks)
      result.miss_curve.emplace_back(k, mrc->miss_ratio(k));
  result.eviction_cost = meter.eviction_cost();
  result.fetch_cost = meter.fetch_cost();
  result.classic_eviction_cost = meter.classic_eviction_cost();
  result.classic_fetch_cost = meter.classic_fetch_cost();
  result.evict_block_events = meter.evict_block_events();
  result.fetch_block_events = meter.fetch_block_events();
  result.evicted_pages = meter.evicted_pages();
  result.fetched_pages = meter.fetched_pages();

  if (options.metrics != nullptr) {
    // Pure event counts — deterministic for a fixed (source, policy,
    // seed) at any thread count, so CI can diff them across runs.
    obs::MetricRegistry& m = *options.metrics;
    m.counter("sim_requests_total").inc(static_cast<std::uint64_t>(t));
    m.counter("sim_misses_total")
        .inc(static_cast<std::uint64_t>(result.misses));
    m.counter("sim_hits_total")
        .inc(static_cast<std::uint64_t>(t - result.misses));
    m.counter("sim_eviction_cost_total")
        .inc(static_cast<std::uint64_t>(result.eviction_cost));
    m.counter("sim_fetch_cost_total")
        .inc(static_cast<std::uint64_t>(result.fetch_cost));
    m.counter("sim_flush_events_total")
        .inc(static_cast<std::uint64_t>(result.evict_block_events));
    m.counter("sim_fetch_events_total")
        .inc(static_cast<std::uint64_t>(result.fetch_block_events));
    m.counter("sim_evicted_pages_total")
        .inc(static_cast<std::uint64_t>(result.evicted_pages));
    m.counter("sim_fetched_pages_total")
        .inc(static_cast<std::uint64_t>(result.fetched_pages));
    if (options.record_sketch) m.merge_histogram("sim_step_cost", step_hist);
    // Policy-side structural counters (ghost hits, hand sweeps, ARC p
    // adjustments, block flushes) — the "why did this policy win" layer
    // on top of the cost counters above. No-op for policies without them.
    policy.export_metrics(m);
  }
  if (options.trace != nullptr) {
    // Boundary counters ride on the phase_end event (with dur_ms).
    phase.num("requests", static_cast<double>(t));
    phase.num("misses", static_cast<double>(result.misses));
    phase.num("eviction_cost", static_cast<double>(result.eviction_cost));
    phase.num("fetch_cost", static_cast<double>(result.fetch_cost));
    phase.num("flush_events", static_cast<double>(result.evict_block_events));
    phase.num("fetch_events", static_cast<double>(result.fetch_block_events));
    phase.num("violations", static_cast<double>(result.violations));
  }
  if (options.record_sketch) {
    result.step_cost_p50 = step_hist.quantile(0.50);
    result.step_cost_p90 = step_hist.quantile(0.90);
    result.step_cost_p99 = step_hist.quantile(0.99);
    result.step_cost_hist = std::move(step_hist);
  }
  return result;
}

RunResult simulate(const Instance& inst, OnlinePolicy& policy,
                   const SimOptions& options) {
  InstanceSource source(inst);
  return simulate(source, policy, options);
}

namespace {

std::uint64_t trial_seed(std::uint64_t root_seed, int trial) {
  return root_seed + static_cast<std::uint64_t>(trial) * 0x9e3779b97f4a7c15ULL;
}

MonteCarloResult reduce_trials(const std::vector<RunResult>& runs) {
  // Index-order reduction: identical output for any execution order.
  StreamingStats evict, fetch, total;
  long long requests = 0;
  for (const RunResult& r : runs) {
    evict.add(r.eviction_cost);
    fetch.add(r.fetch_cost);
    total.add(r.eviction_cost + r.fetch_cost);
    requests += r.requests;
  }
  MonteCarloResult out;
  out.mean_eviction_cost = evict.mean();
  out.mean_fetch_cost = fetch.mean();
  out.stddev_eviction_cost = evict.stddev();
  out.stddev_fetch_cost = fetch.stddev();
  out.mean_total_cost = total.mean();
  out.stddev_total_cost = total.stddev();
  out.total_requests = requests;
  out.trials = static_cast<int>(runs.size());
  return out;
}

SimOptions trial_options(std::uint64_t root_seed, int trial) {
  SimOptions options;
  options.seed = trial_seed(root_seed, trial);
  options.record_sketch = false;  // trials only aggregate totals
  return options;
}

}  // namespace

MonteCarloResult simulate_mc(const Instance& inst, OnlinePolicy& policy,
                             int trials, std::uint64_t root_seed) {
  if (trials <= 0) return {};
  std::vector<RunResult> runs(static_cast<std::size_t>(trials));
  ThreadPool& pool = global_pool();
  // Clone up front (serially — clones copy the prototype, which must not
  // be mutated concurrently). The last trial runs on the prototype itself
  // so callers that read policy state afterwards see a completed run,
  // matching the serial semantics ("reflects the last trial").
  std::vector<std::unique_ptr<OnlinePolicy>> clones;
  if (trials > 1 && pool.size() > 1) {
    clones.reserve(static_cast<std::size_t>(trials) - 1);
    for (int i = 0; i + 1 < trials; ++i) {
      auto c = policy.clone();
      if (!c) {
        clones.clear();
        break;
      }
      clones.push_back(std::move(c));
    }
  }
  if (!clones.empty()) {
    pool.parallel_for_indexed(
        static_cast<std::size_t>(trials), [&](std::size_t i) {
          OnlinePolicy& trial_policy =
              i + 1 == static_cast<std::size_t>(trials) ? policy : *clones[i];
          runs[i] = simulate(inst, trial_policy,
                             trial_options(root_seed, static_cast<int>(i)));
        });
  } else {
    for (int i = 0; i < trials; ++i)
      runs[static_cast<std::size_t>(i)] =
          simulate(inst, policy, trial_options(root_seed, i));
  }
  return reduce_trials(runs);
}

MonteCarloResult simulate_mc(
    const std::function<std::unique_ptr<RequestSource>()>& make_source,
    const std::function<std::unique_ptr<OnlinePolicy>()>& make_policy,
    int trials, std::uint64_t root_seed) {
  if (trials <= 0) return {};
  std::vector<RunResult> runs(static_cast<std::size_t>(trials));
  ThreadPool& pool = global_pool();
  if (trials > 1 && pool.size() > 1) {
    pool.parallel_for_indexed(
        static_cast<std::size_t>(trials), [&](std::size_t i) {
          const auto source = make_source();
          const auto policy = make_policy();
          runs[i] = simulate(*source, *policy,
                             trial_options(root_seed, static_cast<int>(i)));
        });
  } else {
    const auto source = make_source();
    const auto policy = make_policy();
    for (int i = 0; i < trials; ++i) {
      source->rewind();
      runs[static_cast<std::size_t>(i)] =
          simulate(*source, *policy, trial_options(root_seed, i));
    }
  }
  return reduce_trials(runs);
}

}  // namespace bac
