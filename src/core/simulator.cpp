#include "core/simulator.hpp"

#include <stdexcept>
#include <string>

#include "util/stats.hpp"

namespace bac {

RunResult simulate(const Instance& inst, OnlinePolicy& policy,
                   const SimOptions& options) {
  inst.validate();
  CacheSet cache(inst.n_pages());
  CostMeter meter(inst.blocks);
  CacheOps ops(inst.blocks, cache, meter, inst.k);

  policy.reset(inst);
  policy.seed(options.seed);

  RunResult result;
  const Time T = inst.horizon();
  if (options.record_steps) {
    result.step_eviction_cost.reserve(static_cast<std::size_t>(T));
    result.step_fetch_cost.reserve(static_cast<std::size_t>(T));
  }
  if (options.record_schedule)
    result.schedule.steps.resize(static_cast<std::size_t>(T));

  Cost prev_evict = 0, prev_fetch = 0;
  for (Time t = 1; t <= T; ++t) {
    const PageId p = inst.request_at(t);
    meter.begin_step(t);
    if (options.record_schedule) {
      auto& step = result.schedule.steps[static_cast<std::size_t>(t - 1)];
      ops.set_capture(&step.evictions, &step.fetches);
    }
    if (!cache.contains(p)) ++result.misses;
    policy.on_request(t, p, ops);

    // Feasibility audit: requested page present, capacity respected.
    if (!cache.contains(p)) {
      if (options.throw_on_violation)
        throw std::runtime_error("simulate: policy " + policy.name() +
                                 " left requested page uncached at t=" +
                                 std::to_string(t));
      ++result.violations;
      ops.fetch(p);
    }
    if (cache.size() > inst.k) {
      if (options.throw_on_violation)
        throw std::runtime_error("simulate: policy " + policy.name() +
                                 " exceeded capacity at t=" + std::to_string(t));
      ++result.violations;
      // Repair: evict arbitrary non-requested pages.
      while (cache.size() > inst.k) {
        for (PageId q : cache.pages()) {
          if (q != p) {
            ops.evict(q);
            break;
          }
        }
      }
    }

    if (options.record_steps) {
      result.step_eviction_cost.push_back(meter.eviction_cost() - prev_evict);
      result.step_fetch_cost.push_back(meter.fetch_cost() - prev_fetch);
      prev_evict = meter.eviction_cost();
      prev_fetch = meter.fetch_cost();
    }
  }

  result.eviction_cost = meter.eviction_cost();
  result.fetch_cost = meter.fetch_cost();
  result.classic_eviction_cost = meter.classic_eviction_cost();
  result.classic_fetch_cost = meter.classic_fetch_cost();
  result.evict_block_events = meter.evict_block_events();
  result.fetch_block_events = meter.fetch_block_events();
  result.evicted_pages = meter.evicted_pages();
  result.fetched_pages = meter.fetched_pages();
  return result;
}

MonteCarloResult simulate_mc(const Instance& inst, OnlinePolicy& policy,
                             int trials, std::uint64_t root_seed) {
  StreamingStats evict, fetch;
  for (int i = 0; i < trials; ++i) {
    SimOptions options;
    options.seed = root_seed + static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
    const RunResult r = simulate(inst, policy, options);
    evict.add(r.eviction_cost);
    fetch.add(r.fetch_cost);
  }
  MonteCarloResult out;
  out.mean_eviction_cost = evict.mean();
  out.mean_fetch_cost = fetch.mean();
  out.stddev_eviction_cost = evict.stddev();
  out.stddev_fetch_cost = fetch.stddev();
  out.trials = trials;
  return out;
}

}  // namespace bac
