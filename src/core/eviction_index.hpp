// Flat, page-indexed eviction-index primitives for the simulation hot path.
//
// Every classical policy orders its eviction candidates somehow — by
// recency, arrival, frequency, credit, or next use. The textbook container
// for that is std::set<std::pair<Key, PageId>>: a node-allocating red-black
// tree touched 1-3 times per request. Both orders the policies actually
// need admit flat array structures with no per-operation allocation:
//
//   - IntrusiveOrderList: a doubly-linked list threaded through two
//     std::vector<int32_t> (prev/next per id). Recency and arrival orders
//     insert strictly increasing timestamps, so set order == insertion
//     order and O(1) push_back/erase/pop_front reproduce it exactly.
//   - LazyMinHeap<Key>: a 4-ary heap over a flat entry array with lazy
//     deletion. Priority orders (LFU frequency, GreedyDual credit, Belady
//     next-use) update keys on hits; instead of erasing the old entry we
//     bump the id's epoch, push a fresh entry, and skip stale entries
//     (stamp != current epoch) at pop time. Ties break on id through the
//     pair comparator, matching std::set<std::pair<Key, id>> exactly.
//
// Both structures reuse their storage across reset() calls, so a policy
// swept over thousands of (workload, k) cells stops hammering the
// allocator — reset is O(n) writes into vectors that are already sized.
//
// Determinism: pop() always extracts the comparator-minimum *valid* entry,
// which is unique (at most one valid entry per id), so results are
// independent of the heap's internal layout. Policies rewritten from
// std::set onto these primitives produce bit-identical schedules; the
// verify subsystem's policy_equivalence oracle family replays randomized
// instances against frozen std::set reference twins to prove it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

namespace bac {

/// Doubly-linked list over dense ids [0, n) with O(1) push_back / erase /
/// pop_front and no allocation after reset(). Iteration order is insertion
/// order; for timestamp-keyed recency sets (strictly increasing keys) that
/// is exactly std::set order with front() == the minimum.
class IntrusiveOrderList {
 public:
  static constexpr std::int32_t kNone = -1;

  /// Size for ids [0, n), dropping all links. Storage is reused: after the
  /// first reset at a given n, subsequent resets allocate nothing.
  void reset(int n) {
    prev_.assign(static_cast<std::size_t>(n), kUnlinked);
    next_.assign(static_cast<std::size_t>(n), kUnlinked);
    head_ = tail_ = kNone;
    size_ = 0;
  }

  [[nodiscard]] bool contains(std::int32_t id) const noexcept {
    return prev_[static_cast<std::size_t>(id)] != kUnlinked;
  }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] int size() const noexcept { return size_; }
  /// Oldest id, or kNone when empty.
  [[nodiscard]] std::int32_t front() const noexcept { return head_; }
  /// Newest id, or kNone when empty.
  [[nodiscard]] std::int32_t back() const noexcept { return tail_; }
  /// The id one step newer than `id` (kNone at the newest end).
  /// Precondition: contains(id). This is what a clock hand walks.
  [[nodiscard]] std::int32_t next(std::int32_t id) const noexcept {
    return next_[static_cast<std::size_t>(id)];
  }
  /// The id one step older than `id` (kNone at the oldest end).
  /// Precondition: contains(id).
  [[nodiscard]] std::int32_t prev(std::int32_t id) const noexcept {
    return prev_[static_cast<std::size_t>(id)];
  }
  /// Ids the list was reset() for (capacity of the id space, not size()).
  [[nodiscard]] int id_limit() const noexcept {
    return static_cast<int>(prev_.size());
  }

  /// Append id as most-recent. Precondition: !contains(id).
  void push_back(std::int32_t id) {
    const auto i = static_cast<std::size_t>(id);
    prev_[i] = tail_;
    next_[i] = kNone;
    if (tail_ != kNone) next_[static_cast<std::size_t>(tail_)] = id;
    tail_ = id;
    if (head_ == kNone) head_ = id;
    ++size_;
  }

  /// Unlink id. Precondition: contains(id).
  void erase(std::int32_t id) {
    const auto i = static_cast<std::size_t>(id);
    const std::int32_t p = prev_[i];
    const std::int32_t n = next_[i];
    if (p != kNone) next_[static_cast<std::size_t>(p)] = n;
    else head_ = n;
    if (n != kNone) prev_[static_cast<std::size_t>(n)] = p;
    else tail_ = p;
    prev_[i] = next_[i] = kUnlinked;
    --size_;
  }

  /// Remove and return the oldest id (kNone when empty).
  std::int32_t pop_front() {
    const std::int32_t id = head_;
    if (id != kNone) erase(id);
    return id;
  }

  /// Move id to most-recent, inserting it if absent (the LRU "touch").
  void touch(std::int32_t id) {
    if (contains(id)) erase(id);
    push_back(id);
  }

 private:
  static constexpr std::int32_t kUnlinked = -2;  ///< id not in the list
  std::vector<std::int32_t> prev_;  ///< kNone at head, kUnlinked if absent
  std::vector<std::int32_t> next_;
  std::int32_t head_ = kNone;
  std::int32_t tail_ = kNone;
  int size_ = 0;
};

/// 4-ary min-heap over (Key, id) pairs with lazy deletion, for priority
/// eviction orders whose keys change on hits. `PairLess` orders the pairs
/// (std::less reproduces std::set<std::pair<Key, id>>::begin as pop();
/// std::greater turns it into a max-heap, reproducing rbegin()).
///
/// Key updates do not search the heap: the id's epoch is bumped (making
/// any older entry stale) and a freshly stamped entry is pushed. pop()
/// discards stale entries from the root until a valid one surfaces. The
/// entry array self-compacts when stale entries outnumber live ones, so
/// memory stays O(live + transient stale) and no stale entry survives a
/// compaction — which also makes the 32-bit epoch safe: the epoch only
/// wraps after 2^32 bumps of one id, and the wrap triggers a compaction
/// first, so a wrapped stamp can never alias a surviving stale entry.
template <typename Key,
          typename PairLess = std::less<std::pair<Key, std::int32_t>>>
class LazyMinHeap {
 public:
  /// Size for ids [0, n), dropping all entries. Storage (the entry array
  /// and the per-id epoch/membership tables) is reused across resets.
  void reset(int n) {
    entries_.clear();
    epoch_.assign(static_cast<std::size_t>(n), 0);
    in_.assign(static_cast<std::size_t>(n), 0);
    live_ = 0;
  }

  [[nodiscard]] bool contains(std::int32_t id) const noexcept {
    return in_[static_cast<std::size_t>(id)] != 0;
  }
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] int size() const noexcept { return live_; }

  /// Insert id with `key`. Precondition: !contains(id).
  void push(std::int32_t id, Key key) {
    in_[static_cast<std::size_t>(id)] = 1;
    push_entry(id, key);
    ++live_;
  }

  /// Change id's key (hit-path refresh). Precondition: contains(id).
  void update(std::int32_t id, Key key) {
    bump_epoch(id);  // strands the old entry as stale
    push_entry(id, key);
  }

  /// Remove id without extracting it. Precondition: contains(id).
  void erase(std::int32_t id) {
    in_[static_cast<std::size_t>(id)] = 0;
    --live_;
    bump_epoch(id);
  }

  /// Extract the comparator-minimum valid entry into (id, key); false when
  /// empty. Deterministic: the valid minimum is unique, so the result does
  /// not depend on the heap's internal layout.
  bool pop(std::int32_t& id, Key& key) {
    for (;;) {
      if (entries_.empty()) return false;
      const Entry top = entries_.front();
      remove_root();
      if (!valid(top)) continue;
      id = top.id;
      key = top.key;
      in_[static_cast<std::size_t>(id)] = 0;
      --live_;
      bump_epoch(id);
      return true;
    }
  }

  /// Entries currently stored, including stale ones (introspection/tests).
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] std::size_t entry_capacity() const noexcept {
    return entries_.capacity();
  }

  /// Drop every stale entry and restore the heap property. O(entries).
  void compact() {
    std::size_t kept = 0;
    for (const Entry& e : entries_)
      if (valid(e)) entries_[kept++] = e;
    entries_.resize(kept);
    // Floyd heapify: sift down from the last internal node.
    if (kept > 1)
      for (std::size_t i = (kept - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }

  /// Test-only: read / force an id's epoch (to exercise the wrap path
  /// without 2^32 updates). Forcing an epoch strands the id's current
  /// entry, so only use it on ids that are not in the heap.
  [[nodiscard]] std::uint32_t debug_epoch(std::int32_t id) const noexcept {
    return epoch_[static_cast<std::size_t>(id)];
  }
  void debug_set_epoch(std::int32_t id, std::uint32_t e) noexcept {
    epoch_[static_cast<std::size_t>(id)] = e;
  }

 private:
  struct Entry {
    Key key;
    std::int32_t id;
    std::uint32_t epoch;  ///< stale unless == epoch_[id]
  };

  [[nodiscard]] bool valid(const Entry& e) const noexcept {
    const auto i = static_cast<std::size_t>(e.id);
    return in_[i] != 0 && epoch_[i] == e.epoch;
  }

  [[nodiscard]] bool entry_less(const Entry& a, const Entry& b) const {
    return PairLess{}(std::pair<Key, std::int32_t>(a.key, a.id),
                      std::pair<Key, std::int32_t>(b.key, b.id));
  }

  void bump_epoch(std::int32_t id) {
    auto& e = epoch_[static_cast<std::size_t>(id)];
    if (e == std::numeric_limits<std::uint32_t>::max()) compact();
    ++e;  // wraps to 0 after a compaction purged all stale entries
  }

  void push_entry(std::int32_t id, Key key) {
    // Amortized stale control: when stale entries outnumber live ones 3:1
    // (and the array is past a trivial size), purge them before growing.
    // The ratio trades a little memory for compaction frequency: after a
    // compact the array is all-live, so 3*live pushes are amortized
    // against each O(entries) purge.
    if (entries_.size() > 64 &&
        entries_.size() > 4 * static_cast<std::size_t>(live_) + 1)
      compact();
    entries_.push_back(
        Entry{key, id, epoch_[static_cast<std::size_t>(id)]});
    sift_up(entries_.size() - 1);
  }

  void remove_root() {
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
  }

  void sift_up(std::size_t i) {
    const Entry e = entries_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!entry_less(e, entries_[parent])) break;
      entries_[i] = entries_[parent];
      i = parent;
    }
    entries_[i] = e;
  }

  void sift_down(std::size_t i) {
    const Entry e = entries_[i];
    const std::size_t n = entries_.size();
    for (;;) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + 4, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c)
        if (entry_less(entries_[c], entries_[best])) best = c;
      if (!entry_less(entries_[best], e)) break;
      entries_[i] = entries_[best];
      i = best;
    }
    entries_[i] = e;
  }

  std::vector<Entry> entries_;        ///< heap array, live + stale
  std::vector<std::uint32_t> epoch_;  ///< per id: current stamp
  std::vector<char> in_;              ///< per id: has a valid entry
  int live_ = 0;
};

/// Several bounded FIFO queues threaded through one shared set of
/// prev/next/segment arrays over dense ids [0, n). Supports O(1)
/// push_back, pop_front, erase, and promote/demote between segments
/// (move_back), with no allocation after reset() — the backbone of
/// segmented policies like S3-FIFO (small/main) and ARC (T1/T2).
/// Membership is exclusive: an id lives in at most one segment.
class SegmentedFifo {
 public:
  static constexpr std::int32_t kNone = -1;

  /// Size for ids [0, n) with `segments` queues, dropping all links.
  /// Storage is reused: after the first reset at a given (n, segments),
  /// subsequent resets allocate nothing.
  void reset(int n, int segments) {
    prev_.assign(static_cast<std::size_t>(n), kNone);
    next_.assign(static_cast<std::size_t>(n), kNone);
    seg_.assign(static_cast<std::size_t>(n), kNoSegment);
    head_.assign(static_cast<std::size_t>(segments), kNone);
    tail_.assign(static_cast<std::size_t>(segments), kNone);
    size_.assign(static_cast<std::size_t>(segments), 0);
  }

  [[nodiscard]] bool contains(std::int32_t id) const noexcept {
    return seg_[static_cast<std::size_t>(id)] != kNoSegment;
  }
  /// Segment holding id, or kNone when absent.
  [[nodiscard]] int segment_of(std::int32_t id) const noexcept {
    const std::int32_t s = seg_[static_cast<std::size_t>(id)];
    return s == kNoSegment ? kNone : s;
  }
  [[nodiscard]] int size(int segment) const noexcept {
    return size_[static_cast<std::size_t>(segment)];
  }
  [[nodiscard]] int total_size() const noexcept {
    int total = 0;
    for (const int s : size_) total += s;
    return total;
  }
  /// Oldest id in `segment`, or kNone when that queue is empty.
  [[nodiscard]] std::int32_t front(int segment) const noexcept {
    return head_[static_cast<std::size_t>(segment)];
  }

  /// Append id at the tail (newest end) of `segment`.
  /// Precondition: !contains(id).
  void push_back(int segment, std::int32_t id) {
    const auto i = static_cast<std::size_t>(id);
    const auto s = static_cast<std::size_t>(segment);
    prev_[i] = tail_[s];
    next_[i] = kNone;
    seg_[i] = segment;
    if (tail_[s] != kNone) next_[static_cast<std::size_t>(tail_[s])] = id;
    tail_[s] = id;
    if (head_[s] == kNone) head_[s] = id;
    ++size_[s];
  }

  /// Unlink id from whichever segment holds it. Precondition: contains(id).
  void erase(std::int32_t id) {
    const auto i = static_cast<std::size_t>(id);
    const auto s = static_cast<std::size_t>(seg_[i]);
    const std::int32_t p = prev_[i];
    const std::int32_t n = next_[i];
    if (p != kNone) next_[static_cast<std::size_t>(p)] = n;
    else head_[s] = n;
    if (n != kNone) prev_[static_cast<std::size_t>(n)] = p;
    else tail_[s] = p;
    prev_[i] = next_[i] = kNone;
    seg_[i] = kNoSegment;
    --size_[s];
  }

  /// Remove and return the oldest id of `segment` (kNone when empty).
  std::int32_t pop_front(int segment) {
    const std::int32_t id = head_[static_cast<std::size_t>(segment)];
    if (id != kNone) erase(id);
    return id;
  }

  /// Move id to the tail of `to_segment` — the O(1) promote/demote (a
  /// same-segment move is the FIFO "reinsert"). Precondition: contains(id).
  void move_back(std::int32_t id, int to_segment) {
    erase(id);
    push_back(to_segment, id);
  }

 private:
  static constexpr std::int32_t kNoSegment = -1;
  std::vector<std::int32_t> prev_;  ///< within the id's segment queue
  std::vector<std::int32_t> next_;
  std::vector<std::int32_t> seg_;   ///< kNoSegment when absent
  std::vector<std::int32_t> head_;  ///< per segment: oldest id
  std::vector<std::int32_t> tail_;  ///< per segment: newest id
  std::vector<int> size_;
};

/// Fixed-capacity recency ghost list over dense ids [0, n): remembers the
/// most recent `capacity` inserted ids in insertion order, silently
/// dropping the oldest when full. Entries are stamped with a monotone
/// insertion epoch (introspection: "how long ago was this evicted").
/// No allocation per request — everything lives in arrays sized at
/// reset(), and the intrusive recency list makes every operation O(1).
class GhostTable {
 public:
  static constexpr std::int32_t kNone = -1;

  /// Size for ids [0, n) with room for `capacity` ghosts, dropping all
  /// entries and restarting the stamp clock. Storage is reused across
  /// resets at the same n.
  void reset(int n, int capacity) {
    order_.reset(n);
    stamp_.assign(static_cast<std::size_t>(n), 0);
    capacity_ = capacity;
    clock_ = 0;
  }

  [[nodiscard]] bool contains(std::int32_t id) const noexcept {
    return order_.contains(id);
  }
  [[nodiscard]] int size() const noexcept { return order_.size(); }
  [[nodiscard]] int capacity() const noexcept { return capacity_; }
  /// Oldest remembered ghost, or kNone when empty.
  [[nodiscard]] std::int32_t front() const noexcept { return order_.front(); }
  /// Insertion epoch of a currently remembered id (1-based, monotone).
  /// Precondition: contains(id).
  [[nodiscard]] std::uint64_t stamp_of(std::int32_t id) const noexcept {
    return stamp_[static_cast<std::size_t>(id)];
  }

  /// Remember id as the most recent ghost, re-stamping it if already
  /// present. Returns the id dropped to make room (kNone if none was).
  std::int32_t insert(std::int32_t id) {
    std::int32_t dropped = kNone;
    if (order_.contains(id)) {
      order_.erase(id);
    } else if (capacity_ <= 0) {
      return dropped;  // degenerate capacity: remember nothing
    } else if (order_.size() >= capacity_) {
      dropped = order_.pop_front();
    }
    order_.push_back(id);
    stamp_[static_cast<std::size_t>(id)] = ++clock_;
    return dropped;
  }

  /// Forget id (the "ghost hit consumed" transition). No-op when absent.
  void erase(std::int32_t id) {
    if (order_.contains(id)) order_.erase(id);
  }

  /// Drop and return the oldest ghost (kNone when empty).
  std::int32_t pop_front() { return order_.pop_front(); }

 private:
  IntrusiveOrderList order_;         ///< front = oldest ghost
  std::vector<std::uint64_t> stamp_;  ///< per id: last insertion epoch
  int capacity_ = 0;
  std::uint64_t clock_ = 0;
};

/// Per-page (or per-block) metadata vector: the freq counters, visited
/// bits, and membership tags every policy keeps alongside its queues.
/// reset() assigns in place, so storage is reused across sweep cells,
/// and the int32 index operator absorbs the static_cast<std::size_t>
/// noise that otherwise spreads through every policy.
template <typename T>
class PageMeta {
 public:
  /// Size for ids [0, n), setting every slot to `init`. Reuses storage.
  void reset(int n, T init = T{}) {
    slots_.assign(static_cast<std::size_t>(n), init);
  }

  [[nodiscard]] T& operator[](std::int32_t id) noexcept {
    return slots_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const T& operator[](std::int32_t id) const noexcept {
    return slots_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(slots_.size());
  }

 private:
  std::vector<T> slots_;
};

}  // namespace bac
