// Fundamental identifier and cost types for the block-aware caching model.
//
// Conventions used throughout the library (matching the paper, Section 2):
//   - Pages are 0..n-1, blocks are 0..m-1; each page belongs to one block.
//   - Requests happen at times t = 1..T (1-based, as in the paper).
//   - Flushes/evictions may also be scheduled at time 0 ("clear the initial
//     cache for free"); r(p, t) == kNeverRequested (= -1) for pages never
//     requested up to t, so the paper's condition r(p,tau) < t <= tau works
//     verbatim with integer times.
#pragma once

#include <cstdint>

namespace bac {

using PageId = std::int32_t;
using BlockId = std::int32_t;
using Time = std::int32_t;
using Cost = double;

/// r(p, t) value when page p has not been requested at or before t.
inline constexpr Time kNeverRequested = -1;

}  // namespace bac
