// Partition of the page universe into blocks with per-block costs.
//
// This is the static structure of a block-aware caching instance: fetching
// (or evicting) any non-empty subset of one block in one time step costs the
// block's cost c_B once (Section 2 of the paper). The weighted setting
// (per-block costs, aspect ratio Delta) is supported throughout.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"

namespace bac {

class BlockMap {
 public:
  /// Build from an explicit page -> block assignment and per-block costs.
  /// Requires every block id in [0, block_costs.size()) and positive costs.
  BlockMap(std::vector<BlockId> page_to_block, std::vector<Cost> block_costs);

  /// n pages in contiguous blocks of `block_size` (last may be smaller),
  /// all with the same cost. The unweighted setting of the paper.
  static BlockMap contiguous(int n_pages, int block_size, Cost cost = 1.0);

  /// n pages in contiguous blocks of `block_size` with explicit costs
  /// (size must equal ceil(n_pages / block_size)).
  static BlockMap contiguous_weighted(int n_pages, int block_size,
                                      std::vector<Cost> block_costs);

  [[nodiscard]] int n_pages() const noexcept {
    return static_cast<int>(page_to_block_.size());
  }
  [[nodiscard]] int n_blocks() const noexcept {
    return static_cast<int>(block_costs_.size());
  }
  [[nodiscard]] BlockId block_of(PageId p) const { return page_to_block_[static_cast<std::size_t>(p)]; }
  [[nodiscard]] Cost cost(BlockId b) const { return block_costs_[static_cast<std::size_t>(b)]; }
  [[nodiscard]] std::span<const PageId> pages_in(BlockId b) const {
    const auto begin = block_offsets_[static_cast<std::size_t>(b)];
    const auto end = block_offsets_[static_cast<std::size_t>(b) + 1];
    return {block_pages_.data() + begin, block_pages_.data() + end};
  }
  [[nodiscard]] int block_size(BlockId b) const {
    return static_cast<int>(pages_in(b).size());
  }

  /// beta: the maximum block size.
  [[nodiscard]] int beta() const noexcept { return beta_; }
  [[nodiscard]] Cost min_cost() const noexcept { return min_cost_; }
  [[nodiscard]] Cost max_cost() const noexcept { return max_cost_; }
  /// Delta = c_max / c_min.
  [[nodiscard]] double aspect_ratio() const noexcept {
    return max_cost_ / min_cost_;
  }
  [[nodiscard]] Cost total_block_cost() const noexcept { return total_cost_; }

 private:
  std::vector<BlockId> page_to_block_;
  std::vector<Cost> block_costs_;
  std::vector<PageId> block_pages_;        // pages grouped by block
  std::vector<std::size_t> block_offsets_; // n_blocks + 1 offsets into block_pages_
  int beta_ = 0;
  Cost min_cost_ = 0, max_cost_ = 0, total_cost_ = 0;
};

}  // namespace bac
