// Partition of the page universe into blocks with per-block costs.
//
// This is the static structure of a block-aware caching instance: fetching
// (or evicting) any non-empty subset of one block in one time step costs the
// block's cost c_B once (Section 2 of the paper). The weighted setting
// (per-block costs, aspect ratio Delta) is supported throughout.
//
// A BlockMap is immutable after construction and holds its data behind a
// shared handle, so copies are O(1) reference bumps rather than O(n_pages)
// vector clones. Every Instance header derived from the same trace (k-sweep
// overrides, per-shard server headers, streaming-source contexts) therefore
// shares one physical block structure.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace bac {

class BlockMap {
 public:
  /// Empty placeholder (0 pages, 0 blocks) so aggregates like Instance are
  /// default-constructible; Instance::validate() rejects it (k <= 0 or a
  /// request to a nonexistent page) before any simulation touches it.
  BlockMap();

  /// Build from an explicit page -> block assignment and per-block costs.
  /// Requires every block id in [0, block_costs.size()) and positive costs.
  BlockMap(std::vector<BlockId> page_to_block, std::vector<Cost> block_costs);

  /// n pages in contiguous blocks of `block_size` (last may be smaller),
  /// all with the same cost. The unweighted setting of the paper.
  static BlockMap contiguous(int n_pages, int block_size, Cost cost = 1.0);

  /// n pages in contiguous blocks of `block_size` with explicit costs
  /// (size must equal ceil(n_pages / block_size)).
  static BlockMap contiguous_weighted(int n_pages, int block_size,
                                      std::vector<Cost> block_costs);

  [[nodiscard]] int n_pages() const noexcept {
    return static_cast<int>(data_->page_to_block.size());
  }
  [[nodiscard]] int n_blocks() const noexcept {
    return static_cast<int>(data_->block_costs.size());
  }
  [[nodiscard]] BlockId block_of(PageId p) const {
    return data_->page_to_block[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] Cost cost(BlockId b) const {
    return data_->block_costs[static_cast<std::size_t>(b)];
  }
  [[nodiscard]] std::span<const PageId> pages_in(BlockId b) const {
    const auto begin = data_->block_offsets[static_cast<std::size_t>(b)];
    const auto end = data_->block_offsets[static_cast<std::size_t>(b) + 1];
    return {data_->block_pages.data() + begin,
            data_->block_pages.data() + end};
  }
  [[nodiscard]] int block_size(BlockId b) const {
    return static_cast<int>(pages_in(b).size());
  }

  /// beta: the maximum block size.
  [[nodiscard]] int beta() const noexcept { return data_->beta; }
  [[nodiscard]] Cost min_cost() const noexcept { return data_->min_cost; }
  [[nodiscard]] Cost max_cost() const noexcept { return data_->max_cost; }
  /// Delta = c_max / c_min.
  [[nodiscard]] double aspect_ratio() const noexcept {
    return data_->max_cost / data_->min_cost;
  }
  [[nodiscard]] Cost total_block_cost() const noexcept {
    return data_->total_cost;
  }

  /// True when `other` is a copy sharing this map's physical data (the
  /// k-sweep and the sharded server rely on copies being O(1); tests
  /// assert it through this).
  [[nodiscard]] bool shares_structure(const BlockMap& other) const noexcept {
    return data_ == other.data_;
  }

 private:
  struct Data {
    std::vector<BlockId> page_to_block;
    std::vector<Cost> block_costs;
    std::vector<PageId> block_pages;        // pages grouped by block
    std::vector<std::size_t> block_offsets; // n_blocks + 1 offsets
    int beta = 0;
    Cost min_cost = 0, max_cost = 0, total_cost = 0;
  };
  std::shared_ptr<const Data> data_;
};

}  // namespace bac
