// Policy interfaces and the cache-operations facade handed to policies.
//
// A policy serves each request by mutating the cache through CacheOps;
// the simulator owns the actual cache state and cost meter, audits
// feasibility after every step, and reports costs under both cost models.
// Offline algorithms receive the full Instance in reset() and may read the
// future; online algorithms must only use what they have seen (the tests
// include a prefix-consistency check for the online ones).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/cache_set.hpp"
#include "core/cost_meter.hpp"
#include "core/instance.hpp"
#include "core/types.hpp"

namespace bac::obs {
class MetricRegistry;
}  // namespace bac::obs

namespace bac {

/// Mutating facade over the simulator's cache; all costs flow through here.
class CacheOps {
 public:
  CacheOps(const BlockMap& blocks, CacheSet& cache, CostMeter& meter, int k)
      : blocks_(&blocks), cache_(&cache), meter_(&meter), k_(k) {}

  [[nodiscard]] bool contains(PageId p) const noexcept {
    return cache_->contains(p);
  }
  [[nodiscard]] int size() const noexcept { return cache_->size(); }
  [[nodiscard]] int capacity() const noexcept { return k_; }
  [[nodiscard]] const std::vector<PageId>& pages() const noexcept {
    return cache_->pages();
  }
  [[nodiscard]] const BlockMap& blocks() const noexcept { return *blocks_; }

  /// Insert p, charging the fetch side of its block (no-op if present).
  void fetch(PageId p) {
    if (cache_->insert(p)) {
      meter_->on_fetch(p);
      if (capture_fetches_) capture_note(p, *capture_fetches_, *capture_evictions_);
    }
  }

  /// Remove p, charging the eviction side of its block (no-op if absent).
  void evict(PageId p) {
    if (cache_->erase(p)) {
      meter_->on_evict(p);
      if (capture_evictions_) capture_note(p, *capture_evictions_, *capture_fetches_);
    }
  }

  /// Route effective fetches/evictions into the given vectors (used by the
  /// simulator's schedule capture; pass nullptrs to disable). Captured
  /// steps record the *net* page movement: a fetch-then-evict of the same
  /// page within one step cancels out, so replays are state-exact (the
  /// transient's cost is still metered on the live run but not by a
  /// replay — no policy in this library exhibits that pattern except a
  /// corner of BlockLRU+Prefetch). Cancellation is O(1) per event via
  /// per-page slots stamped with the capture epoch; a cancelled entry is
  /// swap-removed, so order *within* a step's eviction/fetch lists is
  /// unspecified (replay semantics are order-independent within a step).
  /// Each call starts a new step (epoch); every step must get fresh
  /// target vectors.
  void set_capture(std::vector<PageId>* evictions,
                   std::vector<PageId>* fetches) {
    capture_evictions_ = evictions;
    capture_fetches_ = fetches;
    if (evictions || fetches) {
      ++capture_epoch_;
      if (capture_slots_.empty())
        capture_slots_.resize(
            static_cast<std::size_t>(blocks_->n_pages()));
    }
  }

  /// Fetch-then-evict (or evict-then-fetch) pairs of the same page within
  /// one step that were netted out of the captured schedule. When 0, a
  /// replay of the capture is cost-exact, not just state-exact.
  [[nodiscard]] long long capture_cancellations() const noexcept {
    return capture_cancellations_;
  }

  /// Evict every cached page of block b except `keep` (pass -1 to evict
  /// all). Returns the number of pages evicted. This is the paper's "flush".
  int flush_block(BlockId b, PageId keep = -1) {
    int evicted = 0;
    for (PageId p : blocks_->pages_in(b)) {
      if (p == keep) continue;
      if (cache_->contains(p)) {
        evict(p);
        ++evicted;
      }
    }
    return evicted;
  }

 private:
  /// Where (if anywhere) page p currently sits in this step's capture.
  struct CaptureSlot {
    std::uint64_t epoch = 0;  ///< stamp; stale unless == capture_epoch_
    std::uint32_t index = 0;  ///< position within the list it sits in
    bool in_evictions = false;
  };

  /// Record p landing in `add`; if p already sits in `cancel` this step,
  /// the pair nets out instead. O(1): the slot stamp replaces the linear
  /// scan that made flush-heavy record_schedule runs quadratic per step.
  void capture_note(PageId p, std::vector<PageId>& add,
                    std::vector<PageId>& cancel) {
    CaptureSlot& slot = capture_slots_[static_cast<std::size_t>(p)];
    const bool adding_eviction = &add == capture_evictions_;
    if (slot.epoch == capture_epoch_ &&
        slot.in_evictions != adding_eviction) {
      // Net no-op within this step: swap-remove from the opposite list.
      const std::uint32_t i = slot.index;
      const PageId moved = cancel.back();
      cancel[i] = moved;
      cancel.pop_back();
      if (moved != p)
        capture_slots_[static_cast<std::size_t>(moved)].index = i;
      slot.epoch = 0;
      ++capture_cancellations_;
      return;
    }
    slot.epoch = capture_epoch_;
    slot.index = static_cast<std::uint32_t>(add.size());
    slot.in_evictions = adding_eviction;
    add.push_back(p);
  }

  const BlockMap* blocks_;
  CacheSet* cache_;
  CostMeter* meter_;
  int k_;
  std::vector<PageId>* capture_evictions_ = nullptr;
  std::vector<PageId>* capture_fetches_ = nullptr;
  std::vector<CaptureSlot> capture_slots_;  ///< per page, sized lazily
  std::uint64_t capture_epoch_ = 0;
  long long capture_cancellations_ = 0;
};

class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before a run. Offline policies may precompute from the
  /// full instance here.
  virtual void reset(const Instance& inst) = 0;

  /// Reseed internal randomness (no-op for deterministic policies).
  virtual void seed(std::uint64_t /*seed*/) {}

  /// Serve the request to page p at time t. Postconditions audited by the
  /// simulator: p is cached and size() <= capacity().
  virtual void on_request(Time t, PageId p, CacheOps& cache) = 0;

  /// True for policies whose behaviour depends on seed() (Monte-Carlo
  /// trials are only meaningful for these).
  [[nodiscard]] virtual bool randomized() const { return false; }

  /// True for offline policies that read the future out of reset()'s
  /// Instance; the simulator refuses to run them over non-materialized
  /// streaming sources, whose context carries no request vector.
  [[nodiscard]] virtual bool requires_future() const { return false; }

  /// Fresh copy for parallel Monte-Carlo trials and the sharded server,
  /// or nullptr when the policy is not cloneable (simulate_mc then falls
  /// back to serial trials; the server refuses to construct). Clones are
  /// only valid after a reset() — copied internal pointers may still
  /// reference the original's state until then.
  ///
  /// Concurrency contract: after reset() (and seed(), if randomized),
  /// a clone must share no mutable state with its prototype or with
  /// sibling clones, so distinct clones may serve requests from distinct
  /// threads concurrently without synchronization. Shared immutable state
  /// (e.g. the Instance passed to reset()) is fine.
  [[nodiscard]] virtual std::unique_ptr<OnlinePolicy> clone() const {
    return nullptr;
  }

  /// Fold the policy's structural counters (ghost hits, hand sweeps, ARC
  /// target adjustments, block batch-evictions, ...) into a metric
  /// registry. Counters must count events of the policy's own run only —
  /// the bacobs determinism contract — so per-shard clones can be summed
  /// and stay bit-identical across thread counts. Default: exports
  /// nothing (most classical policies have no structural counters).
  virtual void export_metrics(obs::MetricRegistry& /*registry*/) const {}
};

}  // namespace bac
