// Streaming request sources: the simulator's input abstraction.
//
// A RequestSource yields requests one at a time over a fixed static
// structure (block map + cache size), so simulations never need the whole
// request vector in memory — the enabler for replaying multi-hundred-
// million-request production traces. The materialized Instance becomes
// just one adapter (InstanceSource); synthetic generators, the v1 text
// format, the .bact binary format, and CSV key traces provide the others.
//
// Contract:
//   - context() is valid for the source's lifetime and carries the block
//     structure and k. For materialized sources it also carries the full
//     request vector (offline policies need it); for true streams its
//     `requests` is empty and materialized() is false.
//   - next() yields requests in order; rewind() restarts the stream so
//     Monte-Carlo trials can replay the same sequence.
//   - next_batch() drains up to `cap` requests into a caller buffer in one
//     virtual call; sources override it with tight decode loops. It must
//     be behaviourally identical to a next() loop: same requests in the
//     same order, same exceptions, and 0 returned exactly at end of
//     stream (a partial batch < cap is only ever the final one). next()
//     and next_batch() share the stream position and may be mixed.
//   - horizon_hint() is the number of requests when known upfront
//     (reserve() sizing), or -1 for open-ended streams. It is a hint:
//     the stream end is still signalled by next()/next_batch(), so a
//     consumer must not trust it to stop early.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "core/instance.hpp"
#include "util/rng.hpp"

namespace bac {

class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// Static structure: blocks and k (plus requests when materialized()).
  [[nodiscard]] virtual const Instance& context() const = 0;

  /// True when context().requests holds the whole trace.
  [[nodiscard]] virtual bool materialized() const { return false; }

  /// Number of requests the stream will yield, or -1 when unknown.
  [[nodiscard]] virtual long long horizon_hint() const { return -1; }

  /// Yield the next request into `p`; false at end of stream.
  virtual bool next(PageId& p) = 0;

  /// Fill out[0, cap) with the next requests; returns how many were
  /// written, 0 exactly at end of stream. The default loops over next();
  /// overrides replace the per-request virtual dispatch with one tight
  /// decode/copy loop per batch (the simulate() hot path consumes the
  /// stream in 512-request batches).
  virtual int next_batch(PageId* out, int cap) {
    int i = 0;
    while (i < cap && next(out[i])) ++i;
    return i;
  }

  /// Restart from the first request.
  virtual void rewind() = 0;
};

/// Adapter over a materialized Instance (borrowed or owned). This is what
/// simulate(const Instance&, ...) wraps, so the whole existing test and
/// bench surface runs through the streaming core unchanged.
class InstanceSource final : public RequestSource {
 public:
  /// Borrow `inst` (must outlive the source).
  explicit InstanceSource(const Instance& inst) : inst_(&inst) {}
  /// Take ownership of `inst`.
  explicit InstanceSource(Instance&& inst)
      : owned_(std::make_unique<Instance>(std::move(inst))),
        inst_(owned_.get()) {}

  [[nodiscard]] const Instance& context() const override { return *inst_; }
  [[nodiscard]] bool materialized() const override { return true; }
  [[nodiscard]] long long horizon_hint() const override {
    return static_cast<long long>(inst_->requests.size());
  }

  bool next(PageId& p) override {
    if (pos_ >= inst_->requests.size()) return false;
    p = inst_->requests[pos_++];
    return true;
  }
  int next_batch(PageId* out, int cap) override {
    if (cap <= 0 || pos_ >= inst_->requests.size()) return 0;
    const std::size_t avail = inst_->requests.size() - pos_;
    const auto m = static_cast<int>(
        std::min(static_cast<std::size_t>(cap), avail));
    std::memcpy(out, inst_->requests.data() + pos_,
                static_cast<std::size_t>(m) * sizeof(PageId));
    pos_ += static_cast<std::size_t>(m);
    return m;
  }
  void rewind() override { pos_ = 0; }

 private:
  std::unique_ptr<Instance> owned_;
  const Instance* inst_;
  std::size_t pos_ = 0;
};

/// Streaming adapter over the synthetic workload generators: produces
/// exactly the sequence the corresponding trace/generators.hpp function
/// materializes (same RNG, same per-step draws), but one request at a
/// time with O(n_pages) state. rewind() restores the seed state, so every
/// replay is identical.
class SyntheticSource final : public RequestSource {
 public:
  /// Mirrors uniform_trace(n_pages, T, rng) over contiguous blocks.
  static std::unique_ptr<SyntheticSource> uniform(int n_pages, int block_size,
                                                  int k, long long T,
                                                  std::uint64_t seed);
  /// Mirrors zipf_trace(n_pages, T, alpha, rng).
  static std::unique_ptr<SyntheticSource> zipf(int n_pages, int block_size,
                                               int k, long long T,
                                               double alpha,
                                               std::uint64_t seed);
  /// Mirrors scan_trace(n_pages, T).
  static std::unique_ptr<SyntheticSource> scan(int n_pages, int block_size,
                                               int k, long long T);
  /// Mirrors phased_trace(n_pages, T, phase_len, ws_size, rng).
  static std::unique_ptr<SyntheticSource> phased(int n_pages, int block_size,
                                                 int k, long long T,
                                                 long long phase_len,
                                                 int ws_size,
                                                 std::uint64_t seed);
  /// Mirrors block_local_trace(blocks, T, stay, alpha, rng) over
  /// contiguous blocks.
  static std::unique_ptr<SyntheticSource> block_local(int n_pages,
                                                      int block_size, int k,
                                                      long long T, double stay,
                                                      double alpha,
                                                      std::uint64_t seed);

  [[nodiscard]] const Instance& context() const override { return header_; }
  [[nodiscard]] long long horizon_hint() const override { return T_; }
  bool next(PageId& p) override;
  /// One switch on the generator kind per batch instead of per request;
  /// draws the exact same RNG sequence as a next() loop.
  int next_batch(PageId* out, int cap) override;
  void rewind() override;

 private:
  enum class Kind { Uniform, Zipf, Scan, Phased, BlockLocal };

  SyntheticSource(Kind kind, int n_pages, int block_size, int k, long long T,
                  std::uint64_t seed);

  Kind kind_;
  Instance header_;  ///< blocks + k, empty requests
  long long T_;
  long long t_ = 0;  ///< requests yielded so far
  std::uint64_t seed_;
  Xoshiro256pp rng_;

  // Zipf / BlockLocal: normalized cumulative popularity weights.
  std::vector<double> cum_;
  double total_ = 0;
  double alpha_ = 0;
  // Phased.
  long long phase_len_ = 0;
  int ws_size_ = 0;
  std::vector<PageId> universe_;
  std::vector<PageId> ws_;
  // BlockLocal.
  double stay_ = 0;
  BlockId current_block_ = 0;

  void reset_state();
};

}  // namespace bac
