// Explicit offline schedules: per-step fetch/evict page lists.
//
// Exact OPT solvers and LP roundings produce a Schedule; `evaluate`
// replays it through the simulator's accounting and feasibility audit, so
// offline solutions are scored by exactly the same meter as online policies.
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/policy.hpp"
#include "core/types.hpp"

namespace bac {

struct Schedule {
  /// actions[i] applies at time t = i+1, before serving requests[i]:
  /// evictions first, then fetches (the requested page must end up cached).
  struct Step {
    std::vector<PageId> evictions;
    std::vector<PageId> fetches;
  };
  std::vector<Step> steps;

  [[nodiscard]] Time horizon() const noexcept {
    return static_cast<Time>(steps.size());
  }
};

struct ScheduleCost {
  Cost eviction_cost = 0;
  Cost fetch_cost = 0;
  bool feasible = true;
  std::string infeasibility;  // first violation, for diagnostics
};

/// Replay `sched` on `inst`, return batched costs and feasibility.
ScheduleCost evaluate(const Instance& inst, const Schedule& sched);

/// Full accounting of a schedule replay: everything the simulator's meter
/// reports for a live run, plus the final cache contents. A schedule
/// captured by SimOptions::record_schedule replayed through this must
/// reproduce the live run's final state exactly, and its costs exactly
/// whenever the capture netted out no fetch+evict transients
/// (RunResult::capture_cancellations == 0) — the verify subsystem's
/// schedule-replay oracle checks both.
struct ReplayResult {
  Cost eviction_cost = 0;
  Cost fetch_cost = 0;
  Cost classic_eviction_cost = 0;
  Cost classic_fetch_cost = 0;
  long long evict_block_events = 0;
  long long fetch_block_events = 0;
  long long evicted_pages = 0;
  long long fetched_pages = 0;
  bool feasible = true;
  std::string infeasibility;       ///< first violation, for diagnostics
  std::vector<PageId> final_cache; ///< cached pages after the last step, sorted
};

/// Replay `sched` on `inst` through the same CostMeter accounting as a
/// live simulate() run (evictions before fetches within each step).
ReplayResult replay_schedule(const Instance& inst, const Schedule& sched);

/// Adapter: replay a schedule as an OnlinePolicy (for the simulator and
/// for head-to-head tables that mix online and offline algorithms).
class SchedulePolicy final : public OnlinePolicy {
 public:
  explicit SchedulePolicy(Schedule sched, std::string name = "Schedule")
      : sched_(std::move(sched)), name_(std::move(name)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;

 private:
  Schedule sched_;
  std::string name_;
};

}  // namespace bac
