// Batched block-aware cost accounting.
//
// The defining feature of the model (Section 2): touching any non-empty
// subset of a block within one time step costs the block's cost once.
// The meter tracks both cost models simultaneously for every run, so a
// single simulation reports the policy's cost under eviction *and* fetching
// semantics, plus classic per-page (unbatched) costs for the trivial-baseline
// comparisons of Section 1.1.
#pragma once

#include <vector>

#include "core/block_map.hpp"
#include "core/types.hpp"

namespace bac {

class CostMeter {
 public:
  explicit CostMeter(const BlockMap& blocks)
      : blocks_(&blocks),
        evict_stamp_(static_cast<std::size_t>(blocks.n_blocks()), -1),
        fetch_stamp_(static_cast<std::size_t>(blocks.n_blocks()), -1) {}

  /// Advance to time step t (strictly increasing); resets per-step batching.
  void begin_step(Time t) { now_ = t; }

  void on_evict(PageId p) {
    const BlockId b = blocks_->block_of(p);
    classic_evict_ += blocks_->cost(b);
    ++evicted_pages_;
    auto& stamp = evict_stamp_[static_cast<std::size_t>(b)];
    if (stamp != now_) {
      stamp = now_;
      evict_ += blocks_->cost(b);
      ++evict_events_;
    }
  }

  void on_fetch(PageId p) {
    const BlockId b = blocks_->block_of(p);
    classic_fetch_ += blocks_->cost(b);
    ++fetched_pages_;
    auto& stamp = fetch_stamp_[static_cast<std::size_t>(b)];
    if (stamp != now_) {
      stamp = now_;
      fetch_ += blocks_->cost(b);
      ++fetch_events_;
    }
  }

  /// Batched (block-aware) totals.
  [[nodiscard]] Cost eviction_cost() const noexcept { return evict_; }
  [[nodiscard]] Cost fetch_cost() const noexcept { return fetch_; }
  /// Unbatched per-page totals (classic weighted paging accounting).
  [[nodiscard]] Cost classic_eviction_cost() const noexcept {
    return classic_evict_;
  }
  [[nodiscard]] Cost classic_fetch_cost() const noexcept {
    return classic_fetch_;
  }
  [[nodiscard]] long long evict_block_events() const noexcept {
    return evict_events_;
  }
  [[nodiscard]] long long fetch_block_events() const noexcept {
    return fetch_events_;
  }
  [[nodiscard]] long long evicted_pages() const noexcept {
    return evicted_pages_;
  }
  [[nodiscard]] long long fetched_pages() const noexcept {
    return fetched_pages_;
  }

 private:
  const BlockMap* blocks_;
  Time now_ = -1;
  std::vector<Time> evict_stamp_;  // last step each block was charged
  std::vector<Time> fetch_stamp_;
  Cost evict_ = 0, fetch_ = 0;
  Cost classic_evict_ = 0, classic_fetch_ = 0;
  long long evict_events_ = 0, fetch_events_ = 0;
  long long evicted_pages_ = 0, fetched_pages_ = 0;
};

}  // namespace bac
