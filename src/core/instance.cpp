#include "core/instance.hpp"

#include <stdexcept>

namespace bac {

void Instance::validate() const {
  if (k <= 0) throw std::invalid_argument("Instance: k must be positive");
  if (blocks.beta() > k)
    throw std::invalid_argument("Instance: beta must be <= k");
  for (PageId p : requests)
    if (p < 0 || p >= blocks.n_pages())
      throw std::invalid_argument("Instance: request to invalid page");
}

RequestIndex::RequestIndex(const Instance& inst) {
  const auto T = static_cast<std::size_t>(inst.horizon());
  const auto n = static_cast<std::size_t>(inst.n_pages());
  prev.assign(T, 0);
  next.assign(T, static_cast<Time>(T) + 1);

  std::vector<Time> seen(n, 0);
  for (std::size_t i = 0; i < T; ++i) {
    const auto p = static_cast<std::size_t>(inst.requests[i]);
    prev[i] = seen[p];
    seen[p] = static_cast<Time>(i) + 1;
  }
  std::vector<Time> upcoming(n, static_cast<Time>(T) + 1);
  for (std::size_t i = T; i-- > 0;) {
    const auto p = static_cast<std::size_t>(inst.requests[i]);
    next[i] = upcoming[p];
    upcoming[p] = static_cast<Time>(i) + 1;
  }
}

std::vector<Time> RequestIndex::materialize_r(const Instance& inst) {
  const auto T = static_cast<std::size_t>(inst.horizon());
  const auto n = static_cast<std::size_t>(inst.n_pages());
  // row t (0..T) holds r(p, t); row 0 is all kNeverRequested.
  std::vector<Time> r((T + 1) * n, kNeverRequested);
  for (std::size_t t = 1; t <= T; ++t) {
    for (std::size_t p = 0; p < n; ++p) r[t * n + p] = r[(t - 1) * n + p];
    r[t * n + static_cast<std::size_t>(inst.requests[t - 1])] =
        static_cast<Time>(t);
  }
  return r;
}

}  // namespace bac
