#include "core/request_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bac {

namespace {
Instance make_header(int n_pages, int block_size, int k) {
  Instance header{BlockMap::contiguous(n_pages, block_size), {}, k};
  header.validate();
  return header;
}
}  // namespace

SyntheticSource::SyntheticSource(Kind kind, int n_pages, int block_size,
                                 int k, long long T, std::uint64_t seed)
    : kind_(kind),
      header_(make_header(n_pages, block_size, k)),
      T_(T),
      seed_(seed),
      rng_(seed) {
  if (T < 0) throw std::invalid_argument("SyntheticSource: negative horizon");
}

std::unique_ptr<SyntheticSource> SyntheticSource::uniform(
    int n_pages, int block_size, int k, long long T, std::uint64_t seed) {
  auto src = std::unique_ptr<SyntheticSource>(
      new SyntheticSource(Kind::Uniform, n_pages, block_size, k, T, seed));
  src->reset_state();
  return src;
}

std::unique_ptr<SyntheticSource> SyntheticSource::zipf(int n_pages,
                                                       int block_size, int k,
                                                       long long T,
                                                       double alpha,
                                                       std::uint64_t seed) {
  auto src = std::unique_ptr<SyntheticSource>(
      new SyntheticSource(Kind::Zipf, n_pages, block_size, k, T, seed));
  src->alpha_ = alpha;
  src->reset_state();
  return src;
}

std::unique_ptr<SyntheticSource> SyntheticSource::scan(int n_pages,
                                                       int block_size, int k,
                                                       long long T) {
  auto src = std::unique_ptr<SyntheticSource>(
      new SyntheticSource(Kind::Scan, n_pages, block_size, k, T, 0));
  src->reset_state();
  return src;
}

std::unique_ptr<SyntheticSource> SyntheticSource::phased(
    int n_pages, int block_size, int k, long long T, long long phase_len,
    int ws_size, std::uint64_t seed) {
  if (phase_len <= 0)
    throw std::invalid_argument("SyntheticSource: phase_len must be positive");
  if (ws_size <= 0)
    throw std::invalid_argument("SyntheticSource: ws_size must be positive");
  auto src = std::unique_ptr<SyntheticSource>(
      new SyntheticSource(Kind::Phased, n_pages, block_size, k, T, seed));
  src->phase_len_ = phase_len;
  src->ws_size_ = std::min(ws_size, n_pages);
  src->reset_state();
  return src;
}

std::unique_ptr<SyntheticSource> SyntheticSource::block_local(
    int n_pages, int block_size, int k, long long T, double stay, double alpha,
    std::uint64_t seed) {
  auto src = std::unique_ptr<SyntheticSource>(
      new SyntheticSource(Kind::BlockLocal, n_pages, block_size, k, T, seed));
  src->stay_ = stay;
  src->alpha_ = alpha;
  src->reset_state();
  return src;
}

void SyntheticSource::reset_state() {
  t_ = 0;
  rng_ = Xoshiro256pp(seed_);
  switch (kind_) {
    case Kind::Uniform:
    case Kind::Scan:
      break;
    case Kind::Zipf: {
      // Same cumulative table as zipf_trace.
      const int n = header_.n_pages();
      cum_.resize(static_cast<std::size_t>(n));
      total_ = 0;
      for (int i = 0; i < n; ++i) {
        total_ += 1.0 / std::pow(static_cast<double>(i + 1), alpha_);
        cum_[static_cast<std::size_t>(i)] = total_;
      }
      break;
    }
    case Kind::Phased: {
      const int n = header_.n_pages();
      universe_.resize(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i)
        universe_[static_cast<std::size_t>(i)] = i;
      ws_.clear();
      break;
    }
    case Kind::BlockLocal: {
      // Same cumulative table as block_local_trace, over blocks.
      const int m = header_.blocks.n_blocks();
      cum_.resize(static_cast<std::size_t>(m));
      total_ = 0;
      for (int i = 0; i < m; ++i) {
        total_ += 1.0 / std::pow(static_cast<double>(i + 1), alpha_);
        cum_[static_cast<std::size_t>(i)] = total_;
      }
      // block_local_trace draws the starting block before its loop.
      const double u = rng_.uniform() * total_;
      const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
      current_block_ = static_cast<BlockId>(
          std::min<std::ptrdiff_t>(it - cum_.begin(), m - 1));
      break;
    }
  }
}

bool SyntheticSource::next(PageId& p) { return next_batch(&p, 1) == 1; }

int SyntheticSource::next_batch(PageId* out, int cap) {
  if (cap <= 0 || t_ >= T_) return 0;
  const long long remaining = T_ - t_;
  const int m =
      remaining < cap ? static_cast<int>(remaining) : cap;
  const int n = header_.n_pages();
  switch (kind_) {
    case Kind::Uniform:
      for (int i = 0; i < m; ++i)
        out[i] =
            static_cast<PageId>(rng_.below(static_cast<std::uint64_t>(n)));
      break;
    case Kind::Zipf:
      for (int i = 0; i < m; ++i) {
        const double u = rng_.uniform() * total_;
        const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
        PageId p = static_cast<PageId>(it - cum_.begin());
        if (p >= n) p = n - 1;
        out[i] = p;
      }
      break;
    case Kind::Scan:
      for (int i = 0; i < m; ++i)
        out[i] = static_cast<PageId>((t_ + i) % n);
      break;
    case Kind::Phased:
      for (int i = 0; i < m; ++i) {
        if ((t_ + i) % phase_len_ == 0) {
          // Fresh working set via partial Fisher-Yates, like phased_trace.
          for (int j = 0; j < ws_size_; ++j) {
            const auto r = static_cast<std::size_t>(rng_.range(j, n - 1));
            std::swap(universe_[static_cast<std::size_t>(j)], universe_[r]);
          }
          ws_.assign(universe_.begin(), universe_.begin() + ws_size_);
        }
        out[i] = ws_[static_cast<std::size_t>(
            rng_.below(static_cast<std::uint64_t>(ws_size_)))];
      }
      break;
    case Kind::BlockLocal:
      for (int i = 0; i < m; ++i) {
        if (!rng_.bernoulli(stay_)) {
          const double u = rng_.uniform() * total_;
          const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
          current_block_ = static_cast<BlockId>(std::min<std::ptrdiff_t>(
              it - cum_.begin(), header_.blocks.n_blocks() - 1));
        }
        const auto pages = header_.blocks.pages_in(current_block_);
        out[i] =
            pages[static_cast<std::size_t>(rng_.below(pages.size()))];
      }
      break;
  }
  t_ += m;
  return m;
}

void SyntheticSource::rewind() { reset_state(); }

}  // namespace bac
