// Cache contents: O(1) membership, insert, erase; iterable member list.
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace bac {

class CacheSet {
 public:
  explicit CacheSet(int n_pages)
      : position_(static_cast<std::size_t>(n_pages), kAbsent) {}

  [[nodiscard]] bool contains(PageId p) const noexcept {
    return position_[static_cast<std::size_t>(p)] != kAbsent;
  }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(members_.size());
  }
  [[nodiscard]] const std::vector<PageId>& pages() const noexcept {
    return members_;
  }

  /// Returns true if the page was newly inserted.
  bool insert(PageId p) {
    auto& pos = position_[static_cast<std::size_t>(p)];
    if (pos != kAbsent) return false;
    pos = static_cast<std::int32_t>(members_.size());
    members_.push_back(p);
    return true;
  }

  /// Returns true if the page was present (swap-remove, O(1)).
  bool erase(PageId p) {
    auto& pos = position_[static_cast<std::size_t>(p)];
    if (pos == kAbsent) return false;
    const PageId moved = members_.back();
    members_[static_cast<std::size_t>(pos)] = moved;
    position_[static_cast<std::size_t>(moved)] = pos;
    members_.pop_back();
    pos = kAbsent;
    return true;
  }

  void clear() {
    for (PageId p : members_) position_[static_cast<std::size_t>(p)] = kAbsent;
    members_.clear();
  }

 private:
  static constexpr std::int32_t kAbsent = -1;
  std::vector<std::int32_t> position_;  // index into members_, or kAbsent
  std::vector<PageId> members_;
};

}  // namespace bac
