// A block-aware caching instance: block structure, request sequence, and
// cache size, plus precomputed request indices shared by the algorithms.
#pragma once

#include <vector>

#include "core/block_map.hpp"
#include "core/types.hpp"

namespace bac {

struct Instance {
  BlockMap blocks;
  std::vector<PageId> requests;  ///< requests[i] served at time t = i + 1
  int k = 0;                     ///< cache capacity in pages

  [[nodiscard]] int n_pages() const noexcept { return blocks.n_pages(); }
  [[nodiscard]] Time horizon() const noexcept {
    return static_cast<Time>(requests.size());
  }
  [[nodiscard]] PageId request_at(Time t) const {
    return requests[static_cast<std::size_t>(t - 1)];
  }

  /// Throws std::invalid_argument on malformed data (bad page ids, k <= 0).
  void validate() const;
};

/// Offline request indices. prev[i] is the previous time (1-based) page
/// requests[i] was requested (0 if never before); next[i] is the next time
/// it will be requested (horizon+1 if never again). Used by offline
/// algorithms (Belady, exact OPT) and by tests.
struct RequestIndex {
  explicit RequestIndex(const Instance& inst);

  std::vector<Time> prev;  ///< per request position (0-based), 1-based times
  std::vector<Time> next;
  /// last_request_before[t*n + p] is r(p, t) as defined in the paper
  /// (kNeverRequested if none) — materialized only by `materialize_r`.
  [[nodiscard]] static std::vector<Time> materialize_r(const Instance& inst);
};

/// Incremental tracker of r(p, t), advanced one request at a time.
/// Online algorithms use this to evaluate aliveness and f_tau marginals.
class LastRequestTracker {
 public:
  explicit LastRequestTracker(int n_pages)
      : last_(static_cast<std::size_t>(n_pages), kNeverRequested) {}

  /// Record that page p is requested at time t (t strictly increasing).
  void on_request(PageId p, Time t) { last_[static_cast<std::size_t>(p)] = t; }

  /// r(p, tau) for the current tau (time of the last on_request call).
  [[nodiscard]] Time last(PageId p) const {
    return last_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const std::vector<Time>& all() const noexcept { return last_; }

 private:
  std::vector<Time> last_;
};

}  // namespace bac
