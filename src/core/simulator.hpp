// Replayable simulator: drives a policy over an instance, audits
// feasibility at every step, and accumulates costs under both cost models.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"
#include "core/policy.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"

namespace bac {

struct SimOptions {
  std::uint64_t seed = 1;        ///< forwarded to OnlinePolicy::seed
  bool record_steps = false;     ///< keep per-step cost series
  bool record_schedule = false;  ///< capture the policy's actions
  bool throw_on_violation = true;///< throw instead of silently repairing
};

struct RunResult {
  Cost eviction_cost = 0;
  Cost fetch_cost = 0;
  Cost classic_eviction_cost = 0;
  Cost classic_fetch_cost = 0;
  long long evict_block_events = 0;
  long long fetch_block_events = 0;
  long long evicted_pages = 0;
  long long fetched_pages = 0;
  long long misses = 0;  ///< requests not already cached
  int violations = 0;    ///< feasibility repairs (0 for a correct policy)
  std::vector<Cost> step_eviction_cost;  // filled when record_steps
  std::vector<Cost> step_fetch_cost;
  Schedule schedule;  ///< the policy's actions, when record_schedule
};

/// Run `policy` over `inst`. The cache starts empty (the paper's convention:
/// time-0 flushes are free, i.e. initial contents are irrelevant).
RunResult simulate(const Instance& inst, OnlinePolicy& policy,
                   const SimOptions& options = {});

/// Mean costs over `trials` seeds (for randomized policies).
struct MonteCarloResult {
  double mean_eviction_cost = 0;
  double mean_fetch_cost = 0;
  double stddev_eviction_cost = 0;
  double stddev_fetch_cost = 0;
  int trials = 0;
};
MonteCarloResult simulate_mc(const Instance& inst, OnlinePolicy& policy,
                             int trials, std::uint64_t root_seed = 1);

}  // namespace bac
