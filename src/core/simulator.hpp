// Replayable simulator: drives a policy over a request stream, audits
// feasibility at every step, and accumulates costs under both cost models.
//
// The core loop consumes a RequestSource, so it runs identically over a
// materialized Instance (the InstanceSource adapter — the historical API,
// still the signature every test uses) and over streaming traces (.bact,
// text, CSV, synthetic generators) whose length never enters memory.
// Per-step costs are folded online into a fixed-layout mergeable
// log-bucket histogram (obs/histogram.hpp, O(1) memory); an optional
// single-pass LRU miss-ratio curve rides along. With an obs::TraceWriter
// attached the run emits phase begin/progress/end JSONL events; with a
// MetricRegistry attached its event counters and step-cost histogram are
// folded in at the end of the run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "core/policy.hpp"
#include "core/request_source.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bac {

struct SimOptions {
  std::uint64_t seed = 1;        ///< forwarded to OnlinePolicy::seed
  bool record_steps = false;     ///< keep per-step cost series
  bool record_schedule = false;  ///< capture the policy's actions
  bool throw_on_violation = true;///< throw instead of silently repairing
  bool record_sketch = true;     ///< per-step cost histogram (O(1) memory)
  /// Cache sizes to evaluate the single-pass LRU miss-ratio curve at;
  /// empty disables the curve (it costs O(log n) per request).
  std::vector<int> mrc_ks;
  /// Optional observability hooks; both nullptr by default (the disabled
  /// path costs one pointer test per 512-request batch). Counters folded
  /// into `metrics` are pure event counts — deterministic for a fixed
  /// (source, policy, seed) at any thread count.
  obs::MetricRegistry* metrics = nullptr;
  obs::TraceWriter* trace = nullptr;
  /// Names the phase span and progress events; policy name when empty.
  std::string trace_label;
};

struct RunResult {
  Cost eviction_cost = 0;
  Cost fetch_cost = 0;
  Cost classic_eviction_cost = 0;
  Cost classic_fetch_cost = 0;
  long long evict_block_events = 0;
  long long fetch_block_events = 0;
  long long evicted_pages = 0;
  long long fetched_pages = 0;
  long long requests = 0;///< requests served (streams may not know upfront)
  long long misses = 0;  ///< requests not already cached
  int violations = 0;    ///< feasibility repairs (0 for a correct policy)
  int cached_pages = 0;  ///< cache occupancy after the last request
  /// Cached pages after the last request (sorted); filled when
  /// record_schedule so capture→replay state-exactness is checkable.
  std::vector<PageId> final_cache;
  /// Fetch+evict same-page same-step pairs netted out of the captured
  /// schedule (see CacheOps::capture_cancellations). When 0, replaying
  /// `schedule` reproduces the run's costs exactly; when > 0 the replay
  /// is state-exact but may cost strictly less. Filled when
  /// record_schedule.
  long long capture_cancellations = 0;
  /// Mergeable log-bucket histogram of per-step total (eviction+fetch)
  /// cost; filled when record_sketch. Bucket counts are deterministic
  /// for a fixed (source, policy, seed).
  obs::Histogram step_cost_hist;
  /// Quantile summaries of step_cost_hist (bucket-midpoint estimates,
  /// NaN when no steps ran) and the exact per-step maximum; filled when
  /// record_sketch. These replace the former non-mergeable P^2 sketches.
  double step_cost_p50 = 0;
  double step_cost_p90 = 0;
  double step_cost_p99 = 0;
  double step_cost_max = 0;
  /// (k, LRU miss ratio) per requested mrc_ks entry.
  std::vector<std::pair<int, double>> miss_curve;
  std::vector<Cost> step_eviction_cost;  // filled when record_steps
  std::vector<Cost> step_fetch_cost;
  Schedule schedule;  ///< the policy's actions, when record_schedule
};

/// Run `policy` over the stream. The cache starts empty (the paper's
/// convention: time-0 flushes are free, i.e. initial contents are
/// irrelevant). Throws std::invalid_argument if the policy requires the
/// future (offline) and the source is not materialized.
RunResult simulate(RequestSource& source, OnlinePolicy& policy,
                   const SimOptions& options = {});

/// Run `policy` over `inst` (wraps an InstanceSource).
RunResult simulate(const Instance& inst, OnlinePolicy& policy,
                   const SimOptions& options = {});

/// Mean costs over `trials` seeds (for randomized policies).
struct MonteCarloResult {
  double mean_eviction_cost = 0;
  double mean_fetch_cost = 0;
  double stddev_eviction_cost = 0;
  double stddev_fetch_cost = 0;
  /// Of per-trial total (eviction + fetch) cost — NOT derivable from the
  /// per-component stddevs (those ignore their covariance).
  double mean_total_cost = 0;
  double stddev_total_cost = 0;
  long long total_requests = 0;  ///< requests served across all trials
  int trials = 0;
};

/// Trials are sharded across the global thread pool when the policy is
/// cloneable (OnlinePolicy::clone), falling back to serial replay
/// otherwise. Per-trial seeds depend only on (root_seed, trial index), and
/// the reduction runs in index order, so results are bit-identical to the
/// serial path regardless of thread count.
MonteCarloResult simulate_mc(const Instance& inst, OnlinePolicy& policy,
                             int trials, std::uint64_t root_seed = 1);

/// Fully factory-based variant for streaming sweeps: each trial gets its
/// own source and policy, so trials parallelize without shared state. The
/// factories must be thread-safe (they are called from pool workers).
MonteCarloResult simulate_mc(
    const std::function<std::unique_ptr<RequestSource>()>& make_source,
    const std::function<std::unique_ptr<OnlinePolicy>()>& make_policy,
    int trials, std::uint64_t root_seed = 1);

}  // namespace bac
