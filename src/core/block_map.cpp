#include "core/block_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace bac {

BlockMap::BlockMap() {
  static const std::shared_ptr<const Data> empty = std::make_shared<Data>(
      Data{{}, {}, {}, std::vector<std::size_t>{0}, 0, 0, 0, 0});
  data_ = empty;
}

BlockMap::BlockMap(std::vector<BlockId> page_to_block,
                   std::vector<Cost> block_costs) {
  auto data = std::make_shared<Data>();
  data->page_to_block = std::move(page_to_block);
  data->block_costs = std::move(block_costs);
  if (data->block_costs.empty())
    throw std::invalid_argument("BlockMap: no blocks");
  const auto n_blocks = data->block_costs.size();
  for (Cost c : data->block_costs)
    if (!(c > 0)) throw std::invalid_argument("BlockMap: costs must be > 0");

  std::vector<std::size_t> sizes(n_blocks, 0);
  for (BlockId b : data->page_to_block) {
    if (b < 0 || static_cast<std::size_t>(b) >= n_blocks)
      throw std::invalid_argument("BlockMap: page assigned to invalid block");
    ++sizes[static_cast<std::size_t>(b)];
  }

  data->block_offsets.assign(n_blocks + 1, 0);
  for (std::size_t b = 0; b < n_blocks; ++b)
    data->block_offsets[b + 1] = data->block_offsets[b] + sizes[b];
  data->block_pages.resize(data->page_to_block.size());
  std::vector<std::size_t> cursor(data->block_offsets.begin(),
                                  data->block_offsets.end() - 1);
  const int n = static_cast<int>(data->page_to_block.size());
  for (PageId p = 0; p < n; ++p)
    data->block_pages[cursor[static_cast<std::size_t>(
        data->page_to_block[static_cast<std::size_t>(p)])]++] = p;

  data->beta = static_cast<int>(*std::max_element(sizes.begin(), sizes.end()));
  data->min_cost =
      *std::min_element(data->block_costs.begin(), data->block_costs.end());
  data->max_cost =
      *std::max_element(data->block_costs.begin(), data->block_costs.end());
  data->total_cost = 0;
  for (Cost c : data->block_costs) data->total_cost += c;
  data_ = std::move(data);
}

BlockMap BlockMap::contiguous(int n_pages, int block_size, Cost cost) {
  if (n_pages <= 0 || block_size <= 0)
    throw std::invalid_argument("BlockMap::contiguous: sizes must be > 0");
  const int n_blocks = (n_pages + block_size - 1) / block_size;
  return contiguous_weighted(n_pages, block_size,
                             std::vector<Cost>(static_cast<std::size_t>(n_blocks), cost));
}

BlockMap BlockMap::contiguous_weighted(int n_pages, int block_size,
                                       std::vector<Cost> block_costs) {
  if (n_pages <= 0 || block_size <= 0)
    throw std::invalid_argument("BlockMap: sizes must be > 0");
  const int n_blocks = (n_pages + block_size - 1) / block_size;
  if (static_cast<int>(block_costs.size()) != n_blocks)
    throw std::invalid_argument("BlockMap: wrong number of block costs");
  std::vector<BlockId> assign(static_cast<std::size_t>(n_pages));
  for (int p = 0; p < n_pages; ++p)
    assign[static_cast<std::size_t>(p)] = p / block_size;
  return {std::move(assign), std::move(block_costs)};
}

}  // namespace bac
