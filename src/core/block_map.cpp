#include "core/block_map.hpp"

#include <algorithm>
#include <stdexcept>

namespace bac {

BlockMap::BlockMap(std::vector<BlockId> page_to_block,
                   std::vector<Cost> block_costs)
    : page_to_block_(std::move(page_to_block)),
      block_costs_(std::move(block_costs)) {
  if (block_costs_.empty()) throw std::invalid_argument("BlockMap: no blocks");
  const auto n_blocks = block_costs_.size();
  for (Cost c : block_costs_)
    if (!(c > 0)) throw std::invalid_argument("BlockMap: costs must be > 0");

  std::vector<std::size_t> sizes(n_blocks, 0);
  for (BlockId b : page_to_block_) {
    if (b < 0 || static_cast<std::size_t>(b) >= n_blocks)
      throw std::invalid_argument("BlockMap: page assigned to invalid block");
    ++sizes[static_cast<std::size_t>(b)];
  }

  block_offsets_.assign(n_blocks + 1, 0);
  for (std::size_t b = 0; b < n_blocks; ++b)
    block_offsets_[b + 1] = block_offsets_[b] + sizes[b];
  block_pages_.resize(page_to_block_.size());
  std::vector<std::size_t> cursor(block_offsets_.begin(),
                                  block_offsets_.end() - 1);
  for (PageId p = 0; p < n_pages(); ++p)
    block_pages_[cursor[static_cast<std::size_t>(page_to_block_[static_cast<std::size_t>(p)])]++] = p;

  beta_ = static_cast<int>(*std::max_element(sizes.begin(), sizes.end()));
  min_cost_ = *std::min_element(block_costs_.begin(), block_costs_.end());
  max_cost_ = *std::max_element(block_costs_.begin(), block_costs_.end());
  total_cost_ = 0;
  for (Cost c : block_costs_) total_cost_ += c;
}

BlockMap BlockMap::contiguous(int n_pages, int block_size, Cost cost) {
  if (n_pages <= 0 || block_size <= 0)
    throw std::invalid_argument("BlockMap::contiguous: sizes must be > 0");
  const int n_blocks = (n_pages + block_size - 1) / block_size;
  return contiguous_weighted(n_pages, block_size,
                             std::vector<Cost>(static_cast<std::size_t>(n_blocks), cost));
}

BlockMap BlockMap::contiguous_weighted(int n_pages, int block_size,
                                       std::vector<Cost> block_costs) {
  if (n_pages <= 0 || block_size <= 0)
    throw std::invalid_argument("BlockMap: sizes must be > 0");
  const int n_blocks = (n_pages + block_size - 1) / block_size;
  if (static_cast<int>(block_costs.size()) != n_blocks)
    throw std::invalid_argument("BlockMap: wrong number of block costs");
  std::vector<BlockId> assign(static_cast<std::size_t>(n_pages));
  for (int p = 0; p < n_pages; ++p)
    assign[static_cast<std::size_t>(p)] = p / block_size;
  return {std::move(assign), std::move(block_costs)};
}

}  // namespace bac
