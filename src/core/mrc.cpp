#include "core/mrc.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bac {

MissRatioCurve::MissRatioCurve(int n_pages)
    : n_pages_(n_pages),
      last_pos_(static_cast<std::size_t>(n_pages), -1),
      capacity_(4 * static_cast<std::size_t>(std::max(n_pages, 16))),
      hist_(static_cast<std::size_t>(n_pages), 0) {
  if (n_pages <= 0) throw std::invalid_argument("MissRatioCurve: n_pages");
  fenwick_.assign(capacity_ + 1, 0);
}

void MissRatioCurve::fenwick_add(std::int64_t pos, int delta) {
  for (auto i = static_cast<std::size_t>(pos) + 1; i <= capacity_;
       i += i & (~i + 1))
    fenwick_[i] += delta;
}

int MissRatioCurve::fenwick_suffix(std::int64_t pos) const {
  // #occupied slots at positions strictly greater than pos: every seen
  // page occupies exactly one slot, so subtract the prefix count.
  int below = 0;
  for (auto i = static_cast<std::size_t>(pos) + 1; i > 0; i -= i & (~i + 1))
    below += fenwick_[i];
  return seen_ - below;
}

void MissRatioCurve::compact() {
  // Reassign positions 0..seen-1 preserving relative order.
  std::vector<PageId> by_pos;
  by_pos.reserve(last_pos_.size());
  for (PageId p = 0; p < n_pages_; ++p)
    if (last_pos_[static_cast<std::size_t>(p)] >= 0) by_pos.push_back(p);
  std::sort(by_pos.begin(), by_pos.end(), [&](PageId a, PageId b) {
    return last_pos_[static_cast<std::size_t>(a)] <
           last_pos_[static_cast<std::size_t>(b)];
  });
  std::fill(fenwick_.begin(), fenwick_.end(), 0);
  std::int64_t pos = 0;
  for (PageId p : by_pos) {
    last_pos_[static_cast<std::size_t>(p)] = pos;
    fenwick_add(pos, +1);
    ++pos;
  }
  next_pos_ = pos;
}

void MissRatioCurve::add(PageId p) {
  if (p < 0 || p >= n_pages_)
    throw std::out_of_range("MissRatioCurve: page out of range");
  // Compact while the state is consistent (one slot per seen page),
  // before this request's slot moves.
  if (static_cast<std::size_t>(next_pos_) >= capacity_) compact();
  ++total_;
  const std::int64_t prev = last_pos_[static_cast<std::size_t>(p)];
  if (prev < 0) {
    ++compulsory_;  // infinite distance: a miss at every cache size
    ++seen_;
  } else {
    const int above = fenwick_suffix(prev);  // distinct pages since p
    ++hist_[static_cast<std::size_t>(std::min(above, n_pages_ - 1))];
    fenwick_add(prev, -1);
  }
  last_pos_[static_cast<std::size_t>(p)] = next_pos_;
  fenwick_add(next_pos_, +1);
  ++next_pos_;
}

double MissRatioCurve::miss_ratio(int k) const {
  if (total_ == 0) return 1.0;
  if (k <= 0) return 1.0;
  long long hits = 0;
  const auto upto = static_cast<std::size_t>(
      std::min<long long>(k, static_cast<long long>(hist_.size())));
  for (std::size_t d = 0; d < upto; ++d) hits += hist_[d];
  return 1.0 - static_cast<double>(hits) / static_cast<double>(total_);
}

}  // namespace bac
