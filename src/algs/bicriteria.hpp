// Section 4.1: deterministic online bicriteria roundings of fractional
// solutions (Theorem 4.1 and the eviction-cost variant), plus the
// fractional block-batched cost functionals they are compared against.
//
// Input is a fractional missing-mass matrix x[t][p] (t = 0..T, x[0] all 1)
// that satisfies the naive LP (A.1) constraints — produced either by the
// simplex solver (exact fractional OPT on small instances) or by the online
// FractionalWeightedPaging substrate (Theorem 4.4's derandomization source).
//
// Fetching rounding: a page is cache-eligible iff x <= 1/2; on a miss of
// p_t, fetch every eligible page of B(p_t) (one batched fetch); evict pages
// whose x rose above 1/2 (free). Guarantees: space <= 2k, batched fetching
// cost <= 2 * fractional batched fetching cost.
//
// Eviction rounding: when a cached page's x crosses above 1/2, flush its
// whole block (one batched eviction); fetch p_t on a miss (free).
// Guarantees: space <= 2k, batched eviction cost <= 2 * fractional batched
// eviction cost.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"

namespace bac {

struct BicriteriaOutcome {
  Schedule schedule;
  int max_cache_used = 0;  ///< peak page count (theorem bound: <= 2k)
  Cost fetch_cost = 0;     ///< batched
  Cost eviction_cost = 0;  ///< batched
};

BicriteriaOutcome round_fetch_threshold(
    const Instance& inst, const std::vector<std::vector<double>>& x);

BicriteriaOutcome round_evict_threshold(
    const Instance& inst, const std::vector<std::vector<double>>& x);

/// sum_t sum_B c_B * max_{p in B} (x^{t-1}_p - x^t_p)_+  (batched fetches).
Cost fractional_block_fetch_cost(const Instance& inst,
                                 const std::vector<std::vector<double>>& x);

/// sum_t sum_B c_B * max_{p in B} (x^t_p - x^{t-1}_p)_+  (batched evictions).
Cost fractional_block_evict_cost(const Instance& inst,
                                 const std::vector<std::vector<double>>& x);

/// Check x against the LP (A.1) constraints (x[t][p_t] == 0 and
/// sum_p x >= n-k, within `tol`); returns the first violated time or 0.
Time check_fractional_feasible(const Instance& inst,
                               const std::vector<std::vector<double>>& x,
                               double tol = 1e-6);

}  // namespace bac
