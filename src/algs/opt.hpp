// Exact offline OPT by layered dynamic programming over cache states.
//
// Block-aware caching is NP-hard offline (it generalizes generalized
// caching), so exact OPT is exponential; these solvers are intended for the
// small instances that anchor competitive-ratio measurements and tests
// (n <= ~20 pages, T <= ~300). Beyond that, use the LP value
// (lp/naive_lp.hpp) or the primal-dual duals as lower bounds.
//
// Both solvers exploit WLOG normal forms of optimal schedules:
//  - Eviction model: WLOG evictions are whole-block flushes (refetching is
//    free) performed at request times, and only the requested page is ever
//    fetched. Transitions enumerate all subsets of flushable blocks.
//  - Fetching model: WLOG fetches happen only on a miss, from the requested
//    page's block (any subset containing the page), and evictions (free)
//    happen only to restore capacity, evicting exactly the overflow.
//
// Dominance pruning: in the fetching model a superset cache with no higher
// cost dominates; in the eviction model a subset cache dominates.
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace bac {

struct OptLimits {
  std::size_t max_layer_states = 200'000;  ///< abort threshold per layer
  bool dominance_pruning = true;
};

struct OptResult {
  Cost cost = 0;
  bool exact = false;  ///< false if the state limit was hit
  std::size_t peak_layer_states = 0;
};

/// Exact minimum batched eviction cost (requires n_pages <= 62).
OptResult exact_opt_eviction(const Instance& inst, const OptLimits& = {});

/// Exact minimum batched fetching cost (requires n_pages <= 62).
OptResult exact_opt_fetching(const Instance& inst, const OptLimits& = {});

}  // namespace bac
