#include "algs/zoo.hpp"

#include "algs/classical/classical.hpp"
#include "algs/det_online.hpp"
#include "algs/greedy_flush.hpp"
#include "algs/rounding.hpp"
#include "algs/threshold_bicriteria.hpp"

namespace bac {

std::vector<std::unique_ptr<OnlinePolicy>> make_policy_zoo(
    ZooSelection selection) {
  std::vector<std::unique_ptr<OnlinePolicy>> zoo;
  if (selection != ZooSelection::BlockAware) {
    zoo.push_back(std::make_unique<LruPolicy>());
    zoo.push_back(std::make_unique<FifoPolicy>());
    zoo.push_back(std::make_unique<LfuPolicy>());
    zoo.push_back(std::make_unique<MarkingPolicy>());
    zoo.push_back(std::make_unique<GreedyDualPolicy>());
    zoo.push_back(std::make_unique<BeladyPolicy>());
  }
  if (selection != ZooSelection::Classical) {
    zoo.push_back(std::make_unique<BlockLruPolicy>(/*prefetch=*/false));
    zoo.push_back(std::make_unique<BlockLruPolicy>(/*prefetch=*/true));
    zoo.push_back(std::make_unique<GreedyFlushPolicy>());
    zoo.push_back(std::make_unique<DetOnlineBlockAware>());
    zoo.push_back(std::make_unique<RandomizedBlockAware>());
    zoo.push_back(std::make_unique<ThresholdBicriteriaPolicy>(
        ThresholdBicriteriaPolicy::Mode::Fetching));
  }
  return zoo;
}

}  // namespace bac
