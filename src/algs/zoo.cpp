#include "algs/zoo.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "algs/policies/classical.hpp"
#include "algs/policies/modern.hpp"
#include "algs/det_online.hpp"
#include "algs/greedy_flush.hpp"
#include "algs/rounding.hpp"
#include "algs/threshold_bicriteria.hpp"

namespace bac {

std::vector<std::unique_ptr<OnlinePolicy>> make_policy_zoo(
    ZooSelection selection) {
  std::vector<std::unique_ptr<OnlinePolicy>> zoo;
  if (selection != ZooSelection::BlockAware) {
    zoo.push_back(std::make_unique<LruPolicy>());
    zoo.push_back(std::make_unique<FifoPolicy>());
    zoo.push_back(std::make_unique<LfuPolicy>());
    zoo.push_back(std::make_unique<MarkingPolicy>());
    zoo.push_back(std::make_unique<GreedyDualPolicy>());
    zoo.push_back(std::make_unique<BeladyPolicy>());
    zoo.push_back(std::make_unique<S3FifoPolicy>());
    zoo.push_back(std::make_unique<SievePolicy>());
    zoo.push_back(std::make_unique<ArcPolicy>());
  }
  if (selection != ZooSelection::Classical) {
    zoo.push_back(std::make_unique<BlockLruPolicy>(/*prefetch=*/false));
    zoo.push_back(std::make_unique<BlockLruPolicy>(/*prefetch=*/true));
    zoo.push_back(std::make_unique<BlockS3FifoPolicy>());
    zoo.push_back(std::make_unique<BlockSievePolicy>());
    zoo.push_back(std::make_unique<GreedyFlushPolicy>());
    zoo.push_back(std::make_unique<DetOnlineBlockAware>());
    zoo.push_back(std::make_unique<RandomizedBlockAware>());
    zoo.push_back(std::make_unique<ThresholdBicriteriaPolicy>(
        ThresholdBicriteriaPolicy::Mode::Fetching));
  }
  return zoo;
}

namespace {

struct NamedFactory {
  const char* name;
  std::unique_ptr<OnlinePolicy> (*make)();
  /// Knobbed construction for `name@<value>` specs; nullptr when the
  /// policy takes no knob. `knob_lo < value < knob_hi` is enforced.
  std::unique_ptr<OnlinePolicy> (*make_knob)(double);
  double knob_lo;
  double knob_hi;
  const char* knob_doc;
};

template <typename P>
std::unique_ptr<OnlinePolicy> make_plain() {
  return std::make_unique<P>();
}

const NamedFactory kRegistry[] = {
    {"lru", make_plain<LruPolicy>, nullptr, 0, 0, nullptr},
    {"fifo", make_plain<FifoPolicy>, nullptr, 0, 0, nullptr},
    {"lfu", make_plain<LfuPolicy>, nullptr, 0, 0, nullptr},
    {"marking", make_plain<MarkingPolicy>, nullptr, 0, 0, nullptr},
    {"greedy_dual", make_plain<GreedyDualPolicy>, nullptr, 0, 0, nullptr},
    {"belady", make_plain<BeladyPolicy>, nullptr, 0, 0, nullptr},
    {"s3fifo", make_plain<S3FifoPolicy>,
     [](double v) {
       return std::unique_ptr<OnlinePolicy>(std::make_unique<S3FifoPolicy>(v));
     },
     0.0, 1.0, "small-queue fraction of k"},
    {"sieve", make_plain<SievePolicy>, nullptr, 0, 0, nullptr},
    {"arc", make_plain<ArcPolicy>, nullptr, 0, 0, nullptr},
    {"block_lru",
     [] {
       return std::unique_ptr<OnlinePolicy>(
           std::make_unique<BlockLruPolicy>(false));
     },
     nullptr, 0, 0, nullptr},
    {"block_lru_prefetch",
     [] {
       return std::unique_ptr<OnlinePolicy>(
           std::make_unique<BlockLruPolicy>(true));
     },
     nullptr, 0, 0, nullptr},
    {"block_s3fifo", make_plain<BlockS3FifoPolicy>,
     [](double v) {
       return std::unique_ptr<OnlinePolicy>(
           std::make_unique<BlockS3FifoPolicy>(v));
     },
     0.0, 1.0, "small-queue fraction of the cache's block slots"},
    {"block_sieve", make_plain<BlockSievePolicy>, nullptr, 0, 0, nullptr},
    {"greedy_flush", make_plain<GreedyFlushPolicy>, nullptr, 0, 0, nullptr},
    {"det_online", make_plain<DetOnlineBlockAware>, nullptr, 0, 0, nullptr},
    {"rand_online", make_plain<RandomizedBlockAware>, nullptr, 0, 0, nullptr},
    {"threshold_fetch",
     [] {
       return std::unique_ptr<OnlinePolicy>(
           std::make_unique<ThresholdBicriteriaPolicy>(
               ThresholdBicriteriaPolicy::Mode::Fetching));
     },
     nullptr, 0, 0, nullptr},
    {"threshold_evict",
     [] {
       return std::unique_ptr<OnlinePolicy>(
           std::make_unique<ThresholdBicriteriaPolicy>(
               ThresholdBicriteriaPolicy::Mode::Eviction));
     },
     nullptr, 0, 0, nullptr},
};

std::string registry_list() {
  std::string known;
  for (const NamedFactory& f : kRegistry) {
    if (!known.empty()) known += ", ";
    known += f.name;
    if (f.make_knob != nullptr) known += "[@<value>]";
  }
  return known;
}

const char kGrammar[] =
    "a spec is <name> or <name>@<value> for knobbed policies "
    "(e.g. s3fifo, s3fifo@0.05)";

/// Plain Levenshtein distance, for did-you-mean suggestions.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

/// Closest registry name within a small edit radius, or "" if nothing
/// is plausibly a typo of `name`.
std::string nearest_name(const std::string& name) {
  std::string best;
  std::size_t best_d = 3;  // suggest only within distance 2
  for (const NamedFactory& f : kRegistry) {
    const std::size_t d = edit_distance(name, f.name);
    if (d < best_d) {
      best_d = d;
      best = f.name;
    }
  }
  return best;
}

[[noreturn]] void throw_unknown(const std::string& name,
                                const std::string& spec) {
  std::string msg = "make_policy: unknown policy '" + name + "' in spec '" +
                    spec + "'; " + kGrammar + " (known: " + registry_list() +
                    ")";
  const std::string suggestion = nearest_name(name);
  if (!suggestion.empty()) msg += "; did you mean '" + suggestion + "'?";
  throw std::invalid_argument(msg);
}

}  // namespace

std::vector<std::string> policy_names() {
  std::vector<std::string> names;
  for (const NamedFactory& f : kRegistry) names.emplace_back(f.name);
  return names;
}

std::unique_ptr<OnlinePolicy> make_policy(const std::string& spec) {
  const std::size_t at = spec.find('@');
  const std::string name = spec.substr(0, at);
  const NamedFactory* hit = nullptr;
  for (const NamedFactory& f : kRegistry)
    if (name == f.name) hit = &f;
  if (hit == nullptr) throw_unknown(name, spec);
  if (at == std::string::npos) return hit->make();

  const std::string value = spec.substr(at + 1);
  if (hit->make_knob == nullptr)
    throw std::invalid_argument("make_policy: policy '" + name +
                                "' takes no knob, but spec '" + spec +
                                "' has one; " + kGrammar);
  const char* begin = value.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (value.empty() || end != begin + value.size())
    throw std::invalid_argument("make_policy: malformed knob value '" + value +
                                "' in spec '" + spec + "'; " + kGrammar);
  if (!(v > hit->knob_lo) || !(v < hit->knob_hi))
    throw std::invalid_argument(
        "make_policy: knob value " + value + " out of range for '" + name +
        "' (" + hit->knob_doc + ", must be in (" +
        std::to_string(hit->knob_lo) + ", " + std::to_string(hit->knob_hi) +
        ")); " + kGrammar);
  return hit->make_knob(v);
}

}  // namespace bac
