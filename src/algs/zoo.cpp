#include "algs/zoo.hpp"

#include <stdexcept>

#include "algs/classical/classical.hpp"
#include "algs/det_online.hpp"
#include "algs/greedy_flush.hpp"
#include "algs/rounding.hpp"
#include "algs/threshold_bicriteria.hpp"

namespace bac {

std::vector<std::unique_ptr<OnlinePolicy>> make_policy_zoo(
    ZooSelection selection) {
  std::vector<std::unique_ptr<OnlinePolicy>> zoo;
  if (selection != ZooSelection::BlockAware) {
    zoo.push_back(std::make_unique<LruPolicy>());
    zoo.push_back(std::make_unique<FifoPolicy>());
    zoo.push_back(std::make_unique<LfuPolicy>());
    zoo.push_back(std::make_unique<MarkingPolicy>());
    zoo.push_back(std::make_unique<GreedyDualPolicy>());
    zoo.push_back(std::make_unique<BeladyPolicy>());
  }
  if (selection != ZooSelection::Classical) {
    zoo.push_back(std::make_unique<BlockLruPolicy>(/*prefetch=*/false));
    zoo.push_back(std::make_unique<BlockLruPolicy>(/*prefetch=*/true));
    zoo.push_back(std::make_unique<GreedyFlushPolicy>());
    zoo.push_back(std::make_unique<DetOnlineBlockAware>());
    zoo.push_back(std::make_unique<RandomizedBlockAware>());
    zoo.push_back(std::make_unique<ThresholdBicriteriaPolicy>(
        ThresholdBicriteriaPolicy::Mode::Fetching));
  }
  return zoo;
}

namespace {
struct NamedFactory {
  const char* name;
  std::unique_ptr<OnlinePolicy> (*make)();
};

const NamedFactory kRegistry[] = {
    {"lru", [] { return std::unique_ptr<OnlinePolicy>(
                     std::make_unique<LruPolicy>()); }},
    {"fifo", [] { return std::unique_ptr<OnlinePolicy>(
                      std::make_unique<FifoPolicy>()); }},
    {"lfu", [] { return std::unique_ptr<OnlinePolicy>(
                     std::make_unique<LfuPolicy>()); }},
    {"marking", [] { return std::unique_ptr<OnlinePolicy>(
                         std::make_unique<MarkingPolicy>()); }},
    {"greedy_dual", [] { return std::unique_ptr<OnlinePolicy>(
                             std::make_unique<GreedyDualPolicy>()); }},
    {"belady", [] { return std::unique_ptr<OnlinePolicy>(
                        std::make_unique<BeladyPolicy>()); }},
    {"block_lru", [] { return std::unique_ptr<OnlinePolicy>(
                           std::make_unique<BlockLruPolicy>(false)); }},
    {"block_lru_prefetch",
     [] { return std::unique_ptr<OnlinePolicy>(
              std::make_unique<BlockLruPolicy>(true)); }},
    {"greedy_flush", [] { return std::unique_ptr<OnlinePolicy>(
                              std::make_unique<GreedyFlushPolicy>()); }},
    {"det_online", [] { return std::unique_ptr<OnlinePolicy>(
                            std::make_unique<DetOnlineBlockAware>()); }},
    {"rand_online", [] { return std::unique_ptr<OnlinePolicy>(
                             std::make_unique<RandomizedBlockAware>()); }},
    {"threshold_fetch",
     [] { return std::unique_ptr<OnlinePolicy>(
              std::make_unique<ThresholdBicriteriaPolicy>(
                  ThresholdBicriteriaPolicy::Mode::Fetching)); }},
    {"threshold_evict",
     [] { return std::unique_ptr<OnlinePolicy>(
              std::make_unique<ThresholdBicriteriaPolicy>(
                  ThresholdBicriteriaPolicy::Mode::Eviction)); }},
};
}  // namespace

std::vector<std::string> policy_names() {
  std::vector<std::string> names;
  for (const NamedFactory& f : kRegistry) names.emplace_back(f.name);
  return names;
}

std::unique_ptr<OnlinePolicy> make_policy(const std::string& name) {
  for (const NamedFactory& f : kRegistry)
    if (name == f.name) return f.make();
  std::string known;
  for (const NamedFactory& f : kRegistry) {
    if (!known.empty()) known += ", ";
    known += f.name;
  }
  throw std::invalid_argument("make_policy: unknown policy '" + name +
                              "' (known: " + known + ")");
}

}  // namespace bac
