// Algorithm 2: the O(log k)-competitive monotone-incremental fractional
// algorithm for block-aware caching with eviction cost (Theorem 3.6).
//
// While some primal constraint (S', tau) with S' >= S is violated (found by
// a separation oracle), the dual variable y_{S'}^tau rises continuously and
// every *alive* flush (B, t) grows according to the paper's (3.4):
//
//   d phi_B^t / dy = ln(k*beta + 1)/c_B * f_tau((B,t)|S') * (phi_B^t + 1/(k*beta))
//
// until the first alive flush with marginal >= 1 reaches phi = 1 (which is
// exactly when its dual constraint becomes tight — see Lemma 3.8); that
// flush joins the integral set S. The dynamics integrate in closed form,
//   phi(y + d) = (phi(y) + eps) * exp(eta_B * f * d) - eps,
// with eps = 1/(k*beta) and eta_B = ln(k*beta+1)/c_B, so each iteration
// computes the minimal tightening d over the alive candidates directly; no
// numerical ODE stepping is involved.
//
// The solution only ever increases (monotone-incremental); all increments
// are reported per step so the online rounding (Algorithm 3) can consume
// them without seeing the future.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/policy.hpp"
#include "submodular/flush_coverage.hpp"
#include "submodular/flush_vars.hpp"
#include "submodular/separation.hpp"

namespace bac {

struct FractionalIncrement {
  BlockId b = 0;
  Time t = 0;         ///< the flush variable's time index (may be < tau)
  double delta = 0;   ///< amount added
  double new_value = 0;
};

class FractionalBlockAware {
 public:
  /// `oracle` defaults to ThresholdSeparation. k and beta come from the
  /// instance structure.
  FractionalBlockAware(const BlockMap& blocks, int k,
                       std::unique_ptr<SeparationOracle> oracle = nullptr);

  /// Serve the request to p at time t; returns this step's increments.
  const std::vector<FractionalIncrement>& step(Time t, PageId p);

  /// Fractional eviction cost sum c_B phi_B^t over t >= 1.
  [[nodiscard]] double fractional_cost() const {
    return vars_.total_cost(*blocks_);
  }
  /// Feasible dual objective (lower bound on fractional OPT).
  [[nodiscard]] double dual_objective() const noexcept { return dual_obj_; }
  [[nodiscard]] const FlushVars& vars() const noexcept { return vars_; }
  [[nodiscard]] const FlushSet& integral_set() const { return *S_; }
  [[nodiscard]] const FlushCoverage& coverage() const { return *cov_; }
  /// Flushes integrally chosen so far (excluding the free time-0 ones).
  [[nodiscard]] long long integral_flushes() const noexcept {
    return integral_flushes_;
  }

 private:
  const BlockMap* blocks_;
  int k_;
  double eps_;      // 1/(k*beta)
  double log_term_; // ln(k*beta + 1)
  std::unique_ptr<SeparationOracle> oracle_;
  std::optional<FlushCoverage> cov_;
  std::optional<FlushSet> S_;
  FlushVars vars_;
  double dual_obj_ = 0;
  long long integral_flushes_ = 0;
  std::vector<FractionalIncrement> increments_;
};

}  // namespace bac
