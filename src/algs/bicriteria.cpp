#include "algs/bicriteria.hpp"

#include <algorithm>

#include "core/cache_set.hpp"
#include "core/cost_meter.hpp"

namespace bac {

namespace {

/// Shared bookkeeping: replay per-step fetch/evict decisions, metering
/// batched costs and tracking the cache-size peak.
class Replayer {
 public:
  explicit Replayer(const Instance& inst)
      : inst_(&inst), cache_(inst.n_pages()), meter_(inst.blocks) {
    out_.schedule.steps.resize(static_cast<std::size_t>(inst.horizon()));
  }

  void begin(Time t) {
    t_ = t;
    meter_.begin_step(t);
  }
  void evict(PageId p) {
    if (cache_.erase(p)) {
      meter_.on_evict(p);
      out_.schedule.steps[static_cast<std::size_t>(t_ - 1)]
          .evictions.push_back(p);
    }
  }
  void fetch(PageId p) {
    if (cache_.insert(p)) {
      meter_.on_fetch(p);
      out_.schedule.steps[static_cast<std::size_t>(t_ - 1)]
          .fetches.push_back(p);
    }
  }
  void end_step() {
    out_.max_cache_used = std::max(out_.max_cache_used, cache_.size());
  }
  [[nodiscard]] bool contains(PageId p) const { return cache_.contains(p); }

  BicriteriaOutcome finish() {
    out_.fetch_cost = meter_.fetch_cost();
    out_.eviction_cost = meter_.eviction_cost();
    return std::move(out_);
  }

 private:
  const Instance* inst_;
  CacheSet cache_;
  CostMeter meter_;
  Time t_ = 0;
  BicriteriaOutcome out_;
};

}  // namespace

BicriteriaOutcome round_fetch_threshold(
    const Instance& inst, const std::vector<std::vector<double>>& x) {
  Replayer rp(inst);
  const Time T = inst.horizon();
  for (Time t = 1; t <= T; ++t) {
    rp.begin(t);
    const auto& xt = x[static_cast<std::size_t>(t)];
    // Evict pages whose fractional missing mass exceeds 1/2 (free).
    for (PageId p = 0; p < inst.n_pages(); ++p)
      if (xt[static_cast<std::size_t>(p)] > 0.5) rp.evict(p);
    // On a miss, fetch all eligible pages of the requested block.
    const PageId req = inst.request_at(t);
    if (!rp.contains(req)) {
      const BlockId b = inst.blocks.block_of(req);
      for (PageId q : inst.blocks.pages_in(b))
        if (xt[static_cast<std::size_t>(q)] <= 0.5) rp.fetch(q);
    }
    rp.end_step();
  }
  return rp.finish();
}

BicriteriaOutcome round_evict_threshold(
    const Instance& inst, const std::vector<std::vector<double>>& x) {
  Replayer rp(inst);
  const Time T = inst.horizon();
  for (Time t = 1; t <= T; ++t) {
    rp.begin(t);
    const auto& xt = x[static_cast<std::size_t>(t)];
    const auto& xprev = x[static_cast<std::size_t>(t - 1)];
    // A cached page crossing above 1/2 flushes its whole block (batched).
    for (PageId p = 0; p < inst.n_pages(); ++p) {
      if (xt[static_cast<std::size_t>(p)] > 0.5 &&
          xprev[static_cast<std::size_t>(p)] <= 0.5 && rp.contains(p)) {
        const BlockId b = inst.blocks.block_of(p);
        for (PageId q : inst.blocks.pages_in(b))
          if (xt[static_cast<std::size_t>(q)] > 0.5) rp.evict(q);
      }
    }
    const PageId req = inst.request_at(t);
    if (!rp.contains(req)) rp.fetch(req);  // free under eviction costs
    rp.end_step();
  }
  return rp.finish();
}

Cost fractional_block_fetch_cost(const Instance& inst,
                                 const std::vector<std::vector<double>>& x) {
  Cost total = 0;
  for (Time t = 1; t <= inst.horizon(); ++t) {
    for (BlockId b = 0; b < inst.blocks.n_blocks(); ++b) {
      double max_dec = 0;
      for (PageId p : inst.blocks.pages_in(b))
        max_dec = std::max(
            max_dec, x[static_cast<std::size_t>(t - 1)][static_cast<std::size_t>(p)] -
                         x[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)]);
      if (max_dec > 0) total += inst.blocks.cost(b) * max_dec;
    }
  }
  return total;
}

Cost fractional_block_evict_cost(const Instance& inst,
                                 const std::vector<std::vector<double>>& x) {
  Cost total = 0;
  for (Time t = 1; t <= inst.horizon(); ++t) {
    for (BlockId b = 0; b < inst.blocks.n_blocks(); ++b) {
      double max_inc = 0;
      for (PageId p : inst.blocks.pages_in(b))
        max_inc = std::max(
            max_inc, x[static_cast<std::size_t>(t)][static_cast<std::size_t>(p)] -
                         x[static_cast<std::size_t>(t - 1)][static_cast<std::size_t>(p)]);
      if (max_inc > 0) total += inst.blocks.cost(b) * max_inc;
    }
  }
  return total;
}

Time check_fractional_feasible(const Instance& inst,
                               const std::vector<std::vector<double>>& x,
                               double tol) {
  const double need = static_cast<double>(inst.n_pages() - inst.k);
  for (Time t = 1; t <= inst.horizon(); ++t) {
    const auto& xt = x[static_cast<std::size_t>(t)];
    if (xt[static_cast<std::size_t>(inst.request_at(t))] > tol) return t;
    double sum = 0;
    for (double v : xt) sum += v;
    if (sum < need - tol) return t;
  }
  return 0;
}

}  // namespace bac
