// Algorithm 1: the k-competitive deterministic online algorithm for
// block-aware caching with eviction cost (Theorem 3.3).
//
// Primal-dual over the submodular-cover LP (P)/(D). On a cache overflow at
// time tau the algorithm raises the dual variable y_S^tau until the dual
// constraint of some flush (B, t) becomes tight, then performs the flush
// (B, tau). Since exactly one page is requested per step, an overflow
// always has |C| = k + 1, so n - k - f_tau(S) = 1 and every non-zero capped
// marginal equals 1; raising y therefore adds the same increment to the
// dual load of every flush with positive marginal, and the first
// constraint to tighten is the one with maximal accumulated load.
//
// Dual-load bookkeeping: for block B with last flush at m_B, the flushes
// with positive marginal at an overflow are exactly those with
// t >= theta(B) := (smallest last-request value in B that is >= m_B) + 1,
// and theta(B) is itself an "alive" time, so tracking loads at the times
// that were ever alive since B's last flush is exhaustive: any untracked
// time is dominated by the nearest tracked time below it (same or larger
// load, tighter no earlier). Tracked entries are cleared when their block
// is flushed, which keeps the state linear in the requests since the last
// flush.
//
// The accumulated dual objective is a certified lower bound on the optimal
// (fractional) eviction cost — benches use it as the denominator for
// competitive-ratio estimates where exact OPT is out of reach.
#pragma once

#include <optional>
#include <vector>

#include "algs/dual_verifier.hpp"
#include "core/policy.hpp"
#include "submodular/flush_coverage.hpp"

namespace bac {

class DetOnlineBlockAware final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "BA-Det(Alg1)"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    // Valid after reset(), which re-emplaces cov_/S_ (the copied S_ still
    // references the source's coverage until then).
    return std::make_unique<DetOnlineBlockAware>(*this);
  }

  /// Feasible dual objective accumulated so far (lower bound on OPT_evict).
  [[nodiscard]] double dual_objective() const noexcept { return dual_obj_; }
  /// Number of flushes performed (primal cost = sum of their block costs).
  [[nodiscard]] long long flushes() const noexcept { return flushes_; }
  /// Primal cost paid so far (sum of flushed blocks' costs).
  [[nodiscard]] double primal_cost() const noexcept { return primal_cost_; }

  /// Test hook: maximum dual load observed relative to its block cost
  /// (must stay <= 1 + epsilon for dual feasibility).
  [[nodiscard]] double max_load_ratio() const noexcept {
    return max_load_ratio_;
  }

  /// Record every dual increase with full state snapshots, enabling an
  /// exhaustive off-line audit via audit_dual_feasibility. O(n) extra work
  /// per overflow — tests and small experiments only.
  void enable_event_log() { log_events_ = true; }
  [[nodiscard]] const std::vector<DualEvent>& event_log() const noexcept {
    return events_;
  }

 private:
  struct Entry {
    Time t = 0;
    double load = 0;
  };

  const BlockMap* blocks_ = nullptr;
  int k_ = 0;
  std::optional<FlushCoverage> cov_;
  std::optional<FlushSet> S_;
  std::vector<std::vector<Entry>> entries_;  // per block, sorted by t
  double dual_obj_ = 0;
  double primal_cost_ = 0;
  long long flushes_ = 0;
  double max_load_ratio_ = 0;
  bool log_events_ = false;
  std::vector<DualEvent> events_;
};

}  // namespace bac
