#include "algs/threshold_bicriteria.hpp"

#include <algorithm>

namespace bac {

void ThresholdBicriteriaPolicy::reset(const Instance& inst) {
  // Virtual fractional cache of h = max(1, k/2) pages; the rounded cache
  // then provably fits within k. The instance copy must outlive frac_,
  // which keeps references into it.
  half_.emplace(inst);
  half_->k = std::max(1, inst.k / 2);
  if (half_->k < inst.blocks.beta()) half_->k = inst.blocks.beta();
  frac_.emplace(*half_);
  prev_x_.assign(static_cast<std::size_t>(inst.n_pages()), 1.0);
}

void ThresholdBicriteriaPolicy::on_request(Time /*t*/, PageId p,
                                           CacheOps& cache) {
  const std::vector<double>& x = frac_->step(p);
  const BlockMap& blocks = cache.blocks();

  if (mode_ == Mode::Fetching) {
    // Evict everything above the threshold (free), then batch-fetch the
    // requested block's eligible pages on a miss.
    for (PageId q = 0; q < blocks.n_pages(); ++q)
      if (x[static_cast<std::size_t>(q)] > 0.5 && cache.contains(q))
        cache.evict(q);
    if (!cache.contains(p)) {
      for (PageId q : blocks.pages_in(blocks.block_of(p)))
        if (x[static_cast<std::size_t>(q)] <= 0.5) cache.fetch(q);
    }
  } else {
    // Eviction variant: crossing above 1/2 flushes the block's crossed
    // pages in one batch; fetching is free, so fetch only the request.
    for (PageId q = 0; q < blocks.n_pages(); ++q) {
      if (x[static_cast<std::size_t>(q)] > 0.5 &&
          prev_x_[static_cast<std::size_t>(q)] <= 0.5 && cache.contains(q)) {
        for (PageId r : blocks.pages_in(blocks.block_of(q)))
          if (x[static_cast<std::size_t>(r)] > 0.5) cache.evict(r);
      }
    }
    if (!cache.contains(p)) cache.fetch(p);
  }

  // Safety: the fractional invariant bounds |{x <= 1/2}| by 2h <= k, but
  // guard against the h < beta adjustment edge with explicit eviction of
  // the largest-x cached pages.
  while (cache.size() > cache.capacity()) {
    PageId victim = -1;
    double worst = -1;
    for (PageId q : cache.pages()) {
      if (q == p) continue;
      if (x[static_cast<std::size_t>(q)] > worst) {
        worst = x[static_cast<std::size_t>(q)];
        victim = q;
      }
    }
    if (victim < 0) break;
    cache.evict(victim);
  }
  prev_x_ = x;
}

}  // namespace bac
