#include "algs/greedy_flush.hpp"

#include <stdexcept>

namespace bac {

void GreedyFlushPolicy::reset(const Instance& inst) {
  cached_count_.assign(static_cast<std::size_t>(inst.blocks.n_blocks()), 0);
}

void GreedyFlushPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  const BlockMap& blocks = cache.blocks();
  const BlockId pb = blocks.block_of(p);
  if (!cache.contains(p)) {
    cache.fetch(p);  // free under eviction costs
    ++cached_count_[static_cast<std::size_t>(pb)];
  }
  if (cache.size() <= cache.capacity()) return;

  // Wolsey step: flush argmax_b evictable(b) / c_b. The requested page is
  // protected, so its block's evictable count excludes it.
  BlockId best = -1;
  double best_ratio = 0;
  for (BlockId b = 0; b < blocks.n_blocks(); ++b) {
    int evictable = cached_count_[static_cast<std::size_t>(b)];
    if (b == pb) --evictable;
    if (evictable <= 0) continue;
    const double ratio = static_cast<double>(evictable) / blocks.cost(b);
    if (best < 0 || ratio > best_ratio) {
      best = b;
      best_ratio = ratio;
    }
  }
  if (best < 0) throw std::logic_error("GreedyFlush: nothing evictable");
  const int evicted = cache.flush_block(best, p);
  cached_count_[static_cast<std::size_t>(best)] -= evicted;
}

}  // namespace bac
