#include "algs/lower_bounds.hpp"

#include <stdexcept>

#include "algs/opt.hpp"

namespace bac {

Cost lp_lower_bound(const Instance& inst, CostModel model,
                    const SimplexOptions& options) {
  const NaiveLpResult res = solve_naive_lp(inst, model, options);
  if (res.status != LpStatus::Optimal)
    throw std::runtime_error("lp_lower_bound: simplex did not converge");
  return res.objective;
}

EvictionLowerBound eviction_lower_bound(const Instance& inst,
                                        int exact_cutoff_pages,
                                        long long max_lp_cells) {
  EvictionLowerBound out;
  if (inst.n_pages() <= exact_cutoff_pages) {
    const OptResult r = exact_opt_eviction(inst);
    if (r.exact) {
      out.value = r.cost;
      out.source = EvictionLowerBound::Source::Exact;
      return out;
    }
  }
  // Dense-simplex budget heuristic: (rows) x (cols) cells of the tableau.
  const long long T = inst.horizon();
  const long long n = inst.n_pages();
  const long long rows = T * (n + 2);
  const long long cols = T * (n + inst.blocks.n_blocks());
  if (rows * cols <= max_lp_cells) {
    out.value = lp_lower_bound(inst, CostModel::Eviction);
    out.source = EvictionLowerBound::Source::Lp;
  }
  return out;
}

}  // namespace bac
