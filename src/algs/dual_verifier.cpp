#include "algs/dual_verifier.hpp"

#include <algorithm>

namespace bac {

DualAudit audit_dual_feasibility(const Instance& inst,
                                 const std::vector<DualEvent>& events) {
  DualAudit audit;
  const int n_blocks = inst.blocks.n_blocks();
  const Time T = inst.horizon();

  for (BlockId b = 0; b < n_blocks; ++b) {
    const auto pages = inst.blocks.pages_in(b);
    for (Time t = 0; t <= T; ++t) {
      double load = 0;
      for (const DualEvent& ev : events) {
        if (t > ev.tau) continue;  // future flush: coefficient 0
        const Time m = ev.max_flush[static_cast<std::size_t>(b)];
        if (t <= m) continue;  // dominated by S's own flush
        // Capped marginal: at an overflow event cap - f(S) == 1, so the
        // coefficient is 1 iff any page becomes newly missing.
        int gm = 0;
        for (PageId p : pages) {
          const Time r = ev.last_request[static_cast<std::size_t>(p)];
          if (r >= m && r < t) {
            gm = 1;
            break;
          }
        }
        if (gm > 0) load += ev.delta;
      }
      const double ratio = load / inst.blocks.cost(b);
      if (ratio > audit.max_load_ratio) {
        audit.max_load_ratio = ratio;
        audit.worst_block = b;
        audit.worst_time = t;
      }
    }
  }
  for (const DualEvent& ev : events) audit.objective += ev.delta;
  return audit;
}

}  // namespace bac
