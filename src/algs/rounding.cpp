#include "algs/rounding.hpp"

#include <algorithm>
#include <cmath>

namespace bac {

void RandomizedBlockAware::reset(const Instance& inst) {
  blocks_ = &inst.blocks;
  k_ = inst.k;
  frac_.emplace(inst.blocks, inst.k);

  const double kd = static_cast<double>(k_);
  const double delta = inst.blocks.aspect_ratio();
  gamma_ = options_.gamma_override > 0
               ? options_.gamma_override
               : std::log(4.0 * kd * kd * inst.blocks.beta() * delta);
  gamma_ = std::max(gamma_, 1.0);
  emit_threshold_ = options_.apply_structure ? 1.0 / (4.0 * kd * kd) : 0.0;

  pending_.assign(static_cast<std::size_t>(inst.blocks.n_blocks()), 0.0);
  last_emit_.assign(static_cast<std::size_t>(inst.blocks.n_blocks()), 0);
  last_request_.assign(static_cast<std::size_t>(inst.n_pages()),
                       kNeverRequested);
  half_charged_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
  structured_cost_ = 0;
  alterations_ = 0;
  fallback_alterations_ = 0;
}

int RandomizedBlockAware::evict_positive(BlockId b, Time now,
                                         CacheOps& cache) {
  int evicted = 0;
  for (PageId q : blocks_->pages_in(b)) {
    if (!cache.contains(q)) continue;
    if (!x_positive(q, now)) continue;
    cache.evict(q);
    ++evicted;
  }
  return evicted;
}

void RandomizedBlockAware::on_request(Time t, PageId p, CacheOps& cache) {
  // 1. Fractional step.
  const auto& increments = frac_->step(t, p);

  // 2. Structure transform: accumulate raw mass; decide per-block emission.
  //    full_evict: some page crossed x >= 1/2 since its last request.
  std::vector<std::pair<BlockId, double>> emissions;  // (block, mass)
  {
    // Collect blocks touched this step (increments are grouped arbitrarily).
    for (const FractionalIncrement& inc : increments)
      pending_[static_cast<std::size_t>(inc.b)] += inc.delta;

    std::vector<BlockId> touched;
    for (const FractionalIncrement& inc : increments)
      if (touched.empty() || touched.back() != inc.b ||
          std::find(touched.begin(), touched.end(), inc.b) == touched.end())
        touched.push_back(inc.b);
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

    for (BlockId b : touched) {
      double& pend = pending_[static_cast<std::size_t>(b)];
      bool full = false;
      if (options_.apply_structure) {
        // Half-crossing check: any page of b with raw x >= 1/2 that has not
        // yet triggered a full eviction since its last request.
        for (PageId q : blocks_->pages_in(b)) {
          if (half_charged_[static_cast<std::size_t>(q)]) continue;
          if (q == p) continue;
          const double xq = frac_->vars().x_value(frac_->coverage(), q);
          if (xq >= 0.5 && xq < 1.0) {
            full = true;
            half_charged_[static_cast<std::size_t>(q)] = 1;
          }
        }
      }
      if (full) {
        emissions.emplace_back(b, 1.0);
        structured_cost_ += blocks_->cost(b);
        pend = 0;
      } else if (pend >= emit_threshold_ && pend > 0) {
        const double mass = std::min(2.0 * pend, 1.0);
        emissions.emplace_back(b, mass);
        structured_cost_ += blocks_->cost(b) * mass;
        pend = 0;
      }
    }
  }

  // 3. Rounding. Requests reset x first so the requested page never leaves.
  last_request_[static_cast<std::size_t>(p)] = t;
  half_charged_[static_cast<std::size_t>(p)] = 0;

  for (const auto& [b, mass] : emissions) {
    last_emit_[static_cast<std::size_t>(b)] = t;
    if (rng_.bernoulli(std::min(1.0, gamma_ * mass)))
      evict_positive(b, t, cache);
  }

  cache.fetch(p);  // free under eviction costs

  // Alteration loop: restore feasibility by flushing positive-x blocks.
  while (cache.size() > k_) {
    BlockId victim = -1;
    for (PageId q : cache.pages()) {
      if (q != p && x_positive(q, t)) {
        victim = blocks_->block_of(q);
        break;
      }
    }
    if (victim >= 0) {
      evict_positive(victim, t, cache);
      ++alterations_;
      continue;
    }
    // No positive-x page cached (fractional slack got absorbed by the
    // transform's pending masses): force-emit the block with the largest
    // pending mass, or evict an arbitrary page as a last resort.
    BlockId best = -1;
    double best_pend = 0;
    for (PageId q : cache.pages()) {
      if (q == p) continue;
      const BlockId b = blocks_->block_of(q);
      const double pend = pending_[static_cast<std::size_t>(b)];
      if (best < 0 || pend > best_pend) {
        best = b;
        best_pend = pend;
      }
    }
    if (best >= 0) {
      last_emit_[static_cast<std::size_t>(best)] = t;
      pending_[static_cast<std::size_t>(best)] = 0;
      structured_cost_ += blocks_->cost(best);
      const int evicted = evict_positive(best, t, cache);
      ++alterations_;
      ++fallback_alterations_;
      if (evicted == 0) {
        // Truly nothing to evict by x-rules; evict one arbitrary page.
        for (PageId q : cache.pages()) {
          if (q != p) {
            cache.evict(q);
            break;
          }
        }
      }
    } else {
      break;  // only the requested page is cached; cannot overflow
    }
  }
}

}  // namespace bac
