#include "algs/opt.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/flat_hash.hpp"

namespace bac {

namespace {

using Mask = std::uint64_t;
/// Mask -> cost layers live on the open-addressing FlatMap: the DP's
/// inner loop is try_emplace/min over millions of states, and the layers
/// ping-pong through reset() so the steady state allocates nothing.
/// Results are iteration-order independent (relax is a min; pruning
/// removes exactly the non-maximal states; the trim's nth_element uses
/// the total order on (cost, mask)), so swapping the container keeps
/// costs bit-identical.
using Layer = FlatMap<Mask, Cost>;

void relax(Layer& layer, Mask m, Cost c) {
  auto [cost, inserted] = layer.try_emplace(m, c);
  if (!inserted && c < *cost) *cost = c;
}

/// Remove states dominated by another state with cost <= theirs whose cache
/// is a superset (fetch model) or subset (eviction model).
void prune_dominated(Layer& layer, bool superset_dominates) {
  if (layer.size() > 4096) return;  // quadratic pass not worth it
  std::vector<std::pair<Mask, Cost>> states(layer.begin(), layer.end());
  std::vector<char> dead(states.size(), 0);
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (dead[i]) continue;
    for (std::size_t j = 0; j < states.size(); ++j) {
      if (i == j || dead[j]) continue;
      const bool subset = (states[j].first & states[i].first) == states[j].first;
      const bool superset =
          (states[i].first & states[j].first) == states[i].first;
      const bool dominated =
          states[i].second >= states[j].second &&
          (superset_dominates ? superset : subset) &&
          (states[i].first != states[j].first);
      if (dominated) {
        dead[i] = 1;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < states.size(); ++i)
    if (dead[i]) layer.erase(states[i].first);
}

struct Prepared {
  std::vector<Mask> block_mask;
  int n = 0;
};

Prepared prepare(const Instance& inst) {
  inst.validate();
  if (inst.n_pages() > 62)
    throw std::invalid_argument("exact OPT: n_pages must be <= 62");
  Prepared prep;
  prep.n = inst.n_pages();
  prep.block_mask.assign(static_cast<std::size_t>(inst.blocks.n_blocks()), 0);
  for (PageId p = 0; p < inst.n_pages(); ++p)
    prep.block_mask[static_cast<std::size_t>(inst.blocks.block_of(p))] |=
        Mask{1} << p;
  return prep;
}

/// Enumerate all size-`want` subsets of `pool` (list of page ids), invoking
/// fn(evict_mask).
template <typename Fn>
void for_each_combination(const std::vector<PageId>& pool, int want, Fn&& fn) {
  std::vector<int> idx(static_cast<std::size_t>(want));
  const int n = static_cast<int>(pool.size());
  if (want > n) return;
  for (int i = 0; i < want; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (;;) {
    Mask m = 0;
    for (int i : idx) m |= Mask{1} << pool[static_cast<std::size_t>(i)];
    fn(m);
    // advance
    int pos = want - 1;
    while (pos >= 0 &&
           idx[static_cast<std::size_t>(pos)] == n - want + pos)
      --pos;
    if (pos < 0) return;
    ++idx[static_cast<std::size_t>(pos)];
    for (int i = pos + 1; i < want; ++i)
      idx[static_cast<std::size_t>(i)] = idx[static_cast<std::size_t>(i - 1)] + 1;
  }
}

OptResult finish(const Layer& layer, bool exact, std::size_t peak) {
  OptResult out;
  out.exact = exact;
  out.peak_layer_states = peak;
  Cost best = std::numeric_limits<Cost>::infinity();
  for (const auto& [m, c] : layer) best = std::min(best, c);
  out.cost = best;
  return out;
}

}  // namespace

OptResult exact_opt_eviction(const Instance& inst, const OptLimits& limits) {
  const Prepared prep = prepare(inst);
  Layer layer;
  layer.try_emplace(Mask{0}, 0.0);
  std::size_t peak = 1;
  bool exact = true;

  // The two layers ping-pong via swap + reset, reusing their slot arrays
  // across all T time steps once they reach steady-state capacity.
  Layer next;
  for (Time t = 1; t <= inst.horizon(); ++t) {
    const PageId p = inst.request_at(t);
    const Mask pbit = Mask{1} << p;
    next.reset();
    for (const auto& [mask, cost] : layer) {
      const Mask m1 = mask | pbit;  // fetch p (free in eviction model)
      if (static_cast<int>(std::popcount(m1)) <= inst.k) {
        relax(next, m1, cost);
        continue;  // not overflowing: flushing now is dominated by deferring
      }
      // Overflow (|m1| == k+1): flush exactly one block holding a cached
      // page other than p (deferring any additional flush dominates).
      for (BlockId b = 0; b < inst.blocks.n_blocks(); ++b) {
        const Mask bm = prep.block_mask[static_cast<std::size_t>(b)];
        if ((m1 & bm & ~pbit) == 0) continue;  // nothing to evict
        const Mask m2 = (m1 & ~bm) | pbit;
        relax(next, m2, cost + inst.blocks.cost(b));
      }
    }
    if (limits.dominance_pruning)
      prune_dominated(next, /*superset_dominates=*/false);
    if (next.size() > limits.max_layer_states) {
      exact = false;
      // Keep the cheapest states to produce a lower... upper bound; mark
      // inexact. (Callers treat inexact results as heuristic upper bounds.)
      std::vector<std::pair<Cost, Mask>> order;
      order.reserve(next.size());
      for (const auto& [m, c] : next) order.emplace_back(c, m);
      std::nth_element(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(
                                           limits.max_layer_states),
                       order.end());
      next.reset();
      for (std::size_t i = 0; i < limits.max_layer_states; ++i)
        next.try_emplace(order[i].second, order[i].first);
    }
    peak = std::max(peak, next.size());
    layer.swap(next);
  }
  return finish(layer, exact, peak);
}

OptResult exact_opt_fetching(const Instance& inst, const OptLimits& limits) {
  const Prepared prep = prepare(inst);
  Layer layer;
  layer.try_emplace(Mask{0}, 0.0);
  std::size_t peak = 1;
  bool exact = true;

  // Same ping-pong reuse as the eviction solver.
  Layer next;
  for (Time t = 1; t <= inst.horizon(); ++t) {
    const PageId p = inst.request_at(t);
    const Mask pbit = Mask{1} << p;
    const BlockId pb = inst.blocks.block_of(p);
    const Mask pbm = prep.block_mask[static_cast<std::size_t>(pb)];
    next.reset();

    for (const auto& [mask, cost] : layer) {
      if (mask & pbit) {
        relax(next, mask, cost);  // hit: evictions are deferred (free)
        continue;
      }
      // Miss: fetch any subset of the block containing p (one batched
      // fetch), then evict exactly the overflow (free).
      std::vector<PageId> others;  // block pages currently absent, != p
      for (PageId q = 0; q < inst.n_pages(); ++q)
        if ((pbm >> q) & 1)
          if (q != p && !((mask >> q) & 1)) others.push_back(q);

      const auto n_others = static_cast<std::uint32_t>(others.size());
      for (std::uint32_t sub = 0; sub < (1u << n_others); ++sub) {
        Mask fetched = pbit;
        for (std::uint32_t i = 0; i < n_others; ++i)
          if ((sub >> i) & 1)
            fetched |= Mask{1} << others[static_cast<std::size_t>(i)];
        const Mask m2 = mask | fetched;
        const Cost cost2 = cost + inst.blocks.cost(pb);
        const int excess = static_cast<int>(std::popcount(m2)) - inst.k;
        if (excess <= 0) {
          relax(next, m2, cost2);
          continue;
        }
        std::vector<PageId> evictable;
        for (PageId q = 0; q < inst.n_pages(); ++q)
          if (((m2 >> q) & 1) && q != p) evictable.push_back(q);
        for_each_combination(evictable, excess, [&](Mask evict_mask) {
          relax(next, m2 & ~evict_mask, cost2);
        });
      }
    }
    if (limits.dominance_pruning)
      prune_dominated(next, /*superset_dominates=*/true);
    if (next.size() > limits.max_layer_states) {
      exact = false;
      std::vector<std::pair<Cost, Mask>> order;
      order.reserve(next.size());
      for (const auto& [m, c] : next) order.emplace_back(c, m);
      std::nth_element(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(
                                           limits.max_layer_states),
                       order.end());
      next.reset();
      for (std::size_t i = 0; i < limits.max_layer_states; ++i)
        next.try_emplace(order[i].second, order[i].first);
    }
    peak = std::max(peak, next.size());
    layer.swap(next);
  }
  return finish(layer, exact, peak);
}

}  // namespace bac
