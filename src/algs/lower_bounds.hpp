// Certified lower bounds on OPT for competitive-ratio denominators.
//
// Three sources, by instance size:
//  - exact OPT (algs/opt.hpp) for toy instances,
//  - the naive LP (A.1) value via simplex for small instances,
//  - the dual objectives maintained by the primal-dual algorithms
//    (DetOnlineBlockAware / FractionalBlockAware) for anything larger.
// Every one of them lower-bounds the true optimum in its cost model, so
// ratios computed against them only over-estimate the competitive ratio —
// the safe direction for reproducing the paper's upper-bound claims.
#pragma once

#include "core/instance.hpp"
#include "lp/naive_lp.hpp"

namespace bac {

/// Naive-LP lower bound on OPT in the given model. Throws if the simplex
/// does not reach optimality within its pivot budget.
Cost lp_lower_bound(const Instance& inst, CostModel model,
                    const SimplexOptions& options = {});

/// Best available lower bound on OPT_evict for an instance: exact OPT when
/// n_pages <= `exact_cutoff_pages`, otherwise the LP value when the model
/// is small enough for the dense simplex, otherwise 0 (caller falls back
/// to a dual objective).
struct EvictionLowerBound {
  Cost value = 0;
  enum class Source { Exact, Lp, None } source = Source::None;
};
EvictionLowerBound eviction_lower_bound(const Instance& inst,
                                        int exact_cutoff_pages = 14,
                                        long long max_lp_cells = 4'000'000);

}  // namespace bac
