#include "algs/fractional.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bac {

FractionalBlockAware::FractionalBlockAware(
    const BlockMap& blocks, int k, std::unique_ptr<SeparationOracle> oracle)
    : blocks_(&blocks),
      k_(k),
      eps_(1.0 / (static_cast<double>(k) * blocks.beta())),
      log_term_(std::log(static_cast<double>(k) * blocks.beta() + 1.0)),
      oracle_(oracle ? std::move(oracle)
                     : std::make_unique<ThresholdSeparation>()),
      vars_(blocks.n_blocks()) {
  cov_.emplace(blocks, k);
  S_.emplace(*cov_);  // S = {(B, 0)}: free initial clear
  for (BlockId b = 0; b < blocks.n_blocks(); ++b) vars_.raise_to(b, 0, 1.0);
}

const std::vector<FractionalIncrement>& FractionalBlockAware::step(Time t,
                                                                   PageId p) {
  increments_.clear();
  FlushSet* sets[] = {&*S_};
  cov_->advance(p, t, sets);

  struct Candidate {
    BlockId b;
    Time t;
    int coeff;   // capped marginal w.r.t. S'
    double phi;
  };
  std::vector<Candidate> alive;

  // Paranoia bound: adoptions raise g(S) by >= 1 (capped at n) and
  // saturation iterations strictly satisfy the oracle's constraint, so the
  // loop terminates; the generous cap guards against numerical stalls.
  const int max_iters = 20 * cov_->n() + 200;
  for (int iter = 0;; ++iter) {
    if (iter > max_iters)
      throw std::logic_error("FractionalBlockAware: while-loop not converging");

    const auto violation = oracle_->find_violated(*S_, vars_);
    if (!violation) break;
    const FlushSet& sprime = violation->sprime;

    // Gather alive flushes and their capped marginals w.r.t. S'.
    alive.clear();
    for (BlockId b = 0; b < blocks_->n_blocks(); ++b) {
      for (Time at : cov_->alive_times(b)) {
        if (at > t) continue;  // flush strictly in the future: untouchable
        const int coeff = sprime.f_marginal(b, at);
        if (coeff <= 0) continue;
        alive.push_back({b, at, coeff, vars_.get(b, at)});
      }
    }

    // d_tight: minimal dual increase making some alive flush with
    // coeff >= 1 reach phi = 1 (its dual constraint tightens then).
    double d_tight = std::numeric_limits<double>::infinity();
    std::size_t chosen = alive.size();
    for (std::size_t i = 0; i < alive.size(); ++i) {
      const Candidate& c = alive[i];
      if (c.phi >= 1.0 - 1e-12) {
        // Already fully evicted fractionally but not yet in S: adopt it
        // immediately (d = 0).
        d_tight = 0.0;
        chosen = i;
        break;
      }
      const double eta = log_term_ / blocks_->cost(c.b);
      const double d =
          std::log((1.0 + eps_) / (c.phi + eps_)) / (eta * c.coeff);
      if (d < d_tight) {
        d_tight = d;
        chosen = i;
      }
    }
    if (chosen == alive.size())
      throw std::logic_error(
          "FractionalBlockAware: violated constraint but no alive candidate");

    // d_sat: the dual increase at which the violated constraint becomes
    // exactly satisfied — the paper's continuous while-condition stops the
    // growth there. LHS(d) is monotone; bisect. (Without this cutoff every
    // candidate would grow all the way to phi = 1, inflating the primal by
    // a Theta(k) factor — see Lemma 3.11's inequality (3.6), which is only
    // valid while the constraint is violated.)
    const double rhs = violation->rhs;
    auto lhs_at = [&](double d) {
      double lhs = 0;
      for (const Candidate& c : alive) {
        const double eta = log_term_ / blocks_->cost(c.b);
        const double phi =
            std::min(1.0, (c.phi + eps_) * std::exp(eta * c.coeff * d) - eps_);
        lhs += static_cast<double>(c.coeff) * phi;
      }
      return lhs;
    };
    double dstar = d_tight;
    bool adopt = true;
    if (d_tight > 0 && lhs_at(d_tight) >= rhs) {
      adopt = false;  // saturation happens first; no variable reaches 1
      double lo = 0.0, hi = d_tight;
      for (int iter = 0; iter < 64; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (lhs_at(mid) < rhs) lo = mid;
        else hi = mid;
      }
      dstar = hi;
      if (dstar < 1e-13) adopt = true;  // numeric stall: force progress
    }

    // Apply the closed-form growth to every alive flush.
    if (dstar > 0) {
      for (const Candidate& c : alive) {
        const double eta = log_term_ / blocks_->cost(c.b);
        double phi_new =
            (c.phi + eps_) * std::exp(eta * c.coeff * dstar) - eps_;
        phi_new = std::min(phi_new, 1.0);
        const double delta = phi_new - c.phi;
        if (delta > 0) {
          vars_.increase(c.b, c.t, delta);
          increments_.push_back({c.b, c.t, delta, phi_new});
        }
      }
      dual_obj_ += dstar * static_cast<double>(cov_->cap() - sprime.f());
    }

    if (adopt) {
      // The tight flush becomes integral.
      const Candidate& win = alive[chosen];
      const double topup = vars_.raise_to(win.b, win.t, 1.0);
      if (topup > 0) increments_.push_back({win.b, win.t, topup, 1.0});
      S_->add_flush(win.b, win.t);
      ++integral_flushes_;
    }
  }
  return increments_;
}

}  // namespace bac
