#include "algs/policies/classical.hpp"

namespace bac {

void GreedyDualPolicy::reset(const Instance& inst) {
  offset_ = 0;
  const int n = inst.n_pages();
  page_cost_.resize(static_cast<std::size_t>(n));
  for (PageId p = 0; p < n; ++p)
    page_cost_[static_cast<std::size_t>(p)] =
        inst.blocks.cost(inst.blocks.block_of(p));
  credit_.assign(static_cast<std::size_t>(n), 0.0);
  by_credit_.reset(n);
}

void GreedyDualPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  const double cost = page_cost_[static_cast<std::size_t>(p)];
  auto& cr = credit_[static_cast<std::size_t>(p)];
  if (cache.contains(p)) {
    // Refresh credit to full cost (Landlord's reset-on-hit). Credits are
    // absolute (offset_ + cost), and offset_ only moves on an evicting
    // miss — so a re-hit with no eviction in between recomputes the same
    // credit and the heap entry is already right: skip the update (the
    // common case under locality).
    const double target = offset_ + cost;
    if (cr != target) {
      cr = target;
      by_credit_.update(p, target);
    }
    return;
  }
  if (cache.size() >= cache.capacity()) {
    // Charge rent: raise the offset to the minimum credit, evict a page
    // whose effective credit hit zero.
    PageId victim = 0;
    double min_credit = 0;
    by_credit_.pop(victim, min_credit);
    offset_ = min_credit;
    cache.evict(victim);
  }
  cache.fetch(p);
  cr = offset_ + cost;
  by_credit_.push(p, cr);
}

}  // namespace bac
