// Classical (block-oblivious) caching policies.
//
// These are the paper's trivial comparators (Section 1.1): any r-competitive
// classical policy is at most beta*r-competitive for block-aware caching,
// because it never batches evictions or fetches within a block. Running them
// through the block-aware cost meter quantifies exactly how much the
// block-aware algorithms gain.
//
//  - LRU / FIFO / LFU: the textbook deterministic policies (k-competitive /
//    k-competitive / not competitive, resp., for classic unweighted paging).
//  - Marking [FKL+91]: O(log k)-competitive randomized unweighted paging.
//  - Belady MIN: the offline optimum for classic unweighted paging
//    (farthest-in-future eviction); reads the future via reset().
//  - GreedyDual (a.k.a. Landlord): k-competitive weighted caching; pages
//    weighted by their block's cost.
//  - BlockLRU: a natural block-aware heuristic — LRU over blocks, evicting
//    whole blocks (batched), optionally prefetching whole blocks on a miss.
//    Not from the paper; included as the "what a practitioner would try"
//    baseline.
// All deterministic policies here keep their eviction order in the flat
// primitives from core/eviction_index.hpp (an intrusive list for recency
// orders, a lazy 4-ary heap for priority orders) instead of std::set —
// same victims, same tie-breaking (by page id via the (key, id) pair
// comparator), no allocation per request, and storage reused across
// reset() calls. The verify subsystem keeps frozen std::set twins
// (verify/reference_policies.hpp) and fuzzes the two against each other.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/eviction_index.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace bac {

class LruPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "LRU"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<LruPolicy>(*this);
  }

 private:
  // Insertion order == last-use order (timestamps strictly increase), so
  // front() is the std::set<std::pair<Time, PageId>>::begin victim.
  IntrusiveOrderList by_recency_;  // cached pages only
};

class FifoPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "FIFO"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<FifoPolicy>(*this);
  }

 private:
  IntrusiveOrderList by_arrival_;  // insertion order == arrival order
};

class LfuPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "LFU"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<LfuPolicy>(*this);
  }

 private:
  std::vector<long long> freq_;
  LazyMinHeap<long long> by_freq_;  // min (freq, page), ties by page id
};

/// Randomized Marking [FKL+91]: phase-based, evicts a uniformly random
/// unmarked cached page.
class MarkingPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "Marking"; }
  void reset(const Instance& inst) override;
  void seed(std::uint64_t s) override { rng_ = Xoshiro256pp(s); }
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] bool randomized() const override { return true; }
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<MarkingPolicy>(*this);
  }

 private:
  std::vector<char> marked_;
  std::vector<PageId> unmarked_cached_;  // compact list for O(1) sampling
  std::vector<std::int32_t> unmarked_pos_;
  Xoshiro256pp rng_{1};

  void set_unmarked(PageId p, bool unmarked);
};

/// Belady's MIN (offline): evict the cached page whose next request is
/// farthest in the future. Optimal for classic unweighted paging; a strong
/// (but block-oblivious) offline baseline here.
class BeladyPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "Belady"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] bool requires_future() const override { return true; }
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<BeladyPolicy>(*this);
  }

 private:
  std::vector<std::vector<Time>> occurrences_;  // per page, ascending
  std::vector<std::size_t> cursor_;             // next occurrence index
  // Max-heap on (next use, page): pop() is std::set's rbegin() victim
  // (farthest next use, largest page id among never-again ties).
  LazyMinHeap<Time, std::greater<std::pair<Time, PageId>>> by_next_;

  [[nodiscard]] Time next_use(PageId p) const;
};

/// GreedyDual / Landlord: k-competitive for weighted caching. Credits are
/// maintained with a global offset so each miss costs O(log k).
class GreedyDualPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "GreedyDual"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<GreedyDualPolicy>(*this);
  }

 private:
  double offset_ = 0;
  std::vector<double> page_cost_;  // block cost per page, precomputed
  std::vector<double> credit_;  // absolute credit; effective = credit-offset
  LazyMinHeap<double> by_credit_;  // min absolute credit, ties by page id
};

/// LRU over whole blocks: on overflow, flush the least-recently-used block
/// (batched eviction). With `prefetch` true, a miss fetches the whole block
/// (batched fetch) and then flushes LRU blocks until the cache fits.
class BlockLruPolicy final : public OnlinePolicy {
 public:
  explicit BlockLruPolicy(bool prefetch) : prefetch_(prefetch) {}
  [[nodiscard]] std::string name() const override {
    return prefetch_ ? "BlockLRU+Prefetch" : "BlockLRU";
  }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<BlockLruPolicy>(*this);
  }

 private:
  bool prefetch_;
  IntrusiveOrderList by_recency_;  // blocks with cached pages, LRU first
  std::vector<int> cached_count_;  // cached pages per block

  void note_evicted(BlockId b, int n_evicted);
};

}  // namespace bac
