#include "algs/policies/fractional_paging.hpp"

#include <algorithm>
#include <cmath>

namespace bac {

FractionalWeightedPaging::FractionalWeightedPaging(const Instance& inst)
    : blocks_(&inst.blocks), k_(inst.k) {
  const auto n = static_cast<std::size_t>(inst.n_pages());
  x_.assign(n, 1.0);  // everything starts missing (empty cache)
  cost_.resize(n);
  seen_.assign(n, 0);
  for (PageId p = 0; p < inst.n_pages(); ++p)
    cost_[static_cast<std::size_t>(p)] =
        blocks_->cost(blocks_->block_of(p));
}

double FractionalWeightedPaging::cached_mass() const {
  double mass = 0;
  for (std::size_t p = 0; p < x_.size(); ++p)
    if (seen_[p]) mass += 1.0 - x_[p];
  return mass;
}

const std::vector<double>& FractionalWeightedPaging::step(PageId p) {
  std::vector<double> before = x_;

  seen_[static_cast<std::size_t>(p)] = 1;
  x_[static_cast<std::size_t>(p)] = 0.0;

  if (cached_mass() > static_cast<double>(k_)) {
    // Grow missing masses of all other seen pages along the exponential
    // dynamics x_q(s) = (x_q + 1/k) * exp(s / c_q) - 1/k, finding the
    // "time" s at which the fractional cache exactly fits via bisection
    // (the cached mass is strictly decreasing in s).
    const double inv_k = 1.0 / static_cast<double>(k_);
    std::vector<double> base = x_;
    auto mass_at = [&](double s) {
      double mass = 0;
      for (std::size_t q = 0; q < x_.size(); ++q) {
        if (!seen_[q] || static_cast<PageId>(q) == p) continue;
        const double xq = std::min(
            1.0, (base[q] + inv_k) * std::exp(s / cost_[q]) - inv_k);
        mass += 1.0 - xq;
      }
      return mass + 1.0;  // the requested page contributes 1 - x_p = 1
    };

    double lo = 0.0, hi = 1.0;
    while (mass_at(hi) > static_cast<double>(k_)) hi *= 2.0;
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (mass_at(mid) > static_cast<double>(k_)) lo = mid;
      else hi = mid;
    }
    for (std::size_t q = 0; q < x_.size(); ++q) {
      if (!seen_[q] || static_cast<PageId>(q) == p) continue;
      x_[q] = std::min(1.0, (base[q] + inv_k) * std::exp(hi / cost_[q]) - inv_k);
    }
  }

  // Account fetching costs (mass decreases = fractional fetches).
  for (std::size_t q = 0; q < x_.size(); ++q) {
    const double dec = before[q] - x_[q];
    if (dec > 0) fetch_cost_ += cost_[q] * dec;
  }
  for (BlockId b = 0; b < blocks_->n_blocks(); ++b) {
    double max_dec = 0;
    for (PageId q : blocks_->pages_in(b))
      max_dec = std::max(max_dec,
                         before[static_cast<std::size_t>(q)] -
                             x_[static_cast<std::size_t>(q)]);
    if (max_dec > 0) block_fetch_cost_ += blocks_->cost(b) * max_dec;
  }
  return x_;
}

}  // namespace bac
