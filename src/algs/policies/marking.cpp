#include "algs/policies/classical.hpp"

namespace bac {

void MarkingPolicy::reset(const Instance& inst) {
  const auto n = static_cast<std::size_t>(inst.n_pages());
  marked_.assign(n, 0);
  unmarked_cached_.clear();
  unmarked_pos_.assign(n, -1);
}

void MarkingPolicy::set_unmarked(PageId p, bool unmarked) {
  auto& pos = unmarked_pos_[static_cast<std::size_t>(p)];
  if (unmarked) {
    if (pos >= 0) return;
    pos = static_cast<std::int32_t>(unmarked_cached_.size());
    unmarked_cached_.push_back(p);
  } else {
    if (pos < 0) return;
    const PageId moved = unmarked_cached_.back();
    unmarked_cached_[static_cast<std::size_t>(pos)] = moved;
    unmarked_pos_[static_cast<std::size_t>(moved)] = pos;
    unmarked_cached_.pop_back();
    pos = -1;
  }
}

void MarkingPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  if (cache.contains(p)) {
    if (!marked_[static_cast<std::size_t>(p)]) {
      marked_[static_cast<std::size_t>(p)] = 1;
      set_unmarked(p, false);
    }
    return;
  }

  if (cache.size() >= cache.capacity()) {
    if (unmarked_cached_.empty()) {
      // New phase: unmark all cached pages.
      for (PageId q : cache.pages()) {
        marked_[static_cast<std::size_t>(q)] = 0;
        set_unmarked(q, true);
      }
    }
    const auto idx =
        static_cast<std::size_t>(rng_.below(unmarked_cached_.size()));
    const PageId victim = unmarked_cached_[idx];
    set_unmarked(victim, false);
    cache.evict(victim);
  }
  cache.fetch(p);
  marked_[static_cast<std::size_t>(p)] = 1;
  set_unmarked(p, false);
}

}  // namespace bac
