// Fractional weighted paging via the online primal-dual method of
// Bansal-Buchbinder-Naor [BBN12a].
//
// Maintains the fractional "missing mass" x_p in [0,1] per page; on a
// request x_{p_t} drops to 0, and while the fractional cache content
// sum_p (1 - x_p) exceeds k, all other pages' missing masses grow according
// to the multiplicative dynamics  dx_q ~ (x_q + 1/k) / c_q. This yields an
// O(log k)-competitive fractional solution for classic weighted paging.
//
// Role in this library: the canonical online source of feasible fractional
// solutions x for the fetching-model experiments — the Section 4.1
// deterministic bicriteria rounding consumes exactly such an x stream, and
// Theorem 4.4's derandomization argument treats x_p as the expectation of a
// randomized policy's indicator. Page costs are their block's cost.
#pragma once

#include <vector>

#include "core/instance.hpp"

namespace bac {

class FractionalWeightedPaging {
 public:
  explicit FractionalWeightedPaging(const Instance& inst);

  /// Serve a request; returns the post-step missing-mass vector x.
  const std::vector<double>& step(PageId p);

  [[nodiscard]] const std::vector<double>& x() const noexcept { return x_; }

  /// Accumulated fractional *classic* fetching cost: sum over steps of
  /// sum_p c_p * max(0, decrease of x_p).
  [[nodiscard]] double classic_fetch_cost() const noexcept {
    return fetch_cost_;
  }
  /// Accumulated fractional *block-batched* fetching cost:
  /// sum over steps of sum_B c_B * max_{p in B} (decrease of x_p)_+.
  [[nodiscard]] double block_fetch_cost() const noexcept {
    return block_fetch_cost_;
  }

 private:
  const BlockMap* blocks_;
  int k_;
  std::vector<double> x_;      // missing mass per page
  std::vector<double> cost_;   // per-page cost (its block's cost)
  std::vector<char> seen_;     // requested at least once
  double fetch_cost_ = 0;
  double block_fetch_cost_ = 0;

  [[nodiscard]] double cached_mass() const;
};

}  // namespace bac
