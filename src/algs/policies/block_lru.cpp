#include "algs/policies/classical.hpp"

namespace bac {

void BlockLruPolicy::reset(const Instance& inst) {
  const auto m = static_cast<std::size_t>(inst.blocks.n_blocks());
  by_recency_.reset(inst.blocks.n_blocks());
  cached_count_.assign(m, 0);
}

void BlockLruPolicy::note_evicted(BlockId b, int n_evicted) {
  cached_count_[static_cast<std::size_t>(b)] -= n_evicted;
}

void BlockLruPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  const BlockId b = cache.blocks().block_of(p);
  // Detach the requested block while we serve it; it is re-appended as
  // most-recent below (so the flush loop can never pick it as victim).
  if (by_recency_.contains(b)) by_recency_.erase(b);

  if (!cache.contains(p)) {
    // Fetch the page (or, with prefetch, the whole block).
    int fetched = 0;
    if (prefetch_) {
      for (PageId q : cache.blocks().pages_in(b)) {
        if (!cache.contains(q)) {
          cache.fetch(q);
          ++fetched;
        }
      }
    } else {
      cache.fetch(p);
      fetched = 1;
    }
    cached_count_[static_cast<std::size_t>(b)] += fetched;

    // Flush LRU blocks until we fit; never the requested block.
    while (cache.size() > cache.capacity()) {
      const BlockId victim = by_recency_.pop_front();
      const int evicted = cache.flush_block(victim);
      note_evicted(victim, evicted);
      if (cache.size() > cache.capacity() &&
          cached_count_[static_cast<std::size_t>(b)] > 0 &&
          by_recency_.empty()) {
        // Only the requested block remains: shed its other pages.
        const int shed = cache.flush_block(b, p);
        note_evicted(b, shed);
      }
    }
  }
  by_recency_.push_back(b);
}

}  // namespace bac
