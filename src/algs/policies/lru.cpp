#include "algs/policies/classical.hpp"

namespace bac {

void LruPolicy::reset(const Instance& inst) {
  by_recency_.reset(inst.n_pages());
}

void LruPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  if (cache.contains(p)) {
    by_recency_.erase(p);
  } else {
    if (cache.size() >= cache.capacity())
      cache.evict(by_recency_.pop_front());
    cache.fetch(p);
  }
  by_recency_.push_back(p);
}

}  // namespace bac
