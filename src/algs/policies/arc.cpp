// ARC per Megiddo & Modha (FAST'03), Figure 4, with the four-case
// analysis kept in source order. T1/T2 are the two LRU lists (one shared
// SegmentedFifo: push_back = MRU insert, front = LRU victim); B1/B2 are
// the ghost lists. p is the adaptive target for |T1|: B1 ghost hits grow
// it (recency was undervalued), B2 ghost hits shrink it.
#include "algs/policies/modern.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace bac {

void ArcPolicy::reset(const Instance& inst) {
  const int n = inst.n_pages();
  c_ = inst.k;
  p_ = 0;
  t_.reset(n, 2);
  // ARC's invariants bound |B1| <= c and |T1|+|T2|+|B1|+|B2| <= 2c; the
  // ghost capacities are a backstop at exactly those bounds, never the
  // mechanism (the case analysis below does all deletions explicitly).
  b1_.reset(n, c_);
  b2_.reset(n, 2 * c_);
  ghost_hits_ = 0;
  p_adjustments_ = 0;
}

/// REPLACE(x, p) from the paper: evict T1's LRU into B1 when T1 is over
/// target (or exactly at target on a B2 ghost hit), else T2's LRU into
/// B2. Guarded so an empty list falls through to the other.
void ArcPolicy::replace(bool requested_in_b2, CacheOps& cache) {
  const int t1 = t_.size(kT1);
  const bool from_t1 =
      t1 >= 1 && (t1 > p_ || (requested_in_b2 && t1 == p_));
  if (from_t1 || t_.size(kT2) == 0) {
    if (t1 == 0) return;  // both lists empty: nothing to evict
    const std::int32_t victim = t_.pop_front(kT1);
    b1_.insert(victim);
    cache.evict(victim);
  } else {
    const std::int32_t victim = t_.pop_front(kT2);
    b2_.insert(victim);
    cache.evict(victim);
  }
}

void ArcPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  // Case I: hit in T1 or T2 — move to T2's MRU end.
  if (t_.contains(p)) {
    t_.move_back(p, kT2);
    return;
  }
  // Case II: ghost hit in B1 — recency list was too small, grow p.
  if (b1_.contains(p)) {
    const int delta = std::max(1, b2_.size() / b1_.size());
    p_ = std::min(c_, p_ + delta);
    ++p_adjustments_;
    ++ghost_hits_;
    b1_.erase(p);
    replace(false, cache);
    t_.push_back(kT2, p);
    cache.fetch(p);
    return;
  }
  // Case III: ghost hit in B2 — frequency list was too small, shrink p.
  if (b2_.contains(p)) {
    const int delta = std::max(1, b1_.size() / b2_.size());
    p_ = std::max(0, p_ - delta);
    ++p_adjustments_;
    ++ghost_hits_;
    b2_.erase(p);
    replace(true, cache);
    t_.push_back(kT2, p);
    cache.fetch(p);
    return;
  }
  // Case IV: full miss.
  const int t1 = t_.size(kT1);
  const int l1 = t1 + b1_.size();
  const int l2 = t_.size(kT2) + b2_.size();
  if (l1 == c_) {
    if (t1 < c_) {
      b1_.pop_front();
      replace(false, cache);
    } else {
      // B1 is empty and T1 holds the whole cache: discard T1's LRU
      // outright (no ghost — the paper's IV(a) else-branch).
      cache.evict(t_.pop_front(kT1));
    }
  } else if (l1 < c_ && l1 + l2 >= c_) {
    if (l1 + l2 >= 2 * c_) b2_.pop_front();  // == 2c by the invariant
    replace(false, cache);
  }
  t_.push_back(kT1, p);
  cache.fetch(p);
}

void ArcPolicy::export_metrics(obs::MetricRegistry& registry) const {
  registry.counter("policy_ghost_hits_total")
      .inc(static_cast<std::uint64_t>(ghost_hits_));
  registry.counter("policy_arc_p_adjustments_total")
      .inc(static_cast<std::uint64_t>(p_adjustments_));
}

}  // namespace bac
