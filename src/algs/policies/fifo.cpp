#include "algs/policies/classical.hpp"

namespace bac {

void FifoPolicy::reset(const Instance& inst) {
  by_arrival_.reset(inst.n_pages());
}

void FifoPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  if (cache.contains(p)) return;
  if (cache.size() >= cache.capacity())
    cache.evict(by_arrival_.pop_front());
  cache.fetch(p);
  by_arrival_.push_back(p);
}

}  // namespace bac
