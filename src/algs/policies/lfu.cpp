#include "algs/policies/classical.hpp"

namespace bac {

void LfuPolicy::reset(const Instance& inst) {
  freq_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
  by_freq_.reset(inst.n_pages());
}

void LfuPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  auto& f = freq_[static_cast<std::size_t>(p)];
  if (cache.contains(p)) {
    by_freq_.update(p, ++f);
    return;
  }
  if (cache.size() >= cache.capacity()) {
    PageId victim = 0;
    long long key = 0;
    by_freq_.pop(victim, key);
    cache.evict(victim);
  }
  cache.fetch(p);
  by_freq_.push(p, ++f);
}

}  // namespace bac
