#include "algs/policies/modern.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.hpp"

namespace bac {

namespace {

/// "S3FIFO" for the default knob, "S3FIFO@<frac>" otherwise, so sweep
/// rows scanning the knob stay distinguishable.
std::string knob_name(const char* base, double frac, double def) {
  if (frac == def) return base;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s@%g", base, frac);
  return buf;
}

std::uint8_t capped_inc(std::uint8_t f) {
  return static_cast<std::uint8_t>(std::min<int>(f + 1, 3));
}

}  // namespace

// --- page-level S3-FIFO -----------------------------------------------------

S3FifoPolicy::S3FifoPolicy(double small_frac) : small_frac_(small_frac) {}

std::string S3FifoPolicy::name() const {
  return knob_name("S3FIFO", small_frac_, kDefaultSmallFrac);
}

void S3FifoPolicy::reset(const Instance& inst) {
  const int n = inst.n_pages();
  small_target_ =
      std::max(1, static_cast<int>(small_frac_ * static_cast<double>(inst.k)));
  queues_.reset(n, 2);
  // The ghost remembers as many evicted ids as pages fit in the cache.
  ghost_.reset(n, inst.k);
  freq_.reset(n, 0);
  ghost_hits_ = small_promotions_ = main_reinserts_ = 0;
}

void S3FifoPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  if (cache.contains(p)) {
    freq_[p] = capped_inc(freq_[p]);
    return;
  }
  while (cache.size() >= cache.capacity()) evict_one(cache);
  if (ghost_.contains(p)) {
    // A recently evicted page came back: it earned the main queue.
    ghost_.erase(p);
    ++ghost_hits_;
    queues_.push_back(kMain, p);
  } else {
    queues_.push_back(kSmall, p);
  }
  freq_[p] = 0;
  cache.fetch(p);
}

void S3FifoPolicy::evict_one(CacheOps& cache) {
  for (;;) {
    bool use_small =
        queues_.size(kSmall) >= small_target_ || queues_.size(kMain) == 0;
    if (use_small && queues_.size(kSmall) == 0) use_small = false;
    if (use_small) {
      const std::int32_t h = queues_.front(kSmall);
      if (freq_[h] > 1) {
        // Re-accessed while probationary: promote, frequency restarts.
        queues_.move_back(h, kMain);
        freq_[h] = 0;
        ++small_promotions_;
        continue;
      }
      queues_.erase(h);
      ghost_.insert(h);
      cache.evict(h);
      return;
    }
    const std::int32_t h = queues_.front(kMain);
    if (freq_[h] > 0) {
      freq_[h] = static_cast<std::uint8_t>(freq_[h] - 1);
      queues_.move_back(h, kMain);  // second chance, one life spent
      ++main_reinserts_;
      continue;
    }
    queues_.erase(h);
    cache.evict(h);
    return;
  }
}

void S3FifoPolicy::export_metrics(obs::MetricRegistry& registry) const {
  registry.counter("policy_ghost_hits_total")
      .inc(static_cast<std::uint64_t>(ghost_hits_));
  registry.counter("policy_small_promotions_total")
      .inc(static_cast<std::uint64_t>(small_promotions_));
  registry.counter("policy_main_reinserts_total")
      .inc(static_cast<std::uint64_t>(main_reinserts_));
}

// --- block-level S3-FIFO ----------------------------------------------------

BlockS3FifoPolicy::BlockS3FifoPolicy(double small_frac)
    : small_frac_(small_frac) {}

std::string BlockS3FifoPolicy::name() const {
  return knob_name("BlockS3FIFO", small_frac_, S3FifoPolicy::kDefaultSmallFrac);
}

void BlockS3FifoPolicy::reset(const Instance& inst) {
  const int m = inst.blocks.n_blocks();
  // Queue and ghost budgets count blocks; a "slot" is one cache's worth
  // of whole beta-sized blocks.
  const int block_slots = std::max(1, inst.k / std::max(1, inst.blocks.beta()));
  small_target_ = std::max(
      1, static_cast<int>(small_frac_ * static_cast<double>(block_slots)));
  queues_.reset(m, 2);
  ghost_.reset(m, block_slots);
  freq_.reset(m, 0);
  cached_count_.reset(m, 0);
  ghost_hits_ = small_promotions_ = main_reinserts_ = 0;
  block_flushes_ = 0;
}

void BlockS3FifoPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  const BlockId b = cache.blocks().block_of(p);
  if (cache.contains(p)) {
    freq_[b] = capped_inc(freq_[b]);
    return;
  }
  // Detach the requested block while serving: the flush loop can never
  // pick it, and it re-enters at the tail of its segment (like BlockLRU's
  // detach-and-reappend, FIFO position refreshed).
  int seg;
  if (queues_.contains(b)) {
    seg = queues_.segment_of(b);
    queues_.erase(b);
    freq_[b] = capped_inc(freq_[b]);  // a miss still touches the block
  } else if (ghost_.contains(b)) {
    ghost_.erase(b);
    ++ghost_hits_;
    seg = kMain;
    freq_[b] = 0;
  } else {
    seg = kSmall;
    freq_[b] = 0;
  }
  cache.fetch(p);
  cached_count_[b] += 1;
  while (cache.size() > cache.capacity()) {
    if (queues_.size(kSmall) + queues_.size(kMain) == 0) {
      // Only the requested block remains: shed its other pages.
      cached_count_[b] -= cache.flush_block(b, p);
      break;
    }
    evict_one_block(cache);
  }
  queues_.push_back(seg, b);
}

void BlockS3FifoPolicy::evict_one_block(CacheOps& cache) {
  for (;;) {
    bool use_small =
        queues_.size(kSmall) >= small_target_ || queues_.size(kMain) == 0;
    if (use_small && queues_.size(kSmall) == 0) use_small = false;
    std::int32_t h;
    if (use_small) {
      h = queues_.front(kSmall);
      if (freq_[h] > 1) {
        queues_.move_back(h, kMain);
        freq_[h] = 0;
        ++small_promotions_;
        continue;
      }
      queues_.erase(h);
      ghost_.insert(h);
    } else {
      h = queues_.front(kMain);
      if (freq_[h] > 0) {
        freq_[h] = static_cast<std::uint8_t>(freq_[h] - 1);
        queues_.move_back(h, kMain);
        ++main_reinserts_;
        continue;
      }
      queues_.erase(h);
    }
    cached_count_[h] -= cache.flush_block(h);
    ++block_flushes_;
    return;
  }
}

void BlockS3FifoPolicy::export_metrics(obs::MetricRegistry& registry) const {
  registry.counter("policy_ghost_hits_total")
      .inc(static_cast<std::uint64_t>(ghost_hits_));
  registry.counter("policy_small_promotions_total")
      .inc(static_cast<std::uint64_t>(small_promotions_));
  registry.counter("policy_main_reinserts_total")
      .inc(static_cast<std::uint64_t>(main_reinserts_));
  registry.counter("policy_block_flushes_total")
      .inc(static_cast<std::uint64_t>(block_flushes_));
}

}  // namespace bac
