#include "algs/policies/modern.hpp"

#include "obs/metrics.hpp"

namespace bac {

// --- page-level SIEVE -------------------------------------------------------

void SievePolicy::reset(const Instance& inst) {
  by_arrival_.reset(inst.n_pages());
  visited_.reset(inst.n_pages(), 0);
  hand_ = IntrusiveOrderList::kNone;
  hand_sweeps_ = 0;
}

void SievePolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  if (cache.contains(p)) {
    visited_[p] = 1;  // the whole hit path: one bit, no list surgery
    return;
  }
  if (cache.size() >= cache.capacity()) {
    // The hand sweeps oldest -> newest, clearing visited bits; the first
    // unvisited page goes. A full pass clears everything, so the scan
    // takes at most two passes.
    std::int32_t h =
        hand_ == IntrusiveOrderList::kNone ? by_arrival_.front() : hand_;
    while (visited_[h] != 0) {
      visited_[h] = 0;
      h = by_arrival_.next(h);
      if (h == IntrusiveOrderList::kNone) h = by_arrival_.front();  // wrap
      ++hand_sweeps_;
    }
    // Park the hand just past the victim; kNone resumes from the oldest.
    hand_ = by_arrival_.next(h);
    by_arrival_.erase(h);
    cache.evict(h);
  }
  by_arrival_.push_back(p);
  visited_[p] = 0;  // new pages start unvisited
  cache.fetch(p);
}

void SievePolicy::export_metrics(obs::MetricRegistry& registry) const {
  registry.counter("policy_hand_sweeps_total")
      .inc(static_cast<std::uint64_t>(hand_sweeps_));
}

// --- block-level SIEVE ------------------------------------------------------

void BlockSievePolicy::reset(const Instance& inst) {
  const int m = inst.blocks.n_blocks();
  by_arrival_.reset(m);
  visited_.reset(m, 0);
  cached_count_.reset(m, 0);
  hand_ = IntrusiveOrderList::kNone;
  hand_sweeps_ = 0;
  block_flushes_ = 0;
}

void BlockSievePolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  const BlockId b = cache.blocks().block_of(p);
  if (cache.contains(p)) {
    visited_[b] = 1;
    return;
  }
  if (!by_arrival_.contains(b)) {
    by_arrival_.push_back(b);
    visited_[b] = 0;  // arrival position set by the first resident page
  } else {
    visited_[b] = 1;  // a miss on a resident block still touches it
  }
  cache.fetch(p);
  cached_count_[b] += 1;
  while (cache.size() > cache.capacity()) {
    if (by_arrival_.size() == 1) {
      // Only the requested block remains: shed its other pages.
      cached_count_[b] -= cache.flush_block(b, p);
      break;
    }
    // The hand sweeps blocks oldest -> newest; the requested block is
    // skipped without losing its visited bit (it is being served).
    std::int32_t h =
        hand_ == IntrusiveOrderList::kNone ? by_arrival_.front() : hand_;
    while (h == b || visited_[h] != 0) {
      if (h != b) visited_[h] = 0;
      h = by_arrival_.next(h);
      if (h == IntrusiveOrderList::kNone) h = by_arrival_.front();  // wrap
      ++hand_sweeps_;
    }
    hand_ = by_arrival_.next(h);
    by_arrival_.erase(h);
    cached_count_[h] -= cache.flush_block(h);
    ++block_flushes_;
  }
}

void BlockSievePolicy::export_metrics(obs::MetricRegistry& registry) const {
  registry.counter("policy_hand_sweeps_total")
      .inc(static_cast<std::uint64_t>(hand_sweeps_));
  registry.counter("policy_block_flushes_total")
      .inc(static_cast<std::uint64_t>(block_flushes_));
}

}  // namespace bac
