// Modern eviction policies, built on the composable flat primitives in
// core/eviction_index.hpp (SegmentedFifo, GhostTable, PageMeta).
//
// These are the heuristics production caches actually run, landed here so
// the paper-vs-baseline curves (Coester et al., SPAA 2022) meet something
// stronger than LRU/LFU:
//
//  - S3FIFO [Yang et al., SOSP'23]: a small probationary FIFO in front of
//    a main FIFO plus a ghost list of recently evicted ids. One-hit
//    wonders die cheaply in the small queue; pages that return via the
//    ghost go straight to main. Knob: the small queue's share of k.
//  - SIEVE [Zhang et al., NSDI'24]: a single FIFO with a lazy hand that
//    sweeps from the oldest entry toward the newest, clearing visited
//    bits and evicting the first unvisited page. Cheaper than LRU (hits
//    only set a bit) yet scan-resistant.
//  - ARC [Megiddo & Modha, FAST'03]: two LRU lists (T1 recency, T2
//    frequency) plus two ghost lists (B1, B2) steering an adaptive
//    target p for T1's share of the cache. Follows the paper's Figure 4
//    case analysis exactly.
//
// BlockS3Fifo / BlockSieve are block-aware variants for the paper's cost
// model: they track whole blocks through the same structures and
// batch-evict via CacheOps::flush_block, so an eviction decision pays one
// block eviction no matter how many pages it frees (mirroring BlockLRU's
// batching). Like BlockLRU they detach/protect the requested block while
// serving, and shed the requested block's other pages when it is the
// only resident block left.
//
// All five are deterministic, clone()-safe (value members only), allocate
// nothing per request after reset(), and keep structural counters (ghost
// hits, hand sweeps, ARC target adjustments, block flushes) exported
// through OnlinePolicy::export_metrics for `bacsim --metrics`. Frozen
// std::list/std::set twins live in verify/reference_policies.cpp and the
// policy_equivalence oracle fuzzes the pairs for bit-identical runs.
#pragma once

#include <cstdint>

#include "core/eviction_index.hpp"
#include "core/policy.hpp"

namespace bac {

/// S3-FIFO over pages: small/main FIFO queues plus a ghost list.
class S3FifoPolicy final : public OnlinePolicy {
 public:
  static constexpr double kDefaultSmallFrac = 0.1;
  explicit S3FifoPolicy(double small_frac = kDefaultSmallFrac);
  [[nodiscard]] std::string name() const override;
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<S3FifoPolicy>(*this);
  }
  void export_metrics(obs::MetricRegistry& registry) const override;

  [[nodiscard]] double small_frac() const noexcept { return small_frac_; }
  /// Pages the small queue is allowed before eviction prefers it.
  [[nodiscard]] int small_target() const noexcept { return small_target_; }

 private:
  enum Segment : int { kSmall = 0, kMain = 1 };
  void evict_one(CacheOps& cache);

  double small_frac_;
  int small_target_ = 1;
  SegmentedFifo queues_;          // cached pages, small/main arrival order
  GhostTable ghost_;              // last k ids evicted from the small queue
  PageMeta<std::uint8_t> freq_;   // per page, capped at 3
  long long ghost_hits_ = 0;
  long long small_promotions_ = 0;
  long long main_reinserts_ = 0;
};

/// SIEVE over pages: one FIFO, one visited bit, one lazy hand.
class SievePolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "SIEVE"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<SievePolicy>(*this);
  }
  void export_metrics(obs::MetricRegistry& registry) const override;

 private:
  IntrusiveOrderList by_arrival_;  // front = oldest
  PageMeta<std::uint8_t> visited_;
  std::int32_t hand_ = IntrusiveOrderList::kNone;
  long long hand_sweeps_ = 0;  // hand advances (visited bits cleared)
};

/// ARC over pages: T1/T2 recency/frequency LRU lists, B1/B2 ghosts, and
/// the adaptive target p for T1's share of the cache.
class ArcPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "ARC"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<ArcPolicy>(*this);
  }
  void export_metrics(obs::MetricRegistry& registry) const override;

  /// Current adaptive target for |T1| (test/introspection hook).
  [[nodiscard]] int target_p() const noexcept { return p_; }

 private:
  enum List : int { kT1 = 0, kT2 = 1 };
  void replace(bool requested_in_b2, CacheOps& cache);

  SegmentedFifo t_;  // T1/T2; push_back = MRU insert, front = LRU victim
  GhostTable b1_;    // ghosts of pages evicted from T1
  GhostTable b2_;    // ghosts of pages evicted from T2
  int c_ = 0;
  int p_ = 0;
  long long ghost_hits_ = 0;
  long long p_adjustments_ = 0;
};

/// S3-FIFO over blocks: the queues and ghost track BlockIds and eviction
/// batch-flushes the whole victim block.
class BlockS3FifoPolicy final : public OnlinePolicy {
 public:
  explicit BlockS3FifoPolicy(
      double small_frac = S3FifoPolicy::kDefaultSmallFrac);
  [[nodiscard]] std::string name() const override;
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<BlockS3FifoPolicy>(*this);
  }
  void export_metrics(obs::MetricRegistry& registry) const override;

  [[nodiscard]] double small_frac() const noexcept { return small_frac_; }

 private:
  enum Segment : int { kSmall = 0, kMain = 1 };
  void evict_one_block(CacheOps& cache);

  double small_frac_;
  int small_target_ = 1;          // in blocks
  SegmentedFifo queues_;          // resident blocks, small/main order
  GhostTable ghost_;              // recently flushed blocks
  PageMeta<std::uint8_t> freq_;   // per block, capped at 3
  PageMeta<int> cached_count_;    // cached pages per block
  long long ghost_hits_ = 0;
  long long small_promotions_ = 0;
  long long main_reinserts_ = 0;
  long long block_flushes_ = 0;
};

/// SIEVE over blocks: the FIFO and visited bits track BlockIds and the
/// hand's victim is batch-flushed.
class BlockSievePolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "BlockSIEVE"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<BlockSievePolicy>(*this);
  }
  void export_metrics(obs::MetricRegistry& registry) const override;

 private:
  IntrusiveOrderList by_arrival_;  // resident blocks, front = oldest
  PageMeta<std::uint8_t> visited_;
  PageMeta<int> cached_count_;     // cached pages per block
  std::int32_t hand_ = IntrusiveOrderList::kNone;
  long long hand_sweeps_ = 0;
  long long block_flushes_ = 0;
};

}  // namespace bac
