#include "algs/policies/classical.hpp"

namespace bac {

void BeladyPolicy::reset(const Instance& inst) {
  const auto n = static_cast<std::size_t>(inst.n_pages());
  occurrences_.assign(n, {});
  cursor_.assign(n, 0);
  by_next_.reset(inst.n_pages());
  for (Time t = 1; t <= inst.horizon(); ++t)
    occurrences_[static_cast<std::size_t>(inst.request_at(t))].push_back(t);
}

Time BeladyPolicy::next_use(PageId p) const {
  const auto& occ = occurrences_[static_cast<std::size_t>(p)];
  const std::size_t c = cursor_[static_cast<std::size_t>(p)];
  // Treat "never again" as +infinity (a time beyond any horizon).
  return c < occ.size() ? occ[c] : static_cast<Time>(1) << 30;
}

void BeladyPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  const bool hit = cache.contains(p);
  // Advance p's cursor past the current request.
  ++cursor_[static_cast<std::size_t>(p)];

  if (hit) {
    by_next_.update(p, next_use(p));
    return;
  }
  if (cache.size() >= cache.capacity()) {
    PageId victim = 0;
    Time farthest = 0;
    by_next_.pop(victim, farthest);  // max-heap: farthest next use
    cache.evict(victim);
  }
  cache.fetch(p);
  by_next_.push(p, next_use(p));
}

}  // namespace bac
