// Brute-force dual-feasibility verification for Algorithm 1.
//
// The k-competitiveness proof (Lemma 3.4) hinges on *every* dual
// constraint sum_u f_u((B,t)|S_u) * y_u <= c_B holding — including
// constraints at flush times the algorithm never tracked. The algorithm
// keeps loads only for times that were alive since a block's last flush
// and argues untracked times are dominated; this verifier re-derives every
// load from a complete event log and checks the constraints exhaustively,
// so the domination argument is machine-checked on every test instance.
// (This harness caught a real bookkeeping bug during development: the
// alive time induced by the kept page of a flushed block was dropped.)
#pragma once

#include <vector>

#include "core/instance.hpp"

namespace bac {

/// One dual increase event: y_{S}^{tau} += delta, with the state needed to
/// recompute any constraint coefficient f_tau((B,t)|S).
struct DualEvent {
  Time tau = 0;
  double delta = 0;
  std::vector<Time> max_flush;     ///< per block, S's max flush time
  std::vector<Time> last_request;  ///< per page, r(p, tau)
};

struct DualAudit {
  double max_load_ratio = 0;  ///< max over (B,t) of load / c_B
  BlockId worst_block = -1;
  Time worst_time = -1;
  double objective = 0;  ///< sum of recorded deltas times their rhs weight
  [[nodiscard]] bool feasible(double tol = 1e-9) const {
    return max_load_ratio <= 1.0 + tol;
  }
};

/// Recompute the dual load of every flush (B, t), t in [0, horizon], from
/// the event log and report the worst constraint. O(|events| * n * T) —
/// intended for tests and small experiment audits.
DualAudit audit_dual_feasibility(const Instance& inst,
                                 const std::vector<DualEvent>& events);

}  // namespace bac
