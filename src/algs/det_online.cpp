#include "algs/det_online.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace bac {

void DetOnlineBlockAware::reset(const Instance& inst) {
  blocks_ = &inst.blocks;
  k_ = inst.k;
  cov_.emplace(inst.blocks, inst.k);
  S_.emplace(*cov_);  // all blocks flushed at time 0 (free initial clear)
  entries_.assign(static_cast<std::size_t>(inst.blocks.n_blocks()), {});
  dual_obj_ = 0;
  primal_cost_ = 0;
  flushes_ = 0;
  max_load_ratio_ = 0;
  events_.clear();
}

void DetOnlineBlockAware::on_request(Time t, PageId p, CacheOps& cache) {
  FlushSet* sets[] = {&*S_};
  cov_->advance(p, t, sets);

  // Track the new alive time r(p, t) + 1 = t + 1 for p's block. Its dual
  // load starts at zero: flushes at future times have zero marginal at all
  // past overflow events.
  {
    const BlockId b = blocks_->block_of(p);
    auto& list = entries_[static_cast<std::size_t>(b)];
    if (list.empty() || list.back().t < t + 1) list.push_back({t + 1, 0.0});
  }

  cache.fetch(p);  // free in the eviction cost model
  if (cache.size() <= k_) return;

  // Overflow: |C| = k + 1, so cap - f_tau(S) = 1 and each positive capped
  // marginal is exactly 1. Find, over all tracked flushes with positive
  // marginal, the minimal slack c_B - load.
  double delta = std::numeric_limits<double>::infinity();
  BlockId chosen = -1;
  const int n_blocks = blocks_->n_blocks();
  for (BlockId b = 0; b < n_blocks; ++b) {
    const auto& list = entries_[static_cast<std::size_t>(b)];
    if (list.empty()) continue;
    const Time m = S_->max_flush(b);
    const int cnt_m = cov_->count_below(b, m);
    const double c_b = blocks_->cost(b);
    for (const Entry& e : list) {
      if (e.t > t) break;  // future flush: zero marginal
      if (cov_->count_below(b, e.t) <= cnt_m) continue;  // marginal 0
      const double slack = c_b - e.load;
      if (slack < delta) {
        delta = slack;
        chosen = b;
      }
    }
  }
  if (chosen < 0)
    throw std::logic_error("DetOnline: no flush candidate at overflow");
  if (delta < 0) delta = 0;  // tight already (floating-point guard)

  if (log_events_) {
    DualEvent ev;
    ev.tau = t;
    ev.delta = delta;
    ev.max_flush.reserve(static_cast<std::size_t>(n_blocks));
    for (BlockId b = 0; b < n_blocks; ++b)
      ev.max_flush.push_back(S_->max_flush(b));
    ev.last_request.reserve(static_cast<std::size_t>(cov_->n()));
    for (PageId q = 0; q < cov_->n(); ++q)
      ev.last_request.push_back(cov_->last_request(q));
    events_.push_back(std::move(ev));
  }

  // Raise y by delta: every tracked flush with positive marginal gains
  // delta of dual load; the dual objective gains delta * 1.
  for (BlockId b = 0; b < n_blocks; ++b) {
    auto& list = entries_[static_cast<std::size_t>(b)];
    if (list.empty()) continue;
    const Time m = S_->max_flush(b);
    const int cnt_m = cov_->count_below(b, m);
    const double c_b = blocks_->cost(b);
    for (Entry& e : list) {
      if (e.t > t) break;
      if (cov_->count_below(b, e.t) <= cnt_m) continue;
      e.load += delta;
      max_load_ratio_ = std::max(max_load_ratio_, e.load / c_b);
    }
  }
  dual_obj_ += delta;

  // Perform the flush (chosen, t): evict all cached pages of the block
  // except the just-requested page.
  S_->add_flush(chosen, t);
  // Entries with time <= t have zero marginal forever; but if the flushed
  // block is the requested page's own, the alive time t + 1 (induced by
  // the kept page p) remains chargeable and must stay tracked.
  entries_[static_cast<std::size_t>(chosen)].clear();
  if (blocks_->block_of(p) == chosen)
    entries_[static_cast<std::size_t>(chosen)].push_back({t + 1, 0.0});
  const int evicted = cache.flush_block(chosen, p);
  if (evicted < 1)
    throw std::logic_error("DetOnline: flush evicted no pages");
  primal_cost_ += blocks_->cost(chosen);
  ++flushes_;
}

}  // namespace bac
