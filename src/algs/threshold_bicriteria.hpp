// Theorem 4.1 as an *online policy*: deterministic threshold rounding of
// the online fractional weighted-paging solution, with the space blow-up
// absorbed internally.
//
// The policy runs the BBN12a fractional dynamics with a *half-size*
// virtual cache h = k/2; the fractional invariant sum_p (1 - x_p) <= h
// implies |{p : x_p <= 1/2}| <= 2h <= k pointwise, so the rounded cache
// always fits the real capacity. Under fetching costs a miss batch-fetches
// every eligible page of the block (Theorem 4.1's procedure); under
// eviction costs a page crossing x > 1/2 flushes its block's crossed pages
// (the Section 4.1 eviction variant). Guarantees, inherited per the
// theorem: cost <= 2 x the fractional block-batched cost of an
// O(log h)-competitive fractional solution with cache h — i.e., an online
// deterministic (h, 2h)-bicriteria algorithm, which is how Corollary 4.2's
// "k = 2h matches classical caching" plays out online.
#pragma once

#include <optional>
#include <vector>

#include "algs/policies/fractional_paging.hpp"
#include "core/policy.hpp"

namespace bac {

class ThresholdBicriteriaPolicy final : public OnlinePolicy {
 public:
  enum class Mode { Fetching, Eviction };

  explicit ThresholdBicriteriaPolicy(Mode mode) : mode_(mode) {}

  [[nodiscard]] std::string name() const override {
    return mode_ == Mode::Fetching ? "BA-Bicrit(fetch,2h)"
                                   : "BA-Bicrit(evict,2h)";
  }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    // Valid after reset(), which re-emplaces half_/frac_ (the copied frac_
    // still references the source's half-size instance until then).
    return std::make_unique<ThresholdBicriteriaPolicy>(*this);
  }

  /// The fractional substrate's block-batched costs (comparison baseline
  /// for the 2x guarantees).
  [[nodiscard]] double fractional_block_fetch() const {
    return frac_->block_fetch_cost();
  }

 private:
  Mode mode_;
  std::optional<Instance> half_;  ///< stable storage for frac_'s references
  std::optional<FractionalWeightedPaging> frac_;
  std::vector<double> prev_x_;
};

}  // namespace bac
