// Factory for the full policy line-up used by head-to-head benchmarks.
#pragma once

#include <memory>
#include <vector>

#include "core/policy.hpp"

namespace bac {

enum class ZooSelection {
  Classical,  ///< block-oblivious baselines only
  BlockAware, ///< the paper's algorithms + block heuristics
  All,
};

std::vector<std::unique_ptr<OnlinePolicy>> make_policy_zoo(
    ZooSelection selection = ZooSelection::All);

}  // namespace bac
