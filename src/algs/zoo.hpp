// Factory for the full policy line-up used by head-to-head benchmarks,
// plus the by-name registry the bacsim sweep driver resolves CLI policy
// lists against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"

namespace bac {

enum class ZooSelection {
  Classical,  ///< block-oblivious baselines only
  BlockAware, ///< the paper's algorithms + block heuristics
  All,
};

std::vector<std::unique_ptr<OnlinePolicy>> make_policy_zoo(
    ZooSelection selection = ZooSelection::All);

/// Registry names accepted by make_policy (stable CLI identifiers, unlike
/// the display names policies report via name()).
std::vector<std::string> policy_names();

/// Construct a policy from a spec: a registry name, optionally followed
/// by `@<value>` to set the policy's knob (e.g. "s3fifo", "s3fifo@0.05" —
/// the small-queue fraction). Throws std::invalid_argument for unknown
/// names (the message shows the grammar, the registry, and a nearest-name
/// suggestion), for a knob on a knobless policy, and for malformed or
/// out-of-range knob values.
std::unique_ptr<OnlinePolicy> make_policy(const std::string& spec);

}  // namespace bac
