// Factory for the full policy line-up used by head-to-head benchmarks,
// plus the by-name registry the bacsim sweep driver resolves CLI policy
// lists against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"

namespace bac {

enum class ZooSelection {
  Classical,  ///< block-oblivious baselines only
  BlockAware, ///< the paper's algorithms + block heuristics
  All,
};

std::vector<std::unique_ptr<OnlinePolicy>> make_policy_zoo(
    ZooSelection selection = ZooSelection::All);

/// Registry names accepted by make_policy (stable CLI identifiers, unlike
/// the display names policies report via name()).
std::vector<std::string> policy_names();

/// Construct a policy by registry name; throws std::invalid_argument for
/// unknown names (the message lists the registry).
std::unique_ptr<OnlinePolicy> make_policy(const std::string& name);

}  // namespace bac
