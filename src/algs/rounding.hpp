// Algorithms 3 + 4: online randomized rounding of the fractional solution
// (Theorem 3.12, Lemma 3.16), packaged as an OnlinePolicy.
//
// Pipeline per request:
//   1. Algorithm 2 produces monotone increments to phi (possibly at past
//      time indices).
//   2. The Lemma 3.14 / Algorithm 4 structure transform converts them into
//      per-block *emissions*: raw mass is accumulated until it reaches
//      1/(4k^2) and then emitted doubled (min(2*mass, 1)); and whenever a
//      page's raw x crosses 1/2 within one request interval, a full
//      eviction (mass 1) of its block is emitted, charged to the raw mass
//      that drove x from 0 to 1/2.
//   3. Algorithm 3 rounds: each emission of mass m evicts the block's
//      positive-x pages with probability min(1, gamma * m), where
//      gamma = log(4 k^2 beta Delta); the requested page is fetched (free
//      under eviction costs); while the cache still overflows, alteration
//      evictions flush blocks that have positive-x cached pages.
//
// A page q has structured x > 0 exactly when its block emitted mass after
// q's last request, so membership tests are O(1) via per-block emission
// timestamps.
//
// With `gamma_override` == 0 the paper's gamma is used. The same class
// doubles as the offline O(log k Delta) approximation of Theorem 3.13:
// running it over the full trace *is* the offline algorithm (the fractional
// solve is monotone, so offline and online runs coincide).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "algs/fractional.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace bac {

class RandomizedBlockAware final : public OnlinePolicy {
 public:
  struct Options {
    double gamma_override = 0;   ///< 0: use log(4 k^2 beta Delta)
    bool apply_structure = true; ///< disable to round raw increments (ablation)
  };

  RandomizedBlockAware() : RandomizedBlockAware(Options{}) {}
  explicit RandomizedBlockAware(Options options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "BA-Rand(Alg2+3)"; }
  void reset(const Instance& inst) override;
  void seed(std::uint64_t s) override { rng_ = Xoshiro256pp(s); }
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] bool randomized() const override { return true; }
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    // Run state is not copyable (the fractional substrate owns its
    // separation oracle); a fresh policy with the same configuration is
    // equivalent since clones are reset and reseeded before use.
    return std::make_unique<RandomizedBlockAware>(options_);
  }

  /// Underlying fractional (Algorithm 2) eviction cost.
  [[nodiscard]] double fractional_cost() const {
    return frac_->fractional_cost();
  }
  /// Cost of the structured solution (the one actually rounded).
  [[nodiscard]] double structured_cost() const noexcept {
    return structured_cost_;
  }
  [[nodiscard]] double dual_objective() const {
    return frac_->dual_objective();
  }
  /// Evictions forced by the alteration loop (lines 4-5 of Algorithm 3).
  [[nodiscard]] long long alterations() const noexcept { return alterations_; }
  /// Alterations that found no positive-x block and fell back to evicting
  /// an arbitrary page (0 in a healthy run).
  [[nodiscard]] long long fallback_alterations() const noexcept {
    return fallback_alterations_;
  }
  [[nodiscard]] double gamma() const noexcept { return gamma_; }

 private:
  Options options_;
  std::optional<FractionalBlockAware> frac_;
  const BlockMap* blocks_ = nullptr;
  int k_ = 0;
  double gamma_ = 0;
  double emit_threshold_ = 0;  // 1 / (4 k^2)
  Xoshiro256pp rng_{1};

  std::vector<double> pending_;     // per block: raw mass not yet emitted
  std::vector<Time> last_emit_;     // per block: last emission step (0 none)
  std::vector<Time> last_request_;  // per page
  std::vector<char> half_charged_;  // per page: full-evict already charged
  double structured_cost_ = 0;
  long long alterations_ = 0;
  long long fallback_alterations_ = 0;

  [[nodiscard]] bool x_positive(PageId q, Time now) const {
    const Time e = last_emit_[static_cast<std::size_t>(
        blocks_->block_of(q))];
    return e > last_request_[static_cast<std::size_t>(q)] && e <= now;
  }
  /// Evict every cached page of b with positive structured x (never the
  /// page requested at `now`, whose x is 0). Returns #evicted.
  int evict_positive(BlockId b, Time now, CacheOps& cache);
};

}  // namespace bac
