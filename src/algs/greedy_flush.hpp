// Greedy flush policy: the online-greedy instantiation of Wolsey's
// submodular cover on f_tau (in the spirit of [GL20b]'s online submodular
// cover, which the paper builds on).
//
// At an overflow, flush the block maximizing (evictable pages) / cost —
// exactly the Wolsey greedy step for the current constraint. This is a
// natural strong heuristic for the eviction model: it has no worst-case
// guarantee better than the trivial one (the primal-dual timing of
// Algorithm 1 is what buys k-competitiveness), but it batches aggressively
// and serves as the "clever practitioner" comparison point in the benches.
#pragma once

#include <vector>

#include "core/policy.hpp"

namespace bac {

class GreedyFlushPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "GreedyFlush"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<GreedyFlushPolicy>(*this);
  }

 private:
  std::vector<int> cached_count_;  // cached pages per block
};

}  // namespace bac
