#include "algs/classical/classical.hpp"

namespace bac {

void GreedyDualPolicy::reset(const Instance& inst) {
  blocks_ = &inst.blocks;
  offset_ = 0;
  credit_.assign(static_cast<std::size_t>(inst.n_pages()), 0.0);
  by_credit_.clear();
}

void GreedyDualPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  const double cost = blocks_->cost(blocks_->block_of(p));
  if (cache.contains(p)) {
    // Refresh credit to full cost (Landlord's reset-on-hit).
    by_credit_.erase({credit_[static_cast<std::size_t>(p)], p});
    credit_[static_cast<std::size_t>(p)] = offset_ + cost;
    by_credit_.insert({credit_[static_cast<std::size_t>(p)], p});
    return;
  }
  if (cache.size() >= cache.capacity()) {
    // Charge rent: raise the offset to the minimum credit, evict a page
    // whose effective credit hit zero.
    const auto victim = *by_credit_.begin();
    by_credit_.erase(by_credit_.begin());
    offset_ = victim.first;
    cache.evict(victim.second);
  }
  cache.fetch(p);
  credit_[static_cast<std::size_t>(p)] = offset_ + cost;
  by_credit_.insert({credit_[static_cast<std::size_t>(p)], p});
}

}  // namespace bac
