// Classical (block-oblivious) caching policies.
//
// These are the paper's trivial comparators (Section 1.1): any r-competitive
// classical policy is at most beta*r-competitive for block-aware caching,
// because it never batches evictions or fetches within a block. Running them
// through the block-aware cost meter quantifies exactly how much the
// block-aware algorithms gain.
//
//  - LRU / FIFO / LFU: the textbook deterministic policies (k-competitive /
//    k-competitive / not competitive, resp., for classic unweighted paging).
//  - Marking [FKL+91]: O(log k)-competitive randomized unweighted paging.
//  - Belady MIN: the offline optimum for classic unweighted paging
//    (farthest-in-future eviction); reads the future via reset().
//  - GreedyDual (a.k.a. Landlord): k-competitive weighted caching; pages
//    weighted by their block's cost.
//  - BlockLRU: a natural block-aware heuristic — LRU over blocks, evicting
//    whole blocks (batched), optionally prefetching whole blocks on a miss.
//    Not from the paper; included as the "what a practitioner would try"
//    baseline.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "core/policy.hpp"
#include "util/rng.hpp"

namespace bac {

class LruPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "LRU"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<LruPolicy>(*this);
  }

 private:
  std::vector<Time> last_used_;
  std::set<std::pair<Time, PageId>> by_recency_;  // cached pages only
};

class FifoPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "FIFO"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<FifoPolicy>(*this);
  }

 private:
  std::vector<Time> arrival_;
  std::set<std::pair<Time, PageId>> by_arrival_;
};

class LfuPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "LFU"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<LfuPolicy>(*this);
  }

 private:
  std::vector<long long> freq_;
  std::set<std::pair<long long, PageId>> by_freq_;
};

/// Randomized Marking [FKL+91]: phase-based, evicts a uniformly random
/// unmarked cached page.
class MarkingPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "Marking"; }
  void reset(const Instance& inst) override;
  void seed(std::uint64_t s) override { rng_ = Xoshiro256pp(s); }
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] bool randomized() const override { return true; }
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<MarkingPolicy>(*this);
  }

 private:
  std::vector<char> marked_;
  std::vector<PageId> unmarked_cached_;  // compact list for O(1) sampling
  std::vector<std::int32_t> unmarked_pos_;
  Xoshiro256pp rng_{1};

  void set_unmarked(PageId p, bool unmarked);
};

/// Belady's MIN (offline): evict the cached page whose next request is
/// farthest in the future. Optimal for classic unweighted paging; a strong
/// (but block-oblivious) offline baseline here.
class BeladyPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "Belady"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] bool requires_future() const override { return true; }
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<BeladyPolicy>(*this);
  }

 private:
  std::vector<std::vector<Time>> occurrences_;  // per page, ascending
  std::vector<std::size_t> cursor_;             // next occurrence index
  std::set<std::pair<Time, PageId>> by_next_;   // cached pages by next use

  [[nodiscard]] Time next_use(PageId p) const;
};

/// GreedyDual / Landlord: k-competitive for weighted caching. Credits are
/// maintained with a global offset so each miss costs O(log k).
class GreedyDualPolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "GreedyDual"; }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<GreedyDualPolicy>(*this);
  }

 private:
  const BlockMap* blocks_ = nullptr;
  double offset_ = 0;
  std::vector<double> credit_;  // absolute credit; effective = credit-offset
  std::set<std::pair<double, PageId>> by_credit_;
};

/// LRU over whole blocks: on overflow, flush the least-recently-used block
/// (batched eviction). With `prefetch` true, a miss fetches the whole block
/// (batched fetch) and then flushes LRU blocks until the cache fits.
class BlockLruPolicy final : public OnlinePolicy {
 public:
  explicit BlockLruPolicy(bool prefetch) : prefetch_(prefetch) {}
  [[nodiscard]] std::string name() const override {
    return prefetch_ ? "BlockLRU+Prefetch" : "BlockLRU";
  }
  void reset(const Instance& inst) override;
  void on_request(Time t, PageId p, CacheOps& cache) override;
  [[nodiscard]] std::unique_ptr<OnlinePolicy> clone() const override {
    return std::make_unique<BlockLruPolicy>(*this);
  }

 private:
  bool prefetch_;
  std::vector<Time> block_used_;
  std::set<std::pair<Time, BlockId>> by_recency_;  // blocks with cached pages
  std::vector<int> cached_count_;                  // cached pages per block

  void touch(BlockId b, Time t);
  void note_evicted(BlockId b, int n_evicted);
};

}  // namespace bac
