#include "algs/classical/classical.hpp"

namespace bac {

void LruPolicy::reset(const Instance& inst) {
  last_used_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
  by_recency_.clear();
}

void LruPolicy::on_request(Time t, PageId p, CacheOps& cache) {
  if (cache.contains(p)) {
    by_recency_.erase({last_used_[static_cast<std::size_t>(p)], p});
  } else {
    if (cache.size() >= cache.capacity()) {
      const auto victim = *by_recency_.begin();
      by_recency_.erase(by_recency_.begin());
      cache.evict(victim.second);
    }
    cache.fetch(p);
  }
  last_used_[static_cast<std::size_t>(p)] = t;
  by_recency_.insert({t, p});
}

}  // namespace bac
