#include "algs/classical/classical.hpp"

namespace bac {

void LfuPolicy::reset(const Instance& inst) {
  freq_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
  by_freq_.clear();
}

void LfuPolicy::on_request(Time /*t*/, PageId p, CacheOps& cache) {
  auto& f = freq_[static_cast<std::size_t>(p)];
  if (cache.contains(p)) {
    by_freq_.erase({f, p});
    ++f;
    by_freq_.insert({f, p});
    return;
  }
  if (cache.size() >= cache.capacity()) {
    const auto victim = *by_freq_.begin();
    by_freq_.erase(by_freq_.begin());
    cache.evict(victim.second);
  }
  cache.fetch(p);
  ++f;
  by_freq_.insert({f, p});
}

}  // namespace bac
