#include "algs/classical/classical.hpp"

namespace bac {

void FifoPolicy::reset(const Instance& inst) {
  arrival_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
  by_arrival_.clear();
}

void FifoPolicy::on_request(Time t, PageId p, CacheOps& cache) {
  if (cache.contains(p)) return;
  if (cache.size() >= cache.capacity()) {
    const auto victim = *by_arrival_.begin();
    by_arrival_.erase(by_arrival_.begin());
    cache.evict(victim.second);
  }
  cache.fetch(p);
  arrival_[static_cast<std::size_t>(p)] = t;
  by_arrival_.insert({t, p});
}

}  // namespace bac
