#include "submodular/wolsey.hpp"

namespace bac {

SubmodularCoverResult greedy_submodular_cover(
    std::size_t n_elements, const std::function<Cost(std::size_t)>& cost,
    const std::function<long long(const std::vector<char>&, std::size_t)>&
        marginal,
    long long target) {
  SubmodularCoverResult result;
  std::vector<char> in_set(n_elements, 0);
  long long gained = 0;

  while (gained < target) {
    double best_ratio = 0;
    std::size_t best = n_elements;
    long long best_gain = 0;
    for (std::size_t v = 0; v < n_elements; ++v) {
      if (in_set[v]) continue;
      const long long gain = marginal(in_set, v);
      if (gain <= 0) continue;
      const double ratio = static_cast<double>(gain) / cost(v);
      if (best == n_elements || ratio > best_ratio) {
        best_ratio = ratio;
        best = v;
        best_gain = gain;
      }
    }
    if (best == n_elements) break;  // no progress possible
    in_set[best] = 1;
    result.chosen.push_back(best);
    result.cost += cost(best);
    gained += best_gain;
  }
  result.covered = gained >= target;
  return result;
}

}  // namespace bac
