#include "submodular/separation.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace bac {

namespace {

/// Iterator to the first entry of `list` with time strictly greater than m
/// (entries are sorted by time; dead entries are skipped wholesale).
auto first_live(const std::vector<FlushVars::Entry>& list, Time m) {
  return std::upper_bound(
      list.begin(), list.end(), m,
      [](Time t, const FlushVars::Entry& e) { return t < e.t; });
}

}  // namespace

double constraint_lhs(const FlushSet& sprime, const FlushVars& phi) {
  const FlushCoverage& cov = sprime.coverage();
  const int cap = cov.cap();
  const int g = sprime.g();
  if (g >= cap) return 0.0;  // rhs is 0 too; constraint trivially holds
  double lhs = 0;
  for (BlockId b = 0; b < cov.blocks().n_blocks(); ++b) {
    const Time m = sprime.max_flush(b);
    const auto& list = phi.entries(b);
    for (auto it = first_live(list, m); it != list.end(); ++it) {
      if (it->phi <= 0) continue;
      const int gm = sprime.g_marginal(b, it->t);
      if (gm <= 0) continue;
      lhs += static_cast<double>(std::min(gm, cap - g)) * it->phi;
    }
  }
  return lhs;
}

namespace {

/// Evaluate the constraint for `sprime`; return Violation if violated.
std::optional<Violation> check(const FlushSet& sprime, const FlushVars& phi,
                               double tolerance) {
  const double rhs =
      static_cast<double>(sprime.coverage().cap() - sprime.f());
  if (rhs <= 0) return std::nullopt;
  const double lhs = constraint_lhs(sprime, phi);
  if (lhs < rhs - tolerance) return Violation{sprime, lhs, rhs};
  return std::nullopt;
}

}  // namespace

std::optional<Violation> ThresholdSeparation::find_violated(
    const FlushSet& S, const FlushVars& phi) {
  // Candidate thresholds: phi values of live entries, bucketed to at most
  // ~2 per power of two (a geometric net) so a call costs
  // O(buckets * live entries) rather than O(live entries^2).
  const FlushCoverage& cov = S.coverage();
  std::vector<double> thresholds;
  for (BlockId b = 0; b < cov.blocks().n_blocks(); ++b) {
    const auto& list = phi.entries(b);
    for (auto it = first_live(list, S.max_flush(b)); it != list.end(); ++it)
      if (it->phi > 0) thresholds.push_back(it->phi);
  }
  std::sort(thresholds.begin(), thresholds.end(), std::greater<>());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());
  if (thresholds.size() > 40) {
    std::vector<double> netted;
    netted.reserve(48);
    double last = std::numeric_limits<double>::infinity();
    for (double v : thresholds) {
      if (v <= last / 1.3) {
        netted.push_back(v);
        last = v;
      }
    }
    if (!netted.empty() && netted.back() != thresholds.back())
      netted.push_back(thresholds.back());
    thresholds = std::move(netted);
  }

  // S itself first (theta = +infinity).
  std::optional<Violation> best = check(S, phi, tolerance_);
  if (best) return best;

  for (double theta : thresholds) {
    FlushSet sprime = S;
    for (BlockId b = 0; b < cov.blocks().n_blocks(); ++b) {
      const Time m = S.max_flush(b);
      // Add the *latest* qualifying entry per block; earlier qualifying
      // entries are then dominated (only the max flush time matters).
      Time best_t = kNeverRequested;
      const auto& list = phi.entries(b);
      for (auto it = first_live(list, m); it != list.end(); ++it)
        if (it->phi >= theta) best_t = std::max(best_t, it->t);
      if (best_t != kNeverRequested) sprime.add_flush(b, best_t);
    }
    if (auto v = check(sprime, phi, tolerance_)) return v;
  }
  return std::nullopt;
}

std::optional<Violation> DpSeparation::find_violated(const FlushSet& S,
                                                     const FlushVars& phi) {
  const FlushCoverage& cov = S.coverage();
  const int n_blocks = cov.blocks().n_blocks();
  const int cap = cov.cap();
  if (cap <= 0) return std::nullopt;

  // Per-block candidate max flush times (>= the block's time in S).
  std::vector<std::vector<Time>> candidates(
      static_cast<std::size_t>(n_blocks));
  for (BlockId b = 0; b < n_blocks; ++b) {
    auto& cand = candidates[static_cast<std::size_t>(b)];
    const Time m = S.max_flush(b);
    cand.push_back(m);
    for (const FlushVars::Entry& e : phi.entries(b))
      if (e.t > m && e.t <= cov.now()) cand.push_back(e.t);
    for (Time t : cov.alive_times(b))
      if (t > m && t <= cov.now()) cand.push_back(t);
    if (cov.now() > m) cand.push_back(cov.now());
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  }

  const double kInf = std::numeric_limits<double>::infinity();
  std::optional<Violation> worst;

  // G is the g-mass *added* to S by the extra flushes; g(S') = g(S) + G.
  for (int G = 0; S.g() + G < cap; ++G) {
    const int capg = cap - (S.g() + G);  // marginal cap and the RHS
    // dp[g] = minimal LHS using a prefix of blocks with total g-level g;
    // choice[b][g] records the winning candidate index for reconstruction.
    std::vector<double> dp(static_cast<std::size_t>(G) + 1, kInf);
    dp[0] = 0;
    std::vector<std::vector<std::int16_t>> choice(
        static_cast<std::size_t>(n_blocks),
        std::vector<std::int16_t>(static_cast<std::size_t>(G) + 1, -1));

    for (BlockId b = 0; b < n_blocks; ++b) {
      const auto& cand = candidates[static_cast<std::size_t>(b)];
      const Time m = S.max_flush(b);
      const int base = (m == kNeverRequested) ? 0 : cov.count_below(b, m);
      // Precompute (g_b, L_b) per candidate.
      std::vector<std::pair<int, double>> options;
      options.reserve(cand.size());
      for (Time mb : cand) {
        const int cnt =
            (mb == kNeverRequested) ? 0 : cov.count_below(b, mb);
        const int gb = cnt - base;
        double lb = 0;
        for (const FlushVars::Entry& e : phi.entries(b)) {
          if (e.t <= mb || e.phi <= 0 || e.t > cov.now()) continue;
          const int gm = cov.count_below(b, e.t) - cnt;
          if (gm > 0) lb += static_cast<double>(std::min(gm, capg)) * e.phi;
        }
        options.emplace_back(gb, lb);
      }
      std::vector<double> next(static_cast<std::size_t>(G) + 1, kInf);
      for (int g = 0; g <= G; ++g) {
        if (dp[static_cast<std::size_t>(g)] == kInf) continue;
        for (std::size_t ci = 0; ci < options.size(); ++ci) {
          const auto& [gb, lb] = options[ci];
          const int g2 = g + gb;
          if (g2 > G) continue;
          const double v = dp[static_cast<std::size_t>(g)] + lb;
          if (v < next[static_cast<std::size_t>(g2)]) {
            next[static_cast<std::size_t>(g2)] = v;
            choice[static_cast<std::size_t>(b)]
                  [static_cast<std::size_t>(g2)] =
                static_cast<std::int16_t>(ci);
          }
        }
      }
      dp = std::move(next);
    }

    const double lhs = dp[static_cast<std::size_t>(G)];
    const double rhs = static_cast<double>(capg);
    if (lhs < rhs - tolerance_ &&
        (!worst || rhs - lhs > worst->amount())) {
      // Reconstruct the witness S'.
      FlushSet sprime = S;
      int g = G;
      for (BlockId b = n_blocks - 1; b >= 0; --b) {
        const auto ci =
            choice[static_cast<std::size_t>(b)][static_cast<std::size_t>(g)];
        if (ci < 0) continue;  // shouldn't happen when dp[G] < inf
        const Time mb =
            candidates[static_cast<std::size_t>(b)][static_cast<std::size_t>(ci)];
        const int base = (S.max_flush(b) == kNeverRequested)
                             ? 0
                             : cov.count_below(b, S.max_flush(b));
        const int gb =
            ((mb == kNeverRequested) ? 0 : cov.count_below(b, mb)) - base;
        if (mb > S.max_flush(b)) sprime.add_flush(b, mb);
        g -= gb;
      }
      worst = Violation{sprime, lhs, rhs};
    }
  }
  return worst;
}

std::optional<Violation> ExhaustiveSeparation::find_violated(
    const FlushSet& S, const FlushVars& phi) {
  const FlushCoverage& cov = S.coverage();
  const int n_blocks = cov.blocks().n_blocks();

  // Per-block candidate max flush times: keep S's own, or raise to any
  // entry time or alive time beyond it.
  std::vector<std::vector<Time>> candidates(
      static_cast<std::size_t>(n_blocks));
  for (BlockId b = 0; b < n_blocks; ++b) {
    auto& cand = candidates[static_cast<std::size_t>(b)];
    const Time m = S.max_flush(b);
    cand.push_back(m);
    for (const FlushVars::Entry& e : phi.entries(b))
      if (e.t > m && e.t <= cov.now()) cand.push_back(e.t);
    // Alive times can include now + 1 (the just-requested page); flushes
    // strictly in the future have zero marginal at the current tau and are
    // not representable in a FlushSet, so skip them.
    for (Time t : cov.alive_times(b))
      if (t > m && t <= cov.now()) cand.push_back(t);
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
  }

  std::optional<Violation> worst;
  std::vector<std::size_t> pick(static_cast<std::size_t>(n_blocks), 0);
  std::function<void(int)> recurse = [&](int b) {
    if (b == n_blocks) {
      FlushSet sprime = S;
      for (BlockId bb = 0; bb < n_blocks; ++bb) {
        const Time t =
            candidates[static_cast<std::size_t>(bb)]
                      [pick[static_cast<std::size_t>(bb)]];
        if (t > S.max_flush(bb)) sprime.add_flush(bb, t);
      }
      if (auto v = check(sprime, phi, tolerance_))
        if (!worst || v->amount() > worst->amount()) worst = v;
      return;
    }
    for (std::size_t i = 0;
         i < candidates[static_cast<std::size_t>(b)].size(); ++i) {
      pick[static_cast<std::size_t>(b)] = i;
      recurse(b + 1);
    }
  };
  recurse(0);
  return worst;
}

}  // namespace bac
