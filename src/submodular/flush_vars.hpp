// Sparse storage for the fractional LP variables phi_B^t of LP (P).
//
// Per block we keep the (time, phi) pairs with phi > 0, sorted by time.
// Monotonicity is enforced: phi values only increase (the paper's
// "monotone-incremental" property, Section 3.3), which is exactly what the
// online rounding needs. Entries whose time is <= the block's current
// maximum integral flush time have zero marginal forever and can be skipped
// by constraint evaluations, but are retained so x-values and costs stay
// exact.
#pragma once

#include <vector>

#include "core/block_map.hpp"
#include "core/types.hpp"
#include "submodular/flush_coverage.hpp"

namespace bac {

class FlushVars {
 public:
  struct Entry {
    Time t = 0;
    double phi = 0;
  };

  explicit FlushVars(int n_blocks)
      : per_block_(static_cast<std::size_t>(n_blocks)) {}

  [[nodiscard]] double get(BlockId b, Time t) const;

  /// Increase phi_b^t by delta (delta >= 0); returns the new value.
  double increase(BlockId b, Time t, double delta);

  /// Raise phi_b^t to at least v; returns the applied (non-negative) delta.
  double raise_to(BlockId b, Time t, double v);

  [[nodiscard]] const std::vector<Entry>& entries(BlockId b) const {
    return per_block_[static_cast<std::size_t>(b)];
  }

  /// Fractional eviction cost: sum over blocks of c_B * sum_{t >= 1} phi_B^t
  /// (time-0 flushes are free per the paper's convention).
  [[nodiscard]] Cost total_cost(const BlockMap& blocks) const;

  /// Sum of phi_b^t over stored entries with time > t0.
  [[nodiscard]] double mass_after(BlockId b, Time t0) const;

  /// x_p at the coverage's current tau, per the paper's (3.2):
  /// 1 if p was never requested, else min(1, sum_{u > r(p,tau)} phi_B^u).
  [[nodiscard]] double x_value(const FlushCoverage& cov, PageId p) const;

 private:
  std::vector<std::vector<Entry>> per_block_;
};

}  // namespace bac
