// Wolsey's greedy algorithm for (integer-valued) submodular cover.
//
// Given a monotone submodular f on a finite ground set with element costs,
// greedily pick the element maximizing marginal-gain per unit cost until
// f(S) = f(N). Wolsey [Wol82] proved an H(max_v f(v)) = O(log max f)
// approximation, and that the LP (2.1) the paper builds on has integrality
// gap at most log(max f) + 1. Used by the offline baselines and by tests
// that validate the LP machinery on small instances.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/types.hpp"

namespace bac {

struct SubmodularCoverResult {
  std::vector<std::size_t> chosen;  ///< element indices, in pick order
  Cost cost = 0;
  bool covered = false;  ///< reached f(S) == f(N)
};

/// `marginal(S_indicator, v)` must return f(v | S) >= 0 for the set encoded
/// by the indicator vector; `target` is f(N) - f(empty). Elements have
/// positive costs. Greedy stops when the accumulated gain reaches target or
/// no element has positive marginal.
SubmodularCoverResult greedy_submodular_cover(
    std::size_t n_elements, const std::function<Cost(std::size_t)>& cost,
    const std::function<long long(const std::vector<char>&, std::size_t)>&
        marginal,
    long long target);

}  // namespace bac
