#include "submodular/flush_vars.hpp"

#include <algorithm>
#include <stdexcept>

namespace bac {

namespace {
auto find_entry(std::vector<FlushVars::Entry>& list, Time t) {
  return std::lower_bound(
      list.begin(), list.end(), t,
      [](const FlushVars::Entry& e, Time time) { return e.t < time; });
}
auto find_entry(const std::vector<FlushVars::Entry>& list, Time t) {
  return std::lower_bound(
      list.begin(), list.end(), t,
      [](const FlushVars::Entry& e, Time time) { return e.t < time; });
}
}  // namespace

double FlushVars::get(BlockId b, Time t) const {
  const auto& list = per_block_[static_cast<std::size_t>(b)];
  const auto it = find_entry(list, t);
  return (it != list.end() && it->t == t) ? it->phi : 0.0;
}

double FlushVars::increase(BlockId b, Time t, double delta) {
  if (delta < 0)
    throw std::invalid_argument("FlushVars::increase: negative delta");
  auto& list = per_block_[static_cast<std::size_t>(b)];
  auto it = find_entry(list, t);
  if (it == list.end() || it->t != t) it = list.insert(it, Entry{t, 0.0});
  it->phi += delta;
  return it->phi;
}

double FlushVars::raise_to(BlockId b, Time t, double v) {
  const double cur = get(b, t);
  if (v <= cur) return 0.0;
  increase(b, t, v - cur);
  return v - cur;
}

Cost FlushVars::total_cost(const BlockMap& blocks) const {
  Cost total = 0;
  for (BlockId b = 0; b < blocks.n_blocks(); ++b) {
    double mass = 0;
    for (const Entry& e : entries(b))
      if (e.t >= 1) mass += e.phi;
    total += blocks.cost(b) * mass;
  }
  return total;
}

double FlushVars::mass_after(BlockId b, Time t0) const {
  const auto& list = per_block_[static_cast<std::size_t>(b)];
  double mass = 0;
  for (auto it = list.rbegin(); it != list.rend() && it->t > t0; ++it)
    mass += it->phi;
  return mass;
}

double FlushVars::x_value(const FlushCoverage& cov, PageId p) const {
  const Time r = cov.last_request(p);
  if (r == kNeverRequested) return 1.0;
  const BlockId b = cov.blocks().block_of(p);
  return std::min(1.0, mass_after(b, r));
}

}  // namespace bac
