// Separation oracles for the submodular-cover LP (P) at the current tau.
//
// The primal constraint for a flush set S' and the current time tau is
//     sum_{(B,t)} f_tau((B,t) | S') * phi_B^t  >=  (n - k) - f_tau(S').
// Deciding feasibility over *all* S' is not polynomial in general; the
// paper's fractional algorithm only ever needs constraints for S' >= S
// where S is the set of integrally-chosen flushes (Claim 3.10). Following
// the round-or-separate viewpoint of [GL20b], ThresholdSeparation searches
// the family { S } and { S + all entries with phi >= theta } over the
// distinct entry values theta; ExhaustiveSeparation enumerates every
// relevant per-block max-flush combination (exponential; tests only).
#pragma once

#include <optional>

#include "submodular/flush_coverage.hpp"
#include "submodular/flush_vars.hpp"

namespace bac {

struct Violation {
  FlushSet sprime;  ///< the violated constraint's S'
  double lhs = 0;   ///< sum of capped marginals times phi
  double rhs = 0;   ///< (n-k) - f_tau(S')
  [[nodiscard]] double amount() const noexcept { return rhs - lhs; }
};

/// LHS of the constraint (S', tau): entries with time <= the block's max
/// flush in S' contribute zero (their capped marginal vanishes).
[[nodiscard]] double constraint_lhs(const FlushSet& sprime,
                                    const FlushVars& phi);

class SeparationOracle {
 public:
  virtual ~SeparationOracle() = default;
  /// Find some violated constraint (S', tau) with S' >= S, or nullopt.
  virtual std::optional<Violation> find_violated(const FlushSet& S,
                                                 const FlushVars& phi) = 0;
};

class ThresholdSeparation final : public SeparationOracle {
 public:
  /// `tolerance`: constraints violated by less than this are ignored
  /// (guards against floating-point churn in the closed-form updates).
  explicit ThresholdSeparation(double tolerance = 1e-9)
      : tolerance_(tolerance) {}
  std::optional<Violation> find_violated(const FlushSet& S,
                                         const FlushVars& phi) override;

 private:
  double tolerance_;
};

/// Exhaustive search over per-block max-flush-time combinations drawn from
/// entry times and alive times. Exponential in the number of blocks —
/// only for validating the other oracles on small instances.
class ExhaustiveSeparation final : public SeparationOracle {
 public:
  explicit ExhaustiveSeparation(double tolerance = 1e-9)
      : tolerance_(tolerance) {}
  std::optional<Violation> find_violated(const FlushSet& S,
                                         const FlushVars& phi) override;

 private:
  double tolerance_;
};

/// *Exact* polynomial-time separation. Because the uncapped coverage g_tau
/// decomposes as a sum of per-block terms that depend only on the block's
/// maximum flush time, a constraint (S', tau) is determined by the vector
/// of per-block max flush times and couples across blocks only through
/// G = g_tau(S'). For each target G < n-k, a knapsack DP over blocks
/// minimizes the constraint LHS among all S' with g(S') = G (per-block
/// candidate times are the alive times, entry times and `now`); the most
/// negative slack over G is the most violated constraint. O(n * n_blocks *
/// candidates * entries) per call — heavier than ThresholdSeparation but
/// complete; used by tests and available for exact experiment runs.
class DpSeparation final : public SeparationOracle {
 public:
  explicit DpSeparation(double tolerance = 1e-9) : tolerance_(tolerance) {}
  std::optional<Violation> find_violated(const FlushSet& S,
                                         const FlushVars& phi) override;

 private:
  double tolerance_;
};

}  // namespace bac
