#include "submodular/flush_coverage.hpp"

#include <algorithm>
#include <stdexcept>

namespace bac {

FlushCoverage::FlushCoverage(const BlockMap& blocks, int k)
    : blocks_(&blocks), k_(k), cap_(std::max(0, blocks.n_pages() - k)) {
  if (k <= 0) throw std::invalid_argument("FlushCoverage: k must be positive");
  last_.assign(static_cast<std::size_t>(blocks.n_pages()), kNeverRequested);
  sorted_last_.resize(static_cast<std::size_t>(blocks.n_blocks()));
  for (BlockId b = 0; b < blocks.n_blocks(); ++b)
    sorted_last_[static_cast<std::size_t>(b)].assign(
        blocks.pages_in(b).size(), kNeverRequested);
}

void FlushCoverage::advance(PageId p, Time t,
                            std::span<FlushSet* const> sets) {
  if (t <= now_)
    throw std::invalid_argument("FlushCoverage::advance: time must increase");

  // Update cached g of every registered set before r(p, .) changes:
  // p's missing-status can only go missing -> present (its last request
  // becomes the current time, which is >= every flush time in any set).
  for (FlushSet* s : sets)
    if (s->missing(p)) --s->g_;

  // Maintain the per-block sorted list: remove old value, insert new.
  const Time old = last_[static_cast<std::size_t>(p)];
  const BlockId b = blocks_->block_of(p);
  auto& list = sorted_last_[static_cast<std::size_t>(b)];
  auto it = std::lower_bound(list.begin(), list.end(), old);
  // old value is guaranteed present
  list.erase(it);
  list.insert(std::upper_bound(list.begin(), list.end(), t), t);
  last_[static_cast<std::size_t>(p)] = t;
  now_ = t;
}

int FlushCoverage::count_below(BlockId b, Time m) const {
  const auto& list = sorted_last_[static_cast<std::size_t>(b)];
  return static_cast<int>(
      std::lower_bound(list.begin(), list.end(), m) - list.begin());
}

std::vector<Time> FlushCoverage::alive_times(BlockId b) const {
  const auto& list = sorted_last_[static_cast<std::size_t>(b)];
  std::vector<Time> out;
  out.reserve(list.size());
  for (Time r : list) {
    const Time t = (r == kNeverRequested) ? 0 : r + 1;
    if (out.empty() || out.back() != t) out.push_back(t);
  }
  return out;
}

FlushSet::FlushSet(const FlushCoverage& cov, Time init_flush_time)
    : cov_(&cov),
      max_flush_(static_cast<std::size_t>(cov.blocks().n_blocks()),
                 init_flush_time) {
  recompute();
}

FlushSet::FlushSet(const FlushCoverage& cov) : FlushSet(cov, 0) {}

FlushSet FlushSet::empty(const FlushCoverage& cov) {
  return FlushSet(cov, kNeverRequested);
}

int FlushSet::g_marginal(BlockId b, Time t) const {
  const Time m = max_flush(b);
  if (t <= m) return 0;
  return cov_->count_below(b, t) - (m == kNeverRequested ? 0 : cov_->count_below(b, m));
}

int FlushSet::f_marginal(BlockId b, Time t) const {
  const int cap = cov_->cap();
  if (g_ >= cap) return 0;
  return std::min(g_marginal(b, t), cap - g_);
}

int FlushSet::add_flush(BlockId b, Time t) {
  if (t > cov_->now())
    throw std::invalid_argument("FlushSet::add_flush: future flush");
  const int delta = g_marginal(b, t);
  if (t > max_flush(b)) max_flush_[static_cast<std::size_t>(b)] = t;
  g_ += delta;
  return delta;
}

void FlushSet::recompute() {
  g_ = 0;
  for (BlockId b = 0; b < cov_->blocks().n_blocks(); ++b) {
    const Time m = max_flush(b);
    if (m != kNeverRequested) g_ += cov_->count_below(b, m);
  }
}

}  // namespace bac
