// The paper's submodular flush-coverage function f_tau (Section 3.1).
//
// A *flush* (B, t) evicts all cached pages of block B at time t. Page p is
// missing at time tau under a flush set S iff S contains a flush (B(p), t)
// with r(p, tau) < t <= tau; equivalently, with
//     m_B(tau) := max{ t : (B, t) in S, t <= tau }   (-1 if none)
// p is missing iff r(p, tau) < m_{B(p)}(tau). Therefore
//     g_tau(S)  =  sum_B |{ p in B : r(p, tau) < m_B(tau) }|
//     f_tau(S)  =  min(n - k, g_tau(S))
// g_tau is a coverage function (Claim 3.1), so f_tau is monotone submodular;
// the decomposition above makes every evaluation two binary searches per
// block and every marginal O(log beta).
//
// FlushCoverage owns the dynamic last-request state (r(p, tau) for the
// current tau); FlushSet is a set of flushes represented by per-block
// maximum flush times with a cached g value, updated in O(1) per request.
#pragma once

#include <span>
#include <vector>

#include "core/block_map.hpp"
#include "core/types.hpp"

namespace bac {

class FlushSet;

class FlushCoverage {
 public:
  /// `k` is the cache size; the cap of f_tau is n - k (zero if n <= k,
  /// in which case every constraint is trivially satisfied).
  FlushCoverage(const BlockMap& blocks, int k);

  /// Advance to time t with request p. Every FlushSet whose cached g must
  /// stay consistent has to be passed here (it is updated *before* the
  /// last-request state changes).
  void advance(PageId p, Time t, std::span<FlushSet* const> sets);
  void advance(PageId p, Time t) { advance(p, t, {}); }

  [[nodiscard]] const BlockMap& blocks() const noexcept { return *blocks_; }
  [[nodiscard]] int n() const noexcept { return blocks_->n_pages(); }
  [[nodiscard]] int k() const noexcept { return k_; }
  /// The cap n - k (>= 0).
  [[nodiscard]] int cap() const noexcept { return cap_; }
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// r(p, tau) for the current tau.
  [[nodiscard]] Time last_request(PageId p) const {
    return last_[static_cast<std::size_t>(p)];
  }

  /// |{ p in B : r(p, tau) < m }| via binary search in the block's sorted
  /// last-request list.
  [[nodiscard]] int count_below(BlockId b, Time m) const;

  /// Distinct alive flush times of block b at the current tau:
  /// { r(p, tau) + 1 : p in B } (deduplicated, ascending). Alive flushes
  /// are the only ones a competitive algorithm ever needs (Section 3.3).
  [[nodiscard]] std::vector<Time> alive_times(BlockId b) const;

 private:
  friend class FlushSet;
  const BlockMap* blocks_;
  int k_;
  int cap_;
  Time now_ = 0;
  std::vector<Time> last_;                       // r(p, now) per page
  std::vector<std::vector<Time>> sorted_last_;   // per block, ascending
};

/// A set of flushes S (per-block max flush time) with cached g_tau(S).
class FlushSet {
 public:
  /// The paper's initialization S = { (B, 0) : B }: every block flushed at
  /// time 0, so all never-requested pages are missing and g = n.
  explicit FlushSet(const FlushCoverage& cov);

  /// An empty flush set (m_B = -1 for all B, g = 0). Mostly for tests.
  static FlushSet empty(const FlushCoverage& cov);

  [[nodiscard]] Time max_flush(BlockId b) const {
    return max_flush_[static_cast<std::size_t>(b)];
  }

  /// g_tau(S) / f_tau(S) at the coverage's current tau.
  [[nodiscard]] int g() const noexcept { return g_; }
  [[nodiscard]] int f() const noexcept { return g_ < cov_->cap() ? g_ : cov_->cap(); }

  /// Marginals of adding flush (b, t) at the current tau.
  [[nodiscard]] int g_marginal(BlockId b, Time t) const;
  [[nodiscard]] int f_marginal(BlockId b, Time t) const;

  /// Is page p missing at the current tau according to this set?
  [[nodiscard]] bool missing(PageId p) const {
    return cov_->last_request(p) < max_flush(cov_->blocks().block_of(p));
  }

  /// Add flush (b, t); t must be <= the coverage's current tau. Returns the
  /// g-marginal that was realized.
  int add_flush(BlockId b, Time t);

  /// Recompute g from scratch (O(n_blocks log beta)); used to restore cache
  /// coherence for copies and by tests.
  void recompute();

  [[nodiscard]] const FlushCoverage& coverage() const noexcept { return *cov_; }

 private:
  friend class FlushCoverage;
  FlushSet(const FlushCoverage& cov, Time init_flush_time);
  const FlushCoverage* cov_;
  std::vector<Time> max_flush_;
  int g_ = 0;
};

}  // namespace bac
