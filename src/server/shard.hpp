// One shard of the concurrent data-plane: a single-threaded block-aware
// cache (policy + cache set + cost meter) behind a mutex.
//
// A shard owns every page of the blocks assigned to it, so the paper's
// batched cost semantics stay exact under concurrency: any flush or
// batched fetch of a block happens entirely inside one shard's meter,
// within one of that shard's time steps. Requests for a shard's pages are
// serialized by the shard mutex; distinct shards share no mutable state
// and serve fully in parallel. Per-REQUEST service latency and per-batch
// lock wait are recorded into mergeable log-bucketed histograms
// (obs/histogram.hpp) under the same lock, so the coordinator can fold
// shard sketches into exact (bucket-resolution) global tail quantiles at
// snapshot time.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "core/cache_set.hpp"
#include "core/cost_meter.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"
#include "obs/histogram.hpp"
#include "util/thread_annotations.hpp"

namespace bac::server {

/// Counters and latency summaries copied out of a shard under its lock.
struct ShardSnapshot {
  long long requests = 0;
  long long hits = 0;
  long long misses = 0;
  Cost eviction_cost = 0;
  Cost fetch_cost = 0;
  Cost classic_eviction_cost = 0;
  Cost classic_fetch_cost = 0;
  long long evict_block_events = 0;
  long long fetch_block_events = 0;
  long long evicted_pages = 0;
  long long fetched_pages = 0;
  int cached_pages = 0;
  int capacity = 0;
  /// Per-request service latency (lock wait + policy work), one sample
  /// per request — so p99/p999 describe requests, not batch means.
  obs::Histogram latency_us;
  /// Mutex acquisition wait per get_batch call (contention signal).
  obs::Histogram lock_wait_us;
  /// Derived from latency_us (bucket-midpoint estimates; max is exact);
  /// kept as flat fields for JSON emitters. NaN before any request —
  /// the repo-wide empty-histogram convention (obs::Histogram::mean),
  /// which write_json_number renders as null rather than a fake 0 us.
  double lat_p50_us = std::numeric_limits<double>::quiet_NaN();
  double lat_p99_us = std::numeric_limits<double>::quiet_NaN();
  double lat_mean_us = std::numeric_limits<double>::quiet_NaN();
  double lat_max_us = std::numeric_limits<double>::quiet_NaN();

  [[nodiscard]] Cost total_cost() const noexcept {
    return eviction_cost + fetch_cost;
  }
};

class CacheShard {
 public:
  /// `header` carries the full block map and this shard's capacity as its
  /// k (requests empty, as for streaming sources); it must outlive the
  /// shard — the ConcurrentCache coordinator owns it. The policy is
  /// reset(header) then seed(seed) here, mirroring the simulator.
  CacheShard(const Instance& header, std::unique_ptr<OnlinePolicy> policy,
             std::uint64_t seed);

  // CacheOps points into cache_/meter_; the shard must never move.
  CacheShard(const CacheShard&) = delete;
  CacheShard& operator=(const CacheShard&) = delete;

  /// Serve one request; true on hit. Thread-safe. Audits the policy like
  /// the simulator does: throws std::runtime_error if the requested page
  /// is left uncached or the shard capacity is exceeded.
  bool get(PageId p);

  /// Serve `n` requests (all owned by this shard) under ONE lock
  /// acquisition; returns the hit count. Costs, counters, and audits are
  /// identical to n get() calls — each request is its own metered time
  /// step — so replays stay bit-identical to the unbatched path. Latency
  /// is recorded per REQUEST (one clock read each, ~20ns): the first
  /// request's sample includes the lock wait — under closed-loop load the
  /// queueing delay at a hot shard is part of the service time a client
  /// observes — and the wait itself also lands in lock_wait_us.
  long long get_batch(const PageId* ps, int n);

  [[nodiscard]] ShardSnapshot snapshot() const;

  /// Fold the shard policy's structural counters (ghost hits, hand
  /// sweeps, ...) into `registry` under the shard lock. Counters are
  /// event counts, so summing over shards is thread-count invariant —
  /// shard assignment is by block, not by thread.
  void export_policy_metrics(obs::MetricRegistry& registry) const;

 private:
  // Everything below the mutex is mutated only under it (the clang-tsa
  // preset proves this). header_ is immutable shared context; policy_,
  // cache_, meter_ are also reached through ops_'s stored references,
  // which is invisible to the analysis — the REQUIRES discipline on the
  // call sites (get_batch only) keeps that path locked too.
  const Instance* header_;
  mutable Mutex mutex_;
  std::unique_ptr<OnlinePolicy> policy_ GUARDED_BY(mutex_);
  CacheSet cache_ GUARDED_BY(mutex_);
  CostMeter meter_ GUARDED_BY(mutex_);
  CacheOps ops_ GUARDED_BY(mutex_);
  Time t_ GUARDED_BY(mutex_) = 0;
  long long hits_ GUARDED_BY(mutex_) = 0;
  long long misses_ GUARDED_BY(mutex_) = 0;
  obs::Histogram latency_us_ GUARDED_BY(mutex_);
  obs::Histogram lock_wait_us_ GUARDED_BY(mutex_);
};

}  // namespace bac::server
