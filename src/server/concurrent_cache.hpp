// Thread-safe sharded block-aware cache front-end with a get(page) API.
//
// Sharding is by *block*: every page of a block is owned by exactly one
// shard (splitmix64 hash of the block id, mod the shard count), so
// per-shard CostMeters never split a block's batched flush or fetch
// across meters — the paper's cost model stays exact under concurrency.
// The global capacity k is divided near-evenly across shards (shard 0
// upward take the remainder pages, and every shard keeps capacity >=
// beta, enforced at construction). Each shard runs an independent clone
// of a prototype OnlinePolicy behind its own mutex; requests to distinct
// shards proceed fully in parallel.
//
// Determinism: a shard's cost depends only on the order of the requests
// *it* serves (shards share no mutable state). Any dispatch that
// preserves per-shard request order — e.g. serve_partitioned() in
// dispatch.hpp, where one worker owns each shard — therefore produces
// bit-identical total block-aware cost at every thread count.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/instance.hpp"
#include "core/policy.hpp"
#include "obs/metrics.hpp"
#include "server/shard.hpp"

namespace bac::server {

/// Aggregate of the per-shard snapshots (see stats() for merge rules).
struct ServerStats {
  long long requests = 0;
  long long hits = 0;
  long long misses = 0;
  Cost eviction_cost = 0;
  Cost fetch_cost = 0;
  Cost classic_eviction_cost = 0;
  Cost classic_fetch_cost = 0;
  long long evict_block_events = 0;
  long long fetch_block_events = 0;
  long long evicted_pages = 0;
  long long fetched_pages = 0;
  int cached_pages = 0;
  /// Union of the per-shard per-request histograms (exact bucket-wise
  /// merge in shard index order — histogram merges are associative, so
  /// the counts are independent of how requests were dispatched).
  obs::Histogram latency_us;
  obs::Histogram lock_wait_us;
  /// Derived from latency_us: bucket-midpoint quantile estimates of the
  /// merged per-REQUEST distribution; mean/max exact. NaN before any
  /// request (the empty-histogram convention; JSON renders it null).
  double lat_p50_us = std::numeric_limits<double>::quiet_NaN();
  double lat_p99_us = std::numeric_limits<double>::quiet_NaN();
  double lat_mean_us = std::numeric_limits<double>::quiet_NaN();
  double lat_max_us = std::numeric_limits<double>::quiet_NaN();

  [[nodiscard]] Cost total_cost() const noexcept {
    return eviction_cost + fetch_cost;
  }
};

// Thread-safety: the coordinator owns no lock of its own — every mutable
// member lives in a CacheShard behind that shard's GUARDED_BY-annotated
// bac::Mutex (shard.hpp); everything held here (headers, shard array,
// the hash parameters) is immutable after construction, which is why
// const methods are safe to call from any thread with no annotation.
class ConcurrentCache {
 public:
  /// `context` supplies the block structure and the *total* capacity k;
  /// its requests (if any) are ignored. The prototype policy must be
  /// cloneable and online — requires_future() policies cannot serve a
  /// live request stream. Shard i's policy clone is seeded with seed + i,
  /// so runs are reproducible for any dispatch that preserves per-shard
  /// order. Throws std::invalid_argument when n_shards < 1, the prototype
  /// is offline or not cloneable, or k / n_shards < beta (use
  /// max_shards() to size the shard count).
  ConcurrentCache(const Instance& context, const OnlinePolicy& prototype,
                  int n_shards, std::uint64_t seed = 1);

  // Shards hold pointers into the coordinator-owned headers.
  ConcurrentCache(const ConcurrentCache&) = delete;
  ConcurrentCache& operator=(const ConcurrentCache&) = delete;

  /// Serve one request; true on hit. Thread-safe for any mix of pages.
  /// Throws std::out_of_range for pages outside the context's universe.
  bool get(PageId p);

  /// Serve `n` requests in order; returns the hit count. Consecutive
  /// requests owned by the same shard are served under one lock
  /// acquisition (CacheShard::get_batch), so a dispatch whose lanes are
  /// shard-partitioned pays ~1 lock per 512 requests instead of one per
  /// request. Per-shard request order — and therefore every cost and
  /// counter — is identical to n get() calls at any thread count.
  long long get_batch(const PageId* ps, int n);

  [[nodiscard]] int n_shards() const noexcept {
    return static_cast<int>(shards_.size());
  }
  /// Shard owning page p (every page of p's block maps to the same one).
  [[nodiscard]] int shard_of(PageId p) const;
  /// The block structure and total k the cache was built with.
  [[nodiscard]] const Instance& context() const noexcept { return context_; }

  /// Aggregated counters/costs/latency over all shards, locking each
  /// shard in turn (shard index order, so repeated calls on a quiesced
  /// cache are deterministic). Not a consistent point-in-time snapshot
  /// while traffic is in flight.
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] ShardSnapshot shard_snapshot(int shard) const;

  /// Fold the current stats() into `registry` under `server_*` names:
  /// event counters (requests/hits/misses, costs, block events, pages —
  /// all bit-identical across thread counts for shard-order-preserving
  /// dispatch) plus the merged latency/lock-wait histograms.
  void export_metrics(obs::MetricRegistry& registry) const;

  /// Largest shard count that keeps every shard's capacity >= beta
  /// (i.e. floor(k / beta), at least 1).
  [[nodiscard]] static int max_shards(const Instance& context);

 private:
  Instance context_;  ///< full structure, k = total capacity
  /// Shared shard headers: at most two distinct shard capacities exist
  /// (floor(k/S) and floor(k/S)+1), so two headers serve every shard and
  /// no per-shard BlockMap copies are made; header_hi_ stays null when
  /// k % S == 0 (a header is an O(n_pages) BlockMap copy).
  std::unique_ptr<const Instance> header_lo_;
  std::unique_ptr<const Instance> header_hi_;
  std::vector<std::int32_t> page_shard_;  ///< page -> owning shard
  std::vector<std::unique_ptr<CacheShard>> shards_;
};

}  // namespace bac::server
