#include "server/concurrent_cache.hpp"

#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace bac::server {

namespace {

/// Stateless block -> shard hash. splitmix64 scrambles the id so
/// contiguous block ranges (the common layout for extent-grouped traces)
/// spread evenly instead of striping.
int shard_of_block(BlockId b, int n_shards) {
  std::uint64_t state = static_cast<std::uint64_t>(b) + 1;
  return static_cast<int>(splitmix64(state) %
                          static_cast<std::uint64_t>(n_shards));
}

}  // namespace

int ConcurrentCache::max_shards(const Instance& context) {
  const int beta = context.blocks.beta();
  if (beta <= 0 || context.k < beta) return 1;
  return context.k / beta;
}

ConcurrentCache::ConcurrentCache(const Instance& context,
                                 const OnlinePolicy& prototype, int n_shards,
                                 std::uint64_t seed)
    : context_{context.blocks, {}, context.k} {
  context_.validate();
  if (n_shards < 1)
    throw std::invalid_argument("ConcurrentCache: n_shards must be >= 1");
  if (prototype.requires_future())
    throw std::invalid_argument(
        "ConcurrentCache: offline policy " + prototype.name() +
        " cannot serve a live request stream");
  const int base = context_.k / n_shards;
  if (base < context_.blocks.beta())
    throw std::invalid_argument(
        "ConcurrentCache: k / n_shards = " + std::to_string(base) +
        " is below beta = " + std::to_string(context_.blocks.beta()) +
        " (at most max_shards() = " + std::to_string(max_shards(context_)) +
        " shards for this instance)");

  const int remainder = context_.k % n_shards;
  header_lo_ = std::make_unique<const Instance>(
      Instance{context_.blocks, {}, base});
  // A header is a full BlockMap copy (O(n_pages)); only materialize the
  // base+1 variant when some shard actually takes a remainder page.
  if (remainder > 0)
    header_hi_ = std::make_unique<const Instance>(
        Instance{context_.blocks, {}, base + 1});

  const int n_blocks = context_.blocks.n_blocks();
  std::vector<std::int32_t> block_shard(static_cast<std::size_t>(n_blocks));
  for (BlockId b = 0; b < n_blocks; ++b)
    block_shard[static_cast<std::size_t>(b)] =
        static_cast<std::int32_t>(shard_of_block(b, n_shards));
  page_shard_.resize(static_cast<std::size_t>(context_.n_pages()));
  for (PageId p = 0; p < context_.n_pages(); ++p)
    page_shard_[static_cast<std::size_t>(p)] = block_shard[
        static_cast<std::size_t>(context_.blocks.block_of(p))];

  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    auto policy = prototype.clone();
    if (!policy)
      throw std::invalid_argument(
          "ConcurrentCache: policy " + prototype.name() +
          " is not cloneable (clone() returned nullptr); every shard "
          "needs an independent instance");
    const Instance& header = s < remainder ? *header_hi_ : *header_lo_;
    shards_.push_back(std::make_unique<CacheShard>(
        header, std::move(policy), seed + static_cast<std::uint64_t>(s)));
  }
}

bool ConcurrentCache::get(PageId p) {
  if (p < 0 || p >= context_.n_pages())
    throw std::out_of_range("ConcurrentCache: page " + std::to_string(p) +
                            " outside [0, " +
                            std::to_string(context_.n_pages()) + ")");
  return shards_[static_cast<std::size_t>(
                     page_shard_[static_cast<std::size_t>(p)])]
      ->get(p);
}

long long ConcurrentCache::get_batch(const PageId* ps, int n) {
  long long hits = 0;
  int i = 0;
  while (i < n) {
    const PageId p = ps[i];
    if (p < 0 || p >= context_.n_pages())
      throw std::out_of_range("ConcurrentCache: page " + std::to_string(p) +
                              " outside [0, " +
                              std::to_string(context_.n_pages()) + ")");
    const std::int32_t s = page_shard_[static_cast<std::size_t>(p)];
    // Extend the run while the owning shard stays the same.
    int j = i + 1;
    while (j < n) {
      const PageId q = ps[j];
      if (q < 0 || q >= context_.n_pages())
        break;  // re-diagnosed (and thrown) at the top of the next run
      if (page_shard_[static_cast<std::size_t>(q)] != s) break;
      ++j;
    }
    hits += shards_[static_cast<std::size_t>(s)]->get_batch(ps + i, j - i);
    i = j;
  }
  return hits;
}

int ConcurrentCache::shard_of(PageId p) const {
  if (p < 0 || p >= context_.n_pages())
    throw std::out_of_range("ConcurrentCache: page " + std::to_string(p) +
                            " outside [0, " +
                            std::to_string(context_.n_pages()) + ")");
  return page_shard_[static_cast<std::size_t>(p)];
}

ShardSnapshot ConcurrentCache::shard_snapshot(int shard) const {
  return shards_.at(static_cast<std::size_t>(shard))->snapshot();
}

ServerStats ConcurrentCache::stats() const {
  ServerStats out;
  // Histogram merges are exact (bucket-wise count adds in shard index
  // order) — the merged quantiles describe the union of all per-request
  // samples at bucket resolution, not a weighted mean of per-shard
  // estimates as with the former P^2 sketches.
  for (const auto& shard : shards_) {
    const ShardSnapshot s = shard->snapshot();
    out.requests += s.requests;
    out.hits += s.hits;
    out.misses += s.misses;
    out.eviction_cost += s.eviction_cost;
    out.fetch_cost += s.fetch_cost;
    out.classic_eviction_cost += s.classic_eviction_cost;
    out.classic_fetch_cost += s.classic_fetch_cost;
    out.evict_block_events += s.evict_block_events;
    out.fetch_block_events += s.fetch_block_events;
    out.evicted_pages += s.evicted_pages;
    out.fetched_pages += s.fetched_pages;
    out.cached_pages += s.cached_pages;
    out.latency_us.merge(s.latency_us);
    out.lock_wait_us.merge(s.lock_wait_us);
  }
  if (out.requests > 0) {
    out.lat_p50_us = out.latency_us.quantile(0.50);
    out.lat_p99_us = out.latency_us.quantile(0.99);
    out.lat_mean_us = out.latency_us.mean();
    out.lat_max_us = out.latency_us.max();
  }
  return out;
}

void ConcurrentCache::export_metrics(obs::MetricRegistry& registry) const {
  const ServerStats s = stats();
  // Every counter here is an *event* count: deterministic under any
  // dispatch that preserves per-shard order, hence bit-identical across
  // thread counts (the concurrency oracle and CI metrics-smoke assert
  // this). Latency histograms are wall-clock and deliberately excluded
  // from that invariant.
  registry.counter("server_requests_total").inc(
      static_cast<std::uint64_t>(s.requests));
  registry.counter("server_hits_total").inc(static_cast<std::uint64_t>(s.hits));
  registry.counter("server_misses_total").inc(
      static_cast<std::uint64_t>(s.misses));
  registry.counter("server_eviction_cost_total").inc(
      static_cast<std::uint64_t>(s.eviction_cost));
  registry.counter("server_fetch_cost_total").inc(
      static_cast<std::uint64_t>(s.fetch_cost));
  registry.counter("server_evict_block_events_total").inc(
      static_cast<std::uint64_t>(s.evict_block_events));
  registry.counter("server_fetch_block_events_total").inc(
      static_cast<std::uint64_t>(s.fetch_block_events));
  registry.counter("server_evicted_pages_total").inc(
      static_cast<std::uint64_t>(s.evicted_pages));
  registry.counter("server_fetched_pages_total").inc(
      static_cast<std::uint64_t>(s.fetched_pages));
  registry.gauge("server_cached_pages").set(
      static_cast<double>(s.cached_pages));
  registry.merge_histogram("server_latency_us", s.latency_us);
  registry.merge_histogram("server_lock_wait_us", s.lock_wait_us);
  // Per-shard policy structural counters (ghost hits, hand sweeps, ...)
  // fold in as sums over shards: shard assignment is by block, so the
  // sums inherit the same thread-count invariance as the server_*
  // counters above.
  for (const auto& shard : shards_) shard->export_policy_metrics(registry);
}

}  // namespace bac::server
