// Closed-loop multithreaded replay of a materialized request sequence
// through a ConcurrentCache. Shared by tools/bacload and the concurrency
// test suite.
//
// Two dispatch modes:
//
//   serve_partitioned — worker j owns every shard s with s % n_threads
//     == j and serves that shard's requests in trace order. Per-shard
//     order is independent of the thread count, and shards share no
//     mutable state, so the total block-aware cost is bit-identical at
//     every thread count (the equivalence property bacload validates).
//     Workers never contend on a shard mutex.
//
//   serve_chunked — the trace is cut into n_threads contiguous chunks,
//     one per worker, so shards are hit from many threads at once. The
//     interleaving (hence the exact cost) is nondeterministic; this mode
//     exists to stress the locking (TSan) and to measure contention.
//
// Both return the wall-clock seconds of the parallel serve (partitioning
// and thread setup excluded), and both rethrow the first worker
// exception after all workers have joined.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "server/concurrent_cache.hpp"

namespace bac::server {

double serve_partitioned(ConcurrentCache& cache,
                         const std::vector<PageId>& requests, int n_threads);

double serve_chunked(ConcurrentCache& cache,
                     const std::vector<PageId>& requests, int n_threads);

}  // namespace bac::server
