#include "server/shard.hpp"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

namespace bac::server {

CacheShard::CacheShard(const Instance& header,
                       std::unique_ptr<OnlinePolicy> policy,
                       std::uint64_t seed)
    : header_(&header),
      policy_(std::move(policy)),
      cache_(header.n_pages()),
      meter_(header.blocks),
      ops_(header.blocks, cache_, meter_, header.k) {
  policy_->reset(*header_);
  policy_->seed(seed);
}

bool CacheShard::get(PageId p) { return get_batch(&p, 1) == 1; }

long long CacheShard::get_batch(const PageId* ps, int n) {
  if (n <= 0) return 0;
  // Latency includes the lock wait: under closed-loop load the queueing
  // delay at a hot shard is part of the service time a client observes.
  const auto start = std::chrono::steady_clock::now();
  MutexLock lock(mutex_);
  long long batch_hits = 0;
  for (int i = 0; i < n; ++i) {
    const PageId p = ps[i];
    if (t_ == std::numeric_limits<Time>::max())
      throw std::runtime_error(
          "CacheShard: shard served 2^31-1 requests (Time is 32-bit)");
    ++t_;
    meter_.begin_step(t_);
    const bool hit = cache_.contains(p);
    if (hit) {
      ++hits_;
      ++batch_hits;
    } else {
      ++misses_;
    }
    policy_->on_request(t_, p, ops_);
    // Feasibility audit, as in the simulator — a server must not silently
    // repair a broken policy.
    if (!cache_.contains(p))
      throw std::runtime_error("CacheShard: policy " + policy_->name() +
                               " left requested page uncached");
    if (cache_.size() > header_->k)
      throw std::runtime_error("CacheShard: policy " + policy_->name() +
                               " exceeded shard capacity");
  }
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count() /
                    static_cast<double>(n);
  lat_p50_.add(us);
  lat_p99_.add(us);
  lat_us_.add(us);
  return batch_hits;
}

ShardSnapshot CacheShard::snapshot() const {
  MutexLock lock(mutex_);
  ShardSnapshot s;
  s.requests = hits_ + misses_;
  s.hits = hits_;
  s.misses = misses_;
  s.eviction_cost = meter_.eviction_cost();
  s.fetch_cost = meter_.fetch_cost();
  s.classic_eviction_cost = meter_.classic_eviction_cost();
  s.classic_fetch_cost = meter_.classic_fetch_cost();
  s.evict_block_events = meter_.evict_block_events();
  s.fetch_block_events = meter_.fetch_block_events();
  s.evicted_pages = meter_.evicted_pages();
  s.fetched_pages = meter_.fetched_pages();
  s.cached_pages = cache_.size();
  s.capacity = header_->k;
  if (s.requests > 0) {
    s.lat_p50_us = lat_p50_.value();
    s.lat_p99_us = lat_p99_.value();
    s.lat_mean_us = lat_us_.mean();
    s.lat_max_us = lat_us_.max();
  }
  return s;
}

}  // namespace bac::server
