#include "server/shard.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "util/timer.hpp"

namespace bac::server {

CacheShard::CacheShard(const Instance& header,
                       std::unique_ptr<OnlinePolicy> policy,
                       std::uint64_t seed)
    : header_(&header),
      policy_(std::move(policy)),
      cache_(header.n_pages()),
      meter_(header.blocks),
      ops_(header.blocks, cache_, meter_, header.k) {
  policy_->reset(*header_);
  policy_->seed(seed);
}

bool CacheShard::get(PageId p) { return get_batch(&p, 1) == 1; }

long long CacheShard::get_batch(const PageId* ps, int n) {
  if (n <= 0) return 0;
  // One clock read per request (end of request i starts request i+1).
  // The first request's latency includes the lock wait: under closed-loop
  // load the queueing delay at a hot shard is part of the service time a
  // client observes. Recording per request — not one sample of the batch
  // mean — is what makes the p99/p999 of latency_us_ meaningful: a single
  // slow request in a 512-batch must show up in the tail, not be diluted
  // 512-fold.
  // baclint: hot-path — the per-request eviction path must stay allocation-free
  const Stopwatch clock;
  MutexLock lock(mutex_);
  const double lock_wait_us = clock.micros();
  double prev_us = 0.0;
  long long batch_hits = 0;
  for (int i = 0; i < n; ++i) {
    const PageId p = ps[i];
    if (t_ == std::numeric_limits<Time>::max())
      throw std::runtime_error(
          "CacheShard: shard served 2^31-1 requests (Time is 32-bit)");
    ++t_;
    meter_.begin_step(t_);
    const bool hit = cache_.contains(p);
    if (hit) {
      ++hits_;
      ++batch_hits;
    } else {
      ++misses_;
    }
    policy_->on_request(t_, p, ops_);
    // Feasibility audit, as in the simulator — a server must not silently
    // repair a broken policy.
    if (!cache_.contains(p))
      throw std::runtime_error("CacheShard: policy " + policy_->name() +
                               " left requested page uncached");
    if (cache_.size() > header_->k)
      throw std::runtime_error("CacheShard: policy " + policy_->name() +
                               " exceeded shard capacity");
    const double now_us = clock.micros();
    latency_us_.add(now_us - prev_us);
    prev_us = now_us;
  }
  lock_wait_us_.add(lock_wait_us);
  return batch_hits;
}

ShardSnapshot CacheShard::snapshot() const {
  MutexLock lock(mutex_);
  ShardSnapshot s;
  s.requests = hits_ + misses_;
  s.hits = hits_;
  s.misses = misses_;
  s.eviction_cost = meter_.eviction_cost();
  s.fetch_cost = meter_.fetch_cost();
  s.classic_eviction_cost = meter_.classic_eviction_cost();
  s.classic_fetch_cost = meter_.classic_fetch_cost();
  s.evict_block_events = meter_.evict_block_events();
  s.fetch_block_events = meter_.fetch_block_events();
  s.evicted_pages = meter_.evicted_pages();
  s.fetched_pages = meter_.fetched_pages();
  s.cached_pages = cache_.size();
  s.capacity = header_->k;
  s.latency_us = latency_us_;
  s.lock_wait_us = lock_wait_us_;
  if (s.requests > 0) {
    s.lat_p50_us = s.latency_us.quantile(0.50);
    s.lat_p99_us = s.latency_us.quantile(0.99);
    s.lat_mean_us = s.latency_us.mean();
    s.lat_max_us = s.latency_us.max();
  }
  return s;
}

void CacheShard::export_policy_metrics(obs::MetricRegistry& registry) const {
  MutexLock lock(mutex_);
  policy_->export_metrics(registry);
}

}  // namespace bac::server
