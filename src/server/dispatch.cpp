#include "server/dispatch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace bac::server {

namespace {

/// Requests a worker hands to ConcurrentCache::get_batch per call; runs
/// of same-shard requests inside the batch share one lock acquisition.
constexpr std::size_t kDispatchBatch = 512;

/// Run one worker per lane over its request list, timing only the
/// parallel serve: workers block on a start gate until every thread is
/// spawned, so the wall clock excludes thread-creation cost (which
/// would otherwise bias cross-thread-count throughput comparisons).
/// The first worker exception is rethrown after joins.
double run_workers(ConcurrentCache& cache,
                   const std::vector<std::vector<PageId>>& lanes) {
  std::exception_ptr first_error;
  Mutex error_mutex;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(lanes.size());
  try {
    for (const std::vector<PageId>& lane : lanes) {
      workers.emplace_back([&cache, &lane, &go, &first_error, &error_mutex] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        try {
          for (std::size_t i = 0; i < lane.size(); i += kDispatchBatch)
            cache.get_batch(
                lane.data() + i,
                static_cast<int>(std::min(kDispatchBatch, lane.size() - i)));
        } catch (...) {
          MutexLock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  } catch (...) {
    // A failed spawn (thread limit) must not unwind a vector of live
    // joinable threads — that calls std::terminate. Release and join
    // what started, then surface the error to the caller.
    go.store(true, std::memory_order_release);
    for (std::thread& w : workers) w.join();
    throw;
  }
  Stopwatch clock;
  go.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();
  const double seconds = clock.seconds();
  if (first_error) std::rethrow_exception(first_error);
  return seconds;
}

void check_threads(int n_threads) {
  if (n_threads < 1)
    throw std::invalid_argument("serve: n_threads must be >= 1");
}

}  // namespace

double serve_partitioned(ConcurrentCache& cache,
                         const std::vector<PageId>& requests, int n_threads) {
  check_threads(n_threads);
  std::vector<std::vector<PageId>> lanes(
      static_cast<std::size_t>(n_threads));
  for (const PageId p : requests)
    lanes[static_cast<std::size_t>(cache.shard_of(p) % n_threads)]
        .push_back(p);
  return run_workers(cache, lanes);
}

double serve_chunked(ConcurrentCache& cache,
                     const std::vector<PageId>& requests, int n_threads) {
  check_threads(n_threads);
  std::vector<std::vector<PageId>> lanes(
      static_cast<std::size_t>(n_threads));
  const std::size_t total = requests.size();
  const std::size_t per =
      (total + static_cast<std::size_t>(n_threads) - 1) /
      static_cast<std::size_t>(n_threads);
  for (std::size_t start = 0, lane = 0; start < total; start += per, ++lane) {
    const std::size_t end = std::min(total, start + per);
    lanes[lane].assign(requests.begin() + static_cast<std::ptrdiff_t>(start),
                       requests.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return run_workers(cache, lanes);
}

}  // namespace bac::server
