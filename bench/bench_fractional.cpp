// EXP-3 (Theorem 3.6): the monotone-incremental fractional algorithm is
// O(log k)-competitive against its own dual certificate.
//
// Sweep k; measure fractional cost / dual and compare with the analysis
// constant 2*ln(k*beta + 1). A least-squares fit of the measured ratio
// against ln(k) confirms the logarithmic growth (slope printed).
#include "bench_common.hpp"

#include <cmath>

#include "algs/fractional.hpp"
#include "util/timer.hpp"
#include "util/stats.hpp"

namespace bac {
namespace {

void ratio_sweep() {
  Table table({"k", "beta", "workload", "frac cost", "dual LB", "ratio",
               "2ln(k*beta+1)", "flushes"});
  std::vector<double> logs, ratios;
  for (int k : {4, 8, 16, 32, 64, 128}) {
    for (const auto load : {bench::Load::Uniform, bench::Load::Zipf}) {
      const int beta = 4;
      const Instance inst = bench::build_load(
          load, 3 * k, beta, k, 2500 + 30 * k,
          bench::seed_of(11 + static_cast<unsigned>(k)));
      FractionalBlockAware alg(inst.blocks, inst.k);
      for (Time t = 1; t <= inst.horizon(); ++t)
        alg.step(t, inst.request_at(t));
      const double ratio = alg.dual_objective() > 0
                               ? alg.fractional_cost() / alg.dual_objective()
                               : 0.0;
      bench::record(
          bench::shape_of(inst)
              .named(bench::load_name(load))
              .costing(alg.fractional_cost())
              .with("dual_lb", alg.dual_objective())
              .with("ratio", ratio)
              .with("bound", 2.0 * std::log(static_cast<double>(k) * beta + 1.0)));
      if (ratio > 0 && load == bench::Load::Uniform) {
        logs.push_back(std::log(static_cast<double>(k)));
        ratios.push_back(ratio);
      }
      table.row()
          .add(k)
          .add(beta)
          .add(bench::load_name(load))
          .add(alg.fractional_cost(), 1)
          .add(alg.dual_objective(), 1)
          .add(ratio, 3)
          .add(2.0 * std::log(static_cast<double>(k) * beta + 1.0), 3)
          .add(alg.integral_flushes());
    }
  }
  bench::emit(table, "bench_fractional",
              "EXP-3 Algorithm 2: fractional cost vs dual across k "
              "(Theorem 3.6 bound: ratio <= 2 ln(k*beta+1))",
              "ratio");
  std::cout << "  growth fit: ratio ~ " << fmt_double(regression_slope(logs, ratios), 3)
            << " * ln k  (positive, modest slope => logarithmic growth; the\n"
               "  theorem's coefficient is 2 at most)\n\n";
}

void oracle_comparison() {
  // Ablation called out in bench/DESIGN.md: the fast threshold separation
  // vs the exact DP separation. Same instances; compare cost and runtime.
  Table table({"k", "oracle", "frac cost", "dual LB", "ratio", "ms"});
  for (int k : {4, 8, 16}) {
    const Instance inst = bench::build_load(bench::Load::Zipf, 3 * k, 3, k,
                                            1200, bench::seed_of(5));
    for (int which = 0; which < 2; ++which) {
      std::unique_ptr<SeparationOracle> oracle;
      if (which == 0) oracle = std::make_unique<ThresholdSeparation>();
      else oracle = std::make_unique<DpSeparation>();
      FractionalBlockAware alg(inst.blocks, inst.k, std::move(oracle));
      Stopwatch sw;
      for (Time t = 1; t <= inst.horizon(); ++t)
        alg.step(t, inst.request_at(t));
      bench::record(bench::shape_of(inst)
                        .named(which == 0 ? "zipf0.9/threshold"
                                          : "zipf0.9/exact-dp")
                        .costing(alg.fractional_cost())
                        .timing(sw.millis())
                        .with("dual_lb", alg.dual_objective()));
      table.row()
          .add(k)
          .add(which == 0 ? "threshold" : "exact-dp")
          .add(alg.fractional_cost(), 1)
          .add(alg.dual_objective(), 1)
          .add(alg.dual_objective() > 0
                   ? alg.fractional_cost() / alg.dual_objective()
                   : 0.0,
               3)
          .add(sw.millis(), 1);
    }
  }
  bench::emit(table, "bench_fractional",
              "EXP-3 ablation: threshold vs exact DP separation oracle",
              "oracle_ablation");
}

BAC_BENCH_EXPERIMENT("ratio", ratio_sweep);
BAC_BENCH_EXPERIMENT("oracle_ablation", oracle_comparison);

}  // namespace
}  // namespace bac
