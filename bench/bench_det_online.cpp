// EXP-2 (Theorem 3.3): Algorithm 1 is k-competitive for eviction costs.
//
// Three views:
//  (a) primal / dual ratio across k (must stay <= k; typically far below),
//  (b) ratio to exact OPT on small instances,
//  (c) eviction cost head-to-head vs classical baselines across beta —
//      the "beat the trivial beta blow-up" claim of Section 1.1.
#include "bench_common.hpp"

#include "algs/policies/classical.hpp"
#include "algs/det_online.hpp"
#include "algs/opt.hpp"
#include "core/simulator.hpp"

namespace bac {
namespace {

void primal_dual_sweep() {
  Table table({"k", "beta", "workload", "evict cost", "dual LB",
               "cost/dual", "bound k"});
  for (int k : {4, 8, 16, 32, 64}) {
    for (const auto load : {bench::Load::Zipf, bench::Load::BlockLocal}) {
      const Instance inst = bench::build_load(
          load, 4 * k, 4, k, 6000, bench::seed_of(17 + static_cast<unsigned>(k)));
      DetOnlineBlockAware alg;
      const RunResult r = simulate(inst, alg);
      const double ratio = alg.dual_objective() > 0
                               ? r.eviction_cost / alg.dual_objective()
                               : 0.0;
      bench::record(bench::shape_of(inst)
                        .named(bench::load_name(load))
                        .costing(r.eviction_cost)
                        .with("dual_lb", alg.dual_objective())
                        .with("ratio", ratio)
                        .with("bound_k", k));
      table.row()
          .add(k)
          .add(4)
          .add(bench::load_name(load))
          .add(r.eviction_cost, 1)
          .add(alg.dual_objective(), 1)
          .add(ratio, 2)
          .add(k);
    }
  }
  bench::emit(table, "bench_det_online",
              "EXP-2a Algorithm 1: primal vs dual certificate (Theorem 3.3 "
              "bound: cost <= k * dual)",
              "primal_dual");
}

void opt_ratio_small() {
  Table table({"trial", "n", "beta", "k", "alg cost", "OPT", "ratio", "k"});
  const int trials = bench::trials_or(8);
  for (int trial = 0; trial < trials; ++trial) {
    const int beta = 2 + trial % 3;
    const int k = 4 + (trial % 2) * 2;
    const int n = 12;
    const Instance inst =
        bench::build_load(bench::Load::Uniform, n, beta, k, 60,
                          bench::seed_of(100 + static_cast<unsigned>(trial)));
    DetOnlineBlockAware alg;
    const RunResult r = simulate(inst, alg);
    const OptResult opt = exact_opt_eviction(inst);
    bench::record(
        bench::shape_of(inst)
            .named("uniform")
            .costing(r.eviction_cost)
            .with("opt", opt.cost)
            .with("ratio", opt.cost > 0 ? r.eviction_cost / opt.cost : 0.0));
    table.row()
        .add(trial)
        .add(n)
        .add(beta)
        .add(k)
        .add(r.eviction_cost, 1)
        .add(opt.cost, 1)
        .add(opt.cost > 0 ? r.eviction_cost / opt.cost : 0.0, 2)
        .add(k);
  }
  bench::emit(table, "bench_det_online",
              "EXP-2b Algorithm 1 vs exact OPT (small instances)",
              "opt_ratio");
}

void versus_classical() {
  Table table({"beta", "LRU", "GreedyDual", "Belady", "BlockLRU",
               "BA-Det(Alg1)", "Alg1/LRU"});
  for (int beta : {2, 4, 8, 16}) {
    const int k = 8 * beta;
    const int n = 4 * k;
    const Instance inst = bench::build_load(bench::Load::BlockLocal, n, beta,
                                            k, 20'000, bench::seed_of(7));
    auto cost = [&](OnlinePolicy& p) {
      return simulate(inst, p).eviction_cost;
    };
    LruPolicy lru;
    GreedyDualPolicy gd;
    BeladyPolicy belady;
    BlockLruPolicy blru(false);
    DetOnlineBlockAware det;
    const double c_lru = cost(lru);
    const double c_det = cost(det);
    bench::record(bench::shape_of(inst)
                      .named("blocklocal")
                      .costing(c_det)
                      .with("lru", c_lru)
                      .with("det_over_lru", c_lru > 0 ? c_det / c_lru : 0.0));
    table.row()
        .add(beta)
        .add(c_lru, 0)
        .add(cost(gd), 0)
        .add(cost(belady), 0)
        .add(cost(blru), 0)
        .add(c_det, 0)
        .add(c_det / c_lru, 2);
  }
  bench::emit(table, "bench_det_online",
              "EXP-2c eviction cost vs block-oblivious baselines "
              "(block-local workload; Alg1/LRU should shrink as beta grows)",
              "vs_classical");
}

BAC_BENCH_EXPERIMENT("primal_dual", primal_dual_sweep);
BAC_BENCH_EXPERIMENT("opt_ratio", opt_ratio_small);
BAC_BENCH_EXPERIMENT("vs_classical", versus_classical);

}  // namespace
}  // namespace bac
