// Shared entry point for every bench binary: parses the common flags,
// sizes the global thread pool, runs the experiments registered via
// BAC_BENCH_EXPERIMENT in registration order, and (with --json) writes the
// collected records to BENCH_<bench>.json — the machine-readable trail the
// perf trajectory is built from.
#include "bench_common.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "util/json.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace bac::bench {
namespace {

struct Experiment {
  const char* name;
  ExperimentFn fn;
  bool ran = false;
  double wall_ms = 0.0;
  std::vector<Record> records;
};

std::vector<Experiment>& registry() {
  static std::vector<Experiment> r;
  return r;
}

Experiment* g_current = nullptr;

/// Binary name with any path and "bench_" prefix stripped: ./bench_perf
/// -> "perf". Names the default BENCH_<bench>.json output.
std::string bench_name(const char* argv0) {
  std::string name = argv0 ? argv0 : "bench";
  const auto slash = name.find_last_of("/\\");
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  return name.empty() ? "bench" : name;
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--seed <u64>] [--trials <n>] [--threads <n>]\n"
      "          [--json [path]] [--compare <baseline.json>]\n"
      "          [--only <experiment>]... [--list]\n"
      "\n"
      "  --seed     offset all workload seeds (default 1 = paper tables)\n"
      "  --trials   override Monte-Carlo trial counts\n"
      "  --threads  worker threads for parallel sweeps (default: hardware)\n"
      "  --json     write structured records (default path BENCH_<bench>.json)\n"
      "  --compare  print per-case speedup vs a baseline BENCH_*.json\n"
      "  --only     run just the named experiment (repeatable)\n"
      "  --list     print registered experiments and exit\n",
      argv0);
}

void write_json(const std::string& path, const std::string& bench) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  os.precision(17);
  const Options& opt = options();
  // The resolved thread count, without instantiating the pool just to
  // stamp the file (most benches never touch it).
  const unsigned threads =
      opt.threads > 0 ? static_cast<unsigned>(opt.threads)
                      : std::max(1u, std::thread::hardware_concurrency());
  os << "{\n  \"bench\": ";
  write_json_string(os, bench);
  os << ",\n  \"seed\": " << opt.seed << ",\n  \"trials\": " << opt.trials
     << ",\n  \"threads\": " << threads << ",\n  \"experiments\": [";
  bool first_exp = true;
  for (const Experiment& exp : registry()) {
    if (!exp.ran) continue;  // deselected by --only
    os << (first_exp ? "\n" : ",\n") << "    {\n      \"name\": ";
    first_exp = false;
    write_json_string(os, exp.name);
    os << ",\n      \"wall_ms\": ";
    write_json_number(os, exp.wall_ms);
    os << ",\n      \"records\": [";
    bool first_rec = true;
    for (const Record& r : exp.records) {
      os << (first_rec ? "\n" : ",\n") << "        {\"workload\": ";
      first_rec = false;
      write_json_string(os, r.workload);
      os << ", \"n\": " << r.n << ", \"m\": " << r.m << ", \"k\": " << r.k
         << ", \"beta\": " << r.beta << ", \"cost\": ";
      write_json_number(os, r.cost);
      os << ", \"wall_ms\": ";
      write_json_number(os, r.wall_ms);
      for (const auto& [key, value] : r.extra) {
        os << ", ";
        write_json_string(os, key);
        os << ": ";
        write_json_number(os, value);
      }
      os << "}";
    }
    os << (first_rec ? "]" : "\n      ]") << "\n    }";
  }
  os << (first_exp ? "]" : "\n  ]") << "\n}\n";
  if (!os.flush()) throw std::runtime_error("short write to " + path);
}

/// A baseline record's comparable numbers, keyed by (experiment, workload).
struct BaselineCase {
  double wall_ms = 0.0;
  double items_per_sec = 0.0;  ///< 0 when the record carries no throughput
  double cost = 0.0;
};

/// Print per-case speedup of this run vs `path` (a BENCH_*.json written by
/// any bench binary). Cases are matched by (experiment name, workload);
/// speedup is items_per_sec ratio when both sides report throughput, wall
/// time ratio otherwise. A cost mismatch is flagged — perf work must not
/// change results. Cases present on only one side are named below the
/// table (renames/removals must be visible) but never fail the run.
void print_comparison(const std::string& path) {
  const JsonValue doc = load_json_file(path);
  const JsonValue* exps = doc.find("experiments");
  if (exps == nullptr || exps->kind != JsonValue::Kind::Array)
    throw std::runtime_error("--compare: " + path +
                             " has no experiments array");
  std::vector<std::pair<std::string, BaselineCase>> baseline;
  for (const JsonValue& exp : exps->items) {
    const std::string exp_name = exp.string_or("name", "?");
    const JsonValue* records = exp.find("records");
    if (records == nullptr) continue;
    for (const JsonValue& r : records->items) {
      BaselineCase c;
      c.wall_ms = r.number_or("wall_ms", 0.0);
      c.items_per_sec = r.number_or("items_per_sec", 0.0);
      c.cost = r.number_or("cost", 0.0);
      baseline.emplace_back(exp_name + "|" + r.string_or("workload", "?"), c);
    }
  }
  const auto lookup = [&](const std::string& key) -> const BaselineCase* {
    for (const auto& [k, v] : baseline)
      if (k == key) return &v;
    return nullptr;
  };

  Table table({"case", "base ms", "now ms", "base Mi/s", "now Mi/s",
               "speedup", "cost"});
  int matched = 0;
  std::vector<std::string> only_here;
  std::vector<std::string> matched_keys;
  for (const Experiment& exp : registry()) {
    if (!exp.ran) continue;
    for (const Record& r : exp.records) {
      const std::string key = std::string(exp.name) + "|" + r.workload;
      const BaselineCase* base = lookup(key);
      if (base == nullptr) {
        only_here.push_back(key);
        continue;
      }
      matched_keys.push_back(key);
      ++matched;
      double now_ips = 0.0;
      for (const auto& [k, v] : r.extra)
        if (k == "items_per_sec") now_ips = v;
      const bool by_throughput = now_ips > 0 && base->items_per_sec > 0;
      const double speedup =
          by_throughput
              ? now_ips / base->items_per_sec
              : (r.wall_ms > 0 ? base->wall_ms / r.wall_ms : 0.0);
      table.row()
          .add(exp.name + std::string("/") + r.workload)
          .add(base->wall_ms, 2)
          .add(r.wall_ms, 2)
          .add(base->items_per_sec / 1e6, 2)
          .add(now_ips / 1e6, 2)
          .add(speedup, 2)
          .add(r.cost == base->cost ? "same" : "DIFFERS");
    }
  }
  table.print(std::cout, "COMPARE vs " + path);
  std::printf("  %d case(s) matched\n", matched);
  for (const std::string& key : only_here)
    std::printf("  new case (no baseline entry): %s\n", key.c_str());
  for (const auto& entry : baseline)
    if (std::find(matched_keys.begin(), matched_keys.end(), entry.first) ==
        matched_keys.end())
      std::printf("  baseline case missing from this run: %s\n",
                  entry.first.c_str());
  std::printf("\n");
}

bool selected(const Experiment& exp) {
  if (options().only.empty()) return true;
  for (const auto& name : options().only)
    if (name == exp.name) return true;
  return false;
}

int run(int argc, char** argv) {
  Options& opt = options();
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto numeric = [&](const char* flag,
                       unsigned long long max) -> unsigned long long {
      const char* s = value(flag);
      char* end = nullptr;
      errno = 0;
      const unsigned long long v = std::strtoull(s, &end, 10);
      if (end == s || *end != '\0' || errno == ERANGE || v > max) {
        std::fprintf(stderr,
                     "%s: %s wants an integer in [0, %llu], got '%s'\n",
                     argv[0], flag, max, s);
        std::exit(2);
      }
      return v;
    };
    if (arg == "--seed") {
      // Seed 1 is the baked-in baseline; treat 0 as the same baseline so
      // "seed": 0 never stamps a record built from shifted seeds.
      opt.seed = std::max(1ull, numeric("--seed", ~0ull));
    } else if (arg == "--trials") {
      opt.trials = static_cast<int>(numeric("--trials", 1'000'000));
    } else if (arg == "--threads") {
      opt.threads = static_cast<int>(numeric("--threads", 4096));
    } else if (arg == "--json") {
      opt.json = true;
      // Optional path operand: consume the next arg unless it is a flag.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        opt.json_path = argv[++i];
    } else if (arg == "--compare") {
      opt.compare_path = value("--compare");
    } else if (arg == "--only") {
      opt.only.emplace_back(value("--only"));
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  const std::string bench = bench_name(argc > 0 ? argv[0] : nullptr);
  if (opt.json && opt.json_path.empty())
    opt.json_path = "BENCH_" + bench + ".json";

  if (list) {
    for (const Experiment& exp : registry()) std::printf("%s\n", exp.name);
    return 0;
  }
  for (const auto& name : opt.only) {
    bool known = false;
    for (const Experiment& exp : registry()) known |= name == exp.name;
    if (!known) {
      std::fprintf(stderr, "%s: no experiment named '%s' (try --list)\n",
                   argv[0], name.c_str());
      return 2;
    }
  }

  if (opt.threads > 0)
    configure_global_pool(static_cast<std::size_t>(opt.threads));

  int ran = 0;
  for (Experiment& exp : registry()) {
    if (!selected(exp)) continue;
    g_current = &exp;
    exp.ran = true;
    Stopwatch sw;
    exp.fn();
    exp.wall_ms = sw.millis();
    g_current = nullptr;
    ++ran;
  }
  if (ran == 0) {
    std::fprintf(stderr, "%s: no experiments registered\n", argv[0]);
    return 1;
  }

  if (!opt.compare_path.empty()) print_comparison(opt.compare_path);

  if (opt.json) {
    write_json(opt.json_path, bench);
    std::printf("[json: %s]\n", opt.json_path.c_str());
  }
  return 0;
}

}  // namespace

Options& options() {
  static Options opt;
  return opt;
}

void record(Record r) {
  // Experiments may record from tasks on the global pool; serialize the
  // appends (order then follows task completion, not submission).
  static bac::Mutex mutex;
  bac::MutexLock lock(mutex);
  if (g_current != nullptr) g_current->records.push_back(std::move(r));
}

bool register_experiment(const char* name, ExperimentFn fn) {
  registry().push_back({name, fn, false, 0.0, {}});
  return true;
}

}  // namespace bac::bench

int main(int argc, char** argv) {
  try {
    return bac::bench::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench failed: %s\n", e.what());
    return 1;
  }
}
