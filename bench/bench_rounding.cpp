// EXP-4 (Theorem 3.12, Lemma 3.16): online randomized rounding pays
// O(log kDelta) over the fractional solution; combined with EXP-3 this is
// the O(log k log kDelta) randomized online algorithm.
//
// Monte-Carlo over seeds; report E[rounded]/fractional against gamma, the
// alteration share, and an ablation without the Lemma 3.14 structure
// transform.
#include "bench_common.hpp"

#include "algs/rounding.hpp"
#include "core/simulator.hpp"
#include "util/stats.hpp"

namespace bac {
namespace {

void rounding_sweep() {
  Table table({"k", "beta", "workload", "frac cost", "E[rounded]", "stddev",
               "E/frac", "gamma", "alterations"});
  for (int k : {8, 16, 32, 64}) {
    for (const auto load : {bench::Load::Zipf, bench::Load::BlockLocal}) {
      const int beta = 4;
      const Instance inst = bench::build_load(
          load, 3 * k, beta, k, 3000,
          bench::seed_of(23 + static_cast<unsigned>(k)));
      RandomizedBlockAware alg;
      StreamingStats cost;
      long long alterations = 0;
      const int trials = bench::trials_or(6);
      for (int i = 0; i < trials; ++i) {
        SimOptions opt;
        opt.seed = 1000 + static_cast<std::uint64_t>(i);
        cost.add(simulate(inst, alg, opt).eviction_cost);
        alterations += alg.alterations();
      }
      bench::record(
          bench::shape_of(inst)
              .named(bench::load_name(load))
              .costing(cost.mean())
              .with("frac", alg.fractional_cost())
              .with("ratio", alg.fractional_cost() > 0
                                 ? cost.mean() / alg.fractional_cost()
                                 : 0.0)
              .with("gamma", alg.gamma())
              .with("stddev", cost.stddev()));
      table.row()
          .add(k)
          .add(beta)
          .add(bench::load_name(load))
          .add(alg.fractional_cost(), 1)
          .add(cost.mean(), 1)
          .add(cost.stddev(), 1)
          .add(alg.fractional_cost() > 0 ? cost.mean() / alg.fractional_cost()
                                         : 0.0,
               2)
          .add(alg.gamma(), 2)
          .add(alterations / trials);
    }
  }
  bench::emit(table, "bench_rounding",
              "EXP-4 Algorithm 3+4: expected rounded cost vs fractional "
              "(Lemma 3.16 shape: E/frac = O(gamma))",
              "sweep");
}

void structure_ablation() {
  Table table({"k", "variant", "E[rounded]", "E/frac", "fallbacks"});
  for (int k : {16, 32}) {
    const Instance inst = bench::build_load(bench::Load::Zipf, 3 * k, 4, k,
                                            2500, bench::seed_of(31));
    for (int variant = 0; variant < 2; ++variant) {
      RandomizedBlockAware::Options options;
      options.apply_structure = variant == 0;
      RandomizedBlockAware alg(options);
      StreamingStats cost;
      long long fallbacks = 0;
      const int trials = bench::trials_or(5);
      for (int i = 0; i < trials; ++i) {
        SimOptions opt;
        opt.seed = 2000 + static_cast<std::uint64_t>(i);
        cost.add(simulate(inst, alg, opt).eviction_cost);
        fallbacks += alg.fallback_alterations();
      }
      bench::record(
          bench::shape_of(inst)
              .named(variant == 0 ? "zipf0.9/structured" : "zipf0.9/raw")
              .costing(cost.mean())
              .with("ratio", alg.fractional_cost() > 0
                                 ? cost.mean() / alg.fractional_cost()
                                 : 0.0)
              .with("fallbacks", static_cast<double>(fallbacks) / trials));
      table.row()
          .add(k)
          .add(variant == 0 ? "with Lemma 3.14 transform" : "raw increments")
          .add(cost.mean(), 1)
          .add(alg.fractional_cost() > 0 ? cost.mean() / alg.fractional_cost()
                                         : 0.0,
               2)
          .add(static_cast<double>(fallbacks) / trials, 1);
    }
  }
  bench::emit(table, "bench_rounding",
              "EXP-4 ablation: Lemma 3.14 structure transform on/off",
              "structure_ablation");
}

BAC_BENCH_EXPERIMENT("sweep", rounding_sweep);
BAC_BENCH_EXPERIMENT("structure_ablation", structure_ablation);

}  // namespace
}  // namespace bac
