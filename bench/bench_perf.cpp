// PERF: microbenchmarks of the library's hot paths — simulator throughput
// per policy, f_tau marginal evaluation, the fractional algorithm's
// per-step cost, and the exact-OPT solvers. Unlike the experiment benches
// this one measures wall time, so it runs each case --trials times
// (default 3) and reports the fastest run plus items/second; --json
// writes the same numbers to BENCH_perf.json, one snapshot of the perf
// trajectory's machine-readable trail.
#include "bench_common.hpp"

#include <filesystem>
#include <fstream>

#include "algs/policies/classical.hpp"
#include "algs/policies/modern.hpp"
#include "algs/det_online.hpp"
#include "algs/fractional.hpp"
#include "algs/opt.hpp"
#include "algs/rounding.hpp"
#include "core/simulator.hpp"
#include "obs/metrics.hpp"
#include "submodular/flush_coverage.hpp"
#include "trace/csv.hpp"
#include "trace/generators.hpp"
#include "util/timer.hpp"

namespace bac {
namespace {

/// Default-constructible adapter (BlockLruPolicy's ctor takes a flag).
class BlockLruNoPrefetch final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return inner_.name(); }
  void reset(const Instance& inst) override { inner_.reset(inst); }
  void on_request(Time t, PageId p, CacheOps& cache) override {
    inner_.on_request(t, p, cache);
  }

 private:
  BlockLruPolicy inner_{false};
};

Instance bench_instance(int n, int beta, int k, Time T) {
  BlockMap blocks = BlockMap::contiguous(n, beta);
  auto req =
      block_local_trace(blocks, T, 0.75, 0.9, Xoshiro256pp(bench::seed_of(9)));
  return Instance{std::move(blocks), std::move(req), k};
}

/// Column set matching run_case's .add() order below.
Table perf_table() {
  return Table({"case", "n", "k", "best ms", "Mitems/s", "checksum"});
}

/// Run `body` (which processes `items` items and returns a cost-like
/// checksum) --trials times; table + record the fastest run.
template <typename Body>
void run_case(Table& table, const std::string& name, const Instance& inst,
              long long items, Body&& body) {
  const int trials = bench::trials_or(3);
  double best_ms = 0.0;
  double checksum = 0.0;
  for (int i = 0; i < trials; ++i) {
    Stopwatch sw;
    checksum = body();
    const double ms = sw.millis();
    if (i == 0 || ms < best_ms) best_ms = ms;
  }
  const double per_sec =
      best_ms > 0 ? static_cast<double>(items) / (best_ms / 1e3) : 0.0;
  bench::record(bench::shape_of(inst)
                    .named(name)
                    .costing(checksum)
                    .timing(best_ms)
                    .with("items", static_cast<double>(items))
                    .with("items_per_sec", per_sec));
  table.row()
      .add(name)
      .add(inst.n_pages())
      .add(inst.k)
      .add(best_ms, 2)
      .add(per_sec / 1e6, 2)
      .add(checksum, 1);
}

template <typename Policy>
void simulate_case(Table& table, const std::string& name, int n, Time T) {
  const Instance inst = bench_instance(n, 8, n / 4, T);
  Policy policy;
  // Pure simulator + policy throughput: no per-step sketches, schedules,
  // or curves — the lane the flat eviction indexes and batched streaming
  // are built for. The checksum (total eviction cost) pins behaviour, so
  // --compare flags any perf change that also changes results.
  SimOptions options;
  options.record_sketch = false;
  run_case(table, name + "/" + std::to_string(n), inst, inst.horizon(), [&] {
    return simulate(inst, policy, options).eviction_cost;
  });
}

/// The enabled-path overhead probe: the same LRU workload as
/// simulate/LRU, but with the step-cost histogram and a metrics fold
/// active. Its checksum must equal the plain case's — observability is
/// read-only — and the Mitems/s delta between the two rows IS the
/// enabled-path cost, tracked run over run by --compare.
void simulate_obs_case(Table& table, int n, Time T) {
  const Instance inst = bench_instance(n, 8, n / 4, T);
  LruPolicy policy;
  obs::MetricRegistry registry;
  SimOptions options;
  options.record_sketch = true;
  options.metrics = &registry;
  run_case(table, "simulate/LRU-obs/" + std::to_string(n), inst,
           inst.horizon(),
           [&] { return simulate(inst, policy, options).eviction_cost; });
}

void simulator_throughput() {
  Table table = perf_table();
  // Light (index-bound) policies get long traces for stable timing; the
  // LP-based randomized policy costs ~ms per request (its separation
  // oracle scans the fractional history), so it gets a short one.
  constexpr Time kLong = 200'000;
  simulate_case<LruPolicy>(table, "simulate/LRU", 256, kLong);
  simulate_case<LruPolicy>(table, "simulate/LRU", 1024, kLong);
  simulate_obs_case(table, 1024, kLong);
  simulate_case<FifoPolicy>(table, "simulate/FIFO", 1024, kLong);
  simulate_case<LfuPolicy>(table, "simulate/LFU", 1024, kLong);
  simulate_case<GreedyDualPolicy>(table, "simulate/GreedyDual", 1024, kLong);
  simulate_case<BeladyPolicy>(table, "simulate/Belady", 1024, kLong);
  simulate_case<S3FifoPolicy>(table, "simulate/S3FIFO", 1024, kLong);
  simulate_case<SievePolicy>(table, "simulate/SIEVE", 1024, kLong);
  simulate_case<ArcPolicy>(table, "simulate/ARC", 1024, kLong);
  simulate_case<BlockLruNoPrefetch>(table, "simulate/BlockLRU", 256, kLong);
  simulate_case<BlockS3FifoPolicy>(table, "simulate/BlockS3FIFO", 256, kLong);
  simulate_case<BlockSievePolicy>(table, "simulate/BlockSIEVE", 256, kLong);
  simulate_case<DetOnlineBlockAware>(table, "simulate/BA-Det", 256, 20'000);
  simulate_case<DetOnlineBlockAware>(table, "simulate/BA-Det", 1024, 20'000);
  simulate_case<RandomizedBlockAware>(table, "simulate/BA-Rand", 256, 2'000);
  bench::emit(table, "bench_perf", "PERF simulator throughput per policy",
              "simulate");
}

void ftau_marginals() {
  Table table = perf_table();
  for (int n : {256, 1024}) {
    const Instance inst = bench_instance(n, 8, n / 4, 20'000);
    run_case(table, "ftau/" + std::to_string(n), inst, inst.horizon(), [&] {
      FlushCoverage cov(inst.blocks, inst.k);
      FlushSet S(cov);
      long long sink = 0;
      for (Time t = 1; t <= inst.horizon(); ++t) {
        FlushSet* sets[] = {&S};
        const PageId p = inst.request_at(t);
        cov.advance(p, t, sets);
        const BlockId b = inst.blocks.block_of(p);
        for (Time at : cov.alive_times(b)) sink += S.f_marginal(b, at);
      }
      return static_cast<double>(sink);
    });
  }
  bench::emit(table, "bench_perf",
              "PERF incremental f_tau maintenance + marginals", "ftau");
}

void fractional_step() {
  Table table = perf_table();
  for (int k : {16, 32}) {
    const Instance inst = bench_instance(4 * k, 4, k, 2'000);
    run_case(table, "fractional/k" + std::to_string(k), inst, inst.horizon(),
             [&] {
               FractionalBlockAware alg(inst.blocks, inst.k);
               for (Time t = 1; t <= inst.horizon(); ++t)
                 alg.step(t, inst.request_at(t));
               return alg.fractional_cost();
             });
  }
  bench::emit(table, "bench_perf",
              "PERF fractional algorithm per-step cost", "fractional");
}

void exact_opt() {
  Table table = perf_table();
  for (int n : {10, 12}) {
    const Instance inst =
        Instance{BlockMap::contiguous(n, 2),
                 uniform_trace(n, 40, Xoshiro256pp(bench::seed_of(4))), n / 2};
    run_case(table, "exact_opt/n" + std::to_string(n), inst, 1, [&] {
      return exact_opt_eviction(inst).cost;
    });
  }
  bench::emit(table, "bench_perf", "PERF exact-OPT eviction solver",
              "exact_opt");
}

/// Pass-2 CSV ingestion: stream a string-keyed trace through a shared
/// CsvMapping via next_batch. This is the key-interning lane — every
/// request is one string hash + one page-id lookup — so it isolates the
/// lookup structure from policy logic. The checksum (sum of decoded page
/// ids) pins the first-appearance id assignment.
void ingest_csv_keys() {
  Table table = perf_table();
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "bac_bench_csv_keys.csv";
  constexpr int kKeys = 8192;
  constexpr long long kRows = 200'000;
  {
    std::ofstream out(path);
    Xoshiro256pp rng(bench::seed_of(11));
    std::string row;
    for (long long t = 0; t < kRows; ++t) {
      // Quadratically skewed popularity over non-numeric keys, so the
      // mapping uses arrival-locality grouping like a real CDN trace.
      const double u =
          static_cast<double>(rng() >> 11) * 0x1.0p-53;  // [0, 1)
      const int id = static_cast<int>(u * u * kKeys);
      row.clear();
      row += std::to_string(t);
      row += ",obj";
      row += std::to_string(id);
      row += ",128\n";
      out << row;
    }
  }
  CsvOptions options;
  options.k = 1024;
  const auto mapping = std::make_shared<const CsvMapping>(
      build_csv_mapping(path.string(), options));
  run_case(table, "ingest/csv-keys", mapping->header(), kRows, [&] {
    CsvSource src(path.string(), mapping, options);
    PageId buf[512];
    double checksum = 0.0;
    for (;;) {
      const int got = src.next_batch(buf, 512);
      if (got == 0) break;
      for (int i = 0; i < got; ++i) checksum += static_cast<double>(buf[i]);
    }
    return checksum;
  });
  std::error_code ec;
  fs::remove(path, ec);
  bench::emit(table, "bench_perf", "PERF pass-2 CSV key-trace ingestion",
              "ingest");
}

/// The layer DP both exact-OPT solvers spend their time in: every time
/// step rebuilds a mask -> cost map from the previous layer. Dominance
/// pruning is off so the layers stay wide and the map operations
/// (try_emplace/min over ~10^4 states per step) dominate — with pruning
/// on, the quadratic domination pass swamps the lookup structure this
/// case exists to track. Pruning never changes the optimal cost, only
/// the state count, so the checksum matches the pruned solvers'.
void opt_layer_dp() {
  Table table = perf_table();
  const Instance inst =
      Instance{BlockMap::contiguous(14, 2),
               uniform_trace(14, 120, Xoshiro256pp(bench::seed_of(12))), 7};
  OptLimits limits;
  limits.dominance_pruning = false;
  run_case(table, "opt/layer-dp", inst, inst.horizon(), [&] {
    return exact_opt_eviction(inst, limits).cost +
           exact_opt_fetching(inst, limits).cost;
  });
  bench::emit(table, "bench_perf",
              "PERF exact-OPT layer DP (eviction + fetching)", "opt");
}

BAC_BENCH_EXPERIMENT("simulate", simulator_throughput);
BAC_BENCH_EXPERIMENT("ingest", ingest_csv_keys);
BAC_BENCH_EXPERIMENT("opt", opt_layer_dp);
BAC_BENCH_EXPERIMENT("ftau", ftau_marginals);
BAC_BENCH_EXPERIMENT("fractional", fractional_step);
BAC_BENCH_EXPERIMENT("exact_opt", exact_opt);

}  // namespace
}  // namespace bac
