// PERF: google-benchmark microbenchmarks of the library's hot paths —
// simulator throughput per policy, f_tau marginal evaluation, the
// fractional algorithm's per-step cost, and the exact-OPT solvers.
#include <benchmark/benchmark.h>

#include <type_traits>

#include "algs/classical/classical.hpp"
#include "algs/det_online.hpp"
#include "algs/fractional.hpp"
#include "algs/opt.hpp"
#include "algs/rounding.hpp"
#include "core/simulator.hpp"
#include "submodular/flush_coverage.hpp"
#include "trace/generators.hpp"

namespace bac {
namespace {

/// Default-constructible adapter (BlockLruPolicy's ctor takes a flag).
class BlockLruNoPrefetch final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return inner_.name(); }
  void reset(const Instance& inst) override { inner_.reset(inst); }
  void on_request(Time t, PageId p, CacheOps& cache) override {
    inner_.on_request(t, p, cache);
  }

 private:
  BlockLruPolicy inner_{false};
};

Instance bench_instance(int n, int beta, int k, Time T) {
  BlockMap blocks = BlockMap::contiguous(n, beta);
  auto req = block_local_trace(blocks, T, 0.75, 0.9, Xoshiro256pp(9));
  return Instance{std::move(blocks), std::move(req), k};
}

template <typename Policy>
void BM_Simulate(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  // The LP-based randomized policy costs ~ms per request (its separation
  // oracle scans the fractional history); give it a shorter trace so the
  // microbenchmark finishes in seconds while still reporting per-item cost.
  const bool heavy = std::is_same_v<Policy, RandomizedBlockAware>;
  const Instance inst = bench_instance(n, 8, n / 4, heavy ? 2'000 : 20'000);
  Policy policy;
  for (auto _ : state) {
    const RunResult r = simulate(inst, policy);
    benchmark::DoNotOptimize(r.eviction_cost);
  }
  state.SetItemsProcessed(state.iterations() * inst.horizon());
}

void BM_FtauMarginals(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance inst = bench_instance(n, 8, n / 4, 20'000);
  for (auto _ : state) {
    FlushCoverage cov(inst.blocks, inst.k);
    FlushSet S(cov);
    long long sink = 0;
    for (Time t = 1; t <= inst.horizon(); ++t) {
      FlushSet* sets[] = {&S};
      const PageId p = inst.request_at(t);
      cov.advance(p, t, sets);
      const BlockId b = inst.blocks.block_of(p);
      for (Time at : cov.alive_times(b)) sink += S.f_marginal(b, at);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * inst.horizon());
}

void BM_FractionalStep(benchmark::State& state) {
  const auto k = static_cast<int>(state.range(0));
  const Instance inst = bench_instance(4 * k, 4, k, 2'000);
  for (auto _ : state) {
    FractionalBlockAware alg(inst.blocks, inst.k);
    for (Time t = 1; t <= inst.horizon(); ++t)
      alg.step(t, inst.request_at(t));
    benchmark::DoNotOptimize(alg.fractional_cost());
  }
  state.SetItemsProcessed(state.iterations() * inst.horizon());
}

void BM_ExactOptEviction(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const Instance inst = Instance{
      BlockMap::contiguous(n, 2),
      uniform_trace(n, 40, Xoshiro256pp(4)), n / 2};
  for (auto _ : state) {
    const OptResult r = exact_opt_eviction(inst);
    benchmark::DoNotOptimize(r.cost);
  }
}

BENCHMARK(BM_Simulate<LruPolicy>)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Simulate<BlockLruNoPrefetch>)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Simulate<DetOnlineBlockAware>)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Simulate<RandomizedBlockAware>)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FtauMarginals)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FractionalStep)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExactOptEviction)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bac
