// EXP-7 (Theorem 4.1 / Corollary 4.2): deterministic bicriteria rounding.
//
//  (a) Exact pipeline on small instances: solve the fetching LP (A.1) with
//      the simplex, round with the threshold-1/2 rule; verify space <= 2h
//      and cost <= 2 * LP <= 2 * OPT(h) — Corollary 4.2's offline
//      2-approximation with k = 2h.
//  (b) Online pipeline at scale: fractional weighted paging (BBN12a) as
//      the fractional source — this is Theorem 4.4's derandomization of a
//      randomized policy (x = expected misses) — rounded online.
//  (c) The eviction-cost variant of the rounding.
#include "bench_common.hpp"

#include <algorithm>

#include "algs/bicriteria.hpp"
#include "algs/policies/fractional_paging.hpp"
#include "algs/opt.hpp"
#include "lp/naive_lp.hpp"

namespace bac {
namespace {

void exact_pipeline() {
  Table table({"trial", "n", "beta", "h", "LP value", "OPT(h)", "rounded",
               "rounded/OPT", "space", "2h"});
  const int trials = bench::trials_or(6);
  for (int trial = 0; trial < trials; ++trial) {
    const int beta = 2 + trial % 3;
    const int h = 4;
    const int n = 10;
    const Instance inst =
        bench::build_load(bench::Load::Uniform, n, beta, h, 40,
                          bench::seed_of(500 + static_cast<unsigned>(trial)));
    const NaiveLpResult lp = solve_naive_lp(inst, CostModel::Fetching);
    if (lp.status != LpStatus::Optimal)
      throw std::runtime_error("simplex failed");
    const auto outcome = round_fetch_threshold(inst, lp.x);
    const OptResult opt = exact_opt_fetching(inst);
    bench::record(bench::shape_of(inst)
                      .named("uniform")
                      .costing(outcome.fetch_cost)
                      .with("lp_value", lp.objective)
                      .with("opt", opt.cost)
                      .with("space", outcome.max_cache_used)
                      .with("space_bound", 2 * h));
    table.row()
        .add(trial)
        .add(n)
        .add(beta)
        .add(h)
        .add(lp.objective, 2)
        .add(opt.cost, 1)
        .add(outcome.fetch_cost, 1)
        .add(opt.cost > 0 ? outcome.fetch_cost / opt.cost : 0.0, 2)
        .add(outcome.max_cache_used)
        .add(2 * h);
  }
  bench::emit(table, "bench_bicriteria",
              "EXP-7a Corollary 4.2: LP + threshold rounding = offline "
              "2-approximation using 2h space",
              "exact");
}

void online_pipeline() {
  Table table({"n", "beta", "k", "frac block fetch", "rounded fetch",
               "rounded/frac", "bound 2", "space", "2k"});
  for (int k : {8, 16, 32}) {
    for (int beta : {2, 4, 8}) {
      const int n = 4 * k;
      const Instance inst = bench::build_load(
          bench::Load::Zipf, n, beta, k, 3000,
          bench::seed_of(41 + static_cast<unsigned>(k)));
      FractionalWeightedPaging fp(inst);
      std::vector<std::vector<double>> x;
      x.push_back(std::vector<double>(static_cast<std::size_t>(n), 1.0));
      for (Time t = 1; t <= inst.horizon(); ++t)
        x.push_back(fp.step(inst.request_at(t)));
      const auto outcome = round_fetch_threshold(inst, x);
      const Cost frac = fractional_block_fetch_cost(inst, x);
      bench::record(bench::shape_of(inst)
                        .named("zipf0.9")
                        .costing(outcome.fetch_cost)
                        .with("frac", frac)
                        .with("ratio", frac > 0 ? outcome.fetch_cost / frac : 0.0)
                        .with("space", outcome.max_cache_used)
                        .with("space_bound", 2 * k));
      table.row()
          .add(n)
          .add(beta)
          .add(k)
          .add(frac, 1)
          .add(outcome.fetch_cost, 1)
          .add(frac > 0 ? outcome.fetch_cost / frac : 0.0, 2)
          .add(2)
          .add(outcome.max_cache_used)
          .add(2 * k);
    }
  }
  bench::emit(table, "bench_bicriteria",
              "EXP-7b Theorem 4.1 online: rounding the BBN12a fractional "
              "solution (derandomization of Theorem 4.4)",
              "online");
}

void eviction_variant() {
  Table table({"k", "beta", "frac block evict", "rounded evict",
               "rounded/frac", "space", "2k+1"});
  for (int k : {8, 16, 32}) {
    const int beta = 4;
    const Instance inst = bench::build_load(
        bench::Load::Zipf, 4 * k, beta, k, 3000,
        bench::seed_of(43 + static_cast<unsigned>(k)));
    FractionalWeightedPaging fp(inst);
    std::vector<std::vector<double>> x;
    x.push_back(std::vector<double>(static_cast<std::size_t>(4 * k), 1.0));
    for (Time t = 1; t <= inst.horizon(); ++t)
      x.push_back(fp.step(inst.request_at(t)));
    const auto outcome = round_evict_threshold(inst, x);
    const Cost frac = fractional_block_evict_cost(inst, x);
    bench::record(
        bench::shape_of(inst)
            .named("zipf0.9")
            .costing(outcome.eviction_cost)
            .with("frac", frac)
            .with("ratio", frac > 0 ? outcome.eviction_cost / frac : 0.0)
            .with("space", outcome.max_cache_used)
            .with("space_bound", 2 * k + 1));
    table.row()
        .add(k)
        .add(beta)
        .add(frac, 1)
        .add(outcome.eviction_cost, 1)
        .add(frac > 0 ? outcome.eviction_cost / frac : 0.0, 2)
        .add(outcome.max_cache_used)
        .add(2 * k + 1);
  }
  bench::emit(table, "bench_bicriteria",
              "EXP-7c Section 4.1 eviction-cost rounding variant",
              "eviction");
}

BAC_BENCH_EXPERIMENT("exact", exact_pipeline);
BAC_BENCH_EXPERIMENT("online", online_pipeline);
BAC_BENCH_EXPERIMENT("eviction", eviction_variant);

}  // namespace
}  // namespace bac
