// EXP-8 (Figure 1): the flush-coverage function f_tau on the paper's
// exact illustration, plus throughput of its incremental maintenance.
//
// Figure 1's setup: n = 8 pages in two blocks of 4, k = 4; pages p0..p7
// requested at times 1..8. f({(B1,t1)}) = 2, f({(B2,t2)}) = 3, and
// f({both}) = 4 (capped at n - k).
#include "bench_common.hpp"

#include "submodular/flush_coverage.hpp"
#include "util/timer.hpp"

namespace bac {
namespace {

void figure1() {
  const BlockMap blocks = BlockMap::contiguous(8, 4);
  FlushCoverage cov(blocks, 4);
  for (PageId p = 0; p < 8; ++p) cov.advance(p, static_cast<Time>(p) + 1);

  Table table({"flush set S", "g(S)", "f(S) = min(n-k, g)", "paper"});
  FlushSet s1 = FlushSet::empty(cov);
  s1.add_flush(0, 3);
  table.row().add("{(B1,t1=3)}").add(s1.g()).add(s1.f()).add(2);
  FlushSet s2 = FlushSet::empty(cov);
  s2.add_flush(1, 8);
  table.row().add("{(B2,t2=8)}").add(s2.g()).add(s2.f()).add(3);
  FlushSet both = s1;
  both.add_flush(1, 8);
  table.row().add("{(B1,t1),(B2,t2)}").add(both.g()).add(both.f()).add(4);
  bench::Record rec;
  rec.workload = "figure1";
  rec.n = 8;
  rec.m = 2;
  rec.k = 4;
  rec.beta = 4;
  rec.with("f_s1", s1.f()).with("f_s2", s2.f()).with("f_both", both.f());
  bench::record(rec);
  bench::emit(table, "bench_ftau",
              "EXP-8 Figure 1: f_tau values on the paper's illustration",
              "figure1");
}

void throughput() {
  Table table({"n", "beta", "requests", "marginals", "wall ms",
               "marginals/us"});
  for (int n : {256, 1024, 4096}) {
    const int beta = 8;
    const int k = n / 4;
    const Instance inst = bench::build_load(bench::Load::Zipf, n, beta, k,
                                            20'000, bench::seed_of(3));
    FlushCoverage cov(inst.blocks, k);
    FlushSet S(cov);
    Stopwatch sw;
    long long marginals = 0;
    long long sink = 0;
    for (Time t = 1; t <= inst.horizon(); ++t) {
      FlushSet* sets[] = {&S};
      cov.advance(inst.request_at(t), t, sets);
      // Evaluate the marginal of every alive flush of the requested block
      // (the access pattern of Algorithms 1 and 2).
      const BlockId b = inst.blocks.block_of(inst.request_at(t));
      for (Time at : cov.alive_times(b)) {
        sink += S.f_marginal(b, at);
        ++marginals;
      }
    }
    const double ms = sw.millis();
    bench::record(
        bench::shape_of(inst)
            .named("zipf0.9")
            .costing(static_cast<double>(marginals))
            .timing(ms)
            .with("marginals_per_us",
                  static_cast<double>(marginals) / (ms * 1000.0)));
    table.row()
        .add(n)
        .add(beta)
        .add(static_cast<long long>(inst.horizon()))
        .add(marginals)
        .add(ms, 1)
        .add(static_cast<double>(marginals) / (ms * 1000.0), 2);
    if (sink == -1) std::cout << "";  // defeat dead-code elimination
  }
  bench::emit(table, "bench_ftau",
              "EXP-8 throughput: incremental f_tau maintenance + marginals",
              "throughput");
}

BAC_BENCH_EXPERIMENT("figure1", figure1);
BAC_BENCH_EXPERIMENT("throughput", throughput);

}  // namespace
}  // namespace bac
