// EXP-10 (weighted extension, Section 3): competitive behaviour as the
// aspect ratio Delta = c_max/c_min grows.
//
// The weighted guarantees are k (deterministic), O(log k log kDelta)
// (randomized online) and O(log kDelta) (offline); so Algorithm 1's
// primal/dual ratio should stay flat in Delta while the rounding overhead
// grows ~log Delta. Costs are log-uniform in [1, Delta].
#include "bench_common.hpp"

#include <cmath>

#include "algs/det_online.hpp"
#include "algs/rounding.hpp"
#include "core/simulator.hpp"
#include "util/stats.hpp"

namespace bac {
namespace {

Instance weighted_instance(int n, int beta, int k, double delta, Time T,
                           std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  const int n_blocks = (n + beta - 1) / beta;
  auto costs = log_uniform_costs(n_blocks, delta, rng.substream(1));
  return make_weighted_instance(n, beta, k,
                                zipf_trace(n, T, 0.9, rng.substream(2)),
                                std::move(costs));
}

void delta_sweep() {
  const int k = 32, beta = 4, n = 128;
  Table table({"Delta", "Alg1 cost/dual", "bound k", "E[rounded]/frac",
               "gamma=log(4k^2 b Delta)", "frac cost/dual"});
  for (double delta : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    const Instance inst =
        weighted_instance(n, beta, k, delta, 4000, bench::seed_of(7));

    DetOnlineBlockAware det;
    const RunResult det_run = simulate(inst, det);
    const double det_ratio = det.dual_objective() > 0
                                 ? det_run.eviction_cost / det.dual_objective()
                                 : 0.0;

    RandomizedBlockAware rnd;
    StreamingStats cost;
    const int trials = bench::trials_or(5);
    for (int i = 0; i < trials; ++i) {
      SimOptions opt;
      opt.seed = 300 + static_cast<std::uint64_t>(i);
      cost.add(simulate(inst, rnd, opt).eviction_cost);
    }
    const double rounded_over_frac =
        rnd.fractional_cost() > 0 ? cost.mean() / rnd.fractional_cost() : 0.0;
    bench::record(bench::shape_of(inst)
                      .named("zipf0.9")
                      .costing(det_run.eviction_cost)
                      .with("delta", delta)
                      .with("det_ratio", det_ratio)
                      .with("rounded_over_frac", rounded_over_frac)
                      .with("gamma", rnd.gamma()));
    table.row()
        .add(delta, 0)
        .add(det_ratio, 2)
        .add(k)
        .add(rounded_over_frac, 2)
        .add(rnd.gamma(), 2)
        .add(rnd.dual_objective() > 0
                 ? rnd.fractional_cost() / rnd.dual_objective()
                 : 0.0,
             2);
  }
  bench::emit(table, "bench_aspect_ratio",
              "EXP-10 weighted blocks: Delta sweep (Alg1 flat in Delta; "
              "rounding overhead grows ~log Delta with gamma)",
              "sweep");
}

BAC_BENCH_EXPERIMENT("delta_sweep", delta_sweep);

}  // namespace
}  // namespace bac
