// EXP-6 (Theorems 4.3/4.4): fetching-cost lower bounds for (h, k)
// block-aware caching.
//
// The adaptive adversary always requests a page missing from the online
// policy's cache (so the policy pays >= 1 block fetch per step) while
// steering requests toward blocks with many absent pages so an offline
// h-page cache can batch. We report the measured ratio online/OPT(h)
// against BGM21's bound (k + (B-1)(h-1)) / (k - h + 1) and the blockless
// classic bound k / (k - h + 1); the block term's extra hardness is the
// separation between the last two columns. Theorem 4.4's derandomization
// (rounding a fractional/randomized policy) is exercised in EXP-7.
#include "bench_common.hpp"

#include "algs/policies/classical.hpp"
#include "algs/det_online.hpp"
#include "algs/opt.hpp"
#include "core/simulator.hpp"
#include "trace/adversarial.hpp"

namespace bac {
namespace {

template <typename Policy>
void adversary_row(Table& table, const std::string& name, int k, int B, int h,
                   Time T) {
  Policy policy;
  const auto adv = run_adaptive_adversary(policy, k, B, h, T);
  Instance offline = adv.instance;
  offline.k = h;

  double denom = 0;
  std::string denom_kind;
  if (offline.n_pages() <= 14) {
    OptLimits limits;
    limits.max_layer_states = 1'000'000;
    const OptResult opt = exact_opt_fetching(offline, limits);
    denom = opt.cost;
    denom_kind = "exact";
  } else {
    // Upper bound on OPT(h) via the strongest offline heuristic available
    // at this scale (a valid *lower* bound on the true ratio).
    BlockLruPolicy prefetch(true);
    BeladyPolicy belady;
    denom = std::min(simulate(offline, prefetch).fetch_cost,
                     simulate(offline, belady).fetch_cost);
    denom_kind = "heuristic";
  }
  const double ratio = denom > 0 ? adv.online_fetch / denom : 0.0;
  bench::record(bench::shape_of(adv.instance)
                    .named("adversary/" + name)
                    .costing(adv.online_fetch)
                    .with("opt_h", denom)
                    .with("h", h)
                    .with("ratio", ratio)
                    .with("bgm21_bound", bgm21_lower_bound(k, B, h))
                    .with("classic_bound",
                          static_cast<double>(k) / (k - h + 1)));
  table.row()
      .add(name)
      .add(k)
      .add(B)
      .add(h)
      .add(adv.online_fetch, 0)
      .add(denom, 0)
      .add(denom_kind)
      .add(ratio, 2)
      .add(bgm21_lower_bound(k, B, h), 2)
      .add(static_cast<double>(k) / (k - h + 1), 2);
}

void ratios() {
  Table table({"policy", "k", "B", "h", "online", "OPT(h)", "kind", "ratio",
               "BGM21 bound", "classic bound"});
  // Exactly-solvable scale.
  adversary_row<LruPolicy>(table, "LRU", 6, 2, 3, 240);
  adversary_row<FifoPolicy>(table, "FIFO", 6, 2, 3, 240);
  adversary_row<GreedyDualPolicy>(table, "GreedyDual", 6, 2, 3, 240);
  adversary_row<LruPolicy>(table, "LRU", 8, 2, 4, 240);
  adversary_row<LruPolicy>(table, "LRU", 9, 3, 3, 240);
  // Larger (h, k) pairs with heuristic denominators.
  adversary_row<LruPolicy>(table, "LRU", 16, 4, 8, 1200);
  adversary_row<LruPolicy>(table, "LRU", 32, 4, 16, 1200);
  adversary_row<MarkingPolicy>(table, "Marking", 16, 4, 8, 1200);
  adversary_row<DetOnlineBlockAware>(table, "BA-Det(Alg1)", 16, 4, 8, 1200);
  bench::emit(table, "bench_fetch_lower_bound",
              "EXP-6 Theorems 4.3/4.4: adaptive (h,k) fetching adversary "
              "(measured ratio should exceed the classic bound and approach "
              "BGM21's)",
              "ratios");
  std::cout << "Note: no online policy can beat Omega(beta + log k) here "
               "(Theorem 1.2) — even the\npaper's eviction-model algorithms "
               "pay ~1 per step under fetching costs.\n";
}

BAC_BENCH_EXPERIMENT("ratios", ratios);

}  // namespace
}  // namespace bac
