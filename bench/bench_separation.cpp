// EXP-1 (Claim 2.1): optimal fetching and eviction costs separate by a
// factor Theta(beta), in either direction.
//
// For each beta we build both constructions from the Claim 2.1 proof and
// score (a) the intended optimal schedule exactly, and (b) exact OPT in
// both cost models where the state space permits. Expected shape: on the
// fetch-cheap instance evict/fetch ~ beta/2 (warm-up halves the intended
// beta); on the evict-cheap instance fetch/evict ~ beta.
#include "bench_common.hpp"

#include "algs/opt.hpp"
#include "util/stats.hpp"
#include "core/schedule.hpp"
#include "trace/adversarial.hpp"

namespace bac {
namespace {

void run_direction(bool fetch_cheap) {
  Table table({"beta", "n", "k", "intended fetch", "intended evict",
               "opt fetch", "opt evict", "measured skew", "theory skew"});
  for (int beta = 2; beta <= 8; ++beta) {
    const auto built = fetch_cheap ? claim21_fetch_cheap(beta, 4)
                                   : claim21_evict_cheap(beta, 3);
    const ScheduleCost intended =
        evaluate(built.instance, built.intended_schedule);
    if (!intended.feasible)
      throw std::logic_error("intended schedule infeasible");

    std::string opt_f = "-", opt_e = "-";
    double skew = fetch_cheap ? intended.eviction_cost / intended.fetch_cost
                              : intended.fetch_cost / intended.eviction_cost;
    if (beta <= 3) {  // exact OPT tractable
      OptLimits limits;
      limits.max_layer_states = 2'000'000;
      const OptResult f = exact_opt_fetching(built.instance, limits);
      const OptResult e = exact_opt_eviction(built.instance, limits);
      if (f.exact && e.exact) {
        opt_f = fmt_double(f.cost, 1);
        opt_e = fmt_double(e.cost, 1);
        skew = fetch_cheap ? e.cost / f.cost : f.cost / e.cost;
      }
    }
    bench::record(bench::shape_of(built.instance)
                      .named(fetch_cheap ? "claim21/fetch_cheap"
                                         : "claim21/evict_cheap")
                      .costing(fetch_cheap ? intended.fetch_cost
                                           : intended.eviction_cost)
                      .with("skew", skew)
                      .with("theory_skew", fetch_cheap
                                               ? beta / 2.0
                                               : static_cast<double>(beta)));
    table.row()
        .add(beta)
        .add(built.instance.n_pages())
        .add(built.instance.k)
        .add(intended.fetch_cost, 1)
        .add(intended.eviction_cost, 1)
        .add(opt_f)
        .add(opt_e)
        .add(skew, 2)
        .add(fetch_cheap ? beta / 2.0 : static_cast<double>(beta), 2);
  }
  Table copy = table;
  bench::emit(copy,
              "bench_separation",
              fetch_cheap
                  ? "EXP-1a Claim 2.1: OPT_evict ~ beta * OPT_fetch "
                    "(fetch-cheap construction)"
                  : "EXP-1b Claim 2.1: OPT_fetch ~ beta * OPT_evict "
                    "(evict-cheap construction)",
              fetch_cheap ? "fetch_cheap" : "evict_cheap");
}

BAC_BENCH_EXPERIMENT("fetch_cheap", +[] {
  run_direction(/*fetch_cheap=*/true);
});
BAC_BENCH_EXPERIMENT("evict_cheap", +[] {
  run_direction(/*fetch_cheap=*/false);
  std::cout << "Shape check: the 'measured skew' column grows linearly in "
               "beta in both directions,\nreproducing Claim 2.1's "
               "separation between the two cost models.\n";
});

}  // namespace
}  // namespace bac
