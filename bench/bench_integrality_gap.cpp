// EXP-5 (Theorem A.1): the naive LP (A.1) has integrality gap Omega(beta).
//
// On the Appendix A.2 instance (two blocks of beta, k = 2*beta - 1, R
// rounds of scanning both blocks) we solve the LP exactly with the dense
// simplex and compute integer OPT exactly; the gap OPT/LP grows linearly
// in beta in both cost models. This is the reason the paper replaces the
// naive LP with the submodular-cover LP (P).
#include "bench_common.hpp"

#include "algs/opt.hpp"
#include "lp/naive_lp.hpp"
#include "trace/adversarial.hpp"

namespace bac {
namespace {

void gap_sweep(CostModel model) {
  const bool fetch = model == CostModel::Fetching;
  Table table({"beta", "rounds", "LP value", "int OPT", "gap", "beta/2",
               "pivots"});
  for (int beta = 2; beta <= 8; ++beta) {
    const int rounds = 3;
    const Instance inst = gap_instance(beta, rounds);
    SimplexOptions options;
    options.max_pivots = 4'000'000;
    const NaiveLpResult lp = solve_naive_lp(inst, model, options);
    if (lp.status != LpStatus::Optimal)
      throw std::runtime_error("simplex failed on gap instance");
    const OptResult opt =
        fetch ? exact_opt_fetching(inst) : exact_opt_eviction(inst);
    bench::record(bench::shape_of(inst)
                      .named(fetch ? "gap/fetching" : "gap/eviction")
                      .costing(opt.cost)
                      .with("lp_value", lp.objective)
                      .with("gap", lp.objective > 0 ? opt.cost / lp.objective
                                                    : 0.0)
                      .with("pivots", static_cast<double>(lp.pivots)));
    table.row()
        .add(beta)
        .add(rounds)
        .add(lp.objective, 3)
        .add(opt.cost, 1)
        .add(lp.objective > 0 ? opt.cost / lp.objective : 0.0, 2)
        .add(beta / 2.0, 2)
        .add(lp.pivots);
  }
  Table copy = table;
  bench::emit(copy, "bench_integrality_gap",
              std::string("EXP-5 Theorem A.1: naive LP integrality gap, ") +
                  (fetch ? "fetching" : "eviction") +
                  " cost model (gap grows ~linearly in beta)",
              fetch ? "fetching" : "eviction");
}

BAC_BENCH_EXPERIMENT("fetching", +[] { gap_sweep(CostModel::Fetching); });
BAC_BENCH_EXPERIMENT("eviction", +[] { gap_sweep(CostModel::Eviction); });

}  // namespace
}  // namespace bac
