// Shared plumbing for the experiment benches: standard workload builders,
// table/CSV emission, and parallel sweep helpers. Each bench binary
// regenerates one experiment from DESIGN.md's per-experiment index and
// prints a paper-style table plus the theory prediction next to it.
#pragma once

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/instance.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace bac::bench {

/// Workloads used across experiments (names appear in result tables).
enum class Load { Zipf, BlockLocal, Scan, Phased, Uniform };

inline const char* load_name(Load l) {
  switch (l) {
    case Load::Zipf: return "zipf0.9";
    case Load::BlockLocal: return "blocklocal";
    case Load::Scan: return "scan";
    case Load::Phased: return "phased";
    case Load::Uniform: return "uniform";
  }
  return "?";
}

inline Instance build_load(Load l, int n, int beta, int k, Time T,
                           std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  switch (l) {
    case Load::Zipf:
      return make_instance(n, beta, k, zipf_trace(n, T, 0.9, rng));
    case Load::BlockLocal: {
      BlockMap blocks = BlockMap::contiguous(n, beta);
      auto req = block_local_trace(blocks, T, 0.75, 0.9, rng);
      return Instance{std::move(blocks), std::move(req), k};
    }
    case Load::Scan:
      return make_instance(n, beta, k, scan_trace(n, T));
    case Load::Phased:
      return make_instance(n, beta, k,
                           phased_trace(n, T, T / 10, k + beta, rng));
    case Load::Uniform:
      return make_instance(n, beta, k, uniform_trace(n, T, rng));
  }
  throw std::logic_error("build_load");
}

/// Print the table and mirror it to bench_results/<bench>_<tag>.csv.
inline void emit(Table& table, const std::string& bench,
                 const std::string& title, const std::string& tag = "") {
  table.print(std::cout, title);
  std::filesystem::create_directories("bench_results");
  const std::string path =
      "bench_results/" + bench + (tag.empty() ? "" : "_" + tag) + ".csv";
  table.write_csv(path);
  std::cout << "  [csv: " << path << "]\n\n";
}

}  // namespace bac::bench
