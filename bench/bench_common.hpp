// Shared plumbing for the experiment benches: standard workload builders,
// table/CSV emission, structured JSON records, and the experiment registry
// driven by the bench_main.cpp entry point. Each bench binary regenerates
// one experiment from the per-binary index in bench/DESIGN.md and prints a
// paper-style table plus the theory prediction next to it.
//
// Every binary accepts the shared flags parsed by bench_main.cpp:
//   --seed <u64>     offset all workload seeds (default 1 = paper tables)
//   --trials <n>     override Monte-Carlo trial counts (default: per-exp)
//   --threads <n>    worker threads for parallel sweeps (default: hardware)
//   --json [path]    write a BENCH_<bench>.json record file
//   --compare <path> print per-case speedup vs a baseline record file
//   --only <name>    run a single registered experiment (repeatable)
//   --list           print registered experiments and exit
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/instance.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace bac::bench {

// --- harness state (storage lives in bench_main.cpp) -----------------------

struct Options {
  std::uint64_t seed = 1;   ///< 1 = the seeds baked into each experiment
  int trials = 0;           ///< 0 = per-experiment default
  int threads = 0;          ///< 0 = hardware concurrency
  bool json = false;
  std::string json_path;    ///< resolved to BENCH_<bench>.json when empty
  std::string compare_path; ///< baseline BENCH_*.json to diff against
  std::vector<std::string> only;
};

/// Flags for the current run; populated by bench_main before experiments.
Options& options();

/// One structured data point (a row of the JSON output). `extra` holds
/// experiment-specific numeric columns (ratios, bounds, throughput, ...).
struct Record {
  std::string workload;
  int n = 0;      ///< pages
  int m = 0;      ///< blocks
  int k = 0;      ///< cache size
  int beta = 0;   ///< max block size
  double cost = 0.0;
  double wall_ms = 0.0;
  std::vector<std::pair<std::string, double>> extra;

  Record& named(std::string w) { workload = std::move(w); return *this; }
  Record& costing(double c) { cost = c; return *this; }
  Record& timing(double ms) { wall_ms = ms; return *this; }
  Record& with(std::string key, double value) {
    extra.emplace_back(std::move(key), value);
    return *this;
  }
};

/// Append a record under the experiment currently being run.
void record(Record r);

using ExperimentFn = void (*)();
/// Register an experiment; returns true so it can seed a namespace-scope
/// initializer. Experiments run in registration order.
bool register_experiment(const char* name, ExperimentFn fn);

#define BAC_BENCH_CONCAT_(a, b) a##b
#define BAC_BENCH_CONCAT(a, b) BAC_BENCH_CONCAT_(a, b)
/// Register `fn` (a void() function or captureless lambda) as an
/// experiment named `name` in this binary's registry.
#define BAC_BENCH_EXPERIMENT(name, fn)                                      \
  [[maybe_unused]] const bool BAC_BENCH_CONCAT(bac_bench_reg_, __LINE__) = \
      ::bac::bench::register_experiment(name, fn)

/// Derive a workload seed from the experiment's baked-in value so that the
/// default --seed 1 reproduces the paper tables and other seeds explore
/// fresh instances.
inline std::uint64_t seed_of(std::uint64_t baked) {
  return baked + options().seed - 1;
}

/// Monte-Carlo trial count: the --trials override, or the experiment default.
inline int trials_or(int experiment_default) {
  return options().trials > 0 ? options().trials : experiment_default;
}

/// Fill a record's instance-shape columns (n / m / k / beta).
inline Record shape_of(const Instance& inst) {
  Record r;
  r.n = inst.n_pages();
  r.m = inst.blocks.n_blocks();
  r.k = inst.k;
  for (BlockId b = 0; b < inst.blocks.n_blocks(); ++b)
    r.beta = std::max(r.beta, inst.blocks.block_size(b));
  return r;
}

// --- workloads --------------------------------------------------------------

/// Workloads used across experiments (names appear in result tables).
enum class Load { Zipf, BlockLocal, Scan, Phased, Uniform };

inline const char* load_name(Load l) {
  switch (l) {
    case Load::Zipf: return "zipf0.9";
    case Load::BlockLocal: return "blocklocal";
    case Load::Scan: return "scan";
    case Load::Phased: return "phased";
    case Load::Uniform: return "uniform";
  }
  return "?";
}

inline Instance build_load(Load l, int n, int beta, int k, Time T,
                           std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  switch (l) {
    case Load::Zipf:
      return make_instance(n, beta, k, zipf_trace(n, T, 0.9, rng));
    case Load::BlockLocal: {
      BlockMap blocks = BlockMap::contiguous(n, beta);
      auto req = block_local_trace(blocks, T, 0.75, 0.9, rng);
      return Instance{std::move(blocks), std::move(req), k};
    }
    case Load::Scan:
      return make_instance(n, beta, k, scan_trace(n, T));
    case Load::Phased:
      return make_instance(n, beta, k,
                           phased_trace(n, T, T / 10, k + beta, rng));
    case Load::Uniform:
      return make_instance(n, beta, k, uniform_trace(n, T, rng));
  }
  throw std::logic_error("build_load");
}

// --- reporting --------------------------------------------------------------

/// Print the table and mirror it to bench_results/<bench>_<tag>.csv.
inline void emit(Table& table, const std::string& bench,
                 const std::string& title, const std::string& tag = "") {
  table.print(std::cout, title);
  std::filesystem::create_directories("bench_results");
  const std::string path =
      "bench_results/" + bench + (tag.empty() ? "" : "_" + tag) + ".csv";
  table.write_csv(path);
  std::cout << "  [csv: " << path << "]\n\n";
}

}  // namespace bac::bench
