// EXP-9 (Section 1.1): head-to-head table of every policy on every
// workload, both cost models — the "beat the trivial beta blow-up" story.
//
// Expected shape: under eviction costs the paper's algorithms and the
// block-batching heuristics win by up to a factor beta on block-local
// workloads; under fetching costs nothing can beat the Omega(beta + log k)
// barrier (Theorem 1.2), so classical prefetching heuristics remain
// competitive there.
//
// Runs are parallelized over (workload, policy) pairs with deterministic
// per-task seeds via the thread pool.
#include "bench_common.hpp"

#include <memory>
#include <mutex>

#include "algs/zoo.hpp"
#include "core/simulator.hpp"

namespace bac {
namespace {

struct Job {
  std::size_t load_index;
  std::size_t policy_index;
  RunResult result;
  std::string policy_name;
};

void head_to_head(int beta, int k) {
  const std::vector<bench::Load> loads{
      bench::Load::Zipf, bench::Load::BlockLocal, bench::Load::Scan,
      bench::Load::Phased};
  const std::size_t n_policies = make_policy_zoo().size();

  // One instance per load, built up front and shared read-only by the
  // tasks (simulate() never mutates it; each task owns its policy).
  std::vector<Instance> instances;
  instances.reserve(loads.size());
  for (const auto load : loads)
    instances.push_back(
        bench::build_load(load, 4 * k, beta, k, 12'000, bench::seed_of(97)));

  std::vector<Job> jobs;
  for (std::size_t li = 0; li < loads.size(); ++li)
    for (std::size_t pi = 0; pi < n_policies; ++pi)
      jobs.push_back({li, pi, {}, ""});

  global_pool().parallel_for_indexed(jobs.size(), [&](std::size_t i) {
    Job& job = jobs[i];
    auto zoo = make_policy_zoo();
    SimOptions options;
    options.seed = 13;
    job.result = simulate(instances[job.load_index], *zoo[job.policy_index],
                          options);
    job.policy_name = zoo[job.policy_index]->name();
  });

  for (std::size_t li = 0; li < loads.size(); ++li) {
    const auto load = loads[li];
    Table table({"policy", "evict cost", "fetch cost", "misses",
                 "evict events", "fetch events"});
    for (const Job& job : jobs) {
      if (job.load_index != li) continue;
      bench::record(
          bench::shape_of(instances[li])
              .named(std::string(bench::load_name(load)) + "/" +
                     job.policy_name)
              .costing(job.result.eviction_cost)
              .with("fetch_cost", job.result.fetch_cost)
              .with("misses", static_cast<double>(job.result.misses)));
      table.row()
          .add(job.policy_name)
          .add(job.result.eviction_cost, 0)
          .add(job.result.fetch_cost, 0)
          .add(job.result.misses)
          .add(job.result.evict_block_events)
          .add(job.result.fetch_block_events);
    }
    bench::emit(table, "bench_zoo",
                std::string("EXP-9 head-to-head, workload=") +
                    bench::load_name(load) + " (beta=" + std::to_string(beta) +
                    ", k=" + std::to_string(k) + ")",
                std::string(bench::load_name(load)) + "_beta" +
                    std::to_string(beta));
  }
}

BAC_BENCH_EXPERIMENT("beta8", +[] { head_to_head(/*beta=*/8, /*k=*/64); });
BAC_BENCH_EXPERIMENT("beta2", +[] { head_to_head(/*beta=*/2, /*k=*/64); });

}  // namespace
}  // namespace bac
