// Flag-parsing plumbing shared by the tools/ binaries (bacsim, bacload,
// bacfuzz, baclint): comma-list splitting, validated integer flag values,
// and the common --metrics/--trace observability flags. Kept header-only
// and tool-local — the library proper has no CLI surface.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bac::cli {

/// Split a comma-separated list, dropping empty items.
inline std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(',', start);
    const std::size_t end = pos == std::string::npos ? s.size() : pos;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

/// The value following argv[i] (advances i); exits 2 when missing.
inline const char* flag_value(int argc, char** argv, int& i,
                              const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
    std::exit(2);
  }
  return argv[++i];
}

/// The flag's value parsed as an integer in [0, max]; exits 2 on junk.
inline unsigned long long flag_u64(int argc, char** argv, int& i,
                                   const char* flag,
                                   unsigned long long max) {
  const char* s = flag_value(argc, argv, i, flag);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE || v > max) {
    std::fprintf(stderr, "%s: %s wants an integer in [0, %llu], got '%s'\n",
                 argv[0], flag, max, s);
    std::exit(2);
  }
  return v;
}

/// A comma list of integers in [1, max]; exits 2 on junk.
inline std::vector<int> split_positive_ints(const char* argv0,
                                            const std::string& s,
                                            const char* flag, long long max) {
  std::vector<int> out;
  for (const std::string& item : split_list(s)) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || errno == ERANGE || v <= 0 ||
        v > max) {
      std::fprintf(stderr,
                   "%s: %s wants positive integers <= %lld, got '%s'\n",
                   argv0, flag, max, item.c_str());
      std::exit(2);
    }
    out.push_back(static_cast<int>(v));
  }
  return out;
}

/// The shared observability surface: every tool accepts
///   --metrics <out.json|out.prom>   registry snapshot at exit
///   --trace <out.jsonl>             structured span/phase/progress events
/// Call handle() inside the flag loop, then trace()/registry() for the
/// hooks to thread through the layers, and write_metrics() once the run
/// is done. All hooks are null/no-op when the flags are absent.
class ObsFlags {
 public:
  /// True when argv[i] was --metrics/--trace (consumes the value).
  bool handle(int argc, char** argv, int& i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path_ = flag_value(argc, argv, i, "--metrics");
      return true;
    }
    if (std::strcmp(argv[i], "--trace") == 0) {
      const char* path = flag_value(argc, argv, i, "--trace");
      try {
        trace_ = std::make_unique<obs::TraceWriter>(path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        std::exit(2);
      }
      return true;
    }
    return false;
  }

  /// nullptr when --trace was not given (the disabled fast path).
  [[nodiscard]] obs::TraceWriter* trace() const { return trace_.get(); }
  /// Always usable; only exported when --metrics was given.
  [[nodiscard]] obs::MetricRegistry& registry() { return registry_; }

  /// Snapshot the registry to --metrics (JSON, or Prometheus text for a
  /// .prom extension); no-op when the flag is absent. Returns false (and
  /// prints to stderr) when the file cannot be written.
  bool write_metrics(const char* argv0, const std::string& tool) {
    if (metrics_path_.empty()) return true;
    try {
      obs::write_metrics_file(metrics_path_, registry_.snapshot(), tool);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv0, e.what());
      return false;
    }
    return true;
  }

 private:
  std::string metrics_path_;
  std::unique_ptr<obs::TraceWriter> trace_;
  obs::MetricRegistry registry_;
};

}  // namespace bac::cli
