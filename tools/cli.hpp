// Flag-parsing plumbing shared by the tools/ binaries (bacsim, bacload):
// comma-list splitting and validated integer flag values. Kept header-only
// and tool-local — the library proper has no CLI surface.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace bac::cli {

/// Split a comma-separated list, dropping empty items.
inline std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t pos = s.find(',', start);
    const std::size_t end = pos == std::string::npos ? s.size() : pos;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

/// The value following argv[i] (advances i); exits 2 when missing.
inline const char* flag_value(int argc, char** argv, int& i,
                              const char* flag) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
    std::exit(2);
  }
  return argv[++i];
}

/// The flag's value parsed as an integer in [0, max]; exits 2 on junk.
inline unsigned long long flag_u64(int argc, char** argv, int& i,
                                   const char* flag,
                                   unsigned long long max) {
  const char* s = flag_value(argc, argv, i, flag);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE || v > max) {
    std::fprintf(stderr, "%s: %s wants an integer in [0, %llu], got '%s'\n",
                 argv[0], flag, max, s);
    std::exit(2);
  }
  return v;
}

/// A comma list of integers in [1, max]; exits 2 on junk.
inline std::vector<int> split_positive_ints(const char* argv0,
                                            const std::string& s,
                                            const char* flag, long long max) {
  std::vector<int> out;
  for (const std::string& item : split_list(s)) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0' || errno == ERANGE || v <= 0 ||
        v > max) {
      std::fprintf(stderr,
                   "%s: %s wants positive integers <= %lld, got '%s'\n",
                   argv0, flag, max, item.c_str());
      std::exit(2);
    }
    out.push_back(static_cast<int>(v));
  }
  return out;
}

}  // namespace bac::cli
