// bacfuzz: differential fuzz-verification driver.
//
// Generates randomized block-aware caching instances (all block shapes,
// cost distributions, trace generators, and edge shapes like k = beta or
// T < k), replays every feasible policy over each, and checks the oracle
// battery: cost-sandwich (lower bounds <= OPT <= feasible runs, proven
// ratios), Section-2 cost-model identities, streaming == materialized
// simulate(), schedule capture -> replay exactness, Monte-Carlo serial ==
// parallel, and 1-vs-N-thread ConcurrentCache cost equality.
//
// On a violation the failing instance is shrunk (halve T, drop blocks,
// shrink k) while the violation persists, and a self-contained repro is
// written: <artifacts>/repro_seed<S>_<family>.bact + .json (the JSON
// carries the exact `bacfuzz --replay ...` line).
//
//   bacfuzz --seeds 500 --smoke --artifacts fuzz-artifacts --json fuzz.json
//   bacfuzz --replay fuzz-artifacts/repro_seed42_cost_model.bact
//   bacfuzz --golden tests/golden        # regenerate the pinned corpus
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "trace/bact.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/fuzz.hpp"
#include "verify/golden.hpp"
#include "verify/reference_policies.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--seeds <n>] [--seed <base>] [--smoke]\n"
      "          [--families <f1,f2,..>] [--artifacts <dir>]\n"
      "          [--max-failures <n>] [--threads <n>] [--json [path]]\n"
      "          [--metrics <out.json|out.prom>] [--trace <out.jsonl>]\n"
      "          [--replay <repro.bact>] [--golden <dir>] [--list-families]\n"
      "\n"
      "  --seeds         fuzz seeds to run (default 100)\n"
      "  --smoke         CI tier: tiny instances, tight solver caps\n"
      "  --families      oracle families (default: all; see "
      "--list-families)\n"
      "  --artifacts     write shrunken repro .bact+.json on failure\n"
      "  --metrics       write campaign counters at exit (obs JSON, or\n"
      "                  Prometheus text when the path ends in .prom)\n"
      "  --trace         stream campaign/progress/violation JSONL events\n"
      "  --replay        re-check a saved repro instead of fuzzing\n"
      "  --golden        write the pinned golden corpus and exit\n",
      argv0);
}

int write_report(const std::string& path, const bac::verify::FuzzConfig& config,
                 const bac::verify::FuzzReport& report, double wall_ms) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bacfuzz: cannot write %s\n", path.c_str());
    return 1;
  }
  os.precision(17);
  os << "{\n  \"bench\": \"bacfuzz\",\n  \"seed\": " << config.base_seed
     << ",\n  \"seeds\": " << config.seeds << ",\n  \"smoke\": "
     << (config.smoke ? "true" : "false") << ",\n  \"families\": [";
  const std::vector<std::string> families =
      config.families.empty() ? bac::verify::oracle_family_names()
                              : config.families;
  for (std::size_t i = 0; i < families.size(); ++i) {
    if (i) os << ", ";
    bac::write_json_string(os, families[i]);
  }
  os << "],\n  \"failures\": [";
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    const auto& f = report.failures[i];
    os << (i ? ",\n    {" : "\n    {") << "\"seed\": " << f.seed
       << ", \"family\": ";
    bac::write_json_string(os, f.family);
    os << ", \"detail\": ";
    bac::write_json_string(os, f.detail);
    os << ", \"n\": " << f.shrunk.n_pages() << ", \"k\": " << f.shrunk.k
       << ", \"T\": " << f.shrunk.horizon() << ", \"bact\": ";
    bac::write_json_string(os, f.bact_path);
    os << "}";
  }
  os << (report.failures.empty() ? "]" : "\n  ]")
     << ",\n  \"aggregate\": {\"seeds_run\": " << report.seeds_run
     << ", \"family_checks\": " << report.family_checks
     << ", \"violations\": " << report.failures.size()
     // The production<->frozen-twin pairs the policy_equivalence family
     // replays per seed; CI pins this so a twin silently dropping from
     // the registry cannot shrink coverage unnoticed.
     << ", \"policy_twins\": " << bac::verify::reference_policy_twins().size()
     << ", \"wall_ms\": ";
  bac::write_json_number(os, wall_ms);
  os << "}\n}\n";
  if (!os.flush()) {
    std::fprintf(stderr, "bacfuzz: short write to %s\n", path.c_str());
    return 1;
  }
  return 0;
}

int run(int argc, char** argv) {
  bac::verify::FuzzConfig config;
  config.seeds = 100;
  config.max_failures = 5;
  std::string replay_path, golden_dir, json_path;
  bool json = false;
  int threads = 4;
  bac::cli::ObsFlags obs;

  for (int i = 1; i < argc; ++i) {
    if (obs.handle(argc, argv, i)) continue;
    const std::string arg = argv[i];
    auto value = [&](const char* flag) {
      return bac::cli::flag_value(argc, argv, i, flag);
    };
    auto numeric = [&](const char* flag, unsigned long long max) {
      return bac::cli::flag_u64(argc, argv, i, flag, max);
    };
    if (arg == "--seeds") {
      config.seeds = static_cast<int>(numeric("--seeds", 100'000'000));
    } else if (arg == "--seed") {
      config.base_seed = numeric("--seed", ~0ull);
    } else if (arg == "--smoke") {
      config.smoke = true;
    } else if (arg == "--families") {
      config.families = bac::cli::split_list(value("--families"));
    } else if (arg == "--artifacts") {
      config.artifact_dir = value("--artifacts");
    } else if (arg == "--max-failures") {
      config.max_failures =
          static_cast<int>(numeric("--max-failures", 1'000'000));
    } else if (arg == "--threads") {
      threads = static_cast<int>(numeric("--threads", 4096));
    } else if (arg == "--json") {
      json = true;
      json_path = "fuzz.json";
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        json_path = argv[++i];
    } else if (arg == "--replay") {
      replay_path = value("--replay");
    } else if (arg == "--golden") {
      golden_dir = value("--golden");
    } else if (arg == "--list-families") {
      for (const std::string& name : bac::verify::oracle_family_names())
        std::printf("%s\n", name.c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (!golden_dir.empty()) {
    const int count = bac::verify::write_golden_corpus(golden_dir);
    std::printf("golden corpus: %d instances written to %s\n", count,
                golden_dir.c_str());
    return 0;
  }

  // The mc_equivalence and concurrency oracles need real parallelism even
  // on single-core CI runners.
  if (threads > 0) {
    bac::configure_global_pool(static_cast<std::size_t>(threads));
    config.oracle.threads = threads;
  }

  if (!replay_path.empty()) {
    const bac::Instance inst = bac::load_bact(replay_path);
    bac::verify::OracleOptions oracle = config.oracle;
    oracle.seed = config.base_seed;
    for (const std::string& family : config.families)
      if (family == "streaming")
        std::fprintf(stderr,
                     "bacfuzz: note: the streaming family needs the "
                     "generator's twin and is skipped on --replay; "
                     "reproduce streaming failures with "
                     "--seeds 1 --seed <S> --families streaming\n");
    const auto violations =
        bac::verify::replay_instance(inst, config.families, oracle);
    if (violations.empty()) {
      std::printf("replay %s: all oracles clean\n", replay_path.c_str());
      return 0;
    }
    for (const auto& v : violations)
      std::printf("VIOLATION [%s] %s\n", v.family.c_str(), v.detail.c_str());
    return 1;
  }

  config.metrics = &obs.registry();
  config.trace = obs.trace();

  bac::Stopwatch clock;
  const bac::verify::FuzzReport report = bac::verify::run_fuzz(config);
  const double wall_ms = clock.millis();

  for (const auto& f : report.failures) {
    std::printf("VIOLATION seed=%llu [%s] %s\n",
                static_cast<unsigned long long>(f.seed), f.family.c_str(),
                f.detail.c_str());
    std::printf("  instance: %s\n", f.descriptor.c_str());
    std::printf("  shrunk to: n=%d m=%d k=%d T=%d (%d rounds)\n",
                f.shrunk.n_pages(), f.shrunk.blocks.n_blocks(), f.shrunk.k,
                f.shrunk.horizon(), f.shrink_rounds);
    if (!f.bact_path.empty())
      std::printf("  repro: bacfuzz --replay %s --families %s\n",
                  f.bact_path.c_str(), f.family.c_str());
  }
  std::printf(
      "%d seeds, %lld family checks in %.1f ms: %zu violation(s)\n",
      report.seeds_run, report.family_checks, wall_ms,
      report.failures.size());

  if (json) {
    const int rc = write_report(json_path, config, report, wall_ms);
    if (rc != 0) return rc;
    std::printf("[json: %s]\n", json_path.c_str());
  }
  obs.registry().gauge("fuzz_wall_ms").set(wall_ms);
  if (!obs.write_metrics(argv[0], "bacfuzz")) return 1;
  return report.failures.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bacfuzz failed: %s\n", e.what());
    return 2;
  }
}
