// bacload: closed-loop multithreaded load generator for the sharded
// concurrent cache data-plane (src/server).
//
// Builds one ConcurrentCache per requested thread count, replays a
// workload (synthetic spec, .bact, .csv, or v1 text trace) through it
// with shard-partitioned dispatch, and reports throughput, service
// latency percentiles, and the total block-aware cost — one bench-schema
// JSON record per thread count.
//
//   bacload --policy lru --workload zipf0.9 --k 512 --threads 1,8
//           --check-equivalence --json load.json
//
// Because dispatch preserves per-shard request order and shards share no
// mutable state, the total cost is bit-identical at every thread count;
// --check-equivalence asserts that (exit 1 on mismatch). --dispatch
// chunk switches to contended chunked dispatch (nondeterministic cost;
// for stress/contention measurements).
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algs/zoo.hpp"
#include "cli.hpp"
#include "driver/sweep.hpp"
#include "server/concurrent_cache.hpp"
#include "server/dispatch.hpp"
#include "util/json.hpp"

namespace {

using bac::server::ConcurrentCache;
using bac::server::ServerStats;

void usage(const char* argv0) {
  std::printf(
      "usage: %s --policy <name> --workload <spec> --k <pages>\n"
      "          [--n <pages>] [--beta <block size>] [--T <requests>]\n"
      "          [--shards <n|0=auto>] [--threads <t1,t2,..>] [--seed <u64>]\n"
      "          [--dispatch shard|chunk] [--check-equivalence]\n"
      "          [--csv-block-pages <n>] [--json [path]] [--quiet]\n"
      "          [--metrics <out.json|out.prom>] [--trace <out.jsonl>]\n"
      "\n"
      "  --policy     policy registry name (bacsim --list-policies)\n"
      "  --workload   zipf[a] | uniform | scan | blocklocal | phased,\n"
      "               or a trace path (.bact, .csv key trace, v1 text)\n"
      "  --k          total cache capacity in pages\n"
      "  --n/--beta/--T   synthetic workload shape (default 4096/8/200000)\n"
      "  --shards     shard count; 0 (default) picks min(max_shards, 64)\n"
      "  --threads    client thread counts to run (default 1,8)\n"
      "  --dispatch   shard (deterministic, default) | chunk (contended)\n"
      "  --check-equivalence   require bit-identical cost across runs\n"
      "  --json       write one bench-schema record per thread count\n"
      "  --metrics    server_* event counters + latency/lock-wait\n"
      "               histograms, summed over the runs (obs JSON or .prom)\n"
      "  --trace      one load span per thread-count run (JSONL)\n",
      argv0);
}

std::vector<bac::PageId> materialize(bac::RequestSource& source) {
  std::vector<bac::PageId> out;
  const long long hint = source.horizon_hint();
  if (hint > 0) out.reserve(static_cast<std::size_t>(hint));
  bac::PageId p = 0;
  while (source.next(p)) out.push_back(p);
  return out;
}

struct RunRecord {
  int threads = 0;
  double wall_ms = 0;
  double rps = 0;
  /// Throughput relative to this invocation's first (baseline) run.
  double speedup = 1.0;
  /// speedup divided by the thread-count ratio vs the baseline run:
  /// 1.0 = perfect scaling, and the gap below 1.0 is what the per-shard
  /// lock_wait_* fields in the same record explain (contention-aware
  /// scaling report, ROADMAP item 6).
  double scaling_efficiency = 1.0;
  ServerStats stats;
};

void write_json(const std::string& path, const bac::driver::SweepConfig& cfg,
                const std::string& workload, const std::string& policy,
                const std::string& policy_display, const bac::Instance& ctx,
                int shards, const std::string& dispatch,
                const std::vector<RunRecord>& runs, bool costs_equal) {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("bacload: cannot open " + path + " for writing");
  os.precision(17);
  os << "{\n  \"bench\": \"bacload\",\n  \"seed\": " << cfg.seed
     << ",\n  \"trials\": 1,\n  \"threads\": ";
  int max_threads = 1;
  for (const RunRecord& r : runs) max_threads = std::max(max_threads, r.threads);
  os << max_threads << ",\n  \"experiments\": [\n    {\n      \"name\": "
        "\"load\",\n      \"records\": [";
  bool first = true;
  long long total_requests = 0;
  double total_wall_ms = 0;
  for (const RunRecord& r : runs) {
    os << (first ? "\n" : ",\n") << "        {\"workload\": ";
    first = false;
    bac::write_json_string(os, workload);
    os << ", \"policy\": ";
    bac::write_json_string(os, policy);
    os << ", \"policy_display\": ";
    bac::write_json_string(os, policy_display);
    os << ", \"n\": " << ctx.n_pages() << ", \"m\": " << ctx.blocks.n_blocks()
       << ", \"k\": " << ctx.k << ", \"beta\": " << ctx.blocks.beta()
       << ", \"shards\": " << shards << ", \"threads\": " << r.threads
       << ", \"dispatch\": ";
    bac::write_json_string(os, dispatch);
    os << ", \"cost\": ";
    bac::write_json_number(os, r.stats.total_cost());
    os << ", \"wall_ms\": ";
    bac::write_json_number(os, r.wall_ms);
    const std::pair<const char*, double> extras[] = {
        {"eviction_cost", r.stats.eviction_cost},
        {"fetch_cost", r.stats.fetch_cost},
        {"requests", static_cast<double>(r.stats.requests)},
        {"hits", static_cast<double>(r.stats.hits)},
        {"misses", static_cast<double>(r.stats.misses)},
        {"rps", r.rps},
        {"lat_p50_us", r.stats.lat_p50_us},
        {"lat_p99_us", r.stats.lat_p99_us},
        {"lat_p999_us", r.stats.latency_us.quantile(0.999)},
        {"lat_mean_us", r.stats.lat_mean_us},
        {"lat_max_us", r.stats.lat_max_us},
        {"lock_wait_p99_us", r.stats.lock_wait_us.quantile(0.99)},
        {"lock_wait_mean_us", r.stats.lock_wait_us.mean()},
        {"lock_wait_total_ms",
         r.stats.lock_wait_us.mean() *
             static_cast<double>(r.stats.lock_wait_us.count()) / 1000.0},
        {"speedup", r.speedup},
        {"scaling_efficiency", r.scaling_efficiency},
    };
    for (const auto& [key, value] : extras) {
      os << ", \"" << key << "\": ";
      bac::write_json_number(os, value);
    }
    os << "}";
    total_requests += r.stats.requests;
    total_wall_ms += r.wall_ms;
  }
  os << (first ? "]" : "\n      ]") << "\n    }\n  ],\n  \"aggregate\": "
     << "{\"runs\": " << runs.size() << ", \"requests\": " << total_requests
     << ", \"wall_ms\": ";
  bac::write_json_number(os, total_wall_ms);
  os << ", \"cost_equal_across_runs\": " << (costs_equal ? "true" : "false")
     << ", \"hardware_concurrency\": " << std::thread::hardware_concurrency()
     << "}\n}\n";
  if (!os.flush())
    throw std::runtime_error("bacload: short write to " + path);
}

int run(int argc, char** argv) {
  bac::driver::SweepConfig config;  // reused for workload parsing
  std::string policy_name;
  std::string workload;
  std::string dispatch = "shard";
  std::vector<int> thread_counts;
  int k = 0;
  int shards = 0;
  bool check_equivalence = false;
  bool json = false, quiet = false;
  std::string json_path = "load.json";
  bac::cli::ObsFlags obs;

  for (int i = 1; i < argc; ++i) {
    if (obs.handle(argc, argv, i)) continue;
    const std::string arg = argv[i];
    auto value = [&](const char* flag) {
      return bac::cli::flag_value(argc, argv, i, flag);
    };
    auto numeric = [&](const char* flag, unsigned long long max) {
      return bac::cli::flag_u64(argc, argv, i, flag, max);
    };
    if (arg == "--policy") {
      policy_name = value("--policy");
    } else if (arg == "--workload") {
      workload = value("--workload");
    } else if (arg == "--k") {
      k = static_cast<int>(numeric("--k", 1u << 30));
    } else if (arg == "--n") {
      config.n = static_cast<int>(numeric("--n", 1u << 30));
    } else if (arg == "--beta") {
      config.beta = static_cast<int>(numeric("--beta", 1u << 20));
    } else if (arg == "--T") {
      config.T = static_cast<long long>(numeric("--T", 2147483647ull));
    } else if (arg == "--seed") {
      config.seed = std::max(1ull, numeric("--seed", ~0ull));
    } else if (arg == "--shards") {
      shards = static_cast<int>(numeric("--shards", 1u << 20));
    } else if (arg == "--threads") {
      thread_counts = bac::cli::split_positive_ints(argv[0], value("--threads"),
                                                    "--threads", 4096);
    } else if (arg == "--dispatch") {
      dispatch = value("--dispatch");
      if (dispatch != "shard" && dispatch != "chunk") {
        std::fprintf(stderr, "%s: --dispatch wants shard|chunk, got '%s'\n",
                     argv[0], dispatch.c_str());
        return 2;
      }
    } else if (arg == "--check-equivalence") {
      check_equivalence = true;
    } else if (arg == "--csv-block-pages") {
      config.csv_block_pages =
          static_cast<int>(numeric("--csv-block-pages", 1u << 20));
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (policy_name.empty() || workload.empty() || k <= 0) {
    usage(argv[0]);
    return 2;
  }
  if (thread_counts.empty()) thread_counts = {1, 8};
  if (check_equivalence && dispatch != "shard") {
    std::fprintf(stderr,
                 "%s: --check-equivalence requires --dispatch shard "
                 "(chunked interleavings are nondeterministic)\n",
                 argv[0]);
    return 2;
  }

  const auto prototype = bac::make_policy(policy_name);

  // Materialize the workload once (partitioning needs random access);
  // every run replays the same sequence.
  auto source = bac::driver::make_workload_source(workload, config, k);
  bac::Instance ctx{source->context().blocks, {}, k};
  const std::vector<bac::PageId> requests = materialize(*source);
  if (requests.empty()) {
    std::fprintf(stderr, "%s: workload '%s' yielded no requests\n", argv[0],
                 workload.c_str());
    return 2;
  }

  if (shards == 0)
    shards = std::min(ConcurrentCache::max_shards(ctx), 64);

  if (!quiet)
    std::printf("%8s %8s %12s %12s %14s %10s %12s %10s %10s %8s %6s\n",
                "threads", "shards", "requests", "misses", "cost", "wall_ms",
                "req/s", "p50_us", "p99_us", "speedup", "eff");

  std::vector<RunRecord> runs;
  double base_rps = 0;
  for (const int n_threads : thread_counts) {
    // A fresh cache per run: every run starts cold from the same state.
    ConcurrentCache cache(ctx, *prototype, shards, config.seed);
    bac::obs::Span span(obs.trace(), "load/t" + std::to_string(n_threads));
    const double seconds =
        dispatch == "shard"
            ? bac::server::serve_partitioned(cache, requests, n_threads)
            : bac::server::serve_chunked(cache, requests, n_threads);
    RunRecord r;
    r.threads = n_threads;
    r.stats = cache.stats();
    // server_* event counters are identical for every shard-partitioned
    // run, so the exported sums stay thread-count invariant per run (the
    // CI metrics-smoke job diffs single-run counter sections).
    cache.export_metrics(obs.registry());
    span.num("threads", n_threads);
    span.num("requests", static_cast<double>(r.stats.requests));
    span.num("misses", static_cast<double>(r.stats.misses));
    span.num("cost", r.stats.total_cost());
    r.wall_ms = seconds * 1000.0;
    r.rps = seconds > 0 ? static_cast<double>(r.stats.requests) / seconds : 0;
    if (runs.empty()) base_rps = r.rps;
    r.speedup = base_rps > 0 ? r.rps / base_rps : 0.0;
    const double thread_ratio =
        static_cast<double>(n_threads) /
        static_cast<double>(runs.empty() ? n_threads : thread_counts.front());
    r.scaling_efficiency = thread_ratio > 0 ? r.speedup / thread_ratio : 0.0;
    if (!quiet)
      std::printf(
          "%8d %8d %12lld %12lld %14.2f %10.1f %12.0f %10.2f %10.2f %7.2fx "
          "%6.2f\n",
          r.threads, shards, r.stats.requests, r.stats.misses,
          r.stats.total_cost(), r.wall_ms, r.rps, r.stats.lat_p50_us,
          r.stats.lat_p99_us, r.speedup, r.scaling_efficiency);
    runs.push_back(r);
  }

  bool costs_equal = true;
  for (const RunRecord& r : runs) {
    if (r.stats.total_cost() != runs.front().stats.total_cost() ||
        r.stats.misses != runs.front().stats.misses)
      costs_equal = false;
  }

  if (json) {
    write_json(json_path, config, workload, policy_name, prototype->name(),
               ctx, shards, dispatch, runs, costs_equal);
    std::printf("[json: %s]\n", json_path.c_str());
  }
  if (!obs.write_metrics(argv[0], "bacload")) return 1;

  if (check_equivalence) {
    if (!costs_equal) {
      std::fprintf(stderr,
                   "bacload: FAIL — total cost differs across thread counts "
                   "(shard-partitioned dispatch should be bit-identical)\n");
      return 1;
    }
    std::printf(
        "equivalence OK: total cost %.17g bit-identical across %zu runs\n",
        runs.front().stats.total_cost(), runs.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bacload failed: %s\n", e.what());
    return 1;
  }
}
