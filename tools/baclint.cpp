// baclint — the repo-specific invariant linter (engine: src/lint/).
//
//   baclint --check src [--check tools ...]   scan trees (or single files)
//           [--json report.json]              machine-readable report
//           [--sarif report.sarif]            SARIF 2.1.0 (code scanning)
//           [--rule <name>]                   restrict to one rule/pass
//           [--verbose]                       also print allowed findings
//           [--list-rules]                    print rules + passes and exit
//
// Two engines share one report: the regex rule table scans each file's
// comment-free line view, and the semantic passes (lock-discipline,
// nondet-iteration, hot-path-alloc, layering) run over the token/scope
// models of the whole scanned corpus — lock annotations harvested from
// headers apply to every .cpp scanned with them.
//
// Exit status: 0 when every finding is allowed (or none), 1 when any
// violation stands, 2 on usage errors. Diagnostics are one line per
// finding — `path:line: [rule] offending text` plus an indented fix
// hint — so editors and CI annotate them directly.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "lint/lint.hpp"
#include "lint/model.hpp"
#include "lint/passes.hpp"
#include "lint/sarif.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --check <path> [--check <path> ...] "
               "[--json <report.json>] [--sarif <report.sarif>] "
               "[--rule <name> ...] [--verbose]\n"
               "       %s [--metrics <out.json|out.prom>] "
               "[--trace <out.jsonl>]\n"
               "       %s --list-rules\n",
               argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bac::lint;
  std::vector<std::string> roots;
  std::vector<std::string> only;
  std::string json_path;
  std::string sarif_path;
  bool verbose = false;
  bool list_rules = false;
  bac::cli::ObsFlags obs;

  for (int i = 1; i < argc; ++i) {
    if (obs.handle(argc, argv, i)) continue;
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "baclint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--check") {
      roots.emplace_back(next("--check"));
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--sarif") {
      sarif_path = next("--sarif");
    } else if (arg == "--rule") {
      only.emplace_back(next("--rule"));
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]) == 2 ? 0 : 0;
    } else {
      std::fprintf(stderr, "baclint: unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  // --rule filters rules and passes alike; every name must exist.
  auto selected = [&](const std::string& name) {
    if (only.empty()) return true;
    for (const std::string& n : only)
      if (n == name) return true;
    return false;
  };
  std::vector<Rule> rules;
  for (const Rule& r : default_rules())
    if (selected(r.name)) rules.push_back(r);
  std::vector<Pass> passes;
  for (const Pass& p : default_passes())
    if (selected(p.name)) passes.push_back(p);
  if (!only.empty() && rules.size() + passes.size() != only.size()) {
    std::fprintf(stderr,
                 "baclint: unknown rule in --rule (see --list-rules)\n");
    return 2;
  }

  if (list_rules) {
    for (const Rule& r : rules) {
      std::printf("%-26s %s\n", r.name.c_str(), r.summary.c_str());
      std::printf("%-26s hint: %s\n", "", r.hint.c_str());
    }
    for (const Pass& p : passes) {
      std::printf("%-26s [pass] %s\n", p.name.c_str(), p.summary.c_str());
      std::printf("%-26s hint: %s\n", "", p.hint.c_str());
    }
    return 0;
  }
  if (roots.empty()) return usage(argv[0]);

  // Both allowlists are merged: entries are keyed by path suffix, so
  // src entries never fire on tools/bench/tests files and vice versa.
  std::vector<AllowEntry> allows = default_allowlist();
  const auto& nonsrc = nonsrc_allowlist();
  allows.insert(allows.end(), nonsrc.begin(), nonsrc.end());

  try {
    std::vector<Finding> findings;
    std::vector<FileModel> corpus;
    long long files_scanned = 0;
    for (const std::string& root : roots) {
      bac::obs::Span root_span(obs.trace(), "lint/" + root);
      long long root_files = 0;
      for (const std::string& file : list_source_files(root)) {
        ++files_scanned;
        ++root_files;
        std::vector<std::string> lines = read_source_lines(file);
        auto fs = lint_lines(file, lines, rules, allows);
        findings.insert(findings.end(), fs.begin(), fs.end());
        corpus.push_back(build_file_model(file, std::move(lines)));
      }
      root_span.num("files", static_cast<double>(root_files));
    }
    {
      bac::obs::Span pass_span(obs.trace(), "lint/passes");
      auto fs = run_passes(corpus, passes, allows);
      findings.insert(findings.end(), fs.begin(), fs.end());
      pass_span.num("findings", static_cast<double>(fs.size()));
    }

    int violations = 0;
    for (const Finding& f : findings) {
      if (f.allowed) {
        if (verbose)
          std::printf("%s:%lld: note: [%s] allowed (%s): %s\n",
                      f.path.c_str(), f.line, f.rule.c_str(),
                      f.allow_reason.c_str(), f.text.c_str());
        continue;
      }
      ++violations;
      std::printf("%s:%lld: error: [%s] %s\n", f.path.c_str(), f.line,
                  f.rule.c_str(), f.text.c_str());
      std::printf("    hint: %s\n", f.hint.c_str());
    }

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "baclint: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      write_json_report(out, rules, passes, findings, files_scanned);
    }
    if (!sarif_path.empty()) {
      std::ofstream out(sarif_path);
      if (!out) {
        std::fprintf(stderr, "baclint: cannot write %s\n",
                     sarif_path.c_str());
        return 2;
      }
      write_sarif_report(out, rules, passes, findings);
    }

    std::printf(
        "baclint: %lld files, %zu rules, %zu passes, %zu findings "
        "(%d violations, %zu allowed)\n",
        files_scanned, rules.size(), passes.size(), findings.size(),
        violations, findings.size() - static_cast<std::size_t>(violations));
    auto& registry = obs.registry();
    registry.counter("lint_files_scanned_total")
        .inc(static_cast<std::uint64_t>(files_scanned));
    registry.counter("lint_findings_total").inc(findings.size());
    registry.counter("lint_violations_total")
        .inc(static_cast<std::uint64_t>(violations));
    if (!obs.write_metrics(argv[0], "baclint")) return 2;
    return violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "baclint: %s\n", e.what());
    return 2;
  }
}
