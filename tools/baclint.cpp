// baclint — the repo-specific invariant linter (engine: src/lint/).
//
//   baclint --check src [--check tools ...]   scan trees (or single files)
//           [--json report.json]              machine-readable report
//           [--rule <name>]                   restrict to one rule (repeat)
//           [--verbose]                       also print allowed findings
//           [--list-rules]                    print the rule table and exit
//
// Exit status: 0 when every finding is allowed (or none), 1 when any
// violation stands, 2 on usage errors. Diagnostics are one line per
// finding — `path:line: [rule] offending text` plus an indented fix
// hint — so editors and CI annotate them directly.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "lint/lint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --check <path> [--check <path> ...] "
               "[--json <report.json>] [--rule <name> ...] [--verbose]\n"
               "       %s [--metrics <out.json|out.prom>] "
               "[--trace <out.jsonl>]\n"
               "       %s --list-rules\n",
               argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bac::lint;
  std::vector<std::string> roots;
  std::vector<std::string> only_rules;
  std::string json_path;
  bool verbose = false;
  bool list_rules = false;
  bac::cli::ObsFlags obs;

  for (int i = 1; i < argc; ++i) {
    if (obs.handle(argc, argv, i)) continue;
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "baclint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--check") {
      roots.emplace_back(next("--check"));
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--rule") {
      only_rules.emplace_back(next("--rule"));
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]) == 2 ? 0 : 0;
    } else {
      std::fprintf(stderr, "baclint: unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  std::vector<Rule> rules;
  for (const Rule& r : default_rules()) {
    if (only_rules.empty()) {
      rules.push_back(r);
      continue;
    }
    for (const std::string& name : only_rules)
      if (r.name == name) {
        rules.push_back(r);
        break;
      }
  }
  if (!only_rules.empty() && rules.size() != only_rules.size()) {
    std::fprintf(stderr,
                 "baclint: unknown rule in --rule (see --list-rules)\n");
    return 2;
  }

  if (list_rules) {
    for (const Rule& r : rules) {
      std::printf("%-26s %s\n", r.name.c_str(), r.summary.c_str());
      std::printf("%-26s hint: %s\n", "", r.hint.c_str());
    }
    return 0;
  }
  if (roots.empty()) return usage(argv[0]);

  try {
    std::vector<Finding> findings;
    long long files_scanned = 0;
    for (const std::string& root : roots) {
      bac::obs::Span root_span(obs.trace(), "lint/" + root);
      long long root_files = 0;
      for (const std::string& file : list_source_files(root)) {
        ++files_scanned;
        ++root_files;
        auto fs = lint_file(file, rules, default_allowlist());
        findings.insert(findings.end(), fs.begin(), fs.end());
      }
      root_span.num("files", static_cast<double>(root_files));
    }

    int violations = 0;
    for (const Finding& f : findings) {
      if (f.allowed) {
        if (verbose)
          std::printf("%s:%lld: note: [%s] allowed (%s): %s\n",
                      f.path.c_str(), f.line, f.rule.c_str(),
                      f.allow_reason.c_str(), f.text.c_str());
        continue;
      }
      ++violations;
      std::printf("%s:%lld: error: [%s] %s\n", f.path.c_str(), f.line,
                  f.rule.c_str(), f.text.c_str());
      std::printf("    hint: %s\n", f.hint.c_str());
    }

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "baclint: cannot write %s\n",
                     json_path.c_str());
        return 2;
      }
      write_json_report(out, rules, findings, files_scanned);
    }

    std::printf(
        "baclint: %lld files, %zu rules, %zu findings (%d violations, "
        "%zu allowed)\n",
        files_scanned, rules.size(), findings.size(), violations,
        findings.size() - static_cast<std::size_t>(violations));
    auto& registry = obs.registry();
    registry.counter("lint_files_scanned_total")
        .inc(static_cast<std::uint64_t>(files_scanned));
    registry.counter("lint_findings_total").inc(findings.size());
    registry.counter("lint_violations_total")
        .inc(static_cast<std::uint64_t>(violations));
    if (!obs.write_metrics(argv[0], "baclint")) return 2;
    return violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "baclint: %s\n", e.what());
    return 2;
  }
}
