// bacsim: policy x workload x k sweep driver over streaming traces.
//
// Runs the grid sharded across the global thread pool, printing one table
// row per cell and (with --json) streaming one structured record per cell
// into a bench_main-schema JSON file as cells complete, followed by an
// aggregate block with total requests, wall time, and requests/sec.
//
//   bacsim --policies lru,block_lru,det_online
//          --workloads zipf0.9,scan,blocklocal --k 8,16,32,64
//          --json sweep.json
//
// Workloads are synthetic specs (zipf0.9, uniform, scan, blocklocal,
// phased — sized by --n/--beta/--T) or trace files (.bact binary, .csv
// key traces, v1 text). Traces stream: peak memory is independent of
// trace length. Randomized policies run --trials Monte-Carlo replays via
// the parallel simulate_mc.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/resource.h>

#include "algs/zoo.hpp"
#include "cli.hpp"
#include "driver/sweep.hpp"
#include "util/json.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace {

using bac::driver::SweepConfig;
using bac::driver::SweepRecord;
using bac::driver::SweepTotals;

void usage(const char* argv0) {
  std::printf(
      "usage: %s --policies <a,b,..> --workloads <w,..> --k <k1,k2,..>\n"
      "          [--n <pages>] [--beta <block size>] [--T <requests>]\n"
      "          [--seed <u64>] [--trials <n>] [--threads <n>] [--mrc]\n"
      "          [--csv-block-pages <n>] [--json [path]] [--quiet]\n"
      "          [--metrics <out.json|out.prom>] [--trace <out.jsonl>]\n"
      "          [--list-policies]\n"
      "\n"
      "  --policies   policy registry names (see --list-policies)\n"
      "  --workloads  zipf[a] | uniform | scan | blocklocal | phased,\n"
      "               or trace paths (.bact binary, .csv key trace, v1 text)\n"
      "  --k          cache sizes to sweep\n"
      "  --n/--beta/--T   synthetic workload shape (default 4096/8/200000)\n"
      "  --trials     Monte-Carlo trials for randomized policies (default 5)\n"
      "  --mrc        attach the LRU miss-ratio curve at the swept k values\n"
      "  --json       stream one record per grid cell (default sweep.json)\n"
      "  --metrics    write event counters + histograms at exit (obs JSON,\n"
      "               or Prometheus text when the path ends in .prom)\n"
      "  --trace      stream sweep/cell JSONL events as cells complete\n",
      argv0);
}

/// Streams the bench_main JSON schema cell by cell: header upfront,
/// records appended under experiments[0] as they complete, aggregate
/// written at close.
class JsonStream {
 public:
  JsonStream(const std::string& path, const SweepConfig& config,
             unsigned threads)
      : os_(path), path_(path) {
    if (!os_)
      throw std::runtime_error("bacsim: cannot open " + path +
                               " for writing");
    os_.precision(17);
    os_ << "{\n  \"bench\": \"bacsim\",\n  \"seed\": " << config.seed
        << ",\n  \"trials\": " << config.trials << ",\n  \"threads\": "
        << threads << ",\n  \"experiments\": [\n    {\n      \"name\": "
           "\"sweep\",\n      \"records\": [";
  }

  void add(const SweepRecord& r) {
    bac::MutexLock lock(mutex_);
    os_ << (first_ ? "\n" : ",\n") << "        {\"workload\": ";
    first_ = false;
    bac::write_json_string(os_, r.workload);
    os_ << ", \"policy\": ";
    bac::write_json_string(os_, r.policy);
    os_ << ", \"policy_display\": ";
    bac::write_json_string(os_, r.policy_display);
    os_ << ", \"n\": " << r.n << ", \"m\": " << r.m << ", \"k\": " << r.k
        << ", \"beta\": " << r.beta << ", \"cost\": ";
    bac::write_json_number(os_, r.cost);
    os_ << ", \"wall_ms\": ";
    bac::write_json_number(os_, r.wall_ms);
    const std::pair<const char*, double> extras[] = {
        {"eviction_cost", r.eviction_cost},
        {"fetch_cost", r.fetch_cost},
        {"stddev_cost", r.stddev_cost},
        {"requests", static_cast<double>(r.requests)},
        {"misses", static_cast<double>(r.misses)},
        {"trials", static_cast<double>(r.trials)},
        {"rps", r.rps},
        {"step_cost_p50", r.step_cost_p50},
        {"step_cost_p90", r.step_cost_p90},
        {"step_cost_p99", r.step_cost_p99},
        {"step_cost_max", r.step_cost_max},
    };
    for (const auto& [key, value] : extras) {
      os_ << ", \"" << key << "\": ";
      bac::write_json_number(os_, value);
    }
    for (const auto& [k, miss] : r.miss_curve) {
      os_ << ", \"mrc_k" << k << "\": ";
      bac::write_json_number(os_, miss);
    }
    os_ << "}";
    os_.flush();  // records land on disk as cells complete
  }

  void close(const SweepTotals& totals, double max_rss_mb) {
    bac::MutexLock lock(mutex_);
    os_ << (first_ ? "]" : "\n      ]") << "\n    }\n  ],\n  \"aggregate\": "
        << "{\"cells\": " << totals.cells
        << ", \"requests\": " << totals.requests << ", \"wall_ms\": ";
    bac::write_json_number(os_, totals.wall_ms);
    os_ << ", \"rps\": ";
    bac::write_json_number(os_, totals.rps);
    os_ << ", \"max_rss_mb\": ";
    bac::write_json_number(os_, max_rss_mb);
    os_ << "}\n}\n";
    if (!os_.flush())
      throw std::runtime_error("bacsim: short write to " + path_);
  }

 private:
  std::ofstream os_ GUARDED_BY(mutex_);
  std::string path_;
  mutable bac::Mutex mutex_;
  bool first_ GUARDED_BY(mutex_) = true;
};

double max_rss_mb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux
}

int run(int argc, char** argv) {
  SweepConfig config;
  config.trials = 5;
  int threads = 0;
  bool json = false, quiet = false;
  std::string json_path = "sweep.json";
  bac::cli::ObsFlags obs;

  for (int i = 1; i < argc; ++i) {
    if (obs.handle(argc, argv, i)) continue;
    const std::string arg = argv[i];
    auto value = [&](const char* flag) {
      return bac::cli::flag_value(argc, argv, i, flag);
    };
    auto numeric = [&](const char* flag, unsigned long long max) {
      return bac::cli::flag_u64(argc, argv, i, flag, max);
    };
    if (arg == "--policies") {
      config.policies = bac::cli::split_list(value("--policies"));
    } else if (arg == "--workloads") {
      config.workloads = bac::cli::split_list(value("--workloads"));
    } else if (arg == "--k") {
      config.ks = bac::cli::split_positive_ints(argv[0], value("--k"), "--k",
                                                1 << 30);
    } else if (arg == "--n") {
      config.n = static_cast<int>(numeric("--n", 1u << 30));
    } else if (arg == "--beta") {
      config.beta = static_cast<int>(numeric("--beta", 1u << 20));
    } else if (arg == "--T") {
      // Time is 32-bit in the policy layer; the simulator refuses longer
      // traces, so fail at the flag instead.
      config.T = static_cast<long long>(numeric("--T", 2147483647ull));
    } else if (arg == "--seed") {
      config.seed = std::max(1ull, numeric("--seed", ~0ull));
    } else if (arg == "--trials") {
      config.trials = static_cast<int>(numeric("--trials", 1'000'000));
    } else if (arg == "--threads") {
      threads = static_cast<int>(numeric("--threads", 4096));
    } else if (arg == "--csv-block-pages") {
      config.csv_block_pages =
          static_cast<int>(numeric("--csv-block-pages", 1u << 20));
    } else if (arg == "--mrc") {
      config.mrc = true;
    } else if (arg == "--json") {
      json = true;
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
        json_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--list-policies") {
      for (const std::string& name : bac::policy_names())
        std::printf("%s\n", name.c_str());
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (config.policies.empty() || config.workloads.empty() ||
      config.ks.empty()) {
    usage(argv[0]);
    return 2;
  }

  if (threads > 0)
    bac::configure_global_pool(static_cast<std::size_t>(threads));
  const unsigned resolved_threads =
      threads > 0 ? static_cast<unsigned>(threads)
                  : std::max(1u, std::thread::hardware_concurrency());

  std::unique_ptr<JsonStream> stream;
  if (json)
    stream = std::make_unique<JsonStream>(json_path, config,
                                          resolved_threads);

  config.metrics = &obs.registry();
  config.trace = obs.trace();

  bac::Mutex print_mutex;
  if (!quiet)
    std::printf("%-22s %-14s %6s %12s %12s %10s %12s\n", "policy", "workload",
                "k", "cost", "misses", "wall_ms", "req/s");
  const SweepTotals totals = bac::driver::run_sweep(
      config, [&](const SweepRecord& r) {
        if (stream) stream->add(r);
        if (!quiet) {
          bac::MutexLock lock(print_mutex);
          std::printf("%-22s %-14s %6d %12.2f %12lld %10.1f %12.0f\n",
                      r.policy.c_str(), r.workload.c_str(), r.k, r.cost,
                      r.misses, r.wall_ms, r.rps);
        }
      });

  const double rss = max_rss_mb();
  if (stream) {
    stream->close(totals, rss);
    std::printf("[json: %s]\n", json_path.c_str());
  }
  obs.registry().gauge("max_rss_mb").set(rss);
  if (!obs.write_metrics(argv[0], "bacsim")) return 1;
  std::printf(
      "%lld cells, %lld requests in %.1f ms  (%.0f requests/sec, peak rss "
      "%.1f MB)\n",
      totals.cells, totals.requests, totals.wall_ms, totals.rps, rss);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bacsim failed: %s\n", e.what());
    return 1;
  }
}
