// Concurrency suite for the sharded data-plane (src/server): sharding
// invariants, single-shard equivalence with the simulator, thread-count
// invariance of the total block-aware cost under shard-partitioned
// dispatch, and a contended multi-thread stress run (the CI TSan job
// replays this suite via the `concurrency` label).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include <memory>
#include <set>
#include <vector>

#include "algs/policies/classical.hpp"
#include "algs/det_online.hpp"
#include "core/request_source.hpp"
#include "core/simulator.hpp"
#include "server/concurrent_cache.hpp"
#include "server/dispatch.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"

namespace bac {
namespace {

using server::CacheShard;
using server::ConcurrentCache;
using server::ServerStats;
using server::ShardSnapshot;

std::vector<PageId> materialize(RequestSource& source) {
  std::vector<PageId> out;
  PageId p = 0;
  while (source.next(p)) out.push_back(p);
  return out;
}

/// Small zipf workload: 256 pages in blocks of 4, k = 32, 20k requests.
struct Workload {
  Instance inst;
  std::vector<PageId> requests;
};

Workload zipf_workload(long long T = 20000) {
  auto src = SyntheticSource::zipf(256, 4, 32, T, 0.9, 7);
  std::vector<PageId> requests = materialize(*src);
  Instance inst{src->context().blocks, requests, src->context().k};
  return {std::move(inst), std::move(requests)};
}

/// Minimal correct online policy whose clone() stays nullptr.
class NonCloneablePolicy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "NonCloneable"; }
  void reset(const Instance&) override {}
  void on_request(Time, PageId p, CacheOps& cache) override {
    cache.fetch(p);
    while (cache.size() > cache.capacity()) {
      for (PageId q : cache.pages()) {
        if (q != p) {
          cache.evict(q);
          break;
        }
      }
    }
  }
};

TEST(ConcurrentCache, BlocksNeverStraddleShards) {
  const Workload w = zipf_workload(1);
  ConcurrentCache cache(w.inst, LruPolicy(), 5);
  const BlockMap& blocks = w.inst.blocks;
  for (BlockId b = 0; b < blocks.n_blocks(); ++b) {
    std::set<int> owners;
    for (PageId p : blocks.pages_in(b)) owners.insert(cache.shard_of(p));
    EXPECT_EQ(owners.size(), 1u) << "block " << b << " straddles shards";
  }
}

TEST(ConcurrentCache, CapacitiesSumToTotalAndRespectBeta) {
  const Workload w = zipf_workload(1);
  for (const int shards : {1, 2, 3, 7, 8}) {
    ConcurrentCache cache(w.inst, LruPolicy(), shards);
    int total = 0;
    for (int s = 0; s < cache.n_shards(); ++s) {
      const ShardSnapshot snap = cache.shard_snapshot(s);
      EXPECT_GE(snap.capacity, w.inst.blocks.beta());
      total += snap.capacity;
    }
    EXPECT_EQ(total, w.inst.k) << "shards=" << shards;
  }
}

TEST(ConcurrentCache, MaxShardsKeepsPerShardCapacityFeasible) {
  const Workload w = zipf_workload(1);
  const int max = ConcurrentCache::max_shards(w.inst);
  EXPECT_EQ(max, w.inst.k / w.inst.blocks.beta());
  ConcurrentCache ok(w.inst, LruPolicy(), max);  // must construct
  EXPECT_EQ(ok.n_shards(), max);
  EXPECT_THROW(ConcurrentCache(w.inst, LruPolicy(), max + 1),
               std::invalid_argument);
}

TEST(ConcurrentCache, RejectsBadConfigs) {
  const Workload w = zipf_workload(1);
  EXPECT_THROW(ConcurrentCache(w.inst, LruPolicy(), 0),
               std::invalid_argument);
  EXPECT_THROW(ConcurrentCache(w.inst, BeladyPolicy(), 1),
               std::invalid_argument)
      << "offline policies cannot serve a live stream";
  EXPECT_THROW(ConcurrentCache(w.inst, NonCloneablePolicy(), 2),
               std::invalid_argument);
}

TEST(ConcurrentCache, RejectsOutOfRangePages) {
  const Workload w = zipf_workload(1);
  ConcurrentCache cache(w.inst, LruPolicy(), 2);
  EXPECT_THROW(cache.get(-1), std::out_of_range);
  EXPECT_THROW(cache.get(w.inst.n_pages()), std::out_of_range);
  EXPECT_THROW((void)cache.shard_of(w.inst.n_pages()), std::out_of_range);
}

// With a single shard the data-plane is the simulator's serve loop behind
// a mutex: same policy, same order, same meter — costs must match exactly.
TEST(ConcurrentCache, SingleShardMatchesSimulator) {
  const Workload w = zipf_workload();
  for (const auto& make : {+[]() -> std::unique_ptr<OnlinePolicy> {
                             return std::make_unique<LruPolicy>();
                           },
                           +[]() -> std::unique_ptr<OnlinePolicy> {
                             return std::make_unique<DetOnlineBlockAware>();
                           },
                           +[]() -> std::unique_ptr<OnlinePolicy> {
                             return std::make_unique<BlockLruPolicy>(false);
                           }}) {
    const auto policy = make();
    SimOptions options;
    options.seed = 1;
    const RunResult expected = simulate(w.inst, *policy, options);

    ConcurrentCache cache(w.inst, *policy, 1, 1);
    for (const PageId p : w.requests) cache.get(p);
    const ServerStats stats = cache.stats();
    EXPECT_EQ(stats.requests, expected.requests);
    EXPECT_EQ(stats.misses, expected.misses);
    EXPECT_EQ(stats.eviction_cost, expected.eviction_cost);
    EXPECT_EQ(stats.fetch_cost, expected.fetch_cost);
    EXPECT_EQ(stats.evict_block_events, expected.evict_block_events);
    EXPECT_EQ(stats.fetch_block_events, expected.fetch_block_events);
  }
}

// The determinism contract of the data-plane: shard-partitioned dispatch
// produces bit-identical totals at every thread count.
TEST(ConcurrentCache, PartitionedDispatchIsThreadCountInvariant) {
  const Workload w = zipf_workload();
  const int shards = 8;
  ServerStats baseline;
  bool have_baseline = false;
  for (const int threads : {1, 2, 5, 8}) {
    ConcurrentCache cache(w.inst, LruPolicy(), shards, 42);
    server::serve_partitioned(cache, w.requests, threads);
    const ServerStats stats = cache.stats();
    EXPECT_EQ(stats.requests,
              static_cast<long long>(w.requests.size()));
    if (!have_baseline) {
      baseline = stats;
      have_baseline = true;
      continue;
    }
    EXPECT_EQ(stats.eviction_cost, baseline.eviction_cost)
        << "threads=" << threads;
    EXPECT_EQ(stats.fetch_cost, baseline.fetch_cost) << "threads=" << threads;
    EXPECT_EQ(stats.hits, baseline.hits) << "threads=" << threads;
    EXPECT_EQ(stats.misses, baseline.misses) << "threads=" << threads;
    EXPECT_EQ(stats.evict_block_events, baseline.evict_block_events);
    EXPECT_EQ(stats.fetch_block_events, baseline.fetch_block_events);
    EXPECT_EQ(stats.evicted_pages, baseline.evicted_pages);
    EXPECT_EQ(stats.fetched_pages, baseline.fetched_pages);
  }
}

// Contended stress: chunked dispatch hits every shard from every worker.
// The interleaving is nondeterministic, but conservation laws are not:
// every request is served exactly once, capacity is never exceeded, and
// the aggregate equals the sum of the shard snapshots. Under the CI TSan
// build this doubles as the data-race check on the shard locking.
TEST(ConcurrentCache, ChunkedStressKeepsInvariants) {
  const Workload w = zipf_workload(30000);
  ConcurrentCache cache(w.inst, LruPolicy(), 4, 11);
  server::serve_chunked(cache, w.requests, 8);

  long long requests = 0, hits = 0;
  Cost evict = 0, fetch = 0;
  for (int s = 0; s < cache.n_shards(); ++s) {
    const ShardSnapshot snap = cache.shard_snapshot(s);
    EXPECT_LE(snap.cached_pages, snap.capacity);
    EXPECT_EQ(snap.requests, snap.hits + snap.misses);
    requests += snap.requests;
    hits += snap.hits;
    evict += snap.eviction_cost;
    fetch += snap.fetch_cost;
  }
  EXPECT_EQ(requests, static_cast<long long>(w.requests.size()));

  const ServerStats stats = cache.stats();
  EXPECT_EQ(stats.requests, requests);
  EXPECT_EQ(stats.hits, hits);
  EXPECT_EQ(stats.eviction_cost, evict);
  EXPECT_EQ(stats.fetch_cost, fetch);
  EXPECT_EQ(stats.total_cost(), evict + fetch);
}

TEST(ConcurrentCache, LatencySketchesPopulate) {
  const Workload w = zipf_workload(2000);
  ConcurrentCache cache(w.inst, LruPolicy(), 4);
  server::serve_partitioned(cache, w.requests, 2);
  const ServerStats stats = cache.stats();
  EXPECT_GT(stats.lat_max_us, 0.0);
  EXPECT_GE(stats.lat_p99_us, 0.0);
  EXPECT_GE(stats.lat_p50_us, 0.0);
  EXPECT_GE(stats.lat_max_us, stats.lat_mean_us);
  // One latency sample per REQUEST, preserved by the shard merge; the
  // lock-wait histogram records one sample per get_batch call.
  EXPECT_EQ(stats.latency_us.count(),
            static_cast<std::uint64_t>(stats.requests));
  EXPECT_GE(stats.lock_wait_us.count(), 1u);
}

/// LRU-less minimal policy that busy-waits ~500us on exactly one request
/// (by arrival order) — a synthetic straggler for the latency tests.
class OneSlowRequestPolicy final : public OnlinePolicy {
 public:
  explicit OneSlowRequestPolicy(int slow_index) : slow_(slow_index) {}
  [[nodiscard]] std::string name() const override { return "OneSlow"; }
  void reset(const Instance&) override {}
  void on_request(Time, PageId p, CacheOps& cache) override {
    if (++calls_ == slow_) {
      const Stopwatch spin;
      while (spin.micros() < 500.0) {
      }
    }
    cache.fetch(p);
    while (cache.size() > cache.capacity()) {
      for (PageId q : cache.pages()) {
        if (q != p) {
          cache.evict(q);
          break;
        }
      }
    }
  }

 private:
  int slow_;
  int calls_ = 0;
};

// The per-request recording pin: one ~500us straggler inside a 512-wide
// batch must surface in the tail of the latency histogram. The old
// batch-mean recording (one sample = batch total / n) diluted even the
// max 512-fold (~1us), so these bounds fail against it.
TEST(CacheShard, OneSlowRequestInABatchMovesTheTail) {
  auto src = SyntheticSource::zipf(64, 4, 16, 512, 0.9, 5);
  const std::vector<PageId> requests = materialize(*src);
  const Instance header{src->context().blocks, {}, src->context().k};
  CacheShard shard(header, std::make_unique<OneSlowRequestPolicy>(300), 1);
  shard.get_batch(requests.data(), static_cast<int>(requests.size()));

  const ShardSnapshot snap = shard.snapshot();
  EXPECT_EQ(snap.requests, 512);
  EXPECT_EQ(snap.latency_us.count(), 512u);
  // Rank 511 of 512 is the straggler itself: p999 and max must both see
  // it (max is exact; the quantile is a log-bucket midpoint, <= ~3% off).
  EXPECT_GE(snap.latency_us.max(), 400.0);
  EXPECT_GE(snap.latency_us.quantile(0.999), 300.0);
  EXPECT_GE(snap.lat_max_us, 400.0);
  // The bulk of the batch stays fast: the straggler must not drag the
  // median (it would under any form of batch averaging).
  EXPECT_LT(snap.latency_us.quantile(0.5), 250.0);
}

TEST(ConcurrentCache, EmptyCacheReportsNaNLatencies) {
  const Workload w = zipf_workload(1);
  ConcurrentCache cache(w.inst, LruPolicy(), 3);
  const ServerStats stats = cache.stats();
  EXPECT_EQ(stats.requests, 0);
  EXPECT_EQ(stats.total_cost(), 0.0);
  // No requests -> no latency distribution. The derived fields follow
  // the repo-wide empty-histogram convention (NaN, not a fake 0 us
  // observation), matching obs::Histogram::mean()/max().
  EXPECT_TRUE(std::isnan(stats.lat_p50_us));
  EXPECT_TRUE(std::isnan(stats.lat_p99_us));
  EXPECT_TRUE(std::isnan(stats.lat_mean_us));
  EXPECT_TRUE(std::isnan(stats.lat_max_us));
  // Per-shard snapshots follow the same convention...
  const ShardSnapshot snap = cache.shard_snapshot(0);
  EXPECT_TRUE(std::isnan(snap.lat_p50_us));
  EXPECT_TRUE(std::isnan(snap.lat_max_us));
  // ...and the JSON layer renders the NaN as null, so emitters that
  // pass lat_* through write_json_number stay valid JSON.
  std::ostringstream os;
  write_json_number(os, stats.lat_p50_us);
  EXPECT_EQ(os.str(), "null");
}

// Randomized policies: per-shard seeds are (seed + shard), independent of
// the dispatch, so even Marking is thread-count invariant under
// partitioned dispatch.
TEST(ConcurrentCache, RandomizedPolicyStillThreadCountInvariant) {
  const Workload w = zipf_workload(10000);
  Cost baseline = -1;
  for (const int threads : {1, 4}) {
    ConcurrentCache cache(w.inst, MarkingPolicy(), 4, 99);
    server::serve_partitioned(cache, w.requests, threads);
    const Cost total = cache.stats().total_cost();
    if (baseline < 0)
      baseline = total;
    else
      EXPECT_EQ(total, baseline);
  }
}

}  // namespace
}  // namespace bac
