// Tests for Algorithm 1 (deterministic k-competitive online, Theorem 3.3):
// feasibility, dual feasibility, primal <= k * dual, dual <= OPT, and the
// expected advantage over block-oblivious baselines.
#include <gtest/gtest.h>

#include "algs/policies/classical.hpp"
#include "algs/det_online.hpp"
#include "algs/opt.hpp"
#include "core/simulator.hpp"
#include "trace/adversarial.hpp"
#include "trace/generators.hpp"

namespace bac {
namespace {

TEST(DetOnline, FeasibleOnRandomTraces) {
  Xoshiro256pp rng(51);
  for (int trial = 0; trial < 5; ++trial) {
    const Instance inst = make_instance(
        24, 4, 8, zipf_trace(24, 400, 0.8, rng.substream(trial)));
    DetOnlineBlockAware alg;
    const RunResult r = simulate(inst, alg);  // throws on violation
    EXPECT_EQ(r.violations, 0);
    EXPECT_DOUBLE_EQ(r.eviction_cost, alg.primal_cost())
        << "meter and internal accounting must agree";
  }
}

TEST(DetOnline, DualIsFeasible) {
  Xoshiro256pp rng(52);
  const Instance inst = make_instance(
      18, 3, 6, zipf_trace(18, 600, 1.0, rng));
  DetOnlineBlockAware alg;
  simulate(inst, alg);
  EXPECT_LE(alg.max_load_ratio(), 1.0 + 1e-9)
      << "some dual constraint got violated";
}

TEST(DetOnline, PrimalAtMostKTimesDual) {
  Xoshiro256pp rng(53);
  for (int trial = 0; trial < 6; ++trial) {
    const int k = 4 + 2 * trial;
    const Instance inst = make_instance(
        3 * k, 2, k, uniform_trace(3 * k, 500, rng.substream(trial)));
    DetOnlineBlockAware alg;
    simulate(inst, alg);
    if (alg.dual_objective() > 0) {
      EXPECT_LE(alg.primal_cost(),
                static_cast<double>(k) * alg.dual_objective() + 1e-6)
          << "Theorem 3.3 bound violated at k=" << k;
    } else {
      EXPECT_DOUBLE_EQ(alg.primal_cost(), 0.0);
    }
  }
}

TEST(DetOnline, DualLowerBoundsExactOpt) {
  Xoshiro256pp rng(54);
  for (int trial = 0; trial < 6; ++trial) {
    const Instance inst = make_instance(
        8, 2, 4, uniform_trace(8, 30, rng.substream(trial)));
    DetOnlineBlockAware alg;
    simulate(inst, alg);
    const OptResult opt = exact_opt_eviction(inst);
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(alg.dual_objective(), opt.cost + 1e-6)
        << "dual must certify a valid lower bound (trial " << trial << ")";
  }
}

TEST(DetOnline, WeightedDualLowerBoundsOpt) {
  Xoshiro256pp rng(55);
  for (int trial = 0; trial < 4; ++trial) {
    auto costs = log_uniform_costs(4, 8.0, rng.substream(100 + trial));
    Instance inst = make_weighted_instance(
        8, 2, 4, uniform_trace(8, 30, rng.substream(trial)), std::move(costs));
    DetOnlineBlockAware alg;
    simulate(inst, alg);
    const OptResult opt = exact_opt_eviction(inst);
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(alg.dual_objective(), opt.cost + 1e-6);
    EXPECT_LE(alg.max_load_ratio(), 1.0 + 1e-9);
  }
}

TEST(DetOnline, BeatsLruEvictionCostWithLargeBlocks) {
  // Block-local workload with beta = 8: batching should win by a clear
  // factor in the eviction model.
  const BlockMap blocks = BlockMap::contiguous(128, 8);
  auto req = block_local_trace(blocks, 8000, 0.8, 0.9, Xoshiro256pp(56));
  Instance inst{blocks, std::move(req), 32};
  DetOnlineBlockAware alg;
  LruPolicy lru;
  const double ba = simulate(inst, alg).eviction_cost;
  const double classical = simulate(inst, lru).eviction_cost;
  EXPECT_LT(ba, classical * 0.6)
      << "Algorithm 1 should batch far better than LRU";
}

TEST(DetOnline, NoEvictionsWhenEverythingFits) {
  const Instance inst = make_instance(6, 2, 6, scan_trace(6, 30));
  DetOnlineBlockAware alg;
  const RunResult r = simulate(inst, alg);
  EXPECT_DOUBLE_EQ(r.eviction_cost, 0.0);
  EXPECT_DOUBLE_EQ(alg.dual_objective(), 0.0);
}

TEST(DetOnline, BetaOneBehavesLikeWeightedPaging) {
  // With singleton blocks the model is classic weighted paging; Algorithm 1
  // must stay k-competitive against exact OPT.
  Xoshiro256pp rng(57);
  for (int trial = 0; trial < 4; ++trial) {
    const int n = 8, k = 4;
    Instance inst = make_instance(n, 1, k,
                                  zipf_trace(n, 40, 0.6, rng.substream(trial)));
    DetOnlineBlockAware alg;
    const RunResult r = simulate(inst, alg);
    const OptResult opt = exact_opt_eviction(inst);
    ASSERT_TRUE(opt.exact);
    if (opt.cost > 0) {
      EXPECT_LE(r.eviction_cost, static_cast<double>(k) * opt.cost + 1e-6);
    }
  }
}

TEST(DetOnline, RatioToOptWithinKOnSmallInstances) {
  Xoshiro256pp rng(58);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 9, beta = 3, k = 3 + static_cast<int>(rng.below(3));
    Instance inst = make_instance(
        n, beta, k, uniform_trace(n, 40, rng.substream(trial)));
    DetOnlineBlockAware alg;
    const RunResult r = simulate(inst, alg);
    const OptResult opt = exact_opt_eviction(inst);
    ASSERT_TRUE(opt.exact);
    if (opt.cost > 1e-9)
      EXPECT_LE(r.eviction_cost / opt.cost, static_cast<double>(k) + 1e-6)
          << "k-competitiveness violated (trial " << trial << ")";
    else
      EXPECT_DOUBLE_EQ(r.eviction_cost, 0.0);
  }
}

}  // namespace
}  // namespace bac
