// The differential fuzz-verification subsystem: instance generation,
// trace mutators, the shrinker, every oracle family running clean over
// fuzz seeds, and the end-to-end demo that an injected off-by-one
// eviction bug is caught, shrunk, and reproduced from its artifact.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "algs/policies/classical.hpp"
#include "algs/zoo.hpp"
#include "core/simulator.hpp"
#include "trace/bact.hpp"
#include "trace/generators.hpp"
#include "trace/mutators.hpp"
#include "util/thread_pool.hpp"
#include "verify/fuzz.hpp"
#include "verify/gen.hpp"
#include "verify/oracles.hpp"
#include "verify/reference_policies.hpp"
#include "verify/shrink.hpp"

namespace bac {
namespace {

// Real parallelism for the mc_equivalence / concurrency oracles even on
// single-core CI runners.
[[maybe_unused]] const bool g_pool_sized = [] {
  configure_global_pool(4);
  return true;
}();

// --- generator --------------------------------------------------------------

TEST(FuzzGen, DeterministicAndValid) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const verify::GeneratedInstance a = verify::random_instance(seed);
    const verify::GeneratedInstance b = verify::random_instance(seed);
    EXPECT_EQ(a.inst.requests, b.inst.requests) << "seed " << seed;
    EXPECT_EQ(a.inst.k, b.inst.k);
    EXPECT_EQ(a.descriptor, b.descriptor);
    EXPECT_NO_THROW(a.inst.validate()) << a.descriptor;
  }
}

TEST(FuzzGen, StreamingTwinYieldsTheMaterializedRequests) {
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 120 && checked < 10; ++seed) {
    const verify::GeneratedInstance gi = verify::random_instance(seed);
    if (!gi.streaming_twin) continue;
    ++checked;
    const auto source = gi.streaming_twin();
    std::vector<PageId> streamed;
    PageId p = 0;
    while (source->next(p)) streamed.push_back(p);
    EXPECT_EQ(streamed, gi.inst.requests) << gi.descriptor;
    EXPECT_EQ(source->context().k, gi.inst.k);
  }
  EXPECT_GE(checked, 5) << "generator should produce twinned shapes often";
}

TEST(FuzzGen, CoversTheEdgeShapes) {
  bool saw_k_eq_beta = false, saw_t0 = false, saw_t_lt_k = false,
       saw_single_block = false, saw_singleton = false;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const Instance& inst = verify::random_instance(seed).inst;
    saw_k_eq_beta |= inst.k == inst.blocks.beta();
    saw_t0 |= inst.horizon() == 0;
    saw_t_lt_k |= inst.horizon() < inst.k;
    saw_single_block |= inst.blocks.n_blocks() == 1;
    saw_singleton |= inst.blocks.beta() == 1 && inst.n_pages() > 1;
  }
  EXPECT_TRUE(saw_k_eq_beta);
  EXPECT_TRUE(saw_t0);
  EXPECT_TRUE(saw_t_lt_k);
  EXPECT_TRUE(saw_single_block);
  EXPECT_TRUE(saw_singleton);
}

// --- mutators ---------------------------------------------------------------

TEST(Mutators, KeepPrefixTruncatesAndShares) {
  const Instance inst{BlockMap::contiguous(8, 2), {0, 1, 2, 3, 4, 5}, 4};
  const Instance cut = keep_prefix(inst, 3);
  EXPECT_EQ(cut.requests, (std::vector<PageId>{0, 1, 2}));
  EXPECT_EQ(cut.k, 4);
  EXPECT_TRUE(cut.blocks.shares_structure(inst.blocks));
  EXPECT_EQ(keep_prefix(inst, 99).requests, inst.requests);
  EXPECT_THROW(keep_prefix(inst, -1), std::invalid_argument);
}

TEST(Mutators, DropBlockRenumbersPagesAndFiltersRequests) {
  // Blocks: {0,1} {2,3} {4,5}; drop middle block 1.
  const Instance inst{BlockMap::contiguous(6, 2), {0, 2, 4, 3, 5, 1, 2}, 2};
  const Instance cut = drop_block(inst, 1);
  EXPECT_EQ(cut.n_pages(), 4);
  EXPECT_EQ(cut.blocks.n_blocks(), 2);
  // Pages 4,5 renumber to 2,3; requests to old pages 2,3 disappear.
  EXPECT_EQ(cut.requests, (std::vector<PageId>{0, 2, 3, 1}));
  EXPECT_EQ(cut.blocks.block_of(2), 1);
  EXPECT_DOUBLE_EQ(cut.blocks.cost(1), inst.blocks.cost(2));
  EXPECT_THROW(drop_block(inst, 9), std::invalid_argument);
  const Instance one{BlockMap::contiguous(2, 2), {0}, 2};
  EXPECT_THROW(drop_block(one, 0), std::invalid_argument);
}

TEST(Mutators, WithKValidates) {
  const Instance inst{BlockMap::contiguous(6, 2), {0, 1}, 4};
  EXPECT_EQ(with_k(inst, 2).k, 2);
  EXPECT_TRUE(with_k(inst, 2).blocks.shares_structure(inst.blocks));
  EXPECT_THROW(with_k(inst, 1), std::invalid_argument);  // k < beta
  EXPECT_THROW(with_k(inst, 0), std::invalid_argument);
}

// --- shrinker ---------------------------------------------------------------

TEST(Shrink, ConvergesToAMinimalFailingInstance) {
  // Contrived monotone failure: "the trace still has >= 5 requests".
  const Instance start{BlockMap::contiguous(24, 3), [] {
                         std::vector<PageId> r;
                         for (int i = 0; i < 200; ++i)
                           r.push_back(static_cast<PageId>(i % 24));
                         return r;
                       }(),
                       12};
  const verify::ShrinkOutcome outcome = verify::shrink_instance(
      start, [](const Instance& c) { return c.horizon() >= 5; });
  EXPECT_TRUE(outcome.changed);
  EXPECT_EQ(outcome.inst.horizon(), 5) << "halving + peeling must bottom out";
  EXPECT_EQ(outcome.inst.k, outcome.inst.blocks.beta())
      << "k shrinks to the beta floor";
  EXPECT_LT(outcome.inst.n_pages(), start.n_pages())
      << "unneeded blocks get dropped";
}

TEST(Shrink, LeavesANonFailingInstanceAlone) {
  const Instance start{BlockMap::contiguous(4, 2), {0, 1}, 2};
  int calls = 0;
  const verify::ShrinkOutcome outcome = verify::shrink_instance(
      start, [&](const Instance&) {
        ++calls;
        return false;
      });
  EXPECT_FALSE(outcome.changed);
  EXPECT_EQ(outcome.inst.horizon(), start.horizon());
  EXPECT_GT(calls, 0);
}

// --- oracle families run clean over fuzz seeds ------------------------------

TEST(Oracles, AllFamiliesCleanOverSmokeSeeds) {
  verify::FuzzConfig config;
  config.seeds = 40;
  config.base_seed = 1;
  config.smoke = true;
  config.max_failures = 5;
  const verify::FuzzReport report = verify::run_fuzz(config);
  EXPECT_EQ(report.seeds_run, 40);
  EXPECT_EQ(report.family_checks,
            40 * static_cast<long long>(verify::oracle_family_names().size()));
  for (const auto& f : report.failures)
    ADD_FAILURE() << "seed " << f.seed << " [" << f.family << "] "
                  << f.detail << " (" << f.descriptor << ")";
}

TEST(Oracles, FamilyRegistryRejectsUnknownNames) {
  const verify::GeneratedInstance gi = verify::random_instance(3);
  verify::OracleOptions options;
  EXPECT_THROW(verify::check_family("definitely_not_a_family", gi, options),
               std::invalid_argument);
  EXPECT_EQ(verify::oracle_family_names().size(), 7u);
}

// --- policy_equivalence -----------------------------------------------------

TEST(PolicyEquivalence, FlatIndexPoliciesMatchSetReferencesOnFuzzInstances) {
  verify::OracleOptions options;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const verify::GeneratedInstance gi = verify::random_instance(seed);
    options.seed = seed;
    for (const verify::Violation& v :
         verify::check_family("policy_equivalence", gi, options))
      ADD_FAILURE() << "seed " << seed << ": " << v.detail << " ("
                    << gi.descriptor << ")";
  }
}

TEST(PolicyEquivalence, ReferenceTwinsCoverEveryRewrittenPolicy) {
  const auto twins = verify::reference_policy_twins();
  std::vector<std::string> names;
  for (const auto& [name, ref] : twins) {
    names.push_back(name);
    EXPECT_NE(ref, nullptr);
    EXPECT_NO_THROW(make_policy(name)) << name;
  }
  const std::vector<std::string> expect = {
      "lru",          "fifo",  "lfu",         "belady",
      "greedy_dual",  "block_lru", "block_lru_prefetch",
      "s3fifo",       "s3fifo@0.25", "sieve", "arc",
      "block_s3fifo", "block_sieve"};
  EXPECT_EQ(names, expect);
}

TEST(PolicyEquivalence, DiffDetectsGenuinelyDifferentPolicies) {
  // The oracle must be able to fail: LRU vs FIFO diverge on a hit-heavy
  // trace (a hit refreshes LRU's order but not FIFO's).
  const Instance inst = make_instance(
      6, 2, 2, std::vector<PageId>{0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0});
  LruPolicy lru;
  FifoPolicy fifo;
  const auto diffs = verify::diff_policy_runs(inst, lru, fifo, 1, "lru-fifo");
  EXPECT_FALSE(diffs.empty());
  // And agree with itself.
  LruPolicy a, b;
  EXPECT_TRUE(verify::diff_policy_runs(inst, a, b, 1, "lru-lru").empty());
}

// --- injected-bug demo ------------------------------------------------------

/// LRU with an off-by-one eviction: the eviction trigger compares against
/// capacity *before* the fetch, so the cache reaches k + 1 pages on the
/// (k+1)-th distinct page — exactly the class of bug the feasibility
/// audit + fuzzer must catch and shrink.
class BuggyLru final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "BuggyLru"; }
  void reset(const Instance& inst) override {
    stamp_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
    now_ = 0;
  }
  void on_request(Time, PageId p, CacheOps& cache) override {
    ++now_;
    if (!cache.contains(p)) {
      if (cache.size() > cache.capacity()) {  // BUG: should be >=
        PageId victim = -1;
        Time oldest = 0;
        for (PageId q : cache.pages())
          if (victim < 0 || stamp_[static_cast<std::size_t>(q)] < oldest) {
            victim = q;
            oldest = stamp_[static_cast<std::size_t>(q)];
          }
        cache.evict(victim);
      }
      cache.fetch(p);
    }
    stamp_[static_cast<std::size_t>(p)] = now_;
  }

 private:
  std::vector<Time> stamp_;
  Time now_ = 0;
};

verify::PolicySetFactory buggy_lru_set() {
  return [] {
    std::vector<std::unique_ptr<OnlinePolicy>> out;
    out.push_back(std::make_unique<BuggyLru>());
    return out;
  };
}

TEST(FuzzDemo, InjectedOffByOneEvictionIsCaughtAndShrunk) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bacfuzz_demo_" + std::to_string(::getpid())))
          .string();

  verify::FuzzConfig config;
  config.seeds = 80;
  config.smoke = true;
  config.families = {"cost_model"};
  config.max_failures = 1;
  config.artifact_dir = dir;
  config.oracle.policies = buggy_lru_set();
  const verify::FuzzReport report = verify::run_fuzz(config);

  ASSERT_EQ(report.failures.size(), 1u)
      << "the off-by-one eviction must surface within 80 seeds";
  const verify::FuzzFailure& f = report.failures.front();
  EXPECT_EQ(f.family, "cost_model");
  EXPECT_NE(f.detail.find("BuggyLru"), std::string::npos) << f.detail;

  // The shrunk repro is genuinely small: the bug needs k + 1 distinct
  // pages, so the minimal trace is about k + 1 requests over the fewest
  // blocks that still supply them.
  EXPECT_LE(f.shrunk.horizon(), f.shrunk.k + 2) << "shrinking stalled";
  EXPECT_LE(f.shrunk.n_pages(), f.shrunk.k + f.shrunk.blocks.beta() + 1);

  // The artifact pair exists, the .bact round-trips, and replaying it
  // against the buggy policy still reproduces the violation.
  ASSERT_FALSE(f.bact_path.empty());
  const Instance repro = load_bact(f.bact_path);
  verify::OracleOptions oracle;
  oracle.policies = buggy_lru_set();
  const auto violations =
      verify::replay_instance(repro, {"cost_model"}, oracle);
  EXPECT_FALSE(violations.empty()) << "repro artifact must still fail";

  std::ifstream json(f.json_path);
  ASSERT_TRUE(json.good());
  std::string blob((std::istreambuf_iterator<char>(json)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(blob.find("\"family\": \"cost_model\""), std::string::npos);
  EXPECT_NE(blob.find("--replay"), std::string::npos);
  // The replay line pins the oracle seed so randomized-policy failures
  // reproduce with the same per-run seeding.
  EXPECT_NE(blob.find("--seed " + std::to_string(f.seed)),
            std::string::npos)
      << blob;

  std::filesystem::remove_all(dir);
}

/// Correct per-run, but carries state across runs: reset() fails to clear
/// an eviction bias, so the second simulate() (the streaming replay)
/// diverges from the first — exactly the class of bug the streaming
/// family exists to catch.
class CrossRunStateful final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "CrossRunStateful";
  }
  void reset(const Instance&) override { /* BUG: runs_ not reset */ ++runs_; }
  void on_request(Time, PageId p, CacheOps& cache) override {
    if (!cache.contains(p)) {
      while (cache.size() >= cache.capacity()) {
        // Victim choice depends on how many runs this object has served.
        const auto& pages = cache.pages();
        cache.evict(pages[static_cast<std::size_t>(runs_) % pages.size()]);
      }
      cache.fetch(p);
    }
  }

 private:
  int runs_ = 0;
};

TEST(FuzzDemo, StreamingFailureArtifactCarriesASeedRepro) {
  // A --replay of a streaming failure's .bact cannot rebuild the
  // generator twin, so the artifact must point at seed regeneration
  // instead of a vacuously-clean replay line.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bacfuzz_stream_" + std::to_string(::getpid())))
          .string();
  verify::FuzzConfig config;
  config.seeds = 120;
  config.smoke = true;
  config.families = {"streaming"};
  config.max_failures = 1;
  config.artifact_dir = dir;
  config.oracle.policies = [] {
    std::vector<std::unique_ptr<OnlinePolicy>> out;
    out.push_back(std::make_unique<CrossRunStateful>());
    return out;
  };
  const verify::FuzzReport report = verify::run_fuzz(config);
  ASSERT_EQ(report.failures.size(), 1u)
      << "cross-run state must diverge on a twinned seed within 120 seeds";
  const verify::FuzzFailure& f = report.failures.front();
  std::ifstream json(f.json_path);
  ASSERT_TRUE(json.good());
  std::string blob((std::istreambuf_iterator<char>(json)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(blob.find("--seeds 1 --seed " + std::to_string(f.seed)),
            std::string::npos)
      << blob;
  EXPECT_NE(blob.find("--smoke"), std::string::npos)
      << "the size tier shapes the generated instance; the repro must "
         "regenerate under the same tier";
  EXPECT_EQ(blob.find("--replay"), std::string::npos)
      << "streaming repro must not advertise a twinless --replay";
  std::filesystem::remove_all(dir);
}

TEST(FuzzDemo, CorrectPoliciesPassTheSameGauntlet) {
  // The same configuration with the real zoo stays clean — the demo's
  // signal comes from the injected bug, not from a trigger-happy oracle.
  verify::FuzzConfig config;
  config.seeds = 80;
  config.smoke = true;
  config.families = {"cost_model"};
  config.max_failures = 1;
  const verify::FuzzReport report = verify::run_fuzz(config);
  EXPECT_TRUE(report.failures.empty());
}

}  // namespace
}  // namespace bac
