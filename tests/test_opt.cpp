// Tests for the exact OPT solvers: hand-verifiable instances, brute-force
// cross-checks via intended schedules, consistency between the models, and
// the Claim 2.1 separation measured with real OPT.
#include <gtest/gtest.h>

#include "algs/policies/classical.hpp"
#include "algs/opt.hpp"
#include "core/simulator.hpp"
#include "trace/adversarial.hpp"
#include "trace/generators.hpp"

namespace bac {
namespace {

TEST(ExactOpt, ZeroWhenEverythingFits) {
  const Instance inst = make_instance(4, 2, 4, {0, 1, 2, 3, 0, 1});
  EXPECT_DOUBLE_EQ(exact_opt_eviction(inst).cost, 0.0);
  // Fetching still pays the two cold block fetches.
  EXPECT_DOUBLE_EQ(exact_opt_fetching(inst).cost, 2.0);
}

TEST(ExactOpt, SinglePageOverflowEviction) {
  // 3 pages in 3 singleton blocks, k=2, requests 0 1 2: one eviction.
  const Instance inst = make_instance(3, 1, 2, {0, 1, 2});
  EXPECT_DOUBLE_EQ(exact_opt_eviction(inst).cost, 1.0);
  EXPECT_DOUBLE_EQ(exact_opt_fetching(inst).cost, 3.0);
}

TEST(ExactOpt, BatchedEvictionIsCheaper) {
  // 4 pages in one block + 2 singletons; k=4.
  // Requests fill the block then force two overflows; flushing the block
  // once (1 event) beats evicting two singletons (2 events)... construct:
  // pages 0..3 = block A, 4,5 singletons. k=4.
  std::vector<BlockId> assign{0, 0, 0, 0, 1, 2};
  Instance inst{BlockMap({assign}, {1.0, 1.0, 1.0}),
                {0, 1, 2, 3, 4, 5}, 4};
  // After 0..3 the cache is full; requests 4,5 need 2 slots; flushing A at
  // one step frees enough for both -> OPT_evict = 1.
  EXPECT_DOUBLE_EQ(exact_opt_eviction(inst).cost, 1.0);
}

TEST(ExactOpt, FetchingPrefetchPaysOffOnScans) {
  // One block of 4 scanned repeatedly with a competing singleton; k=4.
  std::vector<BlockId> assign{0, 0, 0, 0, 1};
  Instance inst{BlockMap({assign}, {1.0, 1.0}),
                {0, 1, 2, 3, 0, 1, 2, 3}, 4};
  // Fetch the whole block at the first miss: 1 event; nothing else needed.
  EXPECT_DOUBLE_EQ(exact_opt_fetching(inst).cost, 1.0);
}

TEST(ExactOpt, MatchesBeladyOnUnweightedPaging) {
  Xoshiro256pp rng(81);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 7, k = 3;
    Instance inst = make_instance(
        n, 1, k, uniform_trace(n, 18, rng.substream(trial)));
    BeladyPolicy belady;
    const RunResult r = simulate(inst, belady);
    const OptResult opt = exact_opt_fetching(inst);
    ASSERT_TRUE(opt.exact);
    EXPECT_DOUBLE_EQ(opt.cost, r.fetch_cost) << "trial " << trial;
  }
}

TEST(ExactOpt, NeverExceedsAnyFeasibleSchedule) {
  // OPT <= the Claim 2.1 intended schedules, in the matching model.
  for (int beta : {2, 3}) {
    const auto built = claim21_fetch_cheap(beta, 1);
    const ScheduleCost sc = evaluate(built.instance, built.intended_schedule);
    ASSERT_TRUE(sc.feasible);
    OptLimits limits;
    limits.max_layer_states = 500'000;
    const OptResult f = exact_opt_fetching(built.instance, limits);
    if (f.exact) {
      EXPECT_LE(f.cost, sc.fetch_cost + 1e-9) << "beta=" << beta;
    }
    const OptResult e = exact_opt_eviction(built.instance, limits);
    if (e.exact) {
      EXPECT_LE(e.cost, sc.eviction_cost + 1e-9);
    }
  }
}

TEST(ExactOpt, Claim21SeparationBothDirections) {
  // The heart of Claim 2.1 measured with exact OPT: the model swap flips
  // which cost is larger. The proof needs enough repeats per round that
  // OPT cannot shortcut by thrashing within a round (its "sufficiently
  // large L"); beta = 3, repeats = 4 shows opt_fetch = 2*beta = 6 vs
  // opt_evict = beta^2 = 9 on the fetch-cheap side.
  {
    const auto built = claim21_fetch_cheap(3, 4);
    OptLimits limits;
    limits.max_layer_states = 2'000'000;
    const OptResult f = exact_opt_fetching(built.instance, limits);
    const OptResult e = exact_opt_eviction(built.instance, limits);
    ASSERT_TRUE(f.exact && e.exact);
    EXPECT_LT(f.cost, e.cost) << "fetch-cheap instance";
    EXPECT_DOUBLE_EQ(f.cost, 6.0);   // warm-up beta + one Q-block per round
    EXPECT_DOUBLE_EQ(e.cost, 9.0);   // beta evictions per round
  }
  {
    const auto built = claim21_evict_cheap(3, 2);
    OptLimits limits;
    limits.max_layer_states = 2'000'000;
    const OptResult f = exact_opt_fetching(built.instance, limits);
    const OptResult e = exact_opt_eviction(built.instance, limits);
    ASSERT_TRUE(f.exact && e.exact);
    EXPECT_LT(e.cost, f.cost) << "evict-cheap instance";
  }
}

TEST(ExactOpt, GapInstanceIntegerCostPerRound) {
  const int beta = 3;
  for (int rounds : {2, 3}) {
    const Instance inst = gap_instance(beta, rounds);
    const OptResult f = exact_opt_fetching(inst);
    ASSERT_TRUE(f.exact);
    // Integer OPT pays at least ~1 per round (2*beta pages, k = 2*beta-1)
    // and at most 2 per round.
    EXPECT_GE(f.cost, static_cast<double>(rounds) - 1e-9);
    EXPECT_LE(f.cost, 2.0 * rounds + 2.0);
  }
}

TEST(ExactOpt, DominancePruningPreservesOptimum) {
  Xoshiro256pp rng(82);
  for (int trial = 0; trial < 5; ++trial) {
    Instance inst = make_instance(
        6, 2, 3, uniform_trace(6, 14, rng.substream(trial)));
    OptLimits with, without;
    without.dominance_pruning = false;
    EXPECT_DOUBLE_EQ(exact_opt_eviction(inst, with).cost,
                     exact_opt_eviction(inst, without).cost);
    EXPECT_DOUBLE_EQ(exact_opt_fetching(inst, with).cost,
                     exact_opt_fetching(inst, without).cost);
  }
}

TEST(ExactOpt, WeightedBlocksRespected) {
  // Two blocks, one expensive; k forces one eviction: OPT picks the cheap
  // block.
  Instance inst = make_weighted_instance(4, 2, 3, {0, 1, 2, 3, 0, 1},
                                         {10.0, 1.0});
  // Cache fits 3 of 4 pages; the hole should rotate within the cheap block.
  const OptResult e = exact_opt_eviction(inst);
  ASSERT_TRUE(e.exact);
  EXPECT_LE(e.cost, 2.0 + 1e-9) << "evictions should use the cheap block";
}

TEST(ExactOpt, RejectsOversizedUniverse) {
  Instance inst = make_instance(70, 2, 10, {0});
  EXPECT_THROW(exact_opt_eviction(inst), std::invalid_argument);
}

}  // namespace
}  // namespace bac
