// Parameterized property sweeps (TEST_P): the paper's invariants checked
// across a grid of (n, beta, k, workload) configurations.
//
//  P1  Every policy in the zoo maintains feasibility (audited simulator).
//  P2  Algorithm 1: primal <= k * dual and dual loads stay feasible.
//  P3  Algorithm 2: solution is monotone, per-step feasible, and within
//      2 ln(k*beta+1) of its dual.
//  P4  Rounding: feasible for every seed; requested pages never evicted.
//  P5  Cost-model coupling: for beta = 1, |OPT_fetch - OPT_evict| is at
//      most the cold-fetch cost (classic paging equivalence, Section 2).
//  P6  Batching dominance: block-aware batched cost <= classic per-page
//      cost <= beta * batched cost, for every policy run.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "algs/det_online.hpp"
#include "algs/fractional.hpp"
#include "algs/opt.hpp"
#include "algs/rounding.hpp"
#include "algs/zoo.hpp"
#include "core/simulator.hpp"
#include "trace/generators.hpp"

namespace bac {
namespace {

enum class Workload { Uniform, Zipf, Scan, Phased };

std::string workload_name(Workload w) {
  switch (w) {
    case Workload::Uniform: return "Uniform";
    case Workload::Zipf: return "Zipf";
    case Workload::Scan: return "Scan";
    case Workload::Phased: return "Phased";
  }
  return "?";
}

using Config = std::tuple<int /*beta*/, int /*k*/, Workload>;

Instance build(const Config& cfg, std::uint64_t seed, Time T) {
  const auto [beta, k, w] = cfg;
  const int n = 4 * k;
  std::vector<PageId> req;
  Xoshiro256pp rng(seed);
  switch (w) {
    case Workload::Uniform: req = uniform_trace(n, T, rng); break;
    case Workload::Zipf: req = zipf_trace(n, T, 0.9, rng); break;
    case Workload::Scan: req = scan_trace(n, T); break;
    case Workload::Phased:
      req = phased_trace(n, T, T / 8, k + beta, rng);
      break;
  }
  return make_instance(n, beta, k, std::move(req));
}

class PropertySweep : public ::testing::TestWithParam<Config> {};

TEST_P(PropertySweep, P1_AllPoliciesFeasible) {
  const Instance inst = build(GetParam(), 11, 240);
  for (auto& policy : make_policy_zoo()) {
    SimOptions opt;
    opt.seed = 3;
    const RunResult r = simulate(inst, *policy, opt);  // throws on violation
    EXPECT_EQ(r.violations, 0) << policy->name();
  }
}

TEST_P(PropertySweep, P2_DetOnlinePrimalDualBound) {
  const Instance inst = build(GetParam(), 13, 300);
  DetOnlineBlockAware alg;
  const RunResult r = simulate(inst, alg);
  EXPECT_LE(alg.max_load_ratio(), 1.0 + 1e-9);
  if (alg.dual_objective() > 0) {
    EXPECT_LE(r.eviction_cost,
              static_cast<double>(inst.k) * alg.dual_objective() + 1e-6);
  } else {
    EXPECT_DOUBLE_EQ(r.eviction_cost, 0.0);
  }
}

TEST_P(PropertySweep, P3_FractionalMonotoneFeasibleBounded) {
  const Instance inst = build(GetParam(), 17, 200);
  FractionalBlockAware alg(inst.blocks, inst.k);
  ThresholdSeparation oracle;
  for (Time t = 1; t <= inst.horizon(); ++t) {
    for (const auto& inc : alg.step(t, inst.request_at(t))) {
      ASSERT_GT(inc.delta, 0.0);
      ASSERT_LE(inc.new_value, 1.0 + 1e-9);
    }
    ASSERT_FALSE(
        oracle.find_violated(alg.integral_set(), alg.vars()).has_value())
        << "violated constraint after t=" << t;
  }
  if (alg.dual_objective() > 0) {
    const double bound = 2.0 * std::log(static_cast<double>(inst.k) *
                                            inst.blocks.beta() + 1.0);
    EXPECT_LE(alg.fractional_cost() / alg.dual_objective(), bound + 1e-6);
  }
}

TEST_P(PropertySweep, P4_RoundingFeasibleAcrossSeeds) {
  const Instance inst = build(GetParam(), 19, 200);
  RandomizedBlockAware alg;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SimOptions opt;
    opt.seed = seed;
    const RunResult r = simulate(inst, alg, opt);
    EXPECT_EQ(r.violations, 0) << "seed " << seed;
  }
}

TEST_P(PropertySweep, P6_BatchingDominance) {
  const Instance inst = build(GetParam(), 23, 240);
  const double beta = inst.blocks.beta();
  for (auto& policy : make_policy_zoo()) {
    SimOptions opt;
    opt.seed = 29;
    const RunResult r = simulate(inst, *policy, opt);
    EXPECT_LE(r.eviction_cost, r.classic_eviction_cost + 1e-9)
        << policy->name();
    EXPECT_LE(r.classic_eviction_cost, beta * r.eviction_cost + 1e-9)
        << policy->name();
    EXPECT_LE(r.fetch_cost, r.classic_fetch_cost + 1e-9) << policy->name();
    EXPECT_LE(r.classic_fetch_cost, beta * r.fetch_cost + 1e-9)
        << policy->name();
  }
}

constexpr Config kGrid[] = {
    {1, 6, Workload::Uniform},  {1, 6, Workload::Zipf},
    {2, 6, Workload::Uniform},  {2, 6, Workload::Scan},
    {3, 6, Workload::Zipf},     {3, 6, Workload::Phased},
    {4, 8, Workload::Uniform},  {4, 8, Workload::Zipf},
    {4, 8, Workload::Scan},     {6, 12, Workload::Zipf},
    {8, 16, Workload::Uniform}, {8, 16, Workload::Phased},
};

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  const auto& [beta, k, w] = info.param;
  return "beta" + std::to_string(beta) + "_k" + std::to_string(k) + "_" +
         workload_name(w);
}

INSTANTIATE_TEST_SUITE_P(Grid, PropertySweep, ::testing::ValuesIn(kGrid),
                         config_name);

/// P5: beta = 1 collapses the two cost models (classic paging), up to the
/// cold-start fetches that the eviction model gets for free.
class BetaOneEquivalence : public ::testing::TestWithParam<int /*seed*/> {};

TEST_P(BetaOneEquivalence, OptCostsCoincideUpToColdFetches) {
  Xoshiro256pp rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 7, k = 3;
  Instance inst = make_instance(n, 1, k, uniform_trace(n, 20, rng));
  const OptResult f = exact_opt_fetching(inst);
  const OptResult e = exact_opt_eviction(inst);
  ASSERT_TRUE(f.exact && e.exact);
  // distinct pages requested:
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  double distinct = 0;
  for (PageId p : inst.requests)
    if (!seen[static_cast<std::size_t>(p)]) {
      seen[static_cast<std::size_t>(p)] = 1;
      distinct += 1;
    }
  // OPT_fetch = OPT_evict + (cold fetches kept until the end... ) in
  // classic paging: fetch cost = evict cost + |pages in final cache paid
  // once|; bounds: evict <= fetch <= evict + distinct.
  EXPECT_LE(e.cost, f.cost + 1e-9);
  EXPECT_LE(f.cost, e.cost + distinct + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetaOneEquivalence,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace bac
