// Tests for the flush-coverage function f_tau (Section 3.1), including the
// paper's Figure 1 as a literal scenario, plus randomized submodularity /
// monotonicity property checks (Claim 3.1).
#include <gtest/gtest.h>

#include <vector>

#include "core/block_map.hpp"
#include "submodular/flush_coverage.hpp"
#include "util/rng.hpp"

namespace bac {
namespace {

/// Figure 1: n = 8 pages in two blocks of 4, k = 4 (cap = 4).
/// Requests p0..p7 at times 1..8; flush (B1, 3) misses {p0, p1} (2 pages),
/// flush (B2, 8) misses {p4, p5, p6} (3 pages, not p7 which is requested at
/// 8), and together they miss 5 pages, capped at n - k = 4.
class Figure1 : public ::testing::Test {
 protected:
  Figure1() : blocks_(BlockMap::contiguous(8, 4)), cov_(blocks_, 4) {
    for (PageId p = 0; p < 8; ++p)
      cov_.advance(p, static_cast<Time>(p) + 1);
  }
  BlockMap blocks_;
  FlushCoverage cov_;
};

TEST_F(Figure1, SingleFlushValues) {
  FlushSet s1 = FlushSet::empty(cov_);
  EXPECT_EQ(s1.g(), 0);
  s1.add_flush(0, 3);  // (B1, t1 = 3)
  EXPECT_EQ(s1.g(), 2);
  EXPECT_EQ(s1.f(), 2);

  FlushSet s2 = FlushSet::empty(cov_);
  s2.add_flush(1, 8);  // (B2, t2 = 8)
  EXPECT_EQ(s2.g(), 3);
  EXPECT_EQ(s2.f(), 3);
}

TEST_F(Figure1, UnionIsCapped) {
  FlushSet s = FlushSet::empty(cov_);
  s.add_flush(0, 3);
  s.add_flush(1, 8);
  EXPECT_EQ(s.g(), 5);
  EXPECT_EQ(s.f(), 4) << "f is capped at n - k = 4";
}

TEST_F(Figure1, MarginalsMatchDifferences) {
  FlushSet s = FlushSet::empty(cov_);
  EXPECT_EQ(s.g_marginal(0, 3), 2);
  EXPECT_EQ(s.f_marginal(0, 3), 2);
  s.add_flush(0, 3);
  EXPECT_EQ(s.g_marginal(1, 8), 3);
  // capped marginal: f(S + v) - f(S) = 4 - 2 = 2.
  EXPECT_EQ(s.f_marginal(1, 8), 2);
}

TEST_F(Figure1, RequestedPageIsNeverMissing) {
  FlushSet s = FlushSet::empty(cov_);
  s.add_flush(1, 8);
  EXPECT_FALSE(s.missing(7)) << "p7 is requested at tau = 8";
  EXPECT_TRUE(s.missing(4));
}

TEST_F(Figure1, LaterFlushDominates) {
  FlushSet s = FlushSet::empty(cov_);
  s.add_flush(0, 2);  // misses only p0
  EXPECT_EQ(s.g(), 1);
  EXPECT_EQ(s.g_marginal(0, 3), 1);  // raising the flush adds p1
  s.add_flush(0, 3);
  EXPECT_EQ(s.g(), 2);
  EXPECT_EQ(s.g_marginal(0, 1), 0) << "older flush has no marginal";
}

TEST(FlushCoverage, InitialSetCoversNeverRequested) {
  const BlockMap blocks = BlockMap::contiguous(6, 2);
  FlushCoverage cov(blocks, 3);
  FlushSet s(cov);  // all blocks flushed at 0
  EXPECT_EQ(s.g(), 6) << "all pages start missing";
  EXPECT_EQ(s.f(), 3);

  // After requesting page 0, it is present; g drops by one.
  FlushSet* sets[] = {&s};
  cov.advance(0, 1, sets);
  EXPECT_EQ(s.g(), 5);
  EXPECT_FALSE(s.missing(0));
  EXPECT_TRUE(s.missing(1));
}

TEST(FlushCoverage, AdvanceKeepsCachedGConsistent) {
  const BlockMap blocks = BlockMap::contiguous(6, 3);
  FlushCoverage cov(blocks, 2);
  FlushSet s(cov);
  Xoshiro256pp rng(17);
  for (Time t = 1; t <= 40; ++t) {
    const auto p = static_cast<PageId>(rng.below(6));
    FlushSet* sets[] = {&s};
    cov.advance(p, t, sets);
    if (rng.bernoulli(0.3)) s.add_flush(static_cast<BlockId>(rng.below(2)), t);
    FlushSet fresh = s;
    fresh.recompute();
    ASSERT_EQ(s.g(), fresh.g()) << "incremental g diverged at t=" << t;
  }
}

TEST(FlushCoverage, AliveTimesAreLastRequestsPlusOne) {
  const BlockMap blocks = BlockMap::contiguous(4, 2);
  FlushCoverage cov(blocks, 2);
  cov.advance(0, 1);
  cov.advance(1, 2);
  cov.advance(0, 5);
  // Block 0 pages: 0 (last req 5), 1 (last req 2) -> alive {3, 6}.
  const auto alive0 = cov.alive_times(0);
  ASSERT_EQ(alive0.size(), 2u);
  EXPECT_EQ(alive0[0], 3);
  EXPECT_EQ(alive0[1], 6);
  // Block 1 never requested -> alive {0}.
  const auto alive1 = cov.alive_times(1);
  ASSERT_EQ(alive1.size(), 1u);
  EXPECT_EQ(alive1[0], 0);
}

TEST(FlushCoverage, CountBelow) {
  const BlockMap blocks = BlockMap::contiguous(4, 4);
  FlushCoverage cov(blocks, 2);
  cov.advance(2, 1);
  cov.advance(3, 4);
  // lastReq: [-1, -1, 1, 4]
  EXPECT_EQ(cov.count_below(0, 0), 2);   // the two never-requested
  EXPECT_EQ(cov.count_below(0, 1), 2);
  EXPECT_EQ(cov.count_below(0, 2), 3);
  EXPECT_EQ(cov.count_below(0, 5), 4);
  EXPECT_EQ(cov.count_below(0, kNeverRequested), 0);
}

TEST(FlushCoverage, RejectsNonIncreasingTime) {
  const BlockMap blocks = BlockMap::contiguous(4, 2);
  FlushCoverage cov(blocks, 2);
  cov.advance(0, 3);
  EXPECT_THROW(cov.advance(1, 3), std::invalid_argument);
  EXPECT_THROW(cov.advance(1, 2), std::invalid_argument);
}

TEST(FlushSetTest, RejectsFutureFlush) {
  const BlockMap blocks = BlockMap::contiguous(4, 2);
  FlushCoverage cov(blocks, 2);
  cov.advance(0, 3);
  FlushSet s = FlushSet::empty(cov);
  EXPECT_THROW(s.add_flush(0, 4), std::invalid_argument);
  EXPECT_NO_THROW(s.add_flush(0, 3));
}

/// Claim 3.1 property check: f_tau is monotone and submodular, verified on
/// random instances over random chains A <= B and random elements v.
TEST(FlushCoverageProperty, MonotoneAndSubmodularOnRandomInstances) {
  Xoshiro256pp rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 4 + static_cast<int>(rng.below(8));
    const int beta = 1 + static_cast<int>(rng.below(4));
    const int k = std::max(beta, 1 + static_cast<int>(rng.below(n)));
    const BlockMap blocks = BlockMap::contiguous(n, beta);
    FlushCoverage cov(blocks, k);
    const Time T = 12;
    for (Time t = 1; t <= T; ++t)
      cov.advance(static_cast<PageId>(rng.below(static_cast<std::uint64_t>(n))), t);

    // Random nested sets A subset of B, random extra element v.
    FlushSet A = FlushSet::empty(cov);
    FlushSet B = FlushSet::empty(cov);
    for (int i = 0; i < 4; ++i) {
      const auto b = static_cast<BlockId>(rng.below(
          static_cast<std::uint64_t>(blocks.n_blocks())));
      const auto t = static_cast<Time>(rng.below(T + 1));
      B.add_flush(b, t);
      if (rng.bernoulli(0.5)) A.add_flush(b, t);
    }
    ASSERT_LE(A.f(), B.f()) << "monotonicity";
    for (int i = 0; i < 6; ++i) {
      const auto b = static_cast<BlockId>(rng.below(
          static_cast<std::uint64_t>(blocks.n_blocks())));
      const auto t = static_cast<Time>(rng.below(T + 1));
      ASSERT_GE(A.f_marginal(b, t), B.f_marginal(b, t))
          << "submodularity violated (trial " << trial << ")";
    }
  }
}

}  // namespace
}  // namespace bac
