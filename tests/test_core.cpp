// Unit tests for the core model: instances, request indices, cache set,
// batched cost metering, schedules, and the simulator's auditing.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "core/cache_set.hpp"
#include "core/cost_meter.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/simulator.hpp"
#include "trace/generators.hpp"

namespace bac {
namespace {

Instance tiny_instance() {
  // 4 pages, 2 blocks of 2, k = 2; requests 0 1 2 3 0.
  return Instance{BlockMap::contiguous(4, 2), {0, 1, 2, 3, 0}, 2};
}

TEST(Instance, ValidateCatchesErrors) {
  Instance bad = tiny_instance();
  bad.k = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny_instance();
  bad.requests.push_back(99);
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny_instance();
  bad.k = 1;  // beta = 2 > k
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(RequestIndexTest, PrevNextAreConsistent) {
  const Instance inst{BlockMap::contiguous(3, 1), {0, 1, 0, 2, 1, 0}, 2};
  const RequestIndex idx(inst);
  // prev: first occurrences have prev 0.
  EXPECT_EQ(idx.prev[0], 0);
  EXPECT_EQ(idx.prev[1], 0);
  EXPECT_EQ(idx.prev[2], 1);  // page 0 requested at time 1
  EXPECT_EQ(idx.prev[4], 2);  // page 1 requested at time 2
  EXPECT_EQ(idx.prev[5], 3);  // page 0 requested at time 3
  // next: last occurrences have next T+1 = 7.
  EXPECT_EQ(idx.next[0], 3);
  EXPECT_EQ(idx.next[3], 7);
  EXPECT_EQ(idx.next[5], 7);
}

TEST(RequestIndexTest, MaterializedRMatchesDefinition) {
  const Instance inst{BlockMap::contiguous(3, 1), {0, 1, 0}, 2};
  const auto r = RequestIndex::materialize_r(inst);
  const auto n = static_cast<std::size_t>(inst.n_pages());
  // r(p, 0) = never for all p.
  for (std::size_t p = 0; p < n; ++p) EXPECT_EQ(r[0 * n + p], kNeverRequested);
  EXPECT_EQ(r[1 * n + 0], 1);
  EXPECT_EQ(r[1 * n + 1], kNeverRequested);
  EXPECT_EQ(r[2 * n + 1], 2);
  EXPECT_EQ(r[3 * n + 0], 3);
  EXPECT_EQ(r[3 * n + 1], 2);
  EXPECT_EQ(r[3 * n + 2], kNeverRequested);
}

TEST(CacheSetTest, InsertEraseContains) {
  CacheSet c(5);
  EXPECT_FALSE(c.contains(3));
  EXPECT_TRUE(c.insert(3));
  EXPECT_FALSE(c.insert(3));  // already present
  EXPECT_TRUE(c.contains(3));
  EXPECT_EQ(c.size(), 1);
  EXPECT_TRUE(c.insert(1));
  EXPECT_TRUE(c.erase(3));
  EXPECT_FALSE(c.erase(3));
  EXPECT_EQ(c.size(), 1);
  EXPECT_TRUE(c.contains(1));
  c.clear();
  EXPECT_EQ(c.size(), 0);
  EXPECT_FALSE(c.contains(1));
}

TEST(CacheSetTest, SwapRemoveKeepsMembersConsistent) {
  CacheSet c(10);
  for (PageId p = 0; p < 6; ++p) c.insert(p);
  c.erase(2);
  c.erase(0);
  EXPECT_EQ(c.size(), 4);
  int seen = 0;
  for (PageId p : c.pages()) {
    EXPECT_TRUE(c.contains(p));
    ++seen;
  }
  EXPECT_EQ(seen, 4);
}

TEST(CostMeterTest, BatchesWithinStepAndBlock) {
  const BlockMap m = BlockMap::contiguous(6, 3, 2.0);  // 2 blocks, cost 2
  CostMeter meter(m);
  meter.begin_step(1);
  meter.on_evict(0);
  meter.on_evict(1);  // same block, same step: free
  meter.on_evict(3);  // other block
  EXPECT_DOUBLE_EQ(meter.eviction_cost(), 4.0);
  EXPECT_EQ(meter.evict_block_events(), 2);
  EXPECT_EQ(meter.evicted_pages(), 3);
  meter.begin_step(2);
  meter.on_evict(2);  // block 0 again, new step: pays again
  EXPECT_DOUBLE_EQ(meter.eviction_cost(), 6.0);
  // classic (unbatched) accounting counts every page.
  EXPECT_DOUBLE_EQ(meter.classic_eviction_cost(), 8.0);
}

TEST(CostMeterTest, FetchAndEvictSidesAreIndependent) {
  const BlockMap m = BlockMap::contiguous(4, 2);
  CostMeter meter(m);
  meter.begin_step(1);
  meter.on_fetch(0);
  meter.on_evict(1);  // same block: both sides charge once each
  EXPECT_DOUBLE_EQ(meter.fetch_cost(), 1.0);
  EXPECT_DOUBLE_EQ(meter.eviction_cost(), 1.0);
}

TEST(ScheduleTest, EvaluateComputesBatchedCosts) {
  const Instance inst = tiny_instance();  // requests 0 1 2 3 0, k=2
  Schedule s;
  s.steps.resize(5);
  s.steps[0].fetches = {0};
  s.steps[1].fetches = {1};
  s.steps[2].evictions = {0, 1};  // one block event (block 0)
  s.steps[2].fetches = {2};
  s.steps[3].fetches = {3};
  s.steps[4].evictions = {2, 3};  // one block event (block 1)
  s.steps[4].fetches = {0};
  const ScheduleCost c = evaluate(inst, s);
  EXPECT_TRUE(c.feasible) << c.infeasibility;
  EXPECT_DOUBLE_EQ(c.eviction_cost, 2.0);
  EXPECT_DOUBLE_EQ(c.fetch_cost, 5.0);  // steps 1,2,3,4,5 each one block fetch
}

TEST(ScheduleTest, DetectsInfeasibility) {
  const Instance inst = tiny_instance();
  Schedule s;
  s.steps.resize(5);  // never fetches anything
  const ScheduleCost c = evaluate(inst, s);
  EXPECT_FALSE(c.feasible);
  EXPECT_NE(c.infeasibility.find("t=1"), std::string::npos);
}

TEST(ScheduleTest, DetectsCapacityViolation) {
  const Instance inst = tiny_instance();
  Schedule s;
  s.steps.resize(5);
  s.steps[0].fetches = {0, 1, 2};  // 3 > k = 2
  const ScheduleCost c = evaluate(inst, s);
  EXPECT_FALSE(c.feasible);
}

/// A policy that does nothing — the simulator must flag it.
class DoNothing final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "DoNothing"; }
  void reset(const Instance&) override {}
  void on_request(Time, PageId, CacheOps&) override {}
};

TEST(SimulatorTest, ThrowsOnInfeasiblePolicy) {
  const Instance inst = tiny_instance();
  DoNothing p;
  EXPECT_THROW(simulate(inst, p), std::runtime_error);
}

TEST(SimulatorTest, RepairModeCountsViolations) {
  const Instance inst = tiny_instance();
  DoNothing p;
  SimOptions opt;
  opt.throw_on_violation = false;
  const RunResult r = simulate(inst, p, opt);
  // Every request is missing (5 violations); the repair fetches then
  // overflow the k=2 cache, adding capacity violations on later steps.
  EXPECT_GE(r.violations, 5);
}

/// A policy that hoards pages beyond capacity.
class Hoarder final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "Hoarder"; }
  void reset(const Instance&) override {}
  void on_request(Time, PageId p, CacheOps& cache) override { cache.fetch(p); }
};

TEST(SimulatorTest, ThrowsOnCapacityViolation) {
  const Instance inst = tiny_instance();
  Hoarder p;
  EXPECT_THROW(simulate(inst, p), std::runtime_error);
}

/// Fetches the requested page plus every other page of the universe on
/// each step — the worst capacity violator the repair path can face.
class FloodingHoarder final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "FloodingHoarder";
  }
  void reset(const Instance& inst) override { n_ = inst.n_pages(); }
  void on_request(Time, PageId, CacheOps& cache) override {
    for (PageId q = 0; q < n_; ++q) cache.fetch(q);
  }

 private:
  int n_ = 0;
};

TEST(SimulatorTest, RepairModeRestoresCapacityInOnePass) {
  // A large universe with k << n: each step the repair must evict
  // hundreds of excess pages. The single backward-pass repair handles
  // this linearly (the old front-rescan loop was quadratic per step);
  // correctness here is capacity restored, requested page kept, one
  // counted violation per audit failure.
  Xoshiro256pp rng(3);
  const Instance inst{BlockMap::contiguous(512, 4),
                      uniform_trace(512, 40, rng), 16};
  FloodingHoarder policy;
  SimOptions opt;
  opt.throw_on_violation = false;
  const RunResult r = simulate(inst, policy, opt);
  EXPECT_EQ(r.requests, 40);
  // One capacity violation per step (the page itself is always fetched).
  EXPECT_EQ(r.violations, 40);
  EXPECT_LE(r.cached_pages, inst.k);
  EXPECT_GT(r.cached_pages, 0);
}

TEST(SimulatorTest, RepairKeepsRequestedPageCached) {
  const Instance inst = tiny_instance();
  FloodingHoarder policy;
  SimOptions opt;
  opt.throw_on_violation = false;
  opt.record_schedule = true;
  const RunResult r = simulate(inst, policy, opt);
  // The final request must have survived the repair evictions.
  const PageId last = inst.requests.back();
  EXPECT_NE(std::find(r.final_cache.begin(), r.final_cache.end(), last),
            r.final_cache.end());
  EXPECT_LE(r.cached_pages, inst.k);
}

TEST(SimulatorTest, SchedulePolicyMatchesEvaluate) {
  const Instance inst = tiny_instance();
  Schedule s;
  s.steps.resize(5);
  s.steps[0].fetches = {0};
  s.steps[1].fetches = {1};
  s.steps[2].evictions = {0, 1};
  s.steps[2].fetches = {2};
  s.steps[3].fetches = {3};
  s.steps[4].evictions = {2, 3};
  s.steps[4].fetches = {0};
  const ScheduleCost ref = evaluate(inst, s);
  SchedulePolicy policy(s);
  const RunResult r = simulate(inst, policy);
  EXPECT_DOUBLE_EQ(r.eviction_cost, ref.eviction_cost);
  EXPECT_DOUBLE_EQ(r.fetch_cost, ref.fetch_cost);
}

TEST(SimulatorTest, StepRecordingSumsToTotal) {
  const Instance inst = tiny_instance();
  Schedule s;
  s.steps.resize(5);
  s.steps[0].fetches = {0};
  s.steps[1].fetches = {1};
  s.steps[2].evictions = {0};
  s.steps[2].fetches = {2};
  s.steps[3].evictions = {1};
  s.steps[3].fetches = {3};
  s.steps[4].evictions = {2};
  s.steps[4].fetches = {0};
  SchedulePolicy policy(s);
  SimOptions opt;
  opt.record_steps = true;
  const RunResult r = simulate(inst, policy, opt);
  Cost evict = 0, fetch = 0;
  for (Cost c : r.step_eviction_cost) evict += c;
  for (Cost c : r.step_fetch_cost) fetch += c;
  EXPECT_DOUBLE_EQ(evict, r.eviction_cost);
  EXPECT_DOUBLE_EQ(fetch, r.fetch_cost);
}

TEST(ScheduleTest, ReplayReportsFullAccountingAndFinalState) {
  const Instance inst = tiny_instance();  // requests 0 1 2 3 0, k=2
  Schedule s;
  s.steps.resize(5);
  s.steps[0].fetches = {0};
  s.steps[1].fetches = {1};
  s.steps[2].evictions = {0, 1};
  s.steps[2].fetches = {2};
  s.steps[3].fetches = {3};
  s.steps[4].evictions = {2, 3};
  s.steps[4].fetches = {0};
  const ReplayResult r = replay_schedule(inst, s);
  EXPECT_TRUE(r.feasible) << r.infeasibility;
  EXPECT_DOUBLE_EQ(r.eviction_cost, 2.0);
  EXPECT_DOUBLE_EQ(r.fetch_cost, 5.0);
  EXPECT_DOUBLE_EQ(r.classic_eviction_cost, 4.0);  // 4 page evictions, cost 1
  EXPECT_DOUBLE_EQ(r.classic_fetch_cost, 5.0);
  EXPECT_EQ(r.evicted_pages, 4);
  EXPECT_EQ(r.fetched_pages, 5);
  EXPECT_EQ(r.evict_block_events, 2);
  EXPECT_EQ(r.final_cache, (std::vector<PageId>{0}));
}

/// Flushes the requested page's whole block, then refetches the request —
/// every step moves up to beta pages, exercising the capture path that was
/// quadratic per step before stamp-based cancellation.
class FlushHappy final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "FlushHappy"; }
  void reset(const Instance&) override {}
  void on_request(Time, PageId p, CacheOps& cache) override {
    cache.flush_block(cache.blocks().block_of(p));
    cache.fetch(p);
  }
};

TEST(SimulatorTest, FlushHeavyCaptureReplaysExactly) {
  // Regression for the O(step^2) capture: a flush-heavy policy over large
  // blocks must capture a schedule whose replay is state- and cost-exact.
  const int n = 64, beta = 16, k = 32;
  std::vector<PageId> requests;
  for (int i = 0; i < 400; ++i)
    requests.push_back(static_cast<PageId>((i * 7) % n));
  const Instance inst{BlockMap::contiguous(n, beta), std::move(requests), k};
  FlushHappy policy;
  SimOptions opt;
  opt.record_schedule = true;
  const RunResult live = simulate(inst, policy, opt);
  EXPECT_EQ(live.capture_cancellations, 0);
  const ReplayResult replay = replay_schedule(inst, live.schedule);
  EXPECT_TRUE(replay.feasible) << replay.infeasibility;
  EXPECT_DOUBLE_EQ(replay.eviction_cost, live.eviction_cost);
  EXPECT_DOUBLE_EQ(replay.fetch_cost, live.fetch_cost);
  EXPECT_DOUBLE_EQ(replay.classic_eviction_cost, live.classic_eviction_cost);
  EXPECT_DOUBLE_EQ(replay.classic_fetch_cost, live.classic_fetch_cost);
  EXPECT_EQ(replay.evicted_pages, live.evicted_pages);
  EXPECT_EQ(replay.fetched_pages, live.fetched_pages);
  EXPECT_EQ(replay.final_cache, live.final_cache);
  EXPECT_EQ(static_cast<int>(replay.final_cache.size()), live.cached_pages);
}

/// Fetches a victim page then evicts it within the same step: the capture
/// must net the pair out (state-exact replay) and count the cancellation.
class TransientChurn final : public OnlinePolicy {
 public:
  [[nodiscard]] std::string name() const override { return "TransientChurn"; }
  void reset(const Instance&) override {}
  void on_request(Time, PageId p, CacheOps& cache) override {
    if (!cache.contains(p)) {
      const PageId scratch = p == 0 ? 1 : 0;
      const bool had_scratch = cache.contains(scratch);
      if (!had_scratch && cache.size() + 2 <= cache.capacity()) {
        cache.fetch(scratch);   // transient: fetched then evicted below
        cache.evict(scratch);
      }
      while (cache.size() >= cache.capacity()) {
        for (PageId q : cache.pages())
          if (q != p) {
            cache.evict(q);
            break;
          }
      }
      cache.fetch(p);
    }
  }
};

TEST(SimulatorTest, TransientFetchEvictPairsAreNettedAndCounted) {
  const Instance inst = tiny_instance();
  TransientChurn policy;
  SimOptions opt;
  opt.record_schedule = true;
  const RunResult live = simulate(inst, policy, opt);
  EXPECT_GT(live.capture_cancellations, 0);
  // The netted schedule replays to the same final state; its cost can
  // only be at or below the live run's (the transient was metered live).
  const ReplayResult replay = replay_schedule(inst, live.schedule);
  EXPECT_TRUE(replay.feasible) << replay.infeasibility;
  EXPECT_EQ(replay.final_cache, live.final_cache);
  EXPECT_LE(replay.fetch_cost, live.fetch_cost + 1e-12);
  EXPECT_LE(replay.eviction_cost, live.eviction_cost + 1e-12);
}

}  // namespace
}  // namespace bac
