// Round-trip fidelity of the .bact binary format and the CSV key-trace
// adapter, and the streaming-equivalence guarantee: every generator
// workload pushed through .bact or the v1 text format must reproduce a
// bit-identical RunResult for LRU, BlockLRU, and the deterministic online
// algorithm.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "algs/policies/classical.hpp"
#include "algs/det_online.hpp"
#include "core/simulator.hpp"
#include "trace/bact.hpp"
#include "trace/csv.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"

namespace bac {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bac_fmt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

using TraceFormats = TempDir;
using CsvTrace = TempDir;

std::vector<Instance> generator_workloads() {
  std::vector<Instance> out;
  Xoshiro256pp rng(404);
  out.push_back(make_instance(48, 6, 12, zipf_trace(48, 1200, 0.9, rng)));
  out.push_back(make_instance(30, 3, 9, scan_trace(30, 900)));
  {
    BlockMap blocks = BlockMap::contiguous(40, 5);
    auto req = block_local_trace(blocks, 1000, 0.75, 0.9, rng);
    out.push_back(Instance{std::move(blocks), std::move(req), 10});
  }
  out.push_back(make_instance(36, 4, 12,
                              phased_trace(36, 800, 80, 16, rng)));
  out.push_back(make_instance(25, 5, 10, uniform_trace(25, 700, rng)));
  out.push_back(make_weighted_instance(24, 4, 8, uniform_trace(24, 600, rng),
                                       log_uniform_costs(6, 32.0, rng)));
  return out;
}

bool identical_run(const RunResult& a, const RunResult& b) {
  return a.eviction_cost == b.eviction_cost && a.fetch_cost == b.fetch_cost &&
         a.classic_eviction_cost == b.classic_eviction_cost &&
         a.classic_fetch_cost == b.classic_fetch_cost &&
         a.evict_block_events == b.evict_block_events &&
         a.fetch_block_events == b.fetch_block_events &&
         a.evicted_pages == b.evicted_pages &&
         a.fetched_pages == b.fetched_pages && a.misses == b.misses &&
         a.requests == b.requests && a.violations == b.violations;
}

std::vector<std::unique_ptr<OnlinePolicy>> equivalence_policies() {
  std::vector<std::unique_ptr<OnlinePolicy>> out;
  out.push_back(std::make_unique<LruPolicy>());
  out.push_back(std::make_unique<BlockLruPolicy>(false));
  out.push_back(std::make_unique<DetOnlineBlockAware>());
  return out;
}

TEST_F(TraceFormats, BactRoundTripIsBitIdenticalForEveryWorkload) {
  int wi = 0;
  for (const Instance& inst : generator_workloads()) {
    const std::string file = path("w" + std::to_string(wi++) + ".bact");
    save_bact(inst, file);

    // Materialized round trip preserves the instance exactly.
    const Instance back = load_bact(file);
    EXPECT_EQ(back.requests, inst.requests);
    EXPECT_EQ(back.k, inst.k);
    ASSERT_EQ(back.n_pages(), inst.n_pages());
    for (PageId p = 0; p < inst.n_pages(); ++p)
      EXPECT_EQ(back.blocks.block_of(p), inst.blocks.block_of(p));
    for (BlockId b = 0; b < inst.blocks.n_blocks(); ++b)
      EXPECT_EQ(back.blocks.cost(b), inst.blocks.cost(b));

    // Streaming replay: bit-identical RunResult per policy.
    for (const auto& proto : equivalence_policies()) {
      const auto direct_policy = proto->clone();
      const auto stream_policy = proto->clone();
      ASSERT_NE(direct_policy, nullptr);
      ASSERT_NE(stream_policy, nullptr);
      const RunResult direct = simulate(inst, *direct_policy);
      BactSource src(file);
      const RunResult streamed = simulate(src, *stream_policy);
      EXPECT_TRUE(identical_run(direct, streamed))
          << proto->name() << " diverged through .bact on workload " << wi;
    }
  }
}

TEST_F(TraceFormats, RequestVarintOverflowThrowsInsteadOfTruncating) {
  // Regression: a 10-byte request varint whose final (shift-63) byte has
  // bits 1-6 set used to decode to just its low 70-minus-6 bits — here
  // [0x81, 0x80 x 8, 0x02] encodes 1 + 2^64, which silently truncated to
  // page id 0 (a perfectly valid request) instead of erroring.
  const Instance inst = make_instance(4, 2, 2, {0, 1, 2});
  const std::string file = path("overflow.bact");
  std::string bytes;
  {
    std::ostringstream oss;
    BactWriter writer(oss, inst.blocks, inst.k, 0);
    writer.finish();  // header + stream terminator
    bytes = oss.str();
  }
  bytes.pop_back();  // drop the 0x00 terminator
  bytes += '\x81';
  bytes.append(8, '\x80');
  bytes += '\x02';  // shift-63 byte with bit 1 set: the truncated bits
  bytes += '\0';
  {
    std::ofstream out(file, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  BactSource src(file);
  PageId p;
  try {
    (void)src.next(p);
    FAIL() << "over-range varint must not decode to a valid page";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("varint overflow"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(TraceFormats, HeaderVarintOverflowThrowsInsteadOfTruncating) {
  // Same guard on the header decoder: n_pages = [0x85, 0x80 x 8, 0x02]
  // (5 + 2^64) used to truncate to a plausible n_pages = 5 and fail only
  // later, on whatever the misaligned remainder happened to decode to.
  const std::string file = path("overflow_header.bact");
  {
    std::ofstream out(file, std::ios::binary);
    out.write("BACT1\n", 6);
    std::string v;
    v += '\x85';
    v.append(8, '\x80');
    v += '\x02';
    out.write(v.data(), static_cast<std::streamsize>(v.size()));
  }
  try {
    BactSource src(file);
    FAIL() << "over-range header varint must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("varint overflow"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(TraceFormats, TextRoundTripIsBitIdenticalForEveryWorkload) {
  int wi = 0;
  for (const Instance& inst : generator_workloads()) {
    // append() instead of operator+ dodges GCC 12's -Wrestrict false
    // positive on `const char* + std::string&&` under heavy inlining.
    const std::string file =
        path(std::string("w").append(std::to_string(wi++)).append(".txt"));
    save_instance(inst, file);
    for (const auto& proto : equivalence_policies()) {
      const auto direct_policy = proto->clone();
      const auto stream_policy = proto->clone();
      const RunResult direct = simulate(inst, *direct_policy);
      TextTraceSource src(file);
      EXPECT_EQ(src.horizon_hint(),
                static_cast<long long>(inst.requests.size()));
      const RunResult streamed = simulate(src, *stream_policy);
      EXPECT_TRUE(identical_run(direct, streamed))
          << proto->name() << " diverged through text on workload " << wi;
    }
  }
}

TEST_F(TraceFormats, FileSourceNextBatchMatchesNext) {
  // The batched decode paths (BactSource's buffered varint loop, the
  // final-class loops of TextTraceSource/CsvSource) must yield exactly
  // the next() sequence, including a partial final batch and 0-at-end.
  const Instance inst = generator_workloads().front();
  const std::string bact_file = path("batch.bact");
  const std::string text_file = path("batch.txt");
  save_bact(inst, bact_file);
  save_instance(inst, text_file);

  const auto drain_single = [](RequestSource& src) {
    std::vector<PageId> out;
    PageId p;
    while (src.next(p)) out.push_back(p);
    return out;
  };
  const auto drain_batched = [](RequestSource& src, int cap) {
    std::vector<PageId> out;
    std::vector<PageId> buf(static_cast<std::size_t>(cap));
    int m;
    while ((m = src.next_batch(buf.data(), cap)) > 0)
      out.insert(out.end(), buf.begin(), buf.begin() + m);
    EXPECT_EQ(src.next_batch(buf.data(), cap), 0);  // stays at end
    return out;
  };

  {
    BactSource a(bact_file), b(bact_file);
    const auto expect = drain_single(a);
    EXPECT_EQ(expect, inst.requests);
    EXPECT_EQ(drain_batched(b, 17), expect);  // 17 ∤ T: partial final batch
    b.rewind();
    EXPECT_EQ(drain_batched(b, 1 << 15), expect);  // single oversized batch
  }
  {
    TextTraceSource a(text_file), b(text_file);
    EXPECT_EQ(drain_batched(b, 17), drain_single(a));
  }
}

TEST_F(TraceFormats, BactSourceRewindReplays) {
  const Instance inst = make_instance(16, 4, 8, scan_trace(16, 200));
  const std::string file = path("rewind.bact");
  save_bact(inst, file);
  BactSource src(file);
  LruPolicy lru;
  const RunResult first = simulate(src, lru);
  src.rewind();
  const RunResult second = simulate(src, lru);
  EXPECT_TRUE(identical_run(first, second));
}

TEST_F(TraceFormats, BactWriterStreamsUnknownLength) {
  const BlockMap blocks = BlockMap::contiguous(12, 3);
  const std::string file = path("stream.bact");
  {
    std::ofstream out(file, std::ios::binary);
    BactWriter writer(out, blocks, 6);  // declared_T = 0: unknown
    for (int i = 0; i < 100; ++i) writer.add(static_cast<PageId>(i % 12));
    writer.finish();
    EXPECT_EQ(writer.written(), 100);
  }
  BactSource src(file);
  EXPECT_EQ(src.horizon_hint(), -1);  // unknown upfront
  PageId p;
  long long count = 0;
  while (src.next(p)) {
    EXPECT_EQ(p, static_cast<PageId>(count % 12));
    ++count;
  }
  EXPECT_EQ(count, 100);
}

TEST_F(TraceFormats, BactRejectsGarbageAndTruncation) {
  const std::string garbage = path("garbage.bact");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is not a bact file at all";
  }
  EXPECT_THROW(BactSource{garbage}, std::runtime_error);

  const Instance inst = make_instance(16, 4, 8, scan_trace(16, 300));
  const std::string file = path("full.bact");
  save_bact(inst, file);
  const auto full_size = std::filesystem::file_size(file);
  const std::string cut = path("cut.bact");
  {
    std::ifstream in(file, std::ios::binary);
    std::ofstream out(cut, std::ios::binary);
    std::vector<char> buf(full_size / 2);
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
  EXPECT_THROW(
      {
        BactSource src(cut);
        PageId p;
        while (src.next(p)) {
        }
      },
      std::runtime_error);

  EXPECT_THROW(BactSource{path("missing.bact")}, std::runtime_error);
}

TEST_F(TraceFormats, BactWriterRejectsBadPagesAndDeclaredMismatch) {
  const BlockMap blocks = BlockMap::contiguous(8, 2);
  std::ostringstream os;
  BactWriter writer(os, blocks, 4, /*declared_T=*/3);
  EXPECT_THROW(writer.add(8), std::out_of_range);
  EXPECT_THROW(writer.add(-1), std::out_of_range);
  writer.add(0);
  writer.add(1);
  EXPECT_THROW(writer.finish(), std::logic_error);  // wrote 2, declared 3
}

TEST_F(CsvTrace, NumericKeysGetExtentBlocks) {
  const std::string file = path("lba.csv");
  {
    std::ofstream out(file);
    out << "timestamp,key,size\n";  // header skipped: timestamp not numeric
    out << "1,100,4096\n2,101,4096\n3,102,4096\n4,200,8192\n"
        << "5,100,4096\n6,201,8192\n7,102,4096\n";
  }
  CsvOptions options;
  options.block_pages = 4;
  options.k = 4;
  const CsvMapping mapping = build_csv_mapping(file, options);
  EXPECT_TRUE(mapping.numeric_keys);
  EXPECT_EQ(mapping.rows, 7);
  ASSERT_EQ(mapping.key_to_page.size(), 5u);  // 100 101 102 200 201
  // Keys 100..102 share extent 25 (span 4); 200..201 share extent 50.
  const PageId p100 = mapping.key_to_page.at("100");
  const PageId p102 = mapping.key_to_page.at("102");
  const PageId p200 = mapping.key_to_page.at("200");
  const PageId p201 = mapping.key_to_page.at("201");
  EXPECT_EQ(mapping.blocks.block_of(p100), mapping.blocks.block_of(p102));
  EXPECT_EQ(mapping.blocks.block_of(p200), mapping.blocks.block_of(p201));
  EXPECT_NE(mapping.blocks.block_of(p100), mapping.blocks.block_of(p200));

  const Instance inst = load_csv_trace(file, options);
  EXPECT_EQ(inst.horizon(), 7);
  EXPECT_EQ(inst.requests[0], p100);
  EXPECT_EQ(inst.requests[4], p100);
}

TEST_F(CsvTrace, StringKeysGetArrivalBlocks) {
  const std::string file = path("objects.csv");
  {
    std::ofstream out(file);
    out << "1,/img/a.jpg,100\n2,/img/b.jpg,150\n3,/js/app.js,80\n"
        << "4,/img/a.jpg,100\n5,/css/site.css,60\n";
  }
  CsvOptions options;
  options.block_pages = 2;
  options.k = 2;
  const CsvMapping mapping = build_csv_mapping(file, options);
  EXPECT_FALSE(mapping.numeric_keys);
  EXPECT_EQ(mapping.key_to_page.size(), 4u);
  // First-seen order: a.jpg=0, b.jpg=1 (block 0); app.js=2, site.css=3.
  EXPECT_EQ(mapping.blocks.block_of(0), mapping.blocks.block_of(1));
  EXPECT_EQ(mapping.blocks.block_of(2), mapping.blocks.block_of(3));
}

TEST_F(CsvTrace, StreamingMatchesMaterialized) {
  const std::string file = path("trace.csv");
  {
    std::ofstream out(file);
    Xoshiro256pp rng(5);
    for (int i = 0; i < 400; ++i)
      out << i << "," << 1000 + rng.below(24) << ",4096\n";
  }
  CsvOptions options;
  options.block_pages = 4;
  options.k = 8;
  const Instance inst = load_csv_trace(file, options);

  auto mapping = std::make_shared<const CsvMapping>(
      build_csv_mapping(file, options));
  CsvSource src(file, mapping, options);
  EXPECT_EQ(src.horizon_hint(), 400);

  LruPolicy a, b;
  EXPECT_TRUE(identical_run(simulate(inst, a), simulate(src, b)));
  src.rewind();
  LruPolicy c;
  EXPECT_TRUE(identical_run(simulate(inst, a), simulate(src, c)));
}

TEST_F(CsvTrace, RejectsEmptyAndMissingFiles) {
  CsvOptions options;
  options.k = 4;
  EXPECT_THROW(build_csv_mapping(path("missing.csv"), options),
               std::runtime_error);
  const std::string empty = path("empty.csv");
  {
    std::ofstream out(empty);
    out << "timestamp,key,size\n";  // header only, no data
  }
  EXPECT_THROW(build_csv_mapping(empty, options), std::runtime_error);
  CsvOptions bad = options;
  bad.k = 0;
  EXPECT_THROW(build_csv_mapping(empty, bad), std::invalid_argument);
}

TEST_F(CsvTrace, SizeColumnIsOptional) {
  const std::string file = path("two_col.csv");
  {
    std::ofstream out(file);
    out << "1,alpha\n2,beta\n3,alpha\n";  // timestamp,key only
  }
  CsvOptions options;
  options.block_pages = 2;
  options.k = 2;
  const CsvMapping mapping = build_csv_mapping(file, options);
  EXPECT_EQ(mapping.rows, 3);
  EXPECT_EQ(mapping.key_to_page.size(), 2u);
}

TEST_F(CsvTrace, RejectsNonFiniteAndHexFloatFields) {
  // Regression: strtod-based parsing accepted "inf"/"nan"/hex-float
  // timestamps as numeric, turning corrupt rows into data rows, and
  // coerced non-finite sizes into instance structure.
  const std::string file = path("corrupt.csv");
  {
    std::ofstream out(file);
    out << "inf,666,4096\n";    // non-finite timestamp: not a data row
    out << "nan,667,4096\n";    // ditto
    out << "0x1p3,668,4096\n";  // hex-float timestamp: not a data row
    out << "1e999,669,4096\n";  // overflows to +inf: not a data row
    out << "1,10,4096\n2,11,4096\n";
  }
  CsvOptions options;
  options.block_pages = 2;
  options.k = 2;
  const CsvMapping mapping = build_csv_mapping(file, options);
  EXPECT_EQ(mapping.rows, 2);  // only the two well-formed rows survive
  EXPECT_EQ(mapping.key_to_page.count("666"), 0u);
  EXPECT_EQ(mapping.key_to_page.count("668"), 0u);
}

TEST_F(CsvTrace, ToleratesSpacePaddingAndCrlfLineEndings) {
  // strtod skipped leading whitespace, so space-padded fields have
  // always been data rows; the finite-decimal gate must keep accepting
  // them, and a CRLF file must not glue '\r' onto the last field.
  const std::string file = path("padded.csv");
  {
    std::ofstream out(file);
    out << "1, 10, 4096\r\n";
    out << " 2,11,4096\r\n";
    out << "3,12, 8192\n";
  }
  CsvOptions options;
  options.block_pages = 4;
  options.k = 4;
  options.strict = true;  // '\r' in the size field would throw here
  const CsvMapping mapping = build_csv_mapping(file, options);
  EXPECT_EQ(mapping.rows, 3);
  EXPECT_EQ(mapping.key_to_page.size(), 3u);
  // The key field itself is not trimmed (keys are opaque): ' 10' != '11'.
  EXPECT_EQ(mapping.key_to_page.count("11"), 1u);
}

TEST_F(CsvTrace, NonFiniteSizesFallBackToUnitSize) {
  const std::string file = path("badsize.csv");
  {
    std::ofstream out(file);
    out << "1,10,inf\n2,10,nan\n3,10,4096\n";
  }
  CsvOptions options;
  options.block_pages = 2;
  options.k = 2;
  options.cost_from_size = true;
  options.page_bytes = 1.0;
  const CsvMapping mapping = build_csv_mapping(file, options);
  EXPECT_EQ(mapping.rows, 3);
  // inf/nan sizes coerce to 1.0 (lax mode): mean = (1 + 1 + 4096) / 3.
  const BlockId b = mapping.blocks.block_of(mapping.key_to_page.at("10"));
  EXPECT_DOUBLE_EQ(mapping.blocks.cost(b), (1.0 + 1.0 + 4096.0) / 3.0);
}

TEST_F(CsvTrace, StrictModeReportsOffendingRowNumber) {
  const std::string file = path("strict.csv");
  {
    std::ofstream out(file);
    out << "timestamp,key,size\n";  // header: still skipped in strict mode
    out << "1,10,4096\n";
    out << "2,11,oops\n";  // malformed size on line 3
  }
  CsvOptions options;
  options.block_pages = 2;
  options.k = 2;
  options.strict = true;
  try {
    build_csv_mapping(file, options);
    FAIL() << "strict mode should reject the malformed size field";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << "diagnostic was: " << e.what();
  }

  // The same trace parses in lax mode (size coerced to 1.0)...
  options.strict = false;
  const CsvMapping lax = build_csv_mapping(file, options);
  EXPECT_EQ(lax.rows, 2);

  // ...and strict mode also rejects empty keys, with the row number.
  const std::string nokey = path("nokey.csv");
  {
    std::ofstream out(nokey);
    out << "1,10,4096\n2,,4096\n";
  }
  options.strict = true;
  try {
    build_csv_mapping(nokey, options);
    FAIL() << "strict mode should reject the empty key";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

TEST_F(CsvTrace, StrictStreamingSourceReportsRowNumberAfterRewind) {
  const std::string file = path("stream_strict.csv");
  {
    std::ofstream out(file);
    out << "1,10,4096\n2,11,4096\n";
  }
  CsvOptions options;
  options.block_pages = 2;
  options.k = 2;
  options.strict = true;
  auto mapping = std::make_shared<const CsvMapping>(
      build_csv_mapping(file, options));
  CsvSource src(file, mapping, options);
  PageId p = 0;
  int n = 0;
  while (src.next(p)) ++n;
  EXPECT_EQ(n, 2);
  src.rewind();  // line counter must restart with the stream
  n = 0;
  while (src.next(p)) ++n;
  EXPECT_EQ(n, 2);
}

TEST_F(CsvTrace, CostFromSizeScalesBlockCosts) {
  const std::string file = path("sized.csv");
  {
    std::ofstream out(file);
    out << "1,10,4096\n2,11,4096\n3,100,65536\n4,101,65536\n";
  }
  CsvOptions options;
  options.block_pages = 2;
  options.k = 4;
  options.cost_from_size = true;
  const CsvMapping mapping = build_csv_mapping(file, options);
  const BlockId cheap = mapping.blocks.block_of(mapping.key_to_page.at("10"));
  const BlockId dear = mapping.blocks.block_of(mapping.key_to_page.at("100"));
  EXPECT_LT(mapping.blocks.cost(cheap), mapping.blocks.cost(dear));
}

}  // namespace
}  // namespace bac
