// Adversarial internals tests for the modern policy zoo (S3-FIFO, SIEVE,
// ARC, and the block-aware variants): hand-computed traces pinning the
// frozen eviction semantics, the registry's parameterized-spec grammar
// and its error messages, structural counters through export_metrics,
// quick-check equivalence against the frozen reference twins, and the
// zero-allocation reset-reuse guarantee the sweep relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "algs/policies/modern.hpp"
#include "algs/zoo.hpp"
#include "core/cost_meter.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"
#include "obs/metrics.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"
#include "verify/reference_policies.hpp"

// --- allocation counting ----------------------------------------------------
// Same idiom as test_eviction_index.cpp: this binary's global operator
// new counts allocations so tests can assert a region allocates nothing.

namespace {
std::atomic<long long> g_allocations{0};

void* counted_alloc(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bac {
namespace {

/// Replay inst.requests through the policy with simulator-grade plumbing
/// (feasibility asserted each step); the final cache state is left in
/// `cache` for inspection.
void drive(OnlinePolicy& policy, const Instance& inst, CacheSet& cache,
           CostMeter& meter) {
  cache.clear();
  CacheOps ops(inst.blocks, cache, meter, inst.k);
  policy.reset(inst);
  Time t = 0;
  for (const PageId p : inst.requests) {
    ++t;
    meter.begin_step(t);
    policy.on_request(t, p, ops);
    ASSERT_TRUE(cache.contains(p));
    ASSERT_LE(cache.size(), inst.k);
  }
}

/// Run `requests` through a fresh reset of the policy over single-page
/// blocks and return the final cached set (deterministic policies only).
std::vector<PageId> final_cache(OnlinePolicy& policy, int n_pages, int k,
                                const std::vector<PageId>& requests) {
  Instance inst{BlockMap::contiguous(n_pages, 1), requests, k};
  CacheSet cache(inst.n_pages());
  CostMeter meter(inst.blocks);
  drive(policy, inst, cache, meter);
  std::vector<PageId> pages = cache.pages();
  std::sort(pages.begin(), pages.end());
  return pages;
}

std::uint64_t counter_value(const OnlinePolicy& policy,
                            const std::string& name) {
  obs::MetricRegistry registry;
  policy.export_metrics(registry);
  return registry.counter(name).value();
}

// --- SIEVE hand semantics ---------------------------------------------------

TEST(SievePolicyTest, HandWrapsAtBothEnds) {
  // k = 3, pages 1..6 in single-page blocks; every expectation below is
  // the NSDI'24 sweep computed by hand.
  SievePolicy sieve;

  // Fill 1,2,3 then hit all three: every visited bit set. The miss on 4
  // must sweep the whole list (clearing bits), wrap at the newest end
  // back to the front, and evict the oldest page 1.
  EXPECT_EQ(final_cache(sieve, 7, 3, {1, 2, 3, 1, 2, 3, 4}),
            (std::vector<PageId>{2, 3, 4}));

  // The hand parked just past the victim: after a hit on 2, the miss on
  // 5 resumes mid-list (clears 2's bit, evicts 3) instead of restarting.
  EXPECT_EQ(final_cache(sieve, 7, 3, {1, 2, 3, 1, 2, 3, 4, 2, 5}),
            (std::vector<PageId>{2, 4, 5}));

  // Hits on 2 and 4 leave 5 the only unvisited page; the miss on 6
  // evicts the *newest* page and parks the hand off the tail (kNone),
  // where the next miss must restart from the front.
  EXPECT_EQ(final_cache(sieve, 7, 3, {1, 2, 3, 1, 2, 3, 4, 2, 5, 2, 4, 6}),
            (std::vector<PageId>{2, 4, 6}));

  // Restart from the front: 2 is visited (cleared, swept past), 4 is not
  // (cleared during the previous sweep) and is evicted.
  EXPECT_EQ(
      final_cache(sieve, 7, 3, {1, 2, 3, 1, 2, 3, 4, 2, 5, 2, 4, 6, 1}),
      (std::vector<PageId>{1, 2, 6}));

  // The last run swept: hand advances were counted and exported.
  EXPECT_GT(counter_value(sieve, "policy_hand_sweeps_total"), 0u);
}

// --- S3-FIFO ghost reinsertion ----------------------------------------------

TEST(S3FifoPolicyTest, GhostHitReinsertsIntoMainAndSurvivesSmallChurn) {
  // k = 4 so small_target = max(1, 0.1*4) = 1. Page 1 is evicted from the
  // small queue, remembered by the ghost, and its re-request must land it
  // in the main queue where later one-hit wonders cannot push it out.
  S3FifoPolicy s3;
  EXPECT_EQ(final_cache(s3, 9, 4, {1, 2, 3, 4, 5, 1, 6, 7, 8}),
            (std::vector<PageId>{1, 6, 7, 8}));
  EXPECT_EQ(s3.small_target(), 1);
  EXPECT_EQ(counter_value(s3, "policy_ghost_hits_total"), 1u);
  // Page 1 entered main via the ghost, not via a small-queue promotion.
  EXPECT_EQ(counter_value(s3, "policy_small_promotions_total"), 0u);
}

TEST(S3FifoPolicyTest, FrequentSmallPageIsPromotedToMain) {
  // Page 1 is hit twice while in the small queue (freq 2 > 1), so when
  // the small front reaches it the page is promoted to main instead of
  // evicted; the one-hit wonders 2 and 3 die first.
  S3FifoPolicy s3;
  EXPECT_EQ(final_cache(s3, 9, 4, {1, 2, 3, 4, 1, 1, 5, 6, 7}),
            (std::vector<PageId>{1, 5, 6, 7}));
  EXPECT_GE(counter_value(s3, "policy_small_promotions_total"), 1u);
}

TEST(S3FifoPolicyTest, KnobShapesNameAndSmallTarget) {
  S3FifoPolicy wide(0.5);
  EXPECT_EQ(wide.name(), "S3FIFO@0.5");
  EXPECT_DOUBLE_EQ(wide.small_frac(), 0.5);
  const Instance inst{BlockMap::contiguous(16, 1), {}, 8};
  wide.reset(inst);
  EXPECT_EQ(wide.small_target(), 4);  // int(0.5 * 8)

  S3FifoPolicy dflt;
  EXPECT_EQ(dflt.name(), "S3FIFO");
  dflt.reset(inst);
  EXPECT_EQ(dflt.small_target(), 1);  // int(0.1 * 8) = 0, clamped up to 1
}

// --- ARC adaptivity ---------------------------------------------------------

TEST(ArcPolicyTest, TargetPOscillatesUnderMixedRecencyFrequencyTraffic) {
  // A zipf stream over a working set 4x the cache mixes one-hit wonders
  // (whose B1 ghost hits grow the recency target) with hot re-references
  // (whose B2 ghost hits shrink it). The adaptive target must move in
  // BOTH directions; a broken Case II/III would only ever move one way,
  // or not at all.
  const int n = 32;
  const int k = 8;
  Xoshiro256pp rng(21);
  Instance inst{BlockMap::contiguous(n, 1), zipf_trace(n, 4000, 0.9, rng),
                k};
  CacheSet cache(inst.n_pages());
  CostMeter meter(inst.blocks);
  CacheOps ops(inst.blocks, cache, meter, inst.k);
  ArcPolicy arc;
  arc.reset(inst);
  EXPECT_EQ(arc.target_p(), 0);

  long long ups = 0;
  long long downs = 0;
  int prev_p = arc.target_p();
  Time t = 0;
  for (const PageId p : inst.requests) {
    ++t;
    meter.begin_step(t);
    arc.on_request(t, p, ops);
    ASSERT_TRUE(cache.contains(p));
    ASSERT_LE(cache.size(), inst.k);
    const int cur_p = arc.target_p();
    ASSERT_GE(cur_p, 0);
    ASSERT_LE(cur_p, k);
    if (cur_p > prev_p) ++ups;
    if (cur_p < prev_p) ++downs;
    prev_p = cur_p;
  }
  EXPECT_GT(ups, 0) << "B1 ghost hits never grew the recency target";
  EXPECT_GT(downs, 0) << "B2 ghost hits never shrank the recency target";
  // Every observed move is one counted adjustment; adjustments clamped at
  // the [0, c] rails move nothing but still count, hence >=.
  EXPECT_GE(counter_value(arc, "policy_arc_p_adjustments_total"),
            static_cast<std::uint64_t>(ups + downs));
  EXPECT_GT(counter_value(arc, "policy_ghost_hits_total"), 0u);
}

// --- block-aware variants ---------------------------------------------------

TEST(BlockPoliciesTest, BlockS3FifoFlushesWholeBlocks) {
  // Pages 0..11 in blocks of 4 (blocks 0,1,2), k = 8 = two block slots.
  // Touching all of blocks 0 and 1 fills the cache; the first request
  // into block 2 must flush one whole victim block in a single step.
  BlockS3FifoPolicy s3;
  Instance inst{BlockMap::contiguous(12, 4),
                {0, 1, 2, 3, 4, 5, 6, 7, 8}, 8};
  CacheSet cache(inst.n_pages());
  CostMeter meter(inst.blocks);
  drive(s3, inst, cache, meter);
  // Block 0 (small-queue front, freq for its pages <= 1 at flush time)
  // was batch-flushed; block 1 and the new page of block 2 remain.
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_FALSE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_TRUE(cache.contains(7));
  EXPECT_TRUE(cache.contains(8));
  EXPECT_EQ(counter_value(s3, "policy_block_flushes_total"), 1u);
}

TEST(BlockPoliciesTest, BlockSieveFlushesColdBlockAndKeepsVisitedOne) {
  // Pages 0..11 in blocks of 4, k = 5. Block 0's visited bit (set by its
  // in-block misses and the hit on 0) shields it; the sweep for block 2
  // batch-flushes the cold block 1 instead.
  BlockSievePolicy sieve;
  Instance inst{BlockMap::contiguous(12, 4), {0, 1, 2, 3, 4, 0, 8}, 5};
  CacheSet cache(inst.n_pages());
  CostMeter meter(inst.blocks);
  drive(sieve, inst, cache, meter);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_FALSE(cache.contains(4));  // block 1 batch-flushed
  EXPECT_TRUE(cache.contains(8));
  EXPECT_EQ(counter_value(sieve, "policy_block_flushes_total"), 1u);
}

TEST(BlockPoliciesTest, BlockSieveNeverFlushesTheRequestedBlock) {
  // k = 4: serving block 1's first page overflows the cache while block 1
  // is the hand's natural victim (visited bit 0). The hand must skip the
  // requested block — without clearing its bit — wrap, and flush the now
  // swept-clean block 0 instead of the block being served.
  BlockSievePolicy sieve;
  Instance inst{BlockMap::contiguous(12, 4), {0, 1, 2, 3, 4}, 4};
  CacheSet cache(inst.n_pages());
  CostMeter meter(inst.blocks);
  drive(sieve, inst, cache, meter);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(counter_value(sieve, "policy_block_flushes_total"), 1u);
}

// --- registry spec grammar --------------------------------------------------

std::string thrown_message(const std::function<void()>& f) {
  try {
    f();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(PolicySpecTest, KnobbedSpecsResolve) {
  EXPECT_EQ(make_policy("s3fifo")->name(), "S3FIFO");
  EXPECT_EQ(make_policy("s3fifo@0.25")->name(), "S3FIFO@0.25");
  EXPECT_EQ(make_policy("sieve")->name(), "SIEVE");
  EXPECT_EQ(make_policy("arc")->name(), "ARC");
  EXPECT_EQ(make_policy("block_s3fifo@0.25")->name(), "BlockS3FIFO@0.25");
  EXPECT_EQ(make_policy("block_sieve")->name(), "BlockSIEVE");

  auto knobbed = make_policy("s3fifo@0.25");
  auto* s3 = dynamic_cast<S3FifoPolicy*>(knobbed.get());
  ASSERT_NE(s3, nullptr);
  EXPECT_DOUBLE_EQ(s3->small_frac(), 0.25);
}

TEST(PolicySpecTest, MalformedKnobValue) {
  const std::string empty = thrown_message([] { make_policy("s3fifo@"); });
  EXPECT_NE(empty.find("malformed knob value"), std::string::npos) << empty;
  const std::string junk =
      thrown_message([] { make_policy("s3fifo@0.5x"); });
  EXPECT_NE(junk.find("malformed knob value"), std::string::npos) << junk;
  // The grammar rides along so the error teaches the spec syntax.
  EXPECT_NE(junk.find("<name>@<value>"), std::string::npos) << junk;
}

TEST(PolicySpecTest, OutOfRangeKnobValue) {
  for (const char* spec : {"s3fifo@1.5", "s3fifo@0", "s3fifo@1",
                           "s3fifo@-0.1", "block_s3fifo@2"}) {
    const std::string msg =
        thrown_message([spec] { make_policy(spec); });
    EXPECT_NE(msg.find("out of range"), std::string::npos)
        << spec << ": " << msg;
  }
}

TEST(PolicySpecTest, KnoblessPolicyRejectsKnob) {
  const std::string msg = thrown_message([] { make_policy("lru@0.5"); });
  EXPECT_NE(msg.find("takes no knob"), std::string::npos) << msg;
}

TEST(PolicySpecTest, UnknownNameSuggestsNearest) {
  const std::string typo = thrown_message([] { make_policy("s3fifoo"); });
  EXPECT_NE(typo.find("did you mean 's3fifo'"), std::string::npos) << typo;
  // A typo'd knob spec still gets the suggestion for its name part.
  const std::string knob_typo =
      thrown_message([] { make_policy("seive@0.5"); });
  EXPECT_NE(knob_typo.find("did you mean 'sieve'"), std::string::npos)
      << knob_typo;
  // Nothing close: no suggestion, but the registry list and grammar show.
  const std::string far =
      thrown_message([] { make_policy("definitely_nothing"); });
  EXPECT_EQ(far.find("did you mean"), std::string::npos) << far;
  EXPECT_NE(far.find("known:"), std::string::npos) << far;
  EXPECT_NE(far.find("a spec is <name>"), std::string::npos) << far;
}

// --- reference-twin quick check ---------------------------------------------

TEST(ReferenceTwinsTest, ProductionMatchesFrozenTwinsOnSmallInstances) {
  // The 500-seed campaign lives in bacfuzz; this is the fast in-tree
  // version so a divergence fails unit CI before the fuzzer runs.
  Xoshiro256pp rng(21);
  const Instance zipf{BlockMap::contiguous(32, 4),
                      zipf_trace(32, 800, 0.9, rng), 8};
  const Instance scan{BlockMap::contiguous(24, 3), scan_trace(24, 300), 9};
  auto twins = verify::reference_policy_twins();
  ASSERT_GE(twins.size(), 13u);
  for (auto& [spec, twin] : twins) {
    auto production = make_policy(spec);
    for (const Instance* inst : {&zipf, &scan}) {
      const std::vector<std::string> diffs =
          verify::diff_policy_runs(*inst, *production, *twin, 7, spec);
      EXPECT_TRUE(diffs.empty())
          << spec << ": " << (diffs.empty() ? "" : diffs.front());
    }
  }
}

// --- zero-allocation reset-reuse --------------------------------------------

TEST(ResetReuseTest, ModernPoliciesDoNotAllocateAcrossSweepCells) {
  Xoshiro256pp rng(11);
  const Instance inst{BlockMap::contiguous(128, 4),
                      zipf_trace(128, 4000, 0.9, rng), 32};
  CacheSet cache(inst.n_pages());
  CostMeter meter(inst.blocks);

  S3FifoPolicy s3;
  S3FifoPolicy s3_wide(0.25);
  SievePolicy sieve;
  ArcPolicy arc;
  BlockS3FifoPolicy block_s3;
  BlockSievePolicy block_sieve;
  OnlinePolicy* policies[] = {&s3, &s3_wide, &sieve, &arc, &block_s3,
                              &block_sieve};
  for (OnlinePolicy* policy : policies) {
    drive(*policy, inst, cache, meter);  // warm-up sizes every index
    drive(*policy, inst, cache, meter);
    const long long before = g_allocations.load();
    for (int round = 0; round < 3; ++round)
      drive(*policy, inst, cache, meter);
    EXPECT_EQ(g_allocations.load(), before)
        << policy->name()
        << ": reset()+replay across sweep cells must reuse index storage";
  }
}

}  // namespace
}  // namespace bac
