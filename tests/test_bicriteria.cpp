// Tests for the Section 4.1 bicriteria roundings (Theorem 4.1): the 2k
// space bound, the 2x cost bound against the fractional block-batched
// cost, and the Corollary 4.2 offline pipeline (LP solve + rounding).
#include <gtest/gtest.h>

#include "algs/bicriteria.hpp"
#include "algs/policies/fractional_paging.hpp"
#include "algs/opt.hpp"
#include "lp/naive_lp.hpp"
#include "trace/adversarial.hpp"
#include "trace/generators.hpp"

namespace bac {
namespace {

std::vector<std::vector<double>> collect_fractional_paging_x(
    const Instance& inst) {
  FractionalWeightedPaging fp(inst);
  std::vector<std::vector<double>> x;
  x.push_back(std::vector<double>(static_cast<std::size_t>(inst.n_pages()), 1.0));
  for (Time t = 1; t <= inst.horizon(); ++t)
    x.push_back(fp.step(inst.request_at(t)));
  return x;
}

TEST(Bicriteria, FractionalPagingXIsLpFeasible) {
  Xoshiro256pp rng(91);
  const Instance inst = make_instance(12, 3, 4,
                                      zipf_trace(12, 200, 0.8, rng));
  const auto x = collect_fractional_paging_x(inst);
  EXPECT_EQ(check_fractional_feasible(inst, x), 0)
      << "fractional paging must satisfy the naive LP constraints";
}

TEST(Bicriteria, FetchRoundingRespectsTheorem41Bounds) {
  Xoshiro256pp rng(92);
  for (int trial = 0; trial < 5; ++trial) {
    const Instance inst = make_instance(
        16, 4, 5, zipf_trace(16, 300, 0.9, rng.substream(trial)));
    const auto x = collect_fractional_paging_x(inst);
    const auto outcome = round_fetch_threshold(inst, x);
    EXPECT_LE(outcome.max_cache_used, 2 * inst.k)
        << "space bound violated (trial " << trial << ")";
    const Cost frac = fractional_block_fetch_cost(inst, x);
    EXPECT_LE(outcome.fetch_cost, 2.0 * frac + 1e-6)
        << "cost bound violated (trial " << trial << ")";
  }
}

TEST(Bicriteria, FetchRoundingServesEveryRequest) {
  Xoshiro256pp rng(93);
  const Instance inst = make_instance(10, 2, 4,
                                      uniform_trace(10, 150, rng));
  const auto x = collect_fractional_paging_x(inst);
  const auto outcome = round_fetch_threshold(inst, x);
  // Verify against a relaxed instance with doubled cache.
  Instance relaxed = inst;
  relaxed.k = 2 * inst.k;
  const ScheduleCost sc = evaluate(relaxed, outcome.schedule);
  EXPECT_TRUE(sc.feasible) << sc.infeasibility;
  EXPECT_DOUBLE_EQ(sc.fetch_cost, outcome.fetch_cost);
}

TEST(Bicriteria, EvictRoundingRespectsBounds) {
  Xoshiro256pp rng(94);
  for (int trial = 0; trial < 5; ++trial) {
    const Instance inst = make_instance(
        12, 3, 4, zipf_trace(12, 250, 1.0, rng.substream(trial)));
    const auto x = collect_fractional_paging_x(inst);
    const auto outcome = round_evict_threshold(inst, x);
    EXPECT_LE(outcome.max_cache_used, 2 * inst.k + 1);
    const Cost frac = fractional_block_evict_cost(inst, x);
    EXPECT_LE(outcome.eviction_cost, 2.0 * frac + 1e-6)
        << "trial " << trial;
  }
}

TEST(Bicriteria, LpSolutionRoundsToTwoApproxWithDoubleCache) {
  // Corollary 4.2 pipeline: solve the fetching LP exactly, round, compare
  // to OPT(h): cost <= 2 * LP <= 2 * OPT with space 2h.
  Xoshiro256pp rng(95);
  for (int trial = 0; trial < 3; ++trial) {
    const int n = 6, beta = 2, h = 3;
    Instance inst = make_instance(
        n, beta, h, uniform_trace(n, 16, rng.substream(trial)));
    const auto lp = solve_naive_lp(inst, CostModel::Fetching);
    ASSERT_EQ(lp.status, LpStatus::Optimal);
    ASSERT_EQ(check_fractional_feasible(inst, lp.x), 0);
    const auto outcome = round_fetch_threshold(inst, lp.x);
    EXPECT_LE(outcome.max_cache_used, 2 * h);
    const OptResult opt = exact_opt_fetching(inst);
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(outcome.fetch_cost, 2.0 * opt.cost + 1e-6)
        << "2-approximation with doubled cache (trial " << trial << ")";
  }
}

TEST(Bicriteria, GapInstanceShowsLpRoundingTension) {
  // On the A.2 instance the LP is tiny but rounding with 2k space is easy:
  // with k = 2*beta - 1 doubled, everything fits after warm-up.
  const Instance inst = gap_instance(3, 3);
  const auto lp = solve_naive_lp(inst, CostModel::Fetching);
  ASSERT_EQ(lp.status, LpStatus::Optimal);
  const auto outcome = round_fetch_threshold(inst, lp.x);
  EXPECT_LE(outcome.max_cache_used, 2 * inst.k);
  EXPECT_LE(outcome.fetch_cost, 2.0 * lp.objective + 1e-6);
}

TEST(Bicriteria, FractionalCostFunctionalsAgreeOnIntegralMoves) {
  // An integral x (0/1) should make the fractional block costs equal the
  // batched schedule costs of the same moves.
  const Instance inst = make_instance(4, 2, 2, {0, 1, 2, 3});
  // x: start all 1. Step 1: page0 in. Step2: page1 in, page0... build by
  // hand: cache = last two requested pages (within one block at a time).
  std::vector<std::vector<double>> x(5,
      std::vector<double>(4, 1.0));
  x[1] = {0, 1, 1, 1};
  x[2] = {0, 0, 1, 1};
  x[3] = {1, 1, 0, 1};  // block 0 evicted, page 2 fetched
  x[4] = {1, 1, 0, 0};
  EXPECT_EQ(check_fractional_feasible(inst, x), 0);
  // Fetches: t1 (p0), t2 (p1), t3 (p2), t4 (p3) but t1/t2 same block ->
  // block fetch cost = 1 + 1 + 1 + 1 = 4? max-decrease per block per step:
  // t1: block0 dec 1 -> 1; t2: block0 dec 1 -> 1; t3: block1 dec 1;
  // t4: block1 dec 1. Total 4.
  EXPECT_DOUBLE_EQ(fractional_block_fetch_cost(inst, x), 4.0);
  // Evictions: t3: block0 pages rise by 1 (max 1) -> 1. Total 1.
  EXPECT_DOUBLE_EQ(fractional_block_evict_cost(inst, x), 1.0);
}

}  // namespace
}  // namespace bac
