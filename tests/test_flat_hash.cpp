// Unit tests for the open-addressing FlatMap/FlatSet (util/flat_hash.hpp):
// a 20k-operation mixed fuzz against a std::unordered_map mirror,
// rehash-under-load and erase/re-insert tombstone edge cases,
// heterogeneous string_view lookup, and the repeated-reset zero-allocation
// guarantee the CSV interner and exact-OPT layer DP rely on (mirroring the
// counting-operator-new harness in test_eviction_index.cpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/flat_hash.hpp"
#include "util/rng.hpp"

// --- allocation counting ----------------------------------------------------
// This binary's global operator new counts allocations, so tests can
// assert that a code region allocates nothing. The counter is the only
// addition; storage still comes from malloc.

namespace {
std::atomic<long long> g_allocations{0};

void* counted_alloc(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bac {
namespace {

// --- basics -----------------------------------------------------------------

TEST(FlatMapTest, EmptyTable) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), 0u);
  EXPECT_EQ(m.find(7u), nullptr);
  EXPECT_EQ(m.count(7u), 0u);
  EXPECT_FALSE(m.erase(7u));
  EXPECT_THROW((void)m.at(7u), std::out_of_range);
  m.prefetch(m.hash(7u));  // no-op, must not crash
  m.reset();
  EXPECT_EQ(m.begin(), m.end());
}

TEST(FlatMapTest, InsertFindEraseRoundTrip) {
  FlatMap<std::uint64_t, int> m;
  auto [v, inserted] = m.try_emplace(42u, 7);
  ASSERT_TRUE(inserted);
  EXPECT_EQ(*v, 7);
  auto [v2, inserted2] = m.try_emplace(42u, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(*v2, 7);  // try_emplace does not overwrite
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(42u), 7);
  m.insert_or_assign(42u, 8);
  EXPECT_EQ(m.at(42u), 8);
  m[42u] = 9;
  EXPECT_EQ(m.at(42u), 9);
  EXPECT_TRUE(m.erase(42u));
  EXPECT_FALSE(m.erase(42u));
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(42u), nullptr);
}

TEST(FlatMapTest, IterationVisitsExactlyLiveEntries) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  std::uint64_t want_keys = 0, want_vals = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    m.try_emplace(k, k * 3);
    want_keys += k;
    want_vals += k * 3;
  }
  for (std::uint64_t k = 0; k < 100; k += 2) {  // erase evens
    m.erase(k);
    want_keys -= k;
    want_vals -= k * 3;
  }
  std::uint64_t keys = 0, vals = 0;
  std::size_t n = 0;
  for (const auto& [k, v] : m) {
    keys += k;
    vals += v;
    ++n;
  }
  EXPECT_EQ(n, m.size());
  EXPECT_EQ(keys, want_keys);
  EXPECT_EQ(vals, want_vals);
}

// --- rehash and tombstone edge cases ---------------------------------------

TEST(FlatMapTest, RehashUnderLoadPreservesEntries) {
  FlatMap<std::uint64_t, std::uint64_t> m;
  // No reserve: forces the full growth ladder 16 -> 32 -> ... while live.
  constexpr std::uint64_t kN = 10'000;
  for (std::uint64_t k = 0; k < kN; ++k) m.try_emplace(k * 2654435761u, k);
  ASSERT_EQ(m.size(), kN);
  for (std::uint64_t k = 0; k < kN; ++k) {
    const std::uint64_t* v = m.find(k * 2654435761u);
    ASSERT_NE(v, nullptr) << "lost key " << k << " across rehashes";
    EXPECT_EQ(*v, k);
  }
  EXPECT_GE(m.capacity() - m.capacity() / 8, m.size()) << "load factor > 7/8";
}

TEST(FlatMapTest, EraseReinsertChurnReusesTombstones) {
  FlatMap<std::uint64_t, int> m;
  m.reserve(64);
  const std::size_t cap = m.capacity();
  for (std::uint64_t k = 0; k < 64; ++k) m.try_emplace(k, 1);
  // Erase/re-insert the same keys far more times than the table has
  // slots: inserts must land in tombstones instead of consuming the
  // empty reserve (no growth, no unbounded probe chains).
  for (int round = 0; round < 1000; ++round) {
    const std::uint64_t k = static_cast<std::uint64_t>(round) % 64;
    EXPECT_TRUE(m.erase(k));
    EXPECT_TRUE(m.try_emplace(k, round).second);
  }
  EXPECT_EQ(m.size(), 64u);
  EXPECT_EQ(m.capacity(), cap) << "churn of resident keys must not grow";
  for (std::uint64_t k = 0; k < 64; ++k) EXPECT_EQ(m.count(k), 1u);
}

TEST(FlatMapTest, TombstoneHeavyTableStaysCorrect) {
  // Insert/erase disjoint waves so tombstones accumulate and force
  // same-capacity purging rehashes; the survivors must stay findable.
  FlatMap<std::uint64_t, int> m;
  m.reserve(128);
  std::uint64_t next = 0;
  std::vector<std::uint64_t> live;
  for (int wave = 0; wave < 200; ++wave) {
    for (int i = 0; i < 32; ++i) {
      m.try_emplace(next, wave);
      live.push_back(next);
      ++next;
    }
    for (int i = 0; i < 24; ++i) {
      ASSERT_TRUE(m.erase(live.front()));
      live.erase(live.begin());
    }
    ASSERT_EQ(m.size(), live.size());
  }
  for (const std::uint64_t k : live) EXPECT_EQ(m.count(k), 1u);
  EXPECT_EQ(m.count(0u), 0u);
}

// --- mirror fuzz ------------------------------------------------------------

TEST(FlatMapTest, MirrorFuzz20kOpsAgainstUnorderedMap) {
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> mirror;
  Xoshiro256pp rng(0xF1A7u);
  // Small key universe so ops collide constantly (the interesting cases).
  constexpr std::uint64_t kUniverse = 512;
  for (int op = 0; op < 20'000; ++op) {
    const std::uint64_t key = rng() % kUniverse;
    switch (rng() % 5) {
      case 0: {  // try_emplace
        const auto [v, inserted] = flat.try_emplace(key, key + 1);
        const auto [it, minserted] = mirror.try_emplace(key, key + 1);
        ASSERT_EQ(inserted, minserted);
        ASSERT_EQ(*v, it->second);
        break;
      }
      case 1: {  // insert_or_assign
        const std::uint64_t val = rng();
        flat.insert_or_assign(key, val);
        mirror.insert_or_assign(key, val);
        break;
      }
      case 2: {  // erase
        ASSERT_EQ(flat.erase(key), mirror.erase(key) == 1);
        break;
      }
      case 3: {  // find
        const std::uint64_t* v = flat.find(key);
        const auto it = mirror.find(key);
        ASSERT_EQ(v != nullptr, it != mirror.end());
        if (v != nullptr) {
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
      case 4: {  // occasional reset, both sides
        if (rng() % 97 == 0) {
          flat.reset();
          mirror.clear();
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), mirror.size());
  }
  // Final full-content sweep, both directions.
  for (const auto& [k, v] : mirror) {
    const std::uint64_t* fv = flat.find(k);
    ASSERT_NE(fv, nullptr);
    ASSERT_EQ(*fv, v);
  }
  for (const auto& [k, v] : flat) {
    const auto it = mirror.find(k);
    ASSERT_NE(it, mirror.end());
    ASSERT_EQ(it->second, v);
  }
}

// --- heterogeneous string lookup -------------------------------------------

TEST(FlatMapTest, HeterogeneousStringViewLookup) {
  FlatMap<std::string, int> m;
  std::string key_storage = "obj:12345";
  const std::string_view sv = key_storage;
  // Insert through a view: the std::string is constructed once, on insert.
  EXPECT_TRUE(m.try_emplace(sv, 1).second);
  EXPECT_FALSE(m.try_emplace(sv, 2).second);
  EXPECT_EQ(m.size(), 1u);
  // Lookups through view, literal, and owning string all hit.
  EXPECT_NE(m.find(std::string_view("obj:12345")), nullptr);
  EXPECT_NE(m.find(std::string("obj:12345")), nullptr);
  EXPECT_EQ(m.at(sv), 1);
  EXPECT_EQ(m.count(std::string_view("obj:99999")), 0u);
  // The split probe (hash once, find later) agrees with plain find.
  const std::uint64_t h = m.hash(sv);
  m.prefetch(h);
  EXPECT_EQ(m.find_hashed(h, sv), m.find(sv));
  EXPECT_TRUE(m.erase(std::string_view("obj:12345")));
  EXPECT_EQ(m.size(), 0u);
}

TEST(FlatMapTest, StringMirrorFuzz) {
  FlatMap<std::string, int> flat;
  std::unordered_map<std::string, int> mirror;
  Xoshiro256pp rng(0x5712u);
  for (int op = 0; op < 5'000; ++op) {
    std::string key = "k";  // built via += to dodge a GCC 12 -Wrestrict
    key += std::to_string(rng() % 300);
    const std::string_view sv = key;
    if (rng() % 3 == 0) {
      ASSERT_EQ(flat.erase(sv), mirror.erase(key) == 1);
    } else {
      const auto [v, inserted] = flat.try_emplace(sv, static_cast<int>(op));
      const auto [it, minserted] = mirror.try_emplace(key, static_cast<int>(op));
      ASSERT_EQ(inserted, minserted);
      ASSERT_EQ(*v, it->second);
    }
    ASSERT_EQ(flat.size(), mirror.size());
  }
  for (const auto& [k, v] : mirror) {
    const int* fv = flat.find(std::string_view(k));
    ASSERT_NE(fv, nullptr);
    ASSERT_EQ(*fv, v);
  }
}

// --- reset-reuse allocation contract ---------------------------------------

TEST(FlatMapTest, ResetReuseAllocatesNothing) {
  FlatMap<std::uint64_t, double> m;
  m.reserve(1024);
  // Warm-up round establishes steady-state capacity.
  for (std::uint64_t k = 0; k < 1024; ++k) m.try_emplace(k * 7919u, 0.5);
  ASSERT_EQ(m.size(), 1024u);

  const long long before = g_allocations.load();
  for (int round = 0; round < 10; ++round) {
    m.reset();
    for (std::uint64_t k = 0; k < 1024; ++k) {
      m.try_emplace(k * 7919u, static_cast<double>(round));
    }
    // Erase/re-insert churn inside the round must also stay free:
    // tombstones are reused, not grown around.
    for (std::uint64_t k = 0; k < 64; ++k) {
      m.erase(k * 7919u);
      m.try_emplace(k * 7919u, 1.0);
    }
    std::uint64_t live = 0;
    for (const auto& [key, val] : m) {
      (void)key;
      (void)val;
      ++live;
    }
    ASSERT_EQ(live, 1024u);
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "reset()/refill at steady-state size must not allocate";
}

TEST(FlatMapTest, SwapAndPingPongReuse) {
  // The exact-OPT layer DP ping-pongs two layers via swap + reset; after
  // both sides reach steady-state capacity the cycle is allocation-free.
  FlatMap<std::uint64_t, double> layer, next;
  layer.reserve(256);
  next.reserve(256);
  for (std::uint64_t k = 0; k < 256; ++k) layer.try_emplace(k, 0.0);
  for (std::uint64_t k = 0; k < 256; ++k) next.try_emplace(k, 0.0);

  const long long before = g_allocations.load();
  for (int step = 0; step < 20; ++step) {
    next.reset();
    for (const auto& [mask, cost] : layer) next.try_emplace(mask ^ 1u, cost + 1.0);
    layer.swap(next);
    ASSERT_EQ(layer.size(), 256u);
  }
  EXPECT_EQ(g_allocations.load(), before);
}

// --- FlatSet ----------------------------------------------------------------

TEST(FlatSetTest, BasicsAndIteration) {
  FlatSet<std::uint64_t> s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(3u));
  EXPECT_FALSE(s.insert(3u));
  EXPECT_TRUE(s.insert(9u));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(3u));
  EXPECT_EQ(s.count(9u), 1u);
  EXPECT_FALSE(s.contains(4u));
  std::uint64_t sum = 0;
  for (const std::uint64_t k : s) sum += k;
  EXPECT_EQ(sum, 12u);
  EXPECT_TRUE(s.erase(3u));
  EXPECT_FALSE(s.erase(3u));
  EXPECT_EQ(s.size(), 1u);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.contains(9u));
}

TEST(FlatSetTest, HeterogeneousStringInsertAndLookup) {
  FlatSet<std::string> s;
  EXPECT_TRUE(s.insert(std::string_view("alpha")));
  EXPECT_FALSE(s.insert(std::string_view("alpha")));
  EXPECT_TRUE(s.contains(std::string_view("alpha")));
  EXPECT_FALSE(s.contains(std::string_view("beta")));
  EXPECT_TRUE(s.erase(std::string_view("alpha")));
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace bac
