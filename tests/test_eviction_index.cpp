// Unit tests for the flat eviction-index primitives (IntrusiveOrderList,
// LazyMinHeap): ordering and tie-breaking vs std::set, lazy-deletion edge
// cases (erase-head, stale-pop, epoch wrap, reset reuse), and the
// repeated-reset allocation guarantee the policy layer relies on when a
// sweep replays thousands of (workload, k) cells through one policy
// object.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <limits>
#include <new>
#include <set>
#include <utility>
#include <vector>

#include "algs/policies/classical.hpp"
#include "core/cost_meter.hpp"
#include "core/eviction_index.hpp"
#include "core/instance.hpp"
#include "core/policy.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

// --- allocation counting ----------------------------------------------------
// This binary's global operator new counts allocations, so tests can
// assert that a code region allocates nothing. The counter is the only
// addition; storage still comes from malloc.

namespace {
std::atomic<long long> g_allocations{0};

void* counted_alloc(std::size_t n) {
  ++g_allocations;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace bac {
namespace {

// --- IntrusiveOrderList -----------------------------------------------------

TEST(IntrusiveOrderListTest, FifoOrder) {
  IntrusiveOrderList list;
  list.reset(8);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.front(), IntrusiveOrderList::kNone);
  EXPECT_EQ(list.pop_front(), IntrusiveOrderList::kNone);
  for (int id : {3, 1, 5, 0}) list.push_back(id);
  EXPECT_EQ(list.size(), 4);
  EXPECT_TRUE(list.contains(5));
  EXPECT_FALSE(list.contains(2));
  EXPECT_EQ(list.pop_front(), 3);
  EXPECT_EQ(list.pop_front(), 1);
  EXPECT_EQ(list.pop_front(), 5);
  EXPECT_EQ(list.pop_front(), 0);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveOrderListTest, EraseHeadMiddleTail) {
  IntrusiveOrderList list;
  list.reset(8);
  for (int id = 0; id < 5; ++id) list.push_back(id);
  list.erase(0);  // head
  list.erase(2);  // middle
  list.erase(4);  // tail
  EXPECT_EQ(list.size(), 2);
  EXPECT_EQ(list.pop_front(), 1);
  EXPECT_EQ(list.pop_front(), 3);
  // Erased ids can be re-inserted (land at the back).
  list.push_back(2);
  list.push_back(0);
  EXPECT_EQ(list.pop_front(), 2);
  EXPECT_EQ(list.pop_front(), 0);
}

TEST(IntrusiveOrderListTest, TouchMovesToBack) {
  IntrusiveOrderList list;
  list.reset(4);
  for (int id = 0; id < 3; ++id) list.push_back(id);
  list.touch(0);     // present: move to back
  list.touch(3);     // absent: plain insert
  EXPECT_EQ(list.pop_front(), 1);
  EXPECT_EQ(list.pop_front(), 2);
  EXPECT_EQ(list.pop_front(), 0);
  EXPECT_EQ(list.pop_front(), 3);
}

TEST(IntrusiveOrderListTest, ResetDropsStateAndKeepsStorage) {
  IntrusiveOrderList list;
  list.reset(64);
  for (int id = 0; id < 64; ++id) list.push_back(id);
  list.reset(64);
  EXPECT_TRUE(list.empty());
  for (int id = 0; id < 64; ++id) EXPECT_FALSE(list.contains(id));
  const long long before = g_allocations.load();
  for (int round = 0; round < 10; ++round) {
    list.reset(64);
    for (int id = 0; id < 64; ++id) list.push_back(id);
    for (int id = 0; id < 64; id += 2) list.erase(id);
  }
  EXPECT_EQ(g_allocations.load(), before)
      << "reset()+reuse at a fixed size must not allocate";
}

// --- LazyMinHeap ------------------------------------------------------------

TEST(LazyMinHeapTest, PopsMinWithIdTieBreak) {
  LazyMinHeap<long long> heap;
  heap.reset(8);
  // Equal keys: std::set<std::pair> order means smallest id first.
  heap.push(5, 7);
  heap.push(2, 7);
  heap.push(7, 3);
  heap.push(0, 9);
  std::int32_t id = -1;
  long long key = 0;
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 7);
  EXPECT_EQ(key, 3);
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 2);  // tie at key 7 -> smaller id
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 5);
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 0);
  EXPECT_FALSE(heap.pop(id, key));
}

TEST(LazyMinHeapTest, MaxHeapViaGreaterMatchesSetRbegin) {
  LazyMinHeap<Time, std::greater<std::pair<Time, PageId>>> heap;
  heap.reset(8);
  // Belady's "never again" sentinel ties: rbegin() = largest id.
  heap.push(1, 100);
  heap.push(6, 1 << 30);
  heap.push(3, 1 << 30);
  heap.push(2, 500);
  std::int32_t id = -1;
  Time key = 0;
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 6);  // tie at sentinel -> larger id pops first
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 3);
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 2);
}

TEST(LazyMinHeapTest, UpdateStrandsStaleEntriesAndPopSkipsThem) {
  LazyMinHeap<long long> heap;
  heap.reset(4);
  heap.push(0, 1);
  heap.push(1, 2);
  for (long long k = 3; k < 20; ++k) heap.update(0, k);  // 17 stale entries
  EXPECT_EQ(heap.size(), 2);
  EXPECT_GT(heap.entry_count(), 2u);
  std::int32_t id = -1;
  long long key = 0;
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 1);  // 0's stale key-1 entry must not win
  EXPECT_EQ(key, 2);
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(key, 19);
  EXPECT_FALSE(heap.pop(id, key));
}

TEST(LazyMinHeapTest, EraseThenReinsert) {
  LazyMinHeap<long long> heap;
  heap.reset(4);
  heap.push(0, 1);
  heap.push(1, 5);
  heap.erase(0);
  EXPECT_FALSE(heap.contains(0));
  EXPECT_EQ(heap.size(), 1);
  heap.push(0, 9);  // the old key-1 entry is stale, not resurrected
  std::int32_t id = -1;
  long long key = 0;
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 1);
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(key, 9);
}

TEST(LazyMinHeapTest, CompactDropsStaleEntriesOnly) {
  LazyMinHeap<long long> heap;
  heap.reset(16);
  for (int id = 0; id < 16; ++id) heap.push(id, 100 - id);
  for (int id = 0; id < 16; id += 2) heap.update(id, id);
  heap.compact();
  EXPECT_EQ(heap.entry_count(), 16u);
  EXPECT_EQ(heap.size(), 16);
  std::int32_t id = -1;
  long long key = 0;
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 0);  // updated to key 0, the new minimum
  EXPECT_EQ(key, 0);
}

TEST(LazyMinHeapTest, EpochWrapCompactsAwayAliasingCandidates) {
  LazyMinHeap<long long> heap;
  heap.reset(4);
  heap.push(1, 50);
  // Park id 0 one bump short of the wrap (only legal on an id that is
  // not in the heap), then run it through push/update/pop cycles that
  // cross epoch 0. The wrap triggers a compaction, so the pre-wrap entry
  // cannot alias a post-wrap stamp.
  heap.debug_set_epoch(0, std::numeric_limits<std::uint32_t>::max() - 1);
  heap.push(0, 10);
  heap.update(0, 20);  // bump to max (no wrap yet)
  EXPECT_EQ(heap.debug_epoch(0), std::numeric_limits<std::uint32_t>::max());
  heap.update(0, 30);  // bump wraps to 0 -> compact() first
  EXPECT_EQ(heap.debug_epoch(0), 0u);
  EXPECT_EQ(heap.size(), 2);
  std::int32_t id = -1;
  long long key = 0;
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 0);
  EXPECT_EQ(key, 30);  // the stale key-10/key-20 entries did not alias
  ASSERT_TRUE(heap.pop(id, key));
  EXPECT_EQ(id, 1);
  EXPECT_FALSE(heap.pop(id, key));
}

TEST(LazyMinHeapTest, MirrorsStdSetOverRandomOperations) {
  LazyMinHeap<long long> heap;
  std::set<std::pair<long long, std::int32_t>> ref;
  std::vector<long long> key_of(64, -1);  // -1 = absent
  heap.reset(64);
  Xoshiro256pp rng(7);
  for (int step = 0; step < 20000; ++step) {
    const auto id = static_cast<std::int32_t>(rng.below(64));
    const auto op = rng.below(4);
    if (key_of[static_cast<std::size_t>(id)] < 0) {
      const auto key = static_cast<long long>(rng.below(50));
      heap.push(id, key);
      ref.insert({key, id});
      key_of[static_cast<std::size_t>(id)] = key;
    } else if (op == 0) {
      const auto key = static_cast<long long>(rng.below(50));
      heap.update(id, key);
      ref.erase({key_of[static_cast<std::size_t>(id)], id});
      ref.insert({key, id});
      key_of[static_cast<std::size_t>(id)] = key;
    } else if (op == 1) {
      heap.erase(id);
      ref.erase({key_of[static_cast<std::size_t>(id)], id});
      key_of[static_cast<std::size_t>(id)] = -1;
    } else if (!ref.empty()) {
      std::int32_t got = -1;
      long long got_key = 0;
      ASSERT_TRUE(heap.pop(got, got_key));
      const auto expect = *ref.begin();
      ref.erase(ref.begin());
      ASSERT_EQ(got_key, expect.first) << "at step " << step;
      ASSERT_EQ(got, expect.second) << "at step " << step;
      key_of[static_cast<std::size_t>(got)] = -1;
    }
    ASSERT_EQ(heap.size(), static_cast<int>(ref.size()));
  }
}

// --- SegmentedFifo ----------------------------------------------------------

TEST(SegmentedFifoTest, PerSegmentFifoOrder) {
  SegmentedFifo q;
  q.reset(8, 2);
  EXPECT_EQ(q.front(0), SegmentedFifo::kNone);
  EXPECT_EQ(q.pop_front(1), SegmentedFifo::kNone);
  for (int id : {3, 1, 5}) q.push_back(0, id);
  q.push_back(1, 7);
  EXPECT_EQ(q.size(0), 3);
  EXPECT_EQ(q.size(1), 1);
  EXPECT_EQ(q.total_size(), 4);
  EXPECT_EQ(q.segment_of(5), 0);
  EXPECT_EQ(q.segment_of(7), 1);
  EXPECT_EQ(q.segment_of(2), SegmentedFifo::kNone);
  EXPECT_EQ(q.pop_front(0), 3);
  EXPECT_EQ(q.pop_front(0), 1);
  EXPECT_EQ(q.pop_front(0), 5);
  EXPECT_EQ(q.pop_front(0), SegmentedFifo::kNone);
  EXPECT_EQ(q.pop_front(1), 7);
}

TEST(SegmentedFifoTest, PromoteDemoteKeepsBothOrders) {
  SegmentedFifo q;
  q.reset(8, 2);
  for (int id = 0; id < 5; ++id) q.push_back(0, id);
  q.move_back(1, 1);  // promote 1: segment 0 keeps 0,2,3,4
  q.move_back(3, 1);  // promote 3: segment 1 holds 1,3
  EXPECT_EQ(q.segment_of(1), 1);
  EXPECT_EQ(q.size(0), 3);
  EXPECT_EQ(q.size(1), 2);
  // A same-segment move_back is the FIFO reinsert (second chance).
  q.move_back(0, 0);  // segment 0 now 2,3?,no: 2,4,0
  EXPECT_EQ(q.pop_front(0), 2);
  EXPECT_EQ(q.pop_front(0), 4);
  EXPECT_EQ(q.pop_front(0), 0);
  EXPECT_EQ(q.pop_front(1), 1);
  EXPECT_EQ(q.pop_front(1), 3);
  // Erase from the middle of a segment.
  q.push_back(0, 6);
  q.push_back(0, 7);
  q.erase(6);
  EXPECT_FALSE(q.contains(6));
  EXPECT_EQ(q.pop_front(0), 7);
}

TEST(SegmentedFifoTest, ResetReusesStorage) {
  SegmentedFifo q;
  q.reset(64, 3);
  for (int id = 0; id < 64; ++id) q.push_back(id % 3, id);
  q.reset(64, 3);  // warm: same shape
  const long long before = g_allocations.load();
  for (int round = 0; round < 5; ++round) {
    q.reset(64, 3);
    for (int id = 0; id < 64; ++id) q.push_back(id % 3, id);
    for (int id = 0; id < 64; id += 2) q.move_back(id, (id + 1) % 3);
    while (q.size(0) > 0) q.pop_front(0);
  }
  EXPECT_EQ(g_allocations.load(), before);
}

// --- GhostTable -------------------------------------------------------------

TEST(GhostTableTest, RemembersMostRecentCapacityIds) {
  GhostTable g;
  g.reset(16, 3);
  EXPECT_EQ(g.insert(1), GhostTable::kNone);
  EXPECT_EQ(g.insert(2), GhostTable::kNone);
  EXPECT_EQ(g.insert(3), GhostTable::kNone);
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.insert(4), 1);  // oldest dropped, reported
  EXPECT_FALSE(g.contains(1));
  EXPECT_TRUE(g.contains(2));
  EXPECT_EQ(g.front(), 2);
  // Reinserting a remembered id re-stamps it as most recent, no drop.
  const std::uint64_t stamp2 = g.stamp_of(2);
  EXPECT_EQ(g.insert(2), GhostTable::kNone);
  EXPECT_GT(g.stamp_of(2), stamp2);
  EXPECT_EQ(g.front(), 3);   // 2 moved to the back
  EXPECT_EQ(g.insert(5), 3);  // now 3 is the oldest
}

TEST(GhostTableTest, EraseAndPopFront) {
  GhostTable g;
  g.reset(8, 4);
  g.insert(0);
  g.insert(1);
  g.insert(2);
  g.erase(1);
  EXPECT_FALSE(g.contains(1));
  EXPECT_EQ(g.size(), 2);
  g.erase(1);  // erasing an absent id is a no-op
  EXPECT_EQ(g.pop_front(), 0);
  EXPECT_EQ(g.pop_front(), 2);
  EXPECT_EQ(g.pop_front(), GhostTable::kNone);
}

TEST(GhostTableTest, ZeroCapacityRemembersNothing) {
  GhostTable g;
  g.reset(4, 0);
  EXPECT_EQ(g.insert(1), GhostTable::kNone);
  EXPECT_FALSE(g.contains(1));
  EXPECT_EQ(g.size(), 0);
}

TEST(GhostTableTest, InsertAllocatesNothingAfterReset) {
  GhostTable g;
  g.reset(32, 8);
  const long long before = g_allocations.load();
  for (int round = 0; round < 4; ++round) {
    g.reset(32, 8);
    for (int id = 0; id < 32; ++id) g.insert(id);
  }
  EXPECT_EQ(g_allocations.load(), before);
}

// --- PageMeta ---------------------------------------------------------------

TEST(PageMetaTest, ResetFillsAndIndexes) {
  PageMeta<int> meta;
  meta.reset(4, 7);
  EXPECT_EQ(meta.size(), 4);
  EXPECT_EQ(meta[0], 7);
  meta[2] = 42;
  EXPECT_EQ(meta[2], 42);
  meta.reset(4);  // default init
  EXPECT_EQ(meta[2], 0);
  const long long before = g_allocations.load();
  meta.reset(4, 1);  // same shape: storage reused
  EXPECT_EQ(g_allocations.load(), before);
}

// --- repeated-reset allocation guarantee ------------------------------------

/// Drive one policy over the trace with simulator-grade plumbing but no
/// allocations of our own, so the measured allocation count isolates the
/// policy + cache + meter hot path.
void drive(OnlinePolicy& policy, const Instance& inst, CacheSet& cache,
           CostMeter& meter) {
  cache.clear();
  CacheOps ops(inst.blocks, cache, meter, inst.k);
  policy.reset(inst);
  Time t = 0;
  for (const PageId p : inst.requests) {
    ++t;
    meter.begin_step(t);
    policy.on_request(t, p, ops);
    ASSERT_TRUE(cache.contains(p));
    ASSERT_LE(cache.size(), inst.k);
  }
}

TEST(ResetReuseTest, PoliciesDoNotAllocateAcrossSweepCells) {
  Xoshiro256pp rng(11);
  const Instance inst{BlockMap::contiguous(128, 4),
                      zipf_trace(128, 4000, 0.9, rng), 32};
  CacheSet cache(inst.n_pages());
  CostMeter meter(inst.blocks);

  LruPolicy lru;
  FifoPolicy fifo;
  LfuPolicy lfu;
  GreedyDualPolicy gd;
  OnlinePolicy* policies[] = {&lru, &fifo, &lfu, &gd};
  for (OnlinePolicy* policy : policies) {
    drive(*policy, inst, cache, meter);  // warm-up sizes every index
    drive(*policy, inst, cache, meter);
    const long long before = g_allocations.load();
    for (int round = 0; round < 3; ++round) drive(*policy, inst, cache, meter);
    EXPECT_EQ(g_allocations.load(), before)
        << policy->name()
        << ": reset()+replay across sweep cells must reuse index storage";
  }
}

}  // namespace
}  // namespace bac
