// Tests for Algorithms 3+4 (randomized rounding, Theorem 3.12):
// feasibility, determinism per seed, expected cost vs the fractional and
// dual benchmarks, and structure-transform accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "algs/rounding.hpp"
#include "core/simulator.hpp"
#include "trace/generators.hpp"

namespace bac {
namespace {

TEST(Rounding, FeasibleAcrossSeeds) {
  Xoshiro256pp rng(71);
  const Instance inst = make_instance(16, 4, 6,
                                      zipf_trace(16, 300, 0.9, rng));
  RandomizedBlockAware alg;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SimOptions opt;
    opt.seed = seed;
    const RunResult r = simulate(inst, alg, opt);  // throws on violation
    EXPECT_EQ(r.violations, 0);
  }
}

TEST(Rounding, DeterministicPerSeed) {
  Xoshiro256pp rng(72);
  const Instance inst = make_instance(12, 3, 5,
                                      uniform_trace(12, 200, rng));
  RandomizedBlockAware alg;
  SimOptions opt;
  opt.seed = 1234;
  const RunResult a = simulate(inst, alg, opt);
  const RunResult b = simulate(inst, alg, opt);
  EXPECT_DOUBLE_EQ(a.eviction_cost, b.eviction_cost);
  EXPECT_EQ(a.evict_block_events, b.evict_block_events);
}

TEST(Rounding, GammaMatchesPaper) {
  const Instance inst = make_instance(16, 4, 8, scan_trace(16, 20));
  RandomizedBlockAware alg;
  simulate(inst, alg);
  const double expected = std::log(4.0 * 8 * 8 * 4 * 1.0);
  EXPECT_NEAR(alg.gamma(), expected, 1e-12);
}

TEST(Rounding, ExpectedCostWithinGammaFactorOfFractional) {
  // Lemma 3.16: E[cost] <= (gamma + O(1)) * fractional cost. Measure the
  // mean over seeds and compare with slack.
  Xoshiro256pp rng(73);
  const Instance inst = make_instance(18, 3, 6,
                                      zipf_trace(18, 400, 0.8, rng));
  RandomizedBlockAware alg;
  const MonteCarloResult mc = simulate_mc(inst, alg, 12, 99);
  // fractional_cost() reflects the last run; the fractional algorithm is
  // deterministic so it is identical across seeds.
  const double frac = alg.fractional_cost();
  ASSERT_GT(frac, 0.0);
  EXPECT_LE(mc.mean_eviction_cost, (alg.gamma() + 3.0) * frac * 1.5)
      << "rounding overhead exceeded the theorem's shape";
}

TEST(Rounding, StructuredCostWithinConstantOfFractional) {
  // Lemma 3.14: the transform costs at most a constant factor more.
  Xoshiro256pp rng(74);
  const Instance inst = make_instance(20, 4, 8,
                                      zipf_trace(20, 500, 1.0, rng));
  RandomizedBlockAware alg;
  simulate(inst, alg);
  ASSERT_GT(alg.fractional_cost(), 0.0);
  EXPECT_LE(alg.structured_cost(), 4.0 * alg.fractional_cost() + 1.0)
      << "structure transform should be a constant-factor blowup";
}

TEST(Rounding, NoFallbacksOnHealthyRuns) {
  Xoshiro256pp rng(75);
  const Instance inst = make_instance(12, 2, 6,
                                      zipf_trace(12, 300, 0.7, rng));
  RandomizedBlockAware alg;
  SimOptions opt;
  opt.seed = 7;
  simulate(inst, alg, opt);
  // Alterations are expected; fallbacks (no positive-x page to evict)
  // should be rare to none.
  EXPECT_LE(alg.fallback_alterations(), alg.alterations());
}

TEST(Rounding, RandomizedBeatsDeterministicKBoundInExpectation) {
  // Sanity-scale comparison: on a scan workload with many blocks the
  // randomized algorithm should not be catastrophically worse than its
  // fractional base — the O(log k log kDelta) vs k separation shows up at
  // larger k; here we just require a sane multiple.
  const Instance inst = make_instance(32, 4, 8, scan_trace(32, 800));
  RandomizedBlockAware alg;
  const MonteCarloResult mc = simulate_mc(inst, alg, 6, 5);
  ASSERT_GT(alg.fractional_cost(), 0.0);
  EXPECT_LE(mc.mean_eviction_cost / alg.fractional_cost(),
            3.0 * (alg.gamma() + 3.0));
}

TEST(Rounding, AblationWithoutStructureStillFeasible) {
  Xoshiro256pp rng(76);
  const Instance inst = make_instance(12, 3, 6,
                                      uniform_trace(12, 200, rng));
  RandomizedBlockAware::Options options;
  options.apply_structure = false;
  RandomizedBlockAware alg(options);
  SimOptions opt;
  opt.seed = 11;
  const RunResult r = simulate(inst, alg, opt);
  EXPECT_EQ(r.violations, 0);
}

TEST(Rounding, GammaOverrideRespected) {
  const Instance inst = make_instance(8, 2, 4, scan_trace(8, 40));
  RandomizedBlockAware::Options options;
  options.gamma_override = 2.5;
  RandomizedBlockAware alg(options);
  simulate(inst, alg);
  EXPECT_DOUBLE_EQ(alg.gamma(), 2.5);
}

}  // namespace
}  // namespace bac
