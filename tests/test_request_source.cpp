// Streaming request sources: generator adapters must reproduce the
// materialized generator vectors exactly, the streaming simulate() core
// must match the Instance path bit for bit, and the online aggregates
// (P^2 sketches, miss-ratio curve) must agree with their offline
// counterparts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algs/policies/classical.hpp"
#include "core/mrc.hpp"
#include "core/request_source.hpp"
#include "core/simulator.hpp"
#include "trace/generators.hpp"
#include "trace/stats.hpp"
#include "util/stats.hpp"

namespace bac {
namespace {

std::vector<PageId> drain(RequestSource& src) {
  std::vector<PageId> out;
  PageId p;
  while (src.next(p)) out.push_back(p);
  return out;
}

TEST(SyntheticSource, MatchesUniformGenerator) {
  const std::uint64_t seed = 42;
  const auto expect = uniform_trace(32, 500, Xoshiro256pp(seed));
  auto src = SyntheticSource::uniform(32, 4, 8, 500, seed);
  EXPECT_EQ(drain(*src), expect);
}

TEST(SyntheticSource, MatchesZipfGenerator) {
  const std::uint64_t seed = 7;
  const auto expect = zipf_trace(64, 800, 0.9, Xoshiro256pp(seed));
  auto src = SyntheticSource::zipf(64, 8, 16, 800, 0.9, seed);
  EXPECT_EQ(drain(*src), expect);
}

TEST(SyntheticSource, MatchesScanGenerator) {
  const auto expect = scan_trace(10, 95);
  auto src = SyntheticSource::scan(10, 2, 4, 95);
  EXPECT_EQ(drain(*src), expect);
}

TEST(SyntheticSource, MatchesPhasedGenerator) {
  const std::uint64_t seed = 99;
  const auto expect = phased_trace(40, 600, 60, 12, Xoshiro256pp(seed));
  auto src = SyntheticSource::phased(40, 4, 12, 600, 60, 12, seed);
  EXPECT_EQ(drain(*src), expect);
}

TEST(SyntheticSource, PhasedRejectsBadShape) {
  // Mirrors the phased_trace guards: both halves of the streaming pair
  // must reject the shapes whose materialized twin would throw.
  EXPECT_THROW(SyntheticSource::phased(40, 4, 12, 600, 0, 12, 1),
               std::invalid_argument);
  EXPECT_THROW(SyntheticSource::phased(40, 4, 12, 600, 60, 0, 1),
               std::invalid_argument);
  EXPECT_THROW(SyntheticSource::phased(40, 4, 12, 600, 60, -3, 1),
               std::invalid_argument);
}

TEST(SyntheticSource, MatchesBlockLocalGenerator) {
  const std::uint64_t seed = 5;
  const BlockMap blocks = BlockMap::contiguous(48, 6);
  const auto expect = block_local_trace(blocks, 700, 0.75, 0.9,
                                        Xoshiro256pp(seed));
  auto src = SyntheticSource::block_local(48, 6, 12, 700, 0.75, 0.9, seed);
  EXPECT_EQ(drain(*src), expect);
}

TEST(SyntheticSource, RewindReplaysIdentically) {
  auto src = SyntheticSource::zipf(32, 4, 8, 300, 1.1, 13);
  const auto first = drain(*src);
  src->rewind();
  const auto second = drain(*src);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 300u);
}

TEST(InstanceSource, StreamsAndRewinds) {
  const Instance inst = make_instance(8, 2, 4, {0, 3, 5, 3, 7});
  InstanceSource src(inst);
  EXPECT_TRUE(src.materialized());
  EXPECT_EQ(src.horizon_hint(), 5);
  EXPECT_EQ(drain(src), inst.requests);
  src.rewind();
  EXPECT_EQ(drain(src), inst.requests);
}

/// Drain via next_batch with an awkward cap so batch boundaries land
/// mid-stream and the final batch is partial.
std::vector<PageId> drain_batched(RequestSource& src, int cap) {
  std::vector<PageId> out;
  std::vector<PageId> buf(static_cast<std::size_t>(cap));
  for (;;) {
    const int m = src.next_batch(buf.data(), cap);
    EXPECT_LE(m, cap);
    if (m == 0) break;
    out.insert(out.end(), buf.begin(), buf.begin() + m);
  }
  // The end-of-stream contract: 0 again, and next() agrees.
  EXPECT_EQ(src.next_batch(buf.data(), cap), 0);
  PageId p;
  EXPECT_FALSE(src.next(p));
  return out;
}

TEST(NextBatch, MatchesNextForEverySourceKind) {
  // Synthetic sources (one per generator kind) ...
  const auto make_synthetics = [] {
    std::vector<std::unique_ptr<RequestSource>> v;
    v.push_back(SyntheticSource::uniform(32, 4, 8, 700, 5));
    v.push_back(SyntheticSource::zipf(64, 8, 16, 700, 0.9, 6));
    v.push_back(SyntheticSource::scan(10, 2, 4, 700));
    v.push_back(SyntheticSource::phased(40, 4, 12, 700, 60, 12, 7));
    v.push_back(SyntheticSource::block_local(48, 6, 12, 700, 0.75, 0.9, 8));
    return v;
  };
  auto a = make_synthetics();
  auto b = make_synthetics();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto expect = drain(*a[i]);
    // 7 does not divide 700: the final batch is partial.
    EXPECT_EQ(drain_batched(*b[i], 7), expect) << "synthetic kind " << i;
    b[i]->rewind();
    EXPECT_EQ(drain_batched(*b[i], 1024), expect)
        << "synthetic kind " << i << " (single batch)";
  }
  // ... and the materialized adapter.
  const Instance inst = make_instance(8, 2, 4, {0, 3, 5, 3, 7, 1, 1});
  InstanceSource src(inst);
  EXPECT_EQ(drain_batched(src, 3), inst.requests);
  src.rewind();
  EXPECT_EQ(drain_batched(src, 512), inst.requests);
}

TEST(NextBatch, MixesWithNextMidStream) {
  auto src = SyntheticSource::zipf(32, 4, 8, 300, 1.1, 13);
  const auto expect = drain(*src);
  src->rewind();
  std::vector<PageId> got;
  PageId p;
  std::vector<PageId> buf(64);
  ASSERT_TRUE(src->next(p));  // one single
  got.push_back(p);
  int m = src->next_batch(buf.data(), 64);  // then a batch
  got.insert(got.end(), buf.begin(), buf.begin() + m);
  ASSERT_TRUE(src->next(p));  // a single again
  got.push_back(p);
  while ((m = src->next_batch(buf.data(), 64)) > 0)
    got.insert(got.end(), buf.begin(), buf.begin() + m);
  EXPECT_EQ(got, expect);
}

bool same_run(const RunResult& a, const RunResult& b) {
  return a.eviction_cost == b.eviction_cost && a.fetch_cost == b.fetch_cost &&
         a.classic_eviction_cost == b.classic_eviction_cost &&
         a.classic_fetch_cost == b.classic_fetch_cost &&
         a.evict_block_events == b.evict_block_events &&
         a.fetch_block_events == b.fetch_block_events &&
         a.evicted_pages == b.evicted_pages &&
         a.fetched_pages == b.fetched_pages && a.misses == b.misses &&
         a.requests == b.requests && a.violations == b.violations;
}

TEST(StreamingSimulate, MatchesMaterializedPathBitForBit) {
  const std::uint64_t seed = 3;
  const Instance inst =
      make_instance(64, 8, 16, zipf_trace(64, 2000, 0.9, Xoshiro256pp(seed)));
  auto src = SyntheticSource::zipf(64, 8, 16, 2000, 0.9, seed);

  LruPolicy lru_a, lru_b;
  const RunResult a = simulate(inst, lru_a);
  const RunResult b = simulate(*src, lru_b);
  EXPECT_TRUE(same_run(a, b));
  EXPECT_EQ(b.requests, 2000);

  src->rewind();
  BlockLruPolicy block_a(false), block_b(false);
  EXPECT_TRUE(same_run(simulate(inst, block_a), simulate(*src, block_b)));
}

TEST(StreamingSimulate, RejectsOfflinePoliciesOnStreams) {
  auto src = SyntheticSource::scan(16, 2, 8, 100);
  BeladyPolicy belady;
  EXPECT_THROW(simulate(*src, belady), std::invalid_argument);
  // Materialized sources still welcome them.
  const Instance inst = make_instance(16, 2, 8, scan_trace(16, 100));
  EXPECT_NO_THROW(simulate(inst, belady));
}

TEST(StreamingSimulate, SketchTracksStepCosts) {
  const Instance inst = make_instance(32, 4, 8, scan_trace(32, 1500));
  LruPolicy lru;
  SimOptions options;
  options.record_steps = true;
  const RunResult r = simulate(inst, lru, options);

  std::vector<double> step_totals;
  double exact_max = 0;
  for (std::size_t i = 0; i < r.step_eviction_cost.size(); ++i) {
    const double total = r.step_eviction_cost[i] + r.step_fetch_cost[i];
    step_totals.push_back(total);
    exact_max = std::max(exact_max, total);
  }
  EXPECT_DOUBLE_EQ(r.step_cost_max, exact_max);
  // Quantiles are log-bucket midpoints (obs::Histogram, <= ~3% relative
  // error); the scan workload's step costs are near-constant, so the
  // estimates must land close to the exact quantiles.
  EXPECT_NEAR(r.step_cost_p50, quantile(step_totals, 0.50), 0.5);
  EXPECT_NEAR(r.step_cost_p99, quantile(step_totals, 0.99), 0.5);
  // The full distribution rides along: total mass and exact max agree.
  EXPECT_EQ(r.step_cost_hist.count(),
            static_cast<std::uint64_t>(step_totals.size()));
  EXPECT_DOUBLE_EQ(r.step_cost_hist.max(), exact_max);
}

TEST(MissRatioCurve, MatchesOfflineStackDistances) {
  Xoshiro256pp rng(11);
  const Instance inst =
      make_instance(24, 3, 6, zipf_trace(24, 3000, 0.8, rng));
  const TraceStats stats = analyze_trace(inst);

  MissRatioCurve curve(inst.n_pages());
  for (PageId p : inst.requests) curve.add(p);
  for (const int k : {1, 2, 4, 8, 16, 24}) {
    EXPECT_NEAR(curve.miss_ratio(k), 1.0 - stats.lru_hit_rate(k), 1e-12)
        << "k=" << k;
  }
  EXPECT_EQ(curve.requests(), 3000);
  EXPECT_EQ(curve.compulsory_misses(), stats.distinct_pages);
}

TEST(MissRatioCurve, SurvivesPositionCompaction) {
  // n=8 gives a Fenwick capacity of 64 slots; 5000 requests force many
  // compactions. Cross-check against a brute-force LRU stack.
  const int n = 8;
  Xoshiro256pp rng(21);
  std::vector<PageId> requests;
  for (int i = 0; i < 5000; ++i)
    requests.push_back(static_cast<PageId>(rng.below(n)));

  MissRatioCurve curve(n);
  std::vector<PageId> stack;  // most recent first
  long long brute_hits_k3 = 0;
  for (PageId p : requests) {
    const auto it = std::find(stack.begin(), stack.end(), p);
    if (it != stack.end() && it - stack.begin() < 3) ++brute_hits_k3;
    if (it != stack.end()) stack.erase(it);
    stack.insert(stack.begin(), p);
    curve.add(p);
  }
  const double brute_miss =
      1.0 - static_cast<double>(brute_hits_k3) / 5000.0;
  EXPECT_NEAR(curve.miss_ratio(3), brute_miss, 1e-12);
}

TEST(MissRatioCurve, MatchesSimulatedLruMisses) {
  const std::uint64_t seed = 17;
  const int n = 40, beta = 4, T = 2500;
  for (const int k : {4, 8, 16}) {
    const Instance inst = make_instance(
        n, beta, k, zipf_trace(n, T, 1.0, Xoshiro256pp(seed)));
    LruPolicy lru;
    SimOptions options;
    options.mrc_ks = {k};
    const RunResult r = simulate(inst, lru, options);
    ASSERT_EQ(r.miss_curve.size(), 1u);
    EXPECT_EQ(r.miss_curve[0].first, k);
    EXPECT_NEAR(r.miss_curve[0].second,
                static_cast<double>(r.misses) / static_cast<double>(T), 1e-12)
        << "LRU misses must equal the curve at its own k";
  }
}

TEST(P2Quantile, TracksExactQuantilesOnRandomData) {
  Xoshiro256pp rng(33);
  P2Quantile p50(0.5), p90(0.9);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform();
    xs.push_back(x);
    p50.add(x);
    p90.add(x);
  }
  EXPECT_NEAR(p50.value(), quantile(xs, 0.5), 0.02);
  EXPECT_NEAR(p90.value(), quantile(xs, 0.9), 0.02);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile q(0.5);
  // No observations yet: NaN, the StreamingStats::min/max convention
  // (JSON emitters turn it into null) — not a fake 0.0.
  EXPECT_TRUE(std::isnan(q.value()));
  q.add(3.0);
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

}  // namespace
}  // namespace bac
