// Tests for the paper's constructions: Claim 2.1 instances (including
// their intended optimal schedules), the A.2 gap instance, the cyclic
// nemesis, and the adaptive (h,k) adversary.
#include <gtest/gtest.h>

#include "algs/policies/classical.hpp"
#include "core/schedule.hpp"
#include "core/simulator.hpp"
#include "trace/adversarial.hpp"

namespace bac {
namespace {

TEST(Claim21, FetchCheapInstanceShape) {
  const int beta = 3;
  const auto built = claim21_fetch_cheap(beta, 2);
  const Instance& inst = built.instance;
  EXPECT_EQ(inst.n_pages(), 2 * beta * beta);
  EXPECT_EQ(inst.k, beta * beta);
  EXPECT_EQ(inst.blocks.beta(), beta);
  inst.validate();
}

TEST(Claim21, FetchCheapIntendedScheduleIsFeasibleAndSkewed) {
  for (int beta : {2, 3, 4, 5}) {
    const auto built = claim21_fetch_cheap(beta, 2);
    const ScheduleCost c = evaluate(built.instance, built.intended_schedule);
    ASSERT_TRUE(c.feasible) << "beta=" << beta << ": " << c.infeasibility;
    // Intended: fetch ~2*beta block events, evictions ~beta^2.
    EXPECT_LE(c.fetch_cost, 2.0 * beta + 1);
    EXPECT_GE(c.eviction_cost, static_cast<double>(beta) * beta - beta);
    EXPECT_GE(c.eviction_cost / c.fetch_cost,
              static_cast<double>(beta) / 3.0)
        << "eviction/fetch skew should grow linearly in beta";
  }
}

TEST(Claim21, EvictCheapIntendedScheduleIsFeasibleAndSkewed) {
  for (int beta : {2, 3, 4, 5}) {
    const auto built = claim21_evict_cheap(beta, 2);
    const ScheduleCost c = evaluate(built.instance, built.intended_schedule);
    ASSERT_TRUE(c.feasible) << "beta=" << beta << ": " << c.infeasibility;
    // Intended: evict ~beta - 1 block events, fetch ~beta^2 + 2 beta.
    EXPECT_LE(c.eviction_cost, static_cast<double>(beta));
    EXPECT_GE(c.fetch_cost, static_cast<double>(beta) * (beta - 1));
    EXPECT_GE(c.fetch_cost / std::max(c.eviction_cost, 1.0),
              static_cast<double>(beta) / 2.0);
  }
}

TEST(GapInstance, Shape) {
  const Instance inst = gap_instance(4, 3);
  EXPECT_EQ(inst.n_pages(), 8);
  EXPECT_EQ(inst.k, 7);
  EXPECT_EQ(inst.blocks.n_blocks(), 2);
  EXPECT_EQ(inst.horizon(), 24);
  inst.validate();
}

TEST(CyclicNemesis, EveryRequestMissesForLru) {
  const Instance inst = cyclic_nemesis(4, 1, 40);
  LruPolicy lru;
  const RunResult r = simulate(inst, lru);
  EXPECT_EQ(r.misses, 40) << "k+1 cyclic pages defeat LRU completely";
}

TEST(AdaptiveAdversary, ForcesMissEveryStepOnLru) {
  LruPolicy lru;
  const auto res = run_adaptive_adversary(lru, /*k=*/8, /*block_size=*/2,
                                          /*h=*/4, /*T=*/200);
  // Every request is to an absent page, so the online policy pays at least
  // one block fetch per step.
  EXPECT_GE(res.online_fetch, 200.0);
  EXPECT_EQ(res.instance.horizon(), 200);
  res.instance.validate();
}

TEST(AdaptiveAdversary, UniverseSizeMatchesBgm21) {
  LruPolicy lru;
  const int k = 8, B = 3, h = 4;
  const auto res = run_adaptive_adversary(lru, k, B, h, 50);
  EXPECT_EQ(res.instance.n_pages(), k + (B - 1) * (h - 1) + 1);
}

TEST(AdaptiveAdversary, Bgm21FormulaValues) {
  EXPECT_DOUBLE_EQ(bgm21_lower_bound(8, 1, 1), 1.0);  // classic k/k
  // k = h: (k + (B-1)(k-1)) / 1.
  EXPECT_DOUBLE_EQ(bgm21_lower_bound(4, 2, 4), 7.0);
  EXPECT_NEAR(bgm21_lower_bound(16, 4, 8), (16 + 3 * 7) / 9.0, 1e-12);
}

TEST(AdaptiveAdversary, RejectsBadParameters) {
  LruPolicy lru;
  EXPECT_THROW(run_adaptive_adversary(lru, 4, 2, 0, 10),
               std::invalid_argument);
  EXPECT_THROW(run_adaptive_adversary(lru, 4, 2, 5, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace bac
