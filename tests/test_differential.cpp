// Randomized differential tests: every optimized data structure is run
// against a straightforward reference implementation on long random
// operation streams.
//
//  - CacheSet vs std::set<PageId>
//  - CostMeter vs a naive per-step recomputation of batched costs
//  - FlushVars::x_value vs the definition (3.2) evaluated from scratch
//  - TraceStats::lru_hit_rate vs an O(T * k) list-based LRU stack
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <set>

#include "core/cache_set.hpp"
#include "core/cost_meter.hpp"
#include "submodular/flush_vars.hpp"
#include "trace/generators.hpp"
#include "trace/stats.hpp"
#include "util/rng.hpp"

namespace bac {
namespace {

TEST(Differential, CacheSetAgainstStdSet) {
  Xoshiro256pp rng(301);
  const int n = 40;
  CacheSet fast(n);
  std::set<PageId> reference;
  for (int op = 0; op < 20'000; ++op) {
    const auto p = static_cast<PageId>(rng.below(n));
    switch (rng.below(3)) {
      case 0: {
        const bool inserted = fast.insert(p);
        ASSERT_EQ(inserted, reference.insert(p).second);
        break;
      }
      case 1: {
        const bool erased = fast.erase(p);
        ASSERT_EQ(erased, reference.erase(p) > 0);
        break;
      }
      default:
        ASSERT_EQ(fast.contains(p), reference.count(p) > 0);
    }
    ASSERT_EQ(fast.size(), static_cast<int>(reference.size()));
  }
  // Membership list must match as a set.
  std::vector<PageId> members = fast.pages();
  std::sort(members.begin(), members.end());
  std::vector<PageId> expect(reference.begin(), reference.end());
  ASSERT_EQ(members, expect);
}

TEST(Differential, CostMeterAgainstNaiveRecount) {
  Xoshiro256pp rng(302);
  const BlockMap blocks = BlockMap::contiguous_weighted(
      12, 3, {1.0, 2.5, 0.5, 4.0});
  CostMeter meter(blocks);

  Cost naive_evict = 0, naive_fetch = 0;
  for (Time t = 1; t <= 500; ++t) {
    meter.begin_step(t);
    std::set<BlockId> evicted_blocks, fetched_blocks;
    const int ops = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < ops; ++i) {
      const auto p = static_cast<PageId>(rng.below(12));
      if (rng.bernoulli(0.5)) {
        meter.on_evict(p);
        evicted_blocks.insert(blocks.block_of(p));
      } else {
        meter.on_fetch(p);
        fetched_blocks.insert(blocks.block_of(p));
      }
    }
    for (BlockId b : evicted_blocks) naive_evict += blocks.cost(b);
    for (BlockId b : fetched_blocks) naive_fetch += blocks.cost(b);
    ASSERT_NEAR(meter.eviction_cost(), naive_evict, 1e-9) << "t=" << t;
    ASSERT_NEAR(meter.fetch_cost(), naive_fetch, 1e-9) << "t=" << t;
  }
}

TEST(Differential, XValueAgainstDefinition) {
  Xoshiro256pp rng(303);
  const BlockMap blocks = BlockMap::contiguous(10, 2);
  FlushCoverage cov(blocks, 4);
  FlushVars vars(blocks.n_blocks());
  // Interleave requests and random phi increases; check x for all pages.
  std::vector<std::vector<std::pair<Time, double>>> raw(
      static_cast<std::size_t>(blocks.n_blocks()));
  for (Time t = 1; t <= 120; ++t) {
    cov.advance(static_cast<PageId>(rng.below(10)), t);
    if (rng.bernoulli(0.7)) {
      const auto b = static_cast<BlockId>(rng.below(5));
      const auto ft = static_cast<Time>(1 + rng.below(static_cast<std::uint64_t>(t)));
      const double delta = rng.uniform() * 0.3;
      vars.increase(b, ft, delta);
      raw[static_cast<std::size_t>(b)].emplace_back(ft, delta);
    }
    for (PageId p = 0; p < 10; ++p) {
      const Time r = cov.last_request(p);
      double expect;
      if (r == kNeverRequested) {
        expect = 1.0;
      } else {
        double mass = 0;
        for (const auto& [ft, d] :
             raw[static_cast<std::size_t>(blocks.block_of(p))])
          if (ft > r) mass += d;
        expect = std::min(1.0, mass);
      }
      ASSERT_NEAR(vars.x_value(cov, p), expect, 1e-9)
          << "p=" << p << " t=" << t;
    }
  }
}

TEST(Differential, StackDistanceHitRateAgainstListLru) {
  Xoshiro256pp rng(304);
  const Instance inst = make_instance(30, 1, 8,
                                      zipf_trace(30, 1500, 0.9, rng));
  const TraceStats stats = analyze_trace(inst);
  for (int k : {1, 2, 4, 8, 16, 30}) {
    // Reference: explicit LRU stack as a list.
    std::list<PageId> stack;
    long long hits = 0;
    for (PageId p : inst.requests) {
      auto it = std::find(stack.begin(), stack.end(), p);
      if (it != stack.end()) {
        if (std::distance(stack.begin(), it) < k) ++hits;
        stack.erase(it);
      }
      stack.push_front(p);
    }
    const double expect =
        static_cast<double>(hits) / static_cast<double>(inst.horizon());
    ASSERT_NEAR(stats.lru_hit_rate(k), expect, 1e-12) << "k=" << k;
  }
}

TEST(Differential, FlushSetIncrementalGAgainstRecount) {
  Xoshiro256pp rng(305);
  const BlockMap blocks = BlockMap::contiguous(12, 4);
  FlushCoverage cov(blocks, 5);
  FlushSet set(cov);
  for (Time t = 1; t <= 200; ++t) {
    FlushSet* sets[] = {&set};
    cov.advance(static_cast<PageId>(rng.below(12)), t, sets);
    if (rng.bernoulli(0.25))
      set.add_flush(static_cast<BlockId>(rng.below(3)),
                    static_cast<Time>(rng.below(static_cast<std::uint64_t>(t) + 1)));
    // Recount g from the definition: a page is missing iff its last
    // request precedes its block's max flush.
    int g = 0;
    for (PageId p = 0; p < 12; ++p)
      if (cov.last_request(p) < set.max_flush(blocks.block_of(p))) ++g;
    ASSERT_EQ(set.g(), g) << "t=" << t;
  }
}

}  // namespace
}  // namespace bac
