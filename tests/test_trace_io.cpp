// Round-trip tests for the instance text format.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/generators.hpp"
#include "trace/trace_io.hpp"

namespace bac {
namespace {

TEST(TraceIo, RoundTripsContiguousInstance) {
  Instance inst = make_instance(8, 3, 4, {0, 5, 2, 7, 0, 1});
  std::stringstream ss;
  save_instance(inst, ss);
  const Instance back = load_instance(ss);
  EXPECT_EQ(back.n_pages(), inst.n_pages());
  EXPECT_EQ(back.k, inst.k);
  EXPECT_EQ(back.requests, inst.requests);
  EXPECT_EQ(back.blocks.n_blocks(), inst.blocks.n_blocks());
  for (PageId p = 0; p < inst.n_pages(); ++p)
    EXPECT_EQ(back.blocks.block_of(p), inst.blocks.block_of(p));
}

TEST(TraceIo, RoundTripsWeightedCosts) {
  Instance inst =
      make_weighted_instance(6, 2, 3, {0, 1, 2, 3, 4, 5}, {1.5, 2.0, 8.0});
  std::stringstream ss;
  save_instance(inst, ss);
  const Instance back = load_instance(ss);
  for (BlockId b = 0; b < 3; ++b)
    EXPECT_DOUBLE_EQ(back.blocks.cost(b), inst.blocks.cost(b));
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream ss("not-an-instance");
  EXPECT_THROW(load_instance(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTruncated) {
  Instance inst = make_instance(4, 2, 2, {0, 1, 2});
  std::stringstream ss;
  save_instance(inst, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(load_instance(cut), std::runtime_error);
}

std::string error_of(const std::string& text) {
  std::stringstream ss(text);
  try {
    load_instance(ss);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

bool mentions(const std::string& message, const std::string& needle) {
  return message.find(needle) != std::string::npos;
}

TEST(TraceIo, EmptyInputNamesTheMissingHeader) {
  const std::string msg = error_of("");
  ASSERT_FALSE(msg.empty()) << "empty input must throw";
  EXPECT_TRUE(mentions(msg, "blockcache-instance")) << msg;
}

TEST(TraceIo, WrongHeaderWordIsDescriptive) {
  const std::string msg = error_of("blockcache-trace v1 n 2 k 1");
  ASSERT_FALSE(msg.empty());
  EXPECT_TRUE(mentions(msg, "blockcache-instance")) << msg;
}

TEST(TraceIo, WrongVersionRejected) {
  EXPECT_FALSE(error_of("blockcache-instance v2 n 2 k 1").empty());
}

TEST(TraceIo, NonNumericCountsRejected) {
  const std::string msg =
      error_of("blockcache-instance v1 n many k 1 blocks 1");
  ASSERT_FALSE(msg.empty());
  EXPECT_TRUE(mentions(msg, "many")) << msg;
}

TEST(TraceIo, NegativeAndZeroSizesRejected) {
  EXPECT_FALSE(error_of("blockcache-instance v1 n 0 k 1 blocks 1").empty());
  EXPECT_FALSE(error_of("blockcache-instance v1 n 4 k 0 blocks 1").empty());
  EXPECT_FALSE(error_of("blockcache-instance v1 n 4 k 2 blocks 0").empty());
}

TEST(TraceIo, OutOfRangeBlockPageRejected) {
  const std::string msg = error_of(
      "blockcache-instance v1 n 2 k 2 blocks 1 block 0 1.0 0 7 "
      "requests 0");
  ASSERT_FALSE(msg.empty());
  EXPECT_TRUE(mentions(msg, "7")) << msg;
}

TEST(TraceIo, UnassignedPageRejected) {
  const std::string msg = error_of(
      "blockcache-instance v1 n 2 k 2 blocks 1 block 0 1.0 0 requests 0");
  ASSERT_FALSE(msg.empty());
  EXPECT_TRUE(mentions(msg, "not assigned")) << msg;
}

TEST(TraceIo, DuplicatePageAssignmentRejected) {
  const std::string msg = error_of(
      "blockcache-instance v1 n 2 k 2 blocks 2 block 0 1.0 0 1 "
      "block 1 1.0 1 requests 0");
  ASSERT_FALSE(msg.empty());
  EXPECT_TRUE(mentions(msg, "assigned to blocks")) << msg;
}

TEST(TraceIo, OutOfRangeRequestPageRejected) {
  const std::string msg = error_of(
      "blockcache-instance v1 n 2 k 2 blocks 1 block 0 1.0 0 1 "
      "requests 2 0 9");
  ASSERT_FALSE(msg.empty());
  EXPECT_TRUE(mentions(msg, "9")) << msg;
  EXPECT_TRUE(mentions(msg, "outside")) << msg;
}

TEST(TraceIo, TruncatedRequestSectionCountsProgress) {
  const std::string msg = error_of(
      "blockcache-instance v1 n 2 k 2 blocks 1 block 0 1.0 0 1 "
      "requests 5 0 1 0");
  ASSERT_FALSE(msg.empty());
  EXPECT_TRUE(mentions(msg, "3 of 5")) << msg;
}

TEST(TraceIo, NonPositiveBlockCostRejected) {
  EXPECT_FALSE(
      error_of("blockcache-instance v1 n 2 k 2 blocks 1 block 0 -1.0 0 1 "
               "requests 0")
          .empty());
}

TEST(TraceIo, MissingFileNamesThePath) {
  try {
    load_instance(std::string("/nonexistent/bac_trace.txt"));
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_TRUE(mentions(e.what(), "/nonexistent/bac_trace.txt"));
  }
}

}  // namespace
}  // namespace bac
