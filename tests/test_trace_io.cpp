// Round-trip tests for the instance text format.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/generators.hpp"
#include "trace/trace_io.hpp"

namespace bac {
namespace {

TEST(TraceIo, RoundTripsContiguousInstance) {
  Instance inst = make_instance(8, 3, 4, {0, 5, 2, 7, 0, 1});
  std::stringstream ss;
  save_instance(inst, ss);
  const Instance back = load_instance(ss);
  EXPECT_EQ(back.n_pages(), inst.n_pages());
  EXPECT_EQ(back.k, inst.k);
  EXPECT_EQ(back.requests, inst.requests);
  EXPECT_EQ(back.blocks.n_blocks(), inst.blocks.n_blocks());
  for (PageId p = 0; p < inst.n_pages(); ++p)
    EXPECT_EQ(back.blocks.block_of(p), inst.blocks.block_of(p));
}

TEST(TraceIo, RoundTripsWeightedCosts) {
  Instance inst =
      make_weighted_instance(6, 2, 3, {0, 1, 2, 3, 4, 5}, {1.5, 2.0, 8.0});
  std::stringstream ss;
  save_instance(inst, ss);
  const Instance back = load_instance(ss);
  for (BlockId b = 0; b < 3; ++b)
    EXPECT_DOUBLE_EQ(back.blocks.cost(b), inst.blocks.cost(b));
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream ss("not-an-instance");
  EXPECT_THROW(load_instance(ss), std::runtime_error);
}

TEST(TraceIo, RejectsTruncated) {
  Instance inst = make_instance(4, 2, 2, {0, 1, 2});
  std::stringstream ss;
  save_instance(inst, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream cut(text);
  EXPECT_THROW(load_instance(cut), std::runtime_error);
}

}  // namespace
}  // namespace bac
