// Tests for the fractional weighted paging substrate (BBN12a dynamics):
// feasibility invariants, cost accounting, and competitiveness anchors.
#include <gtest/gtest.h>
#include <cmath>

#include "algs/policies/classical.hpp"
#include "algs/policies/fractional_paging.hpp"
#include "algs/opt.hpp"
#include "core/simulator.hpp"
#include "trace/adversarial.hpp"
#include "trace/generators.hpp"

namespace bac {
namespace {

TEST(FractionalPaging, MaintainsInvariants) {
  Xoshiro256pp rng(41);
  const Instance inst = make_instance(10, 2, 4,
                                      uniform_trace(10, 200, rng));
  FractionalWeightedPaging fp(inst);
  for (Time t = 1; t <= inst.horizon(); ++t) {
    const PageId p = inst.request_at(t);
    const auto& x = fp.step(p);
    ASSERT_DOUBLE_EQ(x[static_cast<std::size_t>(p)], 0.0)
        << "requested page fully present";
    double cached = 0;
    for (std::size_t q = 0; q < x.size(); ++q) {
      ASSERT_GE(x[q], -1e-9);
      ASSERT_LE(x[q], 1.0 + 1e-9);
    }
    // Feasibility: total cached mass of *requested-so-far* pages <= k.
    // (Never-requested pages have x = 1 and contribute nothing.)
    for (std::size_t q = 0; q < x.size(); ++q) cached += 1.0 - x[q];
    ASSERT_LE(cached, static_cast<double>(inst.k) + 1e-6)
        << "fractional cache overflow at t=" << t;
  }
}

TEST(FractionalPaging, HitsAreFree) {
  const Instance inst = make_instance(4, 1, 2, {0, 0, 0, 0});
  FractionalWeightedPaging fp(inst);
  for (Time t = 1; t <= 4; ++t) fp.step(inst.request_at(t));
  EXPECT_NEAR(fp.classic_fetch_cost(), 1.0, 1e-9)
      << "one cold fetch, then hits";
}

TEST(FractionalPaging, CostWithinLogKOfOpt) {
  // O(log k)-competitive for classic weighted paging: check a generous
  // multiple on small instances against exact OPT (beta = 1: fetching
  // model coincides with classic paging).
  Xoshiro256pp rng(43);
  for (int trial = 0; trial < 5; ++trial) {
    const int n = 8, k = 4;
    Instance inst = make_instance(n, 1, k,
                                  zipf_trace(n, 60, 0.7, rng.substream(trial)));
    FractionalWeightedPaging fp(inst);
    for (Time t = 1; t <= inst.horizon(); ++t) fp.step(inst.request_at(t));
    const OptResult opt = exact_opt_fetching(inst);
    ASSERT_TRUE(opt.exact);
    // ln(k)+1 ~ 2.4; allow constant slack 4x.
    EXPECT_LE(fp.classic_fetch_cost(), (std::log(k) + 1.0) * 4.0 * opt.cost + 2.0)
        << "trial " << trial;
  }
}

TEST(FractionalPaging, BlockCostNeverExceedsClassic) {
  Xoshiro256pp rng(44);
  const Instance inst = make_instance(12, 3, 5,
                                      zipf_trace(12, 150, 0.9, rng));
  FractionalWeightedPaging fp(inst);
  for (Time t = 1; t <= inst.horizon(); ++t) fp.step(inst.request_at(t));
  EXPECT_LE(fp.block_fetch_cost(), fp.classic_fetch_cost() + 1e-9)
      << "batching can only reduce cost";
  EXPECT_GE(fp.block_fetch_cost() * inst.blocks.beta(),
            fp.classic_fetch_cost() - 1e-9)
      << "batching saves at most a factor beta";
}

TEST(FractionalPaging, NemesisCostIsLogarithmic) {
  // On the (k+1)-page cyclic nemesis the fractional algorithm pays
  // Theta(log k) per round while any deterministic integral policy pays
  // Theta(k) per round.
  const int k = 32;
  const int rounds = 20;
  const Instance inst = cyclic_nemesis(k, 1, (k + 1) * rounds);
  FractionalWeightedPaging fp(inst);
  for (Time t = 1; t <= inst.horizon(); ++t) fp.step(inst.request_at(t));
  const double per_round = fp.classic_fetch_cost() / rounds;
  EXPECT_LT(per_round, 3.0 * (std::log(k) + 1.0));
  LruPolicy lru;
  const double lru_per_round =
      simulate(inst, lru).fetch_cost / rounds;
  EXPECT_GT(lru_per_round, static_cast<double>(k) * 0.9);
}

}  // namespace
}  // namespace bac
