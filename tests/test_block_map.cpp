// Unit tests for BlockMap: construction, layout, costs, validation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/block_map.hpp"
#include "core/instance.hpp"

namespace bac {
namespace {

TEST(BlockMap, ContiguousLayout) {
  const BlockMap m = BlockMap::contiguous(10, 4);
  EXPECT_EQ(m.n_pages(), 10);
  EXPECT_EQ(m.n_blocks(), 3);
  EXPECT_EQ(m.beta(), 4);
  EXPECT_EQ(m.block_of(0), 0);
  EXPECT_EQ(m.block_of(3), 0);
  EXPECT_EQ(m.block_of(4), 1);
  EXPECT_EQ(m.block_of(9), 2);
  EXPECT_EQ(m.block_size(2), 2);  // last block is partial
  const auto pages = m.pages_in(1);
  ASSERT_EQ(pages.size(), 4u);
  EXPECT_EQ(pages[0], 4);
  EXPECT_EQ(pages[3], 7);
}

TEST(BlockMap, CustomAssignmentGroupsPages) {
  // Interleaved assignment: evens to block 0, odds to block 1.
  std::vector<BlockId> assign{0, 1, 0, 1, 0, 1};
  const BlockMap m(std::move(assign), {2.0, 5.0});
  EXPECT_EQ(m.n_blocks(), 2);
  EXPECT_EQ(m.beta(), 3);
  const auto evens = m.pages_in(0);
  ASSERT_EQ(evens.size(), 3u);
  EXPECT_EQ(evens[0], 0);
  EXPECT_EQ(evens[1], 2);
  EXPECT_EQ(evens[2], 4);
  EXPECT_DOUBLE_EQ(m.cost(1), 5.0);
}

TEST(BlockMap, AspectRatio) {
  const BlockMap m = BlockMap::contiguous_weighted(6, 2, {1.0, 4.0, 2.0});
  EXPECT_DOUBLE_EQ(m.aspect_ratio(), 4.0);
  EXPECT_DOUBLE_EQ(m.min_cost(), 1.0);
  EXPECT_DOUBLE_EQ(m.max_cost(), 4.0);
  EXPECT_DOUBLE_EQ(m.total_block_cost(), 7.0);
}

TEST(BlockMap, RejectsBadInput) {
  EXPECT_THROW(BlockMap({0, 1}, {1.0}), std::invalid_argument);  // bad id
  EXPECT_THROW(BlockMap({0}, {0.0}), std::invalid_argument);     // zero cost
  EXPECT_THROW(BlockMap({0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(BlockMap::contiguous(0, 4), std::invalid_argument);
  EXPECT_THROW(BlockMap::contiguous_weighted(10, 4, {1.0}),
               std::invalid_argument);  // wrong cost count
}

TEST(BlockMap, CopiesShareStructureInConstantSpace) {
  // Regression: KOverride (k-sweeps over one trace file) and the sharded
  // server headers used to deep-copy the BlockMap per cell/shard; copies
  // now share one immutable Data block.
  const BlockMap m = BlockMap::contiguous(1000, 8);
  const BlockMap copy = m;            // O(1), shares structure
  EXPECT_TRUE(copy.shares_structure(m));
  EXPECT_EQ(copy.pages_in(3).data(), m.pages_in(3).data())
      << "copies must reference the same physical page arrays";

  // An Instance header built from the copy still shares it.
  const Instance header{copy, {}, 64};
  EXPECT_TRUE(header.blocks.shares_structure(m));

  // Independently constructed identical maps do NOT share (structural
  // sharing is identity-based, not value-based).
  const BlockMap other = BlockMap::contiguous(1000, 8);
  EXPECT_FALSE(other.shares_structure(m));
}

TEST(BlockMap, SingletonBlocksAreWeightedPaging) {
  const BlockMap m = BlockMap::contiguous(5, 1);
  EXPECT_EQ(m.n_blocks(), 5);
  EXPECT_EQ(m.beta(), 1);
  for (PageId p = 0; p < 5; ++p) EXPECT_EQ(m.block_of(p), p);
}

}  // namespace
}  // namespace bac
