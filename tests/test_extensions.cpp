// Tests for the extension modules: the dual-feasibility audit harness,
// schedule capture, GreedyFlush, the online threshold-bicriteria policy,
// and trace statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "algs/det_online.hpp"
#include "algs/dual_verifier.hpp"
#include "algs/greedy_flush.hpp"
#include "algs/threshold_bicriteria.hpp"
#include "core/simulator.hpp"
#include "trace/generators.hpp"
#include "trace/stats.hpp"

namespace bac {
namespace {

TEST(DualVerifier, AuditsAlgorithm1OnRandomInstances) {
  Xoshiro256pp rng(201);
  for (int trial = 0; trial < 6; ++trial) {
    const Instance inst = make_instance(
        12, 3, 4, zipf_trace(12, 150, 0.9, rng.substream(trial)));
    DetOnlineBlockAware alg;
    alg.enable_event_log();
    simulate(inst, alg);
    const DualAudit audit = audit_dual_feasibility(inst, alg.event_log());
    EXPECT_TRUE(audit.feasible(1e-9))
        << "constraint (" << audit.worst_block << "," << audit.worst_time
        << ") ratio " << audit.max_load_ratio << " (trial " << trial << ")";
    EXPECT_NEAR(audit.objective, alg.dual_objective(), 1e-9)
        << "event log must reproduce the dual objective";
  }
}

TEST(DualVerifier, AuditsWeightedInstances) {
  // The weighted regression that originally exposed the tracking bug.
  Xoshiro256pp rng(55);
  for (int trial = 0; trial < 4; ++trial) {
    auto costs = log_uniform_costs(4, 8.0, rng.substream(100 + trial));
    Instance inst = make_weighted_instance(
        8, 2, 4, uniform_trace(8, 30, rng.substream(trial)), std::move(costs));
    DetOnlineBlockAware alg;
    alg.enable_event_log();
    simulate(inst, alg);
    const DualAudit audit = audit_dual_feasibility(inst, alg.event_log());
    EXPECT_TRUE(audit.feasible(1e-9)) << "trial " << trial;
  }
}

TEST(DualVerifier, DetectsFabricatedInfeasibility) {
  // Feed a corrupted log (doubled deltas) and expect the audit to flag it.
  Xoshiro256pp rng(202);
  const Instance inst = make_instance(10, 2, 4,
                                      uniform_trace(10, 60, rng));
  DetOnlineBlockAware alg;
  alg.enable_event_log();
  simulate(inst, alg);
  auto events = alg.event_log();
  ASSERT_FALSE(events.empty());
  for (auto& ev : events) ev.delta *= 3.0;
  const DualAudit audit = audit_dual_feasibility(inst, events);
  EXPECT_FALSE(audit.feasible(1e-9));
}

TEST(ScheduleCapture, ReplayMatchesLiveRun) {
  Xoshiro256pp rng(203);
  const Instance inst = make_instance(16, 4, 6,
                                      zipf_trace(16, 300, 0.8, rng));
  DetOnlineBlockAware alg;
  SimOptions opt;
  opt.record_schedule = true;
  const RunResult live = simulate(inst, alg, opt);
  const ScheduleCost replay = evaluate(inst, live.schedule);
  EXPECT_TRUE(replay.feasible) << replay.infeasibility;
  EXPECT_DOUBLE_EQ(replay.eviction_cost, live.eviction_cost);
  EXPECT_DOUBLE_EQ(replay.fetch_cost, live.fetch_cost);
}

TEST(ScheduleCapture, WorksForClassicalPolicies) {
  Xoshiro256pp rng(204);
  const Instance inst = make_instance(12, 2, 5,
                                      uniform_trace(12, 200, rng));
  GreedyFlushPolicy alg;
  SimOptions opt;
  opt.record_schedule = true;
  const RunResult live = simulate(inst, alg, opt);
  const ScheduleCost replay = evaluate(inst, live.schedule);
  EXPECT_TRUE(replay.feasible);
  EXPECT_DOUBLE_EQ(replay.eviction_cost, live.eviction_cost);
}

TEST(GreedyFlush, FeasibleAndBatches) {
  Xoshiro256pp rng(205);
  const BlockMap blocks = BlockMap::contiguous(64, 8);
  auto req = block_local_trace(blocks, 4000, 0.8, 0.9, rng);
  Instance inst{blocks, std::move(req), 16};
  GreedyFlushPolicy alg;
  const RunResult r = simulate(inst, alg);
  EXPECT_EQ(r.violations, 0);
  ASSERT_GT(r.evicted_pages, 0);
  // Greedy picks big blocks: several pages per eviction event on average.
  EXPECT_GE(static_cast<double>(r.evicted_pages) /
                static_cast<double>(r.evict_block_events),
            2.0);
}

TEST(GreedyFlush, PrefersCheapBlocksUnderWeights) {
  // One expensive block and one cheap block, both fully cached; greedy
  // must flush the cheap one.
  Instance inst = make_weighted_instance(
      6, 3, 6, {0, 1, 2, 3, 4, 5}, {100.0, 1.0});
  inst.k = 4;
  // requests fill both blocks (capacity forces flushes at t=5,6).
  GreedyFlushPolicy alg;
  const RunResult r = simulate(inst, alg);
  EXPECT_EQ(r.violations, 0);
  EXPECT_LT(r.eviction_cost, 100.0) << "the expensive block must survive";
}

TEST(ThresholdBicriteria, FetchModeFeasibleAndBounded) {
  Xoshiro256pp rng(206);
  for (int k : {8, 16}) {
    const Instance inst = make_instance(
        4 * k, 4, k, zipf_trace(4 * k, 1000, 0.9, rng.substream(k)));
    ThresholdBicriteriaPolicy alg(ThresholdBicriteriaPolicy::Mode::Fetching);
    const RunResult r = simulate(inst, alg);  // audited: fits within k
    EXPECT_EQ(r.violations, 0);
    // Theorem 4.1 inheritance: cost <= 2 x fractional block fetch cost of
    // the internal half-cache fractional solution.
    EXPECT_LE(r.fetch_cost, 2.0 * alg.fractional_block_fetch() + 1e-6);
  }
}

TEST(ThresholdBicriteria, EvictionModeFeasible) {
  Xoshiro256pp rng(207);
  const Instance inst = make_instance(48, 4, 12,
                                      zipf_trace(48, 800, 0.9, rng));
  ThresholdBicriteriaPolicy alg(ThresholdBicriteriaPolicy::Mode::Eviction);
  const RunResult r = simulate(inst, alg);
  EXPECT_EQ(r.violations, 0);
  EXPECT_GT(r.eviction_cost, 0.0);
}

TEST(TraceStats, ScanHasMaximalReuseDistance) {
  const Instance inst = make_instance(8, 2, 4, scan_trace(8, 40));
  const TraceStats stats = analyze_trace(inst);
  EXPECT_EQ(stats.distinct_pages, 8);
  EXPECT_EQ(stats.distinct_blocks, 4);
  // Every reuse of a scan over n pages has distance exactly n - 1.
  for (int d : stats.page_reuse_distances) EXPECT_EQ(d, 7);
  EXPECT_DOUBLE_EQ(stats.lru_hit_rate(7), 0.0);
  // 32 of 40 requests are reuses with distance 7 < 8.
  EXPECT_NEAR(stats.lru_hit_rate(8), 32.0 / 40.0, 1e-12);
}

TEST(TraceStats, HitRateMatchesLruSimulation) {
  Xoshiro256pp rng(208);
  const Instance inst = make_instance(20, 1, 6,
                                      zipf_trace(20, 600, 0.8, rng));
  const TraceStats stats = analyze_trace(inst);
  // Simulate LRU and compare hit rates exactly.
  class LruCounter {
   public:
    static double hit_rate(const Instance& inst) {
      LruPolicyForTest lru;
      const RunResult r = simulate(inst, lru);
      return 1.0 - static_cast<double>(r.misses) /
                       static_cast<double>(inst.horizon());
    }
    // minimal LRU to avoid include cycles in the test
    class LruPolicyForTest final : public OnlinePolicy {
     public:
      [[nodiscard]] std::string name() const override { return "lru-t"; }
      void reset(const Instance& inst) override {
        last_.assign(static_cast<std::size_t>(inst.n_pages()), 0);
        order_.clear();
      }
      void on_request(Time t, PageId p, CacheOps& cache) override {
        if (cache.contains(p)) {
          order_.erase({last_[static_cast<std::size_t>(p)], p});
        } else {
          if (cache.size() >= cache.capacity()) {
            const auto victim = *order_.begin();
            order_.erase(order_.begin());
            cache.evict(victim.second);
          }
          cache.fetch(p);
        }
        last_[static_cast<std::size_t>(p)] = t;
        order_.insert({t, p});
      }

     private:
      std::vector<Time> last_;
      std::set<std::pair<Time, PageId>> order_;
    };
  };
  EXPECT_NEAR(stats.lru_hit_rate(inst.k), LruCounter::hit_rate(inst), 1e-12)
      << "stack-distance profile must equal LRU simulation exactly";
}

TEST(TraceStats, BlockLocalityVisible) {
  const BlockMap blocks = BlockMap::contiguous(64, 8);
  Instance local{blocks, block_local_trace(blocks, 4000, 0.9, 0.8,
                                           Xoshiro256pp(209)), 16};
  Instance scattered{blocks, uniform_trace(64, 4000, Xoshiro256pp(210)), 16};
  const TraceStats sl = analyze_trace(local);
  const TraceStats ss = analyze_trace(scattered);
  EXPECT_LT(sl.block_switch_rate, ss.block_switch_rate * 0.5)
      << "the block-local generator must show in the switch rate";
  EXPECT_GT(sl.block_lru_hit_rate(2), ss.block_lru_hit_rate(2));
}

TEST(TraceStats, EmptyAndTrivialTraces) {
  Instance empty{BlockMap::contiguous(4, 2), {}, 2};
  const TraceStats se = analyze_trace(empty);
  EXPECT_EQ(se.requests, 0);
  EXPECT_EQ(se.distinct_pages, 0);
  EXPECT_DOUBLE_EQ(se.lru_hit_rate(4), 0.0);

  Instance single{BlockMap::contiguous(4, 2), {1, 1, 1}, 2};
  const TraceStats ss = analyze_trace(single);
  EXPECT_EQ(ss.distinct_pages, 1);
  ASSERT_EQ(ss.page_reuse_distances.size(), 2u);
  EXPECT_EQ(ss.page_reuse_distances[0], 0);
  EXPECT_DOUBLE_EQ(ss.lru_hit_rate(1), 2.0 / 3.0);
}

}  // namespace
}  // namespace bac
