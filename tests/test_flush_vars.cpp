// Tests for the sparse fractional variable store phi and the derived
// page missing-mass values x (paper equation (3.2)).
#include <gtest/gtest.h>

#include "submodular/flush_vars.hpp"

namespace bac {
namespace {

TEST(FlushVars, GetAndIncrease) {
  FlushVars v(2);
  EXPECT_DOUBLE_EQ(v.get(0, 5), 0.0);
  v.increase(0, 5, 0.25);
  v.increase(0, 5, 0.25);
  EXPECT_DOUBLE_EQ(v.get(0, 5), 0.5);
  EXPECT_DOUBLE_EQ(v.get(1, 5), 0.0);
  EXPECT_THROW(v.increase(0, 5, -0.1), std::invalid_argument);
}

TEST(FlushVars, EntriesStaySortedByTime) {
  FlushVars v(1);
  v.increase(0, 7, 0.1);
  v.increase(0, 2, 0.2);
  v.increase(0, 5, 0.3);
  const auto& es = v.entries(0);
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0].t, 2);
  EXPECT_EQ(es[1].t, 5);
  EXPECT_EQ(es[2].t, 7);
}

TEST(FlushVars, RaiseToReturnsDelta) {
  FlushVars v(1);
  v.increase(0, 3, 0.4);
  EXPECT_DOUBLE_EQ(v.raise_to(0, 3, 1.0), 0.6);
  EXPECT_DOUBLE_EQ(v.raise_to(0, 3, 0.5), 0.0);  // never decreases
  EXPECT_DOUBLE_EQ(v.get(0, 3), 1.0);
}

TEST(FlushVars, TotalCostSkipsTimeZero) {
  const BlockMap blocks = BlockMap::contiguous_weighted(4, 2, {2.0, 3.0});
  FlushVars v(2);
  v.increase(0, 0, 1.0);  // free initial flush
  v.increase(0, 4, 0.5);
  v.increase(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(v.total_cost(blocks), 2.0 * 0.5 + 3.0 * 1.0);
}

TEST(FlushVars, MassAfter) {
  FlushVars v(1);
  v.increase(0, 1, 0.1);
  v.increase(0, 3, 0.2);
  v.increase(0, 6, 0.4);
  EXPECT_DOUBLE_EQ(v.mass_after(0, 0), 0.7);
  EXPECT_DOUBLE_EQ(v.mass_after(0, 1), 0.6);
  EXPECT_DOUBLE_EQ(v.mass_after(0, 3), 0.4);
  EXPECT_DOUBLE_EQ(v.mass_after(0, 6), 0.0);
}

TEST(FlushVars, XValueFollowsDefinition) {
  const BlockMap blocks = BlockMap::contiguous(4, 2);
  FlushCoverage cov(blocks, 2);
  FlushVars v(2);
  // Page 2 (block 1) never requested: x = 1 regardless of phi.
  cov.advance(0, 1);
  EXPECT_DOUBLE_EQ(v.x_value(cov, 2), 1.0);
  // Page 0 requested at 1: x = mass of block 0 after time 1, capped at 1.
  v.increase(0, 1, 0.3);  // at time 1 == r(0): not counted
  EXPECT_DOUBLE_EQ(v.x_value(cov, 0), 0.0);
  cov.advance(1, 2);
  v.increase(0, 2, 0.4);
  EXPECT_DOUBLE_EQ(v.x_value(cov, 0), 0.4);
  v.increase(0, 2, 0.9);
  EXPECT_DOUBLE_EQ(v.x_value(cov, 0), 1.0) << "x is capped at 1";
  // Page 1 requested at 2: only mass strictly after 2 counts.
  EXPECT_DOUBLE_EQ(v.x_value(cov, 1), 0.0);
}

}  // namespace
}  // namespace bac
