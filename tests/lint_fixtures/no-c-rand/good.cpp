// Negative fixture: draws from the seeded house RNG are fine.
#include "util/rng.hpp"

int roll_dice(bac::Xoshiro256pp& rng, int sides) {
  return static_cast<int>(rng() % static_cast<unsigned long long>(sides));
}
