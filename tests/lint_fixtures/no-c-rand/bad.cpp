// Positive fixture: libc rand()/srand() must be flagged (no-c-rand).
// Not compiled; scanned by test_baclint as if at src/driver/fixture.cpp.
#include <cstdlib>

int roll_dice(int sides) {
  std::srand(42u);
  return rand() % sides;
}
