// Negative fixture: the house xoshiro generator is the sanctioned engine.
#include "util/rng.hpp"

unsigned long long sample(unsigned long long seed) {
  bac::Xoshiro256pp gen(seed);
  return gen();
}
