// Positive fixture: std <random> engines are banned outside util/rng.hpp
// (no-std-engine).
#include <random>

unsigned long long sample(unsigned seed) {
  std::mt19937_64 gen(seed);
  return gen();
}
