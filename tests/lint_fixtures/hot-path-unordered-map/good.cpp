// Negative fixture: a dense-id vector replaces the hash map.
#include <vector>

struct SlotIndex {
  std::vector<int> slot_of;  // keyed by dense page id
};
