// Negative fixture: the two approved shapes — a dense-id vector, and
// the open-addressing bac::FlatMap/FlatSet from util/flat_hash.hpp.
#include <vector>

#include "util/flat_hash.hpp"

struct SlotIndex {
  std::vector<int> slot_of;  // keyed by dense page id
  bac::FlatMap<unsigned long long, int> sparse_slot_of;
  bac::FlatSet<unsigned long long> resident;
};
