// Positive fixture: node-allocating hash map in hot-path code must be
// flagged (hot-path-unordered-map).
#include <unordered_map>

struct SlotIndex {
  std::unordered_map<long long, int> slot_of;
};
