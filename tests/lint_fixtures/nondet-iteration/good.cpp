// Negative fixture: ordered containers iterate deterministically, and
// an unordered container may be iterated when nothing order-dependent
// happens in the body.
#include <map>
#include <ostream>
#include <unordered_set>

namespace bac::obs {

void dump(std::ostream& os) {
  std::map<int, double> counters;
  for (const auto& kv : counters) {
    os << kv.first << "=" << kv.second << "\n";  // std::map: stable order
  }
}

int count_even(const std::unordered_set<int>& values) {
  int n = 0;
  for (int v : values) {
    if (v % 2 == 0) ++n;  // commutative count: order cannot leak
  }
  return n;
}

}  // namespace bac::obs
