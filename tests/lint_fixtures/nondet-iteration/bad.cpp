// Positive fixture: hash-order iteration feeding a stream, and an
// ordered container keyed by pointer (address-order iteration).
#include <map>
#include <ostream>
#include <unordered_map>

namespace bac::obs {

void dump(std::ostream& os) {
  std::unordered_map<int, double> counters;
  for (const auto& kv : counters) {
    os << kv.first << "=" << kv.second << "\n";  // must flag: hash order
  }
}

std::map<const char*, int> by_name;  // must flag: address-ordered keys

}  // namespace bac::obs
