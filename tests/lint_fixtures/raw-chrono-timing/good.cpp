// Negative fixture: the sanctioned Stopwatch (and obs spans built on it)
// keep all clock reads behind one audited seam.
#include "obs/trace.hpp"
#include "util/timer.hpp"

double timed_ms(bac::obs::TraceWriter* trace) {
  bac::obs::Span span(trace, "work");
  const bac::Stopwatch clock;
  return clock.millis();
}
