// Positive fixture: a direct steady_clock::now() read outside
// util/timer.hpp must be flagged (raw-chrono-timing).
#include <chrono>

double elapsed_ms() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::high_resolution_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}
