// Negative fixture: intervals come from the steady-clock stopwatch and
// seeds from the experiment root seed.
#include "util/timer.hpp"

double measure_us(const bac::Stopwatch& sw) { return sw.elapsed_us(); }
