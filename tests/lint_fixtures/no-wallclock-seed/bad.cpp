// Positive fixture: wall-clock time as an input must be flagged
// (no-wallclock-seed).
#include <chrono>
#include <ctime>

unsigned long long wallclock_seed() {
  const auto now = std::chrono::system_clock::now();
  const auto ticks = now.time_since_epoch().count();
  return static_cast<unsigned long long>(ticks) ^
         static_cast<unsigned long long>(time(NULL));
}
