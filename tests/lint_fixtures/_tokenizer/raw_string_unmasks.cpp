// Tokenizer pin (false negative in v1): the per-line stripper saw the
// `/*` inside this multi-line raw string as a comment opener and
// blanked everything after it, swallowing the real violation below.
// The tokenizer lexes the raw string as one token, so v2 flags it.
#include <string>

const std::string kDoc = R"(
  /* this is raw-string text, not a comment opener
)";

std::mutex hidden_;  // real raw-mutex violation v1 could not see
