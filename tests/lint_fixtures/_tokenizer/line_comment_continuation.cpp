// Tokenizer pin (false positive in v1): a line comment whose physical
// line ends in a backslash continues onto the next line; v1 treated the
// continuation as live code and flagged the commented-out mutex.
int before_marker = 0;
// the next physical line is still part of this comment \
std::mutex commented_out_;
int after_marker = 0;
