// Negative fixture: accumulated costs compare with an epsilon.
#include <cmath>

bool same_cost(double total_cost, double opt_cost, double eps) {
  return std::abs(total_cost - opt_cost) <= eps;
}
