// Positive fixture: raw equality on accumulated cost values must be
// flagged (float-equality).
bool same_cost(double total_cost, double opt_cost) {
  return total_cost == opt_cost;
}
