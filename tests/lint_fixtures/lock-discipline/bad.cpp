// Positive fixture: a GUARDED_BY member accessed without holding its
// mutex — no MutexLock on the scope chain, no REQUIRES on the function.
#include "util/thread_annotations.hpp"

namespace bac {

class FixtureShard {
 public:
  long long hits() const {
    MutexLock lock(mutex_);
    return hits_;
  }

  void record_unlocked() { ++hits_; }  // must flag: no lock held

 private:
  mutable Mutex mutex_;
  long long hits_ GUARDED_BY(mutex_) = 0;
};

}  // namespace bac
