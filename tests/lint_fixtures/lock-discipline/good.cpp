// Negative fixture: every guarded access holds the mutex, via a
// MutexLock in scope or a REQUIRES annotation; the constructor is
// exempt (exclusive access by construction, as in clang TSA).
//
// This file doubles as the mutation-test subject: deleting the
// `MutexLock lock(mutex_);` lines must make the lock-discipline pass
// fire (BacLint.MutationDeletingMutexLockFires).
#include "util/thread_annotations.hpp"

namespace bac {

class FixtureShard {
 public:
  explicit FixtureShard(long long seed) { hits_ = seed; }

  long long hits() const {
    MutexLock lock(mutex_);
    return hits_;
  }

  void record() {
    MutexLock lock(mutex_);
    hits_ = hits_ + 1;
    bump();
  }

  void bump() REQUIRES(mutex_) { ++hits_; }

 private:
  mutable Mutex mutex_;
  long long hits_ GUARDED_BY(mutex_) = 0;
};

}  // namespace bac
