// Negative fixture: newline character, one flush at stream teardown.
#include <ostream>

void emit(std::ostream& os, long long value) {
  os << value << '\n';
}
