// Positive fixture: std::endl forces a flush per record (no-endl).
#include <ostream>

void emit(std::ostream& os, long long value) {
  os << value << std::endl;
}
