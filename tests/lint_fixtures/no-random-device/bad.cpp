// Positive fixture: nondeterministic entropy must be flagged
// (no-random-device).
#include <random>

unsigned fresh_seed() {
  std::random_device rd;
  return rd();
}
