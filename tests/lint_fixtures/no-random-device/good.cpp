// Negative fixture: worker seeds derive from the experiment root seed.
#include "util/rng.hpp"

unsigned long long child_seed(unsigned long long root, int worker) {
  return bac::splitmix64(root + static_cast<unsigned long long>(worker));
}
