// Positive fixture: raw std::mutex outside the annotated wrapper must be
// flagged (raw-mutex).
#include <mutex>

struct Counter {
  void bump() {
    std::lock_guard<std::mutex> lock(m);
    ++n;
  }
  std::mutex m;
  long long n = 0;
};
