// Negative fixture: the annotated wrapper keeps thread-safety analysis
// in play.
#include "util/thread_annotations.hpp"

struct Counter {
  void bump() {
    bac::MutexLock lock(m);
    ++n;
  }
  bac::Mutex m;
  long long n GUARDED_BY(m) = 0;
};
