// Negative fixture: std::atomic makes the cross-thread intent checkable.
#include <atomic>

struct SpinFlag {
  std::atomic<bool> done{false};
};
