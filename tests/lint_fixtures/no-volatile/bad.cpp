// Positive fixture: volatile is not a synchronization primitive
// (no-volatile).
struct SpinFlag {
  volatile bool done = false;
};
