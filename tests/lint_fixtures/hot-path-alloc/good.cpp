// Negative fixture: the tagged scope touches only pre-sized flat state;
// allocation happens in reset(), outside the tag. The approved
// replacements for node containers — bac::FlatMap and friends — are
// legal inside the tag: their insert paths reuse reserved storage.
#include <cstddef>
#include <vector>

#include "util/flat_hash.hpp"

namespace bac {

class FixturePolicy {
 public:
  void on_request(int p) {
    // baclint: hot-path
    if (static_cast<std::size_t>(p) < freq_.size()) ++freq_[p];
    last_seen_.try_emplace(static_cast<unsigned>(p), tick_++);
  }

  void reset(std::size_t n) {
    freq_.assign(n, 0);
    last_seen_.reserve(n);
    last_seen_.reset();
  }

 private:
  std::vector<int> freq_;
  FlatMap<unsigned, long long> last_seen_;
  long long tick_ = 0;
};

}  // namespace bac
