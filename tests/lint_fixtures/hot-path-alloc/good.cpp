// Negative fixture: the tagged scope touches only pre-sized flat state;
// allocation happens in reset(), outside the tag.
#include <cstddef>
#include <vector>

namespace bac {

class FixturePolicy {
 public:
  void on_request(int p) {
    // baclint: hot-path
    if (static_cast<std::size_t>(p) < freq_.size()) ++freq_[p];
  }

  void reset(std::size_t n) { freq_.assign(n, 0); }

 private:
  std::vector<int> freq_;
};

}  // namespace bac
