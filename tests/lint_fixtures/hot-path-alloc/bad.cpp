// Positive fixture: allocations inside a scope carrying the hot-path
// tag (spelled out only inside on_request below, on purpose — the tag
// marks the scope the comment sits in).
#include <map>
#include <memory>

namespace bac {

struct Page {
  int id = 0;
};

class FixturePolicy {
 public:
  void on_request(int p) {
    // baclint: hot-path
    auto page = std::make_unique<Page>();  // must flag: allocation
    page->id = p;
    index_.insert({p, 1});  // must flag: node-allocating container op
  }

 private:
  std::map<int, int> index_;
};

}  // namespace bac
