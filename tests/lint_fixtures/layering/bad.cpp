// Positive fixture (linted as src/core/...): core reaching up into
// server is a back-edge in the declared layering DAG.
#include "server/shard.hpp"  // must flag: core may not depend on server
#include "util/rng.hpp"

namespace bac {
int fixture_core_symbol = 0;
}  // namespace bac
