// Negative fixture (linted as src/core/...): core depends downward
// only — util and obs sit below it in the DAG.
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace bac {
int fixture_core_symbol = 0;
}  // namespace bac
