// Positive fixture: a lossy float format in golden serialization must be
// flagged (serialization-precision).
#include <cstdio>

int format_cost(char* buf, unsigned long n, double cost) {
  return std::snprintf(buf, n, "%g", cost);
}
