// Negative fixture: %.17g is the shortest format that round-trips an
// IEEE double exactly.
#include <cstdio>

int format_cost(char* buf, unsigned long n, double cost) {
  return std::snprintf(buf, n, "%.17g", cost);
}
