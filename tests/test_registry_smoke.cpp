// Build-system canary: instantiates every classical policy plus the
// paper's deterministic online algorithm on one tiny instance and runs
// each through the simulator. A link/registration regression (a policy
// object file dropped from libbac, a broken vtable, an accidental
// behavioral NaN) fails here in one obvious place instead of somewhere
// deep in an experiment bench.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "algs/policies/classical.hpp"
#include "algs/det_online.hpp"
#include "algs/zoo.hpp"
#include "core/simulator.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace bac {
namespace {

Instance smoke_instance() {
  // 12 pages in blocks of 3, k = 6 — large enough that every policy must
  // evict, small enough to stay instant under ASan.
  const int n = 12, beta = 3, k = 6;
  return make_instance(n, beta, k,
                       zipf_trace(n, /*T=*/400, 0.9, Xoshiro256pp(7)));
}

void expect_feasible_run(OnlinePolicy& policy) {
  const Instance inst = smoke_instance();
  const RunResult r = simulate(inst, policy);
  SCOPED_TRACE(policy.name());
  // The simulator audits feasibility at every step and throws on a
  // violation, so reaching here already proves the run was legal; the
  // violations counter double-checks no silent repair happened.
  EXPECT_EQ(r.violations, 0);
  EXPECT_TRUE(std::isfinite(r.eviction_cost));
  EXPECT_TRUE(std::isfinite(r.fetch_cost));
  EXPECT_GE(r.eviction_cost, 0.0);
  EXPECT_GE(r.fetch_cost, 0.0);
  // The trace touches more distinct pages than fit in cache, so any real
  // policy pays something in both cost models.
  EXPECT_GT(r.misses, 0);
  EXPECT_GT(r.fetch_cost, 0.0);
}

TEST(RegistrySmoke, Lru) {
  LruPolicy p;
  expect_feasible_run(p);
}

TEST(RegistrySmoke, Fifo) {
  FifoPolicy p;
  expect_feasible_run(p);
}

TEST(RegistrySmoke, Lfu) {
  LfuPolicy p;
  expect_feasible_run(p);
}

TEST(RegistrySmoke, BlockLru) {
  BlockLruPolicy plain(false);
  expect_feasible_run(plain);
  BlockLruPolicy prefetch(true);
  expect_feasible_run(prefetch);
}

TEST(RegistrySmoke, Marking) {
  MarkingPolicy p;
  expect_feasible_run(p);
}

TEST(RegistrySmoke, GreedyDual) {
  GreedyDualPolicy p;
  expect_feasible_run(p);
}

TEST(RegistrySmoke, Belady) {
  BeladyPolicy p;
  expect_feasible_run(p);
}

TEST(RegistrySmoke, DetOnline) {
  DetOnlineBlockAware p;
  expect_feasible_run(p);
}

// The zoo factory is how benches and examples enumerate policies; every
// entry it hands out must survive a run too (and carry a distinct name).
TEST(RegistrySmoke, ZooRoster) {
  const auto zoo = make_policy_zoo(ZooSelection::All);
  ASSERT_FALSE(zoo.empty());
  std::vector<std::string> names;
  for (const auto& policy : zoo) {
    ASSERT_NE(policy, nullptr);
    names.push_back(policy->name());
    expect_feasible_run(*policy);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "duplicate policy names in the zoo";
}

}  // namespace
}  // namespace bac
